package golatest_test

import (
	"fmt"
	"log"

	"golatest"
)

// ExampleProfileByKey shows the Table I metadata carried by a profile.
func ExampleProfileByKey() {
	p, err := golatest.ProfileByKey("gh200")
	if err != nil {
		log.Fatal(err)
	}
	cfg := p.Config
	fmt.Printf("%s (%s): %d SMs, SM clocks %.0f–%.0f MHz in %d steps\n",
		cfg.Name, cfg.Architecture, cfg.SMCount,
		cfg.MinFreqMHz(), cfg.MaxFreqMHz(), len(cfg.FreqsMHz))
	// Output:
	// GH200 (Hopper): 132 SMs, SM clocks 345–1980 MHz in 110 steps
}

// ExampleRun measures one frequency pair end to end on a simulated A100.
// Latencies are stochastic, so the example prints structure rather than
// values.
func ExampleRun() {
	p, err := golatest.ProfileByKey("a100")
	if err != nil {
		log.Fatal(err)
	}
	res, err := golatest.Run(p, golatest.Config{
		Frequencies:      []float64{705, 1410},
		Blocks:           2,
		MinMeasurements:  5,
		MaxMeasurements:  8,
		RSECheckEvery:    5,
		MaxLatencyHintNs: 120e6,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, pr := range res.Pairs {
		fmt.Printf("%s: enough=%v plausible=%v\n",
			pr.Pair, pr.Summary.N >= 5,
			pr.Summary.Median > 3 && pr.Summary.Median < 60)
	}
	// Output:
	// 705→1410 MHz: enough=true plausible=true
	// 1410→705 MHz: enough=true plausible=true
}

// ExampleDevice_Sim demonstrates the simulation-only ground truth used to
// validate the methodology.
func ExampleDevice_Sim() {
	p, _ := golatest.ProfileByKey("rtx6000")
	dev, err := golatest.Open(p)
	if err != nil {
		log.Fatal(err)
	}
	if err := dev.NVML().SetApplicationsClocks(0, 1110); err != nil {
		log.Fatal(err)
	}
	inj, ok := dev.Sim().LastInjection()
	fmt.Printf("recorded=%v target=%.0f MHz positive-latency=%v\n",
		ok, inj.TargetMHz, inj.SwitchingLatencyNs() > 0)
	// Output:
	// recorded=true target=1110 MHz positive-latency=true
}
