// Package golatest is a Go reproduction of "Methodology for GPU Frequency
// Switching Latency Measurement" (Velička, Vysocky, Riha; IPPS 2025,
// arXiv:2502.20075): the LATEST methodology for measuring how long an
// accelerator takes to complete an SM frequency change, together with a
// deterministic virtual-time GPU substrate standing in for CUDA hardware.
//
// The package is a thin facade over the implementation packages:
//
//   - internal/sim/gpu — the simulated accelerator (frequency timeline,
//     wake-up, thermal/power throttling, quantised device timer);
//   - internal/hwprofile — GH200, A100-SXM4 and RTX Quadro 6000 models
//     calibrated against the paper's published distributions;
//   - internal/core — the three-phase methodology (characterise, switch,
//     detect + confirm) with RSE-driven repetition and DBSCAN outlier
//     filtering;
//   - internal/ftalat — the FTaLaT CPU baseline the methodology descends
//     from.
//
// # Quickstart
//
//	p, _ := golatest.ProfileByKey("a100")
//	res, err := golatest.Run(p, golatest.Config{
//		Frequencies: []float64{705, 1065, 1410},
//	})
//	if err != nil { ... }
//	for _, pr := range res.Pairs {
//		fmt.Println(pr.Pair, pr.Summary)
//	}
//
// Everything runs in virtual time: campaigns that span hours of simulated
// benchmarking finish in milliseconds of wall clock and are bit-for-bit
// reproducible for a given configuration.
//
// # Concurrency model
//
// A campaign's pair sweep is parallel: Run fans the valid pairs out over
// Config.Parallelism workers (default: one per CPU). Each pair's
// phase-2/3 campaign executes on an independent device replica — a fresh
// instance of the same hardware profile on its own virtual clock, with
// its simulator seed derived deterministically from the device seed and
// the (init, target) pair. Replicas share no mutable state, so the sweep
// scales with cores, and because each pair's entire random future is a
// function of (seed, pair) alone, campaign results are bit-for-bit
// identical at every parallelism level — including Parallelism=1 — and
// independent of worker scheduling. Phase 1 and the capture-bound probe
// run on the primary device before the sweep; within one device, kernels
// and the virtual clock remain single-threaded, mirroring the one host
// thread that drives the real benchmark.
//
// Warm-up and phase-1 kernels stream their iteration timings into
// reusable Welford accumulators (see gpu.StreamStats) rather than
// materialising per-iteration traces; only the phase-3 benchmark kernel
// keeps its full trace for evaluation.
package golatest

import (
	"golatest/internal/core"
	"golatest/internal/hwprofile"
	"golatest/internal/nvml"
	"golatest/internal/sim/clock"
	"golatest/internal/sim/gpu"
)

// Re-exported types: the public API vocabulary. See the internal package
// documentation for full details on each.
type (
	// Profile describes one of the paper's GPUs (configuration plus the
	// evaluated frequency subset).
	Profile = hwprofile.Profile
	// Config tunes a measurement campaign.
	Config = core.Config
	// Pair is an ordered (init → target) frequency pair.
	Pair = core.Pair
	// Result is a completed campaign.
	Result = core.Result
	// PairResult is one pair's measurements, statistics, and clustering.
	PairResult = core.PairResult
	// Measurement is a single accepted switching-latency observation.
	Measurement = core.Measurement
	// Runner drives campaigns phase by phase for callers that need more
	// control than Run offers.
	Runner = core.Runner
	// Phase1Result carries the frequency characterisation and the valid
	// pair set.
	Phase1Result = core.Phase1Result
	// KernelSpec describes a microbenchmark kernel for callers driving
	// the simulated device directly (see Device.Sim).
	KernelSpec = gpu.KernelSpec
)

// Profiles returns the three paper GPUs (RTX Quadro 6000, A100-SXM4,
// GH200) in Table I order.
func Profiles() []Profile { return hwprofile.All() }

// ProfileByKey resolves "gh200", "a100", or "rtx6000".
func ProfileByKey(key string) (Profile, error) { return hwprofile.ByKey(key) }

// A100Unit returns one of the four A100 units of the manufacturing-
// variability study (§VII-C).
func A100Unit(idx int) Profile { return hwprofile.A100Instance(idx) }

// Device is an open simulated GPU with its management handle.
type Device struct {
	handle *nvml.Device
	clk    *clock.Clock
}

// Open instantiates a profile as a fresh simulated device on its own
// virtual clock.
func Open(p Profile) (*Device, error) {
	clk := clock.New()
	sim, err := p.NewDevice(clk)
	if err != nil {
		return nil, err
	}
	lib, err := nvml.New(sim)
	if err != nil {
		return nil, err
	}
	h, err := lib.DeviceHandleByIndex(0)
	if err != nil {
		return nil, err
	}
	return &Device{handle: h, clk: clk}, nil
}

// NVML returns the device's management handle (the API surface the
// methodology drives).
func (d *Device) NVML() *nvml.Device { return d.handle }

// Sim returns the underlying simulator, exposing ground-truth injections
// for validation work.
func (d *Device) Sim() *gpu.Device { return d.handle.Sim() }

// NewRunner builds a campaign runner on the device.
func (d *Device) NewRunner(cfg Config) (*Runner, error) {
	return core.NewRunner(d.handle, cfg)
}

// Run executes a complete campaign on a fresh instance of the profile:
// phase 1 characterisation, capture-bound probing when cfg leaves
// MaxLatencyHintNs zero, and the full pair sweep.
func Run(p Profile, cfg Config) (*Result, error) {
	dev, err := Open(p)
	if err != nil {
		return nil, err
	}
	r, err := dev.NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	return r.Run()
}
