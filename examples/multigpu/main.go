// Multigpu reproduces the §VII-C manufacturing-variability study shape:
// benchmark the same frequency pairs on four A100 units and compare the
// spread of their best- and worst-case switching latencies (Figs. 7–9),
// checking whether any unit is consistently slower.
//
// Run with:
//
//	go run ./examples/multigpu
package main

import (
	"fmt"
	"log"
	"sync"

	"golatest"
)

const units = 4

func main() {
	pairsOfInterest := []golatest.Pair{
		{InitMHz: 1065, TargetMHz: 840},
		{InitMHz: 1065, TargetMHz: 975},
		{InitMHz: 1350, TargetMHz: 885},
	}
	freqs := []float64{840, 885, 975, 1065, 1350}

	// Each unit owns an independent virtual clock, so the four campaigns
	// run concurrently.
	results := make([]*golatest.Result, units)
	errs := make([]error, units)
	var wg sync.WaitGroup
	for u := 0; u < units; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			results[u], errs[u] = golatest.Run(golatest.A100Unit(u), golatest.Config{
				Frequencies:      freqs,
				MinMeasurements:  24,
				MaxMeasurements:  40,
				MaxLatencyHintNs: 120e6,
				Seed:             uint64(100 + u),
			})
		}(u)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("%-18s", "transition")
	for u := 0; u < units; u++ {
		fmt.Printf("  gpu%d max[ms]", u)
	}
	fmt.Printf("  %10s\n", "range[ms]")

	worstCount := make([]int, units)
	for _, pair := range pairsOfInterest {
		fmt.Printf("%-18s", pair.String())
		lo, hi, worstUnit := 1e18, -1e18, -1
		for u := 0; u < units; u++ {
			pr, ok := results[u].PairByFreqs(pair.InitMHz, pair.TargetMHz)
			if !ok {
				log.Fatalf("unit %d did not measure %v", u, pair)
			}
			v := pr.Summary.Max
			fmt.Printf("  %11.3f", v)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
				worstUnit = u
			}
		}
		worstCount[worstUnit]++
		fmt.Printf("  %10.3f\n", hi-lo)
	}

	fmt.Printf("\nworst-unit tally across pairs: %v\n", worstCount)
	fmt.Println("(the paper's finding: no single unit is consistently the slowest)")
}
