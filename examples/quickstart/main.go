// Quickstart: measure the switching latency of a handful of frequency
// pairs on a simulated A100 and print the per-pair statistics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"golatest"
)

func main() {
	profile, err := golatest.ProfileByKey("a100")
	if err != nil {
		log.Fatal(err)
	}

	// Three clocks spanning the range: the campaign measures all six
	// ordered pairs. MaxLatencyHintNs bounds the capture window; leaving
	// it zero makes the runner probe first (§V of the paper).
	res, err := golatest.Run(profile, golatest.Config{
		Frequencies:      []float64{705, 1065, 1410},
		MinMeasurements:  20,
		MaxMeasurements:  40,
		MaxLatencyHintNs: 120e6, // 120 ms
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("device: %s (%s)\n", res.DeviceName, res.Architecture)
	fmt.Printf("valid pairs: %d (excluded: %d)\n\n",
		len(res.Phase1.ValidPairs), len(res.Phase1.Excluded))
	fmt.Printf("%-18s %8s %8s %8s %8s %9s\n",
		"transition", "n", "min[ms]", "med[ms]", "max[ms]", "outliers")
	for _, pr := range res.Pairs {
		fmt.Printf("%-18s %8d %8.3f %8.3f %8.3f %9d\n",
			pr.Pair.String(), pr.Summary.N,
			pr.Summary.Min, pr.Summary.Median, pr.Summary.Max, len(pr.Outliers))
	}

	// In simulation the ground-truth injected latency is available, so a
	// downstream user can see the methodology's detection error directly.
	var worst float64
	for _, pr := range res.Pairs {
		for i, lat := range pr.Samples {
			if diff := lat - pr.Injected[i]; diff > worst {
				worst = diff
			}
		}
	}
	fmt.Printf("\nworst detection error vs injected ground truth: %.3f ms\n", worst)
}
