// Cpuvsgpu reproduces the paper's headline contrast: CPUs complete
// frequency transitions in microseconds to low milliseconds, while GPUs
// need tens to hundreds of milliseconds — and demonstrates why the CPU
// methodology's confidence-interval detection cannot simply be reused on
// a many-core accelerator (§V-A).
//
// Run with:
//
//	go run ./examples/cpuvsgpu
package main

import (
	"fmt"
	"log"

	"golatest"
	"golatest/internal/experiments"
)

func main() {
	// Part 1 — the latency-scale gap, via the experiments harness (which
	// runs FTaLaT on a simulated Skylake core and the GPU campaigns on
	// the three paper profiles).
	suite := experiments.NewSuite(experiments.Options{Scale: experiments.ScaleQuick, Seed: 11})
	rows, err := suite.CPUvsGPU()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %14s %14s\n", "platform", "median [ms]", "max [ms]")
	for _, r := range rows {
		fmt.Printf("%-28s %14.3f %14.3f\n", r.Platform, r.MedianMs, r.MaxMs)
	}
	gap := rows[1].MedianMs / rows[0].MedianMs
	fmt.Printf("\nslowest-GPU/CPU median gap: %.0fx\n\n", gap)

	// Part 2 — §V-A: the confidence interval of the mean collapses as the
	// iteration population grows; on an accelerator with thousands of
	// concurrent iterations, almost no individual iteration can fall
	// inside it, so detection starves.
	ciRows, err := experiments.CIDegeneration([]int{50, 400, 3200, 25600})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %14s %14s %18s\n", "phase-1 n", "CI band [µs]", "in-band share", "mean detect iters")
	for _, r := range ciRows {
		fmt.Printf("%-10d %14.4f %13.1f%% %18.1f\n",
			r.N, r.BandUs, 100*r.InBandShare, r.MeanDetectIters)
	}
	fmt.Println("\nthe GPU methodology therefore detects with the 2σ population band instead")

	// Part 3 — the same statement from the GPU side: a quick campaign's
	// iteration populations are huge (blocks × iterations), which is
	// exactly the regime where the CI would have degenerated.
	p, _ := golatest.ProfileByKey("a100")
	res, err := golatest.Run(p, golatest.Config{
		Frequencies:      []float64{705, 1410},
		MinMeasurements:  10,
		MaxMeasurements:  15,
		MaxLatencyHintNs: 120e6,
	})
	if err != nil {
		log.Fatal(err)
	}
	for f, st := range res.Phase1.Stats {
		fmt.Printf("GPU phase-1 at %.0f MHz: n=%d iterations (2σ band %.3f µs wide, CI %.4f µs)\n",
			f, st.Iter.N, 4*st.Iter.Std*1000, 4*st.Iter.StdErr()*1000)
	}
}
