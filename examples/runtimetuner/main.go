// Runtimetuner demonstrates the paper's motivating use case (§I, §VIII):
// an energy-efficiency runtime system that wants to retune the GPU clock
// whenever the workload phase changes, and must know the switching
// latency matrix to (a) pick a sensible minimum retuning interval and
// (b) avoid pathological frequency pairs whose overhead would swallow
// the savings.
//
// The program measures a small latency matrix on a simulated GH200, then
// plans frequency changes for a synthetic phase trace (compute-bound vs
// memory-bound phases of varying lengths), reporting how many retunings
// a latency-aware policy performs versus a naive one, and the overhead
// each would pay.
//
// Run with:
//
//	go run ./examples/runtimetuner
package main

import (
	"fmt"
	"log"
	"math"

	"golatest"
)

// phase is one segment of the synthetic application trace.
type phase struct {
	name       string
	durationMs float64
	bestClock  float64 // the clock an oracle tuner would pick
}

func main() {
	profile, err := golatest.ProfileByKey("gh200")
	if err != nil {
		log.Fatal(err)
	}

	// The runtime considers three operating points: a low clock for
	// memory-bound phases, the ~75 % sweet spot the paper's related work
	// identifies, and the maximum for compute-bound bursts. 1875 MHz is
	// deliberately excluded below by the latency-aware policy.
	clocks := []float64{1095, 1500, 1875, 1980}
	res, err := golatest.Run(profile, golatest.Config{
		Frequencies:      clocks,
		MinMeasurements:  20,
		MaxMeasurements:  32,
		MaxLatencyHintNs: 550e6,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Build the worst-case latency matrix the runtime plans with.
	latency := map[[2]float64]float64{}
	fmt.Println("measured worst-case switching latency matrix [ms]:")
	for _, pr := range res.Pairs {
		latency[[2]float64{pr.Pair.InitMHz, pr.Pair.TargetMHz}] = pr.Summary.Max
		fmt.Printf("  %-18s %8.1f\n", pr.Pair.String(), pr.Summary.Max)
	}

	trace := syntheticTrace()
	fmt.Printf("\nphase trace: %d phases, %.0f ms total\n", len(trace), traceLen(trace))

	// The latency-aware policy refuses transitions whose worst case
	// exceeds a tenth of the upcoming phase and avoids clocks whose
	// inbound transitions are pathological.
	awarePolicy := func(from, to float64, next phase) bool {
		wc, ok := latency[[2]float64{from, to}]
		if !ok {
			return false
		}
		return wc <= next.durationMs/10
	}

	naive := plan(trace, latency, nil)
	aware := plan(trace, latency, awarePolicy)

	fmt.Printf("\n%-22s %12s %14s\n", "policy", "retunings", "overhead [ms]")
	fmt.Printf("%-22s %12d %14.1f\n", "naive (always switch)", naive.switches, naive.overheadMs)
	fmt.Printf("%-22s %12d %14.1f\n", "latency-aware", aware.switches, aware.overheadMs)
	if aware.overheadMs >= naive.overheadMs {
		log.Fatal("latency awareness did not pay off; check the matrix")
	}
	fmt.Printf("\noverhead saved by consulting the matrix: %.1f ms (%.0f%%)\n",
		naive.overheadMs-aware.overheadMs,
		100*(1-aware.overheadMs/naive.overheadMs))

	// Close the loop in joules: replay the trace on fresh devices under
	// three policies, letting the simulator's energy meter and the real
	// transition behaviour (not the planner's estimates) decide.
	fmt.Printf("\n%-22s %14s %14s\n", "replayed policy", "energy [J]", "makespan [s]")
	static := replay(profile, trace, func(from, to float64, next phase) bool { return false })
	naiveR := replay(profile, trace, func(from, to float64, next phase) bool { return true })
	awareR := replay(profile, trace, awarePolicy)
	fmt.Printf("%-22s %14.1f %14.3f\n", "static (stay at max)", static.energyJ, static.makespanS)
	fmt.Printf("%-22s %14.1f %14.3f\n", "naive (always switch)", naiveR.energyJ, naiveR.makespanS)
	fmt.Printf("%-22s %14.1f %14.3f\n", "latency-aware", awareR.energyJ, awareR.makespanS)
	fmt.Printf("\nlatency-aware vs static: %.1f%% energy at %.1f%% runtime\n",
		100*awareR.energyJ/static.energyJ, 100*awareR.makespanS/static.makespanS)
}

type replayResult struct {
	energyJ   float64
	makespanS float64
}

// replay executes the trace on a fresh simulated device: each phase's
// work is fixed in cycles (its duration at the oracle clock), and the
// device's energy meter plus the actual DVFS transition behaviour decide
// the outcome.
func replay(profile golatest.Profile, trace []phase, accept func(from, to float64, next phase) bool) replayResult {
	dev, err := golatest.Open(profile)
	if err != nil {
		log.Fatal(err)
	}
	sim := dev.Sim()
	clk := sim.Clock()
	cur := profile.Config.MaxFreqMHz()
	start := clk.Now()
	e0 := sim.EnergyJ()
	for _, ph := range trace {
		if ph.bestClock != cur && accept(cur, ph.bestClock, ph) {
			if err := dev.NVML().SetApplicationsClocks(0, ph.bestClock); err != nil {
				log.Fatal(err)
			}
			cur = ph.bestClock
		}
		// Fixed work: the phase's duration at its oracle clock.
		cycles := ph.durationMs * ph.bestClock * 1000
		if _, err := sim.Launch(golatest.KernelSpec{
			Iters: 1, CyclesPerIter: cycles, Blocks: 1,
		}); err != nil {
			log.Fatal(err)
		}
		sim.Synchronize()
	}
	return replayResult{
		energyJ:   sim.EnergyJ() - e0,
		makespanS: float64(clk.Now()-start) / 1e9,
	}
}

type planResult struct {
	switches   int
	overheadMs float64
}

// plan walks the trace switching toward each phase's best clock; accept
// decides whether a transition is worth it (nil = always switch).
func plan(trace []phase, latency map[[2]float64]float64, accept func(from, to float64, next phase) bool) planResult {
	cur := trace[0].bestClock
	var out planResult
	for _, ph := range trace[1:] {
		to := ph.bestClock
		if to == cur {
			continue
		}
		if accept != nil && !accept(cur, to, ph) {
			continue // stay put: the transition would cost too much
		}
		wc, ok := latency[[2]float64{cur, to}]
		if !ok {
			wc = 500 // unmeasured pair: assume the worst
		}
		out.switches++
		out.overheadMs += math.Min(wc, ph.durationMs)
		cur = to
	}
	return out
}

func syntheticTrace() []phase {
	// Alternating compute/memory phases with occasional short bursts —
	// the §III boundary structure (COUNTDOWN's short/long regions).
	var trace []phase
	for i := 0; i < 30; i++ {
		trace = append(trace,
			phase{"compute", 900, 1980},
			phase{"memory", 700, 1095},
			phase{"burst", 40, 1875}, // short phase: switching to it is a trap
			phase{"balanced", 500, 1500},
		)
	}
	return trace
}

func traceLen(trace []phase) float64 {
	var total float64
	for _, ph := range trace {
		total += ph.durationMs
	}
	return total
}
