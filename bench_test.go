// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each benchmark runs
// the full pipeline behind its artefact at quick scale; the printed
// metrics summarise the artefact so `go test -bench` output doubles as a
// compact reproduction report.
package golatest

import (
	"math"
	"net/http/httptest"
	"testing"

	"golatest/internal/core"
	"golatest/internal/experiments"
	"golatest/internal/store"
	"golatest/internal/storenet"
)

// benchSuite is shared across benchmarks: campaigns cache within one
// suite, so each artefact's incremental cost is what the benchmark
// reports after the first iteration warms the cache.
var benchSuite = experiments.NewSuite(experiments.Options{
	Scale: experiments.ScaleQuick,
	Seed:  7,
})

func freshSuite(i int) *experiments.Suite {
	return experiments.NewSuite(experiments.Options{
		Scale: experiments.ScaleQuick,
		Seed:  uint64(1000 + i),
	})
}

// campaignSweepConfig is the shared configuration of the campaign-sweep
// benchmarks: a five-clock A100 sweep (20 ordered pairs) sized so one
// iteration runs in seconds, differing only in sweep parallelism.
func campaignSweepConfig(parallelism int) Config {
	return Config{
		Frequencies:      []float64{705, 885, 1065, 1215, 1410},
		Blocks:           3,
		MinMeasurements:  12,
		MaxMeasurements:  24,
		RSECheckEvery:    6,
		MaxLatencyHintNs: 120_000_000,
		Seed:             17,
		Parallelism:      parallelism,
	}
}

func benchmarkCampaignSweep(b *testing.B, parallelism int) {
	b.Helper()
	p, err := ProfileByKey("a100")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(p, campaignSweepConfig(parallelism))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Pairs) != 20 {
			b.Fatalf("pairs = %d, want 20", len(res.Pairs))
		}
	}
}

// BenchmarkCampaignSweepSerial runs the full campaign with a serial pair
// sweep — the baseline the parallel engine is measured against.
func BenchmarkCampaignSweepSerial(b *testing.B) { benchmarkCampaignSweep(b, 1) }

// BenchmarkCampaignSweepParallel runs the identical campaign (bit-for-bit
// identical results) with one sweep worker per CPU.
func BenchmarkCampaignSweepParallel(b *testing.B) { benchmarkCampaignSweep(b, 0) }

// BenchmarkPhase1Warmup isolates the phase-1 characterisation whose warm
// kernels stream through Welford sinks instead of materialising
// [][]IterSample; allocs/op tracks that saving. Device construction is
// hoisted out of the loop so the counters cover the warm-up path alone.
func BenchmarkPhase1Warmup(b *testing.B) {
	p, err := ProfileByKey("a100")
	if err != nil {
		b.Fatal(err)
	}
	dev, err := Open(p)
	if err != nil {
		b.Fatal(err)
	}
	r, err := dev.NewRunner(campaignSweepConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p1, err := r.Phase1()
		if err != nil {
			b.Fatal(err)
		}
		if len(p1.ValidPairs) == 0 {
			b.Fatal("no valid pairs")
		}
	}
}

// BenchmarkSuiteCampaignCold measures a suite campaign that misses the
// persistent store: the full compute plus the write-through. Paired with
// BenchmarkSuiteCampaignWarm it quantifies what the content-addressed
// store buys a repeated sweep (warm ≈ one blob decode).
func BenchmarkSuiteCampaignCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		s := experiments.NewSuite(experiments.Options{
			Scale: experiments.ScaleQuick, Seed: 7, Store: st,
		})
		b.StartTimer()
		res, err := s.CampaignByKey("a100")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Pairs) == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// BenchmarkSuiteCampaignWarm measures the same campaign served entirely
// from the store: a fresh suite per iteration, so every access is a real
// disk read and blob decode, never the in-process cache.
func BenchmarkSuiteCampaignWarm(b *testing.B) {
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.Options{Scale: experiments.ScaleQuick, Seed: 7, Store: st}
	if _, err := experiments.NewSuite(opts).CampaignByKey("a100"); err != nil {
		b.Fatal(err) // prewarm the store
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.NewSuite(opts).CampaignByKey("a100")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Pairs) == 0 {
			b.Fatal("empty campaign")
		}
	}
	if c := st.Counters(); c.Misses > 1 || c.Puts > 1 {
		b.Fatalf("warm benchmark recomputed: %+v", c)
	}
}

// BenchmarkSuiteCampaignRemoteWarm measures the same campaign served
// over the network: a stored daemon on a loopback listener fronts the
// prewarmed store, and each iteration's fresh suite uses a cache-less
// storenet.Client, so every access is a real HTTP round trip plus blob
// decode — the cost a remote warm Get adds over a local one, and what
// cross-host fleets pay when their local tier is cold. Paired with
// BenchmarkSuiteCampaignCold it yields remote_warm_speedup in
// bench_smoke.sh.
func BenchmarkSuiteCampaignRemoteWarm(b *testing.B) {
	backing, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	warm := experiments.Options{Scale: experiments.ScaleQuick, Seed: 7, Store: backing}
	if _, err := experiments.NewSuite(warm).CampaignByKey("a100"); err != nil {
		b.Fatal(err) // prewarm the daemon's store
	}
	srv := httptest.NewServer(storenet.NewServer(backing))
	defer srv.Close()
	client, err := storenet.NewClient(srv.URL, storenet.ClientOptions{})
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.Options{Scale: experiments.ScaleQuick, Seed: 7, Store: client}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.NewSuite(opts).CampaignByKey("a100")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Pairs) == 0 {
			b.Fatal("empty campaign")
		}
	}
	if c := client.Counters(); c.Misses > 0 || c.Puts > 0 || c.Corrupt > 0 {
		b.Fatalf("remote warm benchmark recomputed: %+v", c)
	}
}

// BenchmarkTable1Hardware regenerates Table I (hardware setup).
func BenchmarkTable1Hardware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 3 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkTable2Summary regenerates Table II (best/worst-case switching
// latency summaries for the three GPUs), one full three-campaign sweep
// per iteration.
func BenchmarkTable2Summary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := freshSuite(i).Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%s worst: min %.3f mean %.3f max %.3f | best: min %.3f mean %.3f max %.3f",
					r.Model, r.WorstMinMs, r.WorstMeanMs, r.WorstMaxMs,
					r.BestMinMs, r.BestMeanMs, r.BestMaxMs)
			}
		}
	}
}

// BenchmarkFig1CPUTrace regenerates the Fig. 1 CPU transition trace.
func BenchmarkFig1CPUTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trace, err := experiments.Fig1CPUTrace()
		if err != nil {
			b.Fatal(err)
		}
		if len(trace) < 3 {
			b.Fatal("trace too short")
		}
	}
}

// BenchmarkFig2ACCTrace regenerates the Fig. 2 CPU→ACC request trace.
func BenchmarkFig2ACCTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trace, err := experiments.Fig2GPUTrace()
		if err != nil {
			b.Fatal(err)
		}
		if len(trace) < 3 {
			b.Fatal("trace too short")
		}
	}
}

func benchHeatmap(b *testing.B, key string, agg experiments.Agg) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		h, err := benchSuite.Fig3Heatmap(key, agg)
		if err != nil {
			b.Fatal(err)
		}
		min, max, _, _ := h.MinMax()
		if math.IsNaN(min) || math.IsNaN(max) {
			b.Fatal("empty heatmap")
		}
		if i == 0 {
			b.Logf("%s %s heatmap: min %.3f max %.3f mean %.3f", key, agg, min, max, h.Mean())
		}
	}
}

// BenchmarkFig3aGH200Min regenerates the GH200 minimum-latency heatmap.
func BenchmarkFig3aGH200Min(b *testing.B) { benchHeatmap(b, "gh200", experiments.AggMin) }

// BenchmarkFig3bGH200Max regenerates the GH200 maximum-latency heatmap.
func BenchmarkFig3bGH200Max(b *testing.B) { benchHeatmap(b, "gh200", experiments.AggMax) }

// BenchmarkFig3cA100Max regenerates the A100 maximum-latency heatmap.
func BenchmarkFig3cA100Max(b *testing.B) { benchHeatmap(b, "a100", experiments.AggMax) }

// BenchmarkFig3dRTXMax regenerates the RTX Quadro 6000 maximum heatmap.
func BenchmarkFig3dRTXMax(b *testing.B) { benchHeatmap(b, "rtx6000", experiments.AggMax) }

// BenchmarkFig4Violins regenerates the direction-split violin panels.
func BenchmarkFig4Violins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		panels, err := benchSuite.Fig4Violins()
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) != 3 {
			b.Fatal("missing panels")
		}
	}
}

// BenchmarkFig5Scatter regenerates the multi-cluster scatter of the GH200
// 1770→1260 MHz pair.
func BenchmarkFig5Scatter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc, err := benchSuite.FigScatter("gh200", core.Pair{InitMHz: 1770, TargetMHz: 1260}, 120)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("1770→1260: %d samples, %d clusters, silhouette %.2f",
				len(sc.SamplesMs), sc.NumClusters, sc.Silhouette)
		}
	}
}

// BenchmarkFig6Scatter regenerates the single-cluster scatter of a
// non-pathological GH200 pair.
func BenchmarkFig6Scatter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc, err := benchSuite.FigScatter("gh200", core.Pair{InitMHz: 705, TargetMHz: 1095}, 120)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("705→1095: %d samples, %d clusters", len(sc.SamplesMs), sc.NumClusters)
		}
	}
}

// BenchmarkFig7MinRanges regenerates the Fig. 7 cross-unit minimum-range
// heatmap over four A100s.
func BenchmarkFig7MinRanges(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, err := benchSuite.RangeHeatmap(experiments.AggMin)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("min-range mean %.3f ms", h.Mean())
		}
	}
}

// BenchmarkFig8MaxRanges regenerates the Fig. 8 cross-unit maximum-range
// heatmap.
func BenchmarkFig8MaxRanges(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, err := benchSuite.RangeHeatmap(experiments.AggMax)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("max-range mean %.3f ms", h.Mean())
		}
	}
}

// BenchmarkFig9Boxplots regenerates the highest-spread box plots across
// the four A100 units.
func BenchmarkFig9Boxplots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		boxes, err := benchSuite.Fig9Boxes(3)
		if err != nil {
			b.Fatal(err)
		}
		if len(boxes) != 12 {
			b.Fatalf("boxes = %d", len(boxes))
		}
	}
}

// BenchmarkClusterCensus regenerates the §VII-B cluster census.
func BenchmarkClusterCensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := benchSuite.ClusterCensus()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%s: single-cluster %.0f%%, max clusters %d",
					r.Model, 100*r.SingleClusterShare, r.MaxClusters)
			}
		}
	}
}

// BenchmarkCIDegeneration regenerates the §V-A confidence-interval
// degeneration study.
func BenchmarkCIDegeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CIDegeneration([]int{50, 400, 3200})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("n=%d: band %.4f µs, in-band %.1f%%, detect iters %.1f",
					r.N, r.BandUs, 100*r.InBandShare, r.MeanDetectIters)
			}
		}
	}
}

// BenchmarkAblations regenerates the three design-choice ablations
// (transition shape, detection band, sync asymmetry).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ramp, err := experiments.RampAblation([]int{0, 8}, 8)
		if err != nil {
			b.Fatal(err)
		}
		det, err := experiments.DetectionAblation(8)
		if err != nil {
			b.Fatal(err)
		}
		syn, err := experiments.SyncAblation([]float64{0, 800}, 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("ramp: step err %.3f ms vs 8-step err %.3f ms (discards %.2f)",
				ramp[0].MeanErrMs, ramp[1].MeanErrMs, ramp[1].FailShare)
			b.Logf("detection: 2σ accepts %.2f vs CI accepts %.2f",
				det[0].AcceptedShare, det[1].AcceptedShare)
			b.Logf("sync: 800 µs asymmetry shifts bias by %.3f ms",
				syn[0].MeanBiasMs-syn[1].MeanBiasMs)
		}
	}
}

// BenchmarkCPUvsGPU regenerates the headline CPU-vs-GPU scale comparison.
func BenchmarkCPUvsGPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := benchSuite.CPUvsGPU()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%s: median %.3f ms, max %.3f ms", r.Platform, r.MedianMs, r.MaxMs)
			}
		}
	}
}
