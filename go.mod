module golatest

go 1.24.0
