#!/usr/bin/env bash
# bench_smoke.sh — tier-1 benchmark smoke for the campaign engine.
#
# Runs every campaign-sweep benchmark exactly once (compile + execute
# smoke, not a timing run) and emits BENCH_campaign.json with ns/op,
# bytes/op and allocs/op per benchmark, so the performance trajectory of
# the sweep is tracked alongside the test suite:
#
#   ./scripts/bench_smoke.sh [output.json]
#
# Intended tier-1 invocation (see ROADMAP.md):
#
#   go build ./... && go test ./... && ./scripts/bench_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_campaign.json}"

raw=$(go test -run '^$' -bench 'BenchmarkCampaignSweep|BenchmarkPhase1Warmup|BenchmarkSuiteCampaign' \
	-benchtime 1x -benchmem .)
# The store index benchmarks compare a journal-backed Put (O(1) appends)
# against the pre-journal whole-manifest rewrite (O(entries) per Put);
# a handful of iterations keeps the ratio out of filesystem noise while
# still completing in well under a second.
raw="$raw
$(go test -run '^$' -bench 'BenchmarkStorePut' -benchtime 20x -benchmem ./internal/store)"
printf '%s\n' "$raw"

printf '%s\n' "$raw" | awk -v cores="$(nproc 2>/dev/null || echo 1)" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns[name] = $3
	bytes[name] = $5
	allocs[name] = $7
	order[n++] = name
}
END {
	if (n == 0) {
		print "bench_smoke: no benchmark output parsed" > "/dev/stderr"
		exit 1
	}
	printf "{\n  \"cores\": %d,\n  \"benchmarks\": {\n", cores
	for (i = 0; i < n; i++) {
		k = order[i]
		printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
			k, ns[k], bytes[k], allocs[k], (i < n-1 ? "," : "")
	}
	printf "  }"
	# The ROADMAP open item asks for the multicore sweep speedup; it is
	# only meaningful off the single-core CI container, so record it
	# whenever this host can actually exhibit it.
	serial = ns["BenchmarkCampaignSweepSerial"]
	par = ns["BenchmarkCampaignSweepParallel"]
	if (cores > 1 && serial > 0 && par > 0)
		printf ",\n  \"sweep_parallel_speedup\": %.2f", serial / par
	cold = ns["BenchmarkSuiteCampaignCold"]
	warm = ns["BenchmarkSuiteCampaignWarm"]
	if (cold > 0 && warm > 0)
		printf ",\n  \"store_warm_speedup\": %.2f", cold / warm
	# Remote warm Get (stored daemon on loopback, cache-less client) vs
	# cold compute: what the network store buys a cross-host fleet whose
	# local tier is cold.
	remote = ns["BenchmarkSuiteCampaignRemoteWarm"]
	if (cold > 0 && remote > 0)
		printf ",\n  \"remote_warm_speedup\": %.2f", cold / remote
	# Journal vs whole-manifest-rewrite Put cost at 1k store entries:
	# how much the append-only manifest log saves per write.
	rewrite = ns["BenchmarkStorePutRewrite/entries=1024"]
	journal = ns["BenchmarkStorePut/entries=1024"]
	if (rewrite > 0 && journal > 0)
		printf ",\n  \"manifest_put_speedup\": %.2f", rewrite / journal
	printf "\n}\n"
}' >"$out"

echo "bench_smoke: wrote $out"
