#!/usr/bin/env bash
# bench_smoke.sh — tier-1 benchmark smoke for the campaign engine.
#
# Runs every campaign-sweep benchmark exactly once (compile + execute
# smoke, not a timing run) and emits BENCH_campaign.json with ns/op,
# bytes/op and allocs/op per benchmark, so the performance trajectory of
# the sweep is tracked alongside the test suite:
#
#   ./scripts/bench_smoke.sh [output.json]
#
# Intended tier-1 invocation (see ROADMAP.md):
#
#   go build ./... && go test ./... && ./scripts/bench_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_campaign.json}"

raw=$(go test -run '^$' -bench 'BenchmarkCampaignSweep|BenchmarkPhase1Warmup|BenchmarkSuiteCampaignCold' \
	-benchtime 1x -benchmem .)
# The warm benchmarks run a few iterations so the recorded bytes/allocs
# are the steady state of the pooled codec (one iteration would charge
# the one-time pool warm-up to the op).
raw="$raw
$(go test -run '^$' -bench 'BenchmarkSuiteCampaign(Warm|RemoteWarm)$' -benchtime 10x -benchmem .)"
# The store index benchmarks compare a journal-backed Put (O(1) appends)
# against the pre-journal whole-manifest rewrite (O(entries) per Put);
# a handful of iterations keeps the ratio out of filesystem noise while
# still completing in well under a second. The blob codec benchmarks
# track the compressed-container encode/decode cost.
raw="$raw
$(go test -run '^$' -bench 'BenchmarkStorePut|BenchmarkBlob' -benchtime 20x -benchmem ./internal/store)"
# Resilience path: the breaker's fast-fail vs the no-breaker
# timeout-and-retry baseline, and a degraded-mode warm read vs the bare
# local store. TimeoutRetryGet costs a real RequestTimeout per op, so a
# handful of iterations is all it gets.
raw="$raw
$(go test -run '^$' -bench 'BenchmarkBreakerOpenGet|BenchmarkDegradedWarmGet|BenchmarkLocalWarmGet' \
	-benchtime 20x -benchmem ./internal/storenet)
$(go test -run '^$' -bench 'BenchmarkTimeoutRetryGet' -benchtime 5x -benchmem ./internal/storenet)"
# Replicated router tax: a warm read through a three-daemon router vs
# the same read through a bare client (the routing overhead a replica
# set costs when nothing is wrong), and a read whose primary is down
# (the health-aware failover path — the breaker has already tripped, so
# this is the steady-state cost of routing around a dead member, not
# the one-time discovery timeout).
raw="$raw
$(go test -run '^$' -bench 'BenchmarkDirectWarmGet|BenchmarkRouterWarmGet|BenchmarkRouterFailoverGet' \
	-benchtime 20x -benchmem ./internal/storenet/router)"
# Tracing tax: the cost of recording one span event on a hot shard
# (span pool + monotonic clock, no locks beyond the span's own), and
# the disabled-tracer path that every untraced sweep pays — which must
# stay at effectively zero for tracing-off runs to be free.
raw="$raw
$(go test -run '^$' -bench 'BenchmarkSpanEvent|BenchmarkStartSpan' -benchtime 100x -benchmem ./internal/obs)"
printf '%s\n' "$raw"

# Real-blob compression ratio: TestBlobCompressionRatio persists one
# quick-scale campaign and logs raw vs compressed sizes.
ratio=$(go test -run 'TestBlobCompressionRatio$' -v . |
	sed -n 's/.*blob_compression_ratio=\([0-9.]*\).*/\1/p' | head -1)
echo "bench_smoke: blob_compression_ratio=${ratio:-unknown}"

# Daemon latency under concurrent multi-tenant load: the loadgen test
# logs p50/p99 from the /metrics histograms of an authed loopback
# stored serving a mixed Get/Put/lease slam. Half-strength here — the
# full 100-client version runs in the storenet test suite; this run
# exists to record the quantiles, not to stress.
loadout=$(STORED_LOAD_CLIENTS=50 go test -run 'TestStoredLoadConcurrent$' -v ./internal/storenet)
p50=$(printf '%s\n' "$loadout" | sed -n 's/.*stored_p50_ns=\([0-9]*\).*/\1/p' | head -1)
p99=$(printf '%s\n' "$loadout" | sed -n 's/.*stored_p99_ns=\([0-9]*\).*/\1/p' | head -1)
echo "bench_smoke: stored_p50_ns=${p50:-unknown} stored_p99_ns=${p99:-unknown}"

printf '%s\n' "$raw" | awk -v cores="$(nproc 2>/dev/null || echo 1)" -v blob_ratio="${ratio:-0}" \
	-v stored_p50="${p50:-0}" -v stored_p99="${p99:-0}" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns[name] = $3
	bytes[name] = $5
	allocs[name] = $7
	order[n++] = name
}
END {
	if (n == 0) {
		print "bench_smoke: no benchmark output parsed" > "/dev/stderr"
		exit 1
	}
	printf "{\n  \"cores\": %d,\n  \"benchmarks\": {\n", cores
	for (i = 0; i < n; i++) {
		k = order[i]
		printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
			k, ns[k], bytes[k], allocs[k], (i < n-1 ? "," : "")
	}
	printf "  }"
	# The ROADMAP open item asks for the multicore sweep speedup; it is
	# only meaningful off the single-core CI container, so record it
	# whenever this host can actually exhibit it.
	serial = ns["BenchmarkCampaignSweepSerial"]
	par = ns["BenchmarkCampaignSweepParallel"]
	if (cores <= 1)
		printf ",\n  \"sweep_parallel_speedup\": \"skipped: single-core host\""
	else if (serial > 0 && par > 0)
		printf ",\n  \"sweep_parallel_speedup\": %.2f", serial / par
	cold = ns["BenchmarkSuiteCampaignCold"]
	warm = ns["BenchmarkSuiteCampaignWarm"]
	if (cold > 0 && warm > 0)
		printf ",\n  \"store_warm_speedup\": %.2f", cold / warm
	# Remote warm Get (stored daemon on loopback, cache-less client) vs
	# cold compute: what the network store buys a cross-host fleet whose
	# local tier is cold.
	remote = ns["BenchmarkSuiteCampaignRemoteWarm"]
	if (cold > 0 && remote > 0)
		printf ",\n  \"remote_warm_speedup\": %.2f", cold / remote
	# Journal vs whole-manifest-rewrite Put cost at 1k store entries:
	# how much the append-only manifest log saves per write.
	rewrite = ns["BenchmarkStorePutRewrite/entries=1024"]
	journal = ns["BenchmarkStorePut/entries=1024"]
	if (rewrite > 0 && journal > 0)
		printf ",\n  \"manifest_put_speedup\": %.2f", rewrite / journal
	# v3 streaming encode: the allocation profile of the binary blob
	# writer, and the reduction vs the PR-5 JSON-pipeline encode baseline
	# (5177 allocs/op on the CI container lineage; BenchmarkBlobEncodeJSON
	# still reproduces it). The v3 encoder is alloc-free in steady state,
	# so the reduction denominator is floored at 1 — read a 5177 there as
	# "the entire baseline cost is gone".
	enc_allocs = allocs["BenchmarkBlobEncode"]
	enc_bytes = bytes["BenchmarkBlobEncode"]
	if (ns["BenchmarkBlobEncode"] > 0) {
		printf ",\n  \"blob_encode_allocs_per_op\": %d", enc_allocs
		printf ",\n  \"blob_encode_bytes_per_op\": %d", enc_bytes
		printf ",\n  \"encode_alloc_reduction\": %.0f", 5177 / (enc_allocs > 0 ? enc_allocs : 1)
	}
	# Blob container: raw/compressed ratio of a real quick-scale
	# campaign blob (from TestBlobCompressionRatio), and the warm-get
	# memory trajectory vs the PR-4 (uncompressed wire/disk) baseline —
	# the two numbers the compressed codec exists to move. The *_vs_pr4
	# denominators are the bytes/allocs the PR-4 CI container recorded;
	# like every speedup in this file, the ratios are meaningful on the
	# CI container lineage, not across arbitrary hosts or toolchains —
	# the absolute *_per_op fields are the portable record.
	if (blob_ratio > 0)
		printf ",\n  \"blob_compression_ratio\": %.2f", blob_ratio
	warm_bytes = bytes["BenchmarkSuiteCampaignWarm"]
	if (warm_bytes > 0) {
		printf ",\n  \"warm_bytes_per_op\": %d", warm_bytes
		printf ",\n  \"warm_bytes_vs_pr4\": %.2f", 1446400 / warm_bytes
	}
	remote_bytes = bytes["BenchmarkSuiteCampaignRemoteWarm"]
	remote_allocs = allocs["BenchmarkSuiteCampaignRemoteWarm"]
	if (remote_bytes > 0) {
		printf ",\n  \"remote_warm_bytes_per_op\": %d", remote_bytes
		printf ",\n  \"remote_warm_bytes_vs_pr4\": %.2f", 3970264 / remote_bytes
	}
	if (remote_allocs > 0) {
		printf ",\n  \"remote_warm_allocs_per_op\": %d", remote_allocs
		printf ",\n  \"remote_warm_allocs_vs_pr4\": %.2f", 20233 / remote_allocs
	}
	# Resilience figures. breaker_fastfail_ns is the absolute cost of a
	# store touch while the circuit is open (the per-op outage tax of a
	# degraded sweep); its speedup is measured against the no-breaker client
	# burning a RequestTimeout per attempt on the same dead daemon.
	# degraded_warm_overhead is a degraded-mode warm read over a bare
	# local-store read — the read-path price of the fallback machinery
	# (expected ~1.0: the local tier is checked before the wire).
	fastfail = ns["BenchmarkBreakerOpenGet"]
	if (fastfail > 0)
		printf ",\n  \"breaker_fastfail_ns\": %d", fastfail
	timeoutretry = ns["BenchmarkTimeoutRetryGet"]
	if (fastfail > 0 && timeoutretry > 0)
		printf ",\n  \"breaker_fastfail_speedup\": %.0f", timeoutretry / fastfail
	degraded = ns["BenchmarkDegradedWarmGet"]
	local_warm = ns["BenchmarkLocalWarmGet"]
	if (degraded > 0 && local_warm > 0)
		printf ",\n  \"degraded_warm_overhead\": %.2f", degraded / local_warm
	# Replication figures. router_get_overhead is a healthy warm read
	# through the three-member router over the same read via a bare
	# client (expected ~1.0x: the ring lookup and health peek are cheap
	# next to one loopback round trip). router_failover_ns is the
	# absolute cost of a read whose primary is dead with the breaker
	# already open — the per-op price of a degraded replica set.
	direct_get = ns["BenchmarkDirectWarmGet"]
	router_get = ns["BenchmarkRouterWarmGet"]
	if (direct_get > 0 && router_get > 0)
		printf ",\n  \"router_get_overhead\": %.2f", router_get / direct_get
	router_failover = ns["BenchmarkRouterFailoverGet"]
	if (router_failover > 0)
		printf ",\n  \"router_failover_ns\": %d", router_failover
	# Observability tax: ns per recorded span event with tracing on, and
	# the same call against a nil/disabled tracer — the price every
	# untraced sweep pays, which the obs package promises is negligible.
	span_ev = ns["BenchmarkSpanEvent"]
	if (span_ev > 0)
		printf ",\n  \"obs_span_overhead_ns\": %d", span_ev
	span_off = ns["BenchmarkSpanEventDisabled"]
	if (ns["BenchmarkSpanEvent"] > 0)
		printf ",\n  \"obs_disabled_overhead_ns\": %d", span_off
	# Daemon request latency under the concurrent authed load test:
	# histogram-bucket upper-bound estimates (biased high by at most one
	# bucket), from the same /metrics series operators scrape.
	if (stored_p50 > 0)
		printf ",\n  \"stored_p50_ns\": %d", stored_p50
	if (stored_p99 > 0)
		printf ",\n  \"stored_p99_ns\": %d", stored_p99
	printf "\n}\n"
}' >"$out"

echo "bench_smoke: wrote $out"
