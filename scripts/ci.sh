#!/usr/bin/env bash
# ci.sh — the full tier-1 gate in one command:
#
#   ./scripts/ci.sh
#
# vet + build (including the stored daemon) + tests, a race-detector
# pass over the concurrency-heavy coordination packages (the store's
# journal/lease/GC machinery, the fleet's cross-process claim loop, and
# the storenet daemon/client), and the benchmark smoke that records the
# performance trajectory in BENCH_campaign.json.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go build cmd/stored =="
go build -o /dev/null ./cmd/stored

echo "== go test =="
go test ./...

echo "== go test -race (store, fleet, storenet) =="
go test -race ./internal/store/... ./internal/fleet/... ./internal/storenet/... ./cmd/stored/...

echo "== go test -race (breaker + degraded-mode reconciler) =="
go test -race -count 2 \
	-run 'TestBreaker|TestDeferredPutReconciles|TestJournalSurvivesProcessRestart|TestBackgroundReconcileOnRecovery|TestSweepSurvivesStoredOutage' \
	./internal/storenet
go test -race -count 2 -run 'TestSweepDegrade|TestSweepAutoPolicy|TestResolvePolicy' ./internal/fleet

echo "== go test -race (v1->v2 blob migration) =="
go test -race -run 'TestV1Blob|TestGetRawServesV1AsV2|TestMixedStoreRebuild|TestCorruptV2Blob' \
	-count 2 ./internal/store

echo "== blob codec benchmarks =="
go test -run '^$' -bench 'BenchmarkBlob' -benchtime 20x -benchmem ./internal/store

echo "== bench smoke =="
./scripts/bench_smoke.sh

echo "ci: all green"
