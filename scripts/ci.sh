#!/usr/bin/env bash
# ci.sh — the full tier-1 gate in one command:
#
#   ./scripts/ci.sh
#
# vet + build (including the stored daemon) + tests, a race-detector
# pass over the concurrency-heavy coordination packages (the store's
# journal/lease/GC machinery, the fleet's cross-process claim loop, and
# the storenet daemon/client), and the benchmark smoke that records the
# performance trajectory in BENCH_campaign.json.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go build cmd/stored + cmd/storedsup =="
go build -o /dev/null ./cmd/stored
go build -o /dev/null ./cmd/storedsup

echo "== go test =="
go test ./...

echo "== gofmt (internal/obs) =="
# The tracing layer is the newest package; hold it to gofmt-clean so
# drive-by edits to the hot span path can't land unformatted.
unformatted=$(gofmt -l internal/obs)
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi
go vet ./internal/obs/...

echo "== go test -race (store, fleet, storenet) =="
go test -race ./internal/obs/... ./internal/store/... ./internal/fleet/... ./internal/storenet/... ./cmd/stored/...

echo "== go test -race (trace propagation) =="
# The tracer is lock-free by design (atomic ring cursor, pooled spans);
# the propagation tests drive it from every worker goroutine of a
# sweep at once, plus the daemon's request-ring recorder.
go test -race -count 2 \
	-run 'TestSweepTraceTreeCoversEveryShard|TestSweepInstallsAndClearsTraceContext|TestUntracedSweepCollectsTimings' \
	./internal/fleet
go test -race -count 2 -run 'TestConcurrentSpans' ./internal/obs
go test -race -run 'TestDaemonDebugEndpoints' ./cmd/stored

echo "== go test -race (breaker + degraded-mode reconciler) =="
go test -race -count 2 \
	-run 'TestBreaker|TestDeferredPutReconciles|TestJournalSurvivesProcessRestart|TestBackgroundReconcileOnRecovery|TestSweepSurvivesStoredOutage' \
	./internal/storenet
go test -race -count 2 -run 'TestSweepDegrade|TestSweepAutoPolicy|TestResolvePolicy' ./internal/fleet

echo "== go test -race (legacy v1/v2 -> v3 blob migration) =="
go test -race -run 'TestLegacyBlobHealsToV3|TestGetRawServesLegacyAsV3|TestMixedStoreRebuild|TestCorruptBlobIsMissAndHeals|TestHealConvergence' \
	-count 2 ./internal/store

echo "== go test -race (backend conformance + auth/ratelimit) =="
go test -race -count 2 \
	-run 'TestBackendConformance|TestParseTokens|TestAuthScopeEnforcement|TestRateLimit429|TestByteQuota429|TestClientAuthTerminal|TestClient429HonorsRetryAfterWithoutBreakerTrip|TestAuthedProbesWhileDrainingAndThrottled' \
	./internal/store ./internal/storenet
go test -race -run 'TestDaemonAuthTokens|TestDaemonTLS|TestDaemonProbesSurviveAuthAndDrain|TestDaemonTokenReloadOnSIGHUP' ./cmd/stored

echo "== go test -race (replicated router + supervisor + token validity) =="
# The router package races in full: ring placement, failover reads,
# read-repair, the background scrubber, the three conformance harnesses
# and the mid-sweep member-kill chaos test all exercise the same shared
# counters from many goroutines. The supervisor races its probe loop
# against a real crashing stored child. Token validity windows race the
# SIGHUP rotation path.
go test -race -count 2 ./internal/storenet/router
go test -race ./cmd/storedsup
go test -race -count 2 -run 'TestParseTokensValidityWindows|TestTokenValidityWindow401' ./internal/storenet
go test -race -run 'TestDaemonTokenExpiry' ./cmd/stored

echo "== go test -race (stored load, reduced concurrency) =="
STORED_LOAD_CLIENTS=25 go test -race -run 'TestStoredLoadConcurrent$' ./internal/storenet

echo "== fuzz smoke (blob codec) =="
# One target per invocation (go test's -fuzz constraint); a few seconds
# each is a smoke over the seeded corpus plus whatever the engine grows,
# not a soak — the corpus seeds alone cover all three containers,
# truncation, torn v3 binary sections, bit flips and the inflation rail.
go test -run '^$' -fuzz 'FuzzDecodeBlob$' -fuzztime 5s ./internal/store
go test -run '^$' -fuzz 'FuzzF64UnmarshalJSON$' -fuzztime 5s ./internal/store

echo "== blob codec benchmarks =="
go test -run '^$' -bench 'BenchmarkBlob' -benchtime 20x -benchmem ./internal/store

echo "== bench smoke =="
./scripts/bench_smoke.sh

echo "ci: all green"
