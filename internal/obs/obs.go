// Package obs is the repo's zero-dependency observability kernel: a
// lightweight span recorder (Tracer/Span), W3C traceparent propagation
// for correlating one sweep's requests across processes, and a Chrome
// trace_event exporter so a whole fleet sweep is viewable in Perfetto.
//
// Design constraints, in order:
//
//   - Tracing off must cost nothing. A nil *Tracer and a nil *Span are
//     fully usable no-ops: StartSpan on a nil Tracer returns a nil
//     Span, and every Span method on a nil receiver returns
//     immediately. Call sites thread a possibly-nil tracer and never
//     branch (TestNilTracerZeroAllocs pins the disabled path at zero
//     allocations).
//   - Tracing on must be cheap on the hot path. Spans come from a
//     sync.Pool and retain their event/attr backing arrays across
//     reuse; timestamps are offsets from a single monotonic clock
//     reading taken at Tracer construction, so recording an event is
//     one clock read and one append.
//   - Deterministic in tests. Trace and span IDs come from a seeded
//     splitmix64 stream (Options.Seed); the clock is injectable.
//
// The package deliberately does not know about contexts, HTTP, or any
// specific tier — storenet carries SpanContext over the wire as a
// traceparent header, fleet builds the sweep span tree, and the
// TraceContextSetter interface lets a sweep hand its root context to a
// store client without the two packages importing each other's types
// beyond this one.
package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a W3C trace-id: 16 bytes, non-zero when valid.
type TraceID [16]byte

// SpanID is a W3C parent-id: 8 bytes, non-zero when valid.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as lowercase hex (the wire form).
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as lowercase hex (the wire form).
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext identifies one span within one trace — exactly the
// information that crosses a process boundary.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether the context carries a usable trace identity.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the context as a W3C traceparent header value,
// version 00, sampled flag set ("00-<trace-id>-<parent-id>-01").
// Returns "" for an invalid context so callers can skip the header.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], sc.TraceID[:])
	b[35] = '-'
	hex.Encode(b[36:52], sc.SpanID[:])
	b[52], b[53], b[54] = '-', '0', '1'
	return string(b[:])
}

// ParseTraceparent parses a W3C traceparent header value. It accepts
// any version byte except ff, requires the fixed 00-style layout, and
// rejects all-zero IDs, per the spec. The trace-flags byte is parsed
// but ignored — this recorder treats every propagated trace as
// sampled.
func ParseTraceparent(s string) (SpanContext, bool) {
	var sc SpanContext
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, false
	}
	if !isHex(s[0:2]) || s[0:2] == "ff" || !isHex(s[53:55]) {
		return sc, false
	}
	if len(s) > 55 && s[55] != '-' { // future versions append "-..." fields
		return sc, false
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

// TraceContextSetter is implemented by carriers (storenet.Client) that
// want their outbound requests correlated with an ambient trace — a
// fleet sweep sets its root span's context on the store it was given.
type TraceContextSetter interface {
	SetTraceContext(SpanContext)
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// Event is one timestamped point annotation on a span. At is an
// offset from the tracer's construction instant (monotonic).
type Event struct {
	Name string
	At   time.Duration
}

// Options configures a Tracer.
type Options struct {
	// Seed seeds the splitmix64 ID stream, making trace and span IDs
	// (and therefore traceparent values and exported JSON) reproducible
	// run-to-run. Zero draws a random seed from the OS.
	Seed uint64
	// Clock returns the current offset from "tracer start"; nil uses
	// the real monotonic clock. Injectable for deterministic timing in
	// tests.
	Clock func() time.Duration
}

// Tracer records spans. The zero value is not usable; construct with
// New. A nil *Tracer is a valid always-off tracer.
type Tracer struct {
	idState atomic.Uint64
	clock   func() time.Duration

	mu       sync.Mutex
	finished []*Span

	pool sync.Pool
}

// New constructs a Tracer. See Options for determinism knobs.
func New(opts Options) *Tracer {
	seed := opts.Seed
	if seed == 0 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err == nil {
			seed = binary.LittleEndian.Uint64(b[:])
		}
		if seed == 0 {
			seed = 0x9e3779b97f4a7c15
		}
	}
	clock := opts.Clock
	if clock == nil {
		base := time.Now()
		clock = func() time.Duration { return time.Since(base) }
	}
	t := &Tracer{clock: clock}
	t.idState.Store(seed)
	t.pool.New = func() any { return new(Span) }
	return t
}

// Enabled reports whether spans will actually be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// nextID draws the next 64-bit ID from the seeded splitmix64 stream
// (the same generator the storenet client uses for retry jitter).
func (t *Tracer) nextID() uint64 {
	for {
		z := t.idState.Add(0x9e3779b97f4a7c15)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		if z != 0 { // all-zero IDs are invalid on the wire
			return z
		}
	}
}

// StartRoot opens a span at the root of a brand-new trace.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	sc := SpanContext{}
	binary.BigEndian.PutUint64(sc.TraceID[:8], t.nextID())
	binary.BigEndian.PutUint64(sc.TraceID[8:], t.nextID())
	binary.BigEndian.PutUint64(sc.SpanID[:], t.nextID())
	return t.start(name, sc, SpanID{})
}

// StartSpan opens a child span under parent. An invalid parent yields
// a new root trace, so callers never need to special-case "no ambient
// trace yet".
func (t *Tracer) StartSpan(name string, parent SpanContext) *Span {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		return t.StartRoot(name)
	}
	sc := SpanContext{TraceID: parent.TraceID}
	binary.BigEndian.PutUint64(sc.SpanID[:], t.nextID())
	return t.start(name, sc, parent.SpanID)
}

func (t *Tracer) start(name string, sc SpanContext, parent SpanID) *Span {
	s := t.pool.Get().(*Span)
	s.tr = t
	s.name = name
	s.sc = sc
	s.parent = parent
	s.tid = 0
	s.start = t.clock()
	s.end = 0
	s.ended = false
	s.events = s.events[:0]
	s.attrs = s.attrs[:0]
	return s
}

// Reset discards every finished span and returns them (with their
// event/attr backing arrays) to the pool. Live spans are unaffected —
// they re-enter the finished list when ended. Used between benchmark
// iterations and between sweeps sharing one tracer.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	finished := t.finished
	t.finished = nil
	t.mu.Unlock()
	for _, s := range finished {
		s.tr = nil
		t.pool.Put(s)
	}
}

// SpanRecord is an immutable copy of one finished span, for tests and
// renderers. Events and Attrs alias the span's backing arrays and are
// only valid until the next Reset.
type SpanRecord struct {
	Name    string
	Context SpanContext
	Parent  SpanID
	TID     int
	Start   time.Duration
	End     time.Duration
	Events  []Event
	Attrs   []Attr
}

// Snapshot returns every finished span in end order.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.finished))
	for _, s := range t.finished {
		out = append(out, SpanRecord{
			Name:    s.name,
			Context: s.sc,
			Parent:  s.parent,
			TID:     s.tid,
			Start:   s.start,
			End:     s.end,
			Events:  s.events,
			Attrs:   s.attrs,
		})
	}
	return out
}

// Span is one timed operation. Spans are single-goroutine: the
// goroutine that starts a span owns it until End. A nil *Span is a
// valid no-op. After End the span belongs to the tracer; callers must
// not touch it again.
type Span struct {
	tr     *Tracer
	name   string
	sc     SpanContext
	parent SpanID
	tid    int
	start  time.Duration
	end    time.Duration
	events []Event
	attrs  []Attr
	ended  bool
}

// Context returns the span's identity (what goes on the wire).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetTID assigns the Chrome trace "thread" lane the span renders in
// (fleet uses shard index + 1; 0 is the root lane).
func (s *Span) SetTID(tid int) {
	if s != nil {
		s.tid = tid
	}
}

// SetAttr annotates the span. Value building costs even when tracing
// is off, so guard expensive formatting with `if span != nil`.
func (s *Span) SetAttr(key, value string) {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
}

// Event records a named instant on the span's timeline.
func (s *Span) Event(name string) {
	if s == nil {
		return
	}
	s.events = append(s.events, Event{Name: name, At: s.tr.clock()})
}

// End closes the span and hands it to the tracer for export. Safe to
// call once; later calls are ignored.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.end = s.tr.clock()
	t := s.tr
	t.mu.Lock()
	t.finished = append(t.finished, s)
	t.mu.Unlock()
}
