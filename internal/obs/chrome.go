package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace_event format (the JSON
// Perfetto and chrome://tracing ingest). Complete spans are ph:"X"
// with a duration; span events are ph:"i" instants scoped to their
// thread. Timestamps are microseconds from tracer start.
type chromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`
	Dur   float64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders every finished span as Chrome trace_event
// JSON: one ph:"X" complete event per span (args carry the trace/span
// IDs and attrs, so a span in the viewer links back to server-side
// /debug/ops records) and one ph:"i" instant per span event. Load the
// file in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Snapshot()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(spans)*2), DisplayTimeUnit: "ms"}
	for _, s := range spans {
		args := make(map[string]string, len(s.Attrs)+3)
		args["trace_id"] = s.Context.TraceID.String()
		args["span_id"] = s.Context.SpanID.String()
		if !s.Parent.IsZero() {
			args["parent_id"] = s.Parent.String()
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  s.Name,
			Phase: "X",
			TS:    float64(s.Start.Microseconds()),
			Dur:   maxf(float64((s.End - s.Start).Microseconds()), 1), // zero-width spans vanish in viewers
			PID:   1,
			TID:   s.TID,
			Args:  args,
		})
		for _, ev := range s.Events {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name:  ev.Name,
				Phase: "i",
				TS:    float64(ev.At.Microseconds()),
				PID:   1,
				TID:   s.TID,
				Scope: "t",
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
