package obs

import "testing"

// BenchmarkSpanEvent is the tracing-on hot-path cost a sweep pays per
// recorded event: one monotonic clock read plus one append into the
// span's pooled backing array. bench_smoke.sh records it as
// obs_span_overhead_ns in BENCH_campaign.json.
func BenchmarkSpanEvent(b *testing.B) {
	tr := New(Options{Seed: 1})
	sp := tr.StartRoot("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rotate spans so the event array stays bounded at any b.N;
		// the rotation cost amortises to ~nothing across 8k events.
		if i%8192 == 8191 {
			sp.End()
			tr.Reset()
			sp = tr.StartRoot("bench")
		}
		sp.Event("tick")
	}
	b.StopTimer()
	sp.End()
}

// BenchmarkSpanEventDisabled is the same call sequence against a nil
// tracer — the overhead every sweep pays when tracing is off. The
// satellite claim "tracing-off overhead is nil" is pinned exactly by
// TestNilTracerZeroAllocs; this records the ns/op evidence (a nil
// check) alongside it.
func BenchmarkSpanEventDisabled(b *testing.B) {
	var tr *Tracer
	sp := tr.StartRoot("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Event("tick")
	}
}

func BenchmarkStartSpan(b *testing.B) {
	tr := New(Options{Seed: 1})
	root := tr.StartRoot("root")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("op", root.Context())
		sp.End()
		if i%4096 == 4095 {
			tr.Reset()
		}
	}
}
