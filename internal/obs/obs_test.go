package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock returns an injectable clock advancing 1ms per reading.
func fakeClock() func() time.Duration {
	var ticks time.Duration
	return func() time.Duration {
		ticks += time.Millisecond
		return ticks
	}
}

func TestSeededIDsDeterministic(t *testing.T) {
	a := New(Options{Seed: 42})
	b := New(Options{Seed: 42})
	sa := a.StartRoot("x")
	sb := b.StartRoot("x")
	if sa.Context() != sb.Context() {
		t.Fatalf("same seed, different contexts: %+v vs %+v", sa.Context(), sb.Context())
	}
	c := New(Options{Seed: 43})
	if sc := c.StartRoot("x"); sc.Context() == sa.Context() {
		t.Fatalf("different seeds produced identical context %+v", sc.Context())
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Options{Seed: 7})
	sp := tr.StartRoot("op")
	hdr := sp.Context().Traceparent()
	if len(hdr) != 55 || !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("malformed traceparent %q", hdr)
	}
	got, ok := ParseTraceparent(hdr)
	if !ok || got != sp.Context() {
		t.Fatalf("round trip: got %+v ok=%v want %+v", got, ok, sp.Context())
	}
}

func TestParseTraceparentRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // version ff is invalid
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span id
		"00-0af7651916cd43dd8448eb211c80319cXb7ad6b7169203331-01", // wrong separator
		"00-zzf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // non-hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01extra",
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted", s)
		}
	}
	// A future version with trailing fields still parses.
	if _, ok := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extrafield"); !ok {
		t.Errorf("future-versioned traceparent rejected")
	}
}

func TestSpanTreeAndEvents(t *testing.T) {
	tr := New(Options{Seed: 1, Clock: fakeClock()})
	root := tr.StartRoot("sweep")
	child := tr.StartSpan("shard", root.Context())
	child.SetTID(3)
	child.SetAttr("profile", "a100/0")
	child.Event("claim")
	child.Event("compute")
	child.End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	sh := spans[0]
	if sh.Name != "shard" || sh.Parent != root.Context().SpanID || sh.TID != 3 {
		t.Fatalf("shard span wrong: %+v", sh)
	}
	if sh.Context.TraceID != root.Context().TraceID {
		t.Fatalf("child did not inherit trace id")
	}
	if len(sh.Events) != 2 || sh.Events[0].Name != "claim" || sh.Events[1].Name != "compute" {
		t.Fatalf("events wrong: %+v", sh.Events)
	}
	if !(sh.Start < sh.Events[0].At && sh.Events[0].At < sh.Events[1].At && sh.Events[1].At < sh.End) {
		t.Fatalf("timestamps not monotonic: %+v", sh)
	}
	if len(sh.Attrs) != 1 || sh.Attrs[0] != (Attr{"profile", "a100/0"}) {
		t.Fatalf("attrs wrong: %+v", sh.Attrs)
	}
}

func TestStartSpanInvalidParentBecomesRoot(t *testing.T) {
	tr := New(Options{Seed: 1})
	sp := tr.StartSpan("orphan", SpanContext{})
	if !sp.Context().Valid() {
		t.Fatalf("orphan span has invalid context")
	}
	sp.End()
	if rec := tr.Snapshot()[0]; !rec.Parent.IsZero() {
		t.Fatalf("orphan span has parent %v", rec.Parent)
	}
}

func TestResetReusesSpans(t *testing.T) {
	tr := New(Options{Seed: 1})
	s1 := tr.StartRoot("a")
	s1.Event("e")
	s1.End()
	tr.Reset()
	if n := len(tr.Snapshot()); n != 0 {
		t.Fatalf("snapshot after reset has %d spans", n)
	}
	s2 := tr.StartRoot("b")
	if len(s2.events) != 0 {
		t.Fatalf("recycled span kept stale events: %+v", s2.events)
	}
	s2.End()
	if got := tr.Snapshot(); len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("post-reset snapshot wrong: %+v", got)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := New(Options{Seed: 9, Clock: fakeClock()})
	root := tr.StartRoot("sweep")
	sh := tr.StartSpan("shard", root.Context())
	sh.SetTID(1)
	sh.Event("compute")
	sh.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	var complete, instant int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
			args, _ := ev["args"].(map[string]any)
			if args["trace_id"] != root.Context().TraceID.String() {
				t.Fatalf("span event missing trace_id: %+v", ev)
			}
		case "i":
			instant++
		}
	}
	if complete != 2 || instant != 1 {
		t.Fatalf("got %d complete + %d instant events, want 2 + 1", complete, instant)
	}
}

// TestNilTracerZeroAllocs pins the tracing-off contract: with a nil
// tracer the whole span API — start, attrs, events, end — is zero
// allocations and therefore free on sweep hot paths.
func TestNilTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan("op", SpanContext{})
		sp.SetTID(1)
		sp.SetAttr("k", "v")
		sp.Event("e")
		if sp.Context().Valid() {
			t.Fatal("nil span has valid context")
		}
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer span path allocates %.1f/op, want 0", allocs)
	}
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Reset()
	if tr.Snapshot() != nil {
		t.Fatal("nil tracer snapshot not nil")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New(Options{Seed: 5})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				sp := tr.StartRoot("g")
				sp.Event("e")
				sp.End()
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if n := len(tr.Snapshot()); n != 8*200 {
		t.Fatalf("got %d spans, want %d", n, 8*200)
	}
}
