package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCSVFileNameConvention(t *testing.T) {
	got := CSVFileName(1770, 1260, "karolina", 2)
	want := "latencies_1770_1260_karolina_gpu2.csv"
	if got != want {
		t.Fatalf("CSVFileName = %q, want %q", got, want)
	}
}

func TestLatencyCSVRoundTrip(t *testing.T) {
	in := []float64{5.123456, 22.7, 477.318}
	var buf bytes.Buffer
	if err := WriteLatencyCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadLatencyCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if math.Abs(out[i]-in[i]) > 1e-6 {
			t.Fatalf("row %d: %v vs %v", i, out[i], in[i])
		}
	}
}

func TestReadLatencyCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadLatencyCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadLatencyCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("wrong header accepted")
	}
	if _, err := ReadLatencyCSV(strings.NewReader("measurement,switching_latency_ms\n0,notanumber\n")); err == nil {
		t.Error("non-numeric value accepted")
	}
}

func TestScatterCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteScatterCSV(&buf, []float64{1, 2, 3}, []bool{false, true, false}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasSuffix(lines[2], ",1") {
		t.Fatalf("outlier flag missing: %q", lines[2])
	}
	if err := WriteScatterCSV(&buf, []float64{1}, []bool{true, false}); err == nil {
		t.Fatal("mismatched flag length accepted")
	}
}

func TestHeatmapSetGetMinMax(t *testing.T) {
	h := NewHeatmap("test", []float64{700, 800}, []float64{700, 800, 900})
	if err := h.Set(700, 900, 5.5); err != nil {
		t.Fatal(err)
	}
	if err := h.Set(800, 700, 22.7); err != nil {
		t.Fatal(err)
	}
	if err := h.Set(999, 700, 1); err == nil {
		t.Fatal("unknown row accepted")
	}
	if got := h.Get(700, 900); got != 5.5 {
		t.Fatalf("Get = %v", got)
	}
	if got := h.Get(700, 800); !math.IsNaN(got) {
		t.Fatalf("unset cell = %v, want NaN", got)
	}
	min, max, minPair, maxPair := h.MinMax()
	if min != 5.5 || max != 22.7 {
		t.Fatalf("MinMax = %v, %v", min, max)
	}
	if minPair != [2]float64{700, 900} || maxPair != [2]float64{800, 700} {
		t.Fatalf("pairs = %v, %v", minPair, maxPair)
	}
	if mean := h.Mean(); math.Abs(mean-14.1) > 1e-9 {
		t.Fatalf("Mean = %v", mean)
	}
}

func TestHeatmapRender(t *testing.T) {
	h := NewHeatmap("latencies [ms]", []float64{700}, []float64{800, 900})
	h.Set(700, 800, 13.25)
	var buf bytes.Buffer
	if err := h.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"latencies [ms]", "800", "900", "13.25", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestHeatmapCSV(t *testing.T) {
	h := NewHeatmap("", []float64{700, 800}, []float64{900})
	h.Set(700, 900, 1.5)
	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines: %v", lines)
	}
	if lines[1] != "700,1.500" {
		t.Fatalf("row = %q", lines[1])
	}
	if lines[2] != "800," {
		t.Fatalf("NaN row = %q", lines[2])
	}
}

func TestHeatmapDiff(t *testing.T) {
	a := NewHeatmap("a", []float64{1}, []float64{2})
	b := NewHeatmap("b", []float64{1}, []float64{2})
	a.Set(1, 2, 10)
	b.Set(1, 2, 4)
	d, err := a.Diff(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Get(1, 2); got != 6 {
		t.Fatalf("diff = %v", got)
	}
	c := NewHeatmap("c", []float64{1, 2}, []float64{2})
	if _, err := a.Diff(c); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestViolin(t *testing.T) {
	xs := []float64{5, 5.1, 5.2, 5.05, 5.12, 20, 20.1, 20.2}
	v := NewViolin("increasing", xs, 8)
	if v.Summary.N != 8 {
		t.Fatalf("Summary.N = %d", v.Summary.N)
	}
	if len(v.Density) != 8 {
		t.Fatalf("density bins = %d", len(v.Density))
	}
	peak := 0.0
	for _, d := range v.Density {
		if d > peak {
			peak = d
		}
	}
	if peak != 1 {
		t.Fatalf("density peak = %v, want 1", peak)
	}
	// Bimodal data: first and last bins populated, middle sparse.
	if v.Density[0] == 0 || v.Density[len(v.Density)-1] == 0 {
		t.Fatalf("modes missing: %v", v.Density)
	}
	var buf bytes.Buffer
	if err := v.Render(&buf, 20); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#") {
		t.Fatalf("render has no bars:\n%s", buf.String())
	}
}

func TestViolinDegenerate(t *testing.T) {
	v := NewViolin("flat", []float64{7, 7, 7}, 4)
	if len(v.Density) != 0 {
		t.Fatalf("degenerate violin has density: %v", v.Density)
	}
	var buf bytes.Buffer
	if err := v.Render(&buf, 10); err != nil {
		t.Fatal(err)
	}
}

func TestBoxPlotWhiskers(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	b := NewBoxPlot("pair", xs)
	lo, hi := b.Whiskers()
	if lo != 1 {
		t.Fatalf("low whisker = %v, want 1 (clamped)", lo)
	}
	if hi >= 100 {
		t.Fatalf("high whisker = %v, want below the outlier", hi)
	}
}

func TestRenderBoxes(t *testing.T) {
	var buf bytes.Buffer
	boxes := []BoxPlot{NewBoxPlot("1065→840 gpu0", []float64{5, 6, 7})}
	if err := RenderBoxes(&buf, boxes); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1065→840 gpu0") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestMarkdownTable(t *testing.T) {
	var buf bytes.Buffer
	err := MarkdownTable(&buf, []string{"Model", "SMs"}, [][]string{{"A100", "108"}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| Model | SMs |") || !strings.Contains(out, "| A100 | 108 |") {
		t.Fatalf("output:\n%s", out)
	}
	if err := MarkdownTable(&buf, []string{"a"}, [][]string{{"1", "2"}}); err == nil {
		t.Fatal("ragged row accepted")
	}
}
