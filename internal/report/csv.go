// Package report renders campaign results into the artefact formats the
// paper's tooling and figures use: per-pair CSV files under the LATEST
// naming convention (§VI), ASCII/CSV heatmaps (Fig. 3, 7, 8), violin and
// box summaries (Fig. 4, 9), scatter exports (Fig. 5, 6), and Markdown
// tables (Tables I, II).
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVFileName builds the LATEST output-file convention: the initial and
// target frequency, the hostname, and the GPU index, so results from many
// experiments can be organised and retrieved mechanically.
func CSVFileName(initMHz, targetMHz float64, hostname string, gpuIndex int) string {
	return fmt.Sprintf("latencies_%.0f_%.0f_%s_gpu%d.csv", initMHz, targetMHz, hostname, gpuIndex)
}

// WriteLatencyCSV writes one pair's switching latencies (ms), one row per
// measurement with its acquisition index.
func WriteLatencyCSV(w io.Writer, latenciesMs []float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"measurement", "switching_latency_ms"}); err != nil {
		return err
	}
	for i, v := range latenciesMs {
		rec := []string{strconv.Itoa(i), strconv.FormatFloat(v, 'f', 6, 64)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadLatencyCSV parses a file produced by WriteLatencyCSV.
func ReadLatencyCSV(r io.Reader) ([]float64, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("report: empty latency CSV")
	}
	if len(records[0]) != 2 || records[0][1] != "switching_latency_ms" {
		return nil, fmt.Errorf("report: unexpected header %v", records[0])
	}
	out := make([]float64, 0, len(records)-1)
	for i, rec := range records[1:] {
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("report: row %d: %w", i+1, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// WriteScatterCSV exports (index, latency) pairs for scatter plots like
// Fig. 5 and Fig. 6, with an extra column flagging DBSCAN outliers.
func WriteScatterCSV(w io.Writer, latenciesMs []float64, outlier []bool) error {
	if outlier != nil && len(outlier) != len(latenciesMs) {
		return fmt.Errorf("report: outlier flags length %d != samples %d", len(outlier), len(latenciesMs))
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"measurement", "switching_latency_ms", "outlier"}); err != nil {
		return err
	}
	for i, v := range latenciesMs {
		flag := "0"
		if outlier != nil && outlier[i] {
			flag = "1"
		}
		if err := cw.Write([]string{strconv.Itoa(i), strconv.FormatFloat(v, 'f', 6, 64), flag}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
