package report

import (
	"fmt"
	"io"
	"strings"

	"golatest/internal/stats"
)

// Violin is the data behind one half of a Fig. 4 panel: the latency
// distribution of all increasing (or decreasing) transitions of a GPU,
// summarised by quantiles and a binned density profile.
type Violin struct {
	Label   string
	Summary stats.Summary
	// Density is the normalised histogram over [Summary.Min, Summary.Max]
	// (peak scaled to 1); empty when fewer than two distinct values.
	Density []float64
}

// NewViolin builds a violin from raw latencies with the given number of
// density bins.
func NewViolin(label string, latenciesMs []float64, bins int) Violin {
	v := Violin{Label: label, Summary: stats.Summarize(latenciesMs)}
	if len(latenciesMs) < 2 || v.Summary.Max <= v.Summary.Min || bins <= 0 {
		return v
	}
	h := stats.NewHistogram(latenciesMs, v.Summary.Min, v.Summary.Max+1e-9, bins)
	peak := 0
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		return v
	}
	v.Density = make([]float64, bins)
	for i, c := range h.Counts {
		v.Density[i] = float64(c) / float64(peak)
	}
	return v
}

// Render writes a sideways ASCII violin: one line per density bin, bar
// length proportional to density, annotated with the bin's value range.
func (v Violin) Render(w io.Writer, width int) error {
	if _, err := fmt.Fprintf(w, "%s  %s\n", v.Label, v.Summary.String()); err != nil {
		return err
	}
	if len(v.Density) == 0 {
		_, err := fmt.Fprintln(w, "  (insufficient spread for a density profile)")
		return err
	}
	span := v.Summary.Max - v.Summary.Min
	for i, d := range v.Density {
		lo := v.Summary.Min + span*float64(i)/float64(len(v.Density))
		bar := strings.Repeat("#", int(d*float64(width)+0.5))
		if _, err := fmt.Fprintf(w, "  %10.2f ms |%s\n", lo, bar); err != nil {
			return err
		}
	}
	return nil
}

// BoxPlot is the data behind one Fig. 9 box: the five-number summary of
// one pair on one device instance.
type BoxPlot struct {
	Label   string
	Summary stats.Summary
}

// NewBoxPlot builds a box plot summary.
func NewBoxPlot(label string, latenciesMs []float64) BoxPlot {
	return BoxPlot{Label: label, Summary: stats.Summarize(latenciesMs)}
}

// Whiskers returns the Tukey whisker positions (1.5×IQR, clamped to the
// data range).
func (b BoxPlot) Whiskers() (lo, hi float64) {
	iqr := b.Summary.IQR()
	lo = b.Summary.Q25 - 1.5*iqr
	hi = b.Summary.Q75 + 1.5*iqr
	if lo < b.Summary.Min {
		lo = b.Summary.Min
	}
	if hi > b.Summary.Max {
		hi = b.Summary.Max
	}
	return lo, hi
}

// RenderBoxes writes an aligned text table of box statistics.
func RenderBoxes(w io.Writer, boxes []BoxPlot) error {
	if _, err := fmt.Fprintf(w, "%-28s %8s %8s %8s %8s %8s\n",
		"series", "min", "q25", "median", "q75", "max"); err != nil {
		return err
	}
	for _, b := range boxes {
		s := b.Summary
		if _, err := fmt.Fprintf(w, "%-28s %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			b.Label, s.Min, s.Q25, s.Median, s.Q75, s.Max); err != nil {
			return err
		}
	}
	return nil
}

// MarkdownTable writes a GitHub-style table from a header and rows.
func MarkdownTable(w io.Writer, header []string, rows [][]string) error {
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(header, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("report: row width %d != header width %d", len(row), len(header))
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	return nil
}
