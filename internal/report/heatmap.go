package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Heatmap is a rectangular latency matrix: initial frequencies in rows,
// target frequencies in columns (the paper's Fig. 3 orientation). NaN
// cells mean "not measured" (diagonal, excluded, or skipped pairs).
type Heatmap struct {
	Title     string
	RowLabels []float64 // initial frequencies, MHz
	ColLabels []float64 // target frequencies, MHz
	Cells     [][]float64
}

// NewHeatmap allocates a heatmap with all cells NaN.
func NewHeatmap(title string, rows, cols []float64) *Heatmap {
	h := &Heatmap{
		Title:     title,
		RowLabels: append([]float64(nil), rows...),
		ColLabels: append([]float64(nil), cols...),
		Cells:     make([][]float64, len(rows)),
	}
	for i := range h.Cells {
		h.Cells[i] = make([]float64, len(cols))
		for j := range h.Cells[i] {
			h.Cells[i][j] = math.NaN()
		}
	}
	return h
}

// Set stores a value at (initMHz, targetMHz); unknown labels are an error.
func (h *Heatmap) Set(initMHz, targetMHz, value float64) error {
	i := indexOf(h.RowLabels, initMHz)
	j := indexOf(h.ColLabels, targetMHz)
	if i < 0 || j < 0 {
		return fmt.Errorf("report: pair %v→%v not in heatmap axes", initMHz, targetMHz)
	}
	h.Cells[i][j] = value
	return nil
}

// Get reads the value at (initMHz, targetMHz); NaN when absent.
func (h *Heatmap) Get(initMHz, targetMHz float64) float64 {
	i := indexOf(h.RowLabels, initMHz)
	j := indexOf(h.ColLabels, targetMHz)
	if i < 0 || j < 0 {
		return math.NaN()
	}
	return h.Cells[i][j]
}

func indexOf(xs []float64, v float64) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

// MinMax returns the smallest and largest finite cells and their pairs.
func (h *Heatmap) MinMax() (min, max float64, minPair, maxPair [2]float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for i, row := range h.Cells {
		for j, v := range row {
			if math.IsNaN(v) {
				continue
			}
			if v < min {
				min, minPair = v, [2]float64{h.RowLabels[i], h.ColLabels[j]}
			}
			if v > max {
				max, maxPair = v, [2]float64{h.RowLabels[i], h.ColLabels[j]}
			}
		}
	}
	return min, max, minPair, maxPair
}

// Mean returns the mean of the finite cells (NaN if none).
func (h *Heatmap) Mean() float64 {
	var sum float64
	var n int
	for _, row := range h.Cells {
		for _, v := range row {
			if !math.IsNaN(v) {
				sum += v
				n++
			}
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Render writes a fixed-width text rendering: row label column, one
// column per target, values to two decimals, NaN as "-".
func (h *Heatmap) Render(w io.Writer) error {
	const cell = 9
	if h.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", h.Title); err != nil {
			return err
		}
	}
	var b strings.Builder
	b.WriteString(pad("init\\tgt", cell))
	for _, c := range h.ColLabels {
		b.WriteString(pad(strconv.FormatFloat(c, 'f', 0, 64), cell))
	}
	b.WriteByte('\n')
	for i, r := range h.RowLabels {
		b.WriteString(pad(strconv.FormatFloat(r, 'f', 0, 64), cell))
		for j := range h.ColLabels {
			v := h.Cells[i][j]
			if math.IsNaN(v) {
				b.WriteString(pad("-", cell))
			} else {
				b.WriteString(pad(strconv.FormatFloat(v, 'f', 2, 64), cell))
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s + " "
	}
	return s + strings.Repeat(" ", width-len(s))
}

// WriteCSV exports the heatmap with labelled axes.
func (h *Heatmap) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(h.ColLabels)+1)
	header = append(header, "init_mhz\\target_mhz")
	for _, c := range h.ColLabels {
		header = append(header, strconv.FormatFloat(c, 'f', 0, 64))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, r := range h.RowLabels {
		rec := make([]string, 0, len(h.ColLabels)+1)
		rec = append(rec, strconv.FormatFloat(r, 'f', 0, 64))
		for j := range h.ColLabels {
			v := h.Cells[i][j]
			if math.IsNaN(v) {
				rec = append(rec, "")
			} else {
				rec = append(rec, strconv.FormatFloat(v, 'f', 3, 64))
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Diff returns a heatmap of h − other cell-wise (axes must match), the
// operation behind the Fig. 7/8 range maps.
func (h *Heatmap) Diff(other *Heatmap) (*Heatmap, error) {
	if len(h.RowLabels) != len(other.RowLabels) || len(h.ColLabels) != len(other.ColLabels) {
		return nil, fmt.Errorf("report: heatmap shapes differ")
	}
	out := NewHeatmap(h.Title+" (diff)", h.RowLabels, h.ColLabels)
	for i := range h.Cells {
		for j := range h.Cells[i] {
			out.Cells[i][j] = h.Cells[i][j] - other.Cells[i][j]
		}
	}
	return out, nil
}
