package storenet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"golatest/internal/core"
	"golatest/internal/obs"
	"golatest/internal/store"
)

// ErrUnavailable marks a request fast-failed by the open circuit
// breaker: the daemon is evidently down and the client refused to burn
// a timeout finding out again. Reads treat it as a miss; Put falls back
// to the deferred (write-behind) path when a local tier exists.
var ErrUnavailable = errors.New("storenet: store unavailable (circuit open)")

// ErrAuth marks a request the daemon understood and refused on
// credentials: 401 (missing/unknown token) or 403 (insufficient
// scope). Terminal by design — the identical request would be refused
// identically, so it is never retried and a Put carrying it is never
// deferred to the pending journal (a journal full of doomed replays
// would turn a config error into silent data loss at reconcile time).
// Fix ClientOptions.Token or the daemon's token file instead.
var ErrAuth = errors.New("storenet: rejected by daemon auth (check ClientOptions.Token and its scopes)")

// ErrRateLimited marks a request budget exhausted against a live,
// throttling daemon (429). Each 429 is honored with its Retry-After
// before the next attempt and never counts as a breaker strike — the
// daemon answering 429 is healthy, and tripping the breaker would
// convert backpressure into a fake outage. Like ErrAuth it never
// defers a Put: replaying later through the journal would dodge the
// very quota the daemon is enforcing.
var ErrRateLimited = errors.New("storenet: rate limited by daemon")

// Write-behind journal layout: one marker file per deferred digest, in
// a subdirectory of the cache store's directory. The store's own scans
// (manifest rebuild, GC, blob counting) skip directories, so the
// journal is invisible to the local tier's machinery; the blob bytes
// themselves live in the cache as ordinary blobs, the marker only
// records "the daemon has not seen this one yet". The marker body is
// the deferring request's W3C traceparent (or empty when tracing was
// off), so a reconcile replay — possibly minutes later, possibly from
// a different process — still carries the originating sweep's trace ID
// and the daemon's /debug/ops ring attributes the late write to the
// sweep that produced it.
const (
	pendingDirName = "pending"
	pendingSuffix  = ".pend"
)

// Client speaks the v1 API to a stored daemon and implements
// store.Backend, so fleet sweeps and experiment suites use a remote
// store through the exact code paths they use for a local directory.
//
// # Cache tier
//
// With Options.Cache set, the client runs write-through over a local
// *store.Store: Get serves local hits without a network round trip, a
// remote hit heals the local tier (the validated bytes are written
// down), and Put lands in both. Because blobs are immutable per digest,
// the tiers can never disagree about a key's content — only about its
// presence — so the local tier is pure acceleration. Leases always go
// remote: claims must be arbitrated fleet-wide, never per host.
//
// # Failure discipline
//
// Reads degrade, writes surface — the Backend contract. Idempotent
// verbs (GET, HEAD, PUT: content-addressed, same bytes every time) are
// retried with jittered backoff on connection errors and 5xx responses;
// lease operations are never retried, because an acquire whose response
// was lost may have been granted — the claim loop's wait/steal path
// resolves that ambiguity within one TTL, which a blind retry would
// turn into a self-steal. Every attempt carries its own request
// deadline (Options.RequestTimeout), so one hung response costs one
// attempt, never the whole retry budget.
//
// A Get whose response body is truncated, tampered with, or otherwise
// fails validation (store.ValidateBlob: envelope, schema, digest) is a
// miss and ticks the Corrupt counter — the caller recomputes and the
// subsequent Put heals both tiers, mirroring the local corrupt-blob
// path. It is never an error and can never yield a wrong result.
//
// # Circuit breaker and degraded mode
//
// Consecutive attempt failures open a circuit breaker: while it is
// open, requests fail immediately with ErrUnavailable instead of each
// burning a timeout-and-retry cycle, and after a cooldown a single
// half-open probe decides whether to close it. With a local tier
// configured the client then runs in degraded mode rather than
// failing: Gets serve local-only, and Puts land in the local tier plus
// a write-behind journal (pending/ inside the cache directory) that
// Reconcile — explicit, or kicked off automatically when the breaker
// closes — replays to the daemon. Blobs are content-addressed and
// immutable, so the replay is idempotent and byte-identical to what a
// healthy Put would have stored: degraded mode trades away only
// freshness of the shared tier, never correctness or exactly-once
// artefacts. Resilience() reports the degraded/deferred/reconciled
// traffic.
type Client struct {
	base       string
	hc         *http.Client
	cache      *store.Store
	auth       string // "Bearer <token>", or "" for open daemons
	retries    int
	backoff    time.Duration
	reqTimeout time.Duration
	br         *breaker

	// jstate is the retry-jitter RNG state, advanced atomically per
	// draw; seeding it (ClientOptions.Seed) makes the jitter sequence —
	// and thus every backoff schedule — reproducible in tests.
	jstate atomic.Uint64

	// pendingDir is the write-behind journal: one marker file per
	// deferred digest, persisted inside the cache directory so an
	// interrupted process's deferred writes survive to the next
	// Reconcile (the experiments -reconcile flag).
	pendingDir  string
	reconcileMu sync.Mutex

	// tracer records one client span per wire operation; nil (the
	// default) keeps the whole span path at zero cost. tctx is the
	// ambient parent — the sweep root span's context, handed over by
	// fleet.Sweep through SetTraceContext — under which request spans
	// are parented and whose traceparent rides every request.
	tracer *obs.Tracer
	tctx   atomic.Pointer[obs.SpanContext]

	// log receives breaker state edges and reconcile outcomes; defaults
	// to discard. lastErr remembers the most recent failed attempt's
	// error text so a breaker-open log line can say what broke.
	log     *slog.Logger
	lastErr atomic.Pointer[string]

	hits, misses, corrupt, puts             atomic.Int64
	degraded, deferred, reconciled, pending atomic.Int64

	// Telemetry counters beyond the Backend Counters contract — see
	// Telemetry().
	retryCount, rateLimited                atomic.Int64
	brOpened, brHalfOpened, brClosed       atomic.Int64
	decodePasses, bytesSent, bytesReceived atomic.Int64
}

// ClientOptions configures a Client; the zero value works.
type ClientOptions struct {
	// Cache, when non-nil, is the local write-through tier — and the
	// degraded-mode fallback: with it set, an unreachable daemon means
	// local-only reads and journaled (deferred) writes instead of
	// errors.
	Cache *store.Store
	// HTTPClient overrides the default client (keep-alive transport).
	// Per-attempt deadlines come from RequestTimeout either way.
	HTTPClient *http.Client
	// Token is the bearer credential sent as "Authorization: Bearer
	// <token>" on every request, for daemons running with -tokens.
	// Empty means none (open daemons). A daemon answering 401/403 is
	// terminal per request — see ErrAuth — and 429 throttling is
	// honored via Retry-After without tripping the circuit breaker.
	Token string
	// Retries is the attempt budget per idempotent request; 0 means 3.
	Retries int
	// RetryBackoff is the initial retry delay, doubling per attempt
	// with up to 50% seeded jitter on top; 0 means 50 ms.
	RetryBackoff time.Duration
	// RequestTimeout bounds each attempt (not the whole retry budget)
	// via a per-request context, so one hung response cannot consume
	// every retry's worth of wall clock. 0 means 15 s.
	RequestTimeout time.Duration
	// BreakerThreshold is how many consecutive attempt failures open
	// the circuit breaker; 0 means 5, negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before
	// admitting a half-open probe; 0 means 2 s.
	BreakerCooldown time.Duration
	// Seed derives the retry-jitter sequence. Two clients with distinct
	// seeds (derive it from the fleet owner id) desynchronise their
	// retry storms; equal seeds reproduce schedules exactly, which is
	// what keeps fault-injection tests deterministic. 0 is a valid
	// seed.
	Seed uint64
	// Tracer, when non-nil, records one client span per wire operation
	// (get/put/head/lease/...) and stamps every request with a W3C
	// traceparent header so the daemon's logs, latency observations and
	// /debug/ops flight recorder correlate with this client's spans.
	// nil means tracing off, at zero cost on every path.
	Tracer *obs.Tracer
	// Logger receives operational edges — breaker open/half-open/close
	// transitions (with consecutive-failure count and last error) and
	// reconcile outcomes. nil discards.
	Logger *slog.Logger
}

var (
	_ store.Backend         = (*Client)(nil)
	_ store.Resilient       = (*Client)(nil)
	_ store.ValidatedGetter = (*Client)(nil)
	_ store.ValidatedPutter = (*Client)(nil)
)

// NewClient validates the base URL (http or https, e.g. the
// "http://host:8417" a stored daemon prints) and builds the backend.
// Construction does not touch the network: a daemon that is down at
// start behaves like any other degraded read until writes need it.
func NewClient(baseURL string, opts ClientOptions) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("storenet: base url %q: %w", baseURL, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("storenet: base url %q: need http(s)://host[:port]", baseURL)
	}
	hc := opts.HTTPClient
	if hc == nil {
		// One client per fleet process issues many small requests to one
		// host: keep-alive connection reuse is the whole ballgame. No
		// blanket Timeout — each attempt carries its own context
		// deadline (RequestTimeout), which is what lets a retry start
		// the moment its predecessor hangs.
		hc = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	retries := opts.Retries
	if retries <= 0 {
		retries = 3
	}
	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	reqTimeout := opts.RequestTimeout
	if reqTimeout <= 0 {
		reqTimeout = 15 * time.Second
	}
	auth := ""
	if opts.Token != "" {
		auth = "Bearer " + opts.Token
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	c := &Client{
		base:       strings.TrimRight(u.String(), "/"),
		hc:         hc,
		cache:      opts.Cache,
		auth:       auth,
		retries:    retries,
		backoff:    backoff,
		reqTimeout: reqTimeout,
		br:         newBreaker(opts.BreakerThreshold, opts.BreakerCooldown, nil),
		tracer:     opts.Tracer,
		log:        logger,
	}
	// Breaker state edges were previously silent — an operator learned
	// the circuit had opened only from a wall of ErrUnavailable. Log
	// every edge with the evidence (consecutive failures, last error)
	// and count them for Telemetry(). The hook runs under the breaker
	// lock, so it only counts and logs.
	c.br.onTransition = func(from, to int, fails int) {
		switch to {
		case breakerOpen:
			c.brOpened.Add(1)
		case breakerHalfOpen:
			c.brHalfOpened.Add(1)
		case breakerClosed:
			c.brClosed.Add(1)
		}
		lastErr := ""
		if p := c.lastErr.Load(); p != nil {
			lastErr = *p
		}
		lvl := slog.LevelInfo
		if to == breakerOpen {
			lvl = slog.LevelWarn
		}
		c.log.Log(context.Background(), lvl, "storenet: breaker state change",
			"base", c.base,
			"from", breakerStateName(from),
			"to", breakerStateName(to),
			"consecutive_failures", fails,
			"last_error", lastErr)
	}
	c.jstate.Store(opts.Seed ^ 0x9e3779b97f4a7c15)
	if opts.Cache != nil {
		c.pendingDir = filepath.Join(opts.Cache.Dir(), pendingDirName)
		// Count journal entries a previous process left behind, so
		// Resilience().Pending is right from the first call and the
		// recovery edge knows there is something to replay.
		if entries, err := os.ReadDir(c.pendingDir); err == nil {
			for _, de := range entries {
				if !de.IsDir() && strings.HasSuffix(de.Name(), pendingSuffix) {
					c.pending.Add(1)
				}
			}
		}
	}
	return c, nil
}

// Location implements Backend: a remote store is located at its URL.
func (c *Client) Location() string { return c.base }

// SetTraceContext implements obs.TraceContextSetter: it installs the
// ambient parent (typically a sweep's root span context) under which
// subsequent request spans are created and propagated. The zero
// context clears it. Safe for concurrent use; store.Backend carries no
// context parameter, so this is how a trace crosses the Backend seam.
func (c *Client) SetTraceContext(sc obs.SpanContext) {
	if sc.Valid() {
		c.tctx.Store(&sc)
	} else {
		c.tctx.Store(nil)
	}
}

// traceParent is the ambient parent context for new request spans.
func (c *Client) traceParent() obs.SpanContext {
	if p := c.tctx.Load(); p != nil {
		return *p
	}
	return obs.SpanContext{}
}

// startSpan opens one client span for a wire operation under the
// ambient trace context. Returns nil (free everywhere downstream) when
// tracing is off.
func (c *Client) startSpan(op string) *obs.Span {
	if c.tracer == nil {
		return nil
	}
	return c.tracer.StartSpan(op, c.traceParent())
}

func (c *Client) blobURL(digest string) string {
	return c.base + apiPrefix + "/blobs/" + url.PathEscape(digest)
}

func (c *Client) leaseURL(digest, op string) string {
	u := c.base + apiPrefix + "/leases/" + url.PathEscape(digest)
	if op != "" {
		u += "/" + op
	}
	return u
}

// jitter draws the next seeded jitter value in [0, max]. Without it,
// every worker in a fleet that hits the same blip sleeps the identical
// deterministic backoff and retries in lockstep — N synchronized
// retry waves against a daemon that is trying to come back. The draw
// is a splitmix64 step over atomic state: deterministic per seed (so
// fault-injection tests reproduce schedules exactly), distinct per
// seed across a fleet.
func (c *Client) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	z := c.jstate.Add(0x9e3779b97f4a7c15)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return time.Duration(z % uint64(max+1))
}

// newAttempt builds one request under its own deadline. The returned
// cancel must run once the attempt's response is fully consumed —
// success paths hand it to cancelBody (fired on Body.Close), failure
// paths call it directly.
func (c *Client) newAttempt(method, u string, body []byte, rawEncoding bool, traceparent string) (*http.Request, context.CancelFunc, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.reqTimeout)
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	if c.auth != "" {
		req.Header.Set("Authorization", c.auth)
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	if rawEncoding {
		req.Header.Set("Accept-Encoding", "gzip")
		// Declare the binary container: a v3-aware daemon answers with
		// its disk bytes verbatim (no Content-Encoding), an older one
		// ignores the header and serves the gzip view negotiated above.
		req.Header.Set("X-Blob-Accept", "v3")
	}
	if body != nil {
		switch store.ContainerOf(body) {
		case store.ContainerV3:
			req.Header.Set("Content-Type", "application/octet-stream")
		case store.ContainerV2:
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("Content-Encoding", "gzip")
		default:
			req.Header.Set("Content-Type", "application/json")
		}
	}
	return req, cancel, nil
}

// cancelBody ties an attempt's context to its response body: the
// deadline must outlive the body read (cancelling earlier would kill
// the transfer mid-stream), and every response path already closes the
// body to recycle the keep-alive connection.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// recordAttempt feeds the breaker and, on the open→closed recovery
// edge, kicks the background reconciler when deferred writes are
// waiting — the "heal the remote when it returns" half of degraded
// mode, with no operator in the loop. cause (nil on success) is
// remembered so the breaker's transition log can name what broke.
func (c *Client) recordAttempt(ok bool, cause error) {
	if cause != nil {
		s := cause.Error()
		c.lastErr.Store(&s)
	}
	if c.br.record(ok) && c.pending.Load() > 0 {
		go func() { _, _ = c.Reconcile() }()
	}
}

// doIdempotent issues one GET/HEAD/PUT with bounded retries on
// connection errors and 5xx responses, each attempt under its own
// RequestTimeout deadline. The body, when present, is replayed from
// memory on every attempt. 4xx responses return immediately — retrying
// a request the server understood and refused only repeats the
// refusal. While the circuit breaker is open the whole call fails
// immediately with ErrUnavailable — no connection, no sleep.
//
// span, when non-nil, is the caller's client span for this logical
// operation: its context rides every attempt as the traceparent header
// (so the daemon's records correlate back to it) and retry/throttle
// edges are recorded on it as events. parent overrides the propagated
// context when span is nil — the reconcile replay path uses it to
// carry a journaled marker's original trace even when tracing is off.
//
// rawEncoding (blob requests only) sets Accept-Encoding explicitly,
// which (per net/http) disables the transport's transparent
// decompression: the blob body arrives as the raw compressed container
// the daemon has on disk, and the client inflates it itself through
// the store codec's pooled readers — one decompression, on our terms.
// Control-plane requests leave the header to the transport, so their
// JSON survives any gzip a reverse proxy in front of the daemon may
// add (the transport inflates it transparently).
func (c *Client) doIdempotent(method, u string, body []byte, rawEncoding bool, span *obs.Span, parent obs.SpanContext) (*http.Response, error) {
	traceparent := ""
	if span != nil {
		traceparent = span.Context().Traceparent()
	} else if parent.Valid() {
		traceparent = parent.Traceparent()
	}
	var lastErr error
	for attempt := 0; attempt < c.retries; attempt++ {
		if attempt > 0 {
			c.retryCount.Add(1)
			span.Event("retry")
			d := c.backoff << (attempt - 1)
			time.Sleep(d + c.jitter(d/2))
		}
		if !c.br.allow() {
			// Fail the operation, not just the attempt: the remaining
			// retries would fast-fail identically, and sleeping between
			// them is exactly the stall the breaker exists to remove.
			span.Event("breaker.fastfail")
			return nil, fmt.Errorf("storenet: %s %s: %w", method, u, ErrUnavailable)
		}
		req, cancel, err := c.newAttempt(method, u, body, rawEncoding, traceparent)
		if err != nil {
			return nil, err
		}
		c.bytesSent.Add(int64(len(body)))
		resp, err := c.hc.Do(req)
		if err != nil {
			cancel()
			c.recordAttempt(false, err)
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			c.drain(resp)
			cancel()
			lastErr = fmt.Errorf("storenet: %s %s: %s", method, u, resp.Status)
			c.recordAttempt(false, lastErr)
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			// Backpressure from a live daemon: honor its Retry-After on
			// top of the normal backoff, and feed the breaker a success —
			// a throttling daemon is a healthy daemon, and opening the
			// circuit here would turn a quota into a fake outage (and,
			// with a local tier, shunt writes into the pending journal,
			// which a quota refusal must never reach).
			c.rateLimited.Add(1)
			span.Event("ratelimited")
			wait := retryAfterDelay(resp)
			c.drain(resp)
			cancel()
			c.recordAttempt(true, nil)
			lastErr = fmt.Errorf("storenet: %s %s: %s: %w", method, u, resp.Status, ErrRateLimited)
			if attempt < c.retries-1 {
				time.Sleep(wait)
			}
			continue
		}
		c.recordAttempt(true, nil)
		resp.Body = cancelBody{ReadCloser: resp.Body, cancel: cancel}
		return resp, nil
	}
	return nil, fmt.Errorf("storenet: %s %s: giving up after %d attempts: %w",
		method, u, c.retries, lastErr)
}

// doOnce issues one non-idempotent (lease) request, exactly once,
// under one RequestTimeout deadline. Lease traffic shares the breaker:
// its failures are the same daemon being down, and while the circuit
// is open a claim fast-fails with ErrUnavailable — which the fleet's
// degrade policy turns into an unleased recompute instead of an
// aborted sweep.
func (c *Client) doOnce(u string, body any, span *obs.Span) (*http.Response, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	if !c.br.allow() {
		span.Event("breaker.fastfail")
		return nil, fmt.Errorf("storenet: POST %s: %w", u, ErrUnavailable)
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.reqTimeout)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(data))
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.auth != "" {
		req.Header.Set("Authorization", c.auth)
	}
	if tp := span.Context().Traceparent(); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	c.bytesSent.Add(int64(len(data)))
	resp, err := c.hc.Do(req)
	if err != nil {
		cancel()
		c.recordAttempt(false, err)
		return nil, err
	}
	// Any response is a live daemon — a 409 busy lease is the protocol
	// working, not a failure.
	c.recordAttempt(true, nil)
	resp.Body = cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// retryAfterDelay parses a 429's Retry-After header (the delta-seconds
// form the daemon emits; the HTTP-date form is not worth supporting
// for a single-purpose API). Missing or malformed values fall back to
// the normal backoff schedule; hostile values are capped so a bad
// proxy cannot park a client for minutes.
func retryAfterDelay(resp *http.Response) time.Duration {
	const maxRetryAfter = 30 * time.Second
	secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After")))
	if err != nil || secs < 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d
}

// drain discards and closes a response body so the connection returns
// to the keep-alive pool instead of being torn down.
func (c *Client) drain(resp *http.Response) {
	n, _ := io.Copy(io.Discard, io.LimitReader(resp.Body, maxControlBytes))
	c.bytesReceived.Add(n)
	resp.Body.Close()
}

// readBody reads the full (bounded) body and closes it. Every response
// — including 404 messages and JSON with a trailing newline — must be
// consumed to EOF, or the transport discards the connection instead of
// pooling it and each subsequent request pays a fresh handshake.
func (c *Client) readBody(resp *http.Response, limit int64) ([]byte, error) {
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, limit))
	c.bytesReceived.Add(int64(len(data)))
	return data, err
}

// bodyBufs recycles blob-body buffers across warm Gets. The buffer's
// bytes never outlive the Get: validation decodes out of them (JSON
// copies every string) and the cache heal writes them to disk, so
// returning the buffer to the pool afterwards is safe — and it deletes
// the single largest per-Get allocation from the warm path.
var bodyBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBodyBuf caps what bodyBufs retains: one pathological
// near-maxBlobBytes response must not pin a 256 MiB buffer in the pool
// for the life of the process.
const maxPooledBodyBuf = 8 << 20

func putBodyBuf(buf *bytes.Buffer) {
	if buf.Cap() <= maxPooledBodyBuf {
		bodyBufs.Put(buf)
	}
}

// readBodyInto drains the (bounded) body into buf and closes it,
// reporting a transfer that died mid-body.
func (c *Client) readBodyInto(buf *bytes.Buffer, resp *http.Response, limit int64) error {
	defer resp.Body.Close()
	n, err := buf.ReadFrom(io.LimitReader(resp.Body, limit))
	c.bytesReceived.Add(n)
	return err
}

// Get resolves a key: local tier first, then the daemon. The response
// body is the blob container (the v3 disk bytes verbatim from a
// v3-aware daemon, negotiated via X-Blob-Accept; the gzip view from an
// older one), read into a pooled buffer and validated exactly once by
// store.ValidateBlobBytes — the canonical JSON is never materialised,
// and the resulting ValidatedBlob carries both the decoded result and
// the proof the bytes cleared validation. A remote hit heals the local
// tier by handing that proof to PutValidated, which writes the wire
// bytes to disk verbatim with no second decode; an invalid or
// truncated remote body is a miss (Corrupt counter), exactly like a
// corrupt local blob.
func (c *Client) Get(k store.Key) (*core.Result, bool) {
	if c.cache != nil {
		if res, ok := c.cache.Get(k); ok {
			c.hits.Add(1)
			return res, true
		}
	}
	span := c.startSpan("storenet.get")
	defer span.End()
	resp, err := c.doIdempotent(http.MethodGet, c.blobURL(k.Digest), nil, true, span, obs.SpanContext{})
	if err != nil {
		if errors.Is(err, ErrUnavailable) {
			// Degraded read: the local tier (checked above) was the whole
			// answer. A miss here is recoverable — the caller recomputes —
			// and it cost microseconds instead of a timeout.
			c.degraded.Add(1)
			span.SetAttr("outcome", "degraded")
		} else {
			span.SetAttr("outcome", "error")
		}
		c.misses.Add(1)
		return nil, false
	}
	buf := bodyBufs.Get().(*bytes.Buffer)
	buf.Reset()
	defer putBodyBuf(buf)
	readErr := c.readBodyInto(buf, resp, maxBlobBytes)
	if resp.StatusCode != http.StatusOK {
		c.misses.Add(1)
		span.SetAttr("outcome", "miss")
		return nil, false
	}
	if readErr != nil {
		// The transfer died mid-body: treat as a miss, recompute, heal.
		c.corrupt.Add(1)
		c.misses.Add(1)
		span.SetAttr("outcome", "corrupt")
		return nil, false
	}
	c.decodePasses.Add(1)
	vb, err := store.ValidateBlobBytes(buf.Bytes(), k.Digest)
	if err != nil {
		c.corrupt.Add(1)
		c.misses.Add(1)
		span.SetAttr("outcome", "corrupt")
		return nil, false
	}
	if c.cache != nil {
		// Best-effort heal: a full local disk must not fail a read the
		// remote already answered. The proof-carrying handoff writes the
		// wire bytes verbatim — no second decode. (PutValidated persists
		// before returning, inside the pooled buffer's lifetime.)
		_ = c.cache.PutValidated(vb)
	}
	c.hits.Add(1)
	span.SetAttr("outcome", "hit")
	return vb.Result(), true
}

// GetValidated implements store.ValidatedGetter: Get's wire path, but
// returning the proof-carrying blob — validated container bytes plus
// the decoded result from the same single parse — instead of just the
// result. The router's read-repair rides this: a member that misses is
// healed with another member's validated bytes verbatim. Unlike Get,
// the returned bytes are freshly allocated (not pooled scratch), so
// they survive the call; local-tier counters and heal behavior match
// Get exactly.
func (c *Client) GetValidated(digest string) (*store.ValidatedBlob, bool) {
	if c.cache != nil {
		if vb, ok := c.cache.GetValidated(digest); ok {
			c.hits.Add(1)
			return vb, true
		}
	}
	span := c.startSpan("storenet.get")
	defer span.End()
	resp, err := c.doIdempotent(http.MethodGet, c.blobURL(digest), nil, true, span, obs.SpanContext{})
	if err != nil {
		if errors.Is(err, ErrUnavailable) {
			c.degraded.Add(1)
			span.SetAttr("outcome", "degraded")
		} else {
			span.SetAttr("outcome", "error")
		}
		c.misses.Add(1)
		return nil, false
	}
	var buf bytes.Buffer
	readErr := c.readBodyInto(&buf, resp, maxBlobBytes)
	if resp.StatusCode != http.StatusOK {
		c.misses.Add(1)
		span.SetAttr("outcome", "miss")
		return nil, false
	}
	if readErr != nil {
		c.corrupt.Add(1)
		c.misses.Add(1)
		span.SetAttr("outcome", "corrupt")
		return nil, false
	}
	c.decodePasses.Add(1)
	vb, err := store.ValidateBlobBytes(buf.Bytes(), digest)
	if err != nil {
		c.corrupt.Add(1)
		c.misses.Add(1)
		span.SetAttr("outcome", "corrupt")
		return nil, false
	}
	if c.cache != nil {
		_ = c.cache.PutValidated(vb)
	}
	c.hits.Add(1)
	span.SetAttr("outcome", "hit")
	return vb, true
}

// Healthy reports whether this client currently offers its daemon a
// realistic chance of answering: false exactly while the circuit
// breaker is open inside its cooldown (every request would fast-fail
// with ErrUnavailable). The replicating router uses it to route
// traffic — most importantly lease claims — past a downed member to
// its ring successor, and resumes routing here the moment the breaker
// would admit its half-open probe.
func (c *Client) Healthy() bool { return !c.br.isOpen() }

// Put encodes once — straight into the v3 binary container — and
// writes through: daemon first (authoritative — its failure fails the
// Put), then the local tier (best-effort, the same bytes verbatim).
// The wire carries the v3 bytes as application/octet-stream; the
// daemon stores them as-is after validation.
//
// When the daemon is unreachable (breaker open, or the retry budget
// exhausted on transport/5xx failures) and a local tier exists, the Put
// defers instead of failing: the blob lands locally and a journal
// marker records it for Reconcile. A 4xx refusal never defers — the
// daemon saw the request and rejected it, so replaying the identical
// bytes later would fail identically.
func (c *Client) Put(k store.Key, res *core.Result) error {
	if res == nil {
		return fmt.Errorf("storenet: nil result for %s", k)
	}
	data, err := store.EncodeBlobV3(k, res)
	if err != nil {
		return fmt.Errorf("storenet: encode %s: %w", k, err)
	}
	return c.putContainer(k, data, func() ([]byte, error) { return store.EncodeBlob(k, res) })
}

// PutValidated implements store.ValidatedPutter: it uploads an
// already-validated container verbatim — no re-encode, no second parse.
// This is the write half of the router's read-repair path: the bytes a
// member's Get validated travel to an under-replicated member exactly
// as they came off the wire. Degraded-mode semantics match Put (an
// unreachable daemon defers into the journal when a local tier exists).
func (c *Client) PutValidated(vb *store.ValidatedBlob) error {
	k := vb.Key()
	// The blob's bytes may alias a caller's scratch buffer; the journal
	// and retry paths below persist or replay them synchronously within
	// this call, so no copy is needed.
	return c.putContainer(k, vb.Bytes(), func() ([]byte, error) { return store.EncodeBlob(k, vb.Result()) })
}

// putContainer uploads one blob container under the key's digest, with
// Put's full failure discipline: retries and breaker via doIdempotent,
// journal deferral for infrastructure failures when a local tier
// exists, terminal 401/403, and a one-shot identity fallback (fallback
// encodes the canonical v1 bytes) for pre-v3 daemons answering 400.
func (c *Client) putContainer(k store.Key, data []byte, fallback func() ([]byte, error)) error {
	span := c.startSpan("storenet.put")
	defer span.End()
	resp, err := c.doIdempotent(http.MethodPut, c.blobURL(k.Digest), data, true, span, obs.SpanContext{})
	if err != nil {
		// Only infrastructure failures (transport, 5xx, open breaker)
		// defer; a rate-limit refusal is the daemon telling this tenant
		// to slow down, and journaling the write would smuggle it past
		// the quota at reconcile time.
		if c.cache != nil && !errors.Is(err, ErrRateLimited) {
			return c.deferPut(k, data, err, span)
		}
		return fmt.Errorf("storenet: put %s: %w", k, err)
	}
	c.drain(resp)
	if resp.StatusCode == http.StatusUnauthorized || resp.StatusCode == http.StatusForbidden {
		// Terminal: the daemon saw the request and refused the
		// credential. Never retried (the refusal is deterministic),
		// never deferred (the journal replay would be refused too).
		return fmt.Errorf("storenet: put %s: %s: %w", k, resp.Status, ErrAuth)
	}
	if resp.StatusCode == http.StatusBadRequest {
		// A pre-v3 daemon cannot parse the binary container and answers
		// 400; fall back to the canonical (identity) bytes once, which
		// every daemon version accepts. A 400 for any other reason fails
		// identically on the retry and surfaces below, naming both
		// refusals.
		firstStatus := resp.Status
		plain, perr := fallback()
		if perr != nil {
			return fmt.Errorf("storenet: encode %s: %w", k, perr)
		}
		if resp, err = c.doIdempotent(http.MethodPut, c.blobURL(k.Digest), plain, true, span, obs.SpanContext{}); err != nil {
			if c.cache != nil && !errors.Is(err, ErrRateLimited) {
				// The daemon vanished between the refusal and the
				// fallback; journal the v3 container — the local tier's
				// native format — and let Reconcile sort it out.
				return c.deferPut(k, data, err, span)
			}
			return fmt.Errorf("storenet: put %s: %w", k, err)
		}
		c.drain(resp)
		if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
			return fmt.Errorf("storenet: put %s: %s (v3) then %s (identity fallback)",
				k, firstStatus, resp.Status)
		}
	}
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("storenet: put %s: %s", k, resp.Status)
	}
	if c.cache != nil {
		_ = c.cache.PutRaw(k.Digest, data)
	}
	c.puts.Add(1)
	return nil
}

// deferPut is the degraded write path: land the blob in the local tier,
// then journal it for replay. Both steps must succeed for the Put to
// count as durable — a blob we could neither send nor keep is a real
// write failure and surfaces as one (wrapping cause, the network error
// that forced the deferral). The deferring operation's span context is
// journaled with the marker so the eventual replay still carries the
// originating sweep's trace ID.
func (c *Client) deferPut(k store.Key, data []byte, cause error, span *obs.Span) error {
	if err := c.cache.PutRaw(k.Digest, data); err != nil {
		return fmt.Errorf("storenet: put %s: remote %v; local tier: %w", k, cause, err)
	}
	sc := span.Context()
	if !sc.Valid() {
		sc = c.traceParent()
	}
	if err := c.markPending(k.Digest, sc.Traceparent()); err != nil {
		return fmt.Errorf("storenet: put %s: remote %v; journal: %w", k, cause, err)
	}
	span.Event("defer")
	c.deferred.Add(1)
	c.puts.Add(1)
	return nil
}

// markPending records a digest in the write-behind journal. O_EXCL
// makes the marker idempotent per digest: re-deferring a blob already
// journaled (same content, content-addressed) is a no-op and the
// pending gauge counts files, not events. The marker body is the
// deferring request's traceparent ("" when tracing was off) — replay
// provenance, carried on disk across processes.
func (c *Client) markPending(digest, traceparent string) error {
	if err := os.MkdirAll(c.pendingDir, 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(c.pendingDir, digest+pendingSuffix),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil
		}
		return err
	}
	if traceparent != "" {
		_, _ = f.WriteString(traceparent + "\n")
	}
	f.Close()
	c.pending.Add(1)
	return nil
}

// CanDegrade implements store.Resilient: a local tier is what degraded
// mode degrades to.
func (c *Client) CanDegrade() bool { return c.cache != nil }

// Resilience implements store.Resilient.
func (c *Client) Resilience() store.ResilienceStats {
	return store.ResilienceStats{
		Degraded:   c.degraded.Load(),
		Deferred:   c.deferred.Load(),
		Reconciled: c.reconciled.Load(),
		Pending:    c.pending.Load(),
	}
}

// Telemetry is a point-in-time snapshot of this client's wire-level
// behavior since construction. All fields are monotonic counters
// except Pending (a gauge). The client was previously a telemetry
// black hole — retries, breaker edges and wire volume happened
// silently inside doIdempotent; this is the aggregate view the stats
// line and the Prometheus families fold in.
type Telemetry struct {
	// Retries counts retry attempts actually issued (attempt ≥ 2 of an
	// idempotent request), not sleeps scheduled.
	Retries int64 `json:"retries"`
	// RateLimited counts 429 responses honored via Retry-After.
	RateLimited int64 `json:"rate_limited"`
	// Breaker edge counts by destination state: how often the circuit
	// opened (outage detected), admitted a half-open probe, and closed
	// (recovered or explicitly reset).
	BreakerOpened   int64 `json:"breaker_opened"`
	BreakerHalfOpen int64 `json:"breaker_half_open"`
	BreakerClosed   int64 `json:"breaker_closed"`
	// DeferredPuts / ReconcileReplays / Pending mirror the degraded
	// write path: journaled write-behinds, journal entries replayed to
	// the daemon, and journal entries currently waiting.
	DeferredPuts     int64 `json:"deferred_puts"`
	ReconcileReplays int64 `json:"reconcile_replays"`
	Pending          int64 `json:"pending"`
	// DecodePasses counts response-body validations this client ran
	// (each is one decode of a blob container — the "validated exactly
	// once" invariant makes this equal to remote read traffic).
	DecodePasses int64 `json:"decode_passes"`
	// BytesSent / BytesReceived are wire bytes by direction at the
	// body level (headers excluded): request bodies out, response
	// bodies in.
	BytesSent     int64 `json:"bytes_sent"`
	BytesReceived int64 `json:"bytes_received"`
}

// Telemetry returns the client's wire-level counters.
func (c *Client) Telemetry() Telemetry {
	return Telemetry{
		Retries:          c.retryCount.Load(),
		RateLimited:      c.rateLimited.Load(),
		BreakerOpened:    c.brOpened.Load(),
		BreakerHalfOpen:  c.brHalfOpened.Load(),
		BreakerClosed:    c.brClosed.Load(),
		DeferredPuts:     c.deferred.Load(),
		ReconcileReplays: c.reconciled.Load(),
		Pending:          c.pending.Load(),
		DecodePasses:     c.decodePasses.Load(),
		BytesSent:        c.bytesSent.Load(),
		BytesReceived:    c.bytesReceived.Load(),
	}
}

// WriteProm renders the telemetry as Prometheus text (the same v0.0.4
// exposition format the daemon's /metrics speaks), for callers that
// scrape or push client-side metrics. Every family is fixed-label
// (none), so client cardinality is constant.
func (t Telemetry) WriteProm(w io.Writer) {
	write := func(name, help, typ string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, typ, name, v)
	}
	write("storenet_client_retries_total", "Retry attempts issued.", "counter", t.Retries)
	write("storenet_client_rate_limited_total", "429 responses honored.", "counter", t.RateLimited)
	write("storenet_client_breaker_opened_total", "Circuit breaker open transitions.", "counter", t.BreakerOpened)
	write("storenet_client_breaker_half_open_total", "Circuit breaker half-open probes admitted.", "counter", t.BreakerHalfOpen)
	write("storenet_client_breaker_closed_total", "Circuit breaker close transitions.", "counter", t.BreakerClosed)
	write("storenet_client_deferred_puts_total", "Puts journaled for write-behind replay.", "counter", t.DeferredPuts)
	write("storenet_client_reconcile_replays_total", "Journal entries replayed to the daemon.", "counter", t.ReconcileReplays)
	write("storenet_client_pending_puts", "Journal entries awaiting replay.", "gauge", t.Pending)
	write("storenet_client_decode_passes_total", "Blob container validations (decodes) run.", "counter", t.DecodePasses)
	write("storenet_client_bytes_sent_total", "Request body bytes sent.", "counter", t.BytesSent)
	write("storenet_client_bytes_received_total", "Response body bytes received.", "counter", t.BytesReceived)
}

// Reconcile replays the write-behind journal to the daemon, returning
// how many blobs were uploaded. It first force-closes the breaker —
// calling Reconcile is an assertion the daemon is back, and if it is
// not, the replay's own failures re-open the circuit and the remaining
// markers stay journaled for the next pass. Entries whose blob has been
// evicted from the local tier are dropped: the result is recomputable
// on demand, and a marker with nothing to replay is debris.
//
// Replay is idempotent by construction: blobs are content-addressed and
// immutable, so re-uploading one the daemon already has (e.g. a crash
// between upload and marker removal, or a peer that raced us) stores
// the identical bytes under the identical digest.
func (c *Client) Reconcile() (int, error) {
	c.reconcileMu.Lock()
	defer c.reconcileMu.Unlock()
	// The breaker reset is unconditional — the recovery assertion is
	// meaningful even for a cache-less client with no journal to replay
	// (a replicating router telling its members the outage is over).
	c.br.reset()
	if c.pendingDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(c.pendingDir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("storenet: reconcile: %w", err)
	}
	replayed := 0
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, pendingSuffix) {
			continue
		}
		digest := strings.TrimSuffix(name, pendingSuffix)
		marker := filepath.Join(c.pendingDir, name)
		data, ok := c.cache.GetRaw(digest)
		if !ok {
			// Evicted locally: nothing to replay. Drop the marker.
			if os.Remove(marker) == nil {
				c.pending.Add(-1)
			}
			continue
		}
		// The marker body carries the deferring request's traceparent:
		// replay under the same trace, so the daemon's /debug/ops ring
		// attributes the late write to the sweep that produced it. A
		// live tracer additionally records the replay as a span of that
		// trace; without one the journaled header rides verbatim.
		origin := c.markerContext(marker)
		var span *obs.Span
		if c.tracer != nil && origin.Valid() {
			span = c.tracer.StartSpan("storenet.reconcile.put", origin)
		} else {
			span = c.startSpan("storenet.reconcile.put")
		}
		resp, err := c.doIdempotent(http.MethodPut, c.blobURL(digest), data, true, span, origin)
		if err != nil {
			span.SetAttr("outcome", "error")
			span.End()
			return replayed, fmt.Errorf("storenet: reconcile %s: %w", digest, err)
		}
		c.drain(resp)
		if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
			span.SetAttr("outcome", "refused")
			span.End()
			return replayed, fmt.Errorf("storenet: reconcile %s: %s", digest, resp.Status)
		}
		if os.Remove(marker) == nil {
			c.pending.Add(-1)
		}
		c.reconciled.Add(1)
		span.SetAttr("outcome", "replayed")
		span.End()
		replayed++
	}
	if replayed > 0 {
		c.log.Info("storenet: reconcile replayed deferred writes",
			"base", c.base, "replayed", replayed, "pending", c.pending.Load())
	}
	return replayed, nil
}

// markerContext parses the span context a pending marker was journaled
// with; zero when the marker predates tracing or tracing was off.
func (c *Client) markerContext(marker string) obs.SpanContext {
	b, err := os.ReadFile(marker)
	if err != nil {
		return obs.SpanContext{}
	}
	sc, _ := obs.ParseTraceparent(strings.TrimSpace(string(b)))
	return sc
}

// Has probes existence without counters: local tier, then a HEAD.
func (c *Client) Has(k store.Key) bool {
	if c.cache != nil && c.cache.Has(k) {
		return true
	}
	span := c.startSpan("storenet.head")
	defer span.End()
	resp, err := c.doIdempotent(http.MethodHead, c.blobURL(k.Digest), nil, true, span, obs.SpanContext{})
	if err != nil {
		return false
	}
	c.drain(resp)
	return resp.StatusCode == http.StatusOK
}

// Index lists the daemon's manifest — the fleet-wide view, not the
// local tier's subset. Degrades to empty on failure.
func (c *Client) Index() []store.ManifestEntry {
	span := c.startSpan("storenet.index")
	defer span.End()
	resp, err := c.doIdempotent(http.MethodGet, c.base+apiPrefix+"/index", nil, false, span, obs.SpanContext{})
	if err != nil {
		return nil
	}
	data, readErr := c.readBody(resp, maxBlobBytes)
	var ix indexResponse
	if resp.StatusCode != http.StatusOK || readErr != nil || json.Unmarshal(data, &ix) != nil {
		return nil
	}
	return ix.Entries
}

// Len counts the daemon's blobs; 0 on failure.
func (c *Client) Len() int {
	st, err := c.Stats()
	if err != nil {
		return 0
	}
	return st.Blobs
}

// Stats fetches the daemon's stats endpoint.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	span := c.startSpan("storenet.stats")
	defer span.End()
	resp, err := c.doIdempotent(http.MethodGet, c.base+apiPrefix+"/stats", nil, false, span, obs.SpanContext{})
	if err != nil {
		return st, err
	}
	data, readErr := c.readBody(resp, maxControlBytes)
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("storenet: stats: %s", resp.Status)
	}
	if readErr != nil {
		return st, fmt.Errorf("storenet: stats: %w", readErr)
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return st, fmt.Errorf("storenet: stats: %w", err)
	}
	return st, nil
}

// Counters reports this client's traffic (not the daemon's aggregate;
// GET /v1/stats has that).
func (c *Client) Counters() store.Counters {
	return store.Counters{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Corrupt: c.corrupt.Load(),
		Puts:    c.puts.Load(),
	}
}

// TryAcquire claims the digest fleet-wide through the daemon. Exactly
// one request is sent: if the response is lost after a grant, the
// unrenewed lease expires within one TTL and the claim loop steals it —
// the same recovery as a crashed local holder.
func (c *Client) TryAcquire(digest, owner string, ttl time.Duration) (store.LeaseHandle, bool, error) {
	if owner == "" {
		return nil, false, fmt.Errorf("storenet: empty lease owner")
	}
	if ttl <= 0 {
		return nil, false, fmt.Errorf("storenet: non-positive lease ttl %v", ttl)
	}
	span := c.startSpan("storenet.lease.acquire")
	defer span.End()
	resp, err := c.doOnce(c.leaseURL(digest, "acquire"), acquireRequest{Owner: owner, TTLNs: int64(ttl)}, span)
	if err != nil {
		return nil, false, fmt.Errorf("storenet: acquire %s: %w", digest, err)
	}
	data, readErr := c.readBody(resp, maxControlBytes)
	switch resp.StatusCode {
	case http.StatusOK:
		var ar acquireResponse
		if readErr == nil {
			readErr = json.Unmarshal(data, &ar)
		}
		if readErr != nil {
			// Granted but garbled: surface it; the orphan lease expires.
			return nil, false, fmt.Errorf("storenet: acquire %s: %w", digest, readErr)
		}
		return &remoteLease{c: c, digest: digest, owner: owner, token: ar.Token, stolen: ar.Stolen}, true, nil
	case http.StatusConflict:
		return nil, false, nil
	case http.StatusUnauthorized, http.StatusForbidden:
		return nil, false, fmt.Errorf("storenet: acquire %s: %s: %w", digest, resp.Status, ErrAuth)
	case http.StatusTooManyRequests:
		// Lease ops are exactly-once, so a 429 is not retried here; the
		// claim loop's wait/steal pacing is the natural backoff.
		return nil, false, fmt.Errorf("storenet: acquire %s: %s: %w", digest, resp.Status, ErrRateLimited)
	default:
		return nil, false, fmt.Errorf("storenet: acquire %s: %s", digest, resp.Status)
	}
}

// LeaseHolder peeks at a digest's live claim via the daemon.
func (c *Client) LeaseHolder(digest string) (string, bool) {
	span := c.startSpan("storenet.lease.peek")
	defer span.End()
	resp, err := c.doIdempotent(http.MethodGet, c.leaseURL(digest, ""), nil, false, span, obs.SpanContext{})
	if err != nil {
		return "", false
	}
	data, readErr := c.readBody(resp, maxControlBytes)
	var hr holderResponse
	if resp.StatusCode != http.StatusOK || readErr != nil || json.Unmarshal(data, &hr) != nil {
		return "", false
	}
	return hr.Owner, hr.Held
}

// GC runs a pass on the daemon's store — the shared tier the policy is
// meant to bound. The local cache tier is bounded by its own owner
// (it is an ordinary *store.Store).
func (c *Client) GC(p store.GCPolicy) (store.GCStats, error) {
	var gs store.GCStats
	span := c.startSpan("storenet.gc")
	defer span.End()
	resp, err := c.doOnce(c.base+apiPrefix+"/gc", gcRequest{
		MaxBytes: p.MaxBytes,
		MaxAgeNs: int64(p.MaxAge),
	}, span)
	if err != nil {
		return gs, fmt.Errorf("storenet: gc: %w", err)
	}
	data, readErr := c.readBody(resp, maxControlBytes)
	if resp.StatusCode == http.StatusUnauthorized || resp.StatusCode == http.StatusForbidden {
		// GC is the admin-scoped verb, so this is the usual place a
		// write-scope token discovers its ceiling; terminal like every
		// auth refusal.
		return gs, fmt.Errorf("storenet: gc: %s: %w", resp.Status, ErrAuth)
	}
	if resp.StatusCode != http.StatusOK {
		return gs, fmt.Errorf("storenet: gc: %s", resp.Status)
	}
	if readErr == nil {
		readErr = json.Unmarshal(data, &gs)
	}
	if readErr != nil {
		return gs, fmt.Errorf("storenet: gc: %w", readErr)
	}
	return gs, nil
}

// remoteLease is a claim held through the daemon; the token is what the
// daemon's stateless reattach verifies.
type remoteLease struct {
	c      *Client
	digest string
	owner  string
	token  string
	stolen bool
}

var _ store.LeaseHandle = (*remoteLease)(nil)

func (l *remoteLease) Owner() string { return l.owner }
func (l *remoteLease) Token() string { return l.token }
func (l *remoteLease) Stolen() bool  { return l.stolen }

// Renew extends the claim. Any failure — network, daemon restart mid
// flight, a stealer holding the lease — reports the lease lost; the
// holder keeps computing and at worst one peer duplicates the shard,
// writing identical bytes.
func (l *remoteLease) Renew(ttl time.Duration) error {
	span := l.c.startSpan("storenet.lease.renew")
	defer span.End()
	resp, err := l.c.doOnce(l.c.leaseURL(l.digest, "renew"),
		renewRequest{Owner: l.owner, Token: l.token, TTLNs: int64(ttl)}, span)
	if err != nil {
		return fmt.Errorf("storenet: renew %s: %w", l.digest, err)
	}
	l.c.drain(resp)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("storenet: renew %s: lease lost (%s)", l.digest, resp.Status)
	}
	return nil
}

// Release drops the claim, best-effort and idempotent.
func (l *remoteLease) Release() error {
	span := l.c.startSpan("storenet.lease.release")
	defer span.End()
	resp, err := l.c.doOnce(l.c.leaseURL(l.digest, "release"),
		releaseRequest{Owner: l.owner, Token: l.token}, span)
	if err != nil {
		return fmt.Errorf("storenet: release %s: %w", l.digest, err)
	}
	l.c.drain(resp)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("storenet: release %s: %s", l.digest, resp.Status)
	}
	return nil
}
