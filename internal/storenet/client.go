package storenet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"golatest/internal/core"
	"golatest/internal/store"
)

// Client speaks the v1 API to a stored daemon and implements
// store.Backend, so fleet sweeps and experiment suites use a remote
// store through the exact code paths they use for a local directory.
//
// # Cache tier
//
// With Options.Cache set, the client runs write-through over a local
// *store.Store: Get serves local hits without a network round trip, a
// remote hit heals the local tier (the validated bytes are written
// down), and Put lands in both. Because blobs are immutable per digest,
// the tiers can never disagree about a key's content — only about its
// presence — so the local tier is pure acceleration. Leases always go
// remote: claims must be arbitrated fleet-wide, never per host.
//
// # Failure discipline
//
// Reads degrade, writes surface — the Backend contract. Idempotent
// verbs (GET, HEAD, PUT: content-addressed, same bytes every time) are
// retried with backoff on connection errors and 5xx responses; lease
// operations are never retried, because an acquire whose response was
// lost may have been granted — the claim loop's wait/steal path
// resolves that ambiguity within one TTL, which a blind retry would
// turn into a self-steal.
//
// A Get whose response body is truncated, tampered with, or otherwise
// fails validation (store.ValidateBlob: envelope, schema, digest) is a
// miss and ticks the Corrupt counter — the caller recomputes and the
// subsequent Put heals both tiers, mirroring the local corrupt-blob
// path. It is never an error and can never yield a wrong result.
type Client struct {
	base    string
	hc      *http.Client
	cache   *store.Store
	retries int
	backoff time.Duration

	hits, misses, corrupt, puts atomic.Int64
}

// ClientOptions configures a Client; the zero value works.
type ClientOptions struct {
	// Cache, when non-nil, is the local write-through tier.
	Cache *store.Store
	// HTTPClient overrides the default client (keep-alive transport,
	// 60 s request timeout).
	HTTPClient *http.Client
	// Retries is the attempt budget per idempotent request; 0 means 3.
	Retries int
	// RetryBackoff is the initial retry delay, doubling per attempt;
	// 0 means 50 ms.
	RetryBackoff time.Duration
}

var _ store.Backend = (*Client)(nil)

// NewClient validates the base URL (http or https, e.g. the
// "http://host:8417" a stored daemon prints) and builds the backend.
// Construction does not touch the network: a daemon that is down at
// start behaves like any other degraded read until writes need it.
func NewClient(baseURL string, opts ClientOptions) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("storenet: base url %q: %w", baseURL, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("storenet: base url %q: need http(s)://host[:port]", baseURL)
	}
	hc := opts.HTTPClient
	if hc == nil {
		// One client per fleet process issues many small requests to one
		// host: keep-alive connection reuse is the whole ballgame.
		hc = &http.Client{
			Timeout: 60 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	retries := opts.Retries
	if retries <= 0 {
		retries = 3
	}
	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	return &Client{
		base:    strings.TrimRight(u.String(), "/"),
		hc:      hc,
		cache:   opts.Cache,
		retries: retries,
		backoff: backoff,
	}, nil
}

// Location implements Backend: a remote store is located at its URL.
func (c *Client) Location() string { return c.base }

func (c *Client) blobURL(digest string) string {
	return c.base + apiPrefix + "/blobs/" + url.PathEscape(digest)
}

func (c *Client) leaseURL(digest, op string) string {
	u := c.base + apiPrefix + "/leases/" + url.PathEscape(digest)
	if op != "" {
		u += "/" + op
	}
	return u
}

// doIdempotent issues one GET/HEAD/PUT with bounded retries on
// connection errors and 5xx responses. The body, when present, is
// replayed from memory on every attempt. 4xx responses return
// immediately — retrying a request the server understood and refused
// only repeats the refusal.
//
// rawEncoding (blob requests only) sets Accept-Encoding explicitly,
// which (per net/http) disables the transport's transparent
// decompression: the blob body arrives as the raw compressed container
// the daemon has on disk, and the client inflates it itself through
// the store codec's pooled readers — one decompression, on our terms.
// Control-plane requests leave the header to the transport, so their
// JSON survives any gzip a reverse proxy in front of the daemon may
// add (the transport inflates it transparently).
func (c *Client) doIdempotent(method, u string, body []byte, rawEncoding bool) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt < c.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.backoff << (attempt - 1))
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, u, rd)
		if err != nil {
			return nil, err
		}
		if rawEncoding {
			req.Header.Set("Accept-Encoding", "gzip")
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
			if store.IsGzipBlob(body) {
				req.Header.Set("Content-Encoding", "gzip")
			}
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			drain(resp)
			lastErr = fmt.Errorf("storenet: %s %s: %s", method, u, resp.Status)
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("storenet: %s %s: giving up after %d attempts: %w",
		method, u, c.retries, lastErr)
}

// doOnce issues one non-idempotent (lease) request, exactly once.
func (c *Client) doOnce(u string, body any) (*http.Response, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, u, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.hc.Do(req)
}

// drain discards and closes a response body so the connection returns
// to the keep-alive pool instead of being torn down.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxControlBytes))
	resp.Body.Close()
}

// readBody reads the full (bounded) body and closes it. Every response
// — including 404 messages and JSON with a trailing newline — must be
// consumed to EOF, or the transport discards the connection instead of
// pooling it and each subsequent request pays a fresh handshake.
func readBody(resp *http.Response, limit int64) ([]byte, error) {
	defer resp.Body.Close()
	return io.ReadAll(io.LimitReader(resp.Body, limit))
}

// bodyBufs recycles blob-body buffers across warm Gets. The buffer's
// bytes never outlive the Get: validation decodes out of them (JSON
// copies every string) and the cache heal writes them to disk, so
// returning the buffer to the pool afterwards is safe — and it deletes
// the single largest per-Get allocation from the warm path.
var bodyBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBodyBuf caps what bodyBufs retains: one pathological
// near-maxBlobBytes response must not pin a 256 MiB buffer in the pool
// for the life of the process.
const maxPooledBodyBuf = 8 << 20

func putBodyBuf(buf *bytes.Buffer) {
	if buf.Cap() <= maxPooledBodyBuf {
		bodyBufs.Put(buf)
	}
}

// readBodyInto drains the (bounded) body into buf and closes it,
// reporting a transfer that died mid-body.
func readBodyInto(buf *bytes.Buffer, resp *http.Response, limit int64) error {
	defer resp.Body.Close()
	_, err := buf.ReadFrom(io.LimitReader(resp.Body, limit))
	return err
}

// Get resolves a key: local tier first, then the daemon. The response
// body is the compressed blob container (negotiated via
// Accept-Encoding, served as a raw passthrough of the daemon's disk
// bytes), read into a pooled buffer and validated by the store codec's
// streaming decoder — the canonical JSON is never materialised. A
// remote hit heals the local tier with the same compressed bytes,
// verbatim; an invalid or truncated remote body is a miss (Corrupt
// counter), exactly like a corrupt local blob.
func (c *Client) Get(k store.Key) (*core.Result, bool) {
	if c.cache != nil {
		if res, ok := c.cache.Get(k); ok {
			c.hits.Add(1)
			return res, true
		}
	}
	resp, err := c.doIdempotent(http.MethodGet, c.blobURL(k.Digest), nil, true)
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	buf := bodyBufs.Get().(*bytes.Buffer)
	buf.Reset()
	defer putBodyBuf(buf)
	readErr := readBodyInto(buf, resp, maxBlobBytes)
	if resp.StatusCode != http.StatusOK {
		c.misses.Add(1)
		return nil, false
	}
	if readErr != nil {
		// The transfer died mid-body: treat as a miss, recompute, heal.
		c.corrupt.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	res, err := store.ValidateBlob(buf.Bytes(), k.Digest)
	if err != nil {
		c.corrupt.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	if c.cache != nil {
		// Best-effort heal: a full local disk must not fail a read the
		// remote already answered.
		_ = c.cache.PutRaw(k.Digest, buf.Bytes())
	}
	c.hits.Add(1)
	return res, true
}

// Put encodes once — straight into the compressed container — and
// writes through: daemon first (authoritative — its failure fails the
// Put), then the local tier (best-effort, the same bytes verbatim).
// The wire carries the compressed bytes under Content-Encoding: gzip;
// the daemon stores them as-is after validation.
func (c *Client) Put(k store.Key, res *core.Result) error {
	if res == nil {
		return fmt.Errorf("storenet: nil result for %s", k)
	}
	data, err := store.EncodeBlobCompressed(k, res)
	if err != nil {
		return fmt.Errorf("storenet: encode %s: %w", k, err)
	}
	resp, err := c.doIdempotent(http.MethodPut, c.blobURL(k.Digest), data, true)
	if err != nil {
		return fmt.Errorf("storenet: put %s: %w", k, err)
	}
	drain(resp)
	if resp.StatusCode == http.StatusBadRequest {
		// A pre-codec daemon cannot parse the compressed container and
		// answers 400; fall back to the canonical (identity) bytes once,
		// which every daemon version accepts. A 400 for any other
		// reason fails identically on the retry and surfaces below,
		// naming both refusals.
		firstStatus := resp.Status
		plain, perr := store.EncodeBlob(k, res)
		if perr != nil {
			return fmt.Errorf("storenet: encode %s: %w", k, perr)
		}
		if resp, err = c.doIdempotent(http.MethodPut, c.blobURL(k.Digest), plain, true); err != nil {
			return fmt.Errorf("storenet: put %s: %w", k, err)
		}
		drain(resp)
		if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
			return fmt.Errorf("storenet: put %s: %s (compressed) then %s (identity fallback)",
				k, firstStatus, resp.Status)
		}
	}
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("storenet: put %s: %s", k, resp.Status)
	}
	if c.cache != nil {
		_ = c.cache.PutRaw(k.Digest, data)
	}
	c.puts.Add(1)
	return nil
}

// Has probes existence without counters: local tier, then a HEAD.
func (c *Client) Has(k store.Key) bool {
	if c.cache != nil && c.cache.Has(k) {
		return true
	}
	resp, err := c.doIdempotent(http.MethodHead, c.blobURL(k.Digest), nil, true)
	if err != nil {
		return false
	}
	drain(resp)
	return resp.StatusCode == http.StatusOK
}

// Index lists the daemon's manifest — the fleet-wide view, not the
// local tier's subset. Degrades to empty on failure.
func (c *Client) Index() []store.ManifestEntry {
	resp, err := c.doIdempotent(http.MethodGet, c.base+apiPrefix+"/index", nil, false)
	if err != nil {
		return nil
	}
	data, readErr := readBody(resp, maxBlobBytes)
	var ix indexResponse
	if resp.StatusCode != http.StatusOK || readErr != nil || json.Unmarshal(data, &ix) != nil {
		return nil
	}
	return ix.Entries
}

// Len counts the daemon's blobs; 0 on failure.
func (c *Client) Len() int {
	st, err := c.Stats()
	if err != nil {
		return 0
	}
	return st.Blobs
}

// Stats fetches the daemon's stats endpoint.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	resp, err := c.doIdempotent(http.MethodGet, c.base+apiPrefix+"/stats", nil, false)
	if err != nil {
		return st, err
	}
	data, readErr := readBody(resp, maxControlBytes)
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("storenet: stats: %s", resp.Status)
	}
	if readErr != nil {
		return st, fmt.Errorf("storenet: stats: %w", readErr)
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return st, fmt.Errorf("storenet: stats: %w", err)
	}
	return st, nil
}

// Counters reports this client's traffic (not the daemon's aggregate;
// GET /v1/stats has that).
func (c *Client) Counters() store.Counters {
	return store.Counters{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Corrupt: c.corrupt.Load(),
		Puts:    c.puts.Load(),
	}
}

// TryAcquire claims the digest fleet-wide through the daemon. Exactly
// one request is sent: if the response is lost after a grant, the
// unrenewed lease expires within one TTL and the claim loop steals it —
// the same recovery as a crashed local holder.
func (c *Client) TryAcquire(digest, owner string, ttl time.Duration) (store.LeaseHandle, bool, error) {
	if owner == "" {
		return nil, false, fmt.Errorf("storenet: empty lease owner")
	}
	if ttl <= 0 {
		return nil, false, fmt.Errorf("storenet: non-positive lease ttl %v", ttl)
	}
	resp, err := c.doOnce(c.leaseURL(digest, "acquire"), acquireRequest{Owner: owner, TTLNs: int64(ttl)})
	if err != nil {
		return nil, false, fmt.Errorf("storenet: acquire %s: %w", digest, err)
	}
	data, readErr := readBody(resp, maxControlBytes)
	switch resp.StatusCode {
	case http.StatusOK:
		var ar acquireResponse
		if readErr == nil {
			readErr = json.Unmarshal(data, &ar)
		}
		if readErr != nil {
			// Granted but garbled: surface it; the orphan lease expires.
			return nil, false, fmt.Errorf("storenet: acquire %s: %w", digest, readErr)
		}
		return &remoteLease{c: c, digest: digest, owner: owner, token: ar.Token, stolen: ar.Stolen}, true, nil
	case http.StatusConflict:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("storenet: acquire %s: %s", digest, resp.Status)
	}
}

// LeaseHolder peeks at a digest's live claim via the daemon.
func (c *Client) LeaseHolder(digest string) (string, bool) {
	resp, err := c.doIdempotent(http.MethodGet, c.leaseURL(digest, ""), nil, false)
	if err != nil {
		return "", false
	}
	data, readErr := readBody(resp, maxControlBytes)
	var hr holderResponse
	if resp.StatusCode != http.StatusOK || readErr != nil || json.Unmarshal(data, &hr) != nil {
		return "", false
	}
	return hr.Owner, hr.Held
}

// GC runs a pass on the daemon's store — the shared tier the policy is
// meant to bound. The local cache tier is bounded by its own owner
// (it is an ordinary *store.Store).
func (c *Client) GC(p store.GCPolicy) (store.GCStats, error) {
	var gs store.GCStats
	resp, err := c.doOnce(c.base+apiPrefix+"/gc", gcRequest{
		MaxBytes: p.MaxBytes,
		MaxAgeNs: int64(p.MaxAge),
	})
	if err != nil {
		return gs, fmt.Errorf("storenet: gc: %w", err)
	}
	data, readErr := readBody(resp, maxControlBytes)
	if resp.StatusCode != http.StatusOK {
		return gs, fmt.Errorf("storenet: gc: %s", resp.Status)
	}
	if readErr == nil {
		readErr = json.Unmarshal(data, &gs)
	}
	if readErr != nil {
		return gs, fmt.Errorf("storenet: gc: %w", readErr)
	}
	return gs, nil
}

// remoteLease is a claim held through the daemon; the token is what the
// daemon's stateless reattach verifies.
type remoteLease struct {
	c      *Client
	digest string
	owner  string
	token  string
	stolen bool
}

var _ store.LeaseHandle = (*remoteLease)(nil)

func (l *remoteLease) Owner() string { return l.owner }
func (l *remoteLease) Token() string { return l.token }
func (l *remoteLease) Stolen() bool  { return l.stolen }

// Renew extends the claim. Any failure — network, daemon restart mid
// flight, a stealer holding the lease — reports the lease lost; the
// holder keeps computing and at worst one peer duplicates the shard,
// writing identical bytes.
func (l *remoteLease) Renew(ttl time.Duration) error {
	resp, err := l.c.doOnce(l.c.leaseURL(l.digest, "renew"),
		renewRequest{Owner: l.owner, Token: l.token, TTLNs: int64(ttl)})
	if err != nil {
		return fmt.Errorf("storenet: renew %s: %w", l.digest, err)
	}
	drain(resp)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("storenet: renew %s: lease lost (%s)", l.digest, resp.Status)
	}
	return nil
}

// Release drops the claim, best-effort and idempotent.
func (l *remoteLease) Release() error {
	resp, err := l.c.doOnce(l.c.leaseURL(l.digest, "release"),
		releaseRequest{Owner: l.owner, Token: l.token})
	if err != nil {
		return fmt.Errorf("storenet: release %s: %w", l.digest, err)
	}
	drain(resp)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("storenet: release %s: %s", l.digest, resp.Status)
	}
	return nil
}
