package storenet

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRequestMetricsBucketsAndQuantiles(t *testing.T) {
	m := newRequestMetrics()
	if got := m.quantileNs(0.5); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}

	// Nine fast observations and one slow one: p50 lands in the bucket
	// holding 50µs (upper bound 100µs) and p99 in the one holding 2s
	// (upper bound 2.5s).
	for i := 0; i < 9; i++ {
		m.observe("GET /v1/blobs/{digest}", http.StatusOK, 50*time.Microsecond)
	}
	m.observe("PUT /v1/blobs/{digest}", http.StatusOK, 2*time.Second)

	if got, want := m.quantileNs(0.5), int64(100_000); got != want {
		t.Errorf("p50 = %d ns, want %d", got, want)
	}
	if got, want := m.quantileNs(0.99), int64(2_500_000_000); got != want {
		t.Errorf("p99 = %d ns, want %d", got, want)
	}

	// An observation past the last bound is clamped to it, not lost.
	m2 := newRequestMetrics()
	m2.observe("x", http.StatusOK, time.Minute)
	if got, want := m2.quantileNs(0.5), int64(10*time.Second); got != want {
		t.Errorf("over-range quantile = %d ns, want %d", got, want)
	}
}

func TestRequestMetricsPromOutput(t *testing.T) {
	m := newRequestMetrics()
	m.observe("GET /v1/stats", http.StatusOK, 50*time.Microsecond)
	m.observe("GET /v1/stats", http.StatusOK, 50*time.Microsecond)
	m.observe("GET /v1/stats", http.StatusTooManyRequests, 10*time.Microsecond)
	m.observe("PUT /v1/blobs/{digest}", http.StatusCreated, 3*time.Millisecond)

	var sb strings.Builder
	m.writeProm(&sb)
	out := sb.String()

	for _, want := range []string{
		"# TYPE stored_requests_total counter",
		`stored_requests_total{endpoint="GET /v1/stats",code="200"} 2`,
		`stored_requests_total{endpoint="GET /v1/stats",code="429"} 1`,
		`stored_requests_total{endpoint="PUT /v1/blobs/{digest}",code="201"} 1`,
		"# TYPE stored_request_duration_seconds histogram",
		// Cumulative ladder: the 10µs obs is ≤0.0001, both 50µs obs join
		// it there, so every le from 0.0001 up reads 3.
		`stored_request_duration_seconds_bucket{endpoint="GET /v1/stats",le="0.0001"} 3`,
		`stored_request_duration_seconds_bucket{endpoint="GET /v1/stats",le="+Inf"} 3`,
		`stored_request_duration_seconds_count{endpoint="GET /v1/stats"} 3`,
		`stored_request_duration_seconds_bucket{endpoint="PUT /v1/blobs/{digest}",le="0.0025"} 0`,
		`stored_request_duration_seconds_bucket{endpoint="PUT /v1/blobs/{digest}",le="0.005"} 1`,
		`stored_request_duration_seconds_count{endpoint="PUT /v1/blobs/{digest}"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q\n--- got ---\n%s", want, out)
		}
	}

	// Endpoints must render sorted so scrapes are diffable.
	if gi, pi := strings.Index(out, `endpoint="GET /v1/stats"`), strings.Index(out, `endpoint="PUT /v1/blobs/{digest}"`); gi > pi {
		t.Errorf("endpoints not sorted: GET at %d after PUT at %d", gi, pi)
	}
}

// TestMetricsEndpoint scrapes a live server and checks the exposition:
// store gauges/counters from Stats(), lease churn, and the
// per-endpoint series the ServeHTTP middleware recorded — including
// the scrape itself.
func TestMetricsEndpoint(t *testing.T) {
	st, hs := newDaemon(t)
	base := hs.URL
	k := testKey(t, 1)
	if err := st.Put(k, testResult(1)); err != nil {
		t.Fatal(err)
	}

	// Generate traffic the scrape should report: one hit, one miss.
	for _, p := range []string{
		"/v1/blobs/" + k.Digest,
		"/v1/blobs/" + testKey(t, 2).Digest,
	} {
		resp, err := http.Get(base + p)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want prometheus text v0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)

	for _, want := range []string{
		"stored_blobs 1\n",
		"stored_store_hits_total 1\n",
		"stored_store_misses_total 1\n",
		"stored_store_puts_total 1\n",
		"stored_leases_acquired_total 0\n",
		`stored_requests_total{endpoint="GET /v1/blobs/{digest}",code="200"} 1`,
		`stored_requests_total{endpoint="GET /v1/blobs/{digest}",code="404"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestMetricsUnmatchedRoute pins the label unmatched requests land
// under, so dashboards can alert on scans/typos without a cardinality
// explosion from raw paths.
func TestMetricsUnmatchedRoute(t *testing.T) {
	st, hs := newDaemon(t)
	base := hs.URL
	_ = st
	resp, err := http.Get(base + "/v1/nonsense/route")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	if want := `stored_requests_total{endpoint="/",code="404"}`; !strings.Contains(string(body), want) {
		// The catch-all "/" route owns unknown paths; if routing ever
		// changes this pins where they show up.
		if !strings.Contains(string(body), `code="404"`) {
			t.Errorf("scrape lost the 404 for an unmatched route:\n%s", body)
		}
	}
}

func TestStatusWriterDefaultsTo200(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec, code: http.StatusOK}
	fmt.Fprint(sw, "ok") // implicit WriteHeader(200)
	if sw.code != http.StatusOK {
		t.Errorf("code = %d, want 200", sw.code)
	}
	sw.WriteHeader(http.StatusTeapot)
	if sw.code != http.StatusTeapot {
		t.Errorf("code = %d, want 418", sw.code)
	}
}
