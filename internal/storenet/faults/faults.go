// Package faults is the deterministic chaos harness for the store
// tier. It wraps either side of the store boundary — an http.Handler
// (the stored server mux) or a store.Backend (any client-side backend)
// — and injects failures according to a seeded Plan: transport errors,
// added latency, hard blackout windows, and torn (truncated) responses.
//
// Determinism is the point. Every injection decision is a pure function
// of (plan seed, request ordinal): the nth request through an injector
// fails or survives identically on every run, regardless of goroutine
// interleaving, so each resilience behavior in storenet and fleet has a
// reproducible regression test instead of a flaky probabilistic one.
// The ordinal is assigned atomically at arrival; under concurrency the
// assignment order may vary, but the *set* of injected faults over any
// N requests is fixed by the plan alone.
package faults

import (
	"errors"
	"net/http"
	"sync/atomic"
	"time"

	"golatest/internal/core"
	"golatest/internal/store"
)

// ErrInjected is the root of every backend-level injected failure, so
// tests can assert a failure came from the harness and not a real bug.
var ErrInjected = errors.New("faults: injected failure")

// Plan is a seeded fault schedule. Rates are probabilities in [0, 1]
// evaluated per request against the deterministic hash stream; the
// blackout window is ordinal-based: requests with BlackoutFrom <= seq <
// BlackoutTo fail outright, which scripts an outage at an exact point
// in a test's request sequence.
type Plan struct {
	// Seed selects the hash stream; two runs with equal seeds inject
	// identical fault sequences.
	Seed uint64
	// FailRate is the per-request probability of an injected error
	// (HTTP 500 from the middleware, ErrInjected from the backend).
	FailRate float64
	// DropRate (middleware only) tears the connection with no response
	// at all — the client sees a transport error, not a status.
	DropRate float64
	// TearRate (middleware only) sends the response status and headers
	// but truncates the body halfway, then kills the connection — the
	// torn-blob case store.ValidateBlob must catch.
	TearRate float64
	// Latency is added to every request before any other decision.
	Latency time.Duration
	// BlackoutFrom/BlackoutTo define a half-open ordinal window of
	// guaranteed failure; zero-zero means no blackout.
	BlackoutFrom, BlackoutTo int64
}

// mix is splitmix64: the per-request decision hash. Each (seed, seq)
// pair yields one well-mixed 64-bit value; successive decision kinds
// salt the seed so failing and tearing are independent coin flips.
func mix(seed, seq uint64) uint64 {
	z := seed + seq*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// hit converts one hash draw into a probability check. The top 53 bits
// give an unbiased uniform in [0, 1).
func hit(rate float64, seed, seq uint64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	return float64(mix(seed, seq)>>11)/(1<<53) < rate
}

// Decision kind salts: independent streams per fault class.
const (
	saltFail = 0x66616c69 // "fail"
	saltDrop = 0x64726f70 // "drop"
	saltTear = 0x74656172 // "tear"
)

// Counters reports what an injector actually did — tests assert on
// these to prove the fault path (not the happy path) was exercised.
type Counters struct {
	Requests  int64 // total requests seen
	Failed    int64 // injected error responses
	Dropped   int64 // connections torn pre-response
	Torn      int64 // responses truncated mid-body
	Blackouts int64 // requests refused inside a blackout or Kill window
}

// Injector is the HTTP chaos middleware: it wraps the stored server
// handler and applies the plan to every request. Kill and Restore
// script a hard outage (every request torn at the transport) without
// restarting the daemon process, which keeps outage tests fast and the
// listener's port stable.
type Injector struct {
	plan  Plan
	inner http.Handler

	seq  atomic.Int64
	down atomic.Bool

	requests, failed, dropped, torn, blackouts atomic.Int64
}

// NewInjector wraps handler with the plan's fault schedule.
func NewInjector(handler http.Handler, plan Plan) *Injector {
	return &Injector{plan: plan, inner: handler}
}

// Kill makes every subsequent request fail at the transport layer, as
// if the daemon vanished mid-connection. Restore undoes it.
func (in *Injector) Kill()    { in.down.Store(true) }
func (in *Injector) Restore() { in.down.Store(false) }

// Injected snapshots the fault counters.
func (in *Injector) Injected() Counters {
	return Counters{
		Requests:  in.requests.Load(),
		Failed:    in.failed.Load(),
		Dropped:   in.dropped.Load(),
		Torn:      in.torn.Load(),
		Blackouts: in.blackouts.Load(),
	}
}

func (in *Injector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	seq := in.seq.Add(1) - 1
	in.requests.Add(1)
	if in.plan.Latency > 0 {
		time.Sleep(in.plan.Latency)
	}
	if in.down.Load() || (seq >= in.plan.BlackoutFrom && seq < in.plan.BlackoutTo &&
		in.plan.BlackoutTo > in.plan.BlackoutFrom) {
		in.blackouts.Add(1)
		// ErrAbortHandler is net/http's sanctioned way to tear the
		// connection without a response: the server suppresses the panic
		// log and the client observes a transport error — exactly what a
		// killed daemon looks like.
		panic(http.ErrAbortHandler)
	}
	if hit(in.plan.DropRate, in.plan.Seed^saltDrop, uint64(seq)) {
		in.dropped.Add(1)
		panic(http.ErrAbortHandler)
	}
	if hit(in.plan.FailRate, in.plan.Seed^saltFail, uint64(seq)) {
		in.failed.Add(1)
		http.Error(w, "faults: injected failure", http.StatusInternalServerError)
		return
	}
	if hit(in.plan.TearRate, in.plan.Seed^saltTear, uint64(seq)) {
		in.torn.Add(1)
		in.tear(w, r)
		return
	}
	in.inner.ServeHTTP(w, r)
}

// tear runs the real handler against a buffering recorder, then
// forwards the status and headers but only half the body before
// killing the connection — a mid-transfer daemon death. Content-Length
// still advertises the full body, so well-behaved clients detect the
// truncation as an unexpected EOF rather than a short-but-clean read.
func (in *Injector) tear(w http.ResponseWriter, r *http.Request) {
	cw := &captureWriter{header: make(http.Header), status: http.StatusOK}
	in.inner.ServeHTTP(cw, r)
	for k, vs := range cw.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(cw.status)
	body := cw.body
	if len(body) > 1 {
		_, _ = w.Write(body[:len(body)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	panic(http.ErrAbortHandler)
}

// captureWriter buffers a handler's full response so tear can replay a
// prefix of it.
type captureWriter struct {
	header http.Header
	status int
	body   []byte
}

func (c *captureWriter) Header() http.Header    { return c.header }
func (c *captureWriter) WriteHeader(status int) { c.status = status }
func (c *captureWriter) Write(p []byte) (int, error) {
	c.body = append(c.body, p...)
	return len(p), nil
}

// Backend wraps an inner store.Backend with the plan's error schedule —
// fleet-level resilience tests without an HTTP server in the loop.
// Injected faults follow the Backend error discipline: reads degrade to
// misses, writes and claims surface ErrInjected. Tear/drop rates (wire
// concepts) are folded into FailRate here.
type Backend struct {
	inner store.Backend
	plan  Plan

	seq  atomic.Int64
	down atomic.Bool

	requests, failed, blackouts atomic.Int64
}

// WrapBackend applies the plan to every Get/Put/Has/lease call on
// inner. Index, Len, Counters, and GC pass through untouched — they are
// bookkeeping, not the sweep-critical path under test.
func WrapBackend(inner store.Backend, plan Plan) *Backend {
	return &Backend{inner: inner, plan: plan}
}

var _ store.Backend = (*Backend)(nil)
var _ store.Resilient = (*Backend)(nil)

// Kill makes every subsequent call fail; Restore undoes it.
func (b *Backend) Kill()    { b.down.Store(true) }
func (b *Backend) Restore() { b.down.Store(false) }

// Injected snapshots the fault counters (Dropped/Torn stay zero; those
// are wire faults).
func (b *Backend) Injected() Counters {
	return Counters{
		Requests:  b.requests.Load(),
		Failed:    b.failed.Load(),
		Blackouts: b.blackouts.Load(),
	}
}

// inject decides one call's fate: nil means proceed to the inner
// backend.
func (b *Backend) inject() error {
	seq := b.seq.Add(1) - 1
	b.requests.Add(1)
	if b.plan.Latency > 0 {
		time.Sleep(b.plan.Latency)
	}
	if b.down.Load() || (seq >= b.plan.BlackoutFrom && seq < b.plan.BlackoutTo &&
		b.plan.BlackoutTo > b.plan.BlackoutFrom) {
		b.blackouts.Add(1)
		return ErrInjected
	}
	if hit(b.plan.FailRate, b.plan.Seed^saltFail, uint64(seq)) {
		b.failed.Add(1)
		return ErrInjected
	}
	return nil
}

func (b *Backend) Location() string { return b.inner.Location() }

func (b *Backend) Get(k store.Key) (*core.Result, bool) {
	if b.inject() != nil {
		return nil, false // reads degrade to a miss
	}
	return b.inner.Get(k)
}

func (b *Backend) Put(k store.Key, res *core.Result) error {
	if err := b.inject(); err != nil {
		return err
	}
	return b.inner.Put(k, res)
}

func (b *Backend) Has(k store.Key) bool {
	if b.inject() != nil {
		return false
	}
	return b.inner.Has(k)
}

func (b *Backend) TryAcquire(digest, owner string, ttl time.Duration) (store.LeaseHandle, bool, error) {
	if err := b.inject(); err != nil {
		return nil, false, err
	}
	return b.inner.TryAcquire(digest, owner, ttl)
}

func (b *Backend) LeaseHolder(digest string) (string, bool) {
	if b.inject() != nil {
		return "", false
	}
	return b.inner.LeaseHolder(digest)
}

func (b *Backend) Index() []store.ManifestEntry { return b.inner.Index() }
func (b *Backend) Len() int                     { return b.inner.Len() }
func (b *Backend) Counters() store.Counters     { return b.inner.Counters() }
func (b *Backend) GC(p store.GCPolicy) (store.GCStats, error) {
	return b.inner.GC(p)
}

// CanDegrade, Resilience, and Reconcile forward to the inner backend
// when it is Resilient, so wrapping a tiered client in faults does not
// hide its degraded-mode capability from the fleet's policy resolution.
func (b *Backend) CanDegrade() bool {
	if r, ok := b.inner.(store.Resilient); ok {
		return r.CanDegrade()
	}
	return false
}

func (b *Backend) Resilience() store.ResilienceStats {
	if r, ok := b.inner.(store.Resilient); ok {
		return r.Resilience()
	}
	return store.ResilienceStats{}
}

func (b *Backend) Reconcile() (int, error) {
	if r, ok := b.inner.(store.Resilient); ok {
		return r.Reconcile()
	}
	return 0, nil
}
