package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"golatest/internal/core"
	"golatest/internal/store"
)

// TestDecisionDeterminism: the injection schedule is a pure function of
// (seed, ordinal) — equal plans produce identical fault sequences, and
// a different seed produces a different one.
func TestDecisionDeterminism(t *testing.T) {
	schedule := func(seed uint64) []bool {
		out := make([]bool, 256)
		for i := range out {
			out[i] = hit(0.3, seed^saltFail, uint64(i))
		}
		return out
	}
	a, b, other := schedule(42), schedule(42), schedule(43)
	hits, diverged := 0, false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("equal seeds diverged at ordinal %d", i)
		}
		if a[i] != other[i] {
			diverged = true
		}
		if a[i] {
			hits++
		}
	}
	if !diverged {
		t.Fatal("distinct seeds produced identical schedules")
	}
	// 30% of 256 with a real RNG: sanity-check the rate is in the
	// ballpark, not a degenerate all-or-nothing stream.
	if hits < 40 || hits > 120 {
		t.Fatalf("FailRate 0.3 hit %d/256 ordinals", hits)
	}
}

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "26")
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "abcdefghijklmnopqrstuvwxyz")
	})
}

// TestInjectorFaultModes drives each fault class end to end over a real
// connection and checks the client-observable symptom.
func TestInjectorFaultModes(t *testing.T) {
	t.Run("fail", func(t *testing.T) {
		inj := NewInjector(okHandler(), Plan{FailRate: 1})
		srv := httptest.NewServer(inj)
		defer srv.Close()
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("status %d, want 500", resp.StatusCode)
		}
		if c := inj.Injected(); c.Failed != 1 || c.Requests != 1 {
			t.Fatalf("counters %+v", c)
		}
	})

	t.Run("drop", func(t *testing.T) {
		inj := NewInjector(okHandler(), Plan{DropRate: 1})
		srv := httptest.NewServer(inj)
		defer srv.Close()
		if _, err := http.Get(srv.URL); err == nil {
			t.Fatal("dropped connection produced a response")
		}
		if c := inj.Injected(); c.Dropped != 1 {
			t.Fatalf("counters %+v", c)
		}
	})

	t.Run("tear", func(t *testing.T) {
		inj := NewInjector(okHandler(), Plan{TearRate: 1})
		srv := httptest.NewServer(inj)
		defer srv.Close()
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		// The status line and headers made it out...
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200 before the tear", resp.StatusCode)
		}
		// ...but the advertised body does not: reading hits the torn
		// connection.
		body, err := io.ReadAll(resp.Body)
		if err == nil && len(body) == 26 {
			t.Fatal("torn response delivered the full body")
		}
		if len(body) >= 26 {
			t.Fatalf("torn body has %d bytes, want a strict prefix", len(body))
		}
		if c := inj.Injected(); c.Torn != 1 {
			t.Fatalf("counters %+v", c)
		}
	})

	t.Run("kill-restore", func(t *testing.T) {
		inj := NewInjector(okHandler(), Plan{})
		srv := httptest.NewServer(inj)
		defer srv.Close()
		inj.Kill()
		if _, err := http.Get(srv.URL); err == nil {
			t.Fatal("killed injector served a response")
		}
		inj.Restore()
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatalf("restored injector: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("restored status %d", resp.StatusCode)
		}
		if c := inj.Injected(); c.Blackouts != 1 {
			t.Fatalf("counters %+v", c)
		}
	})
}

// TestInjectorBlackoutWindow: the ordinal window fails exactly the
// scripted span of requests.
func TestInjectorBlackoutWindow(t *testing.T) {
	inj := NewInjector(okHandler(), Plan{BlackoutFrom: 1, BlackoutTo: 3})
	srv := httptest.NewServer(inj)
	defer srv.Close()
	for i := 0; i < 5; i++ {
		resp, err := http.Get(srv.URL)
		inBlackout := i >= 1 && i < 3
		if inBlackout {
			if err == nil {
				resp.Body.Close()
				t.Fatalf("request %d served inside the blackout", i)
			}
			continue
		}
		if err != nil {
			t.Fatalf("request %d outside the blackout: %v", i, err)
		}
		resp.Body.Close()
	}
	if c := inj.Injected(); c.Blackouts != 2 {
		t.Fatalf("Blackouts = %d, want 2", c.Blackouts)
	}
}

func backendKey(t *testing.T, instance int) store.Key {
	t.Helper()
	k, err := store.KeyFor("a100", instance, 42,
		core.Config{Frequencies: []float64{705, 1410}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestWrapBackend: the backend wrapper follows the store error
// discipline — injected faults turn reads into misses and surface
// ErrInjected from writes and claims — and Kill/Restore scripts a full
// outage.
func TestWrapBackend(t *testing.T) {
	inner, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := backendKey(t, 0)
	res := &core.Result{DeviceName: "a100[0]"}

	b := WrapBackend(inner, Plan{})
	if err := b.Put(k, res); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Get(k); !ok {
		t.Fatal("clean wrapper missed")
	}

	b.Kill()
	if _, ok := b.Get(k); ok {
		t.Fatal("killed backend served a read")
	}
	if err := b.Put(backendKey(t, 1), res); !errors.Is(err, ErrInjected) {
		t.Fatalf("killed Put: %v, want ErrInjected", err)
	}
	if _, _, err := b.TryAcquire(k.Digest, "o", time.Minute); !errors.Is(err, ErrInjected) {
		t.Fatalf("killed TryAcquire: %v, want ErrInjected", err)
	}
	if b.Has(k) {
		t.Fatal("killed Has true")
	}
	b.Restore()
	if _, ok := b.Get(k); !ok {
		t.Fatal("restored backend missed")
	}
	if c := b.Injected(); c.Blackouts != 4 {
		t.Fatalf("Blackouts = %d, want 4", c.Blackouts)
	}

	// A non-resilient inner backend yields a non-degradable wrapper.
	if b.CanDegrade() {
		t.Fatal("plain store wrapper claims it can degrade")
	}
	if n, err := b.Reconcile(); n != 0 || err != nil {
		t.Fatalf("Reconcile over plain store = %d, %v", n, err)
	}
}
