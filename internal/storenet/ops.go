package storenet

import (
	"net/http"
	"sync"
	"time"
)

// defaultOpsRingSize is how many recent requests the flight recorder
// retains when ServerOptions.OpsRingSize is zero. Sized for "what was
// the daemon doing just before it wedged", not for history — the ring
// is a diagnostic, /metrics is the ledger.
const defaultOpsRingSize = 256

// OpsRecord is one request in the daemon's flight recorder: enough to
// reconstruct what the daemon was serving (method, key, status,
// latency) and for whom (the client span's trace identity, when the
// request carried a traceparent header). Served by GET /debug/ops.
type OpsRecord struct {
	Time      time.Time `json:"time"`
	Method    string    `json:"method"`
	Path      string    `json:"path"`
	Endpoint  string    `json:"endpoint"` // mux route pattern, or "unmatched"
	Status    int       `json:"status"`
	LatencyNs int64     `json:"latency_ns"`
	TraceID   string    `json:"trace_id,omitempty"`
	SpanID    string    `json:"span_id,omitempty"` // the client-side span that issued the request
}

// opsRing is the fixed-size request ring. Writes overwrite the oldest
// entry; a snapshot returns chronological order. One mutex — an add is
// a copy into a preallocated slot, trivially cheaper than the request
// it records.
type opsRing struct {
	mu   sync.Mutex
	buf  []OpsRecord
	next int
	full bool
}

func newOpsRing(n int) *opsRing {
	if n <= 0 {
		n = defaultOpsRingSize
	}
	return &opsRing{buf: make([]OpsRecord, n)}
}

func (r *opsRing) add(rec OpsRecord) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

func (r *opsRing) snapshot() []OpsRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]OpsRecord, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]OpsRecord, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// OpsSnapshot returns the flight recorder's current contents, oldest
// first — the same view GET /debug/ops serves.
func (s *Server) OpsSnapshot() []OpsRecord {
	return s.ops.snapshot()
}

// opsResponse is the GET /debug/ops body.
type opsResponse struct {
	Capacity int         `json:"capacity"`
	Records  []OpsRecord `json:"records"`
}

// handleOps serves the flight recorder as JSON. Admin-scoped on authed
// daemons: records carry tenant request paths (digests), which one
// tenant must not read about another. Only data-plane (/v1) requests
// are recorded — debug and probe scrapes would otherwise flood the
// ring with exactly the traffic nobody is diagnosing.
func (s *Server) handleOps(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, opsResponse{Capacity: len(s.ops.buf), Records: s.ops.snapshot()})
}
