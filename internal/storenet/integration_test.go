package storenet

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"golatest/internal/core"
	"golatest/internal/fleet"
	"golatest/internal/hwprofile"
	"golatest/internal/store"
)

func hostConfig(p hwprofile.Profile) core.Config {
	return core.Config{
		Frequencies: []float64{705, 1065, 1410},
		Seed:        500 + uint64(p.Instance),
	}
}

func hostProfiles(n int) []hwprofile.Profile {
	out := make([]hwprofile.Profile, n)
	for i := range out {
		out[i] = hwprofile.A100Instance(i)
	}
	return out
}

// TestCrossHostSweepPartition is the acceptance contract of the network
// store: two "hosts" — clients with separate local cache directories,
// sharing nothing but a running stored daemon — sweep one campaign set
// concurrently and (a) compute each shard exactly once between them,
// (b) both finish with the complete result set, and (c) end with
// byte-identical artefacts in both local tiers and the daemon.
func TestCrossHostSweepPartition(t *testing.T) {
	backing, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(backing))
	defer srv.Close()

	profiles := hostProfiles(6)
	type host struct {
		cacheDir string
		rep      *fleet.Report
		err      error
		calls    atomic.Int64
	}
	hosts := [2]*host{{cacheDir: t.TempDir()}, {cacheDir: t.TempDir()}}
	var wg sync.WaitGroup
	for i, h := range hosts {
		cache, err := store.Open(h.cacheDir)
		if err != nil {
			t.Fatal(err)
		}
		client, err := NewClient(srv.URL, ClientOptions{Cache: cache, RetryBackoff: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		owner := fmt.Sprintf("host-%d", i)
		wg.Add(1)
		go func(h *host) {
			defer wg.Done()
			h.rep, h.err = fleet.Sweep(profiles, fleet.Options{
				Store:  client,
				Config: hostConfig,
				Run: func(p hwprofile.Profile, cfg core.Config) (*core.Result, error) {
					h.calls.Add(1)
					return &core.Result{
						DeviceName:   fmt.Sprintf("%s[%d]", p.Key, p.Instance),
						Architecture: p.Config.Architecture,
					}, nil
				},
				LeaseTTL: time.Minute,
				Owner:    owner,
				WaitPoll: 2 * time.Millisecond,
			})
		}(h)
	}
	wg.Wait()

	var computed, calls int64
	for i, h := range hosts {
		if h.err != nil {
			t.Fatalf("host %d: %v", i, h.err)
		}
		computed += int64(h.rep.Computed)
		calls += h.calls.Load()
		for j, sh := range h.rep.Shards {
			if sh.Result == nil {
				t.Fatalf("host %d shard %d has no result", i, j)
			}
		}
	}
	if computed != int64(len(profiles)) || calls != int64(len(profiles)) {
		t.Fatalf("computed=%d calls=%d across both hosts, want exactly %d each (shards duplicated or lost)",
			computed, calls, len(profiles))
	}
	if backing.Len() != len(profiles) {
		t.Fatalf("daemon indexes %d blobs, want %d", backing.Len(), len(profiles))
	}

	// Byte-identical artefacts: every shard's blob is present in the
	// daemon and in both healed local tiers, with identical bytes.
	for _, p := range profiles {
		k, err := store.ProfileKey(p, hostConfig(p))
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join(backing.Dir(), k.Digest+".json"))
		if err != nil {
			t.Fatalf("daemon blob %s: %v", k, err)
		}
		for i, h := range hosts {
			got, err := os.ReadFile(filepath.Join(h.cacheDir, k.Digest+".json"))
			if err != nil {
				t.Fatalf("host %d local tier missing %s: %v", i, k, err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("host %d blob %s differs from the daemon's bytes", i, k)
			}
		}
	}
}

// TestCrossHostLeaseStealAfterCrash: a client that claims a shard and
// dies (never renews, never releases) must not block the fleet — a
// second host steals the expired claim through the daemon and computes.
func TestCrossHostLeaseStealAfterCrash(t *testing.T) {
	backing, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(backing))
	defer srv.Close()

	profiles := hostProfiles(2)
	k0, err := store.ProfileKey(profiles[0], hostConfig(profiles[0]))
	if err != nil {
		t.Fatal(err)
	}

	// The crashing host: claims shard 0 with a tiny TTL and vanishes.
	crashed, err := NewClient(srv.URL, ClientOptions{RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := crashed.TryAcquire(k0.Digest, "crashed-host", 5*time.Millisecond); err != nil || !ok {
		t.Fatalf("crashed host claim: ok=%v err=%v", ok, err)
	}
	time.Sleep(20 * time.Millisecond)

	// The survivor sweeps everything, stealing the dead claim.
	cache, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	survivor, err := NewClient(srv.URL, ClientOptions{Cache: cache, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	rep, err := fleet.Sweep(profiles, fleet.Options{
		Store:  survivor,
		Config: hostConfig,
		Run: func(p hwprofile.Profile, cfg core.Config) (*core.Result, error) {
			calls.Add(1)
			return &core.Result{DeviceName: fmt.Sprintf("%s[%d]", p.Key, p.Instance)}, nil
		},
		LeaseTTL: time.Minute,
		Owner:    "survivor",
		WaitPoll: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Computed != 2 || calls.Load() != 2 {
		t.Fatalf("computed=%d calls=%d, want both shards computed", rep.Computed, calls.Load())
	}
	if rep.Stolen != 1 {
		t.Fatalf("Stolen = %d, want 1 (the crashed host's claim)", rep.Stolen)
	}
}

// TestCrossHostPlanSeesRemoteState: fleet.Plan through a network
// backend reports both cached shards and live remote claim holders —
// the scheduler's cross-host routing input.
func TestCrossHostPlanSeesRemoteState(t *testing.T) {
	backing, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(backing))
	defer srv.Close()

	profiles := hostProfiles(3)
	k0, err := store.ProfileKey(profiles[0], hostConfig(profiles[0]))
	if err != nil {
		t.Fatal(err)
	}
	k1, err := store.ProfileKey(profiles[1], hostConfig(profiles[1]))
	if err != nil {
		t.Fatal(err)
	}
	if err := backing.Put(k1, &core.Result{DeviceName: "cached"}); err != nil {
		t.Fatal(err)
	}
	peer, err := NewClient(srv.URL, ClientOptions{RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	lease, ok, err := peer.TryAcquire(k0.Digest, "peer-host", time.Minute)
	if err != nil || !ok {
		t.Fatalf("peer claim: ok=%v err=%v", ok, err)
	}
	defer lease.Release()

	planner, err := NewClient(srv.URL, ClientOptions{RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fleet.Plan(profiles, fleet.Options{Store: planner, Config: hostConfig,
		Run: func(hwprofile.Profile, core.Config) (*core.Result, error) { return nil, nil }})
	if err != nil {
		t.Fatal(err)
	}
	if plan[0].LeaseHolder != "peer-host" || plan[0].Cached {
		t.Fatalf("plan[0] = %+v, want remote holder peer-host, uncached", plan[0])
	}
	if !plan[1].Cached || plan[1].LeaseHolder != "" {
		t.Fatalf("plan[1] = %+v, want cached, unclaimed", plan[1])
	}
	if plan[2].Cached || plan[2].LeaseHolder != "" {
		t.Fatalf("plan[2] = %+v, want free", plan[2])
	}
}

// TestCrossHostSweepPartitionMixedV1V2 re-runs the cross-host
// partition contract over a daemon whose store was seeded by a
// pre-compression deployment: half the shards exist as legacy v1
// (plain JSON) blobs. The sweep must treat them as first-class hits —
// only the missing shards compute, each exactly once fleet-wide — the
// v1 blobs heal to the current (v3) container on the way through, and
// both hosts' artefacts stay byte-identical.
func TestCrossHostSweepPartitionMixedV1V2(t *testing.T) {
	backingDir := t.TempDir()
	backing, err := store.Open(backingDir)
	if err != nil {
		t.Fatal(err)
	}
	profiles := hostProfiles(6)

	// Seed shards 0–2 as v1 blobs with exactly the result Run would
	// compute (campaigns are deterministic functions of their shard).
	seeded := 3
	for _, p := range profiles[:seeded] {
		k, err := store.ProfileKey(p, hostConfig(p))
		if err != nil {
			t.Fatal(err)
		}
		res := &core.Result{
			DeviceName:   fmt.Sprintf("%s[%d]", p.Key, p.Instance),
			Architecture: p.Config.Architecture,
		}
		data, err := store.EncodeBlob(k, res) // canonical JSON = the v1 container
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(backingDir, k.Digest+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(NewServer(backing))
	defer srv.Close()

	type host struct {
		cacheDir string
		rep      *fleet.Report
		err      error
		calls    atomic.Int64
	}
	hosts := [2]*host{{cacheDir: t.TempDir()}, {cacheDir: t.TempDir()}}
	var wg sync.WaitGroup
	for i, h := range hosts {
		cache, err := store.Open(h.cacheDir)
		if err != nil {
			t.Fatal(err)
		}
		client, err := NewClient(srv.URL, ClientOptions{Cache: cache, RetryBackoff: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		owner := fmt.Sprintf("host-%d", i)
		wg.Add(1)
		go func(h *host) {
			defer wg.Done()
			h.rep, h.err = fleet.Sweep(profiles, fleet.Options{
				Store:  client,
				Config: hostConfig,
				Run: func(p hwprofile.Profile, cfg core.Config) (*core.Result, error) {
					h.calls.Add(1)
					return &core.Result{
						DeviceName:   fmt.Sprintf("%s[%d]", p.Key, p.Instance),
						Architecture: p.Config.Architecture,
					}, nil
				},
				LeaseTTL: time.Minute,
				Owner:    owner,
				WaitPoll: 2 * time.Millisecond,
			})
		}(h)
	}
	wg.Wait()

	var computed, calls int64
	for i, h := range hosts {
		if h.err != nil {
			t.Fatalf("host %d: %v", i, h.err)
		}
		computed += int64(h.rep.Computed)
		calls += h.calls.Load()
		for j, sh := range h.rep.Shards {
			if sh.Result == nil {
				t.Fatalf("host %d shard %d has no result", i, j)
			}
		}
	}
	want := int64(len(profiles) - seeded)
	if computed != want || calls != want {
		t.Fatalf("computed=%d calls=%d across both hosts, want exactly %d (the seeded v1 shards must be hits)",
			computed, calls, want)
	}

	// Every blob — seeded and fresh alike — now rests in the v3
	// container, and both local tiers healed to byte-identical copies
	// of the daemon's.
	for _, p := range profiles {
		k, err := store.ProfileKey(p, hostConfig(p))
		if err != nil {
			t.Fatal(err)
		}
		wantBytes, err := os.ReadFile(filepath.Join(backingDir, k.Digest+".json"))
		if err != nil {
			t.Fatalf("daemon blob %s: %v", k, err)
		}
		if store.ContainerOf(wantBytes) != store.ContainerV3 {
			t.Fatalf("daemon blob %s not healed to the v3 container", k)
		}
		for i, h := range hosts {
			got, err := os.ReadFile(filepath.Join(h.cacheDir, k.Digest+".json"))
			if err != nil {
				t.Fatalf("host %d local tier missing %s: %v", i, k, err)
			}
			if !bytes.Equal(wantBytes, got) {
				t.Fatalf("host %d blob %s differs from the daemon's bytes", i, k)
			}
		}
	}
}
