package storenet

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"golatest/internal/core"
	"golatest/internal/store"
)

func benchKey(b *testing.B, instance int) store.Key {
	b.Helper()
	k, err := store.KeyFor("a100", instance, 42, core.Config{
		Frequencies: []float64{705, 1410},
		Seed:        uint64(1000 + instance),
	})
	if err != nil {
		b.Fatal(err)
	}
	return k
}

// BenchmarkBreakerOpenGet measures the fast-fail path: the breaker is
// already open, so a Get costs one atomic state check and a clock read —
// no dial, no retries, no backoff. This is the latency a degraded sweep
// pays per store touch while the daemon is down; contrast with
// BenchmarkTimeoutRetryGet, which is the same outage without a breaker.
func BenchmarkBreakerOpenGet(b *testing.B) {
	// Port 1 on loopback refuses instantly, so tripping the breaker in
	// the setup phase is cheap and no server needs to run.
	c, err := NewClient("http://127.0.0.1:1", ClientOptions{
		Retries:          1,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour, // stays open for the whole run
	})
	if err != nil {
		b.Fatal(err)
	}
	k := benchKey(b, 0)
	c.Get(k) // trip
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(k); ok {
			b.Fatal("fast-fail Get hit")
		}
	}
}

// BenchmarkTimeoutRetryGet is the no-breaker baseline for the same
// outage class: a daemon that accepts and hangs costs a full
// RequestTimeout per attempt, every operation, forever. The
// breaker_fastfail_speedup figure in BENCH_campaign.json is this
// benchmark over BenchmarkBreakerOpenGet.
func BenchmarkTimeoutRetryGet(b *testing.B) {
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer hang.Close()
	c, err := NewClient(hang.URL, ClientOptions{
		Retries:          1,
		RetryBackoff:     time.Millisecond,
		RequestTimeout:   20 * time.Millisecond,
		BreakerThreshold: -1, // the pre-breaker client
	})
	if err != nil {
		b.Fatal(err)
	}
	k := benchKey(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(k); ok {
			b.Fatal("Get hit against a hanging daemon")
		}
	}
}

// BenchmarkDegradedWarmGet is a warm read in degraded mode: breaker
// open, blob in the local tier. Together with BenchmarkLocalWarmGet it
// yields degraded_warm_overhead — what the tiered client's fallback
// machinery adds on top of a plain local store hit, i.e. the read-path
// cost of surviving an outage.
func BenchmarkDegradedWarmGet(b *testing.B) {
	cache, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewClient("http://127.0.0.1:1", ClientOptions{
		Cache:            cache,
		Retries:          1,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	k := benchKey(b, 0)
	if err := c.Put(k, &core.Result{DeviceName: "a100[0]"}); err != nil {
		b.Fatal(err) // deferred into the local tier; also trips the breaker
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(k); !ok {
			b.Fatal("degraded warm Get missed the local tier")
		}
	}
}

// BenchmarkLocalWarmGet is the denominator for degraded_warm_overhead:
// the same warm read against the bare local store, no network client in
// the path.
func BenchmarkLocalWarmGet(b *testing.B) {
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	k := benchKey(b, 0)
	if err := st.Put(k, &core.Result{DeviceName: "a100[0]"}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := st.Get(k); !ok {
			b.Fatal("warm Get missed")
		}
	}
}
