package storenet

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"golatest/internal/core"
	"golatest/internal/store"
)

// scrapeMetrics fetches /metrics and returns the body.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// labelSeries extracts the set of distinct series identities (metric
// name plus label block — everything before the sample value) from a
// Prometheus text body.
func labelSeries(body string) map[string]bool {
	out := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.LastIndex(line, " "); i > 0 {
			out[line[:i]] = true
		}
	}
	return out
}

// TestMetricsCardinalityBounded is the guard against the classic
// metrics blow-up: per-key (per-digest) label values. Every label block
// on /metrics must use only the fixed label keys, every endpoint label
// must be a registered route pattern (with its {digest} placeholder
// intact, never a concrete digest), and driving traffic through fresh
// digests must not mint a single new series.
func TestMetricsCardinalityBounded(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(st)
	srv := httptest.NewServer(server)
	defer srv.Close()
	client, err := NewClient(srv.URL, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}

	traffic := func(seed uint64, n int) []store.Key {
		t.Helper()
		keys := make([]store.Key, n)
		for i := range keys {
			k, err := store.KeyFor("a100", i, 42, core.Config{Frequencies: []float64{705}, Seed: seed + uint64(i)})
			if err != nil {
				t.Fatal(err)
			}
			keys[i] = k
			if err := client.Put(k, &core.Result{DeviceName: fmt.Sprintf("a100[%d]", i)}); err != nil {
				t.Fatal(err)
			}
			if _, ok := client.Get(k); !ok {
				t.Fatalf("get %s", k)
			}
			client.Has(k)
			if _, ok, err := client.TryAcquire(k.Digest, "guard", time.Minute); err != nil || !ok {
				t.Fatalf("lease %s: ok=%v err=%v", k, ok, err)
			}
		}
		return keys
	}

	keys := traffic(100, 2)
	// Throwaway scrape so the "GET /metrics" series itself exists before
	// the before/after comparison below.
	scrapeMetrics(t, srv.URL)
	body := scrapeMetrics(t, srv.URL)

	// Fixed label keys only, and every endpoint value is a registered
	// mux pattern — the digest placeholder, never a digest.
	labelKeyRe := regexp.MustCompile(`(\w+)="`)
	for block := range labelSeries(body) {
		for _, m := range labelKeyRe.FindAllStringSubmatch(block, -1) {
			switch m[1] {
			case "endpoint", "code", "le":
			default:
				t.Fatalf("unexpected label key %q in %s", m[1], block)
			}
		}
	}
	endpointRe := regexp.MustCompile(`endpoint="([^"]*)"`)
	hexRe := regexp.MustCompile(`[0-9a-f]{16,}`)
	for _, m := range endpointRe.FindAllStringSubmatch(body, -1) {
		ep := m[1]
		if hexRe.MatchString(ep) {
			t.Fatalf("endpoint label %q carries a concrete digest", ep)
		}
		if strings.Contains(ep, "blobs/") || strings.Contains(ep, "leases/") {
			if !strings.Contains(ep, "{digest}") {
				t.Fatalf("endpoint label %q lost its {digest} placeholder", ep)
			}
		}
	}
	// No concrete digest anywhere in the exposition.
	for _, k := range keys {
		if strings.Contains(body, k.Digest) {
			t.Fatalf("digest %s leaked into /metrics", k.Digest)
		}
	}

	// More traffic through fresh digests mints zero new series.
	before := labelSeries(body)
	traffic(500, 3)
	after := labelSeries(scrapeMetrics(t, srv.URL))
	for s := range after {
		if !before[s] {
			t.Fatalf("fresh digests minted a new series %s\nbefore: %v", s, before)
		}
	}

	// The client's own telemetry families are label-free by design — no
	// way to smuggle a digest in at all.
	var b strings.Builder
	client.Telemetry().WriteProm(&b)
	if out := b.String(); strings.Contains(out, "{") {
		t.Fatalf("client telemetry is not label-free:\n%s", out)
	} else if !strings.Contains(out, "storenet_client_retries_total") {
		t.Fatalf("client telemetry families missing:\n%s", out)
	}
}
