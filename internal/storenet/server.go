package storenet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"golatest/internal/obs"
	"golatest/internal/store"
)

// Server serves one *store.Store directory over the v1 HTTP API. It is
// an http.Handler; cmd/stored wraps it in an http.Server, and tests
// mount it on httptest. All handlers are safe for concurrent use — the
// store itself is the synchronisation point, exactly as it is for local
// processes sharing the directory.
type Server struct {
	st  *store.Store
	mux *http.ServeMux

	// auth is the live token set, nil = open (trusted-LAN) mode. A
	// pointer swap (SetAuth) is how cmd/stored reloads -tokens on
	// SIGHUP without dropping the listener: every routed request loads
	// the current set at admission time.
	auth atomic.Pointer[TokenSet]

	// metrics is the per-endpoint request/latency ledger the outermost
	// ServeHTTP wrapper feeds and GET /metrics exports. It observes
	// auth and rate-limit rejections too (the middleware runs inside
	// the mux), so a 401/429 storm is visible in the scrape.
	metrics *requestMetrics

	// Lease churn served by this daemon instance — the fleet-wide
	// contention view a single client's counters cannot give. In-memory
	// by design (a restart zeroes them): they describe this instance's
	// traffic, not the store's state.
	leaseAcquired, leaseStolen, leaseBusy, leaseRenewed, leaseReleased atomic.Int64

	// draining flips /readyz to 503 ahead of shutdown, so load balancers
	// and probes route new traffic away while in-flight requests finish.
	draining atomic.Bool

	// ops is the flight recorder: the last N data-plane requests with
	// status, latency and (when the client sent a traceparent) the
	// trace identity, served at GET /debug/ops.
	ops *opsRing

	// log receives one Debug line per request, annotated with the
	// extracted trace ID so daemon logs grep by sweep. Defaults to
	// discard.
	log *slog.Logger
}

// SetDraining marks the server as (not) draining; while draining,
// /readyz answers 503 and everything else keeps serving — the
// remove-from-rotation-then-drain shutdown sequence.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// LeaseStats snapshots the lease traffic a Server has arbitrated:
// successful grants (Stolen counts the subset that displaced an expired
// holder), busy rejections, renewals, and releases.
type LeaseStats struct {
	Acquired int64 `json:"acquired"`
	Stolen   int64 `json:"stolen"`
	Busy     int64 `json:"busy"`
	Renewed  int64 `json:"renewed"`
	Released int64 `json:"released"`
}

// LeaseStats returns the server's lease-churn counters.
func (s *Server) LeaseStats() LeaseStats {
	return LeaseStats{
		Acquired: s.leaseAcquired.Load(),
		Stolen:   s.leaseStolen.Load(),
		Busy:     s.leaseBusy.Load(),
		Renewed:  s.leaseRenewed.Load(),
		Released: s.leaseReleased.Load(),
	}
}

// ServerOptions configures the optional production machinery; the zero
// value is the open (trusted-LAN) v1 daemon.
type ServerOptions struct {
	// Auth, when non-nil, enforces bearer-token auth with per-token
	// scopes and quotas on every /v1 route. Probes (/healthz, /readyz)
	// and /metrics stay token-free regardless: they are registered
	// outside the authed routes, so no middleware change can
	// accidentally lock out the orchestrator or the scraper.
	Auth *TokenSet
	// Logger receives one Debug-level line per request (method, path,
	// status, latency, trace_id). nil discards — request logging is an
	// opt-in diagnostic, not default traffic noise.
	Logger *slog.Logger
	// OpsRingSize is the flight-recorder capacity (last N requests at
	// /debug/ops); 0 means 256.
	OpsRingSize int
}

// NewServer builds the handler for a store in open mode.
func NewServer(st *store.Store) *Server { return NewServerWith(st, ServerOptions{}) }

// NewServerWith builds the handler for a store with production options.
func NewServerWith(st *store.Store, opts ServerOptions) *Server {
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		st:      st,
		mux:     http.NewServeMux(),
		metrics: newRequestMetrics(),
		ops:     newOpsRing(opts.OpsRingSize),
		log:     logger,
	}
	s.auth.Store(opts.Auth)
	s.route("GET "+apiPrefix+"/blobs/{digest}", ScopeRead, s.handleBlobGet) // matches HEAD too
	s.route("PUT "+apiPrefix+"/blobs/{digest}", ScopeWrite, s.handleBlobPut)
	s.route("GET "+apiPrefix+"/leases/{digest}", ScopeRead, s.handleLeasePeek)
	s.route("POST "+apiPrefix+"/leases/{digest}/acquire", ScopeWrite, s.handleLeaseAcquire)
	s.route("POST "+apiPrefix+"/leases/{digest}/renew", ScopeWrite, s.handleLeaseRenew)
	s.route("POST "+apiPrefix+"/leases/{digest}/release", ScopeWrite, s.handleLeaseRelease)
	s.route("GET "+apiPrefix+"/index", ScopeRead, s.handleIndex)
	s.route("GET "+apiPrefix+"/stats", ScopeRead, s.handleStats)
	// GC evicts blobs fleet-wide — any tenant's. Admin only.
	s.route("POST "+apiPrefix+"/gc", ScopeAdmin, s.handleGC)
	// Diagnostics: the request flight recorder and the runtime's pprof
	// profiles. Admin-scoped by the same route() construction that
	// guards /v1 — an open daemon serves them openly (trusted LAN), an
	// authed one requires an admin token: profiles expose memory
	// contents and request paths name tenants' digests, either of which
	// outranks read scope. Registered outside /v1 (they describe the
	// process, not the store API) and excluded from the ops ring.
	s.route("GET /debug/ops", ScopeAdmin, s.handleOps)
	s.route("GET /debug/pprof/", ScopeAdmin, pprof.Index)
	s.route("GET /debug/pprof/cmdline", ScopeAdmin, pprof.Cmdline)
	s.route("GET /debug/pprof/profile", ScopeAdmin, pprof.Profile)
	s.route("GET /debug/pprof/symbol", ScopeAdmin, pprof.Symbol)
	s.route("POST /debug/pprof/symbol", ScopeAdmin, pprof.Symbol)
	s.route("GET /debug/pprof/trace", ScopeAdmin, pprof.Trace)
	// Probes live outside the versioned prefix: they describe the
	// process, not the API, and orchestrators expect them at the root.
	// They and /metrics bypass auth and rate limits by construction —
	// registered on the raw mux, not through route() — because a
	// draining, throttled, or misconfigured daemon must still answer
	// its probes or the orchestrator kills a healthy process.
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("/", s.handleUnknown)
	return s
}

// route registers an API handler, wrapped by auth enforcement when a
// token set is configured. Tying the required scope to the
// registration (rather than checks inside handlers) means a new
// endpoint cannot forget enforcement — and loading the token set per
// request (rather than capturing it at registration) is what makes a
// SetAuth swap take effect on the very next request.
func (s *Server) route(pattern string, need Scope, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		if ts := s.auth.Load(); ts != nil && !ts.admit(w, r, need) {
			return
		}
		h(w, r)
	})
}

// SetAuth atomically replaces the live token set; nil reopens the
// daemon. In-flight requests finish under the set they were admitted
// with; every subsequent request is admitted against the new one —
// revoked tokens stop working immediately, without a listener bounce.
// Rate-limit buckets live inside the TokenSet, so a swap also resets
// quota accounting; a reload is an operator action rare enough for
// that to be the right trade.
func (s *Server) SetAuth(ts *TokenSet) { s.auth.Store(ts) }

// Store returns the store the server fronts.
func (s *Server) Store() *store.Store { return s.st }

// ServeHTTP implements http.Handler. It is also the observability
// middleware: every request — including auth and rate-limit
// rejections — is observed with its endpoint pattern (set by the mux
// on dispatch), status, and latency; data-plane (/v1) requests are
// additionally recorded in the /debug/ops flight recorder together
// with the trace identity extracted from the client's W3C traceparent
// header, and logged at Debug with the same trace ID — which is how
// one sweep's requests correlate across processes. The traceparent
// header is optional and ignored when malformed (wire behavior is
// unchanged for clients that never send it — no /v1 bump).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	d := time.Since(start)
	endpoint := r.Pattern
	if endpoint == "" {
		endpoint = "unmatched"
	}
	s.metrics.observe(endpoint, sw.code, d)
	if !strings.HasPrefix(r.URL.Path, apiPrefix+"/") {
		return
	}
	sc, _ := obs.ParseTraceparent(r.Header.Get("traceparent"))
	rec := OpsRecord{
		Time:      time.Now().UTC(),
		Method:    r.Method,
		Path:      r.URL.Path,
		Endpoint:  endpoint,
		Status:    sw.code,
		LatencyNs: d.Nanoseconds(),
	}
	if sc.Valid() {
		rec.TraceID = sc.TraceID.String()
		rec.SpanID = sc.SpanID.String()
	}
	s.ops.add(rec)
	s.log.Debug("request",
		"method", r.Method,
		"path", r.URL.Path,
		"status", sw.code,
		"latency", d,
		"trace_id", rec.TraceID)
}

// digest extracts and validates the {digest} path segment; an empty
// return means the response has been written.
func (s *Server) digest(w http.ResponseWriter, r *http.Request) string {
	d := r.PathValue("digest")
	if !digestRe.MatchString(d) {
		http.Error(w, fmt.Sprintf("storenet: invalid digest %q", d), http.StatusBadRequest)
		return ""
	}
	return d
}

// etagFor quotes a digest as the strong ETag of its (immutable) blob.
func etagFor(digest string) string { return `"` + digest + `"` }

// etagMatches implements the subset of If-None-Match matching the
// immutable-blob contract needs: any listed tag equal to the blob's
// (or a bare *) matches.
func etagMatches(header, digest string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(part), "W/"))
		if part == "*" || part == etagFor(digest) {
			return true
		}
	}
	return false
}

// acceptsGzip reports whether the request's Accept-Encoding admits a
// gzip response body. Go's default transport sends "gzip" on its own
// (and transparently inflates), so both codec-aware clients and legacy
// ones land on the compressed path; only an explicit identity-only
// header (curl, exotic proxies) takes the decompressing fallback.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		part = strings.TrimSpace(part)
		coding, params, _ := strings.Cut(part, ";")
		if strings.TrimSpace(coding) != "gzip" && strings.TrimSpace(coding) != "*" {
			continue
		}
		if q, ok := strings.CutPrefix(strings.TrimSpace(params), "q="); ok {
			if v, err := strconv.ParseFloat(strings.TrimSpace(q), 64); err == nil && v == 0 {
				continue
			}
		}
		return true
	}
	return false
}

// handleBlobGet serves GET and HEAD. GET goes through the store's
// validating read path (counters, LRU touch, corrupt-blob healing);
// HEAD is the cheap existence probe Has maps to and deliberately
// touches nothing.
//
// The response body is negotiated on two axes. A client declaring
// X-Blob-Accept: v3 gets the store's v3 disk bytes verbatim as
// application/octet-stream — the zero-copy passthrough, no
// re-encode — which its validator then writes to its cache tier
// unchanged. Legacy clients see the canonical-JSON entity the v1 API
// always served: gzip-accepting ones get the deterministic compressed
// view (byte-equal to EncodeBlobCompressed) under Content-Encoding:
// gzip, identity-only ones get the canonical JSON rendered on the fly
// through pooled writers. All three are representations of the same
// canonical envelope, so the digest ETag and If-None-Match semantics
// are unchanged.
func (s *Server) handleBlobGet(w http.ResponseWriter, r *http.Request) {
	digest := s.digest(w, r)
	if digest == "" {
		return
	}
	if r.Method == http.MethodHead {
		if !s.st.Has(store.Key{Digest: digest}) {
			http.Error(w, "storenet: no blob", http.StatusNotFound)
			return
		}
		w.Header().Set("ETag", etagFor(digest))
		w.WriteHeader(http.StatusOK)
		return
	}
	// The read runs before any conditional answer: a 304 must vouch that
	// the blob still exists, and a revalidation is a use — the LRU touch
	// inside GetRaw has to advance, or watermark GC would evict the
	// fleet's hottest (conditionally fetched) blobs first.
	data, ok := s.st.GetRaw(digest)
	if !ok {
		http.Error(w, "storenet: no blob", http.StatusNotFound)
		return
	}
	// The body representation depends on X-Blob-Accept (binary
	// passthrough) and Accept-Encoding (compressed vs inflated JSON)
	// while all share the digest ETag — a shared cache must key on both
	// headers or it would serve the wrong representation.
	w.Header().Set("Vary", "Accept-Encoding, X-Blob-Accept")
	w.Header().Set("ETag", etagFor(digest))
	// Blobs are immutable per digest: a cached body that ever matched is
	// still good.
	if etagMatches(r.Header.Get("If-None-Match"), digest) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	// GetRaw serves the v3 container except when a legacy blob's disk
	// heal failed mid-flight; sniff rather than assume.
	cont := store.ContainerOf(data)
	if cont == store.ContainerV3 && acceptsV3(r) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		_, _ = w.Write(data)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if cont == store.ContainerV1 {
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		_, _ = w.Write(data)
		return
	}
	if acceptsGzip(r) {
		// v2 disk bytes pass through verbatim; v3 is re-rendered into the
		// deterministic gzip view, byte-equal to what a v2 store would
		// have served for the same blob.
		w.Header().Set("Content-Encoding", "gzip")
		if cont == store.ContainerV2 {
			w.Header().Set("Content-Length", strconv.Itoa(len(data)))
			_, _ = w.Write(data)
			return
		}
		_ = store.WriteCanonicalCompressed(w, data)
		return
	}
	// Identity-only client: render the canonical JSON through the store
	// codec's pooled machinery. (GetRaw already validated the blob; this
	// second pass is the rare path's price for the common path's
	// passthrough.) A mid-body error is unrecoverable over HTTP — the
	// status line is gone — and the client's validation treats the
	// truncated body as a miss.
	_ = store.WriteCanonical(w, data)
}

// acceptsV3 reports whether the client declared it understands the v3
// binary container (X-Blob-Accept: v3). Deliberately a bespoke header
// rather than an Accept-Encoding coding: v3 is a different entity
// serialisation, not a transfer coding, and proxies must not try to
// decode it.
func acceptsV3(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("X-Blob-Accept"), ",") {
		if strings.TrimSpace(part) == "v3" {
			return true
		}
	}
	return false
}

// handleBlobPut validates and stores a blob — any container — through
// the store's proof-carrying path (PutRaw = ValidateBlobBytes +
// PutValidated): the body is parsed exactly once, v3 bytes land on
// disk verbatim, legacy bytes are re-containered from that one parse.
// Invalid bytes — garbage, wrong schema, digest mismatch — are the
// client's fault (400); anything else is the store's (500). PUT is
// idempotent: same digest ⇒ same bytes, so a retried or concurrent
// duplicate write converges.
func (s *Server) handleBlobPut(w http.ResponseWriter, r *http.Request) {
	digest := s.digest(w, r)
	if digest == "" {
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBlobBytes))
	if err != nil {
		http.Error(w, "storenet: read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.st.PutRaw(digest, data); err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, store.ErrInvalidBlob) {
			code = http.StatusBadRequest
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleLeasePeek(w http.ResponseWriter, r *http.Request) {
	digest := s.digest(w, r)
	if digest == "" {
		return
	}
	owner, held := s.st.LeaseHolder(digest)
	writeJSON(w, http.StatusOK, holderResponse{Held: held, Owner: owner})
}

// handleLeaseAcquire is the compare-and-swap claim: exactly one caller
// per digest wins (the store's O_EXCL file arbitrates, across local
// processes and remote clients alike). Busy returns 409 with the live
// holder so schedulers can plan around it.
func (s *Server) handleLeaseAcquire(w http.ResponseWriter, r *http.Request) {
	digest := s.digest(w, r)
	if digest == "" {
		return
	}
	var req acquireRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Owner == "" || req.TTLNs <= 0 {
		http.Error(w, "storenet: acquire needs a non-empty owner and a positive ttl_ns",
			http.StatusBadRequest)
		return
	}
	lease, ok, err := s.st.TryAcquire(digest, req.Owner, time.Duration(req.TTLNs))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !ok {
		s.leaseBusy.Add(1)
		holder, _ := s.st.LeaseHolder(digest)
		writeJSON(w, http.StatusConflict, busyResponse{Holder: holder})
		return
	}
	s.leaseAcquired.Add(1)
	if lease.Stolen() {
		s.leaseStolen.Add(1)
	}
	writeJSON(w, http.StatusOK, acquireResponse{Token: lease.Token(), Stolen: lease.Stolen()})
}

// handleLeaseRenew reattaches the acquisition by its token and extends
// it. Any failure is 409: whatever the proximate cause, the holder must
// assume the lease lost — the safe direction, since a "lost" lease
// costs at most one duplicated (identical) computation.
func (s *Server) handleLeaseRenew(w http.ResponseWriter, r *http.Request) {
	digest := s.digest(w, r)
	if digest == "" {
		return
	}
	var req renewRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Token == "" || req.TTLNs <= 0 {
		http.Error(w, "storenet: renew needs a token and a positive ttl_ns", http.StatusBadRequest)
		return
	}
	if err := s.st.AttachLease(digest, req.Owner, req.Token).Renew(time.Duration(req.TTLNs)); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	s.leaseRenewed.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// handleLeaseRelease drops a claim; like the local Release it is
// best-effort and idempotent, and a stealer's live lease is never
// touched (the token no longer matches).
func (s *Server) handleLeaseRelease(w http.ResponseWriter, r *http.Request) {
	digest := s.digest(w, r)
	if digest == "" {
		return
	}
	var req releaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Token == "" {
		http.Error(w, "storenet: release needs a token", http.StatusBadRequest)
		return
	}
	if err := s.st.AttachLease(digest, req.Owner, req.Token).Release(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.leaseReleased.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, indexResponse{
		API:     APIVersion,
		Schema:  store.SchemaVersion,
		Entries: s.st.Index(),
	})
}

// Stats assembles the daemon-health snapshot /v1/stats serves; cmd/
// stored's periodic log line formats the same snapshot, so the two
// views cannot drift.
func (s *Server) Stats() Stats {
	ix := s.st.Index()
	bytes, raw := store.IndexedBytes(ix), store.IndexedRawBytes(ix)
	resp := Stats{
		API:          APIVersion,
		Schema:       store.SchemaVersion,
		Blobs:        len(ix),
		Bytes:        bytes,
		RawBytes:     raw,
		Counters:     s.st.Counters(),
		Leases:       s.LeaseStats(),
		LatencyP50Ns: s.LatencyQuantileNs(0.50),
		LatencyP99Ns: s.LatencyQuantileNs(0.99),
	}
	if bytes > 0 && raw > 0 {
		resp.CompressionRatio = float64(raw) / float64(bytes)
	}
	return resp
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleGC(w http.ResponseWriter, r *http.Request) {
	var req gcRequest
	if !readJSON(w, r, &req) {
		return
	}
	stats, err := s.st.GC(store.GCPolicy{
		MaxBytes: req.MaxBytes,
		MaxAge:   time.Duration(req.MaxAgeNs),
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

// handleHealthz is liveness: the process is up and serving HTTP.
// Deliberately trivial — liveness failing triggers restarts, and a
// daemon that can answer at all should never be restarted for a
// transient store problem readiness already reports.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ok\n")
}

// handleReadyz is readiness: can this daemon usefully take traffic
// right now? No while draining (shutdown imminent — route new requests
// to a peer) and no when the store directory stopped accepting writes
// (a read-only remount or deleted directory makes every Put fail; the
// fleet is better served degrading to local tiers than timing out
// here).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if err := s.st.Ready(); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ready\n")
}

// handleUnknown catches everything outside the versioned prefix, so a
// client built against a future API fails with a message naming the
// version this daemon speaks instead of a bare 404.
func (s *Server) handleUnknown(w http.ResponseWriter, r *http.Request) {
	http.Error(w, fmt.Sprintf("storenet: unknown path %q; this daemon speaks API v%d (%s/...)",
		r.URL.Path, APIVersion, apiPrefix), http.StatusNotFound)
}

// readJSON decodes a bounded control-plane body; a false return means
// the 400 has been written.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxControlBytes))
	if err == nil && len(data) > 0 {
		err = json.Unmarshal(data, v)
	}
	if err != nil {
		http.Error(w, "storenet: bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
