package storenet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"golatest/internal/core"
	"golatest/internal/store"
)

// testKey derives a real content address so digest validation on both
// ends is exercised with production-shaped digests.
func testKey(t *testing.T, instance int) store.Key {
	t.Helper()
	k, err := store.KeyFor("a100", instance, 42, core.Config{
		Frequencies: []float64{705, 1410},
		Seed:        uint64(1000 + instance),
	})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func testResult(instance int) *core.Result {
	return &core.Result{
		DeviceName:   fmt.Sprintf("a100[%d]", instance),
		Architecture: "Ampere",
	}
}

// newDaemon returns a server over a fresh store directory plus the
// httptest front for it.
func newDaemon(t *testing.T) (*store.Store, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(st))
	t.Cleanup(srv.Close)
	return st, srv
}

func TestServerBlobRoundTrip(t *testing.T) {
	st, srv := newDaemon(t)
	k := testKey(t, 0)
	blob, err := store.EncodeBlob(k, testResult(0))
	if err != nil {
		t.Fatal(err)
	}
	blobURL := srv.URL + "/v1/blobs/" + k.Digest

	// Cold: GET and HEAD both miss.
	resp, err := http.Get(blobURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold GET: %s", resp.Status)
	}

	// PUT stores the blob; the daemon's own store sees it.
	req, _ := http.NewRequest(http.MethodPut, blobURL, bytes.NewReader(blob))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT: %s", resp.Status)
	}
	if !st.Has(k) {
		t.Fatal("daemon store missing the blob after PUT")
	}

	// Warm GET returns the identical bytes with the digest as ETag.
	resp, err = http.Get(blobURL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("warm GET: %s err=%v", resp.Status, err)
	}
	if !bytes.Equal(body, blob) {
		t.Fatal("served blob differs from the stored bytes")
	}
	if got := resp.Header.Get("ETag"); got != `"`+k.Digest+`"` {
		t.Fatalf("ETag = %q, want the quoted digest", got)
	}

	// If-None-Match with the digest short-circuits to 304: blobs are
	// immutable per digest.
	req, _ = http.NewRequest(http.MethodGet, blobURL, nil)
	req.Header.Set("If-None-Match", `"`+k.Digest+`"`)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET: %s, want 304", resp.Status)
	}

	// HEAD confirms existence without a body.
	resp, err = http.Head(blobURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD: %s", resp.Status)
	}
}

// TestServerPutRejectsInvalidBlobs: the daemon validates before
// storing, so no client can plant bytes a Get would reject.
func TestServerPutRejectsInvalidBlobs(t *testing.T) {
	st, srv := newDaemon(t)
	k := testKey(t, 0)
	good, err := store.EncodeBlob(k, testResult(0))
	if err != nil {
		t.Fatal(err)
	}
	otherKey := testKey(t, 1)

	cases := map[string]struct {
		digest string
		body   []byte
	}{
		"garbage":         {k.Digest, []byte("not json")},
		"digest mismatch": {otherKey.Digest, good}, // valid blob, wrong address
		"truncated":       {k.Digest, good[:len(good)/2]},
	}
	for name, tc := range cases {
		req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/blobs/"+tc.digest,
			bytes.NewReader(tc.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %s, want 400", name, resp.Status)
		}
	}
	if st.Len() != 0 {
		t.Fatalf("invalid PUTs left %d indexed blobs", st.Len())
	}
}

func TestServerRejectsBadDigests(t *testing.T) {
	_, srv := newDaemon(t)
	for _, path := range []string{
		"/v1/blobs/" + strings.Repeat("a", 200), // too long
		"/v1/blobs/.hidden",                     // leading dot = staging namespace
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %s, want 400", path, resp.Status)
		}
	}
}

func TestServerUnknownPathNamesVersion(t *testing.T) {
	_, srv := newDaemon(t)
	resp, err := http.Get(srv.URL + "/v9/blobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(body), "API v1") {
		t.Fatalf("future-version probe: %s %q, want 404 naming API v1", resp.Status, body)
	}
}

// TestServerLeaseCAS drives the compare-and-swap lease protocol over
// the wire: exclusive acquire, busy report with holder, token-guarded
// renew/release, expiry steal.
func TestServerLeaseCAS(t *testing.T) {
	_, srv := newDaemon(t)
	digest := testKey(t, 0).Digest
	post := func(op string, body any) (*http.Response, []byte) {
		t.Helper()
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+"/v1/leases/"+digest+"/"+op, "application/json",
			bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, out
	}

	resp, body := post("acquire", acquireRequest{Owner: "host-a", TTLNs: int64(time.Minute)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("acquire: %s %s", resp.Status, body)
	}
	var granted acquireResponse
	if err := json.Unmarshal(body, &granted); err != nil || granted.Token == "" || granted.Stolen {
		t.Fatalf("grant = %s err=%v", body, err)
	}

	// Contended acquire: 409 naming the live holder.
	resp, body = post("acquire", acquireRequest{Owner: "host-b", TTLNs: int64(time.Minute)})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("contended acquire: %s", resp.Status)
	}
	var busy busyResponse
	if err := json.Unmarshal(body, &busy); err != nil || busy.Holder != "host-a" {
		t.Fatalf("busy = %s err=%v", body, err)
	}

	// The peek agrees.
	resp, err := http.Get(srv.URL + "/v1/leases/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	var peek holderResponse
	err = json.NewDecoder(resp.Body).Decode(&peek)
	resp.Body.Close()
	if err != nil || !peek.Held || peek.Owner != "host-a" {
		t.Fatalf("peek = %+v err=%v", peek, err)
	}

	// A renew with a fabricated token must not displace the holder.
	resp, _ = post("renew", renewRequest{Owner: "host-b", Token: "forged", TTLNs: int64(time.Minute)})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("forged renew: %s, want 409", resp.Status)
	}
	// The real token renews and releases.
	resp, body = post("renew", renewRequest{Owner: "host-a", Token: granted.Token, TTLNs: int64(time.Minute)})
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("renew: %s %s", resp.Status, body)
	}
	resp, _ = post("release", releaseRequest{Owner: "host-a", Token: granted.Token})
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("release: %s", resp.Status)
	}

	// Expiry steal: a dead holder's claim is taken over, flagged stolen.
	if resp, _ = post("acquire", acquireRequest{Owner: "dead", TTLNs: int64(2 * time.Millisecond)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("dead acquire: %s", resp.Status)
	}
	time.Sleep(10 * time.Millisecond)
	resp, body = post("acquire", acquireRequest{Owner: "alive", TTLNs: int64(time.Minute)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("steal: %s", resp.Status)
	}
	if err := json.Unmarshal(body, &granted); err != nil || !granted.Stolen {
		t.Fatalf("steal not flagged: %s err=%v", body, err)
	}
}

// TestServerLeaseReattachIsStateless: a renew served by a *different*
// server instance over the same directory (a restarted daemon) works,
// because the token is verified against the on-disk lease, not an
// in-memory table.
func TestServerLeaseReattachIsStateless(t *testing.T) {
	st, srv := newDaemon(t)
	digest := testKey(t, 0).Digest
	data, _ := json.Marshal(acquireRequest{Owner: "host-a", TTLNs: int64(time.Minute)})
	resp, err := http.Post(srv.URL+"/v1/leases/"+digest+"/acquire", "application/json",
		bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var granted acquireResponse
	err = json.NewDecoder(resp.Body).Decode(&granted)
	resp.Body.Close()
	if err != nil || granted.Token == "" {
		t.Fatalf("grant: %+v err=%v", granted, err)
	}

	// "Restart": a fresh store handle and server over the same dir.
	st2, err := store.Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(NewServer(st2))
	defer srv2.Close()
	data, _ = json.Marshal(renewRequest{Owner: "host-a", Token: granted.Token, TTLNs: int64(time.Minute)})
	resp, err = http.Post(srv2.URL+"/v1/leases/"+digest+"/renew", "application/json",
		bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("renew through restarted daemon: %s", resp.Status)
	}
}

func TestServerIndexStatsGC(t *testing.T) {
	st, srv := newDaemon(t)
	for i := 0; i < 3; i++ {
		if err := st.Put(testKey(t, i), testResult(i)); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(srv.URL + "/v1/index")
	if err != nil {
		t.Fatal(err)
	}
	var ix indexResponse
	err = json.NewDecoder(resp.Body).Decode(&ix)
	resp.Body.Close()
	if err != nil || ix.API != APIVersion || ix.Schema != store.SchemaVersion || len(ix.Entries) != 3 {
		t.Fatalf("index = %+v err=%v", ix, err)
	}

	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil || stats.Blobs != 3 || stats.Bytes <= 0 || stats.Counters.Puts != 3 {
		t.Fatalf("stats = %+v err=%v", stats, err)
	}

	// A size-bounded GC pass over the wire evicts everything.
	data, _ := json.Marshal(gcRequest{MaxBytes: 1})
	resp, err = http.Post(srv.URL+"/v1/gc", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var gs store.GCStats
	err = json.NewDecoder(resp.Body).Decode(&gs)
	resp.Body.Close()
	if err != nil || gs.Evicted != 3 || gs.Scanned != 3 {
		t.Fatalf("gc = %+v err=%v", gs, err)
	}
	if st.Len() != 0 {
		t.Fatalf("store still holds %d blobs after remote GC", st.Len())
	}
}

// TestServerReservedNameCannotTouchIndex is the regression for the
// digest/index collision: "manifest" matches the digest grammar but
// resolves to the store's own snapshot file. A GET must not trip the
// corrupt-blob healing path (which would delete manifest.json), and a
// PUT with a crafted envelope must not overwrite it.
func TestServerReservedNameCannotTouchIndex(t *testing.T) {
	st, srv := newDaemon(t)
	if err := st.Put(testKey(t, 0), testResult(0)); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(); err != nil { // materialise manifest.json
		t.Fatal(err)
	}
	manifestPath := filepath.Join(st.Dir(), "manifest.json")
	before, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/blobs/manifest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET manifest: %s, want 404", resp.Status)
	}

	// HEAD must agree with GET: the snapshot file's existence is not a
	// blob's existence.
	resp, err = http.Head(srv.URL + "/v1/blobs/manifest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("HEAD manifest: %s, want 404", resp.Status)
	}

	crafted := []byte(`{"schema":1,"digest":"manifest","profile":"x","instance":0,` +
		`"result":{"device_name":"","architecture":"","capture_hint_ns":0,"pairs":null}}`)
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/blobs/manifest", bytes.NewReader(crafted))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT manifest: %s, want 400", resp.Status)
	}

	after, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatalf("manifest.json gone after reserved-name probes: %v", err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("manifest.json changed by reserved-name probes")
	}
	if st.Len() != 1 {
		t.Fatalf("index lost entries: Len = %d, want 1", st.Len())
	}
}

// TestServerConditionalGetVouchesExistence: a 304 is only ever served
// for a blob the store still holds — If-None-Match on an evicted or
// never-stored digest is a plain 404.
func TestServerConditionalGetVouchesExistence(t *testing.T) {
	_, srv := newDaemon(t)
	k := testKey(t, 0)
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/blobs/"+k.Digest, nil)
	req.Header.Set("If-None-Match", `"`+k.Digest+`"`)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("conditional GET of a missing blob: %s, want 404", resp.Status)
	}
}

// TestServerContentNegotiation pins the wire table: a v3-declaring
// client gets the daemon's disk bytes verbatim as octet-stream (the
// near-zero-copy passthrough), a gzip-accepting legacy client gets the
// deterministic compressed canonical view under Content-Encoding: gzip
// (byte-equal to EncodeBlobCompressed), an identity-only client gets
// the canonical JSON rendered on the fly, and a stock Go client (whose
// transport negotiates and inflates transparently) sees the canonical
// JSON too — four views of one immutable entity under one ETag.
func TestServerContentNegotiation(t *testing.T) {
	st, srv := newDaemon(t)
	k := testKey(t, 0)
	if err := st.Put(k, testResult(0)); err != nil {
		t.Fatal(err)
	}
	disk, err := os.ReadFile(filepath.Join(st.Dir(), k.Digest+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if store.ContainerOf(disk) != store.ContainerV3 {
		t.Fatal("Put did not land the v3 container; the fixture is wrong")
	}
	canonical, err := store.EncodeBlob(k, testResult(0))
	if err != nil {
		t.Fatal(err)
	}
	compressed, err := store.EncodeBlobCompressed(k, testResult(0))
	if err != nil {
		t.Fatal(err)
	}
	blobURL := srv.URL + "/v1/blobs/" + k.Digest

	// Raw client declaring the binary container: passthrough of the disk
	// bytes, no transfer coding.
	raw := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	req, _ := http.NewRequest(http.MethodGet, blobURL, nil)
	req.Header.Set("Accept-Encoding", "gzip")
	req.Header.Set("X-Blob-Accept", "v3")
	resp, err := raw.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("v3 GET: %s err=%v", resp.Status, err)
	}
	if resp.Header.Get("Content-Encoding") != "" {
		t.Fatalf("v3 response carries Content-Encoding %q", resp.Header.Get("Content-Encoding"))
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("v3 Content-Type = %q", ct)
	}
	if !bytes.Equal(body, disk) {
		t.Fatal("v3 body is not the disk container verbatim")
	}
	if _, err := store.ValidateBlob(body, k.Digest); err != nil {
		t.Fatalf("passthrough body does not validate: %v", err)
	}

	// Legacy gzip client (no v3 declaration): the deterministic
	// compressed canonical view — what a v2-era daemon would have
	// served — under Content-Encoding: gzip.
	req, _ = http.NewRequest(http.MethodGet, blobURL, nil)
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err = raw.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("gzip GET: %s err=%v", resp.Status, err)
	}
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", resp.Header.Get("Content-Encoding"))
	}
	if !bytes.Equal(body, compressed) {
		t.Fatal("gzip body is not the deterministic compressed canonical view")
	}
	if _, err := store.ValidateBlob(body, k.Digest); err != nil {
		t.Fatalf("gzip body does not validate: %v", err)
	}

	// Identity-only client: inflated canonical JSON, no coding header.
	req, _ = http.NewRequest(http.MethodGet, blobURL, nil)
	req.Header.Set("Accept-Encoding", "identity")
	resp, err = raw.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("identity GET: %s err=%v", resp.Status, err)
	}
	if resp.Header.Get("Content-Encoding") != "" {
		t.Fatalf("identity response carries Content-Encoding %q", resp.Header.Get("Content-Encoding"))
	}
	if !bytes.Equal(body, canonical) {
		t.Fatal("identity body is not the canonical JSON")
	}

	// Stock Go client: the transport's transparent gzip round trip
	// lands on the same canonical bytes — pre-codec clients interop.
	resp, err = http.Get(blobURL)
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || !bytes.Equal(body, canonical) {
		t.Fatalf("transparent GET diverged: err=%v", err)
	}

	// Both codings share the digest ETag.
	req, _ = http.NewRequest(http.MethodGet, blobURL, nil)
	req.Header.Set("Accept-Encoding", "identity")
	req.Header.Set("If-None-Match", `"`+k.Digest+`"`)
	resp, err = raw.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional identity GET: %s, want 304", resp.Status)
	}
}

// TestServerStatsCompressionAndLeases: /v1/stats reports raw vs
// compressed bytes (the live compression ratio) and the daemon's lease
// churn.
func TestServerStatsCompressionAndLeases(t *testing.T) {
	st, srv := newDaemon(t)
	if err := st.Put(testKey(t, 0), testResult(0)); err != nil {
		t.Fatal(err)
	}
	digest := testKey(t, 1).Digest
	post := func(op string, body any) {
		t.Helper()
		data, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+"/v1/leases/"+digest+"/"+op, "application/json",
			bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	post("acquire", acquireRequest{Owner: "host-a", TTLNs: int64(time.Minute)})
	post("acquire", acquireRequest{Owner: "host-b", TTLNs: int64(time.Minute)}) // busy

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.RawBytes <= stats.Bytes || stats.CompressionRatio <= 1 {
		t.Fatalf("compression accounting: %+v", stats)
	}
	if stats.Leases.Acquired != 1 || stats.Leases.Busy != 1 {
		t.Fatalf("lease churn: %+v", stats.Leases)
	}
}
