package storenet

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"golatest/internal/store"
)

func TestParseTokens(t *testing.T) {
	ts, err := ParseTokens(strings.NewReader(`
# fleet tokens
reader-1   read
writer-1   read,write rps=50 burst=100
admin-1    admin bps=1048576 bburst=2097152
`))
	if err != nil {
		t.Fatal(err)
	}
	if ts.Len() != 3 {
		t.Fatalf("parsed %d tokens, want 3", ts.Len())
	}
	// Scope implications: write ⊃ read, admin ⊃ write ⊃ read.
	if e := ts.tokens["writer-1"]; e.scope&ScopeRead == 0 || e.scope&ScopeWrite == 0 || e.scope&ScopeAdmin != 0 {
		t.Fatalf("writer-1 scope = %b", e.scope)
	}
	if e := ts.tokens["admin-1"]; e.scope != expandScope(ScopeAdmin) {
		t.Fatalf("admin-1 scope = %b", e.scope)
	}
	if ts.tokens["writer-1"].reqs == nil || ts.tokens["reader-1"].reqs != nil {
		t.Fatal("rate buckets mis-assigned")
	}

	for _, bad := range []string{
		"tok",                        // missing scope column
		"tok superuser",              // unknown scope
		"tok read rps=fast",          // non-numeric setting
		"tok read rps=-1",            // negative setting
		"tok read ttl=5",             // unknown setting
		"tok read\ntok write",        // duplicate token
		"# only comments, no tokens", // empty set locks everyone out
	} {
		if _, err := ParseTokens(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseTokens(%q) accepted", bad)
		}
	}
}

// TestParseTokensValidityWindows: the nbf=/expires= grammar populates
// the credential's window, malformed timestamps are rejected at parse
// (not discovered at request time), and a window that can never admit
// anyone is a file error.
func TestParseTokensValidityWindows(t *testing.T) {
	ts, err := ParseTokens(strings.NewReader(`
current  admin nbf=2026-01-01T00:00:00Z expires=2027-01-01T00:00:00Z
forever  read
successor write nbf=2026-09-01T00:00:00Z
retiring write expires=2026-09-01T01:00:00Z
`))
	if err != nil {
		t.Fatal(err)
	}
	if e := ts.tokens["current"]; e.nbf.IsZero() || e.exp.IsZero() || !e.nbf.Before(e.exp) {
		t.Fatalf("current window = [%v, %v)", e.nbf, e.exp)
	}
	if e := ts.tokens["forever"]; !e.nbf.IsZero() || !e.exp.IsZero() {
		t.Fatalf("unbounded token grew a window: [%v, %v)", e.nbf, e.exp)
	}
	if e := ts.tokens["successor"]; e.nbf.IsZero() || !e.exp.IsZero() {
		t.Fatalf("successor window = [%v, %v)", e.nbf, e.exp)
	}

	for _, bad := range []string{
		"tok read expires=tomorrow",                                      // not a timestamp
		"tok read nbf=2026-99-01T00:00:00Z",                              // impossible month
		"tok read expires=2026-09-01",                                    // date without time (not RFC 3339)
		"tok read nbf=2026-09-01T00:00:00Z expires=2026-09-01T00:00:00Z", // empty window
		"tok read nbf=2027-01-01T00:00:00Z expires=2026-01-01T00:00:00Z", // inverted window
	} {
		if _, err := ParseTokens(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseTokens(%q) accepted", bad)
		}
	}
}

// TestTokenValidityWindow401: a token outside its window is rejected
// exactly like an unknown one — 401 with an invalid_token challenge —
// while a token inside a bounded window works normally. Windows use
// far-past/far-future instants so the test never races the clock.
func TestTokenValidityWindow401(t *testing.T) {
	past := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	future := time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC)
	ts := NewTokenSet().
		Grant("live", ScopeAdmin, TokenLimits{NotBefore: past, Expires: future}).
		Grant("expired", ScopeAdmin, TokenLimits{Expires: past}).
		Grant("premature", ScopeAdmin, TokenLimits{NotBefore: future})
	_, hs, _ := authedServer(t, ts)

	get := func(token string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, hs.URL+"/v1/stats", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	if resp := get("live"); resp.StatusCode != http.StatusOK {
		t.Fatalf("in-window token = %d, want 200", resp.StatusCode)
	}
	for _, token := range []string{"expired", "premature"} {
		resp := get(token)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("%s token = %d, want 401", token, resp.StatusCode)
		}
		if ch := resp.Header.Get("WWW-Authenticate"); !strings.Contains(ch, `error="invalid_token"`) {
			t.Fatalf("%s token challenge = %q, want invalid_token", token, ch)
		}
	}
}

// authedServer mounts a store on an authed loopback server and returns
// it with a request counter, so tests can assert exactly how many
// requests a client actually sent (no-retry-storm proofs).
func authedServer(t *testing.T, ts *TokenSet) (*store.Store, *httptest.Server, *atomic.Int64) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith(st, ServerOptions{Auth: ts})
	var reqs atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqs.Add(1)
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(hs.Close)
	return st, hs, &reqs
}

// TestAuthScopeEnforcement walks the 401/403 matrix: no token, unknown
// token, and a read-scoped token attempting writes and admin ops.
func TestAuthScopeEnforcement(t *testing.T) {
	ts := NewTokenSet().
		Grant("r-token", ScopeRead, TokenLimits{}).
		Grant("w-token", ScopeWrite, TokenLimits{}).
		Grant("a-token", ScopeAdmin, TokenLimits{})
	_, hs, _ := authedServer(t, ts)

	status := func(method, path, token string) int {
		req, err := http.NewRequest(method, hs.URL+path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	cases := []struct {
		method, path, token string
		want                int
	}{
		{"GET", "/v1/stats", "", http.StatusUnauthorized},
		{"GET", "/v1/stats", "no-such-token", http.StatusUnauthorized},
		{"GET", "/v1/stats", "r-token", http.StatusOK},
		{"GET", "/v1/index", "r-token", http.StatusOK},
		{"PUT", "/v1/blobs/deadbeef", "r-token", http.StatusForbidden},
		{"POST", "/v1/leases/deadbeef/acquire", "r-token", http.StatusForbidden},
		{"POST", "/v1/gc", "r-token", http.StatusForbidden},
		{"POST", "/v1/gc", "w-token", http.StatusForbidden}, // gc is admin-only
		{"POST", "/v1/gc", "a-token", http.StatusOK},
		// Probes and the scrape endpoint never need a token.
		{"GET", "/healthz", "", http.StatusOK},
		{"GET", "/readyz", "", http.StatusOK},
		{"GET", "/metrics", "", http.StatusOK},
	}
	for _, c := range cases {
		if got := status(c.method, c.path, c.token); got != c.want {
			t.Errorf("%s %s token=%q = %d, want %d", c.method, c.path, c.token, got, c.want)
		}
	}
}

// TestRateLimit429: a token over its request budget gets 429 with a
// positive integral Retry-After, and an untouched token is unaffected
// (limits are per tenant, not global).
func TestRateLimit429(t *testing.T) {
	ts := NewTokenSet().
		Grant("throttled", ScopeRead, TokenLimits{RPS: 0.01, Burst: 2}).
		Grant("free", ScopeRead, TokenLimits{})
	_, hs, _ := authedServer(t, ts)

	get := func(token string) *http.Response {
		req, _ := http.NewRequest("GET", hs.URL+"/v1/stats", nil)
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	if r := get("throttled"); r.StatusCode != http.StatusOK {
		t.Fatalf("first request = %d", r.StatusCode)
	}
	if r := get("throttled"); r.StatusCode != http.StatusOK {
		t.Fatalf("second request (burst) = %d", r.StatusCode)
	}
	r := get("throttled")
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget request = %d, want 429", r.StatusCode)
	}
	secs, err := strconv.Atoi(r.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integral seconds ≥ 1", r.Header.Get("Retry-After"))
	}
	// Another tenant's bucket is untouched.
	if r := get("free"); r.StatusCode != http.StatusOK {
		t.Fatalf("unthrottled tenant = %d", r.StatusCode)
	}
}

// TestByteQuota429: upload quota charges PUT Content-Length before the
// body is read; an over-quota upload gets 429, a small one passes.
func TestByteQuota429(t *testing.T) {
	k := testKey(t, 0)
	blob, err := store.EncodeBlobV3(k, testResult(0))
	if err != nil {
		t.Fatal(err)
	}
	// Burst admits exactly one blob; the trickle refill cannot fund a
	// second within the test's lifetime.
	ts := NewTokenSet().Grant("quota", ScopeWrite,
		TokenLimits{BytesPerSec: 1, ByteBurst: float64(len(blob)) + 8})
	st, hs, _ := authedServer(t, ts)

	c, err := NewClient(hs.URL, ClientOptions{Token: "quota", Retries: 1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(k, testResult(0)); err != nil {
		t.Fatalf("first put: %v", err)
	}
	// ...and drains the bucket: the second distinct blob is refused.
	k2 := testKey(t, 1)
	err = c.Put(k2, testResult(1))
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-quota put: %v, want ErrRateLimited", err)
	}
	if st.Len() != 1 {
		t.Fatalf("store has %d blobs, want 1", st.Len())
	}
}

// TestClientAuthTerminal: 401/403 are terminal for the client — one
// request, no retries, typed ErrAuth, and a tiered client never defers
// the refused Put to the pending journal.
func TestClientAuthTerminal(t *testing.T) {
	ts := NewTokenSet().Grant("r-token", ScopeRead, TokenLimits{})
	_, hs, reqs := authedServer(t, ts)
	cache, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(hs.URL, ClientOptions{
		Cache:        cache,
		Token:        "r-token", // read-only: every Put is a 403
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	k := testKey(t, 0)
	before := reqs.Load()
	err = c.Put(k, testResult(0))
	if !errors.Is(err, ErrAuth) {
		t.Fatalf("put with read-only token: %v, want ErrAuth", err)
	}
	if got := reqs.Load() - before; got != 1 {
		t.Fatalf("refused put sent %d requests, want exactly 1 (no retry storm)", got)
	}
	// Never journaled: a 4xx is a deterministic refusal, and replaying
	// it at reconcile time would fail identically — or worse, dodge a
	// fixed token file's new quotas.
	if rs := c.Resilience(); rs.Deferred != 0 || rs.Pending != 0 {
		t.Fatalf("auth-refused put was journaled: %+v", rs)
	}
	// TryAcquire surfaces the same typed error.
	if _, _, err := c.TryAcquire(k.Digest, "owner", time.Minute); !errors.Is(err, ErrAuth) {
		t.Fatalf("acquire with read-only token: %v, want ErrAuth", err)
	}

	// A wrong token altogether: reads degrade to a miss (one request,
	// no retries), the Backend read contract.
	bad, err := NewClient(hs.URL, ClientOptions{Token: "wrong", RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	before = reqs.Load()
	if _, ok := bad.Get(k); ok {
		t.Fatal("Get with a bad token returned a result")
	}
	if got := reqs.Load() - before; got != 1 {
		t.Fatalf("401 Get sent %d requests, want exactly 1", got)
	}
}

// TestClient429HonorsRetryAfterWithoutBreakerTrip: the client sleeps
// the server's Retry-After between attempts, returns ErrRateLimited on
// budget exhaustion, and the breaker never opens — a throttling daemon
// is healthy, and 429s must not become a fake outage.
func TestClient429HonorsRetryAfterWithoutBreakerTrip(t *testing.T) {
	var reqs atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqs.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "throttled", http.StatusTooManyRequests)
	}))
	defer hs.Close()

	c, err := NewClient(hs.URL, ClientOptions{
		Retries:          2,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 1, // a single strike would open it — prove 429 is no strike
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Stats()
	elapsed := time.Since(start)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("stats against an always-429 daemon: %v, want ErrRateLimited", err)
	}
	if errors.Is(err, ErrUnavailable) {
		t.Fatal("429 opened the circuit breaker")
	}
	if reqs.Load() != 2 {
		t.Fatalf("sent %d requests, want the full budget of 2", reqs.Load())
	}
	if elapsed < time.Second {
		t.Fatalf("retried after %v, want ≥ 1s (the server's Retry-After)", elapsed)
	}
	// The breaker stayed closed: the next call still reaches the wire
	// instead of fast-failing with ErrUnavailable.
	before := reqs.Load()
	if _, err := c.Stats(); errors.Is(err, ErrUnavailable) {
		t.Fatal("breaker open after 429s")
	}
	if reqs.Load() == before {
		t.Fatal("follow-up request never reached the daemon")
	}
}

// TestAuthedProbesWhileDrainingAndThrottled is the satellite bugfix
// regression at the handler level: a daemon that is draining AND has
// rate-limited its tenants still answers /healthz, /readyz, and
// /metrics without a token — probes and scrapers must never be
// collateral of tenant quotas or shutdown.
func TestAuthedProbesWhileDrainingAndThrottled(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTokenSet().Grant("tight", ScopeRead, TokenLimits{RPS: 0.01, Burst: 1})
	srv := NewServerWith(st, ServerOptions{Auth: ts})
	hs := httptest.NewServer(srv)
	defer hs.Close()

	// Exhaust the only tenant's budget...
	for i := 0; i < 2; i++ {
		req, _ := http.NewRequest("GET", hs.URL+"/v1/stats", nil)
		req.Header.Set("Authorization", "Bearer tight")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if i == 1 && resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("tenant not throttled: %d", resp.StatusCode)
		}
	}
	// ...and start draining.
	srv.SetDraining(true)

	probe := func(path string) (int, string) {
		resp, err := http.Get(hs.URL + path) // deliberately token-free
		if err != nil {
			t.Fatalf("probe %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	if code, _ := probe("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while draining+throttled = %d, want 200", code)
	}
	// Draining readiness is 503 — an orchestration answer, not a 401:
	// the probe got through auth and rate limits to the real state.
	if code, _ := probe("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", code)
	}
	code, body := probe("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics while draining+throttled = %d, want 200", code)
	}
	// The scrape even reports the 429s it was itself never subject to:
	// rejections are observed with their endpoint label.
	if !strings.Contains(body, `stored_requests_total{endpoint="GET /v1/stats",code="429"}`) {
		t.Fatalf("metrics scrape does not report the 429s:\n%s", body)
	}
	// The API itself still enforces auth while draining.
	if code, _ := probe("/v1/stats"); code != http.StatusUnauthorized {
		t.Fatalf("tokenless API while draining = %d, want 401", code)
	}
}
