package storenet

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"golatest/internal/core"
	"golatest/internal/fleet"
	"golatest/internal/hwprofile"
	"golatest/internal/obs"
	"golatest/internal/store"
	"golatest/internal/storenet/faults"
)

// TestSweepSurvivesStoredOutage is the acceptance contract of the
// resilient store tier, extending the TestCrossHostSweepPartition
// family: a lease-mode sweep whose only shared store is a loopback
// stored daemon has that daemon killed mid-sweep — deterministically,
// from inside the Nth shard's compute — and must (a) complete every
// shard via the local tier with zero lost shards, (b) account for the
// outage in the report's Degraded/Deferred counters, and (c) after the
// daemon returns, reconcile the remote store to blobs byte-identical
// with the local tier's — with (d) every reconciled replay carrying the
// originating sweep's trace ID onto the daemon's flight recorder, even
// though the replay happens after the sweep (and its ambient trace
// context) are gone.
func TestSweepSurvivesStoredOutage(t *testing.T) {
	backing, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(backing)
	inj := faults.NewInjector(server, faults.Plan{})
	srv := httptest.NewServer(inj)
	defer srv.Close()

	cache, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.New(obs.Options{Seed: 11})
	client, err := NewClient(srv.URL, ClientOptions{
		Cache:        cache,
		Retries:      2,
		RetryBackoff: time.Millisecond,
		// A long cooldown keeps the breaker open for the rest of the
		// sweep once it trips — no half-open probe can sneak through and
		// make the outage flaky. Recovery is the explicit Reconcile
		// below, which resets the breaker itself.
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
		Seed:             1,
		Tracer:           tracer,
	})
	if err != nil {
		t.Fatal(err)
	}

	profiles := hostProfiles(6)
	const killAt = 3 // daemon dies inside the 3rd computed shard
	var computes atomic.Int64
	rep, err := fleet.Sweep(profiles, fleet.Options{
		Tracer: tracer,
		// Two replicas over six shards guarantee shards still await
		// their lease claim when the kill fires — on a many-core box an
		// unbounded pool could claim everything up front and never
		// exercise the degraded claim path.
		Replicas: 2,
		Store:    client,
		Config:   hostConfig,
		Run: func(p hwprofile.Profile, cfg core.Config) (*core.Result, error) {
			if computes.Add(1) == killAt {
				inj.Kill()
			}
			return &core.Result{
				DeviceName:   fmt.Sprintf("%s[%d]", p.Key, p.Instance),
				Architecture: p.Config.Architecture,
			}, nil
		},
		LeaseTTL: time.Minute,
		Owner:    "outage-host",
		WaitPoll: 2 * time.Millisecond,
		// Leave StoreErrors at auto: the tiered client advertises
		// CanDegrade, so the policy must resolve to degrade on its own.
	})
	if err != nil {
		t.Fatalf("sweep failed instead of degrading: %v", err)
	}

	// (a) Zero lost shards: every shard has a result.
	for i, sh := range rep.Shards {
		if sh.Result == nil {
			t.Fatalf("shard %d lost in the outage (err=%v)", i, sh.Err)
		}
	}
	if got := int(computes.Load()); got != len(profiles) {
		t.Fatalf("computed %d shards, want %d (store was empty)", got, len(profiles))
	}

	// (b) The outage is visible in the report: shards after the kill
	// either deferred their Puts into the journal or fell back around
	// failed lease claims.
	if rep.Deferred == 0 {
		t.Fatalf("report %+v: no deferred writes despite the mid-sweep kill", rep)
	}
	if rep.Degraded == 0 {
		t.Fatalf("report %+v: no degraded fallbacks despite the mid-sweep kill", rep)
	}
	rs := client.Resilience()
	if rs.Pending == 0 || int(rs.Pending) != rep.Deferred {
		t.Fatalf("Pending = %d, Deferred = %d: journal out of step with the report",
			rs.Pending, rep.Deferred)
	}
	// The local tier holds every shard even though the daemon missed
	// the tail of the sweep.
	if cache.Len() != len(profiles) {
		t.Fatalf("local tier has %d blobs, want %d", cache.Len(), len(profiles))
	}
	if backing.Len() >= len(profiles) {
		t.Fatalf("daemon has %d blobs despite dying mid-sweep", backing.Len())
	}

	// (d, first half) The journal markers carry the sweep's trace
	// identity on disk — the provenance a replay in another process (or
	// after this sweep's ambient context is long cleared) will re-send.
	if rep.TraceID == "" {
		t.Fatal("traced sweep reported no TraceID")
	}
	markers, err := filepath.Glob(filepath.Join(cache.Dir(), "pending", "*.pend"))
	if err != nil || len(markers) != rep.Deferred {
		t.Fatalf("journal markers = %v (err=%v), want %d", markers, err, rep.Deferred)
	}
	for _, m := range markers {
		body, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(body), rep.TraceID) {
			t.Fatalf("marker %s body %q does not carry sweep trace %s", m, body, rep.TraceID)
		}
	}
	putsBefore := tracedPuts(server, rep.TraceID)

	// (c) Daemon restart + reconcile converges the remote store to
	// byte-identical blobs.
	inj.Restore()
	n, err := client.Reconcile()
	if err != nil {
		t.Fatalf("reconcile after restart: %v", err)
	}
	if n != rep.Deferred {
		t.Fatalf("reconciled %d blobs, want the %d deferred ones", n, rep.Deferred)
	}
	if backing.Len() != len(profiles) {
		t.Fatalf("daemon has %d blobs after reconcile, want %d", backing.Len(), len(profiles))
	}
	for _, p := range profiles {
		k, err := store.ProfileKey(p, hostConfig(p))
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join(cache.Dir(), k.Digest+".json"))
		if err != nil {
			t.Fatalf("local blob %s: %v", k, err)
		}
		got, err := os.ReadFile(filepath.Join(backing.Dir(), k.Digest+".json"))
		if err != nil {
			t.Fatalf("daemon blob %s missing after reconcile: %v", k, err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("daemon blob %s differs from the local tier's bytes", k)
		}
	}
	if rs := client.Resilience(); rs.Pending != 0 {
		t.Fatalf("journal still holds %d entries after reconcile", rs.Pending)
	}

	// (d, second half) Every replayed PUT landed on the daemon's flight
	// recorder under the originating sweep's trace ID: the delta of
	// trace-matching PUT records across the reconcile is exactly the
	// replay count.
	if got := tracedPuts(server, rep.TraceID) - putsBefore; got != n {
		t.Fatalf("reconcile left %d trace-correlated PUT records, want %d", got, n)
	}
	// And the client side of the same story: one reconcile.put span per
	// replay, each under the sweep's trace, none sharing a span ID with
	// another (fresh spans, inherited trace).
	replaySpans := 0
	for _, s := range tracer.Snapshot() {
		if s.Name != "storenet.reconcile.put" {
			continue
		}
		replaySpans++
		if s.Context.TraceID.String() != rep.TraceID {
			t.Fatalf("replay span under foreign trace: %+v", s.Context)
		}
	}
	if replaySpans != n {
		t.Fatalf("%d reconcile.put spans, want %d", replaySpans, n)
	}
}

// tracedPuts counts the daemon-side PUT request records carrying the
// given trace ID.
func tracedPuts(s *Server, traceID string) int {
	count := 0
	for _, r := range s.OpsSnapshot() {
		if r.Method == "PUT" && r.TraceID == traceID {
			count++
		}
	}
	return count
}

// TestSweepAbortPolicyStillAborts pins the pre-resilience contract for
// callers that ask for it: with StoreErrors=abort, a mid-sweep daemon
// death fails the sweep instead of degrading.
func TestSweepAbortPolicyStillAborts(t *testing.T) {
	backing, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(NewServer(backing), faults.Plan{})
	srv := httptest.NewServer(inj)
	defer srv.Close()

	cache, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(srv.URL, ClientOptions{
		Cache: cache, Retries: 1, RetryBackoff: time.Millisecond,
		BreakerThreshold: 1, BreakerCooldown: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Kill()
	_, err = fleet.Sweep(hostProfiles(2), fleet.Options{
		Store:  client,
		Config: hostConfig,
		Run: func(p hwprofile.Profile, cfg core.Config) (*core.Result, error) {
			return &core.Result{DeviceName: "x"}, nil
		},
		LeaseTTL:    time.Minute,
		WaitPoll:    time.Millisecond,
		StoreErrors: fleet.StoreErrorsAbort,
	})
	if err == nil {
		t.Fatal("abort policy completed through a dead daemon")
	}
}
