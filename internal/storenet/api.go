// Package storenet puts the campaign store on the network: an HTTP
// daemon (Server, run by cmd/stored) that serves a local
// *store.Store directory, and a Client that speaks to it while
// implementing the same store.Backend contract as the directory it
// fronts — so internal/fleet and internal/experiments coordinate
// cross-host sweeps through exactly the code paths they use for a
// shared filesystem.
//
// # Wire format
//
// The API is versioned by its path prefix (/v1) and deliberately small:
//
//	GET  /v1/blobs/{digest}           → raw blob bytes (ETag: "digest")
//	HEAD /v1/blobs/{digest}           → existence probe (no counters)
//	PUT  /v1/blobs/{digest}           → validate + store blob bytes
//	POST /v1/leases/{digest}/acquire  → {owner, ttl_ns} ⇒ {token, stolen} | 409 {holder}
//	POST /v1/leases/{digest}/renew    → {owner, token, ttl_ns} ⇒ 204 | 409
//	POST /v1/leases/{digest}/release  → {owner, token} ⇒ 204
//	GET  /v1/leases/{digest}          → {held, owner}
//	GET  /v1/index                    → {api, schema, entries}
//	GET  /v1/stats                    → {api, schema, blobs, bytes, raw_bytes, compression_ratio, counters, leases}
//	POST /v1/gc                       → {max_bytes, max_age_ns} ⇒ GCStats
//	GET  /healthz | /readyz           → liveness / readiness probes (token-free)
//	GET  /metrics                     → Prometheus text: store gauges + per-endpoint request/latency histograms (token-free)
//	GET  /debug/ops                   → flight recorder: last N /v1 requests as JSON (admin scope)
//	*    /debug/pprof/...             → runtime profiles: index, cmdline, profile, symbol, trace (admin scope)
//
// # Trace propagation
//
// Every request MAY carry a W3C traceparent header
// ("00-<trace-id>-<parent-id>-01"); clients built with a live
// obs.Tracer send one per operation. The daemon extracts it, annotates
// its request log and the /debug/ops flight recorder with the trace
// identity, and otherwise ignores it — the header is optional,
// malformed values are dropped silently, and no response depends on
// it, so adding propagation needed no /v1 bump. A deferred Put's
// reconcile replay re-sends the traceparent journaled at deferral
// time, so even minutes-late writes attribute to the sweep that
// produced them.
//
// # Auth and quotas
//
// A daemon started with -tokens enforces Authorization: Bearer on every
// /v1 route. Tokens grant hierarchical scopes — read (blob GET/HEAD,
// lease peek, index, stats) ⊂ write (blob PUT, lease CAS ops) ⊂ admin
// (gc) — and optional per-token request-rate and upload-byte quotas.
// Status semantics: 401 missing/unknown token, 403 insufficient scope,
// 429 + Retry-After (delta seconds) when a quota bucket is dry. The
// Client treats 401/403 as terminal (ErrAuth: never retried, never
// journaled) and honors 429's Retry-After between attempts without
// feeding the circuit breaker (ErrRateLimited on budget exhaustion).
// Probes and /metrics bypass auth entirely. Adding auth needed no
// /v1 → /v2 bump: an open daemon's wire behavior is unchanged, and an
// authed daemon only adds the standard challenge statuses.
//
// The blob *entity* is the canonical envelope store.EncodeBlob
// produces; the bytes on the wire are negotiated. The binary v3
// container is not a content coding of that entity, so v3-aware
// clients declare it with X-Blob-Accept: v3 alongside standard
// Accept-Encoding (the server sets Vary on both):
//
//	client declares                disk blob    response body
//	X-Blob-Accept: v3              v3           the disk bytes verbatim, application/octet-stream
//	Accept-Encoding: gzip, no v3   v3           gzip(canonical JSON), Content-Encoding: gzip
//	identity only                  v3           canonical JSON, rendered on the fly
//	any                            legacy v1/v2 per the declaration above (store heals to v3)
//
//	PUT body                        stored as
//	v3 container (sniffed)          verbatim — raw passthrough
//	v2 container / canonical JSON   validated once, re-containered to v3
//
// Both directions sniff the container magic rather than trusting
// headers, so a proxy that strips Content-Encoding cannot corrupt a
// transfer — validation (store.ValidateBlobBytes) accepts any
// container and rejects everything else. Because identity and gzip
// JSON remain fully supported, neither compression nor the v3 codec
// needed a /v1 → /v2 API bump: pre-v3 clients never send X-Blob-Accept
// and receive the gzip-JSON or identity bytes they always did.
//
// A blob's content is a deterministic function of its digest (equal
// key ⇒ equal result ⇒ equal canonical bytes), so blobs are immutable
// per digest and the digest doubles as a strong ETag over the entity —
// the content coding does not enter the ETag, and a body that ever
// validated for a digest never needs re-fetching. Note the digest is
// the content address of the campaign's *inputs* (schema, profile,
// instance, seed, config — see internal/store), not a hash of the blob
// bytes; validation is therefore envelope validation
// (store.ValidateBlob), not a byte-hash comparison.
//
// Every response body is validated by the client before use: a
// truncated transfer, a tampered payload, or a digest/schema mismatch
// is a miss — recompute and heal — never an error and never a wrong
// result, mirroring the local store's corrupt-blob path.
//
// # Leases
//
// Lease endpoints expose the store's compare-and-swap claims. The
// server arbitrates with the same O_CREATE|O_EXCL files local sweeps
// use, so local processes sharing the daemon's directory and remote
// clients interoperate in one fleet. Acquire returns a per-acquisition
// token; renew and release round-trip it and the server verifies it
// against the on-disk lease (store.AttachLease), which keeps the daemon
// stateless — a restarted daemon serves renewals for leases it never
// saw granted. A failed renew means the lease was lost to a stealer:
// the client's claim loop treats it exactly like a local steal.
//
// # Versioning
//
// Bump the path prefix (v1 → v2) when the wire contract changes
// incompatibly: an endpoint's method/status semantics change, a
// request/response field changes meaning, or blob bytes stop being the
// store's canonical encoding. Adding endpoints or optional response
// fields is compatible and needs no bump. store.SchemaVersion is
// independent and travels inside blobs and index/stats responses: a
// schema bump invalidates stored results on every backend at once,
// while the API version only governs how bytes move.
package storenet

import (
	"regexp"

	"golatest/internal/store"
)

// APIVersion is the wire protocol version — the N of the /vN path
// prefix. See the package comment for when to bump it.
const APIVersion = 1

// apiPrefix is the path prefix every endpoint lives under.
const apiPrefix = "/v1"

const (
	// maxBlobBytes bounds a blob transfer; quick-scale blobs are tens of
	// kilobytes and full-scale ones low megabytes, so 256 MiB is a
	// safety rail, not a working limit.
	maxBlobBytes = 256 << 20
	// maxControlBytes bounds control-plane request bodies (lease ops,
	// GC policies).
	maxControlBytes = 1 << 16
)

// digestRe admits the digests the store itself accepts as filenames:
// no separators, no leading dot (which would collide with staging
// files), bounded length. Content addresses are 64-char hex; the wider
// class keeps the daemon usable with the store's test digests.
var digestRe = regexp.MustCompile(`^[A-Za-z0-9_-][A-Za-z0-9._-]{0,127}$`)

// acquireRequest asks for a lease on the digest in the path.
type acquireRequest struct {
	Owner string `json:"owner"`
	TTLNs int64  `json:"ttl_ns"`
}

// acquireResponse grants a lease. Token is what renew/release verify.
type acquireResponse struct {
	Token  string `json:"token"`
	Stolen bool   `json:"stolen"`
}

// busyResponse is the 409 body of a contended acquire.
type busyResponse struct {
	Holder string `json:"holder,omitempty"`
}

// renewRequest extends a held lease; releaseRequest drops one.
type renewRequest struct {
	Owner string `json:"owner"`
	Token string `json:"token"`
	TTLNs int64  `json:"ttl_ns"`
}

type releaseRequest struct {
	Owner string `json:"owner"`
	Token string `json:"token"`
}

// holderResponse reports a lease peek.
type holderResponse struct {
	Held  bool   `json:"held"`
	Owner string `json:"owner,omitempty"`
}

// indexResponse lists the daemon's manifest.
type indexResponse struct {
	API     int                   `json:"api"`
	Schema  int                   `json:"schema"`
	Entries []store.ManifestEntry `json:"entries"`
}

// Stats summarises the daemon's store. Bytes is on-disk
// (compressed) size; RawBytes is the canonical (uncompressed) total
// the index has recorded, and CompressionRatio their quotient (0 until
// both are known). Leases is the lease churn this daemon instance has
// arbitrated. LatencyP50Ns/LatencyP99Ns are request-latency quantile
// estimates across all endpoints since start (histogram bucket upper
// bounds, biased high by at most one bucket; 0 until any request has
// been observed) — the same numbers the -stats-every log line prints.
type Stats struct {
	API              int            `json:"api"`
	Schema           int            `json:"schema"`
	Blobs            int            `json:"blobs"`
	Bytes            int64          `json:"bytes"`
	RawBytes         int64          `json:"raw_bytes"`
	CompressionRatio float64        `json:"compression_ratio"`
	Counters         store.Counters `json:"counters"`
	Leases           LeaseStats     `json:"leases"`
	LatencyP50Ns     int64          `json:"latency_p50_ns"`
	LatencyP99Ns     int64          `json:"latency_p99_ns"`
}

// gcRequest is a store.GCPolicy on the wire; the response is the
// store.GCStats of the pass, verbatim.
type gcRequest struct {
	MaxBytes int64 `json:"max_bytes"`
	MaxAgeNs int64 `json:"max_age_ns"`
}
