package storenet

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"golatest/internal/store"
	"golatest/internal/store/conformancetest"
)

// conformanceServer starts an authed loopback daemon — conformance
// runs against the production (auth-enabled) configuration, so the
// middleware is proven contract-transparent, not just tested in
// isolation.
func conformanceServer(t *testing.T) (dir string, url string) {
	t.Helper()
	dir = t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	auth := NewTokenSet().Grant("conf-token", ScopeAdmin, TokenLimits{})
	hs := httptest.NewServer(NewServerWith(st, ServerOptions{Auth: auth}))
	t.Cleanup(hs.Close)
	return dir, hs.URL
}

func corruptBlobFiles(t *testing.T, dirs ...string) func(digest string) {
	return func(digest string) {
		t.Helper()
		for _, dir := range dirs {
			if err := os.WriteFile(filepath.Join(dir, digest+".json"),
				[]byte("tampered: not a blob container"), 0o644); err != nil {
				t.Fatalf("corrupt %s in %s: %v", digest, dir, err)
			}
		}
	}
}

// plantBlobFile writes raw container bytes into the daemon's store
// directory — the authoritative tier a legacy deployment's blobs
// actually live in.
func plantBlobFile(t *testing.T, dir string) func(digest string, data []byte) {
	return func(digest string, data []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, digest+".json"), data, 0o644); err != nil {
			t.Fatalf("plant %s in %s: %v", digest, dir, err)
		}
	}
}

// readBlobFile reads the current authoritative-tier bytes of a
// digest's blob (nil if absent).
func readBlobFile(t *testing.T, dir string) func(digest string) []byte {
	return func(digest string) []byte {
		t.Helper()
		data, err := os.ReadFile(filepath.Join(dir, digest+".json"))
		if err != nil {
			return nil
		}
		return data
	}
}

// TestBackendConformanceLoopbackClient holds the cache-less network
// client (through a live authed daemon) to the same contract as a
// local directory.
func TestBackendConformanceLoopbackClient(t *testing.T) {
	conformancetest.Run(t, func(t *testing.T) conformancetest.Harness {
		dir, url := conformanceServer(t)
		c, err := NewClient(url, ClientOptions{
			Token:        "conf-token",
			RetryBackoff: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return conformancetest.Harness{
			Backend:  c,
			Corrupt:  corruptBlobFiles(t, dir),
			Plant:    plantBlobFile(t, dir),
			ReadBlob: readBlobFile(t, dir),
		}
	})
}

// TestBackendConformanceTieredClient runs the suite against the
// write-through tiered client (local cache over the authed daemon) —
// the configuration fleets actually deploy. Corruption tampers both
// tiers, because the contract's corrupt-blob promise must hold even
// when every copy is bad.
func TestBackendConformanceTieredClient(t *testing.T) {
	conformancetest.Run(t, func(t *testing.T) conformancetest.Harness {
		remoteDir, url := conformanceServer(t)
		cache, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewClient(url, ClientOptions{
			Cache:        cache,
			Token:        "conf-token",
			RetryBackoff: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return conformancetest.Harness{
			Backend:  c,
			Corrupt:  corruptBlobFiles(t, remoteDir, cache.Dir()),
			Plant:    plantBlobFile(t, remoteDir),
			ReadBlob: readBlobFile(t, remoteDir),
		}
	})
}
