package storenet

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// latencyBuckets are the histogram upper bounds, in seconds — a
// log-ish ladder from loopback microseconds to a wedged 10 s request.
// Fixed at compile time so every daemon exports comparable series and
// the per-request cost is one linear scan of 16 floats.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// endpointMetrics is one route's request ledger: counts by status code
// and a latency histogram (buckets[i] counts observations ≤
// latencyBuckets[i]; the implicit last bucket is +Inf).
type endpointMetrics struct {
	codes   map[int]int64
	buckets []int64 // len(latencyBuckets)+1, non-cumulative
	sumNs   int64
	count   int64
}

// requestMetrics collects per-endpoint request counters and latency
// histograms. One mutex guards everything: observations are a map
// lookup and two adds, orders of magnitude cheaper than the request
// they measure, so finer-grained locking would buy nothing.
type requestMetrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
}

func newRequestMetrics() *requestMetrics {
	return &requestMetrics{endpoints: map[string]*endpointMetrics{}}
}

func (m *requestMetrics) observe(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.endpoints[endpoint]
	if e == nil {
		e = &endpointMetrics{
			codes:   map[int]int64{},
			buckets: make([]int64, len(latencyBuckets)+1),
		}
		m.endpoints[endpoint] = e
	}
	e.codes[code]++
	secs := d.Seconds()
	i := 0
	for i < len(latencyBuckets) && secs > latencyBuckets[i] {
		i++
	}
	e.buckets[i]++
	e.sumNs += d.Nanoseconds()
	e.count++
}

// quantileNs estimates the q-th latency quantile in nanoseconds across
// every endpoint, as the upper bound of the histogram bucket holding
// the q-th observation — the usual histogram-quantile estimate, biased
// high by at most one bucket width. Observations past the last bound
// report that bound. Returns 0 with no observations.
func (m *requestMetrics) quantileNs(q float64) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	merged := make([]int64, len(latencyBuckets)+1)
	var total int64
	for _, e := range m.endpoints {
		for i, n := range e.buckets {
			merged[i] += n
		}
		total += e.count
	}
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i, n := range merged {
		seen += n
		if seen > rank {
			if i >= len(latencyBuckets) {
				i = len(latencyBuckets) - 1
			}
			return int64(latencyBuckets[i] * float64(time.Second))
		}
	}
	return int64(latencyBuckets[len(latencyBuckets)-1] * float64(time.Second))
}

// formatFloat renders a float the way the Prometheus text format wants
// (shortest round-trip representation).
func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// writeProm renders the request counters and latency histograms in the
// Prometheus text exposition format (version 0.0.4). Endpoints are
// sorted so scrapes are diffable and the output is deterministic for
// tests.
func (m *requestMetrics) writeProm(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "# HELP stored_requests_total Requests served, by endpoint pattern and status code.\n")
	fmt.Fprintf(w, "# TYPE stored_requests_total counter\n")
	for _, name := range names {
		e := m.endpoints[name]
		codes := make([]int, 0, len(e.codes))
		for c := range e.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "stored_requests_total{endpoint=%q,code=\"%d\"} %d\n", name, c, e.codes[c])
		}
	}

	fmt.Fprintf(w, "# HELP stored_request_duration_seconds Request latency, by endpoint pattern.\n")
	fmt.Fprintf(w, "# TYPE stored_request_duration_seconds histogram\n")
	for _, name := range names {
		e := m.endpoints[name]
		var cum int64
		for i, bound := range latencyBuckets {
			cum += e.buckets[i]
			fmt.Fprintf(w, "stored_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				name, formatFloat(bound), cum)
		}
		cum += e.buckets[len(latencyBuckets)]
		fmt.Fprintf(w, "stored_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "stored_request_duration_seconds_sum{endpoint=%q} %s\n",
			name, formatFloat(float64(e.sumNs)/float64(time.Second)))
		fmt.Fprintf(w, "stored_request_duration_seconds_count{endpoint=%q} %d\n", name, e.count)
	}
}

// statusWriter records the status a handler sends, defaulting to 200
// for handlers that never call WriteHeader explicitly.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards streaming support; without it, wrapping the writer
// would silently strip http.Flusher from handlers that sniff for it.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// LatencyQuantileNs estimates the q-th request-latency quantile across
// all endpoints in nanoseconds, from the same histograms /metrics
// exports. The load test and bench harness read p50/p99 through this.
func (s *Server) LatencyQuantileNs(q float64) int64 { return s.metrics.quantileNs(q) }

// handleMetrics serves GET /metrics in the Prometheus text format:
// store gauges and counters assembled by Stats(), lease churn, and the
// per-endpoint request/latency series the middleware collects. Served
// without auth — scrapers do not carry tenant credentials — and the
// snapshot exposes sizes and traffic, never blob contents or tokens.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st := s.Stats()
	gauge := func(name, help string, v string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("stored_blobs", "Blobs in the served store.", strconv.Itoa(st.Blobs))
	gauge("stored_blob_bytes", "On-disk (compressed) blob bytes.", strconv.FormatInt(st.Bytes, 10))
	gauge("stored_blob_raw_bytes", "Canonical (uncompressed) blob bytes.", strconv.FormatInt(st.RawBytes, 10))
	gauge("stored_compression_ratio", "raw_bytes / bytes (0 until both known).", formatFloat(st.CompressionRatio))
	counter("stored_store_hits_total", "Validated blob reads served.", st.Counters.Hits)
	counter("stored_store_misses_total", "Blob reads that found nothing.", st.Counters.Misses)
	counter("stored_store_corrupt_total", "Blobs rejected by validation (healed to misses).", st.Counters.Corrupt)
	counter("stored_store_puts_total", "Blobs written.", st.Counters.Puts)
	counter("stored_leases_acquired_total", "Lease grants arbitrated by this instance.", st.Leases.Acquired)
	counter("stored_leases_stolen_total", "Grants that displaced an expired holder.", st.Leases.Stolen)
	counter("stored_leases_busy_total", "Acquires refused: lease held.", st.Leases.Busy)
	counter("stored_leases_renewed_total", "Lease renewals.", st.Leases.Renewed)
	counter("stored_leases_released_total", "Lease releases.", st.Leases.Released)
	s.metrics.writeProm(w)
}
