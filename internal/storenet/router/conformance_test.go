package router_test

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"golatest/internal/store"
	"golatest/internal/store/conformancetest"
	"golatest/internal/storenet"
	"golatest/internal/storenet/faults"
	"golatest/internal/storenet/router"
)

// corruptIn tampers with the digest's blob bytes in every given
// directory — all tiers the router could serve the blob from.
func corruptIn(t *testing.T, dirs ...string) func(digest string) {
	return func(digest string) {
		t.Helper()
		for _, dir := range dirs {
			if err := os.WriteFile(filepath.Join(dir, digest+".json"),
				[]byte("tampered: not a blob container"), 0o644); err != nil {
				t.Fatalf("corrupt %s in %s: %v", digest, dir, err)
			}
		}
	}
}

// plantIn writes raw container bytes into the member directory the
// resolve hook picks for the digest (its primary, or the first live
// preferred member).
func plantIn(t *testing.T, resolve func(digest string) string) func(digest string, data []byte) {
	return func(digest string, data []byte) {
		t.Helper()
		dir := resolve(digest)
		if err := os.WriteFile(filepath.Join(dir, digest+".json"), data, 0o644); err != nil {
			t.Fatalf("plant %s in %s: %v", digest, dir, err)
		}
	}
}

func readBlobIn(resolve func(digest string) string) func(digest string) []byte {
	return func(digest string) []byte {
		data, err := os.ReadFile(filepath.Join(resolve(digest), digest+".json"))
		if err != nil {
			return nil
		}
		return data
	}
}

// TestRouterConformanceLocalMembers holds a three-member router over
// local directory stores (R=2) to the full Backend contract.
func TestRouterConformanceLocalMembers(t *testing.T) {
	conformancetest.Run(t, func(t *testing.T) conformancetest.Harness {
		members := make([]store.Backend, 3)
		dirs := make([]string, 3)
		byLoc := map[string]string{}
		for i := range members {
			dir := t.TempDir()
			st, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			members[i] = st
			dirs[i] = dir
			byLoc[st.Location()] = dir
		}
		r, err := router.New(members, router.Options{Replication: 2})
		if err != nil {
			t.Fatal(err)
		}
		primaryDir := func(digest string) string { return byLoc[r.Replicas(digest)[0]] }
		return conformancetest.Harness{
			Backend:  r,
			Corrupt:  corruptIn(t, dirs...),
			Plant:    plantIn(t, primaryDir),
			ReadBlob: readBlobIn(primaryDir),
		}
	})
}

// TestRouterConformanceDaemonMembers holds the production shape — a
// router over three cache-less authed clients, each fronting its own
// stored daemon — to the same contract.
func TestRouterConformanceDaemonMembers(t *testing.T) {
	conformancetest.Run(t, func(t *testing.T) conformancetest.Harness {
		members := make([]store.Backend, 3)
		dirs := make([]string, 3)
		byLoc := map[string]string{}
		for i := range members {
			dir := t.TempDir()
			st, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			auth := storenet.NewTokenSet().Grant("conf-token", storenet.ScopeAdmin, storenet.TokenLimits{})
			hs := httptest.NewServer(storenet.NewServerWith(st, storenet.ServerOptions{Auth: auth}))
			t.Cleanup(hs.Close)
			c, err := storenet.NewClient(hs.URL, storenet.ClientOptions{
				Token:        "conf-token",
				RetryBackoff: time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			members[i] = c
			dirs[i] = dir
			byLoc[c.Location()] = dir
		}
		r, err := router.New(members, router.Options{Replication: 2})
		if err != nil {
			t.Fatal(err)
		}
		primaryDir := func(digest string) string { return byLoc[r.Replicas(digest)[0]] }
		return conformancetest.Harness{
			Backend:  r,
			Corrupt:  corruptIn(t, dirs...),
			Plant:    plantIn(t, primaryDir),
			ReadBlob: readBlobIn(primaryDir),
		}
	})
}

// TestRouterConformanceDeadMember is the degraded contract: one of the
// three members is dead for the whole suite (a permanently-killed fault
// wrapper), and the router must still satisfy every Backend obligation
// through the survivors. The outage is total and permanent, so routing
// decisions — in particular which member arbitrates each lease — stay
// deterministic across the suite.
func TestRouterConformanceDeadMember(t *testing.T) {
	conformancetest.Run(t, func(t *testing.T) conformancetest.Harness {
		members := make([]store.Backend, 3)
		dirs := make([]string, 3)
		byLoc := map[string]string{}
		var deadLoc string
		for i := range members {
			dir := t.TempDir()
			st, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			members[i] = st
			dirs[i] = dir
			byLoc[st.Location()] = dir
			if i == 2 {
				f := faults.WrapBackend(st, faults.Plan{})
				f.Kill()
				members[i] = f
				deadLoc = f.Location()
			}
		}
		r, err := router.New(members, router.Options{Replication: 2})
		if err != nil {
			t.Fatal(err)
		}
		// The authoritative tier a planted blob must be readable from is
		// the first *live* preferred member — the dead one can neither
		// serve nor heal it.
		liveDir := func(digest string) string {
			for _, loc := range r.Replicas(digest) {
				if loc != deadLoc {
					return byLoc[loc]
				}
			}
			t.Fatalf("no live preferred member for %s", digest)
			return ""
		}
		return conformancetest.Harness{
			Backend:  r,
			Corrupt:  corruptIn(t, dirs...),
			Plant:    plantIn(t, liveDir),
			ReadBlob: readBlobIn(liveDir),
		}
	})
}
