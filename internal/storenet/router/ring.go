package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVirtualNodes is how many ring points each member contributes.
// 64 points per member keeps the expected keyspace imbalance of a
// three-member ring in the low single-digit percent range while the
// whole ring for any realistic member count still fits in one cache
// line's worth of binary-search depth.
const defaultVirtualNodes = 64

// point is one virtual node: a position on the 64-bit hash circle and
// the member that owns it.
type point struct {
	pos    uint64
	member int
}

// ring is the consistent-hash layout: every member's virtual nodes,
// sorted by position. It is immutable after construction — membership
// is fixed for the life of a Router, so lookups are lock-free.
//
// Placement is a pure function of (member locations, digest): every
// router built over the same member list — in any order of a different
// process, on a different host — computes the identical preference
// order for every digest. That property is what lets independent fleet
// processes agree on a key's primary (lease arbitration) without any
// coordination beyond their -store-url lists.
type ring struct {
	points  []point
	members int
}

// hash64 is FNV-1a over the input string, passed through a splitmix64
// finalizer. FNV alone is stable but clusters badly on near-identical
// inputs — vnode labels differing only in their "#N" suffix land so
// unevenly that one member of a three-member ring can own over half the
// keyspace; the finalizer's avalanche restores uniform arc lengths.
// Everything here is fixed arithmetic, stable across processes and Go
// versions (unlike maphash), which the cross-process placement
// agreement above depends on.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// newRing lays out vnodes virtual points per member. Member identity on
// the ring is its location string, so two members claiming the same
// location would shadow each other — callers reject duplicates first.
func newRing(locations []string, vnodes int) ring {
	if vnodes <= 0 {
		vnodes = defaultVirtualNodes
	}
	r := ring{points: make([]point, 0, len(locations)*vnodes), members: len(locations)}
	for m, loc := range locations {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{pos: hash64(fmt.Sprintf("%s#%d", loc, v)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].pos < r.points[j].pos })
	return r
}

// order returns every member index in the digest's preference order:
// the owner of the first virtual node at or after hash(digest), then
// each further distinct member walking clockwise. order[0] is the
// digest's primary; order[:R] is its preferred replica set; the tail is
// the failover chain reads and lease claims fall down when preferred
// members are unreachable.
func (r ring) order(digest string) []int {
	out := make([]int, 0, r.members)
	if len(r.points) == 0 {
		return out
	}
	h := hash64(digest)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= h })
	seen := make([]bool, r.members)
	for i := 0; len(out) < r.members; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}
