package router_test

import (
	"net/http/httptest"
	"testing"
	"time"

	"golatest/internal/store"
	"golatest/internal/store/conformancetest"
	"golatest/internal/storenet"
	"golatest/internal/storenet/faults"
	"golatest/internal/storenet/router"
)

// benchDaemon spins up one stored daemon and a cache-less client.
func benchDaemon(b *testing.B, seed uint64) (*storenet.Client, *faults.Injector) {
	b.Helper()
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	inj := faults.NewInjector(storenet.NewServer(st), faults.Plan{})
	srv := httptest.NewServer(inj)
	b.Cleanup(srv.Close)
	c, err := storenet.NewClient(srv.URL, storenet.ClientOptions{
		Retries:          1,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
		Seed:             seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	return c, inj
}

// BenchmarkDirectWarmGet is the baseline a router Get is compared
// against: one client, one daemon, warm blob.
func BenchmarkDirectWarmGet(b *testing.B) {
	c, _ := benchDaemon(b, 1)
	k, res := conformancetest.Key(b, 0), conformancetest.Result(0)
	if err := c.Put(k, res); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(k); !ok {
			b.Fatal("warm Get missed")
		}
	}
}

// BenchmarkRouterWarmGet measures the routing overhead on the happy
// path: three daemon members, R=2, blob fully replicated, primary
// healthy — the Get should cost one member round trip plus ring math.
func BenchmarkRouterWarmGet(b *testing.B) {
	members := make([]store.Backend, 3)
	for i := range members {
		c, _ := benchDaemon(b, uint64(i+1))
		members[i] = c
	}
	r, err := router.New(members, router.Options{Replication: 2})
	if err != nil {
		b.Fatal(err)
	}
	k, res := conformancetest.Key(b, 0), conformancetest.Result(0)
	if err := r.Put(k, res); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Get(k); !ok {
			b.Fatal("warm Get missed")
		}
	}
}

// BenchmarkRouterFailoverGet measures the steady-state failover read:
// the primary member is dead with its breaker open, so every Get skips
// it by health signal and serves from the surviving replica.
func BenchmarkRouterFailoverGet(b *testing.B) {
	members := make([]store.Backend, 3)
	injs := make([]*faults.Injector, 3)
	byLoc := map[string]int{}
	for i := range members {
		c, inj := benchDaemon(b, uint64(i+1))
		members[i] = c
		injs[i] = inj
		byLoc[c.Location()] = i
	}
	r, err := router.New(members, router.Options{Replication: 2})
	if err != nil {
		b.Fatal(err)
	}
	k, res := conformancetest.Key(b, 0), conformancetest.Result(0)
	if err := r.Put(k, res); err != nil {
		b.Fatal(err)
	}
	primary := byLoc[r.Replicas(k.Digest)[0]]
	injs[primary].Kill()
	// One throwaway Get trips the primary's breaker (threshold 1), so
	// the timed loop measures the health-skip path, not breaker warmup.
	if _, ok := r.Get(k); !ok {
		b.Fatal("failover Get missed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Get(k); !ok {
			b.Fatal("failover Get missed")
		}
	}
}
