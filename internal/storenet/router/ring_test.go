package router

import (
	"fmt"
	"testing"
)

func ringLocations(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://member-%d.example:7350", i)
	}
	return out
}

// TestRingOrderCompleteAndDistinct: order() must be a permutation of
// the member set for every digest — the failover chain visits everyone
// exactly once.
func TestRingOrderCompleteAndDistinct(t *testing.T) {
	r := newRing(ringLocations(5), 0)
	for i := 0; i < 200; i++ {
		order := r.order(fmt.Sprintf("digest-%d", i))
		if len(order) != 5 {
			t.Fatalf("order has %d members, want 5", len(order))
		}
		seen := map[int]bool{}
		for _, m := range order {
			if m < 0 || m >= 5 || seen[m] {
				t.Fatalf("order %v is not a permutation of members", order)
			}
			seen[m] = true
		}
	}
}

// TestRingCrossProcessAgreement: two rings built independently over the
// same location list compute identical preference orders — the property
// lease arbitration between uncoordinated fleet processes rides on.
func TestRingCrossProcessAgreement(t *testing.T) {
	locs := ringLocations(3)
	a, b := newRing(locs, 0), newRing(locs, 0)
	for i := 0; i < 500; i++ {
		d := fmt.Sprintf("%x", hash64(fmt.Sprintf("agree-%d", i)))
		ao, bo := a.order(d), b.order(d)
		for j := range ao {
			if ao[j] != bo[j] {
				t.Fatalf("rings disagree on %s: %v vs %v", d, ao, bo)
			}
		}
	}
}

// TestRingSpreadsPrimaries: with 64 vnodes per member, no member of a
// three-member ring owns a wildly disproportionate share of primaries.
func TestRingSpreadsPrimaries(t *testing.T) {
	const digests = 3000
	r := newRing(ringLocations(3), 0)
	counts := make([]int, 3)
	for i := 0; i < digests; i++ {
		counts[r.order(fmt.Sprintf("%x", hash64(fmt.Sprintf("spread-%d", i))))[0]]++
	}
	for m, c := range counts {
		// Expected share is 1/3; accept anything in [1/6, 1/2] — the test
		// guards against gross placement bugs (all keys on one member),
		// not statistical perfection.
		if c < digests/6 || c > digests/2 {
			t.Fatalf("member %d is primary for %d/%d digests: %v", m, c, digests, counts)
		}
	}
}

// TestRingStableUnderVnodeDefault: explicit 64 equals the 0 default.
func TestRingStableUnderVnodeDefault(t *testing.T) {
	locs := ringLocations(4)
	a, b := newRing(locs, 0), newRing(locs, defaultVirtualNodes)
	for i := 0; i < 100; i++ {
		d := fmt.Sprintf("stable-%d", i)
		if a.order(d)[0] != b.order(d)[0] {
			t.Fatalf("vnode default drifted from %d", defaultVirtualNodes)
		}
	}
}
