package router

import (
	"errors"
	"fmt"
	"time"

	"golatest/internal/core"
	"golatest/internal/store"
)

// ScrubStats reports one anti-entropy pass.
type ScrubStats struct {
	// Scanned counts distinct digests examined (the union of member
	// indexes); UnderReplicated counts digests missing from at least one
	// preferred member.
	Scanned, UnderReplicated int
	// Repaired counts replica slots healed this pass; Failed counts
	// slots that could not be healed (unreachable member, no readable
	// source) and stay pending for the next pass.
	Repaired, Failed int
}

// Scrub runs one anti-entropy pass: diff every member's index against
// the ring's preferred placement and heal each preferred member missing
// a digest with validated bytes read from a member that has it.
//
// The pass is idempotent and safe to run concurrently with live
// traffic or a second scrubber: blobs are immutable per digest, so a
// repair can only ever write the bytes the slot was always going to
// hold — replaying a repair, racing a Put, or crashing mid-pass and
// rerunning all converge on the same state. Repair is add-only: a blob
// found on a non-preferred member (a stand-in write from a failover, a
// since-healed outage) is left where it is; GC, not the scrubber, is
// the eviction authority.
//
// A digest whose every holder is unreachable or unreadable counts
// Failed and stays; the next pass retries. The pending-repairs gauge is
// recomputed exactly from what this pass observed.
func (r *Router) Scrub() (ScrubStats, error) {
	span := r.startSpan("router.scrub")
	defer span.End()
	var st ScrubStats

	// One index fetch per member, diffed in memory: the scrubber's cost
	// is O(blobs), not O(blobs × members) round trips.
	have := make([]map[string]bool, len(r.members))
	entries := map[string]store.ManifestEntry{}
	for i, m := range r.members {
		have[i] = map[string]bool{}
		for _, e := range m.b.Index() {
			have[i][e.Digest] = true
			if _, ok := entries[e.Digest]; !ok {
				entries[e.Digest] = e
			}
		}
	}

	var errs []error
	pending := 0
	for digest, e := range entries {
		st.Scanned++
		order := r.ring.order(digest)
		var missing []int
		for _, mi := range order[:r.rf] {
			if !have[mi][digest] {
				missing = append(missing, mi)
			}
		}
		if len(missing) == 0 {
			continue
		}
		st.UnderReplicated++
		k := store.Key{Digest: digest, Profile: e.Profile, Instance: e.Instance}

		// Source: the first healthy holder in preference order. The read
		// validates (one decode); a corrupt holder is skipped like a
		// missing one.
		var vb *store.ValidatedBlob
		var res *core.Result
		srcOK := false
		for _, mi := range order {
			if !have[mi][digest] || !r.healthy(mi) {
				continue
			}
			if vb, res, srcOK = r.memberGet(mi, k); srcOK {
				break
			}
		}
		if !srcOK {
			st.Failed += len(missing)
			pending += len(missing)
			errs = append(errs, fmt.Errorf("router: scrub %s: no readable source", digest))
			continue
		}
		for _, mi := range missing {
			if !r.healthy(mi) {
				st.Failed++
				pending++
				continue
			}
			if err := r.memberPut(mi, k, vb, res); err != nil {
				st.Failed++
				pending++
				errs = append(errs, fmt.Errorf("router: scrub %s -> %s: %w", digest, r.members[mi].id, err))
				continue
			}
			st.Repaired++
			r.scrubRepairs.Add(1)
		}
	}
	r.pendingRepairs.Store(int64(pending))
	r.scrubRuns.Add(1)
	if st.Repaired > 0 || st.Failed > 0 {
		r.log.Info("router: scrub pass",
			"scanned", st.Scanned, "under_replicated", st.UnderReplicated,
			"repaired", st.Repaired, "failed", st.Failed)
	}
	span.SetAttr("repaired", fmt.Sprintf("%d", st.Repaired))
	if len(errs) > 0 {
		return st, errors.Join(errs...)
	}
	return st, nil
}

// jitter draws the next seeded jitter in [0, max): a splitmix64 step
// over atomic state, deterministic per seed.
func (r *Router) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	z := r.jstate.Add(0x9e3779b97f4a7c15)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return time.Duration(z % uint64(max))
}

// StartScrubber launches the background anti-entropy loop: one Scrub
// pass every interval, with a seeded initial jitter in [0, interval) so
// a fleet of routers with distinct seeds staggers its passes instead of
// hammering every daemon's index endpoint in lockstep. The returned
// stop function halts the loop and blocks until any in-flight pass
// finishes; it is idempotent to call the schedule to an end exactly
// once.
func (r *Router) StartScrubber(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Minute
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTimer(r.jitter(interval))
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
			}
			if st, err := r.Scrub(); err != nil {
				r.log.Warn("router: background scrub", "repaired", st.Repaired, "failed", st.Failed, "err", err)
			}
			t.Reset(interval)
		}
	}()
	var stopped bool
	return func() {
		if stopped {
			return
		}
		stopped = true
		close(done)
		<-exited
	}
}
