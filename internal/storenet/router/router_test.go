package router

import (
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"golatest/internal/store"
	"golatest/internal/store/conformancetest"
	"golatest/internal/storenet/faults"
)

// sick wraps a member with a switchable health signal, hiding the inner
// backend's validated-bytes capabilities so the fallback Get/Put paths
// get exercised too.
type sick struct {
	store.Backend
	down atomic.Bool
}

func (s *sick) Healthy() bool { return !s.down.Load() }

// openMembers builds n local directory stores and returns them with
// their dirs, plus a location → index map.
func openMembers(t *testing.T, n int) (members []store.Backend, dirs []string, at map[string]int) {
	t.Helper()
	at = map[string]int{}
	for i := 0; i < n; i++ {
		dir := t.TempDir()
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, st)
		dirs = append(dirs, dir)
		at[st.Location()] = i
	}
	return members, dirs, at
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("New with no members succeeded")
	}
	members, _, _ := openMembers(t, 1)
	if _, err := New([]store.Backend{members[0], members[0]}, Options{}); err == nil {
		t.Fatal("New with duplicate member locations succeeded")
	}
	r, err := New(members, Options{Replication: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Replication(); got != 1 {
		t.Fatalf("Replication clamped to %d, want member count 1", got)
	}
	members3, _, _ := openMembers(t, 3)
	r3, err := New(members3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r3.Replication(); got != 2 {
		t.Fatalf("default Replication = %d, want 2", got)
	}
}

// TestGetReadRepairsAbsentPreferred: a hit found past a preferred
// member that answered "absent" heals that member in the same Get.
func TestGetReadRepairsAbsentPreferred(t *testing.T) {
	members, dirs, at := openMembers(t, 3)
	r, err := New(members, Options{Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	k, want := conformancetest.Key(t, 1), conformancetest.Result(1)
	if err := r.Put(k, want); err != nil {
		t.Fatal(err)
	}
	primary := at[r.Replicas(k.Digest)[0]]
	blob := filepath.Join(dirs[primary], k.Digest+".json")
	if err := os.Remove(blob); err != nil {
		t.Fatalf("simulating a lost replica: %v", err)
	}

	if _, ok := r.Get(k); !ok {
		t.Fatal("Get missed despite a surviving replica")
	}
	if _, err := os.Stat(blob); err != nil {
		t.Fatalf("primary replica not read-repaired: %v", err)
	}
	rs := r.ReplicationStats()
	if rs.ReadRepairs != 1 {
		t.Fatalf("ReadRepairs = %d, want 1", rs.ReadRepairs)
	}
	if rs.PendingRepairs != 0 {
		t.Fatalf("PendingRepairs = %d after a successful repair, want 0", rs.PendingRepairs)
	}
	// The repaired replica serves directly: no second repair happens.
	if _, ok := r.Get(k); !ok {
		t.Fatal("Get missed after repair")
	}
	if rs := r.ReplicationStats(); rs.ReadRepairs != 1 {
		t.Fatalf("ReadRepairs = %d after a clean hit, want still 1", rs.ReadRepairs)
	}
}

// TestGetFailsOverPastUnhealthyMember: an unhealthy preferred member is
// skipped (counted as a failover), and the read lands on a replica.
func TestGetFailsOverPastUnhealthyMember(t *testing.T) {
	inner, _, _ := openMembers(t, 3)
	wrapped := make([]store.Backend, len(inner))
	sicks := make([]*sick, len(inner))
	at := map[string]int{}
	for i, b := range inner {
		sicks[i] = &sick{Backend: b}
		wrapped[i] = sicks[i]
		at[b.Location()] = i
	}
	r, err := New(wrapped, Options{Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	k, want := conformancetest.Key(t, 2), conformancetest.Result(2)
	if err := r.Put(k, want); err != nil {
		t.Fatal(err)
	}
	sicks[at[r.Replicas(k.Digest)[0]]].down.Store(true)

	if _, ok := r.Get(k); !ok {
		t.Fatal("Get missed with the primary down and a replica alive")
	}
	rs := r.ReplicationStats()
	if rs.Failovers < 1 {
		t.Fatalf("Failovers = %d, want ≥ 1", rs.Failovers)
	}
	if rs.Healthy != 2 || rs.Members != 3 {
		t.Fatalf("health census = %d/%d, want 2/3", rs.Healthy, rs.Members)
	}
}

// TestPutUnderReplicatedThenScrubHeals: a Put that lands on fewer than
// R replicas succeeds but records debt; the next scrub pass pays it.
func TestPutUnderReplicatedThenScrubHeals(t *testing.T) {
	inner, dirs, at := openMembers(t, 3)
	wrapped := make([]store.Backend, len(inner))
	chaos := make([]*faults.Backend, len(inner))
	for i, b := range inner {
		chaos[i] = faults.WrapBackend(b, faults.Plan{})
		wrapped[i] = chaos[i]
	}
	r, err := New(wrapped, Options{Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	k, want := conformancetest.Key(t, 3), conformancetest.Result(3)
	replicas := r.Replicas(k.Digest)
	secondary := at[replicas[1]]
	chaos[secondary].Kill()

	if err := r.Put(k, want); err != nil {
		t.Fatalf("Put with one dead replica must still succeed: %v", err)
	}
	rs := r.ReplicationStats()
	if rs.UnderReplicatedPuts != 1 || rs.PendingRepairs != 1 {
		t.Fatalf("after a degraded Put: %+v, want 1 under-replicated and 1 pending", rs)
	}

	// A scrub against the still-dead member fails the slot and keeps it
	// pending — nothing is silently dropped.
	if st, _ := r.Scrub(); st.Failed != 1 || st.Repaired != 0 {
		t.Fatalf("scrub against a dead member: %+v, want 1 failed", st)
	}
	if rs := r.ReplicationStats(); rs.PendingRepairs != 1 {
		t.Fatalf("PendingRepairs = %d while the member is down, want 1", rs.PendingRepairs)
	}

	chaos[secondary].Restore()
	st, err := r.Scrub()
	if err != nil {
		t.Fatalf("scrub after restore: %v", err)
	}
	if st.Scanned != 1 || st.UnderReplicated != 1 || st.Repaired != 1 || st.Failed != 0 {
		t.Fatalf("healing scrub = %+v, want scanned=1 under=1 repaired=1", st)
	}
	if _, err := os.Stat(filepath.Join(dirs[secondary], k.Digest+".json")); err != nil {
		t.Fatalf("scrub did not materialise the missing replica: %v", err)
	}
	// Idempotence: a second pass finds a fully replicated store.
	if st, err := r.Scrub(); err != nil || st.UnderReplicated != 0 || st.Repaired != 0 {
		t.Fatalf("second scrub = %+v (err=%v), want a clean pass", st, err)
	}
	if rs := r.ReplicationStats(); rs.PendingRepairs != 0 || rs.ScrubRepairs != 1 || rs.ScrubRuns != 3 {
		t.Fatalf("post-heal stats = %+v, want pending=0 scrubRepairs=1 scrubRuns=3", rs)
	}
}

// TestStartScrubberHealsInBackground: the background loop converges an
// under-replicated store without any explicit Scrub call.
func TestStartScrubberHealsInBackground(t *testing.T) {
	inner, dirs, at := openMembers(t, 3)
	wrapped := make([]store.Backend, len(inner))
	chaos := make([]*faults.Backend, len(inner))
	for i, b := range inner {
		chaos[i] = faults.WrapBackend(b, faults.Plan{})
		wrapped[i] = chaos[i]
	}
	r, err := New(wrapped, Options{Replication: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	k := conformancetest.Key(t, 4)
	secondary := at[r.Replicas(k.Digest)[1]]
	chaos[secondary].Kill()
	if err := r.Put(k, conformancetest.Result(4)); err != nil {
		t.Fatal(err)
	}
	chaos[secondary].Restore()

	stop := r.StartScrubber(5 * time.Millisecond)
	defer stop()
	blob := filepath.Join(dirs[secondary], k.Digest+".json")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(blob); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background scrubber never repaired the replica (stats %+v)", r.ReplicationStats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	stop() // idempotent
	if rs := r.ReplicationStats(); rs.ScrubRuns < 1 || rs.ScrubRepairs < 1 {
		t.Fatalf("scrubber ran %d passes with %d repairs, want ≥ 1 of each", rs.ScrubRuns, rs.ScrubRepairs)
	}
}

// TestLeaseRoutesToPrimaryAndFailsOver pins the arbitration story: a
// claim lands on the digest's primary; with the primary down it lands
// on the ring successor, stays exclusive, and LeaseHolder finds it.
func TestLeaseRoutesToPrimaryAndFailsOver(t *testing.T) {
	inner, _, _ := openMembers(t, 3)
	wrapped := make([]store.Backend, len(inner))
	sicks := make([]*sick, len(inner))
	at := map[string]int{}
	for i, b := range inner {
		sicks[i] = &sick{Backend: b}
		wrapped[i] = sicks[i]
		at[b.Location()] = i
	}
	r, err := New(wrapped, Options{Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := conformancetest.Key(t, 5).Digest
	order := r.ring.order(d)

	h, ok, err := r.TryAcquire(d, "owner-a", time.Minute)
	if err != nil || !ok {
		t.Fatalf("acquire: ok=%v err=%v", ok, err)
	}
	if owner, held := inner[order[0]].LeaseHolder(d); !held || owner != "owner-a" {
		t.Fatalf("lease not on the primary: (%q, %v)", owner, held)
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}

	sicks[order[0]].down.Store(true)
	h2, ok, err := r.TryAcquire(d, "owner-b", time.Minute)
	if err != nil || !ok {
		t.Fatalf("failover acquire: ok=%v err=%v", ok, err)
	}
	if owner, held := inner[order[1]].LeaseHolder(d); !held || owner != "owner-b" {
		t.Fatalf("failover lease not on the successor: (%q, %v)", owner, held)
	}
	// Exclusivity holds across the failover: the successor is the
	// arbiter now, and it says busy.
	if _, ok, err := r.TryAcquire(d, "owner-c", time.Minute); err != nil || ok {
		t.Fatalf("claim on a failed-over lease: ok=%v err=%v, want busy", ok, err)
	}
	if owner, held := r.LeaseHolder(d); !held || owner != "owner-b" {
		t.Fatalf("router LeaseHolder = (%q, %v), want (owner-b, true)", owner, held)
	}
	if rs := r.ReplicationStats(); rs.Failovers < 1 {
		t.Fatalf("Failovers = %d, want ≥ 1", rs.Failovers)
	}
	if err := h2.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestTryAcquireSurfacesTotalArbiterLoss: with every member failing,
// claims error out — the fleet's policy layer decides what comes next,
// not a silently unleased sweep.
func TestTryAcquireSurfacesTotalArbiterLoss(t *testing.T) {
	inner, _, _ := openMembers(t, 2)
	wrapped := make([]store.Backend, len(inner))
	for i, b := range inner {
		f := faults.WrapBackend(b, faults.Plan{})
		f.Kill()
		wrapped[i] = f
	}
	r, err := New(wrapped, Options{Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := r.TryAcquire("deadbeef", "owner", time.Minute); err == nil || ok {
		t.Fatalf("acquire with no live arbiter: ok=%v err=%v, want error", ok, err)
	}
}

// TestLocalTierReadThrough: the optional local tier serves warm reads
// and is healed from remote hits with the validated bytes verbatim.
func TestLocalTierReadThrough(t *testing.T) {
	members, _, _ := openMembers(t, 2)
	localDir := t.TempDir()
	local, err := store.Open(localDir)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(members, Options{Replication: 2, Local: local})
	if err != nil {
		t.Fatal(err)
	}
	k, want := conformancetest.Key(t, 6), conformancetest.Result(6)
	if err := r.Put(k, want); err != nil {
		t.Fatal(err)
	}
	if !local.Has(k) {
		t.Fatal("Put did not write through to the local tier")
	}
	blob := filepath.Join(localDir, k.Digest+".json")
	if err := os.Remove(blob); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(k); !ok {
		t.Fatal("Get missed with members holding the blob")
	}
	if _, err := os.Stat(blob); err != nil {
		t.Fatalf("remote hit did not heal the local tier: %v", err)
	}
	if !r.CanDegrade() {
		t.Fatal("a replicated router must advertise CanDegrade")
	}
}
