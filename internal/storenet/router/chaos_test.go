package router_test

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"golatest/internal/core"
	"golatest/internal/fleet"
	"golatest/internal/hwprofile"
	"golatest/internal/store"
	"golatest/internal/storenet"
	"golatest/internal/storenet/faults"
	"golatest/internal/storenet/router"
)

func chaosConfig(p hwprofile.Profile) core.Config {
	return core.Config{
		Frequencies: []float64{705, 1065, 1410},
		Seed:        900 + uint64(p.Instance),
	}
}

func chaosProfiles(n int) []hwprofile.Profile {
	out := make([]hwprofile.Profile, n)
	for i := range out {
		out[i] = hwprofile.A100Instance(i)
	}
	return out
}

// TestChaosSweepSurvivesMemberKill is the acceptance contract of the
// replicated store tier: a lease-mode fleet sweep whose store is a
// three-daemon router (R=2) has one daemon killed mid-sweep and must
// (a) finish every shard — zero lost shards, no sweep error — because
// each blob's surviving replica set absorbs the outage, (b) leave
// byte-identical replicas wherever a blob landed, and (c) after the
// daemon returns, converge via Reconcile (breaker resets + one
// anti-entropy pass) to every digest present on its full preferred
// replica set, with nothing left pending.
func TestChaosSweepSurvivesMemberKill(t *testing.T) {
	const memberCount = 3
	backings := make([]*store.Store, memberCount)
	injs := make([]*faults.Injector, memberCount)
	members := make([]store.Backend, memberCount)
	dirByLoc := map[string]string{}
	for i := 0; i < memberCount; i++ {
		dir := t.TempDir()
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		backings[i] = st
		injs[i] = faults.NewInjector(storenet.NewServer(st), faults.Plan{})
		srv := httptest.NewServer(injs[i])
		t.Cleanup(srv.Close)
		c, err := storenet.NewClient(srv.URL, storenet.ClientOptions{
			Retries:      2,
			RetryBackoff: time.Millisecond,
			// The breaker stays open for the rest of the sweep once it
			// trips; recovery is the explicit Reconcile below, which
			// resets it. No half-open probe can make the outage flaky.
			BreakerThreshold: 2,
			BreakerCooldown:  time.Hour,
			Seed:             uint64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		members[i] = c
		dirByLoc[c.Location()] = dir
	}
	r, err := router.New(members, router.Options{Replication: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	// Kill the member that the most digests prefer: by pigeonhole it is
	// preferred by at least ⌈2·6/3⌉ = 4 of the 6 digests, and at most 3
	// shards can have fully replicated before the kill fires inside the
	// 3rd compute — so at least one post-kill write is guaranteed to
	// leave a replica slot for anti-entropy to repair.
	profiles := chaosProfiles(6)
	digests := make([]string, len(profiles))
	preferredBy := map[string]int{}
	for i, p := range profiles {
		k, err := store.ProfileKey(p, chaosConfig(p))
		if err != nil {
			t.Fatal(err)
		}
		digests[i] = k.Digest
		for _, loc := range r.Replicas(k.Digest) {
			preferredBy[loc]++
		}
	}
	victim := 0
	for i, m := range members {
		if preferredBy[m.Location()] > preferredBy[members[victim].Location()] {
			victim = i
		}
	}

	const killAt = 3
	var computes atomic.Int64
	rep, err := fleet.Sweep(profiles, fleet.Options{
		Replicas: 2,
		Store:    r,
		Config:   chaosConfig,
		Run: func(p hwprofile.Profile, cfg core.Config) (*core.Result, error) {
			if computes.Add(1) == killAt {
				injs[victim].Kill()
			}
			return &core.Result{
				DeviceName:   fmt.Sprintf("%s[%d]", p.Key, p.Instance),
				Architecture: p.Config.Architecture,
			}, nil
		},
		LeaseTTL: time.Minute,
		Owner:    "chaos-host",
		WaitPoll: 2 * time.Millisecond,
		// StoreErrors stays auto: the router advertises CanDegrade, so
		// the policy must resolve to degrade on its own.
	})
	if err != nil {
		t.Fatalf("sweep failed instead of riding its replicas: %v", err)
	}

	// (a) Zero lost shards.
	for i, sh := range rep.Shards {
		if sh.Result == nil {
			t.Fatalf("shard %d lost in the outage (err=%v)", i, sh.Err)
		}
	}
	if got := int(computes.Load()); got != len(profiles) {
		t.Fatalf("computed %d shards, want %d (store was empty)", got, len(profiles))
	}
	// Every blob is durable somewhere despite the kill.
	if got := r.Len(); got != len(profiles) {
		t.Fatalf("router holds %d distinct blobs, want %d", got, len(profiles))
	}
	// The outage left a visible mark: operations routed around the dead
	// member or landed under-replicated.
	rs := r.ReplicationStats()
	if rs.Failovers+rs.UnderReplicatedPuts == 0 {
		t.Fatalf("stats %+v: the kill left no trace", rs)
	}
	if rep.Replication == nil {
		t.Fatal("sweep against a replicated backend reported no replication stats")
	}

	// (c) Restore, reconcile, converge: the breaker resets ride the
	// member Reconciles, then one scrub pass repairs the replica debt.
	injs[victim].Restore()
	if _, err := r.Reconcile(); err != nil {
		t.Fatalf("reconcile after restore: %v", err)
	}
	rs = r.ReplicationStats()
	if rs.ScrubRuns < 1 {
		t.Fatalf("reconcile ran no scrub pass: %+v", rs)
	}
	if rs.ScrubRepairs < 1 {
		t.Fatalf("no anti-entropy repairs despite a mid-sweep kill of the busiest member: %+v", rs)
	}
	if rs.PendingRepairs != 0 {
		t.Fatalf("%d repairs still pending after reconcile", rs.PendingRepairs)
	}

	// Every digest is on every member of its preferred replica set, and
	// (b) all replicas of a digest are byte-identical.
	for _, digest := range digests {
		for _, loc := range r.Replicas(digest) {
			if _, err := os.Stat(filepath.Join(dirByLoc[loc], digest+".json")); err != nil {
				t.Fatalf("digest %s missing from preferred member %s after reconcile: %v", digest, loc, err)
			}
		}
		var want []byte
		for _, m := range members {
			data, err := os.ReadFile(filepath.Join(dirByLoc[m.Location()], digest+".json"))
			if os.IsNotExist(err) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = data
				continue
			}
			if !bytes.Equal(want, data) {
				t.Fatalf("replicas of %s diverge between members", digest)
			}
		}
		if want == nil {
			t.Fatalf("digest %s has no replica at all", digest)
		}
	}

	// A second scrub finds nothing to do — convergence is stable.
	if st, err := r.Scrub(); err != nil || st.UnderReplicated != 0 {
		t.Fatalf("post-convergence scrub = %+v (err=%v), want a clean pass", st, err)
	}
}
