// Package router implements a replicating store.Backend over N member
// backends: blob digests are consistent-hashed onto a ring of members,
// every blob lives on the R members that follow its hash point
// (order[:R], its preferred replica set), and each operation routes by
// that order with failover past unhealthy members.
//
//   - Put writes to the first R healthy replicas on the ring; it
//     succeeds when at least one replica accepted (the blob is durable)
//     and counts the Put under-replicated when fewer than R did — debt
//     the scrubber pays off.
//   - Get reads in preference order and read-repairs: a hit found after
//     one or more preferred members answered "absent" heals those
//     members with the hit's validated bytes verbatim, riding the
//     store.ValidatedBlob single-validation contract (one decode at the
//     serving member, zero at the healed ones).
//   - Lease CAS routes to the digest's primary, failing over to its
//     ring successor when the primary is unhealthy (its breaker is
//     open) or the claim attempt errors. Every router built over the
//     same member list computes the same order, so fleet processes
//     agree on the arbiter without coordination. During the failover
//     window two processes with divergent health views can be granted
//     the "same" lease on different members; that costs duplicate
//     compute at worst — campaigns are deterministic and blobs
//     content-addressed, so duplicated work writes identical bytes.
//   - Index, Len, Stats and GC fan out to every member and merge
//     (Index dedups by digest; GC sums per-member passes).
//
// Safety rests on the store's two invariants: blobs are immutable per
// digest (replicas can disagree about presence, never content — so
// repair, replay, and re-put are all idempotent), and campaigns are
// deterministic (a lost replica is recomputable, so degraded modes
// trade freshness and duplicated effort, never correctness).
package router

import (
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync/atomic"
	"time"

	"golatest/internal/core"
	"golatest/internal/obs"
	"golatest/internal/store"
)

// HealthReporter is the optional member self-report the router routes
// by: false means "do not offer this member traffic right now".
// storenet.Client implements it off its circuit breaker (false exactly
// while the breaker is open inside its cooldown); members without the
// method — a local *store.Store, a test fake — are always offered
// traffic and fail over per call instead.
type HealthReporter interface {
	Healthy() bool
}

// Options configures a Router; the zero value works.
type Options struct {
	// Replication is R, the preferred replica count per digest; 0 means
	// 2, and it is clamped to the member count.
	Replication int
	// VirtualNodes is the ring points per member; 0 means 64.
	VirtualNodes int
	// Local, when non-nil, is a read-through local tier: Gets check it
	// first, remote hits heal it (validated bytes verbatim), Puts write
	// through to it. Purely acceleration, bounded by its own owner —
	// router GC never touches it.
	Local *store.Store
	// Seed derives the scrubber's start jitter, so a fleet of routers
	// with distinct seeds desynchronises its anti-entropy passes while
	// tests with fixed seeds reproduce schedules exactly.
	Seed uint64
	// Tracer, when non-nil, records one router span per operation with
	// the serving member as an attribute; nil keeps tracing at zero
	// cost. The context installed via SetTraceContext is forwarded to
	// every member that carries one.
	Tracer *obs.Tracer
	// Logger receives scrub outcomes and repair failures; nil discards.
	Logger *slog.Logger
}

// member is one ring participant plus the capability views the router
// resolved once at construction.
type member struct {
	b      store.Backend
	id     string
	health HealthReporter        // nil: always healthy
	vget   store.ValidatedGetter // nil: fall back to Get
	vput   store.ValidatedPutter // nil: fall back to Put
	tctx   obs.TraceContextSetter
}

// Router is the replicating Backend. All methods are safe for
// concurrent use; membership and layout are immutable after New.
type Router struct {
	members []member
	ring    ring
	rf      int
	local   *store.Store
	tracer  *obs.Tracer
	tctx    atomic.Pointer[obs.SpanContext]
	log     *slog.Logger

	// jstate seeds the scrubber's jitter draws (splitmix64 state).
	jstate atomic.Uint64

	hits, misses, corrupt, puts atomic.Int64

	failovers, underPuts      atomic.Int64
	readRepairs, scrubRepairs atomic.Int64
	scrubRuns, pendingRepairs atomic.Int64
}

var (
	_ store.Backend          = (*Router)(nil)
	_ store.Resilient        = (*Router)(nil)
	_ store.Replicated       = (*Router)(nil)
	_ obs.TraceContextSetter = (*Router)(nil)
)

// New builds a router over the given members. Members are fixed for the
// router's life; their Location() strings are the ring identities and
// must be distinct.
func New(members []store.Backend, opts Options) (*Router, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("router: no members")
	}
	rf := opts.Replication
	if rf <= 0 {
		rf = 2
	}
	if rf > len(members) {
		rf = len(members)
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	r := &Router{
		members: make([]member, 0, len(members)),
		rf:      rf,
		local:   opts.Local,
		tracer:  opts.Tracer,
		log:     logger,
	}
	r.jstate.Store(opts.Seed ^ 0x9e3779b97f4a7c15)
	locs := make([]string, 0, len(members))
	seen := map[string]bool{}
	for _, b := range members {
		id := b.Location()
		if seen[id] {
			return nil, fmt.Errorf("router: duplicate member location %q", id)
		}
		seen[id] = true
		locs = append(locs, id)
		m := member{b: b, id: id}
		m.health, _ = b.(HealthReporter)
		m.vget, _ = b.(store.ValidatedGetter)
		m.vput, _ = b.(store.ValidatedPutter)
		m.tctx, _ = b.(obs.TraceContextSetter)
		r.members = append(r.members, m)
	}
	r.ring = newRing(locs, opts.VirtualNodes)
	return r, nil
}

// Location implements Backend: the replica factor plus every member.
func (r *Router) Location() string {
	ids := make([]string, len(r.members))
	for i, m := range r.members {
		ids[i] = m.id
	}
	return fmt.Sprintf("router[r=%d](%s)", r.rf, strings.Join(ids, ","))
}

// Replication returns the configured replica factor R.
func (r *Router) Replication() int { return r.rf }

// Replicas returns the digest's preferred replica locations in
// preference order — order[0] is the primary. Exported for harnesses
// and operators reasoning about where a blob should live.
func (r *Router) Replicas(digest string) []string {
	order := r.ring.order(digest)
	out := make([]string, 0, r.rf)
	for _, mi := range order[:r.rf] {
		out = append(out, r.members[mi].id)
	}
	return out
}

// SetTraceContext implements obs.TraceContextSetter: the ambient parent
// for router spans, forwarded to every member that carries a trace
// context (a fleet sweep installing its root context on the router
// reaches each member client's wire spans through this).
func (r *Router) SetTraceContext(sc obs.SpanContext) {
	if sc.Valid() {
		r.tctx.Store(&sc)
	} else {
		r.tctx.Store(nil)
	}
	for _, m := range r.members {
		if m.tctx != nil {
			m.tctx.SetTraceContext(sc)
		}
	}
}

func (r *Router) traceParent() obs.SpanContext {
	if p := r.tctx.Load(); p != nil {
		return *p
	}
	return obs.SpanContext{}
}

func (r *Router) startSpan(op string) *obs.Span {
	if r.tracer == nil {
		return nil
	}
	return r.tracer.StartSpan(op, r.traceParent())
}

// healthy reports whether member mi should be offered traffic.
func (r *Router) healthy(mi int) bool {
	if h := r.members[mi].health; h != nil {
		return h.Healthy()
	}
	return true
}

// memberGet reads one member, preferring the validated path so a hit
// can heal other members verbatim. Returns (vb, result, ok); vb is nil
// when the member cannot produce validated bytes (repair then falls
// back to a re-encoding Put).
func (r *Router) memberGet(mi int, k store.Key) (*store.ValidatedBlob, *core.Result, bool) {
	m := r.members[mi]
	if m.vget != nil {
		vb, ok := m.vget.GetValidated(k.Digest)
		if !ok {
			return nil, nil, false
		}
		return vb, vb.Result(), true
	}
	res, ok := m.b.Get(k)
	return nil, res, ok
}

// memberPut writes one replica: validated bytes verbatim when both
// sides support the proof-carrying handoff, an ordinary re-encoding Put
// otherwise.
func (r *Router) memberPut(mi int, k store.Key, vb *store.ValidatedBlob, res *core.Result) error {
	m := r.members[mi]
	if vb != nil && m.vput != nil {
		return m.vput.PutValidated(vb)
	}
	return m.b.Put(k, res)
}

// Get reads in preference order: local tier, then members along the
// ring. The first hit wins; preferred members that answered "absent"
// before the hit are read-repaired with the hit's validated bytes, and
// unhealthy preferred members are skipped (a failover) and left to the
// scrubber. A miss everywhere is a miss — reads degrade, per the
// Backend contract.
func (r *Router) Get(k store.Key) (*core.Result, bool) {
	if r.local != nil {
		if res, ok := r.local.Get(k); ok {
			r.hits.Add(1)
			return res, true
		}
	}
	span := r.startSpan("router.get")
	defer span.End()
	order := r.ring.order(k.Digest)
	var absent []int // preferred members that answered "absent" before the hit
	for pos, mi := range order {
		if !r.healthy(mi) {
			if pos < r.rf {
				r.failovers.Add(1)
				span.Event("failover")
			}
			continue
		}
		vb, res, ok := r.memberGet(mi, k)
		if !ok {
			if pos < r.rf {
				absent = append(absent, mi)
			}
			continue
		}
		span.SetAttr("member", r.members[mi].id)
		span.SetAttr("outcome", "hit")
		r.readRepair(k, vb, res, absent)
		if r.local != nil && vb != nil {
			// Best-effort heal of the local tier, wire bytes verbatim.
			_ = r.local.PutValidated(vb)
		}
		r.hits.Add(1)
		return res, true
	}
	r.misses.Add(1)
	span.SetAttr("outcome", "miss")
	return nil, false
}

// readRepair heals the preferred members a Get observed missing the
// blob it then found further along the ring. Best-effort by design: a
// failed repair leaves the slot for the scrubber, and the blob's
// immutability per digest makes racing repairs (two Gets healing the
// same slot, a repair racing the original Put's slow replica) write
// identical bytes.
func (r *Router) readRepair(k store.Key, vb *store.ValidatedBlob, res *core.Result, absent []int) {
	for _, mi := range absent {
		if !r.healthy(mi) {
			continue
		}
		if err := r.memberPut(mi, k, vb, res); err != nil {
			r.log.Warn("router: read-repair failed",
				"digest", k.Digest, "member", r.members[mi].id, "err", err)
			continue
		}
		r.readRepairs.Add(1)
		// The slot may or may not have been counted pending (counted for
		// failed Put replicas, not for externally planted gaps); the
		// clamp on read absorbs the asymmetry.
		r.pendingRepairs.Add(-1)
	}
}

// Put writes to the first R healthy replicas on the ring. The container
// is encoded and validated once here; each member then takes the
// verbatim-bytes path (no per-member re-encode). At least one replica
// write must land — the blob is then durable and recomputation-free —
// and landing fewer than R counts the Put under-replicated, debt the
// next Get's read-repair or the scrubber pays off. With every preferred
// member unhealthy the preferred set is attempted anyway: surfacing the
// members' real errors beats inventing one.
func (r *Router) Put(k store.Key, res *core.Result) error {
	if res == nil {
		return fmt.Errorf("router: nil result for %s", k)
	}
	span := r.startSpan("router.put")
	defer span.End()
	data, err := store.EncodeBlobV3(k, res)
	if err != nil {
		return fmt.Errorf("router: encode %s: %w", k, err)
	}
	vb, err := store.ValidateBlobBytes(data, k.Digest)
	if err != nil {
		return fmt.Errorf("router: validate %s: %w", k, err)
	}
	order := r.ring.order(k.Digest)
	targets := make([]int, 0, r.rf)
	for pos, mi := range order {
		if len(targets) == r.rf {
			break
		}
		if !r.healthy(mi) {
			if pos < r.rf {
				r.failovers.Add(1)
				span.Event("failover")
			}
			continue
		}
		targets = append(targets, mi)
	}
	if len(targets) == 0 {
		targets = append(targets, order[:r.rf]...)
	}
	wrote := 0
	var errs []error
	for _, mi := range targets {
		if err := r.memberPut(mi, k, vb, res); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", r.members[mi].id, err))
			r.pendingRepairs.Add(1)
			continue
		}
		wrote++
	}
	if wrote == 0 {
		span.SetAttr("outcome", "error")
		return fmt.Errorf("router: put %s: no replica accepted: %w", k, errors.Join(errs...))
	}
	if wrote < r.rf {
		r.underPuts.Add(1)
		span.Event("under-replicated")
		r.log.Warn("router: put under-replicated",
			"digest", k.Digest, "wrote", wrote, "want", r.rf, "err", errors.Join(errs...))
	}
	if r.local != nil {
		_ = r.local.PutValidated(vb)
	}
	r.puts.Add(1)
	span.SetAttr("outcome", "ok")
	return nil
}

// Has probes in preference order without validating; a down member is
// skipped (its replica may still exist, but Has answers about what is
// reachable now, matching Get).
func (r *Router) Has(k store.Key) bool {
	if r.local != nil && r.local.Has(k) {
		return true
	}
	for _, mi := range r.ring.order(k.Digest) {
		if r.healthy(mi) && r.members[mi].b.Has(k) {
			return true
		}
	}
	return false
}

// TryAcquire routes the claim to the digest's primary, failing over to
// its ring successor when the primary is unhealthy or the attempt
// errors. A busy answer stops the walk — the lease lives on that
// member, and asking the next one would manufacture a second grant.
// Exhausting every member surfaces the last error: claims must stop a
// fleet that has no arbiter left (or degrade it, under the fleet's
// policy, to unleased recompute).
func (r *Router) TryAcquire(digest, owner string, ttl time.Duration) (store.LeaseHandle, bool, error) {
	span := r.startSpan("router.lease.acquire")
	defer span.End()
	var lastErr error
	for pos, mi := range r.ring.order(digest) {
		if !r.healthy(mi) {
			r.failovers.Add(1)
			span.Event("failover")
			continue
		}
		h, ok, err := r.members[mi].b.TryAcquire(digest, owner, ttl)
		if err != nil {
			lastErr = err
			if pos < len(r.members)-1 {
				r.failovers.Add(1)
				span.Event("failover")
			}
			continue
		}
		span.SetAttr("member", r.members[mi].id)
		if !ok {
			span.SetAttr("outcome", "busy")
			return nil, false, nil
		}
		span.SetAttr("outcome", "granted")
		return h, true, nil
	}
	span.SetAttr("outcome", "error")
	if lastErr == nil {
		lastErr = fmt.Errorf("every member unhealthy")
	}
	return nil, false, fmt.Errorf("router: acquire %s: %w", digest, lastErr)
}

// LeaseHolder peeks along the preference order: the first member
// reporting a live claim answers (a failed-over lease lives on a
// successor, so the walk cannot stop at the primary). Reads degrade —
// an unreachable member is treated as holding nothing.
func (r *Router) LeaseHolder(digest string) (string, bool) {
	for _, mi := range r.ring.order(digest) {
		if !r.healthy(mi) {
			continue
		}
		if owner, held := r.members[mi].b.LeaseHolder(digest); held {
			return owner, true
		}
	}
	return "", false
}

// Index merges every member's manifest, deduplicating by digest — the
// logical store's view, where a blob replicated R times is one blob.
func (r *Router) Index() []store.ManifestEntry {
	seen := map[string]bool{}
	var out []store.ManifestEntry
	for _, m := range r.members {
		for _, e := range m.b.Index() {
			if !seen[e.Digest] {
				seen[e.Digest] = true
				out = append(out, e)
			}
		}
	}
	return out
}

// Len counts distinct digests across the ring.
func (r *Router) Len() int { return len(r.Index()) }

// Counters reports this router's traffic (logical operations, not the
// per-replica fan-out).
func (r *Router) Counters() store.Counters {
	return store.Counters{
		Hits:    r.hits.Load(),
		Misses:  r.misses.Load(),
		Corrupt: r.corrupt.Load(),
		Puts:    r.puts.Load(),
	}
}

// GC fans the policy out to every member and sums the passes. Each
// member applies the bound to its own shard of the keyspace —
// MaxBytes is per member, matching how the disks it protects are per
// member. Write discipline: every member is attempted, all errors
// surface joined.
func (r *Router) GC(p store.GCPolicy) (store.GCStats, error) {
	span := r.startSpan("router.gc")
	defer span.End()
	var total store.GCStats
	var errs []error
	for _, m := range r.members {
		gs, err := m.b.GC(p)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", m.id, err))
			continue
		}
		total.Scanned += gs.Scanned
		total.Evicted += gs.Evicted
		total.BytesBefore += gs.BytesBefore
		total.BytesAfter += gs.BytesAfter
		total.TmpRemoved += gs.TmpRemoved
		total.LeasesRemoved += gs.LeasesRemoved
	}
	if len(errs) > 0 {
		return total, fmt.Errorf("router: gc: %w", errors.Join(errs...))
	}
	return total, nil
}

// MemberHealth is one member's point-in-time status line.
type MemberHealth struct {
	// Location is the member's Location() — its URL or directory.
	Location string
	// Healthy is the member's current health signal (always true for
	// members without one).
	Healthy bool
	// Blobs is the member's own blob count (its Len(); 0 when the
	// member is unreachable — Len degrades).
	Blobs int
}

// MemberHealth snapshots every member for stats lines and operators.
func (r *Router) MemberHealth() []MemberHealth {
	out := make([]MemberHealth, len(r.members))
	for i, m := range r.members {
		out[i] = MemberHealth{Location: m.id, Healthy: r.healthy(i)}
		if out[i].Healthy {
			out[i].Blobs = m.b.Len()
		}
	}
	return out
}

// ReplicationStats implements store.Replicated.
func (r *Router) ReplicationStats() store.ReplicationStats {
	healthy := 0
	for i := range r.members {
		if r.healthy(i) {
			healthy++
		}
	}
	pending := r.pendingRepairs.Load()
	if pending < 0 {
		pending = 0
	}
	return store.ReplicationStats{
		Members:             len(r.members),
		Healthy:             healthy,
		Replication:         r.rf,
		Failovers:           r.failovers.Load(),
		UnderReplicatedPuts: r.underPuts.Load(),
		ReadRepairs:         r.readRepairs.Load(),
		ScrubRepairs:        r.scrubRepairs.Load(),
		ScrubRuns:           r.scrubRuns.Load(),
		PendingRepairs:      pending,
	}
}

// CanDegrade implements store.Resilient: redundancy is what the router
// degrades to — any single member outage is absorbed by the remaining
// replicas (and the local tier, when one exists).
func (r *Router) CanDegrade() bool { return len(r.members) > 1 || r.local != nil }

// Resilience implements store.Resilient, mapping replication traffic
// onto the degraded-mode vocabulary fleet reports already speak:
// Degraded is operations that routed around a member (failovers),
// Deferred is Puts that landed under-replicated (durable, repair owed),
// Reconciled is replicas healed (read-repair + scrub), Pending is
// replica slots still owed. Member-level journal traffic (a tiered
// member client) folds in on top.
func (r *Router) Resilience() store.ResilienceStats {
	pending := r.pendingRepairs.Load()
	if pending < 0 {
		pending = 0
	}
	rs := store.ResilienceStats{
		Degraded:   r.failovers.Load(),
		Deferred:   r.underPuts.Load(),
		Reconciled: r.readRepairs.Load() + r.scrubRepairs.Load(),
		Pending:    pending,
	}
	for _, m := range r.members {
		if res, ok := m.b.(store.Resilient); ok {
			mrs := res.Resilience()
			rs.Degraded += mrs.Degraded
			rs.Deferred += mrs.Deferred
			rs.Reconciled += mrs.Reconciled
			rs.Pending += mrs.Pending
		}
	}
	return rs
}

// Reconcile implements store.Resilient: every resilient member replays
// its journal (a member client's Reconcile also force-closes its
// breaker — the recovery assertion after an outage ends), then one
// scrub pass repairs the under-replication the outage left behind.
// Returns member replays plus replicas repaired.
func (r *Router) Reconcile() (int, error) {
	n := 0
	var errs []error
	for _, m := range r.members {
		if res, ok := m.b.(store.Resilient); ok {
			k, err := res.Reconcile()
			n += k
			if err != nil {
				errs = append(errs, fmt.Errorf("%s: %w", m.id, err))
			}
		}
	}
	st, err := r.Scrub()
	if err != nil {
		errs = append(errs, err)
	}
	n += st.Repaired
	if len(errs) > 0 {
		return n, fmt.Errorf("router: reconcile: %w", errors.Join(errs...))
	}
	return n, nil
}
