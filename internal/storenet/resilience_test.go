package storenet

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"golatest/internal/store"
	"golatest/internal/storenet/faults"
)

// newChaosDaemon is newDaemon with a fault injector between the client
// and the real server handler.
func newChaosDaemon(t *testing.T, plan faults.Plan) (*store.Store, *faults.Injector, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(NewServer(st), plan)
	srv := httptest.NewServer(inj)
	t.Cleanup(srv.Close)
	return st, inj, srv
}

// TestBreakerOpensAndFastFails: enough consecutive transport failures
// open the circuit, after which every store operation — reads and lease
// claims alike — fails immediately with ErrUnavailable instead of
// burning a retry cycle.
func TestBreakerOpensAndFastFails(t *testing.T) {
	_, inj, srv := newChaosDaemon(t, faults.Plan{})
	inj.Kill()
	c, err := NewClient(srv.URL, ClientOptions{
		Retries:          2,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // no probes during the test
	})
	if err != nil {
		t.Fatal(err)
	}

	// First Get burns its retry budget (2 attempts = threshold) and
	// trips the breaker.
	if _, ok := c.Get(testKey(t, 0)); ok {
		t.Fatal("Get hit against a killed daemon")
	}
	before := inj.Injected().Requests

	// Open circuit: no request reaches the wire.
	if _, ok := c.Get(testKey(t, 1)); ok {
		t.Fatal("fast-fail Get hit")
	}
	if _, _, err := c.TryAcquire(testKey(t, 1).Digest, "owner", time.Minute); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("TryAcquire with open breaker: %v, want ErrUnavailable", err)
	}
	if err := c.Put(testKey(t, 1), testResult(1)); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Put (no local tier) with open breaker: %v, want ErrUnavailable", err)
	}
	if got := inj.Injected().Requests; got != before {
		t.Fatalf("open breaker let %d requests reach the wire", got-before)
	}
	if rs := c.Resilience(); rs.Degraded == 0 {
		t.Fatalf("Resilience = %+v, want Degraded > 0", rs)
	}
}

// TestDeferredPutReconciles is the degraded-write round trip: Puts
// during an outage land in the local tier plus the pending journal, and
// an explicit Reconcile after recovery replays them to the daemon
// byte-identically.
func TestDeferredPutReconciles(t *testing.T) {
	backing, inj, srv := newChaosDaemon(t, faults.Plan{})
	cache, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(srv.URL, ClientOptions{
		Cache:            cache,
		Retries:          2,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}

	inj.Kill()
	keys := []store.Key{testKey(t, 0), testKey(t, 1), testKey(t, 2)}
	for i, k := range keys {
		if err := c.Put(k, testResult(i)); err != nil {
			t.Fatalf("deferred Put %d: %v", i, err)
		}
		// Degraded mode still serves the write-your-own-read: the local
		// tier has the blob.
		if res, ok := c.Get(k); !ok || res == nil {
			t.Fatalf("degraded Get %d missed its own deferred Put", i)
		}
	}
	rs := c.Resilience()
	if rs.Deferred != 3 || rs.Pending != 3 {
		t.Fatalf("Resilience = %+v, want Deferred=3 Pending=3", rs)
	}
	// One journal marker per digest on disk.
	entries, err := os.ReadDir(filepath.Join(cache.Dir(), "pending"))
	if err != nil || len(entries) != 3 {
		t.Fatalf("pending journal: %v entries, err %v; want 3", len(entries), err)
	}
	if backing.Len() != 0 {
		t.Fatalf("daemon indexed %d blobs during the outage", backing.Len())
	}

	// Re-deferring an already-journaled digest is a no-op, not a double
	// count.
	if err := c.Put(keys[0], testResult(0)); err != nil {
		t.Fatal(err)
	}
	if rs := c.Resilience(); rs.Pending != 3 {
		t.Fatalf("Pending = %d after duplicate deferral, want 3", rs.Pending)
	}

	inj.Restore()
	n, err := c.Reconcile()
	if err != nil {
		t.Fatalf("Reconcile: %v", err)
	}
	if n != 3 {
		t.Fatalf("Reconcile replayed %d, want 3", n)
	}
	rs = c.Resilience()
	if rs.Pending != 0 || rs.Reconciled != 3 {
		t.Fatalf("Resilience after Reconcile = %+v, want Pending=0 Reconciled=3", rs)
	}

	// The healed remote is byte-identical to the local tier.
	for _, k := range keys {
		local, ok := cache.GetRaw(k.Digest)
		if !ok {
			t.Fatalf("local blob %s vanished", k)
		}
		remote, ok := backing.GetRaw(k.Digest)
		if !ok {
			t.Fatalf("reconciled blob %s missing from the daemon", k)
		}
		if string(local) != string(remote) {
			t.Fatalf("reconciled blob %s differs from the local bytes", k)
		}
	}

	// Idempotent: a second Reconcile has nothing to do.
	if n, err := c.Reconcile(); err != nil || n != 0 {
		t.Fatalf("second Reconcile = %d, %v; want 0, nil", n, err)
	}
}

// TestJournalSurvivesProcessRestart: a new client over the same cache
// directory sees the previous process's deferred writes and replays
// them — the experiments -reconcile flow.
func TestJournalSurvivesProcessRestart(t *testing.T) {
	backing, inj, srv := newChaosDaemon(t, faults.Plan{})
	cacheDir := t.TempDir()
	cache, err := store.Open(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := NewClient(srv.URL, ClientOptions{
		Cache: cache, Retries: 1, RetryBackoff: time.Millisecond,
		BreakerThreshold: 1, BreakerCooldown: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Kill()
	if err := c1.Put(testKey(t, 0), testResult(0)); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh store handle and client over the same dir.
	inj.Restore()
	cache2, err := store.Open(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewClient(srv.URL, ClientOptions{Cache: cache2, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rs := c2.Resilience(); rs.Pending != 1 {
		t.Fatalf("fresh client Pending = %d, want 1 (journal scan)", rs.Pending)
	}
	if n, err := c2.Reconcile(); err != nil || n != 1 {
		t.Fatalf("Reconcile = %d, %v; want 1, nil", n, err)
	}
	if backing.Len() != 1 {
		t.Fatalf("daemon indexes %d blobs after reconcile, want 1", backing.Len())
	}
}

// TestBackgroundReconcileOnRecovery: once the breaker's half-open probe
// succeeds, the client replays the journal on its own — no explicit
// Reconcile call.
func TestBackgroundReconcileOnRecovery(t *testing.T) {
	backing, inj, srv := newChaosDaemon(t, faults.Plan{})
	cache, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(srv.URL, ClientOptions{
		Cache: cache, Retries: 1, RetryBackoff: time.Millisecond,
		BreakerThreshold: 1, BreakerCooldown: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Kill()
	if err := c.Put(testKey(t, 0), testResult(0)); err != nil {
		t.Fatal(err)
	}
	inj.Restore()

	// Drive traffic until a half-open probe lands and the recovery edge
	// kicks the reconciler.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.Has(testKey(t, 1))
		if c.Resilience().Pending == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The background goroutine may still be finishing; poll the daemon.
	for time.Now().Before(deadline) && backing.Len() == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if backing.Len() != 1 {
		t.Fatal("background reconcile never replayed the deferred blob")
	}
}

// TestRequestTimeoutBoundsAttempts: a daemon that accepts connections
// and never answers costs one RequestTimeout per attempt, not the
// blanket 60 seconds the old client-wide timeout allowed.
func TestRequestTimeoutBoundsAttempts(t *testing.T) {
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(30 * time.Second):
		case <-r.Context().Done(): // freed by the client's cancel
		}
	}))
	defer hang.Close()
	c, err := NewClient(hang.URL, ClientOptions{
		Retries:          2,
		RetryBackoff:     time.Millisecond,
		RequestTimeout:   50 * time.Millisecond,
		BreakerThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, ok := c.Get(testKey(t, 0)); ok {
		t.Fatal("Get hit against a hanging daemon")
	}
	// 2 attempts x 50ms + 1ms backoff; anything near a second means the
	// per-attempt deadline did not fire.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Get took %v against a hanging daemon, want ~100ms", elapsed)
	}
}

// TestJitterDeterministicPerSeed: equal seeds reproduce the jitter
// sequence exactly (what keeps fault-injection schedules reproducible);
// distinct seeds desynchronise it (what breaks fleet retry lockstep).
func TestJitterDeterministicPerSeed(t *testing.T) {
	mk := func(seed uint64) *Client {
		c, err := NewClient("http://example.test:1", ClientOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b, other := mk(7), mk(7), mk(8)
	same, diff := true, false
	for i := 0; i < 64; i++ {
		va, vb, vo := a.jitter(time.Second), b.jitter(time.Second), other.jitter(time.Second)
		if va > time.Second || va < 0 {
			t.Fatalf("jitter %v out of [0, max]", va)
		}
		if va != vb {
			same = false
		}
		if va != vo {
			diff = true
		}
	}
	if !same {
		t.Fatal("equal seeds diverged")
	}
	if !diff {
		t.Fatal("distinct seeds never diverged in 64 draws")
	}
}
