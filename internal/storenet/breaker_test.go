package storenet

import (
	"testing"
	"time"
)

// fakeClock is an advanceable clock for breaker tests — no sleeping.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(3, time.Second, clk.now)

	// Closed passes traffic; failures below the threshold keep it closed.
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		if b.record(false) {
			t.Fatal("failure reported a recovery")
		}
	}
	if !b.allow() {
		t.Fatal("closed breaker refused below threshold")
	}
	// Third consecutive failure trips it.
	b.record(false)
	if b.allow() {
		t.Fatal("open breaker admitted an attempt")
	}

	// Failures recorded while open (in-flight stragglers) must not
	// extend the cooldown.
	clk.advance(900 * time.Millisecond)
	b.record(false)
	clk.advance(100 * time.Millisecond)

	// Cooldown elapsed: exactly one half-open probe goes out.
	if !b.allow() {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	if b.allow() {
		t.Fatal("second concurrent probe admitted in half-open")
	}
	// A failed probe reopens immediately.
	b.record(false)
	if b.allow() {
		t.Fatal("breaker admitted traffic right after a failed probe")
	}

	// Next cooldown, successful probe closes it and reports recovery.
	clk.advance(time.Second)
	if !b.allow() {
		t.Fatal("no probe after second cooldown")
	}
	if !b.record(true) {
		t.Fatal("successful probe did not report the recovery edge")
	}
	if !b.allow() {
		t.Fatal("closed breaker refused after recovery")
	}
	// A success in the closed state is not a recovery.
	if b.record(true) {
		t.Fatal("steady-state success reported a recovery")
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(3, time.Second, clk.now)
	// The threshold counts *consecutive* failures: an interleaved
	// success starts the count over.
	b.record(false)
	b.record(false)
	b.record(true)
	b.record(false)
	b.record(false)
	if !b.allow() {
		t.Fatal("breaker opened on non-consecutive failures")
	}
	b.record(false)
	if b.allow() {
		t.Fatal("breaker stayed closed past the threshold")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(-1, time.Second, nil)
	for i := 0; i < 100; i++ {
		if !b.allow() {
			t.Fatal("disabled breaker refused traffic")
		}
		b.record(false)
	}
	if !b.allow() {
		t.Fatal("disabled breaker opened")
	}
}

func TestBreakerReset(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(1, time.Hour, clk.now)
	b.record(false)
	if b.allow() {
		t.Fatal("breaker did not open at threshold 1")
	}
	b.reset()
	if !b.allow() {
		t.Fatal("reset did not close the breaker")
	}
}
