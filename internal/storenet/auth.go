package storenet

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Scope is a capability class a bearer token grants. Scopes are
// hierarchical — write implies read, admin implies write — because
// every real deployment that can mutate the store must also be able to
// probe it (Put's idempotence check is a HEAD, the claim loop peeks
// holders), so a flat model would force every token to list everything.
type Scope uint8

const (
	// ScopeRead admits the read plane: blob GET/HEAD, lease peeks,
	// index, stats.
	ScopeRead Scope = 1 << iota
	// ScopeWrite admits mutation: blob PUT and the lease CAS endpoints
	// (acquire/renew/release). Implies ScopeRead.
	ScopeWrite
	// ScopeAdmin admits operational surgery — today that is POST /v1/gc,
	// which can evict any tenant's blobs. Implies ScopeWrite.
	ScopeAdmin
)

// expandScope folds the implication chain into a mask, so enforcement
// is a single bitwise test.
func expandScope(s Scope) Scope {
	if s&ScopeAdmin != 0 {
		s |= ScopeWrite
	}
	if s&ScopeWrite != 0 {
		s |= ScopeRead
	}
	return s
}

func (s Scope) String() string {
	switch {
	case s&ScopeAdmin != 0:
		return "admin"
	case s&ScopeWrite != 0:
		return "write"
	case s&ScopeRead != 0:
		return "read"
	}
	return "none"
}

// TokenLimits bounds one token's traffic. Zero fields mean unlimited —
// a token file line with no k=v settings grants scope without quota.
type TokenLimits struct {
	// RPS is the sustained request rate (token bucket refill per
	// second); Burst is the bucket capacity (0 = RPS).
	RPS, Burst float64
	// BytesPerSec bounds uploaded payload bytes per second (PUT bodies,
	// charged by Content-Length before the body is read); ByteBurst is
	// that bucket's capacity (0 = BytesPerSec).
	BytesPerSec, ByteBurst float64
	// NotBefore and Expires bound the token's validity window. A request
	// outside it is rejected 401 (error="invalid_token") exactly like an
	// unknown token — the credential does not exist yet, or no longer
	// does. Zero values mean unbounded on that side. Expiry is how token
	// files rotate without a flag day: ship the replacement early with
	// nbf=<cutover>, give the old token expires=<cutover+grace>, and
	// SIGHUP the daemon once; each credential activates and lapses on
	// schedule.
	NotBefore, Expires time.Time
}

// bucket is a mutex-guarded token bucket. A nil *bucket is unlimited,
// which keeps the per-request path branch-free for unquota'd tokens.
type bucket struct {
	mu    sync.Mutex
	level float64
	size  float64
	rate  float64 // refill per second
	last  time.Time
}

func newBucket(rate, burst float64) *bucket {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = rate
	}
	return &bucket{level: burst, size: burst, rate: rate, last: time.Now()}
}

// take withdraws n tokens if the bucket holds them; otherwise it
// reports how long until it would. A request is never half-charged: a
// refused take leaves the level untouched, so a client that honors
// Retry-After is not paying for its rejections.
func (b *bucket) take(n float64) (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.level = math.Min(b.size, b.level+now.Sub(b.last).Seconds()*b.rate)
	b.last = now
	if b.level >= n {
		b.level -= n
		return true, 0
	}
	short := n - b.level
	if short > b.size {
		// A single request larger than the bucket can ever hold: no
		// amount of waiting helps, but 429-with-a-bound beats lying.
		short = b.size
	}
	return false, time.Duration(short / b.rate * float64(time.Second))
}

// tokenEntry is one credential's grant: its (expanded) scope, its
// optional rate and byte buckets, and its validity window (zero bounds
// mean unbounded).
type tokenEntry struct {
	scope Scope
	reqs  *bucket
	bytes *bucket
	nbf   time.Time
	exp   time.Time
}

// validAt reports whether the credential exists at the given instant:
// at or after nbf, strictly before exp.
func (e *tokenEntry) validAt(now time.Time) bool {
	if !e.nbf.IsZero() && now.Before(e.nbf) {
		return false
	}
	if !e.exp.IsZero() && !now.Before(e.exp) {
		return false
	}
	return true
}

// TokenSet is the daemon's credential table: token → scope + quotas.
// The map is immutable after construction (LoadTokens/Grant happen
// before the server starts); only the buckets mutate, under their own
// locks, so lookups need no synchronisation.
type TokenSet struct {
	tokens map[string]*tokenEntry
}

// NewTokenSet returns an empty set; Grant populates it. Tests and
// embedders build sets programmatically, daemons load them from a file.
func NewTokenSet() *TokenSet {
	return &TokenSet{tokens: map[string]*tokenEntry{}}
}

// Grant adds (or replaces) a token with the given scope and limits,
// returning the set for chaining. Scope implications are expanded here.
func (ts *TokenSet) Grant(token string, scope Scope, lim TokenLimits) *TokenSet {
	ts.tokens[token] = &tokenEntry{
		scope: expandScope(scope),
		reqs:  newBucket(lim.RPS, lim.Burst),
		bytes: newBucket(lim.BytesPerSec, lim.ByteBurst),
		nbf:   lim.NotBefore,
		exp:   lim.Expires,
	}
	return ts
}

// Len reports how many tokens the set holds.
func (ts *TokenSet) Len() int { return len(ts.tokens) }

// LoadTokens reads a token file — the cmd/stored -tokens format:
//
//	# comment (or blank line)
//	<token> <scope>[,<scope>...] [rps=N] [burst=N] [bps=N] [bburst=N]
//	        [nbf=RFC3339] [expires=RFC3339]
//
// One token per line, whitespace-separated. Scopes are read, write,
// admin (hierarchical: admin ⊃ write ⊃ read). rps/burst bound the
// token's request rate; bps/bburst bound its uploaded bytes per second
// (PUT payloads). nbf and expires bound the token's validity window
// (RFC 3339 timestamps, e.g. 2026-09-01T00:00:00Z): requests before
// nbf or at/after expires are 401s. Omitted settings mean unlimited
// and unbounded. A SIGHUP reload plus staggered nbf/expires windows is
// the rotation story — see TokenLimits.
func LoadTokens(path string) (*TokenSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storenet: tokens: %w", err)
	}
	defer f.Close()
	ts, err := ParseTokens(f)
	if err != nil {
		return nil, fmt.Errorf("storenet: tokens %s: %w", path, err)
	}
	return ts, nil
}

// ParseTokens parses the token-file format from a reader; see
// LoadTokens for the grammar.
func ParseTokens(r io.Reader) (*TokenSet, error) {
	ts := NewTokenSet()
	sc := bufio.NewScanner(r)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("line %d: want <token> <scopes> [k=v...], got %q", lineNo, line)
		}
		token := fields[0]
		if _, dup := ts.tokens[token]; dup {
			return nil, fmt.Errorf("line %d: duplicate token %q", lineNo, token)
		}
		var scope Scope
		for _, s := range strings.Split(fields[1], ",") {
			switch strings.TrimSpace(s) {
			case "read":
				scope |= ScopeRead
			case "write":
				scope |= ScopeWrite
			case "admin":
				scope |= ScopeAdmin
			default:
				return nil, fmt.Errorf("line %d: unknown scope %q (want read, write, or admin)", lineNo, s)
			}
		}
		var lim TokenLimits
		for _, kv := range fields[2:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("line %d: bad setting %q (want k=v)", lineNo, kv)
			}
			switch key {
			case "nbf", "expires":
				ts, err := time.Parse(time.RFC3339, val)
				if err != nil {
					return nil, fmt.Errorf("line %d: bad timestamp %q (want RFC 3339, e.g. 2026-09-01T00:00:00Z)", lineNo, kv)
				}
				if key == "nbf" {
					lim.NotBefore = ts
				} else {
					lim.Expires = ts
				}
			case "rps", "burst", "bps", "bburst":
				v, perr := strconv.ParseFloat(val, 64)
				if perr != nil || v < 0 {
					return nil, fmt.Errorf("line %d: bad setting %q (want k=N, N ≥ 0)", lineNo, kv)
				}
				switch key {
				case "rps":
					lim.RPS = v
				case "burst":
					lim.Burst = v
				case "bps":
					lim.BytesPerSec = v
				case "bburst":
					lim.ByteBurst = v
				}
			default:
				return nil, fmt.Errorf("line %d: unknown setting %q (want rps, burst, bps, bburst, nbf, or expires)", lineNo, kv)
			}
		}
		if !lim.NotBefore.IsZero() && !lim.Expires.IsZero() && !lim.NotBefore.Before(lim.Expires) {
			return nil, fmt.Errorf("line %d: empty validity window (nbf %s is not before expires %s)",
				lineNo, lim.NotBefore.Format(time.RFC3339), lim.Expires.Format(time.RFC3339))
		}
		ts.Grant(token, scope, lim)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if ts.Len() == 0 {
		return nil, fmt.Errorf("no tokens (an empty token file would lock every client out; serve without -tokens for open mode)")
	}
	return ts, nil
}

// bearerToken extracts the Authorization: Bearer credential.
func bearerToken(r *http.Request) (string, bool) {
	h := r.Header.Get("Authorization")
	tok, ok := strings.CutPrefix(h, "Bearer ")
	if !ok || tok == "" {
		return "", false
	}
	return tok, true
}

// admit enforces the token table for one request: 401 for a missing or
// unknown token, 403 for a known token short of the route's scope, 429
// with Retry-After when a quota bucket runs dry. A false return means
// the rejection has been written. Probes (/healthz, /readyz) and
// /metrics never pass through admit — they are registered outside the
// authed routes, because orchestrators and scrapers do not carry
// tenant credentials and a daemon that cannot be probed gets restarted.
func (ts *TokenSet) admit(w http.ResponseWriter, r *http.Request, need Scope) bool {
	tok, ok := bearerToken(r)
	if !ok {
		w.Header().Set("WWW-Authenticate", `Bearer realm="stored"`)
		http.Error(w, "storenet: missing Authorization: Bearer token", http.StatusUnauthorized)
		return false
	}
	e := ts.tokens[tok]
	if e == nil {
		w.Header().Set("WWW-Authenticate", `Bearer realm="stored", error="invalid_token"`)
		http.Error(w, "storenet: unknown token", http.StatusUnauthorized)
		return false
	}
	// An expired or not-yet-valid token is indistinguishable from an
	// unknown one on purpose: 401 tells the client to fetch fresh
	// credentials, and the daemon does not leak which tokens exist
	// outside their windows.
	if !e.validAt(time.Now()) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="stored", error="invalid_token"`)
		http.Error(w, "storenet: token outside its validity window", http.StatusUnauthorized)
		return false
	}
	if e.scope&need != need {
		http.Error(w, fmt.Sprintf("storenet: token grants %s, route needs %s", e.scope, need),
			http.StatusForbidden)
		return false
	}
	if ok, wait := e.reqs.take(1); !ok {
		tooManyRequests(w, wait)
		return false
	}
	// Byte quota charges the declared upload size before the body is
	// read, so an over-quota PUT costs the daemon a header parse, not a
	// 256 MiB read. Responses are not charged: Get traffic is bounded by
	// the request bucket and blobs are small.
	if n := r.ContentLength; n > 0 {
		if ok, wait := e.bytes.take(float64(n)); !ok {
			tooManyRequests(w, wait)
			return false
		}
	}
	return true
}

// tooManyRequests writes the 429 with a ceil-seconds Retry-After (the
// delta-seconds form every client library parses). Minimum 1: a
// sub-second wait rounded to 0 would invite an immediate retry, the one
// thing a throttled client must not do.
func tooManyRequests(w http.ResponseWriter, wait time.Duration) {
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, "storenet: rate limit exceeded", http.StatusTooManyRequests)
}
