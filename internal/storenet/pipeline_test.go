package storenet

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"golatest/internal/store"
)

// TestWarmRemoteGetSingleDecode is the single-validation pipeline's
// instrumented proof: a warm remote Get costs exactly one blob decode
// end-to-end on the client — the wire body is validated once by
// ValidateBlobBytes and the resulting proof is written to the cache
// tier verbatim, with no second parse on the PutValidated side. The
// store's decode-pass counter (every parseBlob call, any container,
// process-wide) is the witness.
func TestWarmRemoteGetSingleDecode(t *testing.T) {
	k := testKey(t, 0)
	wire, err := store.EncodeBlobV3(k, testResult(0))
	if err != nil {
		t.Fatal(err)
	}
	// A dumb byte server, not a daemon: the daemon's own read path
	// would add its decode to the process-wide counter and hide the
	// client's count. This serves the container the way any v3-aware
	// peer would — bytes verbatim, octet-stream.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(wire)
	}))
	defer srv.Close()

	cache, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := newClient(t, srv.URL, cache)

	before := store.DecodePasses()
	res, ok := c.Get(k)
	if !ok || res.DeviceName != "a100[0]" {
		t.Fatalf("remote Get = %+v ok=%v", res, ok)
	}
	if got := store.DecodePasses() - before; got != 1 {
		t.Fatalf("warm remote Get cost %d decode passes, want exactly 1", got)
	}

	// The cache tier holds the wire bytes verbatim — the zero-copy half
	// of the single-validation contract.
	disk, err := os.ReadFile(filepath.Join(cache.Dir(), k.Digest+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(disk, wire) {
		t.Fatal("cache tier blob differs from the validated wire bytes")
	}

	// The now-local blob serves through the cache tier with one decode
	// (the local tier's own validating read) and no network traffic.
	srv.Close()
	before = store.DecodePasses()
	if res, ok := c.Get(k); !ok || res.DeviceName != "a100[0]" {
		t.Fatalf("cache-tier Get = %+v ok=%v", res, ok)
	}
	if got := store.DecodePasses() - before; got != 1 {
		t.Fatalf("cache-tier Get cost %d decode passes, want exactly 1", got)
	}
}

// TestWarmRemoteGetDecodeBudgetWithDaemon extends the proof across the
// full daemon round trip: end to end, a warm remote Get is exactly two
// decodes process-wide — the daemon's validating read and the client's
// wire validation — where the pre-ValidatedBlob pipeline spent a third
// on re-parsing inside the cache heal.
func TestWarmRemoteGetDecodeBudgetWithDaemon(t *testing.T) {
	backing, srv := newDaemon(t)
	k := testKey(t, 0)
	if err := backing.Put(k, testResult(0)); err != nil {
		t.Fatal(err)
	}
	cache, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := newClient(t, srv.URL, cache)

	before := store.DecodePasses()
	if res, ok := c.Get(k); !ok || res.DeviceName != "a100[0]" {
		t.Fatalf("remote Get = %+v ok=%v", res, ok)
	}
	if got := store.DecodePasses() - before; got != 2 {
		t.Fatalf("daemon round trip cost %d decode passes, want exactly 2 (server read + client validation)", got)
	}
	// And the tiers hold identical bytes.
	want, err := os.ReadFile(filepath.Join(backing.Dir(), k.Digest+".json"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(cache.Dir(), k.Digest+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("cache tier diverged from the daemon's disk bytes")
	}
}
