package storenet

import (
	"fmt"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"golatest/internal/store"
)

// TestStoredLoadConcurrent hammers one authed daemon with many
// concurrent clients running a mixed Get/Put/lease workload and then
// audits the store for lost writes: every key any client successfully
// Put must be present and validate. It doubles as the latency
// benchmark — the p50/p99 lines it logs are scraped by
// scripts/bench_smoke.sh into BENCH_campaign.json.
//
// STORED_LOAD_CLIENTS overrides the client count (CI runs it reduced;
// the default is the full 100-tenant slam).
func TestStoredLoadConcurrent(t *testing.T) {
	clients := 100
	if v := os.Getenv("STORED_LOAD_CLIENTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("STORED_LOAD_CLIENTS=%q: want a positive integer", v)
		}
		clients = n
	}
	const opsPerClient = 10

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	auth := NewTokenSet()
	for i := 0; i < clients; i++ {
		// Every tenant gets its own write-scope token, unlimited rate:
		// this test measures correctness and latency under contention,
		// not throttling (auth_test.go owns the 429 paths).
		auth.Grant(fmt.Sprintf("tenant-%03d", i), ScopeWrite, TokenLimits{})
	}
	srv := NewServerWith(st, ServerOptions{Auth: auth})
	hs := httptest.NewServer(srv)
	defer hs.Close()

	// Precompute every key and result up front — store.KeyFor needs
	// t.Fatal on error, which must not run inside worker goroutines.
	type work struct {
		key store.Key
	}
	jobs := make([][]work, clients)
	for i := range jobs {
		jobs[i] = make([]work, opsPerClient)
		for j := range jobs[i] {
			jobs[i][j] = work{key: testKey(t, i*opsPerClient+j)}
		}
	}
	contended := testKey(t, clients*opsPerClient) // one digest every client fights over

	errs := make(chan error, clients*opsPerClient)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := NewClient(hs.URL, ClientOptions{
				Token:        fmt.Sprintf("tenant-%03d", i),
				RetryBackoff: time.Millisecond,
			})
			if err != nil {
				errs <- fmt.Errorf("client %d: %v", i, err)
				return
			}
			owner := fmt.Sprintf("worker-%03d", i)
			for j, w := range jobs[i] {
				instance := i*opsPerClient + j
				if err := c.Put(w.key, testResult(instance)); err != nil {
					errs <- fmt.Errorf("client %d put %d: %v", i, j, err)
					continue
				}
				// Read back through the network path; a fresh write must
				// be a validated hit, never a miss.
				got, ok := c.Get(w.key)
				if !ok {
					errs <- fmt.Errorf("client %d: lost read-after-write for op %d", i, j)
				} else if got.DeviceName != testResult(instance).DeviceName {
					errs <- fmt.Errorf("client %d op %d: got %q", i, j, got.DeviceName)
				}
				// Every third op also contends on one shared lease; the
				// server must arbitrate exactly-once semantics under load.
				if j%3 == 0 {
					lease, ok, err := c.TryAcquire(contended.Digest, owner, time.Minute)
					if err != nil {
						errs <- fmt.Errorf("client %d acquire: %v", i, err)
					} else if ok {
						if err := lease.Release(); err != nil {
							errs <- fmt.Errorf("client %d release: %v", i, err)
						}
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Zero lost writes: the store must hold exactly one blob per
	// successful Put, and each must validate back to its result.
	if got, want := st.Len(), clients*opsPerClient; got != want {
		t.Errorf("store holds %d blobs, want %d (lost writes)", got, want)
	}
	for i := 0; i < clients; i++ {
		for j := 0; j < opsPerClient; j++ {
			w := jobs[i][j]
			res, ok := st.Get(w.key)
			if !ok {
				t.Errorf("blob %d/%d lost", i, j)
			} else if want := testResult(i*opsPerClient + j).DeviceName; res.DeviceName != want {
				t.Errorf("blob %d/%d: device %q, want %q", i, j, res.DeviceName, want)
			}
		}
	}

	// Latency summary from the /metrics histograms; bench_smoke.sh greps
	// these exact tokens.
	t.Logf("stored_load_clients=%d stored_p50_ns=%d stored_p99_ns=%d",
		clients, srv.LatencyQuantileNs(0.5), srv.LatencyQuantileNs(0.99))
}
