package storenet

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"golatest/internal/store"
)

func newClient(t *testing.T, srvURL string, cache *store.Store) *Client {
	t.Helper()
	c, err := NewClient(srvURL, ClientOptions{Cache: cache, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClientURLValidation(t *testing.T) {
	for _, bad := range []string{"", "host:8417", "ftp://host", "http://"} {
		if _, err := NewClient(bad, ClientOptions{}); err == nil {
			t.Errorf("NewClient(%q) accepted", bad)
		}
	}
	c, err := NewClient("http://example.test:8417/", ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Location() != "http://example.test:8417" {
		t.Fatalf("Location = %q, want the trailing slash trimmed", c.Location())
	}
}

func TestClientGetPutRoundTrip(t *testing.T) {
	_, srv := newDaemon(t)
	c := newClient(t, srv.URL, nil)
	k := testKey(t, 0)

	if _, ok := c.Get(k); ok {
		t.Fatal("cold Get hit")
	}
	if c.Has(k) {
		t.Fatal("cold Has true")
	}
	if err := c.Put(k, testResult(0)); err != nil {
		t.Fatal(err)
	}
	res, ok := c.Get(k)
	if !ok || res.DeviceName != "a100[0]" {
		t.Fatalf("warm Get = %+v ok=%v", res, ok)
	}
	if !c.Has(k) {
		t.Fatal("warm Has false")
	}
	ct := c.Counters()
	if ct.Hits != 1 || ct.Misses != 1 || ct.Puts != 1 || ct.Corrupt != 0 {
		t.Fatalf("counters = %+v", ct)
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("Len = %d", got)
	}
	if ix := c.Index(); len(ix) != 1 || ix[0].Digest != k.Digest {
		t.Fatalf("Index = %+v", ix)
	}
}

// TestClientCacheTier: a remote hit heals the local tier, after which
// reads need no daemon at all; Put lands in both tiers.
func TestClientCacheTier(t *testing.T) {
	backing, srv := newDaemon(t)
	k := testKey(t, 0)
	if err := backing.Put(k, testResult(0)); err != nil {
		t.Fatal(err)
	}

	cache, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := newClient(t, srv.URL, cache)
	if _, ok := c.Get(k); !ok {
		t.Fatal("remote hit failed")
	}
	if !cache.Has(k) {
		t.Fatal("remote hit did not heal the local tier")
	}
	// The healed bytes are the canonical ones.
	remote, _ := backing.GetRaw(k.Digest)
	local, ok := cache.GetRaw(k.Digest)
	if !ok || !bytes.Equal(remote, local) {
		t.Fatal("healed local blob differs from the daemon's bytes")
	}

	// With the daemon gone, the local tier still serves the key.
	srv.Close()
	if res, ok := c.Get(k); !ok || res.DeviceName != "a100[0]" {
		t.Fatalf("local-tier Get after daemon death: %+v ok=%v", res, ok)
	}

	// Writes no longer need the daemon: with a local tier, a Put that
	// cannot reach it defers — the blob lands locally and the pending
	// journal records it for Reconcile.
	k1 := testKey(t, 1)
	if err := c.Put(k1, testResult(1)); err != nil {
		t.Fatalf("deferred Put with the daemon down: %v", err)
	}
	if !cache.Has(k1) {
		t.Fatal("deferred Put did not land in the local tier")
	}
	rs := c.Resilience()
	if rs.Deferred != 1 || rs.Pending != 1 {
		t.Fatalf("Resilience after deferred Put = %+v, want Deferred=1 Pending=1", rs)
	}
}

// TestClientCorruptResponseIsMiss is the regression for the
// recompute-and-heal contract: a digest-mismatched, tampered, or
// truncated response body must be a miss (Corrupt counter), never an
// error, never a wrong result, and never pollute the local tier —
// mirroring the local corrupt-blob path.
func TestClientCorruptResponseIsMiss(t *testing.T) {
	k := testKey(t, 0)
	other := testKey(t, 1)
	good, err := store.EncodeBlob(k, testResult(0))
	if err != nil {
		t.Fatal(err)
	}
	wrongKeyBlob, err := store.EncodeBlob(other, testResult(1))
	if err != nil {
		t.Fatal(err)
	}
	// Tampering that breaks the envelope (here: the schema field) is
	// caught by validation; note payload edits inside an intact envelope
	// are invisible by design — the digest addresses the campaign's
	// inputs, not a hash of the bytes — which is why the trust boundary
	// is "only Put validated blobs", enforced by the server.
	tampered := bytes.Replace(good, []byte(`"schema"`), []byte(`"scheme"`), 1)
	// The compressed container has its own failure modes: a stream cut
	// before the gzip footer (CRC never verified) and a bit flip inside
	// the deflate stream.
	compGood, err := store.EncodeBlobCompressed(k, testResult(0))
	if err != nil {
		t.Fatal(err)
	}
	compFlipped := append([]byte(nil), compGood...)
	compFlipped[len(compFlipped)/2] ^= 0x40

	// mode selects the injected corruption; "ok" serves the real bytes.
	var mode atomic.Value
	mode.Store("ok")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch mode.Load() {
		case "truncate":
			// Announce the full length, deliver half: the client sees the
			// transfer die mid-body.
			w.Header().Set("Content-Length", strconv.Itoa(len(good)))
			_, _ = w.Write(good[:len(good)/2])
		case "tamper":
			_, _ = w.Write(tampered)
		case "wrong-key":
			_, _ = w.Write(wrongKeyBlob)
		case "gzip-truncate":
			_, _ = w.Write(compGood[:len(compGood)-4])
		case "gzip-bitflip":
			_, _ = w.Write(compFlipped)
		default:
			_, _ = w.Write(good)
		}
	}))
	defer srv.Close()

	cache, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := newClient(t, srv.URL, cache)

	for i, m := range []string{"truncate", "tamper", "wrong-key", "gzip-truncate", "gzip-bitflip"} {
		mode.Store(m)
		if res, ok := c.Get(k); ok {
			t.Fatalf("%s: Get returned %+v, want miss", m, res)
		}
		if got := c.Counters().Corrupt; got != int64(i+1) {
			t.Fatalf("%s: Corrupt = %d, want %d", m, got, i+1)
		}
		if cache.Has(k) {
			t.Fatalf("%s: corrupt body healed into the local tier", m)
		}
	}

	// The miss is recoverable: the very next clean response hits and
	// heals — recompute-and-heal end to end.
	mode.Store("ok")
	res, ok := c.Get(k)
	if !ok || res.DeviceName != "a100[0]" {
		t.Fatalf("clean Get after corruption: %+v ok=%v", res, ok)
	}
	if !cache.Has(k) {
		t.Fatal("clean Get did not heal the local tier")
	}
}

// TestClientRetriesIdempotent: connection-level failures and 5xx on
// GET/PUT are retried; the request succeeds within the attempt budget.
func TestClientRetriesIdempotent(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inner := NewServer(st)
	var failures atomic.Int64
	failures.Store(2) // first two requests fail, regardless of verb
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failures.Add(-1) >= 0 {
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := newClient(t, srv.URL, nil)
	k := testKey(t, 0)
	if err := c.Put(k, testResult(0)); err != nil {
		t.Fatalf("Put did not survive transient 503s: %v", err)
	}
	failures.Store(2)
	if _, ok := c.Get(k); !ok {
		t.Fatal("Get did not survive transient 503s")
	}
}

// TestClientLeases: the remote lease handle behaves like a local one —
// exclusive, renewable, stealable after expiry, token-guarded.
func TestClientLeases(t *testing.T) {
	_, srv := newDaemon(t)
	a := newClient(t, srv.URL, nil)
	b := newClient(t, srv.URL, nil)
	digest := testKey(t, 0).Digest

	lease, ok, err := a.TryAcquire(digest, "host-a", time.Minute)
	if err != nil || !ok || lease.Stolen() {
		t.Fatalf("acquire: ok=%v err=%v", ok, err)
	}
	if lease.Owner() != "host-a" || lease.Token() == "" {
		t.Fatalf("lease identity: owner=%q token=%q", lease.Owner(), lease.Token())
	}
	if _, ok, err := b.TryAcquire(digest, "host-b", time.Minute); err != nil || ok {
		t.Fatalf("contended acquire: ok=%v err=%v, want busy", ok, err)
	}
	if owner, held := b.LeaseHolder(digest); !held || owner != "host-a" {
		t.Fatalf("holder = %q/%v", owner, held)
	}
	if err := lease.Renew(time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := lease.Release(); err != nil {
		t.Fatal(err)
	}
	if _, held := b.LeaseHolder(digest); held {
		t.Fatal("lease held after release")
	}

	// Steal: host-a "crashes" with a short unrenewed claim.
	if _, ok, err := a.TryAcquire(digest, "host-a", 2*time.Millisecond); err != nil || !ok {
		t.Fatalf("short acquire: ok=%v err=%v", ok, err)
	}
	time.Sleep(10 * time.Millisecond)
	stolen, ok, err := b.TryAcquire(digest, "host-b", time.Minute)
	if err != nil || !ok || !stolen.Stolen() {
		t.Fatalf("steal: ok=%v stolen=%v err=%v", ok, stolen != nil && stolen.Stolen(), err)
	}
	// The displaced handle's renew reports the loss; its release leaves
	// the stealer's claim alone.
	if err := stolen.Renew(time.Minute); err != nil {
		t.Fatal(err)
	}
	if owner, held := a.LeaseHolder(digest); !held || owner != "host-b" {
		t.Fatalf("post-steal holder = %q/%v", owner, held)
	}
}

func TestClientGC(t *testing.T) {
	backing, srv := newDaemon(t)
	for i := 0; i < 2; i++ {
		if err := backing.Put(testKey(t, i), testResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	c := newClient(t, srv.URL, nil)
	gs, err := c.GC(store.GCPolicy{MaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if gs.Evicted != 2 || backing.Len() != 0 {
		t.Fatalf("remote GC: %+v, %d blobs left", gs, backing.Len())
	}
}

// TestClientInteropWithLocalHandles: a blob PUT through the wire is a
// first-class citizen of the daemon's directory — a fresh local handle
// reads it, and its bytes match what a local Put would have written.
func TestClientInteropWithLocalHandles(t *testing.T) {
	backing, srv := newDaemon(t)
	c := newClient(t, srv.URL, nil)
	k := testKey(t, 0)
	if err := c.Put(k, testResult(0)); err != nil {
		t.Fatal(err)
	}

	local, err := store.Open(backing.Dir())
	if err != nil {
		t.Fatal(err)
	}
	res, ok := local.Get(k)
	if !ok || res.DeviceName != "a100[0]" {
		t.Fatalf("local handle Get = %+v ok=%v", res, ok)
	}
	want, err := store.EncodeBlobV3(k, testResult(0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(backing.Dir(), k.Digest+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("wire-written blob differs from a local Put's bytes")
	}
}

// TestClientPutFallsBackToIdentityForLegacyDaemon: a pre-v3 daemon
// rejects the binary container as unparseable (400); the client must
// fall back to the canonical identity bytes once, so a rolling
// upgrade that reaches workers before the store daemon keeps writing.
func TestClientPutFallsBackToIdentityForLegacyDaemon(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inner := NewServer(st)
	var v3Puts, identityPuts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut {
			body, err := io.ReadAll(r.Body)
			if err != nil {
				t.Error(err)
			}
			if store.ContainerOf(body) != store.ContainerV1 {
				// What an older daemon's decoder does with bytes it cannot
				// parse as its native containers.
				v3Puts.Add(1)
				http.Error(w, "store: blob: invalid blob: invalid character '\\xb3'",
					http.StatusBadRequest)
				return
			}
			identityPuts.Add(1)
			r2 := r.Clone(r.Context())
			r2.Body = io.NopCloser(bytes.NewReader(body))
			inner.ServeHTTP(w, r2)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := newClient(t, srv.URL, nil)
	k := testKey(t, 0)
	if err := c.Put(k, testResult(0)); err != nil {
		t.Fatalf("Put did not fall back to identity bytes: %v", err)
	}
	if v3Puts.Load() != 1 || identityPuts.Load() != 1 {
		t.Fatalf("puts: %d v3, %d identity; want one attempt each", v3Puts.Load(), identityPuts.Load())
	}
	if res, ok := c.Get(k); !ok || res.DeviceName != "a100[0]" {
		t.Fatalf("blob unreadable after fallback put: %+v ok=%v", res, ok)
	}
	// A genuinely invalid blob still fails: the fallback is one retry,
	// not an error-masking loop — covered by the 400 the identity body
	// earns from the real server in TestServerPutRejectsInvalidBlobs.
}
