package storenet

import (
	"sync"
	"time"
)

// Circuit breaker defaults; ClientOptions overrides both.
const (
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 2 * time.Second
)

// breaker states. Closed passes traffic; open fast-fails everything
// until the cooldown elapses; half-open admits exactly one probe whose
// outcome decides between closed and another open period.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a consecutive-failure circuit breaker over the client's
// network attempts. Its job is latency containment, not correctness:
// once the daemon is evidently down, every further request would burn a
// full timeout-and-retry cycle per store operation and stall the whole
// worker pool — the breaker converts those stalls into immediate
// ErrUnavailable failures, which the tiered client absorbs in degraded
// mode and the fleet's store-error policy survives.
type breaker struct {
	threshold int // consecutive failures that open the circuit; < 0 disables
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	// onTransition, when set, observes every state edge with the
	// consecutive-failure count at the moment of the transition. It is
	// called under the breaker lock: keep it cheap (count + log) and
	// never reenter the breaker from it. Set once, before first use.
	onTransition func(from, to int, fails int)

	mu       sync.Mutex
	state    int
	fails    int
	openedAt time.Time
}

// breakerStateName renders a breaker state for logs and telemetry.
func breakerStateName(s int) string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// transition moves the state machine and notifies the observer. Caller
// holds b.mu.
func (b *breaker) transition(to int) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.onTransition != nil {
		b.onTransition(from, to, b.fails)
	}
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if threshold == 0 {
		threshold = defaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether an attempt may touch the network. While open it
// fast-fails everything until the cooldown elapses, then admits exactly
// one half-open probe; while the probe is in flight everyone else keeps
// fast-failing (a thundering herd against a barely-recovered daemon is
// how outages restart).
func (b *breaker) allow() bool {
	if b.threshold < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.transition(breakerHalfOpen)
			return true
		}
		return false
	default: // half-open: the probe is already out
		return false
	}
}

// isOpen peeks at the circuit without mutating it: true only while the
// circuit is open and its cooldown has not yet elapsed. Once the
// cooldown passes the answer flips to false — the next allow() would
// admit a half-open probe, so callers routing around an "open" member
// (the replicating router) resume offering it traffic at exactly the
// moment the breaker itself would.
func (b *breaker) isOpen() bool {
	if b.threshold < 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerOpen && b.now().Sub(b.openedAt) < b.cooldown
}

// record feeds one attempt's outcome. It reports whether this outcome
// closed a previously open circuit — the recovery edge the client's
// background reconciler hangs off.
func (b *breaker) record(ok bool) (recovered bool) {
	if b.threshold < 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		recovered = b.state != breakerClosed
		b.transition(breakerClosed)
		b.fails = 0
		return recovered
	}
	b.fails++
	// A failed half-open probe reopens immediately; in the closed state
	// the consecutive-failure threshold decides. Failures recorded while
	// already open (attempts that were in flight when the circuit
	// tripped) change nothing — they are evidence of the same outage,
	// not a new one, and must not extend the cooldown.
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.fails >= b.threshold) {
		b.transition(breakerOpen)
		b.openedAt = b.now()
	}
	return false
}

// reset forces the circuit closed. An explicit Reconcile calls it: the
// operator (or recovery path) is asserting the remote is back, and the
// replay's own requests will re-open the circuit if it is not.
func (b *breaker) reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.transition(breakerClosed)
	b.fails = 0
}
