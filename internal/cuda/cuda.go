// Package cuda is the host-side runtime shim over the simulated device:
// the same handful of calls the real LATEST tool makes against the CUDA
// runtime — kernel launch, device synchronise, host sleep, and device
// global-timer reads — expressed against internal/sim/gpu.
//
// Keeping this layer separate from the device model means the methodology
// code in internal/core reads like the paper's Algorithm 2: launch,
// usleep, set frequency (via nvml), synchronise, analyse.
package cuda

import (
	"fmt"
	"time"

	"golatest/internal/sim/clock"
	"golatest/internal/sim/gpu"
)

// Context binds a host thread to one device, like a CUDA context.
type Context struct {
	clk *clock.Clock
	dev *gpu.Device
}

// NewContext creates a context on the given device.
func NewContext(dev *gpu.Device) (*Context, error) {
	if dev == nil {
		return nil, fmt.Errorf("cuda: nil device")
	}
	return &Context{clk: dev.Clock(), dev: dev}, nil
}

// Device returns the underlying simulated device.
func (c *Context) Device() *gpu.Device { return c.dev }

// Clock returns the host clock driving this context.
func (c *Context) Clock() *clock.Clock { return c.clk }

// LaunchKernel enqueues the microbenchmark kernel asynchronously and
// returns its handle. The host clock pays the launch overhead.
func (c *Context) LaunchKernel(spec gpu.KernelSpec) (*gpu.Kernel, error) {
	return c.dev.Launch(spec)
}

// LaunchKernelWithSink enqueues the kernel with a streaming sample sink:
// iteration timings flow into sink at Synchronize instead of
// materialising on the kernel, sparing the per-block trace allocations.
// Callers that only need summary statistics (warm-up loops, phase-1
// characterisation) use this path.
func (c *Context) LaunchKernelWithSink(spec gpu.KernelSpec, sink gpu.SampleSink) (*gpu.Kernel, error) {
	return c.dev.LaunchWithSink(spec, sink)
}

// DeviceSynchronize blocks (in virtual time) until all launched kernels
// complete.
func (c *Context) DeviceSynchronize() {
	c.dev.Synchronize()
}

// Usleep suspends the host thread for the given number of microseconds,
// mirroring the usleep(delay) between benchmark launch and the frequency
// change call in Algorithm 2.
func (c *Context) Usleep(us int64) {
	if us < 0 {
		return
	}
	c.clk.Sleep(time.Duration(us) * time.Microsecond)
}

// Sleep suspends the host thread for d.
func (c *Context) Sleep(d time.Duration) {
	if d > 0 {
		c.clk.Sleep(d)
	}
}

// globalTimerReadCost is the host-visible cost of reading the device
// global timer (a tiny kernel / driver query).
const globalTimerReadCost = 2 * time.Microsecond

// GlobalTimestamp reads the device global timer "now". The read costs a
// couple of microseconds of host time, and the returned value carries the
// device timer's quantisation — both properties the paper's footnote 1
// calls out.
func (c *Context) GlobalTimestamp() int64 {
	c.clk.Sleep(globalTimerReadCost)
	return c.dev.DeviceTimeAt(c.clk.Now())
}

// HostTimestamp reads the host clock (clock_gettime in Algorithm 2).
func (c *Context) HostTimestamp() int64 { return c.clk.Now() }
