package cuda

import (
	"testing"
	"time"

	"golatest/internal/sim/clock"
	"golatest/internal/sim/gpu"
)

type fixedModel struct{ bus, dur int64 }

func (m fixedModel) Sample(init, target float64, r *clock.Rand) gpu.Transition {
	return gpu.Transition{BusDelayNs: m.bus, DurationNs: m.dur}
}

func newCtx(t *testing.T) (*Context, *clock.Clock) {
	t.Helper()
	clk := clock.New()
	dev, err := gpu.New(gpu.Config{
		Name:          "ctx-gpu",
		SMCount:       2,
		FreqsMHz:      []float64{500, 1000},
		ClockOffsetNs: 42_000_000,
		Latency:       fixedModel{bus: 1000, dur: 1_000_000},
		Seed:          3,
	}, clk)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(dev)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, clk
}

func TestNewContextNil(t *testing.T) {
	if _, err := NewContext(nil); err == nil {
		t.Fatal("nil device accepted")
	}
}

func TestUsleepAdvancesClock(t *testing.T) {
	ctx, clk := newCtx(t)
	before := clk.Now()
	ctx.Usleep(250)
	if got := clk.Now() - before; got != 250_000 {
		t.Fatalf("Usleep(250) advanced %d ns, want 250000", got)
	}
	ctx.Usleep(-5) // negative must be a no-op
	if got := clk.Now() - before; got != 250_000 {
		t.Fatalf("negative Usleep advanced the clock")
	}
}

func TestSleep(t *testing.T) {
	ctx, clk := newCtx(t)
	before := clk.Now()
	ctx.Sleep(3 * time.Millisecond)
	if got := clk.Now() - before; got != 3_000_000 {
		t.Fatalf("Sleep advanced %d ns", got)
	}
}

func TestGlobalTimestampQuantisedAndOffset(t *testing.T) {
	ctx, clk := newCtx(t)
	clk.Advance(7_777_777)
	ts := ctx.GlobalTimestamp()
	if ts%1000 != 0 {
		t.Fatalf("GlobalTimestamp not quantised: %d", ts)
	}
	// Device time = host time + 42 ms (quantised); the read itself costs
	// host time, so compare against the post-read host clock.
	want := ctx.Device().DeviceTimeAt(clk.Now())
	if ts != want {
		t.Fatalf("GlobalTimestamp = %d, want %d", ts, want)
	}
}

func TestLaunchAndSynchronize(t *testing.T) {
	ctx, clk := newCtx(t)
	k, err := ctx.LaunchKernel(gpu.KernelSpec{Iters: 10, CyclesPerIter: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if k.Done() {
		t.Fatal("kernel done before synchronize")
	}
	before := clk.Now()
	ctx.DeviceSynchronize()
	if !k.Done() {
		t.Fatal("kernel not done after synchronize")
	}
	if clk.Now() <= before {
		t.Fatal("synchronize consumed no virtual time")
	}
}

func TestHostTimestamp(t *testing.T) {
	ctx, clk := newCtx(t)
	clk.Advance(123)
	if got := ctx.HostTimestamp(); got != clk.Now() {
		t.Fatalf("HostTimestamp = %d, want %d", got, clk.Now())
	}
}
