package experiments

import (
	"sync"
	"testing"

	"golatest/internal/core"
	"golatest/internal/hwprofile"
)

// TestCampaignSingleflight is the regression test for the check-then-act
// race the cache used to have: concurrent callers of the same campaign
// key must collapse onto one execution, all observing the same result.
func TestCampaignSingleflight(t *testing.T) {
	s := NewSuite(Options{Scale: ScaleQuick, Seed: 99})
	p, err := hwprofile.ByKey("a100")
	if err != nil {
		t.Fatal(err)
	}

	const callers = 8
	results := make([]*core.Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Campaign(p)
		}(i)
	}
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] == nil || results[i] != results[0] {
			t.Fatalf("caller %d observed a different result pointer", i)
		}
	}
	if got := s.runs.Load(); got != 1 {
		t.Fatalf("campaign executed %d times under concurrent callers, want exactly 1", got)
	}

	// A later call still hits the cache, not a new run.
	again, err := s.Campaign(p)
	if err != nil {
		t.Fatal(err)
	}
	if again != results[0] || s.runs.Load() != 1 {
		t.Fatal("sequential call after the flight re-ran the campaign")
	}
}
