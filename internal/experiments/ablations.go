package experiments

import (
	"math"

	"golatest/internal/core"
	"golatest/internal/nvml"
	"golatest/internal/ptp"
	"golatest/internal/sim/clock"
	"golatest/internal/sim/gpu"
	"golatest/internal/stats"
)

// The ablation studies quantify the design choices DESIGN.md calls out:
// the transition-shape sensitivity of the detector, the §V-A choice of a
// 2σ population band over FTaLaT's confidence interval, and the effect
// of timer-synchronisation error on the measured latencies.

// constModel injects a fixed switching latency for ablation devices.
type constModel struct{ busNs, durNs int64 }

func (m constModel) Sample(init, target float64, r *clock.Rand) gpu.Transition {
	return gpu.Transition{BusDelayNs: m.busNs, DurationNs: m.durNs}
}

// ablationDevice builds a plain two-clock device with a known constant
// latency; mutate tweaks the config before construction.
func ablationDevice(injectNs int64, seed uint64, mutate func(*gpu.Config)) (*nvml.Device, error) {
	cfg := gpu.Config{
		Name:     "ablation-gpu",
		SMCount:  6,
		FreqsMHz: []float64{600, 900, 1200},
		Latency:  constModel{busNs: 50_000, durNs: injectNs - 50_000},
		Seed:     seed,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	dev, err := gpu.New(cfg, clock.New())
	if err != nil {
		return nil, err
	}
	lib, err := nvml.New(dev)
	if err != nil {
		return nil, err
	}
	return lib.DeviceHandleByIndex(0)
}

// ablationConfig is the shared campaign shape of the ablations.
func ablationConfig(n int) core.Config {
	return core.Config{
		Frequencies:      []float64{600, 1200},
		Blocks:           3,
		MinMeasurements:  n,
		MaxMeasurements:  n,
		MaxLatencyHintNs: 40_000_000,
	}
}

// RampAblationRow quantifies the detector against one transition shape.
type RampAblationRow struct {
	// RampSteps is the number of intermediate clock plateaus during the
	// transition (0 = hold-then-step, the paper's implicit model).
	RampSteps int
	// MeanErrMs and MaxErrMs are measured − injected over accepted runs.
	MeanErrMs float64
	MaxErrMs  float64
	// FailShare is the share of phase-2 runs discarded (no detection or
	// failed confirmation — §IV's "adapting" case).
	FailShare float64
}

// RampAblation measures a fixed 20 ms transition under increasingly
// gradual ramp shapes. Gradual ramps create iterations at intermediate
// clocks; those can enter the target band early (small negative error) or
// fail confirmation (discards), which is exactly why the methodology
// keeps the workload iteration tiny and confirms with a tail population.
func RampAblation(rampSteps []int, n int) ([]RampAblationRow, error) {
	const injectNs = 20_000_000
	var rows []RampAblationRow
	for _, steps := range rampSteps {
		dev, err := ablationDevice(injectNs, 17, func(c *gpu.Config) {
			c.RampSteps = steps
		})
		if err != nil {
			return nil, err
		}
		r, err := core.NewRunner(dev, ablationConfig(n))
		if err != nil {
			return nil, err
		}
		p1, err := r.Phase1()
		if err != nil {
			return nil, err
		}
		pr, err := r.MeasurePair(core.Pair{InitMHz: 1200, TargetMHz: 600}, p1)
		if err != nil {
			return nil, err
		}
		row := RampAblationRow{RampSteps: steps, MaxErrMs: math.Inf(-1)}
		var sum float64
		for i, lat := range pr.Samples {
			err := lat - pr.Injected[i]
			sum += err
			if err > row.MaxErrMs {
				row.MaxErrMs = err
			}
		}
		if len(pr.Samples) > 0 {
			row.MeanErrMs = sum / float64(len(pr.Samples))
		}
		if pr.Attempts > 0 {
			row.FailShare = float64(pr.Failures) / float64(pr.Attempts)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// DetectionAblationRow compares the 2σ population band with FTaLaT's
// confidence-interval band on the same accelerator campaign.
type DetectionAblationRow struct {
	Mode string // "2-sigma" or "ci"
	// AcceptedShare is the fraction of phase-2 runs that produced a
	// latency.
	AcceptedShare float64
	// MeanErrMs is measured − injected over accepted runs (NaN if none).
	MeanErrMs float64
}

// DetectionAblation runs the same constant-latency campaign under both
// detection bands, demonstrating §V-A: with thousands of phase-1
// iterations the CI band collapses below the iteration noise and
// detection starves.
func DetectionAblation(n int) ([]DetectionAblationRow, error) {
	const injectNs = 15_000_000
	var rows []DetectionAblationRow
	for _, ci := range []bool{false, true} {
		dev, err := ablationDevice(injectNs, 23, nil)
		if err != nil {
			return nil, err
		}
		cfg := ablationConfig(n)
		cfg.CIDetection = ci
		r, err := core.NewRunner(dev, cfg)
		if err != nil {
			return nil, err
		}
		p1, err := r.Phase1()
		if err != nil {
			return nil, err
		}
		pr, err := r.MeasurePair(core.Pair{InitMHz: 1200, TargetMHz: 600}, p1)
		if err != nil {
			return nil, err
		}
		row := DetectionAblationRow{Mode: "2-sigma", MeanErrMs: math.NaN()}
		if ci {
			row.Mode = "ci"
		}
		if pr.Attempts > 0 {
			row.AcceptedShare = float64(len(pr.Samples)) / float64(pr.Attempts)
		}
		if len(pr.Samples) > 0 {
			var sum float64
			for i, lat := range pr.Samples {
				sum += lat - pr.Injected[i]
			}
			row.MeanErrMs = sum / float64(len(pr.Samples))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CoreCountRow is one row of the §V-A small-accelerator study: how the
// CI detection band fares as the number of concurrently measured cores
// grows (the phase-1 population scales with cores × iterations).
type CoreCountRow struct {
	Cores int
	// Phase1N is the phase-1 population size feeding the band.
	Phase1N int
	// CIAcceptedShare is the fraction of runs the CI band accepted.
	CIAcceptedShare float64
	// SigmaAcceptedShare is the 2σ band's share on the same device.
	SigmaAcceptedShare float64
}

// CoreCountStudy measures the CI band's viability across accelerator
// widths. The outcome is the strong form of the paper's footnote 1: on a
// device timer with ~1 µs refresh, the CI band (2·σ/√n) is already below
// the timer quantum at phase-1 populations of a few hundred iterations —
// a single core is enough to starve it — while the 2σ population band is
// width-independent. The gentler, width-driven degeneration §V-A
// describes (and the "TPU with a few tensor cores" exception) is visible
// only on fine-grained timers; CIDegeneration demonstrates it on the
// simulated CPU's nanosecond clock.
func CoreCountStudy(coreCounts []int, n int) ([]CoreCountRow, error) {
	const injectNs = 15_000_000
	var rows []CoreCountRow
	for _, cores := range coreCounts {
		row := CoreCountRow{Cores: cores}
		for _, ci := range []bool{true, false} {
			dev, err := ablationDevice(injectNs, 31, func(c *gpu.Config) {
				c.SMCount = cores
			})
			if err != nil {
				return nil, err
			}
			cfg := ablationConfig(n)
			cfg.Blocks = cores
			cfg.CIDetection = ci
			// Keep the per-block iteration count fixed so the phase-1
			// population scales with the core count, as §V-A describes.
			cfg.ItersPerKernel = 300
			r, err := core.NewRunner(dev, cfg)
			if err != nil {
				return nil, err
			}
			p1, err := r.Phase1()
			if err != nil {
				return nil, err
			}
			row.Phase1N = p1.Stats[600].Iter.N
			pr, err := r.MeasurePair(core.Pair{InitMHz: 1200, TargetMHz: 600}, p1)
			if err != nil {
				return nil, err
			}
			share := 0.0
			if pr.Attempts > 0 {
				share = float64(len(pr.Samples)) / float64(pr.Attempts)
			}
			if ci {
				row.CIAcceptedShare = share
			} else {
				row.SigmaAcceptedShare = share
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SyncAblationRow quantifies the timer-sync contribution to measurement
// error under an asymmetric link.
type SyncAblationRow struct {
	AsymmetryUs float64
	// MeanBiasMs is the mean of measured − injected; the classic PTP
	// estimator under one-sided extra delay biases offsets by half the
	// asymmetry, which surfaces here beyond the detection granularity.
	MeanBiasMs float64
}

// SyncAblation sweeps the host→device link asymmetry and reports the
// induced measurement bias.
func SyncAblation(asymUs []float64, n int) ([]SyncAblationRow, error) {
	const injectNs = 15_000_000
	var rows []SyncAblationRow
	for _, asym := range asymUs {
		dev, err := ablationDevice(injectNs, 29, nil)
		if err != nil {
			return nil, err
		}
		cfg := ablationConfig(n)
		cfg.PTP = ptp.Config{AsymmetryNs: asym * 1000}
		r, err := core.NewRunner(dev, cfg)
		if err != nil {
			return nil, err
		}
		p1, err := r.Phase1()
		if err != nil {
			return nil, err
		}
		pr, err := r.MeasurePair(core.Pair{InitMHz: 1200, TargetMHz: 600}, p1)
		if err != nil {
			return nil, err
		}
		var diffs []float64
		for i, lat := range pr.Samples {
			diffs = append(diffs, lat-pr.Injected[i])
		}
		rows = append(rows, SyncAblationRow{
			AsymmetryUs: asym,
			MeanBiasMs:  stats.Mean(diffs),
		})
	}
	return rows, nil
}
