package experiments

import (
	"fmt"
	"io"
	"math"

	"golatest/internal/core"
	"golatest/internal/hwprofile"
	"golatest/internal/report"
	"golatest/internal/stats"
)

// Table1Row is one column of the paper's Table I (hardware setup).
type Table1Row struct {
	Model        string
	Architecture string
	Driver       string
	SMCount      int
	MemFreqMHz   float64
	MaxSMFreqMHz float64
	NomSMFreqMHz float64
	MinSMFreqMHz float64
	FreqSteps    int
}

// Table1 reads the hardware setup from the profiles (no campaign needed).
func Table1() []Table1Row {
	var rows []Table1Row
	for _, p := range hwprofile.All() {
		cfg := p.Config
		rows = append(rows, Table1Row{
			Model:        cfg.Name,
			Architecture: cfg.Architecture,
			Driver:       cfg.Driver,
			SMCount:      cfg.SMCount,
			MemFreqMHz:   cfg.MemFreqMHz,
			MaxSMFreqMHz: cfg.MaxFreqMHz(),
			NomSMFreqMHz: p.NomFreqMHz,
			MinSMFreqMHz: cfg.MinFreqMHz(),
			FreqSteps:    len(cfg.FreqsMHz),
		})
	}
	return rows
}

// RenderTable1 writes Table I as Markdown.
func RenderTable1(w io.Writer, rows []Table1Row) error {
	header := []string{"Model", "Architecture", "SM [#]", "Driver",
		"Mem freq. [MHz]", "Max SM freq. [MHz]", "Nom SM freq. [MHz]",
		"Min SM freq. [MHz]", "SM freq. steps [#]"}
	var data [][]string
	for _, r := range rows {
		data = append(data, []string{
			r.Model, r.Architecture, fmt.Sprint(r.SMCount), r.Driver,
			fmt.Sprintf("%.0f", r.MemFreqMHz), fmt.Sprintf("%.0f", r.MaxSMFreqMHz),
			fmt.Sprintf("%.0f", r.NomSMFreqMHz), fmt.Sprintf("%.0f", r.MinSMFreqMHz),
			fmt.Sprint(r.FreqSteps),
		})
	}
	return report.MarkdownTable(w, header, data)
}

// Table2Row summarises one GPU's switching latencies like the paper's
// Table II: statistics of the per-pair worst cases (campaign maxima) and
// best cases (campaign minima), outliers removed.
type Table2Row struct {
	Model string

	WorstMinMs   float64
	WorstMinPair core.Pair
	WorstMeanMs  float64
	WorstMaxMs   float64
	WorstMaxPair core.Pair

	BestMinMs   float64
	BestMinPair core.Pair
	BestMeanMs  float64
	BestMaxMs   float64
	BestMaxPair core.Pair
}

// Table2 derives the summary from the three cached campaigns.
func (s *Suite) Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, p := range hwprofile.All() {
		res, err := s.Campaign(p)
		if err != nil {
			return nil, err
		}
		row, err := table2Row(res)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func table2Row(res *core.Result) (Table2Row, error) {
	row := Table2Row{Model: res.DeviceName}
	var worst, best []float64
	row.WorstMinMs, row.BestMinMs = math.Inf(1), math.Inf(1)
	row.WorstMaxMs, row.BestMaxMs = math.Inf(-1), math.Inf(-1)
	for _, pr := range res.Pairs {
		if pr.Skipped || pr.Summary.N == 0 {
			continue
		}
		w, b := pr.Summary.Max, pr.Summary.Min
		worst = append(worst, w)
		best = append(best, b)
		if w < row.WorstMinMs {
			row.WorstMinMs, row.WorstMinPair = w, pr.Pair
		}
		if w > row.WorstMaxMs {
			row.WorstMaxMs, row.WorstMaxPair = w, pr.Pair
		}
		if b < row.BestMinMs {
			row.BestMinMs, row.BestMinPair = b, pr.Pair
		}
		if b > row.BestMaxMs {
			row.BestMaxMs, row.BestMaxPair = b, pr.Pair
		}
	}
	if len(worst) == 0 {
		return row, fmt.Errorf("experiments: campaign %s has no usable pairs", res.DeviceName)
	}
	row.WorstMeanMs = stats.Mean(worst)
	row.BestMeanMs = stats.Mean(best)
	return row, nil
}

// RenderTable2 writes Table II as Markdown.
func RenderTable2(w io.Writer, rows []Table2Row) error {
	header := []string{"Model", "Case", "Min [ms]", "Min transition",
		"Mean [ms]", "Max [ms]", "Max transition"}
	var data [][]string
	for _, r := range rows {
		data = append(data, []string{
			r.Model, "worst",
			fmt.Sprintf("%.3f", r.WorstMinMs), r.WorstMinPair.String(),
			fmt.Sprintf("%.3f", r.WorstMeanMs),
			fmt.Sprintf("%.3f", r.WorstMaxMs), r.WorstMaxPair.String(),
		})
		data = append(data, []string{
			r.Model, "best",
			fmt.Sprintf("%.3f", r.BestMinMs), r.BestMinPair.String(),
			fmt.Sprintf("%.3f", r.BestMeanMs),
			fmt.Sprintf("%.3f", r.BestMaxMs), r.BestMaxPair.String(),
		})
	}
	return report.MarkdownTable(w, header, data)
}
