package experiments

import (
	"fmt"
	"math"
	"sort"

	"golatest/internal/cluster"
	"golatest/internal/core"
	"golatest/internal/hwprofile"
	"golatest/internal/nvml"
	"golatest/internal/report"
	"golatest/internal/sim/clock"
)

// Agg selects the per-pair aggregate plotted in a heatmap.
type Agg int

const (
	// AggMin plots each pair's best case (Fig. 3a).
	AggMin Agg = iota
	// AggMax plots each pair's worst case (Fig. 3b–d).
	AggMax
)

func (a Agg) String() string {
	if a == AggMax {
		return "max"
	}
	return "min"
}

// Fig3Heatmap builds the Fig. 3 heatmap of a profile: per-pair minimum or
// maximum switching latency (outliers removed), initial frequencies in
// rows and target frequencies in columns.
func (s *Suite) Fig3Heatmap(profileKey string, agg Agg) (*report.Heatmap, error) {
	p, err := hwprofile.ByKey(profileKey)
	if err != nil {
		return nil, err
	}
	res, err := s.Campaign(p)
	if err != nil {
		return nil, err
	}
	freqs := s.freqsFor(p)
	title := fmt.Sprintf("%s %s switching latencies [ms]", p.Config.Name, agg)
	h := report.NewHeatmap(title, freqs, freqs)
	for _, pr := range res.Pairs {
		if pr.Skipped || pr.Summary.N == 0 {
			continue
		}
		v := pr.Summary.Min
		if agg == AggMax {
			v = pr.Summary.Max
		}
		if err := h.Set(pr.Pair.InitMHz, pr.Pair.TargetMHz, v); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// ViolinPanel is one GPU's Fig. 4 panel: worst-case latency distributions
// split by transition direction.
type ViolinPanel struct {
	Model      string
	Increasing report.Violin
	Decreasing report.Violin
}

// Fig4Violins derives the direction-split worst-case distributions of all
// three GPUs.
func (s *Suite) Fig4Violins() ([]ViolinPanel, error) {
	const bins = 24
	var panels []ViolinPanel
	for _, p := range hwprofile.All() {
		res, err := s.Campaign(p)
		if err != nil {
			return nil, err
		}
		var up, down []float64
		for _, pr := range res.Pairs {
			if pr.Skipped || pr.Summary.N == 0 {
				continue
			}
			if pr.Pair.Increasing() {
				up = append(up, pr.Summary.Max)
			} else {
				down = append(down, pr.Summary.Max)
			}
		}
		panels = append(panels, ViolinPanel{
			Model:      p.Config.Name,
			Increasing: report.NewViolin("increasing (init < target)", up, bins),
			Decreasing: report.NewViolin("decreasing (init > target)", down, bins),
		})
	}
	return panels, nil
}

// ScatterData is the Fig. 5/6 artefact: a dedicated long campaign of one
// pair with its cluster structure.
type ScatterData struct {
	Model       string
	Pair        core.Pair
	SamplesMs   []float64
	OutlierFlag []bool
	NumClusters int
	Silhouette  float64
}

// FigScatter runs a dedicated campaign of one pair with n measurements
// (several hundred, per §VII-B) and clusters it.
func (s *Suite) FigScatter(profileKey string, pair core.Pair, n int) (*ScatterData, error) {
	p, err := hwprofile.ByKey(profileKey)
	if err != nil {
		return nil, err
	}
	dev, err := p.NewDevice(clock.New())
	if err != nil {
		return nil, err
	}
	lib, err := nvml.New(dev)
	if err != nil {
		return nil, err
	}
	h, _ := lib.DeviceHandleByIndex(0)
	cfg := s.campaignConfig(p)
	cfg.Frequencies = []float64{pair.InitMHz, pair.TargetMHz}
	cfg.MinMeasurements = n
	cfg.MaxMeasurements = n
	r, err := core.NewRunner(h, cfg)
	if err != nil {
		return nil, err
	}
	p1, err := r.Phase1()
	if err != nil {
		return nil, err
	}
	pr, err := r.MeasurePair(pair, p1)
	if err != nil {
		return nil, err
	}
	if pr.Clusters == nil {
		return nil, fmt.Errorf("experiments: scatter campaign too small for clustering (%d samples)", len(pr.Samples))
	}
	flags := make([]bool, len(pr.Samples))
	for i, l := range pr.Clusters.Labels {
		flags[i] = l == cluster.Noise
	}
	return &ScatterData{
		Model:       p.Config.Name,
		Pair:        pair,
		SamplesMs:   pr.Samples,
		OutlierFlag: flags,
		NumClusters: pr.Clusters.NumClusters,
		Silhouette:  cluster.Silhouette(pr.Samples, pr.Clusters.Labels),
	}, nil
}

// RangeHeatmap builds the Fig. 7 (AggMin) / Fig. 8 (AggMax) artefact: the
// spread (max − min across the four A100 units) of each pair's aggregate.
func (s *Suite) RangeHeatmap(agg Agg) (*report.Heatmap, error) {
	results, err := s.A100Instances()
	if err != nil {
		return nil, err
	}
	freqs := s.freqsFor(hwprofile.A100())
	title := fmt.Sprintf("A100 ranges of %s switching latencies across 4 units [ms]", agg)
	h := report.NewHeatmap(title, freqs, freqs)
	for _, init := range freqs {
		for _, target := range freqs {
			if init == target {
				continue
			}
			lo, hi := math.Inf(1), math.Inf(-1)
			seen := 0
			for _, res := range results {
				pr, ok := res.PairByFreqs(init, target)
				if !ok || pr.Skipped || pr.Summary.N == 0 {
					continue
				}
				v := pr.Summary.Min
				if agg == AggMax {
					v = pr.Summary.Max
				}
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
				seen++
			}
			if seen == len(results) {
				if err := h.Set(init, target, hi-lo); err != nil {
					return nil, err
				}
			}
		}
	}
	return h, nil
}

// Fig9Boxes picks the pairs with the largest cross-unit spread of maxima
// and returns one box plot per (pair, unit) — the Fig. 9 artefact. The
// paper's finding to reproduce: no unit is consistently the worst.
func (s *Suite) Fig9Boxes(topPairs int) ([]report.BoxPlot, error) {
	results, err := s.A100Instances()
	if err != nil {
		return nil, err
	}
	ranges, err := s.RangeHeatmap(AggMax)
	if err != nil {
		return nil, err
	}
	type spread struct {
		pair core.Pair
		rng  float64
	}
	var spreads []spread
	for _, init := range ranges.RowLabels {
		for _, target := range ranges.ColLabels {
			v := ranges.Get(init, target)
			if !math.IsNaN(v) {
				spreads = append(spreads, spread{core.Pair{InitMHz: init, TargetMHz: target}, v})
			}
		}
	}
	sort.Slice(spreads, func(a, b int) bool { return spreads[a].rng > spreads[b].rng })
	if topPairs > len(spreads) {
		topPairs = len(spreads)
	}
	var boxes []report.BoxPlot
	for _, sp := range spreads[:topPairs] {
		for unit, res := range results {
			pr, ok := res.PairByFreqs(sp.pair.InitMHz, sp.pair.TargetMHz)
			if !ok {
				continue
			}
			label := fmt.Sprintf("%s gpu%d", sp.pair, unit)
			boxes = append(boxes, report.NewBoxPlot(label, pr.Kept))
		}
	}
	return boxes, nil
}

// ClusterCensusRow is the §VII-B census of one GPU: how many pairs formed
// a single latency cluster, the largest cluster count observed, and the
// mean silhouette over multi-cluster pairs.
type ClusterCensusRow struct {
	Model              string
	Pairs              int
	SingleClusterShare float64
	MaxClusters        int
	MeanSilhouette     float64
	MultiClusterPairs  int
}

// censusN is the per-pair sample count of the census campaigns: §VII-B
// analyses pairs of "several hundreds of switching latency measurements",
// and the cluster structure only emerges at that density.
func (s *Suite) censusN() int {
	if s.opts.Scale == ScaleFull {
		return 250
	}
	return 120
}

// censusPairs picks a deterministic spread of valid pairs (at most limit).
func censusPairs(valid []core.Pair, limit int) []core.Pair {
	if len(valid) <= limit {
		return valid
	}
	stride := len(valid) / limit
	out := make([]core.Pair, 0, limit)
	for i := 0; i < len(valid) && len(out) < limit; i += stride {
		out = append(out, valid[i])
	}
	return out
}

// censusCampaign measures a sampled subset of a profile's pairs at census
// depth and returns their PairResults.
func (s *Suite) censusCampaign(p hwprofile.Profile) ([]*core.PairResult, error) {
	dev, err := p.NewDevice(clock.New())
	if err != nil {
		return nil, err
	}
	lib, err := nvml.New(dev)
	if err != nil {
		return nil, err
	}
	handle, _ := lib.DeviceHandleByIndex(0)
	cfg := s.campaignConfig(p)
	// The census always draws its pair sample from the full evaluated
	// frequency set: the reduced quick subsets deliberately over-sample
	// pathological targets (for the heatmap tests), which would bias the
	// single-cluster share far below §VII-B's population-wide figures.
	cfg.Frequencies = p.EvalFreqsMHz
	cfg.MinMeasurements = s.censusN()
	cfg.MaxMeasurements = s.censusN()
	r, err := core.NewRunner(handle, cfg)
	if err != nil {
		return nil, err
	}
	p1, err := r.Phase1()
	if err != nil {
		return nil, err
	}
	var out []*core.PairResult
	for _, pair := range censusPairs(p1.ValidPairs, 12) {
		pr, err := r.MeasurePair(pair, p1)
		if err != nil {
			return nil, err
		}
		out = append(out, pr)
	}
	return out, nil
}

// ClusterCensus computes the §VII-B census from dedicated census-depth
// campaigns over a sampled subset of each GPU's pairs.
func (s *Suite) ClusterCensus() ([]ClusterCensusRow, error) {
	var rows []ClusterCensusRow
	for _, p := range hwprofile.All() {
		pairs, err := s.censusCampaign(p)
		if err != nil {
			return nil, err
		}
		res := &core.Result{DeviceName: p.Config.Name, Pairs: pairs}
		row := ClusterCensusRow{Model: p.Config.Name}
		single := 0
		var silSum float64
		var silN int
		for _, pr := range res.Pairs {
			if pr.Clusters == nil || pr.Skipped {
				continue
			}
			row.Pairs++
			if pr.Clusters.NumClusters <= 1 {
				single++
			} else {
				row.MultiClusterPairs++
				if sil := cluster.Silhouette(pr.Samples, pr.Clusters.Labels); !math.IsNaN(sil) {
					silSum += sil
					silN++
				}
			}
			if pr.Clusters.NumClusters > row.MaxClusters {
				row.MaxClusters = pr.Clusters.NumClusters
			}
		}
		if row.Pairs > 0 {
			row.SingleClusterShare = float64(single) / float64(row.Pairs)
		}
		if silN > 0 {
			row.MeanSilhouette = silSum / float64(silN)
		} else {
			row.MeanSilhouette = math.NaN()
		}
		rows = append(rows, row)
	}
	return rows, nil
}
