// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII) from simulated campaigns: Table I/II, the Fig. 3
// heatmaps, the Fig. 4 violins, the Fig. 5/6 scatter structure, the
// Fig. 7–9 manufacturing-variability study, the §VII-B cluster census,
// the §V-A confidence-interval degeneration argument, and the headline
// CPU-vs-GPU latency-scale comparison.
//
// Campaigns are expensive, so a Suite runs each one once and caches it;
// every artefact derives from the cached results. Two scales exist:
// ScaleQuick for benchmarks and tests (reduced frequency subsets and
// repetition counts) and ScaleFull for the paper-shaped regeneration in
// cmd/experiments. With Options.Store set, campaign results additionally
// persist across processes as content-addressed blobs (internal/store):
// a re-run with unchanged inputs recomputes nothing and reproduces every
// artefact byte for byte, and multi-unit studies shard over the fleet
// pool (internal/fleet) so interrupted sweeps resume where they stopped.
package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"golatest/internal/core"
	"golatest/internal/fleet"
	"golatest/internal/hwprofile"
	"golatest/internal/nvml"
	"golatest/internal/obs"
	"golatest/internal/sim/clock"
	"golatest/internal/store"
)

// Scale selects campaign sizes.
type Scale int

const (
	// ScaleQuick uses small frequency subsets and repetition counts:
	// suitable for go test and testing.B.
	ScaleQuick Scale = iota
	// ScaleFull uses the paper's evaluated frequency subsets and
	// RSE-driven repetition, matching the published figures' shape.
	ScaleFull
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	if s == ScaleFull {
		return "full"
	}
	return "quick"
}

// Options configures a Suite.
type Options struct {
	Scale Scale
	// Seed offsets every campaign's host-side randomness; distinct seeds
	// give statistically independent replications.
	Seed uint64
	// Parallelism is handed down to every campaign's core.Config: it
	// bounds how many pair campaigns each campaign sweeps concurrently.
	// Zero means one worker per CPU, 1 forces serial sweeps. Campaign
	// results are identical at every setting.
	Parallelism int
	// Store, when non-nil, persists campaign results across processes as
	// content-addressed blobs: Campaign consults it before computing and
	// writes through after, so a warm re-run with unchanged inputs
	// recomputes nothing. Campaigns are deterministic, so a stored result
	// is indistinguishable from a fresh one. Any store.Backend works —
	// a local *store.Store directory, or a storenet.Client speaking to a
	// stored daemon so suites on different hosts share one store.
	Store store.Backend
	// FleetReplicas bounds how many whole campaigns the multi-unit
	// studies (A100Instances, Prewarm) run concurrently. Zero means one
	// per CPU. Results are identical at every setting.
	FleetReplicas int
	// LeaseTTL, when positive (requires Store), coordinates multi-unit
	// sweeps across processes: each shard is claimed through a store
	// lease before computing, so concurrent processes sharing a cache
	// directory partition a sweep instead of duplicating it. Size it to
	// comfortably exceed one campaign's runtime. Zero keeps sweeps
	// single-process (the PR-2 behaviour).
	LeaseTTL time.Duration
	// LeaseOwner identifies this process in lease files; empty derives a
	// host/pid id. Results never depend on it.
	LeaseOwner string
	// GCWatermarkBytes, when positive (requires Store), bounds the store
	// without operator action: after every fleet sweep whose indexed
	// blobs exceed the watermark, one GC pass evicts least-recently-used
	// blobs back under it. Zero leaves GC manual.
	GCWatermarkBytes int64
	// ShardOffset starts every multi-unit sweep at this shard index
	// (mod the shard count): cooperating processes given disjoint
	// offsets claim disjoint ranges up front instead of all racing for
	// shard 0. Results are identical at every offset.
	ShardOffset int
	// AutoShardOffset derives the offset per sweep from the store's
	// live lease/index state: the sweep starts at the first shard that
	// is neither cached nor claimed by a live peer. Overrides
	// ShardOffset when such a shard exists. Effective only in lease
	// mode (Store + LeaseTTL) — that is the only mode in which the
	// fleet sweep owns the store whose plan it consults; outside it the
	// offset stays at ShardOffset.
	AutoShardOffset bool
	// StoreErrors is handed to every fleet sweep: abort on store
	// write/claim failures, degrade around them, or (the zero value)
	// decide from whether the backend has a local fallback tier. See
	// fleet.StoreErrorPolicy.
	StoreErrors fleet.StoreErrorPolicy
	// Tracer, when non-nil, is handed to every fleet sweep: each
	// multi-unit study records a root span with per-shard children, and
	// a store client in reach carries the sweep's trace ID on its wire
	// requests (see fleet.Options.Tracer). The reports — including the
	// per-shard timing the trace reflects — accumulate in SweepReports.
	Tracer *obs.Tracer
}

// Suite runs and caches the campaigns all artefacts derive from.
type Suite struct {
	opts Options

	// campaigns implements per-key singleflight: the first caller of a key
	// inserts a call record and runs the campaign; concurrent callers of
	// the same key block on its done channel instead of duplicating the
	// (expensive) campaign. Completed calls double as the cache.
	mu        sync.Mutex
	campaigns map[string]*campaignCall

	// runs counts campaign executions (not cache hits); tests use it to
	// assert the singleflight collapses concurrent duplicate calls.
	runs atomic.Int64

	// Lease-mode contention, accumulated over every fleet sweep this
	// suite ran; see Contention.
	claimed, waited, stolen atomic.Int64

	// Store-failure resilience, accumulated over every fleet sweep; see
	// Resilience.
	degraded, deferred, reconciled atomic.Int64

	// Every fleet report this suite produced, in completion order; see
	// SweepReports. Guarded by repMu, not mu — sweeps run concurrently
	// with campaign singleflight traffic.
	repMu   sync.Mutex
	reports []*fleet.Report
}

// SweepReports returns every fleet report the suite's multi-unit
// studies have produced so far, in completion order. Each carries the
// per-shard timing breakdown (Report.WriteTimingTable) and, under a
// tracer, the sweep's trace ID.
func (s *Suite) SweepReports() []*fleet.Report {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	out := make([]*fleet.Report, len(s.reports))
	copy(out, s.reports)
	return out
}

// Contention reports the cross-process coordination a suite's sweeps
// experienced: leases claimed (shards this process computed under a
// claim), shards resolved by waiting on another process's claim, and
// expired leases stolen from dead processes. All zero outside lease
// mode.
type Contention struct {
	Claimed, Waited, Stolen int64
}

// Contention returns the accumulated lease-contention counters.
func (s *Suite) Contention() Contention {
	return Contention{
		Claimed: s.claimed.Load(),
		Waited:  s.waited.Load(),
		Stolen:  s.stolen.Load(),
	}
}

// Resilience reports the store-failure fallbacks the suite's sweeps
// absorbed under the degrade policy: Degraded counts fleet-level
// fallbacks (unleased recomputes, unpersisted results), Deferred and
// Reconciled count the resilient backend's write-behind journal
// traffic during those sweeps. All zero when the store never failed.
type Resilience struct {
	Degraded, Deferred, Reconciled int64
}

// Resilience returns the accumulated store-resilience counters.
func (s *Suite) Resilience() Resilience {
	return Resilience{
		Degraded:   s.degraded.Load(),
		Deferred:   s.deferred.Load(),
		Reconciled: s.reconciled.Load(),
	}
}

// campaignCall is one singleflight entry: done closes once res/err are
// final.
type campaignCall struct {
	done chan struct{}
	res  *core.Result
	err  error
}

// NewSuite creates an empty suite.
func NewSuite(opts Options) *Suite {
	return &Suite{opts: opts, campaigns: make(map[string]*campaignCall)}
}

// captureHints bound the capture window per architecture so campaigns
// skip the probing phase (the probe is exercised separately in tests).
var captureHints = map[string]int64{
	"gh200":   550_000_000, // pathological targets reach ≈480 ms
	"a100":    120_000_000,
	"rtx6000": 420_000_000,
}

// quickFreqs are the reduced subsets: small, medium, and high clocks
// including each architecture's pathological targets.
var quickFreqs = map[string][]float64{
	"gh200":   {705, 1095, 1260, 1500, 1875, 1980},
	"a100":    {705, 885, 1065, 1215, 1410},
	"rtx6000": {750, 930, 990, 1110, 1650},
}

// freqsFor returns the campaign frequency set of a profile at the given
// scale.
func (s *Suite) freqsFor(p hwprofile.Profile) []float64 {
	if s.opts.Scale == ScaleFull {
		return p.EvalFreqsMHz
	}
	return quickFreqs[p.Key]
}

// campaignConfig builds the core.Config of a campaign.
func (s *Suite) campaignConfig(p hwprofile.Profile) core.Config {
	cfg := core.Config{
		Frequencies:      s.freqsFor(p),
		MaxLatencyHintNs: captureHints[p.Key],
		Seed:             s.opts.Seed + 0x5eed + uint64(p.Instance),
	}
	switch s.opts.Scale {
	case ScaleFull:
		cfg.Blocks = 4
		cfg.MinMeasurements = 50
		cfg.MaxMeasurements = 120
		cfg.RSECheckEvery = 25
	default:
		// Quick campaigns still need enough samples for Algorithm 3's
		// density assumptions (the paper gathers "several hundred").
		cfg.Blocks = 3
		cfg.MinMeasurements = 28
		cfg.MaxMeasurements = 48
		cfg.RSECheckEvery = 10
	}
	cfg.Parallelism = s.opts.Parallelism
	return cfg
}

// runCampaign executes one campaign on a fresh device.
func (s *Suite) runCampaign(p hwprofile.Profile, cfg core.Config) (*core.Result, error) {
	dev, err := p.NewDevice(clock.New())
	if err != nil {
		return nil, err
	}
	lib, err := nvml.New(dev)
	if err != nil {
		return nil, err
	}
	h, err := lib.DeviceHandleByIndex(0)
	if err != nil {
		return nil, err
	}
	r, err := core.NewRunner(h, cfg)
	if err != nil {
		return nil, err
	}
	return r.Run()
}

// Campaign returns the cached full campaign of a profile (keyed by
// profile and instance), running it on first use. Concurrent calls for
// the same key collapse into one execution: the winner runs the campaign
// and everyone else blocks until its result lands. A failed campaign is
// not cached, so a later call retries.
//
// With Options.Store set, the singleflight winner first looks the
// campaign up in the persistent store and only computes on a miss,
// writing the fresh result through; either way the in-process cache is
// populated, so the store is consulted at most once per key per Suite.
func (s *Suite) Campaign(p hwprofile.Profile) (*core.Result, error) {
	key := fmt.Sprintf("%s/%d", p.Key, p.Instance)
	s.mu.Lock()
	if c, ok := s.campaigns[key]; ok {
		s.mu.Unlock()
		<-c.done
		return c.res, c.err
	}
	c := &campaignCall{done: make(chan struct{})}
	s.campaigns[key] = c
	s.mu.Unlock()

	// A panicking campaign must not wedge the key: waiters need done
	// closed and future callers need the entry gone, whether the run
	// returns, errors, or unwinds.
	defer func() {
		if p := recover(); p != nil {
			c.err = fmt.Errorf("experiments: campaign %s panicked: %v", key, p)
			s.mu.Lock()
			delete(s.campaigns, key)
			s.mu.Unlock()
			close(c.done)
			panic(p)
		}
	}()

	c.res, c.err = s.storeBackedCampaign(p)
	if c.err != nil {
		c.err = fmt.Errorf("experiments: campaign %s: %w", key, c.err)
		s.mu.Lock()
		delete(s.campaigns, key) // leave failures uncached for retry
		s.mu.Unlock()
	}
	close(c.done)
	return c.res, c.err
}

// storeBackedCampaign resolves one campaign through the persistent store
// when configured: hit ⇒ the stored result (no recomputation, runs
// counter untouched), miss ⇒ compute and write through. Store write
// failures are non-fatal — the cache is an optimisation and the computed
// result in hand is correct — but a broken store also cannot invalidate
// a campaign that already succeeded.
func (s *Suite) storeBackedCampaign(p hwprofile.Profile) (*core.Result, error) {
	cfg := s.campaignConfig(p)
	var key store.Key
	if s.opts.Store != nil {
		k, err := store.ProfileKey(p, cfg)
		if err != nil {
			return nil, err
		}
		key = k
		if res, ok := s.opts.Store.Get(key); ok {
			return res, nil
		}
	}
	s.runs.Add(1)
	res, err := s.runCampaign(p, cfg)
	if err == nil && s.opts.Store != nil {
		_ = s.opts.Store.Put(key, res)
	}
	return res, err
}

// CampaignByKey resolves the profile by key and returns its campaign.
func (s *Suite) CampaignByKey(key string) (*core.Result, error) {
	p, err := hwprofile.ByKey(key)
	if err != nil {
		return nil, err
	}
	return s.Campaign(p)
}

// sweep shards whole campaigns over the fleet pool.
//
// Single-process mode (no LeaseTTL): the fleet's own store stays nil —
// Campaign already consults the suite's store (and the in-process
// cache) per shard, so the fleet only contributes the bounded replica
// pool and the shard report.
//
// Lease mode (Store + LeaseTTL): the fleet owns the store lookup, the
// lease claim/wait/steal loop, and the write-through, and the shard
// runner computes directly (bypassing the suite's singleflight, which
// would double-book the store traffic). Later Campaign calls for the
// same profiles are store hits.
func (s *Suite) sweep(profiles []hwprofile.Profile) ([]*core.Result, error) {
	fo := fleet.Options{
		Replicas:        s.opts.FleetReplicas,
		ShardOffset:     s.opts.ShardOffset,
		AutoShardOffset: s.opts.AutoShardOffset,
		StoreErrors:     s.opts.StoreErrors,
		Tracer:          s.opts.Tracer,
	}
	if s.opts.Store != nil && s.opts.LeaseTTL <= 0 {
		// Single-process mode: the fleet never sees the store (Campaign
		// owns the lookup), so hand it the store's trace carrier directly
		// — the suite's store traffic still attributes to the sweep.
		fo.TraceCarrier, _ = s.opts.Store.(obs.TraceContextSetter)
	}
	if s.opts.Store != nil && s.opts.LeaseTTL > 0 {
		fo.Store = s.opts.Store
		fo.Config = s.campaignConfig
		fo.LeaseTTL = s.opts.LeaseTTL
		fo.Owner = s.opts.LeaseOwner
		fo.GCWatermarkBytes = s.opts.GCWatermarkBytes
		fo.Run = func(p hwprofile.Profile, cfg core.Config) (*core.Result, error) {
			s.runs.Add(1)
			return s.runCampaign(p, cfg)
		}
	} else {
		fo.Run = func(p hwprofile.Profile, _ core.Config) (*core.Result, error) {
			return s.Campaign(p)
		}
	}
	rep, err := fleet.Sweep(profiles, fo)
	if rep != nil {
		s.claimed.Add(int64(rep.Claimed))
		s.waited.Add(int64(rep.Waited))
		s.stolen.Add(int64(rep.Stolen))
		s.degraded.Add(int64(rep.Degraded))
		s.deferred.Add(int64(rep.Deferred))
		s.reconciled.Add(int64(rep.Reconciled))
		s.repMu.Lock()
		s.reports = append(s.reports, rep)
		s.repMu.Unlock()
	}
	if err != nil {
		return nil, err
	}
	// In single-process mode the fleet never saw the store (Campaign owns
	// lookup and write-through), so the watermark bound is applied here.
	if fo.Store == nil && s.opts.Store != nil {
		if _, _, gcErr := fleet.GCAtWatermark(s.opts.Store, s.opts.GCWatermarkBytes); gcErr != nil {
			return nil, gcErr
		}
	}
	return rep.Results(), nil
}

// A100Instances returns campaigns for the four front-row A100 units of
// §VII-C, sharded over the fleet pool (each shard runs on an independent
// device replica with its own virtual clock, so shards parallelise
// perfectly; FleetReplicas bounds how many are in flight).
func (s *Suite) A100Instances() ([]*core.Result, error) {
	return s.A100Fleet(4)
}

// A100Fleet generalises the §VII-C study to the first n A100 units —
// the manufacturing-variability sweep at fleet scale. With a persistent
// store configured, an interrupted or re-run sweep recomputes only the
// units missing from the store.
func (s *Suite) A100Fleet(n int) ([]*core.Result, error) {
	if n < 0 {
		return nil, fmt.Errorf("experiments: negative fleet size %d", n)
	}
	profiles := make([]hwprofile.Profile, n)
	for i := range profiles {
		profiles[i] = hwprofile.A100Instance(i)
	}
	return s.sweep(profiles)
}

// Prewarm runs the three main campaigns over the fleet pool; artefact
// calls afterwards hit the cache. Optional — artefacts run lazily
// regardless.
func (s *Suite) Prewarm() error {
	_, err := s.sweep(hwprofile.All())
	return err
}
