package experiments

import (
	"math"
	"testing"
)

func TestRampAblation(t *testing.T) {
	rows, err := RampAblation([]int{0, 4, 16}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The step model must measure with small positive error and few
	// discards.
	step := rows[0]
	if step.MeanErrMs < 0 || step.MeanErrMs > 1 {
		t.Errorf("step-model mean error = %v ms", step.MeanErrMs)
	}
	if step.FailShare > 0.2 {
		t.Errorf("step-model fail share = %v", step.FailShare)
	}
	// Gradual ramps may detect during adaptation: the error envelope
	// widens downward (earlier detections) and/or discards appear.
	grad := rows[2]
	if grad.MeanErrMs >= step.MeanErrMs && grad.FailShare <= step.FailShare {
		t.Errorf("16-step ramp indistinguishable from step model: %+v vs %+v", grad, step)
	}
}

func TestDetectionAblation(t *testing.T) {
	rows, err := DetectionAblation(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	sigma, ci := rows[0], rows[1]
	if sigma.Mode != "2-sigma" || ci.Mode != "ci" {
		t.Fatalf("modes: %+v", rows)
	}
	// §V-A: the population band accepts nearly every run; the CI band
	// starves (few or no acceptances, and when it does accept, only after
	// scanning far past the transition).
	if sigma.AcceptedShare < 0.8 {
		t.Errorf("2σ accepted share = %v, want ≈1", sigma.AcceptedShare)
	}
	if ci.AcceptedShare > sigma.AcceptedShare/2 {
		t.Errorf("CI accepted share = %v not clearly degraded vs %v",
			ci.AcceptedShare, sigma.AcceptedShare)
	}
	if !math.IsNaN(ci.MeanErrMs) && ci.MeanErrMs < sigma.MeanErrMs {
		t.Errorf("CI detections not delayed: %v vs %v", ci.MeanErrMs, sigma.MeanErrMs)
	}
}

func TestSyncAblation(t *testing.T) {
	rows, err := SyncAblation([]float64{0, 200, 800}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The PTP estimator bias is +asym/2 toward the device, which shifts
	// t_s later on the device timeline and therefore *shrinks* measured
	// latencies: bias decreases monotonically with asymmetry.
	if !(rows[0].MeanBiasMs > rows[1].MeanBiasMs && rows[1].MeanBiasMs > rows[2].MeanBiasMs) {
		t.Fatalf("bias not monotone in asymmetry: %+v", rows)
	}
	// 800 µs of one-sided delay ⇒ ≈0.4 ms earlier t_s estimate.
	shift := rows[0].MeanBiasMs - rows[2].MeanBiasMs
	if shift < 0.25 || shift > 0.6 {
		t.Fatalf("800 µs asymmetry shifted bias by %v ms, want ≈0.4", shift)
	}
}

func TestCoreCountStudy(t *testing.T) {
	rows, err := CoreCountStudy([]int{1, 32}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	small, wide := rows[0], rows[1]
	// The phase-1 population grows with core count.
	if wide.Phase1N <= small.Phase1N {
		t.Fatalf("population did not grow: %d vs %d", small.Phase1N, wide.Phase1N)
	}
	// The 2σ band is width-independent...
	if small.SigmaAcceptedShare < 0.8 || wide.SigmaAcceptedShare < 0.8 {
		t.Fatalf("2σ shares degraded: %+v", rows)
	}
	// ...while the CI band sits below the 1 µs timer quantum at every
	// width (the paper's footnote 1, in its strongest form).
	if small.CIAcceptedShare > 0.3 || wide.CIAcceptedShare > 0.3 {
		t.Fatalf("CI band unexpectedly viable: %+v", rows)
	}
}
