package experiments

import (
	"bytes"
	"testing"

	"golatest/internal/hwprofile"
	"golatest/internal/store"
)

// TestCampaignStoreWarm is the persistence contract: a second suite
// sharing the store performs zero campaign recomputation (store hit
// counters prove it) and derives byte-identical artefacts from the
// stored blobs.
func TestCampaignStoreWarm(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Scale: ScaleQuick, Seed: 5, Store: st}

	cold := NewSuite(opts)
	coldRes, err := cold.Campaign(hwprofile.A100())
	if err != nil {
		t.Fatal(err)
	}
	if got := cold.runs.Load(); got != 1 {
		t.Fatalf("cold suite runs = %d, want 1", got)
	}
	coldHeat, err := cold.Fig3Heatmap("a100", AggMax)
	if err != nil {
		t.Fatal(err)
	}
	var coldCSV bytes.Buffer
	if err := coldHeat.WriteCSV(&coldCSV); err != nil {
		t.Fatal(err)
	}
	c := st.Counters()
	if c.Puts != 1 || c.Misses != 1 || c.Hits != 0 {
		t.Fatalf("cold counters = %+v", c)
	}

	// A fresh suite over the same store: everything is served from disk.
	warm := NewSuite(opts)
	warmRes, err := warm.Campaign(hwprofile.A100())
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.runs.Load(); got != 0 {
		t.Fatalf("warm suite recomputed %d campaigns, want 0", got)
	}
	c = st.Counters()
	if c.Hits != 1 || c.Puts != 1 {
		t.Fatalf("warm counters = %+v", c)
	}
	if len(warmRes.Pairs) != len(coldRes.Pairs) {
		t.Fatalf("pair count diverged: %d vs %d", len(warmRes.Pairs), len(coldRes.Pairs))
	}

	warmHeat, err := warm.Fig3Heatmap("a100", AggMax)
	if err != nil {
		t.Fatal(err)
	}
	var warmCSV bytes.Buffer
	if err := warmHeat.WriteCSV(&warmCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldCSV.Bytes(), warmCSV.Bytes()) {
		t.Fatalf("warm artefact diverged from cold:\ncold:\n%s\nwarm:\n%s", coldCSV.String(), warmCSV.String())
	}
}

// TestCampaignStoreKeySensitivity: a suite with a different seed shares
// the store but not the cache entries.
func TestCampaignStoreKeySensitivity(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewSuite(Options{Scale: ScaleQuick, Seed: 5, Store: st})
	if _, err := s1.Campaign(hwprofile.A100()); err != nil {
		t.Fatal(err)
	}
	s2 := NewSuite(Options{Scale: ScaleQuick, Seed: 6, Store: st})
	if _, err := s2.Campaign(hwprofile.A100()); err != nil {
		t.Fatal(err)
	}
	if got := s2.runs.Load(); got != 1 {
		t.Fatalf("different seed hit the cache (runs = %d)", got)
	}
	if st.Len() != 2 {
		t.Fatalf("store holds %d blobs, want 2 distinct keys", st.Len())
	}
}
