package experiments

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"golatest/internal/core"
	"golatest/internal/hwprofile"
	"golatest/internal/store"
)

// TestCampaignStoreWarm is the persistence contract: a second suite
// sharing the store performs zero campaign recomputation (store hit
// counters prove it) and derives byte-identical artefacts from the
// stored blobs.
func TestCampaignStoreWarm(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Scale: ScaleQuick, Seed: 5, Store: st}

	cold := NewSuite(opts)
	coldRes, err := cold.Campaign(hwprofile.A100())
	if err != nil {
		t.Fatal(err)
	}
	if got := cold.runs.Load(); got != 1 {
		t.Fatalf("cold suite runs = %d, want 1", got)
	}
	coldHeat, err := cold.Fig3Heatmap("a100", AggMax)
	if err != nil {
		t.Fatal(err)
	}
	var coldCSV bytes.Buffer
	if err := coldHeat.WriteCSV(&coldCSV); err != nil {
		t.Fatal(err)
	}
	c := st.Counters()
	if c.Puts != 1 || c.Misses != 1 || c.Hits != 0 {
		t.Fatalf("cold counters = %+v", c)
	}

	// A fresh suite over the same store: everything is served from disk.
	warm := NewSuite(opts)
	warmRes, err := warm.Campaign(hwprofile.A100())
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.runs.Load(); got != 0 {
		t.Fatalf("warm suite recomputed %d campaigns, want 0", got)
	}
	c = st.Counters()
	if c.Hits != 1 || c.Puts != 1 {
		t.Fatalf("warm counters = %+v", c)
	}
	if len(warmRes.Pairs) != len(coldRes.Pairs) {
		t.Fatalf("pair count diverged: %d vs %d", len(warmRes.Pairs), len(coldRes.Pairs))
	}

	warmHeat, err := warm.Fig3Heatmap("a100", AggMax)
	if err != nil {
		t.Fatal(err)
	}
	var warmCSV bytes.Buffer
	if err := warmHeat.WriteCSV(&warmCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldCSV.Bytes(), warmCSV.Bytes()) {
		t.Fatalf("warm artefact diverged from cold:\ncold:\n%s\nwarm:\n%s", coldCSV.String(), warmCSV.String())
	}
}

// TestFleetLeasePartition: two suites — the two-process shape, each with
// its own Store handle on one directory — sweep the same A100 fleet in
// lease mode. Each unit's campaign must run exactly once across both
// suites, and both must end with the full result set.
func TestFleetLeasePartition(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two quick A100 campaigns")
	}
	dir := t.TempDir()
	const units = 2
	type proc struct {
		suite *Suite
		res   []*core.Result
		err   error
	}
	procs := make([]*proc, 2)
	var wg sync.WaitGroup
	for i := range procs {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		p := &proc{suite: NewSuite(Options{
			Scale:      ScaleQuick,
			Seed:       5,
			Store:      st,
			LeaseTTL:   time.Minute,
			LeaseOwner: fmt.Sprintf("suite-%d", i),
		})}
		procs[i] = p
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.res, p.err = p.suite.A100Fleet(units)
		}()
	}
	wg.Wait()

	var runs int64
	for i, p := range procs {
		if p.err != nil {
			t.Fatalf("suite %d: %v", i, p.err)
		}
		if len(p.res) != units {
			t.Fatalf("suite %d returned %d results, want %d", i, len(p.res), units)
		}
		runs += p.suite.runs.Load()
	}
	if runs != units {
		t.Fatalf("campaigns ran %d times across both suites, want exactly %d (sweep not partitioned)",
			runs, units)
	}
	for u := 0; u < units; u++ {
		if procs[0].res[u].DeviceName != procs[1].res[u].DeviceName ||
			len(procs[0].res[u].Pairs) != len(procs[1].res[u].Pairs) {
			t.Fatalf("unit %d diverged between suites", u)
		}
	}
	c0, c1 := procs[0].suite.Contention(), procs[1].suite.Contention()
	if c0.Claimed+c1.Claimed != units {
		t.Fatalf("claims = %d + %d, want %d total", c0.Claimed, c1.Claimed, units)
	}
}

// TestCampaignStoreKeySensitivity: a suite with a different seed shares
// the store but not the cache entries.
func TestCampaignStoreKeySensitivity(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewSuite(Options{Scale: ScaleQuick, Seed: 5, Store: st})
	if _, err := s1.Campaign(hwprofile.A100()); err != nil {
		t.Fatal(err)
	}
	s2 := NewSuite(Options{Scale: ScaleQuick, Seed: 6, Store: st})
	if _, err := s2.Campaign(hwprofile.A100()); err != nil {
		t.Fatal(err)
	}
	if got := s2.runs.Load(); got != 1 {
		t.Fatalf("different seed hit the cache (runs = %d)", got)
	}
	if st.Len() != 2 {
		t.Fatalf("store holds %d blobs, want 2 distinct keys", st.Len())
	}
}
