package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"golatest/internal/core"
)

// suite is shared across tests in this package: campaigns are cached, so
// the expensive quick-scale sweeps run once per test binary.
var suite = NewSuite(Options{Scale: ScaleQuick, Seed: 2025})

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byModel := map[string]Table1Row{}
	for _, r := range rows {
		byModel[r.Model] = r
	}
	a100 := byModel["A100-SXM4[0]"]
	if a100.SMCount != 108 || a100.FreqSteps != 81 || a100.MemFreqMHz != 1215 {
		t.Fatalf("A100 row: %+v", a100)
	}
	gh := byModel["GH200"]
	if gh.SMCount != 132 || gh.MaxSMFreqMHz != 1980 || gh.MinSMFreqMHz != 345 {
		t.Fatalf("GH200 row: %+v", gh)
	}
	rtx := byModel["RTX Quadro 6000"]
	if rtx.FreqSteps != 120 || rtx.NomSMFreqMHz != 1440 {
		t.Fatalf("RTX row: %+v", rtx)
	}
	var buf bytes.Buffer
	if err := RenderTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "| GH200 |") {
		t.Fatalf("render:\n%s", buf.String())
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := suite.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byModel := map[string]Table2Row{}
	for _, r := range rows {
		byModel[strings.Split(r.Model, "[")[0]] = r
	}
	a100 := byModel["A100-SXM4"]
	gh := byModel["GH200"]
	rtx := byModel["RTX Quadro 6000"]

	// Paper shape: A100 has the lowest worst-case ceiling (≤ ~30 ms),
	// GH200 the highest extreme, RTX between with a high mean.
	if a100.WorstMaxMs > 40 {
		t.Errorf("A100 worst max = %v, want ≲ 25", a100.WorstMaxMs)
	}
	if gh.WorstMaxMs < 200 {
		t.Errorf("GH200 worst max = %v, want ≥ 245-ish", gh.WorstMaxMs)
	}
	if rtx.WorstMaxMs < 150 {
		t.Errorf("RTX worst max = %v, want ≥ 200-ish", rtx.WorstMaxMs)
	}
	if !(a100.WorstMaxMs < rtx.WorstMaxMs && a100.WorstMaxMs < gh.WorstMaxMs) {
		t.Errorf("A100 not the lowest ceiling: %v vs rtx %v gh %v",
			a100.WorstMaxMs, rtx.WorstMaxMs, gh.WorstMaxMs)
	}
	// Best-case floors: A100 ≈ 4.4–6 ms, GH200 ≈ 5–6.5 ms.
	if a100.BestMinMs < 3.5 || a100.BestMinMs > 7 {
		t.Errorf("A100 best min = %v", a100.BestMinMs)
	}
	if gh.BestMinMs < 4.5 || gh.BestMinMs > 8 {
		t.Errorf("GH200 best min = %v", gh.BestMinMs)
	}

	var buf bytes.Buffer
	if err := RenderTable2(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "worst") || !strings.Contains(buf.String(), "best") {
		t.Fatalf("render:\n%s", buf.String())
	}
}

func TestFig3HeatmapsShape(t *testing.T) {
	// GH200 min heatmap: floor cells ≈5–7 ms dominate.
	hMin, err := suite.Fig3Heatmap("gh200", AggMin)
	if err != nil {
		t.Fatal(err)
	}
	min, _, _, _ := hMin.MinMax()
	if min < 4.5 || min > 7.5 {
		t.Errorf("GH200 min-heatmap floor = %v", min)
	}

	// GH200 max heatmap: the pathological columns (1260, 1875) dominate.
	hMax, err := suite.Fig3Heatmap("gh200", AggMax)
	if err != nil {
		t.Fatal(err)
	}
	_, max, _, maxPair := hMax.MinMax()
	if max < 200 {
		t.Errorf("GH200 max-heatmap peak = %v", max)
	}
	if tgt := maxPair[1]; tgt != 1260 && tgt != 1875 {
		t.Errorf("GH200 peak at target %v, want a pathological target", tgt)
	}

	// A100 max heatmap: everything below ~30 ms, and the row pattern is
	// direction-dependent (down-transitions cap higher).
	hA, err := suite.Fig3Heatmap("a100", AggMax)
	if err != nil {
		t.Fatal(err)
	}
	_, amax, _, _ := hA.MinMax()
	if amax > 40 {
		t.Errorf("A100 max-heatmap peak = %v, want ≤ ~25", amax)
	}

	// RTX max heatmap: banded by target — fast targets ~20 ms, the 930
	// column ~237 ms, mid band ~135 ms.
	hR, err := suite.Fig3Heatmap("rtx6000", AggMax)
	if err != nil {
		t.Fatal(err)
	}
	fast := hR.Get(1110, 750)
	hot := hR.Get(1110, 930)
	mid := hR.Get(750, 1110)
	if math.IsNaN(fast) || math.IsNaN(hot) || math.IsNaN(mid) {
		t.Fatalf("RTX cells missing: %v %v %v", fast, hot, mid)
	}
	if !(fast < 60 && hot > 180 && mid > 100 && mid < 180) {
		t.Errorf("RTX bands: fast=%v hot=%v mid=%v", fast, hot, mid)
	}

	var buf bytes.Buffer
	if err := hR.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "RTX Quadro 6000") {
		t.Fatal("render missing title")
	}
}

func TestFig4ViolinsShape(t *testing.T) {
	panels, err := suite.Fig4Violins()
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 3 {
		t.Fatalf("panels = %d", len(panels))
	}
	for _, p := range panels {
		if p.Increasing.Summary.N == 0 || p.Decreasing.Summary.N == 0 {
			t.Fatalf("%s: empty violin halves", p.Model)
		}
	}
	// A100 asymmetry: the two directions have clearly different medians.
	for _, p := range panels {
		if !strings.HasPrefix(p.Model, "A100") {
			continue
		}
		// Quick-scale campaigns compress per-pair ceilings (few tail
		// samples survive the outlier filter), so the asymmetry is much
		// smaller than at paper depth, but the direction must hold:
		// down-transitions cap higher (Fig. 3c's row pattern). The
		// full-scale regeneration in EXPERIMENTS.md shows the paper-sized
		// gap; the model-level gap is asserted in internal/hwprofile.
		up := p.Increasing.Summary.Median
		down := p.Decreasing.Summary.Median
		if down-up < 0.2 {
			t.Errorf("A100 direction asymmetry missing: up %v vs down %v", up, down)
		}
	}
}

func TestFigScatterMultiCluster(t *testing.T) {
	// Fig. 5: the GH200 1770→1260 pair forms multiple separated clusters.
	sc, err := suite.FigScatter("gh200", core.Pair{InitMHz: 1770, TargetMHz: 1260}, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.SamplesMs) < 100 {
		t.Fatalf("samples = %d", len(sc.SamplesMs))
	}
	if sc.NumClusters < 2 {
		t.Errorf("NumClusters = %d, want ≥ 2 (Fig. 5 structure)", sc.NumClusters)
	}
	if !math.IsNaN(sc.Silhouette) && sc.Silhouette < 0.4 {
		t.Errorf("silhouette = %v, want ≥ 0.4 (§VII-B)", sc.Silhouette)
	}
}

func TestFigScatterSingleCluster(t *testing.T) {
	// Fig. 6-style pair: a non-pathological GH200 pair is one cluster
	// plus scattered outliers.
	sc, err := suite.FigScatter("gh200", core.Pair{InitMHz: 705, TargetMHz: 1095}, 120)
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumClusters < 1 || sc.NumClusters > 2 {
		t.Errorf("NumClusters = %d, want 1 (occasionally 2)", sc.NumClusters)
	}
	outliers := 0
	for _, f := range sc.OutlierFlag {
		if f {
			outliers++
		}
	}
	if frac := float64(outliers) / float64(len(sc.SamplesMs)); frac > 0.10 {
		t.Errorf("outlier share = %v, want ≤ 0.10 (Algorithm 3 halt rule)", frac)
	}
}

func TestRangeHeatmapsAndFig9(t *testing.T) {
	h7, err := suite.RangeHeatmap(AggMin)
	if err != nil {
		t.Fatal(err)
	}
	h8, err := suite.RangeHeatmap(AggMax)
	if err != nil {
		t.Fatal(err)
	}
	minMean := h7.Mean()
	maxMean := h8.Mean()
	if math.IsNaN(minMean) || math.IsNaN(maxMean) {
		t.Fatal("range heatmaps empty")
	}
	// Fig. 7 vs Fig. 8: unit spread on minima is much smaller than on
	// maxima.
	if minMean >= maxMean {
		t.Errorf("min-range mean %v not below max-range mean %v", minMean, maxMean)
	}
	if minMean > 1.5 {
		t.Errorf("min-range mean = %v ms, paper shows ≈0.1–0.3", minMean)
	}

	boxes, err := suite.Fig9Boxes(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) != 12 { // 3 pairs × 4 units
		t.Fatalf("boxes = %d, want 12", len(boxes))
	}
}

func TestClusterCensusShape(t *testing.T) {
	rows, err := suite.ClusterCensus()
	if err != nil {
		t.Fatal(err)
	}
	byModel := map[string]ClusterCensusRow{}
	for _, r := range rows {
		byModel[strings.Split(r.Model, "[")[0]] = r
	}
	// Paper: A100 96 % single cluster, GH200 85 %, RTX 70 %; GH200 is the
	// only one exceeding two clusters.
	if a := byModel["A100-SXM4"]; a.SingleClusterShare < 0.75 {
		t.Errorf("A100 single-cluster share = %v, want high (paper 0.96)", a.SingleClusterShare)
	}
	if g := byModel["GH200"]; g.MaxClusters < 2 {
		t.Errorf("GH200 max clusters = %d, want ≥ 2", g.MaxClusters)
	}
	if r := byModel["RTX Quadro 6000"]; r.SingleClusterShare > 0.95 {
		t.Errorf("RTX single-cluster share = %v, want the lowest of the three", r.SingleClusterShare)
	}
}

func TestTraces(t *testing.T) {
	cpuTrace, err := Fig1CPUTrace()
	if err != nil {
		t.Fatal(err)
	}
	gpuTrace, err := Fig2GPUTrace()
	if err != nil {
		t.Fatal(err)
	}
	if len(cpuTrace) < 3 || len(gpuTrace) < 3 {
		t.Fatal("traces too short")
	}
	if cpuTrace[0].FreqMHz != 3600 || cpuTrace[len(cpuTrace)-1].FreqMHz != 1200 {
		t.Fatalf("CPU trace endpoints: %v → %v", cpuTrace[0].FreqMHz, cpuTrace[len(cpuTrace)-1].FreqMHz)
	}
	// The GPU trace must contain the ACC-receipt event between request
	// and completion — the Fig. 2 distinction.
	var sawReceipt bool
	for _, tp := range gpuTrace {
		if strings.Contains(tp.Event, "received by ACC") {
			sawReceipt = true
			if tp.FreqMHz != 1500 {
				t.Errorf("clock already changed at receipt: %v", tp.FreqMHz)
			}
		}
	}
	if !sawReceipt {
		t.Fatal("GPU trace missing receipt event")
	}
	if out := RenderTrace(gpuTrace); !strings.Contains(out, "received by ACC") {
		t.Fatalf("RenderTrace:\n%s", out)
	}
}

func TestCIDegeneration(t *testing.T) {
	rows, err := CIDegeneration([]int{50, 400, 3200})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The detection band and in-band share must shrink monotonically
	// with n — §V-A's degeneration.
	for i := 1; i < len(rows); i++ {
		if rows[i].BandUs >= rows[i-1].BandUs {
			t.Errorf("band not shrinking: %+v", rows)
		}
		if rows[i].InBandShare >= rows[i-1].InBandShare {
			t.Errorf("in-band share not shrinking: %+v", rows)
		}
	}
	if rows[0].InBandShare < 0.1 {
		t.Errorf("n=50 in-band share = %v, unexpectedly tiny", rows[0].InBandShare)
	}
	if rows[2].InBandShare > 0.2 {
		t.Errorf("n=3200 in-band share = %v, degeneration not visible", rows[2].InBandShare)
	}
}

func TestCPUvsGPUScaleGap(t *testing.T) {
	rows, err := suite.CPUvsGPU()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	cpuRow := rows[0]
	if cpuRow.MedianMs > 1 {
		t.Errorf("CPU median = %v ms, want sub-millisecond", cpuRow.MedianMs)
	}
	for _, r := range rows[1:] {
		if r.MedianMs < 4 {
			t.Errorf("%s median = %v ms, want ≥ 4 (GPU scale)", r.Platform, r.MedianMs)
		}
		if r.MedianMs < 20*cpuRow.MedianMs {
			t.Errorf("%s/%s gap = %vx, want ≫ 20x", r.Platform, cpuRow.Platform,
				r.MedianMs/cpuRow.MedianMs)
		}
	}
}

func TestCampaignCaching(t *testing.T) {
	a, err := suite.CampaignByKey("a100")
	if err != nil {
		t.Fatal(err)
	}
	b, err := suite.CampaignByKey("a100")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("campaign not cached")
	}
}

func TestUnknownProfileKey(t *testing.T) {
	if _, err := suite.CampaignByKey("h100"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := suite.Fig3Heatmap("h100", AggMax); err == nil {
		t.Fatal("unknown key accepted by Fig3Heatmap")
	}
}
