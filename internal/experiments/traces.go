package experiments

import (
	"fmt"

	"golatest/internal/ftalat"
	"golatest/internal/sim/clock"
	"golatest/internal/sim/cpu"
	"golatest/internal/sim/gpu"
	"golatest/internal/stats"
)

// TracePoint is one sample of a frequency-change timeline (Fig. 1/2):
// virtual time relative to the change request, the effective clock, and
// an optional event annotation.
type TracePoint struct {
	TimeMs  float64
	FreqMHz float64
	Event   string
}

// skylakeCore builds the CPU the FTaLaT-side experiments run on: a
// Skylake-SP-like core with tens-of-µs transitions (Fig. 1's regime).
func skylakeCore(seed uint64) (*cpu.Core, error) {
	return cpu.New(cpu.Config{
		Name:     "Skylake-SP (simulated)",
		FreqsMHz: []float64{1200, 1500, 1800, 2100, 2400, 2700, 3000, 3300, 3600},
		Transition: cpu.UniformTransition{
			BaseNs:      25_000,
			JitterNs:    20_000,
			UpPenaltyNs: 25_000,
		},
		Seed: seed,
	}, clock.New())
}

// Fig1CPUTrace samples a CPU frequency change: request, the transition
// window at the old clock, and the settled new clock.
func Fig1CPUTrace() ([]TracePoint, error) {
	c, err := skylakeCore(1)
	if err != nil {
		return nil, err
	}
	clk := c.Clock()
	if _, err := c.SetFrequency(3600); err != nil {
		return nil, err
	}
	clk.Advance(1_000_000)
	t0 := clk.Now()
	inj, err := c.SetFrequency(1200)
	if err != nil {
		return nil, err
	}
	var trace []TracePoint
	add := func(event string) {
		trace = append(trace, TracePoint{
			TimeMs:  float64(clk.Now()-t0) / 1e6,
			FreqMHz: c.CurrentFreqMHz(),
			Event:   event,
		})
	}
	add("request issued")
	for clk.Now() < inj.CompleteNs+50_000 {
		clk.Advance(10_000)
		add("")
	}
	add("settled")
	return annotateChange(trace), nil
}

// Fig2GPUTrace samples an accelerator frequency change: the request on
// the CPU, its arrival at the device after the bus delay, the transition,
// and the settled clock — the switching-vs-transition split of Fig. 2.
func Fig2GPUTrace() ([]TracePoint, error) {
	clk := clock.New()
	dev, err := gpu.New(gpu.Config{
		Name:     "trace-gpu",
		SMCount:  4,
		FreqsMHz: []float64{600, 900, 1200, 1500},
		Latency:  traceModel{},
		Seed:     2,
	}, clk)
	if err != nil {
		return nil, err
	}
	clk.Advance(1_000_000)
	t0 := clk.Now()
	inj, err := dev.SetFrequency(600)
	if err != nil {
		return nil, err
	}
	var trace []TracePoint
	add := func(event string) {
		trace = append(trace, TracePoint{
			TimeMs:  float64(clk.Now()-t0) / 1e6,
			FreqMHz: dev.CurrentFreqMHz(),
			Event:   event,
		})
	}
	add("request issued on CPU")
	clk.AdvanceTo(inj.ApplyNs)
	add("request received by ACC")
	for clk.Now() < inj.CompleteNs+1_000_000 {
		clk.Advance(500_000)
		add("")
	}
	add("settled")
	return annotateChange(trace), nil
}

// traceModel gives the Fig. 2 trace a visible bus delay and transition.
type traceModel struct{}

func (traceModel) Sample(init, target float64, r *clock.Rand) gpu.Transition {
	return gpu.Transition{BusDelayNs: 2_000_000, DurationNs: 10_000_000}
}

// annotateChange marks the first sample at the new clock.
func annotateChange(trace []TracePoint) []TracePoint {
	if len(trace) == 0 {
		return trace
	}
	initial := trace[0].FreqMHz
	for i := range trace {
		if trace[i].FreqMHz != initial {
			if trace[i].Event == "" {
				trace[i].Event = "new frequency effective"
			}
			break
		}
	}
	return trace
}

// CIDegenRow is one row of the §V-A degeneration study: phase-1
// population size, the resulting FTaLaT detection-interval width, the
// share of iterations that fall inside it, and the measured mean number
// of iterations scanned before detection.
type CIDegenRow struct {
	N                int
	BandUs           float64
	InBandShare      float64
	MeanDetectIters  float64
	FailedDetections int
}

// CIDegeneration measures how FTaLaT's mean±2·stderr detection interval
// collapses as the phase-1 population grows — the §V-A argument for the
// accelerator methodology's 2σ band. Samples per population size come
// from the simulated Skylake core.
func CIDegeneration(sizes []int) ([]CIDegenRow, error) {
	var rows []CIDegenRow
	for _, n := range sizes {
		c, err := skylakeCore(uint64(10 + n))
		if err != nil {
			return nil, err
		}
		r, err := ftalat.NewRunner(c, ftalat.Config{
			Frequencies:  []float64{1200, 2400},
			MeasureIters: n,
			Repeats:      10,
		})
		if err != nil {
			return nil, err
		}
		p1, err := r.Phase1()
		if err != nil {
			return nil, err
		}
		target := p1.Stats[1200]
		band := 2 * target.StdErr()
		// Share of individual iterations inside mean ± band, assuming
		// the population is approximately normal.
		z := band / target.Std
		inBand := stats.NormalCDF(z) - stats.NormalCDF(-z)

		row := CIDegenRow{N: n, BandUs: band, InBandShare: inBand}
		var sum float64
		var ok int
		for i := 0; i < 10; i++ {
			m, err := r.MeasureOnce(ftalat.Pair{InitMHz: 2400, TargetMHz: 1200}, target)
			if err != nil {
				row.FailedDetections++
				continue
			}
			sum += float64(m.DetectIters)
			ok++
		}
		if ok > 0 {
			row.MeanDetectIters = sum / float64(ok)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CPUvsGPURow is the §VII headline comparison: transition scale per
// platform.
type CPUvsGPURow struct {
	Platform string
	MedianMs float64
	MaxMs    float64
}

// CPUvsGPU runs FTaLaT on the simulated CPU and summarises the cached GPU
// campaigns, demonstrating "CPUs complete the frequency transitions in
// microseconds ... while GPUs require tens to hundreds of milliseconds".
func (s *Suite) CPUvsGPU() ([]CPUvsGPURow, error) {
	c, err := skylakeCore(77)
	if err != nil {
		return nil, err
	}
	r, err := ftalat.NewRunner(c, ftalat.Config{
		Frequencies: []float64{1200, 2400, 3600},
		Repeats:     15,
	})
	if err != nil {
		return nil, err
	}
	cpuRes, err := r.Run()
	if err != nil {
		return nil, err
	}
	var cpuAll []float64
	for _, pr := range cpuRes.Pairs {
		for _, us := range pr.Samples {
			cpuAll = append(cpuAll, us/1000) // µs → ms
		}
	}
	cpuSummary := stats.Summarize(cpuAll)
	rows := []CPUvsGPURow{{
		Platform: cpuRes.CoreName,
		MedianMs: cpuSummary.Median,
		MaxMs:    cpuSummary.Max,
	}}

	for _, key := range []string{"rtx6000", "a100", "gh200"} {
		res, err := s.CampaignByKey(key)
		if err != nil {
			return nil, err
		}
		var all []float64
		for _, pr := range res.Pairs {
			all = append(all, pr.Kept...)
		}
		sm := stats.Summarize(all)
		rows = append(rows, CPUvsGPURow{Platform: res.DeviceName, MedianMs: sm.Median, MaxMs: sm.Max})
	}
	return rows, nil
}

// RenderTrace writes a trace as an aligned text table.
func RenderTrace(trace []TracePoint) string {
	out := fmt.Sprintf("%10s %10s  %s\n", "t [ms]", "f [MHz]", "event")
	for _, tp := range trace {
		if tp.Event == "" {
			continue
		}
		out += fmt.Sprintf("%10.3f %10.0f  %s\n", tp.TimeMs, tp.FreqMHz, tp.Event)
	}
	return out
}
