package nvml

import (
	"testing"

	"golatest/internal/sim/clock"
	"golatest/internal/sim/gpu"
)

type fixedModel struct{ bus, dur int64 }

func (m fixedModel) Sample(init, target float64, r *clock.Rand) gpu.Transition {
	return gpu.Transition{BusDelayNs: m.bus, DurationNs: m.dur}
}

func newLib(t *testing.T, n int) (*Library, *clock.Clock) {
	t.Helper()
	clk := clock.New()
	devs := make([]*gpu.Device, n)
	for i := range devs {
		d, err := gpu.New(gpu.Config{
			Name:         "nvml-gpu",
			Architecture: "Test",
			Driver:       "123.45",
			SMCount:      3,
			MemFreqMHz:   1215,
			FreqsMHz:     []float64{400, 800, 1200},
			Latency:      fixedModel{bus: 2000, dur: 5_000_000},
			Seed:         uint64(i + 1),
		}, clk)
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
	}
	lib, err := New(devs...)
	if err != nil {
		t.Fatal(err)
	}
	return lib, clk
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("empty device list accepted")
	}
	if _, err := New(nil); err == nil {
		t.Fatal("nil device accepted")
	}
}

func TestEnumeration(t *testing.T) {
	lib, _ := newLib(t, 3)
	if lib.DeviceCount() != 3 {
		t.Fatalf("DeviceCount = %d", lib.DeviceCount())
	}
	for i := 0; i < 3; i++ {
		d, err := lib.DeviceHandleByIndex(i)
		if err != nil {
			t.Fatal(err)
		}
		if d.Index() != i {
			t.Fatalf("Index = %d, want %d", d.Index(), i)
		}
	}
	if _, err := lib.DeviceHandleByIndex(3); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := lib.DeviceHandleByIndex(-1); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestDeviceMetadata(t *testing.T) {
	lib, _ := newLib(t, 1)
	d, _ := lib.DeviceHandleByIndex(0)
	if d.Name() != "nvml-gpu" || d.Architecture() != "Test" || d.DriverVersion() != "123.45" {
		t.Fatalf("metadata: %s %s %s", d.Name(), d.Architecture(), d.DriverVersion())
	}
	if d.SMCount() != 3 || d.MemClockMHz() != 1215 {
		t.Fatalf("SMCount=%d MemClock=%v", d.SMCount(), d.MemClockMHz())
	}
	clocks := d.SupportedSMClocks()
	if len(clocks) != 3 || clocks[0] != 400 || clocks[2] != 1200 {
		t.Fatalf("SupportedSMClocks = %v", clocks)
	}
	// The returned slice must be a copy.
	clocks[0] = 9999
	if d.SupportedSMClocks()[0] != 400 {
		t.Fatal("SupportedSMClocks leaked internal state")
	}
}

func TestSetApplicationsClocks(t *testing.T) {
	lib, clk := newLib(t, 1)
	d, _ := lib.DeviceHandleByIndex(0)

	before := clk.Now()
	if err := d.SetApplicationsClocks(1215, 800); err != nil {
		t.Fatal(err)
	}
	if clk.Now() <= before {
		t.Fatal("driver call consumed no host time")
	}
	if got := d.ApplicationsClockSM(); got != 800 {
		t.Fatalf("ApplicationsClockSM = %v", got)
	}
	// Wrong memory clock and unsupported SM clock are rejected.
	if err := d.SetApplicationsClocks(9999, 800); err == nil {
		t.Fatal("wrong memory clock accepted")
	}
	if err := d.SetApplicationsClocks(0, 777); err == nil {
		t.Fatal("unsupported SM clock accepted")
	}
}

func TestClockInfoTracksTransition(t *testing.T) {
	lib, clk := newLib(t, 1)
	d, _ := lib.DeviceHandleByIndex(0)
	if err := d.SetApplicationsClocks(0, 400); err != nil {
		t.Fatal(err)
	}
	// Immediately after the call the transition (5 ms) is in flight.
	if got := d.ClockInfoSM(); got != 1200 {
		t.Fatalf("mid-transition ClockInfoSM = %v, want 1200", got)
	}
	clk.Advance(10_000_000)
	if got := d.ClockInfoSM(); got != 400 {
		t.Fatalf("post-transition ClockInfoSM = %v, want 400", got)
	}
}

func TestThrottleAndTemperatureQueries(t *testing.T) {
	lib, _ := newLib(t, 1)
	d, _ := lib.DeviceHandleByIndex(0)
	if r := d.ClocksThrottleReasons(); r != gpu.ThrottleNone {
		t.Fatalf("throttle reasons at rest = %v", r)
	}
	if temp := d.Temperature(); temp != 30 {
		t.Fatalf("temperature at rest = %v, want ambient 30", temp)
	}
}

func TestTotalEnergyConsumption(t *testing.T) {
	lib, clk := newLib(t, 1)
	d, _ := lib.DeviceHandleByIndex(0)
	e0 := d.TotalEnergyConsumption()
	clk.Advance(int64(5_000_000_000)) // 5 s idle
	e1 := d.TotalEnergyConsumption()
	// 5 s at the 60 W idle default ≈ 300 J = 300000 mJ.
	if diff := e1 - e0; diff < 290_000 || diff > 310_000 {
		t.Fatalf("idle energy delta = %d mJ, want ≈300000", diff)
	}
}

func TestSimAccessorExposesGroundTruth(t *testing.T) {
	lib, _ := newLib(t, 1)
	d, _ := lib.DeviceHandleByIndex(0)
	if err := d.SetApplicationsClocks(0, 800); err != nil {
		t.Fatal(err)
	}
	inj, ok := d.Sim().LastInjection()
	if !ok || inj.TargetMHz != 800 {
		t.Fatalf("ground truth injection = %+v, %v", inj, ok)
	}
	if inj.SwitchingLatencyNs() != 2000+5_000_000 {
		t.Fatalf("injected latency = %d", inj.SwitchingLatencyNs())
	}
}
