// Package nvml is the management-library shim over simulated devices: the
// subset of the NVIDIA Management Library surface the LATEST tool uses —
// device enumeration, application clock control, throttle-reason and
// temperature queries — with realistic driver-call costs on the host
// clock.
//
// The frequency change request travels to the device with a bus delay and
// completes after a transition period (both inside the device model);
// this layer only accounts for the host-side blocking time of the ioctl,
// reproducing the switching-vs-transition split of the paper's Fig. 2.
package nvml

import (
	"fmt"
	"time"

	"golatest/internal/sim/gpu"
)

// callCost is the host-side blocking time of one NVML driver call.
const callCost = 15 * time.Microsecond

// Library is an initialised NVML session over a fixed set of devices.
type Library struct {
	devices []*Device
}

// New creates a library over the given simulated devices (index order is
// preserved, mirroring nvmlDeviceGetHandleByIndex).
func New(devs ...*gpu.Device) (*Library, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("nvml: no devices")
	}
	lib := &Library{}
	for i, d := range devs {
		if d == nil {
			return nil, fmt.Errorf("nvml: nil device at index %d", i)
		}
		lib.devices = append(lib.devices, &Device{sim: d, index: i})
	}
	return lib, nil
}

// DeviceCount returns the number of attached devices.
func (l *Library) DeviceCount() int { return len(l.devices) }

// DeviceHandleByIndex returns the handle of device i.
func (l *Library) DeviceHandleByIndex(i int) (*Device, error) {
	if i < 0 || i >= len(l.devices) {
		return nil, fmt.Errorf("nvml: device index %d out of range [0, %d)", i, len(l.devices))
	}
	return l.devices[i], nil
}

// Device is one managed GPU handle.
type Device struct {
	sim   *gpu.Device
	index int
}

// Index returns the enumeration index of this device.
func (d *Device) Index() int { return d.index }

// Sim exposes the underlying simulated device. Production code must not
// use it; it exists so validation tests and experiment harnesses can read
// the injected ground truth that real hardware cannot provide.
func (d *Device) Sim() *gpu.Device { return d.sim }

// Name returns the device model name.
func (d *Device) Name() string { return d.sim.Config().Name }

// Architecture returns the device architecture name.
func (d *Device) Architecture() string { return d.sim.Config().Architecture }

// DriverVersion returns the driver version string.
func (d *Device) DriverVersion() string { return d.sim.Config().Driver }

// SMCount returns the number of streaming multiprocessors.
func (d *Device) SMCount() int { return d.sim.Config().SMCount }

// MemClockMHz returns the memory clock at the default memory P-state.
func (d *Device) MemClockMHz() float64 { return d.sim.Config().MemFreqMHz }

// SupportedSMClocks returns the supported SM clock steps ascending, like
// nvmlDeviceGetSupportedGraphicsClocks.
func (d *Device) SupportedSMClocks() []float64 {
	cfg := d.sim.Config()
	out := make([]float64, len(cfg.FreqsMHz))
	copy(out, cfg.FreqsMHz)
	return out
}

// bill advances the host clock by one driver-call cost.
func (d *Device) bill() { d.sim.Clock().Sleep(callCost) }

// SetApplicationsClocks programs the memory and SM application clocks.
// Only the SM clock is modelled; the memory clock must match the default
// memory P-state. The call blocks the host for the driver-call cost; the
// device applies the change asynchronously after the bus delay and
// transition sampled by its latency model.
func (d *Device) SetApplicationsClocks(memMHz, smMHz float64) error {
	d.bill()
	cfg := d.sim.Config()
	if memMHz != 0 && memMHz != cfg.MemFreqMHz {
		return fmt.Errorf("nvml: %s: unsupported memory clock %v (fixed at %v)",
			cfg.Name, memMHz, cfg.MemFreqMHz)
	}
	_, err := d.sim.SetFrequency(smMHz)
	return err
}

// ClocksThrottleReasons returns the active throttle-reason bitmask.
func (d *Device) ClocksThrottleReasons() gpu.ThrottleReason {
	d.bill()
	return d.sim.ThrottleReasons()
}

// Temperature returns the die temperature in °C.
func (d *Device) Temperature() float64 {
	d.bill()
	return d.sim.Temperature()
}

// ClockInfoSM returns the currently effective SM clock in MHz.
func (d *Device) ClockInfoSM() float64 {
	d.bill()
	return d.sim.CurrentFreqMHz()
}

// ApplicationsClockSM returns the programmed (requested) SM clock in MHz.
func (d *Device) ApplicationsClockSM() float64 {
	d.bill()
	return d.sim.SetFreqMHz()
}

// TotalEnergyConsumption returns the device's cumulative energy in
// millijoules, like nvmlDeviceGetTotalEnergyConsumption.
func (d *Device) TotalEnergyConsumption() uint64 {
	d.bill()
	return uint64(d.sim.EnergyJ() * 1000)
}
