// Package ftalat implements the FTaLaT CPU frequency-transition-latency
// methodology (§IV) against the simulated DVFS core: the baseline the
// paper's accelerator methodology descends from and contrasts with.
//
// Differences from the accelerator methodology, faithfully kept:
//
//   - Detection uses the confidence interval of the mean
//     (mean ± 2·stderr), not the two-standard-deviation population band;
//     §V-A explains why this degenerates on many-core accelerators but
//     works on a single CPU core.
//   - No timer synchronisation: the workload and the change request share
//     the CPU's own clock.
//   - Confirmation runs exactly one hundred extra iterations.
package ftalat

import (
	"fmt"
	"math"

	"golatest/internal/sim/cpu"
	"golatest/internal/stats"
	"golatest/internal/workload"
)

// Pair is an ordered CPU frequency pair.
type Pair struct {
	InitMHz   float64
	TargetMHz float64
}

// String renders the pair like the paper writes transitions.
func (p Pair) String() string { return fmt.Sprintf("%.0f→%.0f MHz", p.InitMHz, p.TargetMHz) }

// Config tunes the FTaLaT run.
type Config struct {
	// Frequencies are the P-states under test (≥ 2).
	Frequencies []float64
	// IterTargetNs sizes the workload iteration at the slowest frequency
	// (default 10 µs — the CPU workload is much finer-grained than the
	// GPU's, matching its µs-scale transitions).
	IterTargetNs float64
	// WarmIters and MeasureIters shape phase 1 (defaults 200 and 100).
	// Keeping the phase-1 population modest keeps the CI detection
	// interval wider than the timer quantisation; the §V-A degeneration
	// study sweeps MeasureIters upward to show what goes wrong.
	WarmIters    int
	MeasureIters int
	// Confidence for interval tests (default 0.95).
	Confidence float64
	// DelayIters run at the initial frequency before the change
	// (default 100).
	DelayIters int
	// MaxCaptureIters bounds the detection scan (default 100000).
	MaxCaptureIters int
	// ConfirmIters is FTaLaT's confirmation population (default 100).
	ConfirmIters int
	// Repeats is the number of measurements per pair (default 30).
	Repeats int
	// DetectK is the half-width of the detection interval in standard
	// errors (FTaLaT uses 2). Exposed for the §V-A degeneration study.
	DetectK float64
}

func (c Config) withDefaults() (Config, error) {
	if len(c.Frequencies) < 2 {
		return c, fmt.Errorf("ftalat: need at least two frequencies")
	}
	if c.IterTargetNs == 0 {
		c.IterTargetNs = 10_000
	}
	if c.WarmIters == 0 {
		c.WarmIters = 200
	}
	if c.MeasureIters == 0 {
		c.MeasureIters = 100
	}
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	if c.DelayIters == 0 {
		c.DelayIters = 100
	}
	if c.MaxCaptureIters == 0 {
		c.MaxCaptureIters = 100_000
	}
	if c.ConfirmIters == 0 {
		c.ConfirmIters = 100
	}
	if c.Repeats == 0 {
		c.Repeats = 30
	}
	if c.DetectK == 0 {
		c.DetectK = 2
	}
	return c, nil
}

// Runner drives FTaLaT on one simulated core.
type Runner struct {
	core *cpu.Core
	cfg  Config
}

// NewRunner validates the configuration against the core's P-states.
func NewRunner(core *cpu.Core, cfg Config) (*Runner, error) {
	if core == nil {
		return nil, fmt.Errorf("ftalat: nil core")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	supported := map[float64]bool{}
	for _, f := range core.Config().FreqsMHz {
		supported[f] = true
	}
	for _, f := range cfg.Frequencies {
		if !supported[f] {
			return nil, fmt.Errorf("ftalat: frequency %v MHz not supported by %s",
				f, core.Config().Name)
		}
	}
	return &Runner{core: core, cfg: cfg}, nil
}

// Config returns the effective configuration.
func (r *Runner) Config() Config { return r.cfg }

func (r *Runner) cycles() float64 {
	slow := r.cfg.Frequencies[0]
	for _, f := range r.cfg.Frequencies[1:] {
		if f < slow {
			slow = f
		}
	}
	return workload.CyclesForIterDuration(r.cfg.IterTargetNs, slow)
}

// Phase1Result mirrors the first FTaLaT phase: per-frequency iteration
// statistics (in microseconds — CPU scale) and the distinguishable pairs.
type Phase1Result struct {
	Stats      map[float64]stats.MeanStd
	ValidPairs []Pair
	Excluded   []Pair
}

// Phase1 characterises every frequency and tests all pairs.
func (r *Runner) Phase1() (*Phase1Result, error) {
	cycles := r.cycles()
	res := &Phase1Result{Stats: make(map[float64]stats.MeanStd)}
	for _, f := range r.cfg.Frequencies {
		inj, err := r.core.SetFrequency(f)
		if err != nil {
			return nil, err
		}
		// Settle past the transition, then warm.
		r.settlePast(inj)
		if _, err := r.core.RunIterations(r.cfg.WarmIters, cycles); err != nil {
			return nil, err
		}
		samples, err := r.core.RunIterations(r.cfg.MeasureIters, cycles)
		if err != nil {
			return nil, err
		}
		res.Stats[f] = describeUs(samples)
	}
	for _, init := range r.cfg.Frequencies {
		for _, target := range r.cfg.Frequencies {
			if init == target {
				continue
			}
			iv := stats.MeanDiffCI(res.Stats[init], res.Stats[target], r.cfg.Confidence)
			pair := Pair{init, target}
			if iv.ContainsZero() || math.IsNaN(iv.Lo) {
				res.Excluded = append(res.Excluded, pair)
			} else {
				res.ValidPairs = append(res.ValidPairs, pair)
			}
		}
	}
	return res, nil
}

func (r *Runner) settlePast(inj cpu.Injection) {
	clk := r.core.Clock()
	if inj.CompleteNs > clk.Now() {
		clk.AdvanceTo(inj.CompleteNs)
	}
	clk.Advance(10_000) // small guard band past the transition
}

// Measurement is one accepted transition-latency observation.
type Measurement struct {
	Pair Pair
	// LatencyUs is t_e − t_s in microseconds.
	LatencyUs float64
	// DetectIters counts iterations scanned before detection, the §V-A
	// degeneration metric.
	DetectIters int
	// InjectedUs is the simulator ground truth.
	InjectedUs float64
}

// PairResult is a pair's campaign.
type PairResult struct {
	Pair     Pair
	Samples  []float64 // µs
	Injected []float64 // µs
	Failures int
	Summary  stats.Summary
}

// Result is a full FTaLaT run.
type Result struct {
	CoreName string
	Phase1   *Phase1Result
	Pairs    []*PairResult
}
