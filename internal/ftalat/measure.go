package ftalat

import (
	"errors"
	"math"

	"golatest/internal/sim/cpu"
	"golatest/internal/stats"
)

// errDetectFailed marks a run where no iteration entered the detection
// interval within the capture budget.
var errDetectFailed = errors.New("ftalat: no iteration entered the detection interval")

// errConfirmFailed marks a run where the hundred confirmation iterations
// did not match the target frequency — the core was still adapting (§IV).
var errConfirmFailed = errors.New("ftalat: confirmation mean did not match the target frequency")

// describeUs summarises iteration durations in microseconds.
func describeUs(samples []cpu.IterSample) stats.MeanStd {
	var acc stats.Accumulator
	for _, s := range samples {
		acc.Add(float64(s.DurNs()) / 1e3)
	}
	return acc.MeanStd()
}

// MeasureOnce performs a single FTaLaT phase-2 run for the pair.
func (r *Runner) MeasureOnce(pair Pair, target stats.MeanStd) (Measurement, error) {
	cycles := r.cycles()

	// Initial frequency, settled and warm.
	inj, err := r.core.SetFrequency(pair.InitMHz)
	if err != nil {
		return Measurement{}, err
	}
	r.settlePast(inj)
	if _, err := r.core.RunIterations(r.cfg.DelayIters, cycles); err != nil {
		return Measurement{}, err
	}

	// Issue the change and scan iterations for the first one inside the
	// FTaLaT detection interval: target mean ± DetectK standard errors.
	ts := r.core.Clock().Now()
	tinj, err := r.core.SetFrequency(pair.TargetMHz)
	if err != nil {
		return Measurement{}, err
	}
	band := target.StdErr() * r.cfg.DetectK
	var te int64
	detect := -1
	for i := 0; i < r.cfg.MaxCaptureIters; i++ {
		it, err := r.core.RunIterations(1, cycles)
		if err != nil {
			return Measurement{}, err
		}
		durUs := float64(it[0].DurNs()) / 1e3
		if math.Abs(durUs-target.Mean) <= band {
			te = it[0].EndNs
			detect = i
			break
		}
	}
	if detect < 0 {
		return Measurement{}, errDetectFailed
	}

	// Confirmation: one hundred additional iterations whose mean must be
	// statistically indistinguishable from the phase-1 target mean.
	confirm, err := r.core.RunIterations(r.cfg.ConfirmIters, cycles)
	if err != nil {
		return Measurement{}, err
	}
	tail := describeUs(confirm)
	if iv := stats.MeanDiffCI(tail, target, r.cfg.Confidence); !iv.ContainsZero() {
		return Measurement{}, errConfirmFailed
	}

	return Measurement{
		Pair:        pair,
		LatencyUs:   float64(te-ts) / 1e3,
		DetectIters: detect,
		InjectedUs:  float64(tinj.TransitionLatencyNs()) / 1e3,
	}, nil
}

// MeasurePair repeats MeasureOnce Repeats times, tolerating discards.
func (r *Runner) MeasurePair(pair Pair, p1 *Phase1Result) (*PairResult, error) {
	target, ok := p1.Stats[pair.TargetMHz]
	if !ok {
		return nil, errors.New("ftalat: pair not characterised in phase 1")
	}
	pr := &PairResult{Pair: pair}
	maxAttempts := 4 * r.cfg.Repeats
	for attempts := 0; len(pr.Samples) < r.cfg.Repeats && attempts < maxAttempts; attempts++ {
		m, err := r.MeasureOnce(pair, target)
		if err != nil {
			if errors.Is(err, errDetectFailed) || errors.Is(err, errConfirmFailed) {
				pr.Failures++
				continue
			}
			return nil, err
		}
		pr.Samples = append(pr.Samples, m.LatencyUs)
		pr.Injected = append(pr.Injected, m.InjectedUs)
	}
	pr.Summary = stats.Summarize(pr.Samples)
	return pr, nil
}

// Run executes the full FTaLaT campaign over all valid pairs.
func (r *Runner) Run() (*Result, error) {
	p1, err := r.Phase1()
	if err != nil {
		return nil, err
	}
	res := &Result{CoreName: r.core.Config().Name, Phase1: p1}
	for _, pair := range p1.ValidPairs {
		pr, err := r.MeasurePair(pair, p1)
		if err != nil {
			return nil, err
		}
		res.Pairs = append(res.Pairs, pr)
	}
	return res, nil
}
