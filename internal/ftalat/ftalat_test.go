package ftalat

import (
	"math"
	"testing"

	"golatest/internal/sim/clock"
	"golatest/internal/sim/cpu"
	"golatest/internal/stats"
)

func statsMedian(xs []float64) float64 { return stats.Median(xs) }

func testCore(t *testing.T, tr cpu.TransitionModel) *cpu.Core {
	t.Helper()
	c, err := cpu.New(cpu.Config{
		Name:       "ftalat-core",
		FreqsMHz:   []float64{1200, 1800, 2400, 3000},
		Transition: tr,
		Seed:       5,
	}, clock.New())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func quickCfg(freqs ...float64) Config {
	return Config{Frequencies: freqs, Repeats: 10}
}

func TestNewRunnerValidation(t *testing.T) {
	c := testCore(t, cpu.UniformTransition{BaseNs: 30_000})
	if _, err := NewRunner(nil, quickCfg(1200, 2400)); err == nil {
		t.Error("nil core accepted")
	}
	if _, err := NewRunner(c, Config{Frequencies: []float64{1200}}); err == nil {
		t.Error("single frequency accepted")
	}
	if _, err := NewRunner(c, quickCfg(1200, 1234)); err == nil {
		t.Error("unsupported frequency accepted")
	}
	if _, err := NewRunner(c, quickCfg(1200, 2400)); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestPhase1Distinguishes(t *testing.T) {
	c := testCore(t, cpu.UniformTransition{BaseNs: 30_000})
	r, err := NewRunner(c, quickCfg(1200, 2400, 3000))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := r.Phase1()
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.ValidPairs) != 6 || len(p1.Excluded) != 0 {
		t.Fatalf("valid=%d excluded=%d", len(p1.ValidPairs), len(p1.Excluded))
	}
	if !(p1.Stats[1200].Mean > p1.Stats[2400].Mean) {
		t.Fatalf("means not ordered: %+v", p1.Stats)
	}
	// Iteration at the slowest clock ≈ the 10 µs target.
	if math.Abs(p1.Stats[1200].Mean-10) > 0.5 {
		t.Fatalf("slow-clock iteration = %v µs, want ≈10", p1.Stats[1200].Mean)
	}
}

func TestMeasureMatchesInjectedTransition(t *testing.T) {
	const base = 45_000 // 45 µs transitions
	c := testCore(t, cpu.UniformTransition{BaseNs: base, JitterNs: 5_000})
	r, err := NewRunner(c, quickCfg(1200, 2400))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := r.Phase1()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := r.MeasurePair(Pair{2400, 1200}, p1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Samples) < 5 {
		t.Fatalf("samples = %d (failures %d)", len(pr.Samples), pr.Failures)
	}
	// FTaLaT's CI detection interval is only a few standard errors wide,
	// so a geometric number of iterations (≈10 µs each, p≈8 % per
	// iteration at n=400) passes before one lands inside it — the very
	// §V-A granularity cost this baseline exists to demonstrate. Bound
	// individual samples loosely and the median tightly.
	diffs := make([]float64, len(pr.Samples))
	for i, lat := range pr.Samples {
		diffs[i] = lat - pr.Injected[i]
		if diffs[i] < -1 || diffs[i] > 800 {
			t.Fatalf("sample %d: measured %v µs vs injected %v µs", i, lat, pr.Injected[i])
		}
	}
	if med := statsMedian(diffs); med > 250 {
		t.Fatalf("median detection overshoot = %v µs, want ≲250", med)
	}
}

func TestCPUTransitionsAreMicrosecondScale(t *testing.T) {
	// The paper's headline contrast: CPU transitions are µs-scale.
	c := testCore(t, cpu.UniformTransition{BaseNs: 30_000, JitterNs: 10_000, UpPenaltyNs: 40_000})
	r, err := NewRunner(c, quickCfg(1200, 3000))
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 2 {
		t.Fatalf("pairs = %d", len(res.Pairs))
	}
	for _, pr := range res.Pairs {
		if pr.Summary.N == 0 {
			t.Fatalf("%v: no samples", pr.Pair)
		}
		if pr.Summary.Median > 1000 {
			t.Fatalf("%v median = %v µs: not µs-scale", pr.Pair, pr.Summary.Median)
		}
	}
}

func TestDetectionIntervalDegradesWithSampleCount(t *testing.T) {
	// §V-A: growing the phase-1 population shrinks the CI detection
	// interval and inflates the iterations needed to detect — the reason
	// the GPU methodology abandons the CI for the 2σ band.
	run := func(measureIters int) float64 {
		c := testCore(t, cpu.UniformTransition{BaseNs: 30_000})
		cfg := quickCfg(1200, 2400)
		cfg.MeasureIters = measureIters
		cfg.Repeats = 8
		r, err := NewRunner(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		p1, err := r.Phase1()
		if err != nil {
			t.Fatal(err)
		}
		target := p1.Stats[1200]
		var total, n float64
		for i := 0; i < 8; i++ {
			m, err := r.MeasureOnce(Pair{2400, 1200}, target)
			if err != nil {
				continue
			}
			total += float64(m.DetectIters)
			n++
		}
		if n == 0 {
			t.Fatal("no successful detections")
		}
		return total / n
	}
	small := run(100)
	large := run(6400)
	if large <= small {
		t.Fatalf("detection effort did not grow with population: %v (n=100) vs %v (n=6400)",
			small, large)
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() []float64 {
		c := testCore(t, cpu.UniformTransition{BaseNs: 30_000, JitterNs: 5_000})
		r, err := NewRunner(c, quickCfg(1200, 2400))
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for _, pr := range res.Pairs {
			out = append(out, pr.Samples...)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}
