package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"golatest/internal/core"
)

// ValidatedBlob is the proof-carrying handoff between the layers that
// validate blob bytes and the layers that persist them. Its only
// constructors are the digest-checking parse paths (ValidateBlobBytes
// here, Store.GetValidated on the read side), so holding one is a
// type-level guarantee that the bytes inside have already cleared the
// full container/envelope/schema/digest validation — which is what
// lets Store.PutValidated write them to disk verbatim, with no second
// decode. The network client validates a wire body exactly once and
// hands the same proof to its local tier; the compiler, not a
// convention, enforces that no unvalidated bytes can take that road.
//
// A ValidatedBlob aliases the byte slice it was constructed over (for
// the client that slice is pooled body scratch), so the handoff is
// synchronous: persist or copy it before the caller recycles the
// buffer. It is immutable by convention — nothing may mutate data or
// the decoded result after construction.
type ValidatedBlob struct {
	digest    string
	profile   string
	instance  int
	data      []byte
	rawBytes  int64
	container Container
	res       *core.Result
}

// ValidateBlobBytes parses and validates raw blob bytes — any
// container — against the digest they claim and returns the
// proof-carrying blob: the validated bytes plus the decoded result,
// from one parse. It is the constructor every storing path funnels
// through: the daemon's PUT handler, the client's response validation,
// the local-tier heal, and the pending-journal reconciler.
func ValidateBlobBytes(data []byte, digest string) (*ValidatedBlob, error) {
	b, rawBytes, cont, err := parseBlob(data, digest)
	if err != nil {
		return nil, err
	}
	return &ValidatedBlob{
		digest:    digest,
		profile:   b.Profile,
		instance:  b.Instance,
		data:      data,
		rawBytes:  rawBytes,
		container: cont,
		res:       decodeResult(b.Result),
	}, nil
}

// Digest returns the digest the bytes were validated against.
func (vb *ValidatedBlob) Digest() string { return vb.digest }

// Key returns the content address recorded in the envelope.
func (vb *ValidatedBlob) Key() Key {
	return Key{Digest: vb.digest, Profile: vb.profile, Instance: vb.instance}
}

// Bytes returns the validated container bytes. They alias the slice
// the blob was constructed over; treat them as read-only and gone once
// the constructing caller returns.
func (vb *ValidatedBlob) Bytes() []byte { return vb.data }

// RawBytes returns the canonical (uncompressed envelope) size.
func (vb *ValidatedBlob) RawBytes() int64 { return vb.rawBytes }

// Container returns the container format the bytes arrived in.
func (vb *ValidatedBlob) Container() Container { return vb.container }

// Result returns the campaign result decoded by the validating parse.
// Callers must not mutate it if the blob will still be persisted.
func (vb *ValidatedBlob) Result() *core.Result { return vb.res }

// PutValidated persists an already-validated blob: v3 bytes land on
// disk verbatim — the zero-extra-decode path wire bytes take into the
// local tier — while legacy v1/v2 bytes are re-containered to v3 from
// the result the validating parse already decoded (no second parse).
// The atomic rename and O(1) journal append match Put.
func (s *Store) PutValidated(vb *ValidatedBlob) error {
	if reservedDigest(vb.digest) {
		return fmt.Errorf("store: %w: digest %q names the index snapshot", ErrInvalidBlob, vb.digest)
	}
	size := int64(len(vb.data))
	if vb.container == ContainerV3 {
		if err := s.writeAtomic(vb.digest+".json", vb.data); err != nil {
			return err
		}
	} else {
		size = 0
		err := s.writeAtomicStream(vb.digest+".json", func(w io.Writer) error {
			cw := &countingWriter{w: w}
			_, err := encodeBlobV3To(cw, vb.Key(), vb.res)
			size = cw.n
			return err
		})
		if err != nil {
			return err
		}
	}
	s.puts.Add(1)
	return s.recordPut(vb.Key(), size, vb.rawBytes)
}

// GetValidated returns the proof-carrying blob stored under digest, or
// (nil, false) on any kind of miss — the read-side constructor of
// ValidatedBlob, sharing Get's validation, counters, LRU touch,
// corrupt-blob healing, and legacy-container forward-heal. The
// returned bytes are always the v3 container (healed in memory even
// when the disk write failed), so a serving layer can pass them to a
// v3-aware peer verbatim.
func (s *Store) GetValidated(digest string) (*ValidatedBlob, bool) {
	if reservedDigest(digest) {
		// A plain miss, pointedly without healing: the "corrupt blob"
		// a reserved digest resolves to is the index snapshot itself.
		s.misses.Add(1)
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(s.dir, digest+".json"))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	b, rawN, cont, err := parseBlob(data, digest)
	if err != nil {
		s.corrupt.Add(1)
		s.misses.Add(1)
		s.healCorrupt(Key{Digest: digest})
		return nil, false
	}
	vb := &ValidatedBlob{
		digest:    digest,
		profile:   b.Profile,
		instance:  b.Instance,
		data:      data,
		rawBytes:  rawN,
		container: cont,
		res:       decodeResult(b.Result),
	}
	diskSize := int64(len(data))
	if cont != ContainerV3 {
		// Serve the v3 container even when the disk heal failed — the
		// re-encoded bytes in hand are valid either way. The index
		// records what is actually on disk, so a failed heal keeps the
		// legacy size (watermark GC must not undercount a store it
		// cannot shrink).
		if v3, healedSize, healed := s.healLegacy(vb.Key(), vb.res); v3 != nil {
			vb.data = v3
			vb.container = ContainerV3
			if healed {
				diskSize = healedSize
			}
		}
	}
	s.hits.Add(1)
	s.touch(vb.Key(), diskSize, rawN)
	return vb, true
}
