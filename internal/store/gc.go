package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Garbage collection. The store otherwise only grows; GC bounds it by
// total size and by idle age, evicting least-recently-used blobs first.
// The LRU clock is ManifestEntry.AccessUnixNs, advanced by Put and by
// every Get hit (journaled as a touch record, so the ordering survives
// restarts and is shared between processes). Eviction is the same
// operation as corrupt-blob healing: remove the blob, tombstone the
// index entry — so concurrent readers of an evicted key see an ordinary
// miss and recompute.

// staleTmpAge is how old an orphaned staging file must be before GC
// removes it. Writers hold staging files for milliseconds; anything an
// hour old is a crash leftover, never an in-flight write.
const staleTmpAge = time.Hour

// GCPolicy bounds the store. Zero-valued bounds are unbounded; a
// zero-valued policy makes GC a pure janitor (phantom index entries,
// crash-orphaned temp files, expired leases) that evicts no live blob.
type GCPolicy struct {
	// MaxBytes caps the total size of indexed blobs; least-recently-used
	// blobs are evicted until the total fits. 0 = no size bound.
	MaxBytes int64
	// MaxAge evicts blobs whose last access is older than this.
	// 0 = no age bound.
	MaxAge time.Duration
	// Now overrides the GC clock; zero means time.Now(). Tests use it to
	// age a store without sleeping.
	Now time.Time
}

// GCStats reports what one GC pass did.
type GCStats struct {
	// Scanned counts index entries examined; Evicted counts blobs
	// removed (including phantom entries whose blob was already gone).
	Scanned, Evicted int
	// BytesBefore and BytesAfter total the indexed blob sizes around the
	// pass.
	BytesBefore, BytesAfter int64
	// TmpRemoved counts crash-orphaned staging files swept; LeasesRemoved
	// counts expired lease files swept.
	TmpRemoved, LeasesRemoved int
}

// GC applies the policy: age bound first, then the size bound over
// least-recently-used blobs, then a sweep of crash debris (stale temp
// files, expired leases), and finally a journal compaction so the
// tombstones fold into the snapshot.
func (s *Store) GC(p GCPolicy) (GCStats, error) {
	now := p.Now
	if now.IsZero() {
		now = time.Now()
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	var st GCStats

	// Fold the journal first: peer processes' Puts and touches since
	// this handle opened live only in the log, and a size/age bound
	// computed without them would neither see their blobs nor respect
	// their recency. (Best-effort — a peer holding the compaction lock
	// means the fold just happened or is happening.)
	if err := s.compactLocked(); err != nil {
		return st, err
	}
	st.Scanned = len(s.manifest)

	// Every candidate is stat'ed: the blob's true size feeds the byte
	// accounting (recorded sizes can be stale), and an entry whose blob
	// has vanished (deleted by a peer or by hand) is a phantom —
	// tombstone it so Index/Len stop reporting unreadable keys. Entries
	// without an access time (pre-journal manifests, scan rebuilds) seed
	// their LRU clock from the blob mtime, the safest approximation of
	// last use available.
	type cand struct {
		digest string
		access int64
		bytes  int64
	}
	var (
		cands []cand
		total int64
	)
	for digest, e := range s.manifest {
		fi, err := os.Stat(filepath.Join(s.dir, digest+".json"))
		if err != nil {
			s.dropLocked(digest)
			st.Evicted++
			continue
		}
		if e.Bytes != fi.Size() || e.AccessUnixNs == 0 {
			e.Bytes = fi.Size()
			if e.AccessUnixNs == 0 {
				e.AccessUnixNs = fi.ModTime().UnixNano()
			}
			s.manifest[digest] = e
		}
		total += e.Bytes
		cands = append(cands, cand{digest: digest, access: e.AccessUnixNs, bytes: e.Bytes})
	}
	st.BytesBefore = total
	sort.Slice(cands, func(i, j int) bool { return cands[i].access < cands[j].access })

	evict := func(c cand) error {
		blob := filepath.Join(s.dir, c.digest+".json")
		if err := os.Remove(blob); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: gc %s: %w", c.digest, err)
		}
		s.dropLocked(c.digest)
		total -= c.bytes
		st.Evicted++
		return nil
	}

	evicted := make(map[string]bool)
	if p.MaxAge > 0 {
		cutoff := now.Add(-p.MaxAge).UnixNano()
		for _, c := range cands {
			if c.access >= cutoff {
				break // sorted ascending: the rest are young enough
			}
			if err := evict(c); err != nil {
				return st, err
			}
			evicted[c.digest] = true
		}
	}
	if p.MaxBytes > 0 {
		for _, c := range cands {
			if total <= p.MaxBytes {
				break
			}
			if evicted[c.digest] {
				continue
			}
			if err := evict(c); err != nil {
				return st, err
			}
		}
	}
	st.BytesAfter = total

	s.sweepDebrisLocked(now, &st)

	// Fold the tombstones into the snapshot so a fresh Open starts from
	// the shrunken index, not a replay of the whole eviction.
	if err := s.compactLocked(); err != nil {
		return st, err
	}
	return st, nil
}

// dropLocked removes an index entry and journals its tombstone.
func (s *Store) dropLocked(digest string) {
	delete(s.manifest, digest)
	_ = s.appendJournalLocked(journalRecord{Op: opDel, Digest: digest})
}

// sweepDebrisLocked removes crash leftovers: staging files past
// staleTmpAge (a live writer holds its temp file for milliseconds) and
// lease files whose expiry has passed (their holder is gone; removing
// them is the same transition a stealer would make).
func (s *Store) sweepDebrisLocked(now time.Time, st *GCStats) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		switch {
		case strings.HasPrefix(name, tmpPrefix):
			fi, err := de.Info()
			if err != nil || now.Sub(fi.ModTime()) < staleTmpAge {
				continue
			}
			if os.Remove(filepath.Join(s.dir, name)) == nil {
				st.TmpRemoved++
			}
		case strings.HasSuffix(name, leaseSuffix) || name == compactLockName:
			path := filepath.Join(s.dir, name)
			if _, held := leaseHolderAt(path); held {
				continue
			}
			if os.Remove(path) == nil {
				st.LeasesRemoved++
			}
		}
	}
}
