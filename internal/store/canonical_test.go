package store

import (
	"bytes"
	"math"
	"testing"

	"golatest/internal/cluster"
	"golatest/internal/core"
	"golatest/internal/stats"
)

// adversarialResults is the fixture set the canonical renderer and the
// v3 codec are pinned against: every structural and lexical edge the
// envelope schema can express — nil-vs-empty slices, omitted optionals,
// nil pair elements, exotic strings, and float values on both sides of
// every formatting switch in encoding/json.
func adversarialResults() map[string]*core.Result {
	nan := math.NaN()
	oddNaN := math.Float64frombits(0x7ff8_dead_beef_0001) // payload bits ≠ canonical NaN
	inf := math.Inf(1)
	return map[string]*core.Result{
		"zero": {},
		"empty-slices": {
			Pairs: []*core.PairResult{}, // append-collapse: renders null
			Phase1: &core.Phase1Result{
				Stats:      map[float64]core.FreqStats{}, // collapses to null
				ValidPairs: []core.Pair{},                // preserved as []
				Excluded:   nil,                          // preserved as null
				Unstable:   []float64{},                  // preserved as []
			},
		},
		"nil-pair-element": {
			DeviceName: "H100",
			Pairs: []*core.PairResult{
				nil,
				{Pair: core.Pair{InitMHz: 210, TargetMHz: 1980}},
			},
		},
		"strings": {
			DeviceName:   `<A100 & "friends">`,
			Architecture: "ctl:\x01\x02\t\n\r\b\f del:\x7f bad:\xff\xe4\xb8 sep:   uni:héllo→世界",
			Pairs: []*core.PairResult{{
				Skipped:    true,
				SkipReason: `power "throttling" <unsustainable> & hot`,
			}},
		},
		"float-switches": {
			Phase1: &core.Phase1Result{
				Stats: map[float64]core.FreqStats{
					1410: {FreqMHz: 1410, Iter: stats.MeanStd{N: 3, Mean: nan, Std: inf}, Normalish: true},
					210:  {FreqMHz: 210, Iter: stats.MeanStd{N: 1, Mean: -inf, Std: math.MaxFloat64}},
					825:  {FreqMHz: 825, Iter: stats.MeanStd{N: 2, Mean: math.SmallestNonzeroFloat64}},
				},
				// Every branch of the plain-float formatter: 'f' vs 'e' at
				// 1e-6 and 1e21, the e-0X exponent trim, and negative zero.
				Unstable: []float64{
					0, math.Copysign(0, -1), 1e-6, 9.9e-7, 1e-30,
					1e21, 5e20, -1e21, 1234567.875,
				},
			},
			Pairs: []*core.PairResult{{
				Pair:    core.Pair{InitMHz: 1e21, TargetMHz: 9.9e-7},
				Samples: []float64{nan, oddNaN, inf, math.Inf(-1), -0.0625},
				Summary: stats.Summarize(nil), // all-NaN summary, N=0
				Kept:    []float64{},
				// Outliers nil: null next to Kept's []
				FinalRSE: nan,
			}},
		},
		"clusters": {
			CaptureHintNs: -9_223_372_036_854_775_808,
			Pairs: []*core.PairResult{
				{
					Pair:     core.Pair{InitMHz: 210, TargetMHz: 825},
					Samples:  []float64{1.5, 2.5, 3.5},
					Clusters: &cluster.Result{Labels: []int{0, 0, cluster.Noise}, NumClusters: 1, Eps: nan, MinPts: 4},
				},
				{
					Pair:     core.Pair{InitMHz: 825, TargetMHz: 210},
					Clusters: &cluster.Result{Labels: []int{}, Eps: 0.25},
				},
				{
					Clusters: &cluster.Result{}, // Labels nil → null
				},
			},
		},
		"measurements": {
			DeviceName:   "A100-SXM4[0]",
			Architecture: "sm_80",
			Pairs: []*core.PairResult{{
				Pair: core.Pair{InitMHz: 330, TargetMHz: 1410},
				Measurements: []core.Measurement{
					{
						Pair:      core.Pair{InitMHz: 330, TargetMHz: 1410},
						LatencyMs: 12.25, TsDevNs: 100, TeDevNs: 12_350_100,
						SM: 107, TransitionIndex: 9_999, InjectedMs: nan,
						SyncSpreadNs: -1,
					},
					{LatencyMs: oddNaN, InjectedMs: inf},
				},
				Samples:  []float64{12.25, 13},
				Injected: []float64{nan, inf},
				Attempts: 7, Failures: 2, DiscardedByThrottle: 3, ThrottleEvents: 1,
				Kept: []float64{12.25}, Outliers: []float64{13},
				Summary:  stats.Summarize([]float64{12.25}),
				FinalRSE: 0.03125,
			}},
		},
		"test-fixture":  testResult(),
		"codec-fixture": codecResult(),
	}
}

// TestCanonicalWriterMatchesEncodingJSON pins the hand-rolled renderer
// to the reference implementation byte for byte: the canonical-bytes
// contract is "whatever json.MarshalIndent said", forever, because the
// digest and the ETag are defined over those bytes. Any divergence —
// an escape, a float format, a nil-vs-empty collapse — would silently
// change every digest in every store.
func TestCanonicalWriterMatchesEncodingJSON(t *testing.T) {
	keys := []Key{
		{Digest: "cafe", Profile: "a100-sxm4", Instance: 0},
		{Digest: "f00d", Profile: `pro<file> & "q"`, Instance: -3},
	}
	for name, res := range adversarialResults() {
		t.Run(name, func(t *testing.T) {
			for _, k := range keys {
				ref, err := encodeEnvelope(k, res)
				if err != nil {
					t.Fatalf("reference encoder: %v", err)
				}
				var buf bytes.Buffer
				n, err := writeCanonicalTo(&buf, k, res)
				if err != nil {
					t.Fatalf("renderer: %v", err)
				}
				if !bytes.Equal(buf.Bytes(), ref) {
					t.Fatalf("renderer diverges from encoding/json:\n got: %q\nwant: %q",
						firstDiff(buf.Bytes(), ref), firstDiff(ref, buf.Bytes()))
				}
				if n != int64(len(ref)) {
					t.Fatalf("renderer size = %d, want %d", n, len(ref))
				}
				// Counting mode (nil writer) must agree without writing.
				cn, err := writeCanonicalTo(nil, k, res)
				if err != nil || cn != int64(len(ref)) {
					t.Fatalf("counting render = (%d, %v), want (%d, nil)", cn, err, len(ref))
				}
				// EncodeBlob is the renderer behind a buffer.
				enc, err := EncodeBlob(k, res)
				if err != nil || !bytes.Equal(enc, ref) {
					t.Fatalf("EncodeBlob diverges from the reference (err=%v)", err)
				}
			}
		})
	}
}

// firstDiff returns a window of a around the first byte where a and b
// differ, for a readable failure message.
func firstDiff(a, b []byte) []byte {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo, hi := i-40, i+40
	if lo < 0 {
		lo = 0
	}
	if hi > len(a) {
		hi = len(a)
	}
	return a[lo:hi]
}

// TestCanonicalWriterRejectsNonFiniteFloats: plain float64 fields (pair
// frequencies, unstable clocks, phase-1 keys) cannot hold NaN/Inf —
// encoding/json errors there, and the renderer must refuse identically
// rather than emit bytes the reference implementation never could.
func TestCanonicalWriterRejectsNonFiniteFloats(t *testing.T) {
	k := Key{Digest: "cafe", Profile: "p", Instance: 0}
	bad := map[string]*core.Result{
		"nan-pair": {Pairs: []*core.PairResult{{Pair: core.Pair{InitMHz: math.NaN()}}}},
		"inf-unstable": {Phase1: &core.Phase1Result{
			Unstable: []float64{math.Inf(1)},
		}},
	}
	for name, res := range bad {
		t.Run(name, func(t *testing.T) {
			if _, err := encodeEnvelope(k, res); err == nil {
				t.Fatal("reference encoder accepted a non-finite plain float; fixture is wrong")
			}
			if _, err := writeCanonicalTo(nil, k, res); err == nil {
				t.Fatal("renderer accepted a non-finite plain float")
			}
			if _, err := EncodeBlobV3(k, res); err == nil {
				t.Fatal("v3 encoder accepted a result outside the canonical-JSON domain")
			}
		})
	}
}

// TestV3RoundTrip: for every adversarial fixture, the v3 container
// decodes back to a result whose canonical bytes are identical to the
// original's — the invariant that makes v3 a pure re-containering of
// the v1 contract — and the recorded RawBytes is the canonical size.
func TestV3RoundTrip(t *testing.T) {
	k := Key{Digest: "cafe", Profile: "a100-sxm4", Instance: 2}
	for name, res := range adversarialResults() {
		t.Run(name, func(t *testing.T) {
			canon, err := encodeEnvelope(k, res)
			if err != nil {
				t.Fatal(err)
			}
			v3, err := EncodeBlobV3(k, res)
			if err != nil {
				t.Fatal(err)
			}
			if ContainerOf(v3) != ContainerV3 {
				t.Fatal("EncodeBlobV3 did not produce the v3 container")
			}
			vb, err := ValidateBlobBytes(v3, k.Digest)
			if err != nil {
				t.Fatalf("v3 container does not validate: %v", err)
			}
			if vb.RawBytes() != int64(len(canon)) {
				t.Fatalf("RawBytes = %d, want canonical size %d", vb.RawBytes(), len(canon))
			}
			back, err := encodeEnvelope(k, vb.Result())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, canon) {
				t.Fatalf("v3 round-trip changed canonical bytes:\n got: %q\nwant: %q",
					firstDiff(back, canon), firstDiff(canon, back))
			}

			// Determinism: a second encode is byte-identical.
			again, err := EncodeBlobV3(k, res)
			if err != nil || !bytes.Equal(again, v3) {
				t.Fatalf("EncodeBlobV3 is not deterministic (err=%v)", err)
			}

			// WriteCanonical recovers the exact canonical form from v3.
			var buf bytes.Buffer
			if err := WriteCanonical(&buf, v3); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), canon) {
				t.Fatal("WriteCanonical(v3) diverges from the canonical bytes")
			}

			// WriteCanonicalCompressed yields the deterministic v2 view —
			// byte-equal to EncodeBlobCompressed — from any container.
			v2, err := EncodeBlobCompressed(k, res)
			if err != nil {
				t.Fatal(err)
			}
			for _, in := range [][]byte{v3, v2, canon} {
				buf.Reset()
				if err := WriteCanonicalCompressed(&buf, in); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf.Bytes(), v2) {
					t.Fatalf("WriteCanonicalCompressed(%s) diverges from EncodeBlobCompressed",
						ContainerOf(in))
				}
			}
		})
	}
}

// TestV3NaNCanonicalization: NaN payload bits are not part of the
// canonical contract (JSON spells every NaN "NaN"), so the v3 binary
// section must canonicalize them — otherwise two results equal under
// the digest would produce different v3 bytes and healing would never
// converge.
func TestV3NaNCanonicalization(t *testing.T) {
	k := Key{Digest: "cafe", Profile: "p", Instance: 0}
	build := func(bits uint64) *core.Result {
		v := math.Float64frombits(bits)
		return &core.Result{Pairs: []*core.PairResult{{
			Samples:  []float64{v, 1},
			FinalRSE: v,
		}}}
	}
	a, err := EncodeBlobV3(k, build(math.Float64bits(math.NaN())))
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeBlobV3(k, build(0x7ff8_0123_4567_89ab))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("v3 bytes depend on NaN payload bits")
	}
}
