package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func mustKey(t testing.TB, instance int, seed uint64) Key {
	t.Helper()
	k, err := KeyFor("a100", instance, seed, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestPutAppendsJournalOnly: a Put must cost one journal append, not a
// manifest.json rewrite — the snapshot only materialises at compaction.
func TestPutAppendsJournalOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(mustKey(t, i, uint64(40+i)), testResult()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); !os.IsNotExist(err) {
		t.Fatal("Put rewrote manifest.json; the index should live in the journal until compaction")
	}
	if fi, err := os.Stat(filepath.Join(dir, journalName)); err != nil || fi.Size() == 0 {
		t.Fatalf("no journal after Puts: %v", err)
	}

	// Open compacts: the journal folds into the snapshot and the fresh
	// handle sees every entry.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 3 {
		t.Fatalf("reopened Len = %d, want 3", s2.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("Open did not compact the journal into a snapshot: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, journalName)); !os.IsNotExist(err) {
		t.Fatal("compaction left the consumed journal behind")
	}
}

// TestTwoHandlesConvergeViaJournal is the cross-process shape: two Store
// handles on one directory append to the same journal, and the index
// converges — a third Open sees the union, and neither handle's
// compaction drops the other's records.
func TestTwoHandlesConvergeViaJournal(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ka, kb, kc := mustKey(t, 0, 42), mustKey(t, 1, 43), mustKey(t, 2, 44)
	if err := a.Put(ka, testResult()); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(kb, testResult()); err != nil {
		t.Fatal(err)
	}

	// b never indexed ka, but the blob is on disk: Get hits and indexes
	// it on the fly.
	if _, ok := b.Get(ka); !ok {
		t.Fatal("handle b missed handle a's blob")
	}
	if b.Len() != 2 {
		t.Fatalf("b.Len() = %d after cross-handle Get, want 2", b.Len())
	}

	// a compacts while b keeps appending: b's next record must survive
	// (the append detects the rotation and replays onto the fresh log).
	if err := a.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(kc, testResult()); err != nil {
		t.Fatal(err)
	}

	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("converged Len = %d, want 3 (journal lost a record)", c.Len())
	}
	for _, k := range []Key{ka, kb, kc} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("converged store missing %s", k)
		}
	}
}

// TestCompactionThreshold: with a tiny threshold every append compacts,
// and nothing is lost in the fold.
func TestCompactionThreshold(t *testing.T) {
	old := journalCompactBytes
	journalCompactBytes = 1
	defer func() { journalCompactBytes = old }()

	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]Key, 5)
	for i := range keys {
		keys[i] = mustKey(t, i, uint64(60+i))
		if err := s.Put(keys[i], testResult()); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("miss on %s after threshold compaction", k)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 5 {
		t.Fatalf("reopened Len = %d, want 5", s2.Len())
	}
}

// TestJournalToleratesTornTail: a crash mid-append leaves a torn final
// line; replay must keep every whole record and skip the tear.
func TestJournalToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(mustKey(t, 0, 42), testResult()); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(mustKey(t, 1, 43), testResult()); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"put","entry":{"digest":"torn-mid-`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("Len = %d after torn tail, want 2", s2.Len())
	}
}

// TestCrashedCompactorLeftoverFolds: a compactor that died after
// rotating the log leaves manifest.log.old; the next Open must fold it
// before anything else rotates over its name.
func TestCrashedCompactorLeftoverFolds(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(mustKey(t, 0, 42), testResult()); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: the live log is rotated but never folded.
	if err := os.Rename(filepath.Join(dir, journalName), filepath.Join(dir, journalOldName)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (rotated log dropped)", s2.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, journalOldName)); !os.IsNotExist(err) {
		t.Fatal("fold left manifest.log.old behind")
	}
}

// TestConcurrentStoreOps is the -race soak: goroutines interleave
// Put/Get/Index/Len on one handle while a tiny threshold forces
// compaction churn, and every key must survive into a fresh Open.
func TestConcurrentStoreOps(t *testing.T) {
	old := journalCompactBytes
	journalCompactBytes = 512
	defer func() { journalCompactBytes = old }()

	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		perW    = 6
	)
	res := testResult()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				k := mustKey(t, w, uint64(1000+w*perW+i))
				if err := s.Put(k, res); err != nil {
					errs <- fmt.Errorf("put %s: %w", k, err)
					return
				}
				if _, ok := s.Get(k); !ok {
					errs <- fmt.Errorf("miss on just-put %s", k)
					return
				}
				s.Index()
				s.Len()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.Len() != workers*perW {
		t.Fatalf("Len = %d, want %d", s.Len(), workers*perW)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != workers*perW {
		t.Fatalf("reopened Len = %d, want %d", s2.Len(), workers*perW)
	}
}

// TestTwoHandlesConcurrentPuts: disjoint key sets written through two
// handles racing on one directory must union cleanly — the append-only
// journal has no lost-update window.
func TestTwoHandlesConcurrentPuts(t *testing.T) {
	old := journalCompactBytes
	journalCompactBytes = 512
	defer func() { journalCompactBytes = old }()

	dir := t.TempDir()
	const perHandle = 10
	res := testResult()
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for h := 0; h < 2; h++ {
		st, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(h int, st *Store) {
			defer wg.Done()
			for i := 0; i < perHandle; i++ {
				if err := st.Put(mustKey(t, h, uint64(2000+h*perHandle+i)), res); err != nil {
					errs <- err
					return
				}
			}
		}(h, st)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	merged, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != 2*perHandle {
		t.Fatalf("merged Len = %d, want %d (concurrent writers lost index entries)",
			merged.Len(), 2*perHandle)
	}
}
