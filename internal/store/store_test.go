package store

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"golatest/internal/cluster"
	"golatest/internal/core"
	"golatest/internal/hwprofile"
	"golatest/internal/stats"
)

func testConfig() core.Config {
	return core.Config{
		Frequencies:      []float64{705, 885, 1410},
		Blocks:           3,
		MinMeasurements:  12,
		MaxMeasurements:  24,
		MaxLatencyHintNs: 120_000_000,
		Seed:             17,
	}
}

// testResult exercises every stored field, including the values plain
// JSON cannot carry (NaN, ±Inf) and the float64-keyed phase-1 map.
func testResult() *core.Result {
	return &core.Result{
		DeviceName:    "A100-SXM4[0]",
		Architecture:  "Ampere",
		CaptureHintNs: 120_000_000,
		Phase1: &core.Phase1Result{
			Stats: map[float64]core.FreqStats{
				705:  {FreqMHz: 705, Iter: stats.MeanStd{N: 300, Mean: 0.2130001, Std: 0.001}, Normalish: true},
				885:  {FreqMHz: 885, Iter: stats.MeanStd{N: 300, Mean: 0.1700002, Std: 0.0012}},
				1410: {FreqMHz: 1410, Iter: stats.MeanStd{N: 300, Mean: 0.1064003, Std: 0.0007}, Normalish: true},
			},
			ValidPairs: []core.Pair{{InitMHz: 705, TargetMHz: 1410}, {InitMHz: 1410, TargetMHz: 705}},
			Excluded:   []core.Pair{{InitMHz: 705, TargetMHz: 885}},
			Unstable:   []float64{885},
		},
		Pairs: []*core.PairResult{
			{
				Pair: core.Pair{InitMHz: 705, TargetMHz: 1410},
				Measurements: []core.Measurement{{
					Pair:            core.Pair{InitMHz: 705, TargetMHz: 1410},
					LatencyMs:       13.12345678901234,
					TsDevNs:         1_000_000_001,
					TeDevNs:         1_013_123_457,
					SM:              2,
					TransitionIndex: 87,
					InjectedMs:      math.NaN(), // unattributed injection
					SyncSpreadNs:    412,
				}},
				Samples:  []float64{13.12345678901234},
				Injected: []float64{math.NaN()},
				Attempts: 3, Failures: 2,
				Kept:     []float64{13.12345678901234},
				Outliers: []float64{},
				Clusters: &cluster.Result{Labels: []int{0}, NumClusters: 1, Eps: 0.42, MinPts: 4},
				Summary:  stats.Summarize([]float64{13.12345678901234}),
				FinalRSE: 0.031,
			},
			{
				Pair:       core.Pair{InitMHz: 1410, TargetMHz: 705},
				Skipped:    true,
				SkipReason: "power throttling",
				Summary:    stats.Summarize(nil), // all-NaN summary
				FinalRSE:   math.Inf(1),
			},
		},
	}
}

func TestKeyDigest(t *testing.T) {
	cfg := testConfig()
	k1, err := KeyFor("a100", 0, 42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(k1.Digest) != 64 {
		t.Fatalf("digest %q is not hex sha256", k1.Digest)
	}
	k2, err := KeyFor("a100", 0, 42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if k1.Digest != k2.Digest {
		t.Fatal("same inputs produced different digests")
	}

	// Parallelism must not split the key space: results are identical at
	// every setting.
	par := cfg
	par.Parallelism = 8
	k3, err := KeyFor("a100", 0, 42, par)
	if err != nil {
		t.Fatal(err)
	}
	if k3.Digest != k1.Digest {
		t.Fatal("Parallelism changed the digest")
	}

	// Everything else must.
	variants := []struct {
		name string
		key  func() (Key, error)
	}{
		{"profile", func() (Key, error) { return KeyFor("gh200", 0, 42, cfg) }},
		{"instance", func() (Key, error) { return KeyFor("a100", 1, 42, cfg) }},
		{"device seed", func() (Key, error) { return KeyFor("a100", 0, 43, cfg) }},
		{"config", func() (Key, error) {
			c := cfg
			c.Blocks = 4
			return KeyFor("a100", 0, 42, c)
		}},
		{"host seed", func() (Key, error) {
			c := cfg
			c.Seed = 18
			return KeyFor("a100", 0, 42, c)
		}},
	}
	for _, v := range variants {
		k, err := v.key()
		if err != nil {
			t.Fatal(err)
		}
		if k.Digest == k1.Digest {
			t.Errorf("changing %s did not change the digest", v.name)
		}
	}
}

func TestProfileKeyUsesDeviceSeed(t *testing.T) {
	cfg := testConfig()
	k0, err := ProfileKey(hwprofile.A100Instance(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := ProfileKey(hwprofile.A100Instance(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if k0.Digest == k1.Digest {
		t.Fatal("distinct A100 units share a digest")
	}
	if k0.Profile != "a100" || k0.Instance != 0 || k1.Instance != 1 {
		t.Fatalf("key identity wrong: %v %v", k0, k1)
	}
}

// TestRoundTripExact verifies that a stored blob reproduces the result
// bit for bit: decode(encode(res)) re-encodes to identical bytes, and
// the non-finite floats survive.
func TestRoundTripExact(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k, err := KeyFor("a100", 0, 42, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := testResult()
	if err := s.Put(k, res); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok {
		t.Fatal("Get missed a just-Put key")
	}

	enc1, err := EncodeBlob(k, res)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := EncodeBlob(k, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("round-tripped result re-encodes differently")
	}
	// The compressed container round-trips the same canonical bytes and
	// is itself deterministic.
	comp1, err := EncodeBlobCompressed(k, res)
	if err != nil {
		t.Fatal(err)
	}
	comp2, err := EncodeBlobCompressed(k, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(comp1, comp2) {
		t.Fatal("round-tripped result re-compresses differently")
	}
	if !IsGzipBlob(comp1) || IsGzipBlob(enc1) {
		t.Fatal("container sniffing misclassifies the two formats")
	}

	if got.DeviceName != res.DeviceName || got.CaptureHintNs != res.CaptureHintNs {
		t.Fatalf("identity fields lost: %+v", got)
	}
	if !math.IsNaN(got.Pairs[0].Measurements[0].InjectedMs) {
		t.Fatal("NaN InjectedMs did not survive")
	}
	if !math.IsInf(got.Pairs[1].FinalRSE, 1) {
		t.Fatal("+Inf FinalRSE did not survive")
	}
	if !math.IsNaN(got.Pairs[1].Summary.Mean) {
		t.Fatal("NaN summary did not survive")
	}
	fs, ok := got.Phase1.Stats[885]
	if !ok || fs.Iter.Mean != 0.1700002 || fs.Normalish {
		t.Fatalf("phase-1 map lost: %+v", got.Phase1.Stats)
	}
	if got.Pairs[0].Samples[0] != res.Pairs[0].Samples[0] {
		t.Fatal("sample not bit-identical")
	}
	if got.Pairs[0].Clusters.NoiseCount() != 0 || got.Pairs[0].Clusters.ClusterSizes()[0] != 1 {
		t.Fatal("cluster accessors broken after decode")
	}

	c := s.Counters()
	if c.Hits != 1 || c.Misses != 0 || c.Puts != 1 || c.Corrupt != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestGetMissAndCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k, err := KeyFor("a100", 0, 42, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("empty store hit")
	}

	// A truncated/garbage blob must read as a miss, not an error.
	if err := os.WriteFile(filepath.Join(dir, k.blobName()), []byte(`{"schema":1,"res`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt blob hit")
	}

	// A wrong-schema blob must read as a miss.
	if err := os.WriteFile(filepath.Join(dir, k.blobName()),
		[]byte(`{"schema":999,"digest":"`+k.Digest+`","result":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("wrong-schema blob hit")
	}

	// Recompute-and-Put must heal the entry.
	if err := s.Put(k, testResult()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); !ok {
		t.Fatal("healed blob missed")
	}
	c := s.Counters()
	if c.Misses != 3 || c.Corrupt != 2 || c.Hits != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestManifestPersistsAndRebuilds(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	k0, _ := KeyFor("a100", 0, 42, cfg)
	k1, _ := KeyFor("a100", 1, 43, cfg)
	for _, k := range []Key{k0, k1} {
		if err := s.Put(k, testResult()); err != nil {
			t.Fatal(err)
		}
	}

	// Reopen: the manifest file carries the index.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", s2.Len())
	}
	idx := s2.Index()
	if idx[0].Instance != 0 || idx[1].Instance != 1 {
		t.Fatalf("index order: %+v", idx)
	}

	// Corrupt the manifest: Open must rebuild it from the blobs.
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Len() != 2 {
		t.Fatalf("rebuilt Len = %d, want 2", s3.Len())
	}
	if _, ok := s3.Get(k0); !ok {
		t.Fatal("blob unreadable after manifest rebuild")
	}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), k1.Digest) {
		t.Fatal("rebuilt manifest missing an entry")
	}
}

// TestManifestMergesAcrossWriters: two Store handles on one directory
// (the cross-process shape) must not drop each other's index entries.
func TestManifestMergesAcrossWriters(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	ka, _ := KeyFor("a100", 0, 42, cfg)
	kb, _ := KeyFor("a100", 1, 43, cfg)
	if err := a.Put(ka, testResult()); err != nil {
		t.Fatal(err)
	}
	// b never saw ka; its Put must merge, not clobber.
	if err := b.Put(kb, testResult()); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 2 {
		t.Fatalf("manifest lost an entry across writers: Len = %d, want 2", reopened.Len())
	}
}

// TestCorruptBlobHealsIndexImmediately: a Get that finds a corrupt blob
// must delete the blob and tombstone its index entry on the spot — not
// leave a key that Index/Len report but Get cannot read until the next
// recompute happens to overwrite it.
func TestCorruptBlobHealsIndexImmediately(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k, err := KeyFor("a100", 0, 42, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k, testResult()); err != nil {
		t.Fatal(err)
	}
	blob := filepath.Join(dir, k.blobName())
	if err := os.WriteFile(blob, []byte("bitrot"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt blob hit")
	}
	if _, err := os.Stat(blob); !os.IsNotExist(err) {
		t.Fatal("stale corrupt blob left on disk")
	}
	if s.Len() != 0 || len(s.Index()) != 0 {
		t.Fatalf("index still reports the unreadable key: Len=%d", s.Len())
	}
	// The tombstone is journaled: a fresh handle agrees.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 {
		t.Fatalf("reopened Len = %d, want 0", s2.Len())
	}
	// And the usual heal-by-recompute contract still holds.
	if err := s.Put(k, testResult()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); !ok {
		t.Fatal("healed blob missed")
	}
}

// TestWriteAtomicCleansUpOnFailure: a failed Put (stage-write or rename)
// must not leak staging files into the store directory.
func TestWriteAtomicCleansUpOnFailure(t *testing.T) {
	countTmp := func(dir string) int {
		t.Helper()
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), tmpPrefix) {
				n++
			}
		}
		return n
	}

	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k, err := KeyFor("a100", 0, 42, testConfig())
	if err != nil {
		t.Fatal(err)
	}

	stageWrite = func(*os.File, []byte) (int, error) { return 0, fmt.Errorf("disk full") }
	err = s.Put(k, testResult())
	stageWrite = func(f *os.File, data []byte) (int, error) { return f.Write(data) }
	if err == nil {
		t.Fatal("Put succeeded with a failing stage write")
	}
	if n := countTmp(dir); n != 0 {
		t.Fatalf("failed stage write leaked %d temp files", n)
	}

	commitFile = func(string, string) error { return fmt.Errorf("rename denied") }
	err = s.Put(k, testResult())
	commitFile = os.Rename
	if err == nil {
		t.Fatal("Put succeeded with a failing rename")
	}
	if n := countTmp(dir); n != 0 {
		t.Fatalf("failed rename leaked %d temp files", n)
	}
	if s.Has(k) || s.Len() != 0 {
		t.Fatal("failed Put left blob or index entry behind")
	}
	if c := s.Counters(); c.Puts != 0 {
		t.Fatalf("failed Puts counted as successes: %+v", c)
	}

	// With the hooks restored the same Put goes through cleanly.
	if err := s.Put(k, testResult()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); !ok {
		t.Fatal("recovered Put missed")
	}
}

func TestHasDoesNotTouchCounters(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k, _ := KeyFor("a100", 0, 42, testConfig())
	if s.Has(k) {
		t.Fatal("Has on empty store")
	}
	if err := s.Put(k, testResult()); err != nil {
		t.Fatal(err)
	}
	if !s.Has(k) {
		t.Fatal("Has missed after Put")
	}
	c := s.Counters()
	if c.Hits != 0 || c.Misses != 0 {
		t.Fatalf("Has touched counters: %+v", c)
	}
}

// TestRawReservedDigest: the raw (network-facing) paths must refuse the
// digest that resolves to the index snapshot — a GetRaw must not heal
// ("delete") manifest.json and a PutRaw must not overwrite it.
func TestRawReservedDigest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(mustKey(t, 0, 42), testResult()); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetRaw("manifest"); ok {
		t.Fatal("GetRaw served the index snapshot as a blob")
	}
	if err := s.PutRaw("manifest", []byte(`{"schema":1,"digest":"manifest"}`)); err == nil {
		t.Fatal("PutRaw accepted the reserved digest")
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("manifest.json harmed by reserved-digest access: %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}
