package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLeaseExclusive(t *testing.T) {
	s := openStore(t)
	const digest = "d1"
	l, ok, err := s.TryAcquire(digest, "alpha", time.Minute)
	if err != nil || !ok {
		t.Fatalf("first claim: ok=%v err=%v", ok, err)
	}
	if l.Stolen() {
		t.Fatal("uncontended claim reported stolen")
	}
	if _, ok, err := s.TryAcquire(digest, "beta", time.Minute); err != nil || ok {
		t.Fatalf("second owner claimed a held lease: ok=%v err=%v", ok, err)
	}
	if owner, held := s.LeaseHolder(digest); !held || owner != "alpha" {
		t.Fatalf("holder = %q/%v, want alpha/true", owner, held)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	if _, held := s.LeaseHolder(digest); held {
		t.Fatal("lease held after release")
	}
	if _, ok, err := s.TryAcquire(digest, "beta", time.Minute); err != nil || !ok {
		t.Fatalf("claim after release: ok=%v err=%v", ok, err)
	}
}

// TestLeaseSameOwnerIsBusy: claims are strictly exclusive — a live
// lease is busy even for its own owner id, so two processes configured
// with the same owner string still partition work instead of silently
// both "winning" every shard (and Release-ing each other's leases).
func TestLeaseSameOwnerIsBusy(t *testing.T) {
	s := openStore(t)
	if _, ok, err := s.TryAcquire("d1", "alpha", time.Minute); err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	if _, ok, err := s.TryAcquire("d1", "alpha", time.Minute); err != nil || ok {
		t.Fatalf("same-owner claim of a live lease: ok=%v err=%v, want busy", ok, err)
	}
	// A restarted same-owner process re-claims through the ordinary
	// expiry-steal path.
	if _, ok, err := s.TryAcquire("d2", "beta", 5*time.Millisecond); err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	time.Sleep(20 * time.Millisecond)
	l, ok, err := s.TryAcquire("d2", "beta", time.Minute)
	if err != nil || !ok || !l.Stolen() {
		t.Fatalf("restarted owner could not reclaim its expired lease: ok=%v err=%v", ok, err)
	}
}

func TestLeaseStealExpired(t *testing.T) {
	s := openStore(t)
	if _, ok, err := s.TryAcquire("d1", "dead", 5*time.Millisecond); err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	time.Sleep(20 * time.Millisecond)
	l, ok, err := s.TryAcquire("d1", "alive", time.Minute)
	if err != nil || !ok {
		t.Fatalf("steal of expired lease failed: ok=%v err=%v", ok, err)
	}
	if !l.Stolen() {
		t.Fatal("takeover of an expired lease not reported as stolen")
	}
	if owner, held := s.LeaseHolder("d1"); !held || owner != "alive" {
		t.Fatalf("holder after steal = %q/%v", owner, held)
	}
}

func TestLeaseStealGarbage(t *testing.T) {
	s := openStore(t)
	path := filepath.Join(s.Dir(), "d1"+leaseSuffix)
	if err := os.WriteFile(path, []byte("not a lease"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, ok, err := s.TryAcquire("d1", "alpha", time.Minute)
	if err != nil || !ok || !l.Stolen() {
		t.Fatalf("garbage lease not stolen: ok=%v stolen=%v err=%v", ok, l != nil && l.Stolen(), err)
	}
}

func TestLeaseRenewExtends(t *testing.T) {
	s := openStore(t)
	l, ok, err := s.TryAcquire("d1", "alpha", 40*time.Millisecond)
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	time.Sleep(25 * time.Millisecond)
	if err := l.Renew(40 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(25 * time.Millisecond) // past the original expiry, inside the renewed one
	if _, ok, _ := s.TryAcquire("d1", "beta", time.Minute); ok {
		t.Fatal("renewed lease was claimable")
	}
	time.Sleep(30 * time.Millisecond) // past the renewed expiry
	if _, ok, _ := s.TryAcquire("d1", "beta", time.Minute); !ok {
		t.Fatal("expired renewed lease was not claimable")
	}
}

func TestLeaseReleaseLeavesStealer(t *testing.T) {
	s := openStore(t)
	l, ok, err := s.TryAcquire("d1", "slow", 5*time.Millisecond)
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	time.Sleep(20 * time.Millisecond)
	if _, ok, err := s.TryAcquire("d1", "stealer", time.Minute); err != nil || !ok {
		t.Fatalf("steal: ok=%v err=%v", ok, err)
	}
	// The displaced holder's release must not clobber the stealer.
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	if owner, held := s.LeaseHolder("d1"); !held || owner != "stealer" {
		t.Fatalf("stealer's lease gone after displaced release: %q/%v", owner, held)
	}
}

// TestLeaseTokenGuardsRenewAndRelease: ownership is verified by the
// per-acquisition token, not the owner label — a displaced holder whose
// lease was stolen by a process using the *same* owner string must
// neither renew over nor release the stealer's live claim.
func TestLeaseTokenGuardsRenewAndRelease(t *testing.T) {
	s := openStore(t)
	displaced, ok, err := s.TryAcquire("d1", "shared-label", 5*time.Millisecond)
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	time.Sleep(20 * time.Millisecond)
	stealer, ok, err := s.TryAcquire("d1", "shared-label", time.Minute)
	if err != nil || !ok || !stealer.Stolen() {
		t.Fatalf("steal: ok=%v err=%v", ok, err)
	}

	if err := displaced.Renew(time.Minute); err == nil {
		t.Fatal("displaced holder renewed over the stealer's live lease")
	}
	if err := displaced.Release(); err != nil {
		t.Fatal(err)
	}
	if _, held := s.LeaseHolder("d1"); !held {
		t.Fatal("displaced holder's release removed the stealer's live lease")
	}
	// The true holder's renew and release still work.
	if err := stealer.Renew(time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := stealer.Release(); err != nil {
		t.Fatal(err)
	}
	if _, held := s.LeaseHolder("d1"); held {
		t.Fatal("true holder could not release")
	}
}

func TestLeaseValidation(t *testing.T) {
	s := openStore(t)
	if _, _, err := s.TryAcquire("", "alpha", time.Minute); err == nil {
		t.Fatal("empty digest accepted")
	}
	if _, _, err := s.TryAcquire("d1", "", time.Minute); err == nil {
		t.Fatal("empty owner accepted")
	}
	if _, _, err := s.TryAcquire("d1", "alpha", 0); err == nil {
		t.Fatal("zero ttl accepted")
	}
	if _, _, err := s.TryAcquire("../escape", "alpha", time.Minute); err == nil {
		t.Fatal("path-separator digest accepted")
	}
}

// TestLeaseFilesInvisibleToIndex: lease files and the compaction lock
// must never be mistaken for blobs by scans.
func TestLeaseFilesInvisibleToIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.TryAcquire("d1", "alpha", time.Minute); err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	if err := s.Put(mustKey(t, 0, 42), testResult()); err != nil {
		t.Fatal(err)
	}
	// Force the rebuild path: the scan must index exactly the one blob.
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("rebuilt Len = %d, want 1 (a coordination file leaked into the index)", s2.Len())
	}
}
