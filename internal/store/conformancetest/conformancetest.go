// Package conformancetest is the executable specification of the
// store.Backend contract. Any backend — the local directory store, the
// storenet client (cache-less or tiered), a fault-injection wrapper,
// and every future one (hash router, S3) — must pass Run unchanged;
// the suite is what makes "implements store.Backend" a checkable claim
// instead of an interface assertion.
//
// The suite asserts observable contract, not implementation: reads
// degrade to misses (corrupt blobs included, which must heal on the
// next Put), writes surface errors, Has is a cheap non-validating
// probe, leases are exclusive compare-and-swap claims whose
// per-acquisition tokens protect a stealer from its victim's stale
// handle, and GC bounds the authoritative tier. Counter assertions are
// lower bounds — a tiered backend may serve hits its remote never
// sees.
package conformancetest

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"golatest/internal/core"
	"golatest/internal/stats"
	"golatest/internal/store"
)

// Harness is one backend under test, opened fresh per subtest.
type Harness struct {
	// Backend is the subject. It must be empty: subtests assume a
	// fresh store.
	Backend store.Backend

	// Corrupt, when non-nil, tampers with the durable bytes of the
	// digest's blob in every tier the backend reads from, so the suite
	// can assert corrupt ⇒ miss ⇒ heals on re-Put. Nil skips the
	// corruption subtest (for backends whose storage the test cannot
	// reach).
	Corrupt func(digest string)

	// Plant, when non-nil, writes raw container bytes under the digest
	// in the authoritative tier the backend reads from — the hook the
	// mixed-container subtest uses to seed legacy v1/v2 blobs a real
	// deployment's directory may still hold. Nil skips that subtest.
	Plant func(digest string, data []byte)

	// ReadBlob, when non-nil, returns the authoritative tier's current
	// on-disk bytes for the digest (nil if absent), so the suite can
	// assert legacy blobs heal forward to the current container.
	ReadBlob func(digest string) []byte
}

// Run drives the full conformance suite against backends produced by
// open. Each subtest opens its own harness, so state never leaks
// between cases and the suite parallelises safely under -race.
func Run(t *testing.T, open func(t *testing.T) Harness) {
	t.Run("MissOnAbsent", func(t *testing.T) { testMissOnAbsent(t, open(t)) })
	t.Run("PutGetRoundTrip", func(t *testing.T) { testPutGetRoundTrip(t, open(t)) })
	t.Run("NilResultPut", func(t *testing.T) { testNilResultPut(t, open(t)) })
	t.Run("IndexAndLen", func(t *testing.T) { testIndexAndLen(t, open(t)) })
	t.Run("LeaseExclusive", func(t *testing.T) { testLeaseExclusive(t, open(t)) })
	t.Run("LeaseExpirySteal", func(t *testing.T) { testLeaseExpirySteal(t, open(t)) })
	t.Run("CorruptBlobIsMissAndHeals", func(t *testing.T) { testCorrupt(t, open(t)) })
	t.Run("MixedContainerHeal", func(t *testing.T) { testMixedContainerHeal(t, open(t)) })
	t.Run("GCBoundsTheStore", func(t *testing.T) { testGC(t, open(t)) })
	t.Run("ConcurrentPutGet", func(t *testing.T) { testConcurrent(t, open(t)) })
}

// Key derives the i-th deterministic test key. Exported so harnesses
// can seed or corrupt specific digests.
func Key(t testing.TB, i int) store.Key {
	t.Helper()
	k, err := store.KeyFor("conformance", i, 42, core.Config{
		Frequencies: []float64{705, 1410},
		Seed:        uint64(1000 + i),
	})
	if err != nil {
		t.Fatalf("conformance key %d: %v", i, err)
	}
	return k
}

// Result builds the i-th deterministic test result. It carries a NaN
// so the suite exercises the non-finite float path every backend must
// round-trip.
func Result(i int) *core.Result {
	return &core.Result{
		DeviceName:   fmt.Sprintf("conformance[%d]", i),
		Architecture: "Ampere",
		Phase1: &core.Phase1Result{
			Stats: map[float64]core.FreqStats{
				705: {FreqMHz: 705, Iter: stats.MeanStd{N: 100, Mean: 0.2 + float64(i), Std: 0.001}},
			},
		},
		Pairs: []*core.PairResult{{
			Pair:     core.Pair{InitMHz: 705, TargetMHz: 1410},
			Samples:  []float64{13.5 + float64(i)},
			Injected: []float64{math.NaN()},
		}},
	}
}

// mustEqual compares results through the canonical encoding — the
// bytes the store contract is defined over — so NaN and map ordering
// compare correctly.
func mustEqual(t *testing.T, k store.Key, got, want *core.Result) {
	t.Helper()
	ge, err := store.EncodeBlob(k, got)
	if err != nil {
		t.Fatalf("encode got: %v", err)
	}
	we, err := store.EncodeBlob(k, want)
	if err != nil {
		t.Fatalf("encode want: %v", err)
	}
	if !bytes.Equal(ge, we) {
		t.Fatalf("result for %s did not round-trip canonically", k)
	}
}

func testMissOnAbsent(t *testing.T, h Harness) {
	k := Key(t, 0)
	if res, ok := h.Backend.Get(k); ok || res != nil {
		t.Fatalf("Get on an empty backend = (%v, %v), want miss", res, ok)
	}
	if h.Backend.Has(k) {
		t.Fatal("Has on an empty backend = true")
	}
	if c := h.Backend.Counters(); c.Misses < 1 {
		t.Fatalf("counters after a miss: %+v, want Misses ≥ 1", c)
	}
}

func testPutGetRoundTrip(t *testing.T, h Harness) {
	k, want := Key(t, 1), Result(1)
	if err := h.Backend.Put(k, want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := h.Backend.Get(k)
	if !ok {
		t.Fatal("Get after Put: miss")
	}
	mustEqual(t, k, got, want)
	if !h.Backend.Has(k) {
		t.Fatal("Has after Put = false")
	}
	c := h.Backend.Counters()
	if c.Puts < 1 || c.Hits < 1 {
		t.Fatalf("counters after put+hit: %+v, want Puts ≥ 1 and Hits ≥ 1", c)
	}
	if loc := h.Backend.Location(); loc == "" {
		t.Fatal("Location() is empty")
	}
}

func testNilResultPut(t *testing.T, h Harness) {
	if err := h.Backend.Put(Key(t, 2), nil); err == nil {
		t.Fatal("Put(nil) succeeded; writes must surface errors")
	}
}

func testIndexAndLen(t *testing.T, h Harness) {
	const n = 3
	digests := map[string]bool{}
	for i := 0; i < n; i++ {
		k := Key(t, 10+i)
		if err := h.Backend.Put(k, Result(10+i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		digests[k.Digest] = true
	}
	if got := h.Backend.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	ix := h.Backend.Index()
	if len(ix) != n {
		t.Fatalf("Index has %d entries, want %d", len(ix), n)
	}
	for _, e := range ix {
		if !digests[e.Digest] {
			t.Fatalf("Index lists unknown digest %s", e.Digest)
		}
		if e.Profile != "conformance" {
			t.Fatalf("Index entry profile = %q, want conformance", e.Profile)
		}
	}
}

func testLeaseExclusive(t *testing.T, h Harness) {
	d := Key(t, 20).Digest
	a, ok, err := h.Backend.TryAcquire(d, "owner-a", time.Minute)
	if err != nil || !ok {
		t.Fatalf("first acquire: ok=%v err=%v", ok, err)
	}
	if a.Owner() != "owner-a" || a.Token() == "" || a.Stolen() {
		t.Fatalf("lease handle: owner=%q token=%q stolen=%v", a.Owner(), a.Token(), a.Stolen())
	}
	// Exclusivity: a live lease refuses every other claimant — busy is
	// ok=false with nil error, not a failure.
	if _, ok, err := h.Backend.TryAcquire(d, "owner-b", time.Minute); err != nil || ok {
		t.Fatalf("second acquire on a held lease: ok=%v err=%v, want busy", ok, err)
	}
	if owner, held := h.Backend.LeaseHolder(d); !held || owner != "owner-a" {
		t.Fatalf("LeaseHolder = (%q, %v), want (owner-a, true)", owner, held)
	}
	if err := a.Renew(time.Minute); err != nil {
		t.Fatalf("renew of a held lease: %v", err)
	}
	if err := a.Release(); err != nil {
		t.Fatalf("release: %v", err)
	}
	if _, held := h.Backend.LeaseHolder(d); held {
		t.Fatal("lease still held after Release")
	}
	// The slot is free again: the CAS cycle restarts cleanly.
	if _, ok, err := h.Backend.TryAcquire(d, "owner-b", time.Minute); err != nil || !ok {
		t.Fatalf("acquire after release: ok=%v err=%v", ok, err)
	}
}

func testLeaseExpirySteal(t *testing.T, h Harness) {
	d := Key(t, 21).Digest
	a, ok, err := h.Backend.TryAcquire(d, "victim", 50*time.Millisecond)
	if err != nil || !ok {
		t.Fatalf("victim acquire: ok=%v err=%v", ok, err)
	}
	time.Sleep(150 * time.Millisecond) // let the victim's TTL lapse
	b, ok, err := h.Backend.TryAcquire(d, "stealer", time.Minute)
	if err != nil || !ok {
		t.Fatalf("steal of an expired lease: ok=%v err=%v", ok, err)
	}
	if !b.Stolen() {
		t.Fatal("stealer's handle does not report Stolen")
	}
	// Token CAS: the victim's stale handle must be inert — its renew
	// fails, and its release must not evict the stealer's live lease.
	if err := a.Renew(time.Minute); err == nil {
		t.Fatal("stale handle renewed after being stolen")
	}
	_ = a.Release() // best-effort: may "succeed" as a no-op, never clobbers
	if owner, held := h.Backend.LeaseHolder(d); !held || owner != "stealer" {
		t.Fatalf("after stale release, LeaseHolder = (%q, %v), want (stealer, true)", owner, held)
	}
	if err := b.Renew(time.Minute); err != nil {
		t.Fatalf("stealer renew: %v", err)
	}
	if err := b.Release(); err != nil {
		t.Fatalf("stealer release: %v", err)
	}
}

func testCorrupt(t *testing.T, h Harness) {
	if h.Corrupt == nil {
		t.Skip("harness cannot reach the backend's storage")
	}
	k, want := Key(t, 30), Result(30)
	if err := h.Backend.Put(k, want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	h.Corrupt(k.Digest)
	// A corrupt blob is a miss — never an error, never a wrong result.
	if res, ok := h.Backend.Get(k); ok {
		t.Fatalf("Get of a corrupt blob = (%v, true), want miss", res)
	}
	// And the slot heals: the caller recomputes, the re-Put lands, and
	// the next Get serves the good bytes.
	if err := h.Backend.Put(k, want); err != nil {
		t.Fatalf("healing Put: %v", err)
	}
	got, ok := h.Backend.Get(k)
	if !ok {
		t.Fatal("Get after healing Put: miss")
	}
	mustEqual(t, k, got, want)
}

// testMixedContainerHeal seeds the backend's authoritative tier with
// one blob per container generation — v1 plain JSON, v2 gzip JSON, v3
// binary — and asserts every backend serves all three as first-class
// hits with canonically identical results, then (where the harness can
// read the tier back) that the legacy blobs have healed forward to the
// current container. This is the cross-version deployment story: a
// directory written by any earlier release keeps working through any
// backend, and converges on the current format by being read.
func testMixedContainerHeal(t *testing.T, h Harness) {
	if h.Plant == nil {
		t.Skip("harness cannot seed the backend's storage")
	}
	encoders := []struct {
		name   string
		encode func(store.Key, *core.Result) ([]byte, error)
	}{
		{"v1", store.EncodeBlob},
		{"v2", store.EncodeBlobCompressed},
		{"v3", store.EncodeBlobV3},
	}
	for i, enc := range encoders {
		k, want := Key(t, 60+i), Result(60+i)
		data, err := enc.encode(k, want)
		if err != nil {
			t.Fatalf("%s encode: %v", enc.name, err)
		}
		h.Plant(k.Digest, data)

		got, ok := h.Backend.Get(k)
		if !ok {
			t.Fatalf("planted %s blob missed", enc.name)
		}
		mustEqual(t, k, got, want)
		if !h.Backend.Has(k) {
			t.Fatalf("Has = false for the planted %s blob", enc.name)
		}
		if h.ReadBlob != nil {
			healed := h.ReadBlob(k.Digest)
			if healed == nil {
				t.Fatalf("%s blob vanished from the authoritative tier", enc.name)
			}
			if store.ContainerOf(healed) != store.ContainerV3 {
				t.Fatalf("%s blob not healed to the current container on read", enc.name)
			}
			if _, err := store.ValidateBlob(healed, k.Digest); err != nil {
				t.Fatalf("healed %s blob does not validate: %v", enc.name, err)
			}
		}
		// The heal is not a one-read wonder: the same key keeps hitting.
		got, ok = h.Backend.Get(k)
		if !ok {
			t.Fatalf("%s blob missed on the post-heal read", enc.name)
		}
		mustEqual(t, k, got, want)
	}
}

func testGC(t *testing.T, h Harness) {
	const n = 3
	for i := 0; i < n; i++ {
		if err := h.Backend.Put(Key(t, 40+i), Result(40+i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	gs, err := h.Backend.GC(store.GCPolicy{MaxBytes: 1})
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if gs.Evicted < n {
		t.Fatalf("GC evicted %d, want ≥ %d", gs.Evicted, n)
	}
	// Len reflects the authoritative tier the policy bounded. (A tiered
	// backend may still serve Gets from its local cache — that tier is
	// bounded by its own owner, not this GC.)
	if got := h.Backend.Len(); got != 0 {
		t.Fatalf("Len after GC(MaxBytes=1) = %d, want 0", got)
	}
}

func testConcurrent(t *testing.T, h Harness) {
	const workers = 8
	keys := make([]store.Key, workers)
	for i := range keys {
		keys[i] = Key(t, 50+i)
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := keys[i]
			if err := h.Backend.Put(k, Result(50+i)); err != nil {
				errs <- fmt.Errorf("worker %d put: %w", i, err)
				return
			}
			if _, ok := h.Backend.Get(k); !ok {
				errs <- fmt.Errorf("worker %d lost its own write", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := h.Backend.Len(); got != workers {
		t.Fatalf("Len after concurrent puts = %d, want %d", got, workers)
	}
}
