package store

import (
	"fmt"
	"io"
	"testing"

	"golatest/internal/core"
)

// benchResult is deliberately tiny: these benchmarks measure the index
// maintenance cost of a Put, not blob encoding.
func benchResult() *core.Result {
	return &core.Result{DeviceName: "bench", Architecture: "Ampere"}
}

// preload fills a store with n entries so the benchmarks measure index
// cost at a given store size.
func preload(b *testing.B, n int) *Store {
	b.Helper()
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	res := benchResult()
	for i := 0; i < n; i++ {
		k, err := KeyFor("a100", 0, uint64(i), testConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Put(k, res); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkStorePut measures a journal-backed Put at two store sizes:
// the ns/op should be flat from 16 to 1024 entries, because the index
// update is one O(1) log append. Contrast with BenchmarkStorePutRewrite,
// the pre-journal behaviour, whose cost grows with every entry;
// bench_smoke.sh reports the ratio as manifest_put_speedup.
func BenchmarkStorePut(b *testing.B) {
	for _, n := range []int{16, 1024} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			s := preload(b, n)
			res := benchResult()
			keys := make([]Key, b.N)
			for i := range keys {
				k, err := KeyFor("a100", 1, uint64(1_000_000+i), testConfig())
				if err != nil {
					b.Fatal(err)
				}
				keys[i] = k
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Put(keys[i], res); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStorePutRewrite reproduces the pre-journal write path: every
// Put pays a full manifest snapshot rewrite, O(entries) I/O per write.
func BenchmarkStorePutRewrite(b *testing.B) {
	for _, n := range []int{16, 1024} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			s := preload(b, n)
			res := benchResult()
			keys := make([]Key, b.N)
			for i := range keys {
				k, err := KeyFor("a100", 1, uint64(1_000_000+i), testConfig())
				if err != nil {
					b.Fatal(err)
				}
				keys[i] = k
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Put(keys[i], res); err != nil {
					b.Fatal(err)
				}
				s.mu.Lock()
				if err := s.writeSnapshotLocked(); err != nil {
					s.mu.Unlock()
					b.Fatal(err)
				}
				s.mu.Unlock()
			}
		})
	}
}

// BenchmarkStoreGet measures a warm Get (read + decode + LRU touch).
func BenchmarkStoreGet(b *testing.B) {
	s := preload(b, 1)
	k, err := KeyFor("a100", 0, 0, testConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(k); !ok {
			b.Fatal("miss")
		}
	}
}

// codecResult is a mid-sized synthetic campaign (20 pairs × 30
// measurements) so the codec benchmarks exercise realistic array
// shapes rather than the tiny index-benchmark result.
func codecResult() *core.Result {
	res := &core.Result{DeviceName: "bench", Architecture: "Ampere"}
	for p := 0; p < 20; p++ {
		pr := &core.PairResult{
			Pair:     core.Pair{InitMHz: 705 + float64(15*p), TargetMHz: 1410 - float64(15*p)},
			Attempts: 30,
		}
		for m := 0; m < 30; m++ {
			lat := 0.1 + float64(p)*0.01 + float64(m)*0.000123456789
			pr.Measurements = append(pr.Measurements, core.Measurement{
				Pair:      pr.Pair,
				LatencyMs: lat,
				TsDevNs:   int64(1_000_000 * m),
				TeDevNs:   int64(1_000_000*m) + int64(lat*1e6),
				SM:        m % 108,
			})
			pr.Samples = append(pr.Samples, lat)
			pr.Kept = append(pr.Kept, lat)
		}
		res.Pairs = append(res.Pairs, pr)
	}
	return res
}

// BenchmarkBlobEncode measures the streaming Put-path encode: result →
// v3 binary body → pooled gzip, via pooled appender scratch — no
// intermediate envelope materialisation. bench_smoke.sh tracks its
// allocs/op and bytes/op against the encoding/json-era baseline
// (BenchmarkBlobEncodeJSON is that old path, kept for the comparison).
func BenchmarkBlobEncode(b *testing.B) {
	k, err := KeyFor("a100", 0, 42, testConfig())
	if err != nil {
		b.Fatal(err)
	}
	res := codecResult()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := encodeBlobV3To(io.Discard, k, res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlobEncodeJSON is the superseded v2 encode path (result →
// json.MarshalIndent envelope → pooled gzip): the baseline the v3
// streaming encoder's alloc reduction is measured against.
func BenchmarkBlobEncodeJSON(b *testing.B) {
	k, err := KeyFor("a100", 0, 42, testConfig())
	if err != nil {
		b.Fatal(err)
	}
	res := codecResult()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := encodeBlobTo(io.Discard, k, res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlobDecode measures the warm-path decode of the v3
// container (pooled gzip reader inflating into pooled scratch ahead of
// the bounds-checked binary walk) — BenchmarkBlobDecodeV2 and
// BenchmarkBlobDecodeV1 are the same payload in the legacy containers,
// for the migration-era comparison.
func BenchmarkBlobDecode(b *testing.B) {
	k, err := KeyFor("a100", 0, 42, testConfig())
	if err != nil {
		b.Fatal(err)
	}
	data, err := EncodeBlobV3(k, codecResult())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ValidateBlob(data, k.Digest); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlobDecodeV2(b *testing.B) {
	k, err := KeyFor("a100", 0, 42, testConfig())
	if err != nil {
		b.Fatal(err)
	}
	data, err := EncodeBlobCompressed(k, codecResult())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ValidateBlob(data, k.Digest); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlobDecodeV1(b *testing.B) {
	k, err := KeyFor("a100", 0, 42, testConfig())
	if err != nil {
		b.Fatal(err)
	}
	data, err := EncodeBlob(k, codecResult())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ValidateBlob(data, k.Digest); err != nil {
			b.Fatal(err)
		}
	}
}
