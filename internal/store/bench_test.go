package store

import (
	"fmt"
	"testing"

	"golatest/internal/core"
)

// benchResult is deliberately tiny: these benchmarks measure the index
// maintenance cost of a Put, not blob encoding.
func benchResult() *core.Result {
	return &core.Result{DeviceName: "bench", Architecture: "Ampere"}
}

// preload fills a store with n entries so the benchmarks measure index
// cost at a given store size.
func preload(b *testing.B, n int) *Store {
	b.Helper()
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	res := benchResult()
	for i := 0; i < n; i++ {
		k, err := KeyFor("a100", 0, uint64(i), testConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Put(k, res); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkStorePut measures a journal-backed Put at two store sizes:
// the ns/op should be flat from 16 to 1024 entries, because the index
// update is one O(1) log append. Contrast with BenchmarkStorePutRewrite,
// the pre-journal behaviour, whose cost grows with every entry;
// bench_smoke.sh reports the ratio as manifest_put_speedup.
func BenchmarkStorePut(b *testing.B) {
	for _, n := range []int{16, 1024} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			s := preload(b, n)
			res := benchResult()
			keys := make([]Key, b.N)
			for i := range keys {
				k, err := KeyFor("a100", 1, uint64(1_000_000+i), testConfig())
				if err != nil {
					b.Fatal(err)
				}
				keys[i] = k
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Put(keys[i], res); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStorePutRewrite reproduces the pre-journal write path: every
// Put pays a full manifest snapshot rewrite, O(entries) I/O per write.
func BenchmarkStorePutRewrite(b *testing.B) {
	for _, n := range []int{16, 1024} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			s := preload(b, n)
			res := benchResult()
			keys := make([]Key, b.N)
			for i := range keys {
				k, err := KeyFor("a100", 1, uint64(1_000_000+i), testConfig())
				if err != nil {
					b.Fatal(err)
				}
				keys[i] = k
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Put(keys[i], res); err != nil {
					b.Fatal(err)
				}
				s.mu.Lock()
				if err := s.writeSnapshotLocked(); err != nil {
					s.mu.Unlock()
					b.Fatal(err)
				}
				s.mu.Unlock()
			}
		})
	}
}

// BenchmarkStoreGet measures a warm Get (read + decode + LRU touch).
func BenchmarkStoreGet(b *testing.B) {
	s := preload(b, 1)
	k, err := KeyFor("a100", 0, 0, testConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(k); !ok {
			b.Fatal("miss")
		}
	}
}
