package store

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// writeV1Blob plants a legacy v1 (plain JSON) blob file, bypassing the
// store — the on-disk state a pre-compression store directory left
// behind.
func writeV1Blob(t *testing.T, dir string, k Key) []byte {
	t.Helper()
	data, err := EncodeBlob(k, testResult())
	if err != nil {
		t.Fatal(err)
	}
	if ContainerOf(data) != ContainerV1 {
		t.Fatal("EncodeBlob no longer produces the plain container; the fixture is wrong")
	}
	if err := os.WriteFile(filepath.Join(dir, k.blobName()), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return data
}

// writeV2Blob plants a legacy v2 (gzip JSON) blob file — what a store
// directory written between the compression and binary-codec releases
// holds.
func writeV2Blob(t *testing.T, dir string, k Key) []byte {
	t.Helper()
	data, err := EncodeBlobCompressed(k, testResult())
	if err != nil {
		t.Fatal(err)
	}
	if ContainerOf(data) != ContainerV2 {
		t.Fatal("EncodeBlobCompressed no longer produces the gzip container; the fixture is wrong")
	}
	if err := os.WriteFile(filepath.Join(dir, k.blobName()), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return data
}

func readBlobFile(t *testing.T, dir string, k Key) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, k.blobName()))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestLegacyBlobHealsToV3 is the transparent-migration contract, one
// generation on: a store seeded with v1 or v2 blobs serves correct
// results immediately (a hit, not a recompute), re-writes each blob in
// the v3 binary container on that first read, and keeps serving the
// identical result afterwards — including through a fresh handle that
// never saw the legacy container.
func TestLegacyBlobHealsToV3(t *testing.T) {
	plants := map[string]func(*testing.T, string, Key) []byte{
		"v1": writeV1Blob,
		"v2": writeV2Blob,
	}
	for name, plant := range plants {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			k := mustKey(t, 0, 42)
			plant(t, dir, k)

			res, ok := s.Get(k)
			if !ok {
				t.Fatalf("%s blob missed", name)
			}
			if !math.IsNaN(res.Pairs[0].Measurements[0].InjectedMs) || res.DeviceName != "A100-SXM4[0]" {
				t.Fatalf("%s blob decoded wrong: %+v", name, res)
			}
			if c := s.Counters(); c.Hits != 1 || c.Misses != 0 || c.Corrupt != 0 {
				t.Fatalf("a legacy read must be a clean hit: %+v", c)
			}

			healed := readBlobFile(t, dir, k)
			if ContainerOf(healed) != ContainerV3 {
				t.Fatalf("%s blob not re-written as the v3 container on first read", name)
			}

			// The healed index entry carries both sizes.
			var found bool
			for _, e := range s.Index() {
				if e.Digest == k.Digest {
					found = true
					if e.Bytes != int64(len(healed)) || e.RawBytes <= e.Bytes {
						t.Fatalf("healed entry sizes wrong: %+v (blob is %d bytes)", e, len(healed))
					}
				}
			}
			if !found {
				t.Fatal("healed blob not indexed")
			}

			// The heal's sizes are durable, not just this handle's view: a
			// fresh handle's index (journal + snapshot replay, before any
			// Get re-touches) must carry the container Bytes and the
			// RawBytes the heal recorded — stale legacy sizes here would
			// skew watermark GC and the stats compression ratio until every
			// blob was re-read.
			s2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if e := s2.Index()[0]; e.Bytes != int64(len(healed)) || e.RawBytes <= e.Bytes {
				t.Fatalf("healed sizes not durable across reopen: %+v (blob is %d bytes)", e, len(healed))
			}
			res2, ok := s2.Get(k)
			if !ok {
				t.Fatal("healed blob missed on reopen")
			}
			enc1, err := EncodeBlob(k, res)
			if err != nil {
				t.Fatal(err)
			}
			enc2, err := EncodeBlob(k, res2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc1, enc2) {
				t.Fatal("legacy and healed-v3 reads decode to different results")
			}
		})
	}
}

// TestHealConvergence: healing is byte-deterministic. A v1 blob healed
// on read, a v2 blob healed on read, and a fresh Put of the same
// result must all land the identical v3 container on disk — which is
// what lets remote tiers compare blobs by bytes instead of re-decoding.
func TestHealConvergence(t *testing.T) {
	k := mustKey(t, 0, 42)

	blobFor := func(plant func(*testing.T, string, Key) []byte) []byte {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if plant != nil {
			plant(t, dir, k)
		} else if err := s.Put(k, testResult()); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(k); !ok {
			t.Fatal("blob missed")
		}
		return readBlobFile(t, dir, k)
	}

	fresh := blobFor(nil)
	fromV1 := blobFor(writeV1Blob)
	fromV2 := blobFor(writeV2Blob)
	if !bytes.Equal(fresh, fromV1) {
		t.Fatal("heal(v1) diverges from a fresh Put")
	}
	if !bytes.Equal(fresh, fromV2) {
		t.Fatal("heal(v2) diverges from a fresh Put")
	}
}

// TestGetRawServesLegacyAsV3: the network read path ships the compact
// container even when the disk blob is still legacy — and heals the
// disk on the way.
func TestGetRawServesLegacyAsV3(t *testing.T) {
	plants := map[string]func(*testing.T, string, Key) []byte{
		"v1": writeV1Blob,
		"v2": writeV2Blob,
	}
	for name, plant := range plants {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			k := mustKey(t, 0, 42)
			plant(t, dir, k)

			data, ok := s.GetRaw(k.Digest)
			if !ok {
				t.Fatalf("%s blob missed through GetRaw", name)
			}
			if ContainerOf(data) != ContainerV3 {
				t.Fatalf("GetRaw served the %s container", ContainerOf(data))
			}
			if _, err := ValidateBlob(data, k.Digest); err != nil {
				t.Fatalf("served container does not validate: %v", err)
			}
			if !bytes.Equal(data, readBlobFile(t, dir, k)) {
				t.Fatal("served bytes differ from the healed disk blob")
			}
		})
	}
}

// TestMixedStoreRebuild: a directory holding all three containers
// rebuilds a complete index from a lost manifest — legacy blobs are
// first-class citizens of the scan until their lazy migration.
func TestMixedStoreRebuild(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	kV1, kV2, kV3 := mustKey(t, 0, 42), mustKey(t, 1, 43), mustKey(t, 2, 44)
	writeV1Blob(t, dir, kV1)
	writeV2Blob(t, dir, kV2)
	if err := s.Put(kV3, testResult()); err != nil {
		t.Fatal(err)
	}

	// Lose the whole index.
	os.Remove(filepath.Join(dir, manifestName))
	os.Remove(filepath.Join(dir, journalName))
	os.Remove(filepath.Join(dir, journalOldName))

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 3 {
		t.Fatalf("rebuilt Len = %d, want all three containers indexed", s2.Len())
	}
	for _, k := range []Key{kV1, kV2, kV3} {
		if _, ok := s2.Get(k); !ok {
			t.Fatalf("rebuilt store misses %s", k)
		}
	}
}

// TestCorruptBlobIsMissAndHeals extends the injected-corruption
// regression to the compressed containers: a v2 or v3 blob whose
// stream is truncated, bit-flipped, or replaced with garbage behind a
// valid magic must read as a miss that deletes the blob and tombstones
// its entry, after which recompute-and-Put heals it — never an error,
// never a wrong result.
func TestCorruptBlobIsMissAndHeals(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"truncated-stream": func(b []byte) []byte { return b[:len(b)/2] },
		"missing-footer":   func(b []byte) []byte { return b[:len(b)-4] },
		"bit-flip": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x40
			return c
		},
		"garbage-after-gzip-magic": func([]byte) []byte {
			return []byte{gzipMagic0, gzipMagic1, 'n', 'o', 't', 'g', 'z'}
		},
		"garbage-after-v3-magic": func([]byte) []byte {
			return append(append([]byte(nil), v3Magic[:]...), 'n', 'o', 't', 'g', 'z')
		},
	}
	plants := map[string]func(t *testing.T, s *Store, dir string, k Key){
		"v2": func(t *testing.T, s *Store, dir string, k Key) {
			writeV2Blob(t, dir, k)
			// Index it so corruption has an entry to tombstone.
			if _, ok := s.Get(k); !ok {
				t.Fatal("planted v2 blob missed")
			}
			// The read healed it to v3; re-plant v2 over the healed blob so
			// the corruption below lands on a v2 container.
			writeV2Blob(t, dir, k)
		},
		"v3": func(t *testing.T, s *Store, dir string, k Key) {
			if err := s.Put(k, testResult()); err != nil {
				t.Fatal(err)
			}
			if data := readBlobFile(t, dir, k); ContainerOf(data) != ContainerV3 {
				t.Fatal("Put did not write the v3 container")
			}
		},
	}
	for plantName, plant := range plants {
		for name, corrupt := range corruptions {
			t.Run(plantName+"/"+name, func(t *testing.T) {
				dir := t.TempDir()
				s, err := Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				k := mustKey(t, 0, 42)
				plant(t, s, dir, k)
				blob := filepath.Join(dir, k.blobName())
				good, err := os.ReadFile(blob)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(blob, corrupt(good), 0o644); err != nil {
					t.Fatal(err)
				}

				if _, ok := s.Get(k); ok {
					t.Fatal("corrupt blob served as a hit")
				}
				if _, err := os.Stat(blob); !os.IsNotExist(err) {
					t.Fatal("corrupt blob left on disk")
				}
				if s.Len() != 0 {
					t.Fatalf("index still reports the unreadable key: Len=%d", s.Len())
				}
				if c := s.Counters(); c.Corrupt != 1 || c.Misses != 1 {
					t.Fatalf("counters = %+v, want the corruption counted as one miss", c)
				}

				// Recompute-and-heal: the next Put/Get cycle is clean.
				if err := s.Put(k, testResult()); err != nil {
					t.Fatal(err)
				}
				if _, ok := s.Get(k); !ok {
					t.Fatal("healed blob missed")
				}
			})
		}
	}
}

// TestBlobCompressionRatioSynthetic: the containers must earn their
// keep even on a small synthetic result — real quick-scale campaign
// blobs (asserted in the root-level TestBlobCompressionRatio) compress
// better still.
func TestBlobCompressionRatioSynthetic(t *testing.T) {
	k := mustKey(t, 0, 42)
	plain, err := EncodeBlob(k, testResult())
	if err != nil {
		t.Fatal(err)
	}
	comp, err := EncodeBlobCompressed(k, testResult())
	if err != nil {
		t.Fatal(err)
	}
	v3, err := EncodeBlobV3(k, testResult())
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(plain)) / float64(len(comp))
	ratioV3 := float64(len(plain)) / float64(len(v3))
	t.Logf("synthetic blob: %d -> %d (v2, %.2fx) / %d (v3, %.2fx) bytes",
		len(plain), len(comp), ratio, len(v3), ratioV3)
	if ratio < 1.5 {
		t.Fatalf("v2 compression ratio %.2f on the synthetic blob; the container is not paying for itself", ratio)
	}
	if ratioV3 < 1.5 {
		t.Fatalf("v3 compression ratio %.2f on the synthetic blob; the container is not paying for itself", ratioV3)
	}
}

// TestBlobInflationBound: a compressed container that inflates past the
// canonical-size rail is an invalid blob (a gzip bomb turned miss), not
// an allocation storm — in the v2 container and the v3 container alike.
func TestBlobInflationBound(t *testing.T) {
	old := maxCanonicalBytes
	maxCanonicalBytes = 1 << 10
	defer func() { maxCanonicalBytes = old }()

	padding := bytes.Repeat([]byte{' '}, 64<<10)
	bomb, err := compressBlobBytes(padding)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = parseBlob(bomb, "deadbeef")
	if err == nil || !errors.Is(err, ErrInvalidBlob) {
		t.Fatalf("oversized v2 inflate err = %v, want ErrInvalidBlob", err)
	}

	v3bomb, err := compressBlobBytes(padding)
	if err != nil {
		t.Fatal(err)
	}
	v3bomb = append(append([]byte(nil), v3Magic[:]...), v3bomb...)
	_, _, _, err = parseBlob(v3bomb, "deadbeef")
	if err == nil || !errors.Is(err, ErrInvalidBlob) {
		t.Fatalf("oversized v3 inflate err = %v, want ErrInvalidBlob", err)
	}

	// A legitimate blob under the rail still parses, in both containers.
	maxCanonicalBytes = old
	k := mustKey(t, 0, 42)
	good, err := EncodeBlobCompressed(k, testResult())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := parseBlob(good, k.Digest); err != nil {
		t.Fatal(err)
	}
	goodV3, err := EncodeBlobV3(k, testResult())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := parseBlob(goodV3, k.Digest); err != nil {
		t.Fatal(err)
	}
}

// TestRejectsMultiMemberContainer: a compressed container must be
// exactly one gzip member — concatenated members (which multistream
// gzip readers transparently append) and raw trailing garbage would
// let arbitrary padding hide behind a valid digest and break the
// container's byte determinism. Both the v2 and v3 containers refuse.
func TestRejectsMultiMemberContainer(t *testing.T) {
	k := mustKey(t, 0, 42)
	good, err := EncodeBlobCompressed(k, testResult())
	if err != nil {
		t.Fatal(err)
	}
	goodV3, err := EncodeBlobV3(k, testResult())
	if err != nil {
		t.Fatal(err)
	}
	pad, err := compressBlobBytes([]byte("  \n"))
	if err != nil {
		t.Fatal(err)
	}
	for name, blob := range map[string][]byte{"v2": good, "v3": goodV3} {
		concat := append(append([]byte(nil), blob...), pad...)
		if _, err := ValidateBlob(concat, k.Digest); err == nil || !errors.Is(err, ErrInvalidBlob) {
			t.Fatalf("%s multi-member container err = %v, want ErrInvalidBlob", name, err)
		}
		// Raw trailing garbage after the member is rejected the same way.
		trailing := append(append([]byte(nil), blob...), "junk"...)
		if _, err := ValidateBlob(trailing, k.Digest); err == nil || !errors.Is(err, ErrInvalidBlob) {
			t.Fatalf("%s trailing-bytes container err = %v, want ErrInvalidBlob", name, err)
		}
		// And the pristine container still validates after those
		// rejections (the pooled reader state is clean).
		if _, err := ValidateBlob(blob, k.Digest); err != nil {
			t.Fatal(err)
		}
	}
}
