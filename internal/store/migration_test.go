package store

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// writeV1Blob plants a legacy v1 (plain JSON) blob file, bypassing the
// store — the on-disk state a pre-compression store directory left
// behind.
func writeV1Blob(t *testing.T, dir string, k Key) []byte {
	t.Helper()
	data, err := EncodeBlob(k, testResult())
	if err != nil {
		t.Fatal(err)
	}
	if IsGzipBlob(data) {
		t.Fatal("EncodeBlob no longer produces the plain container; the fixture is wrong")
	}
	if err := os.WriteFile(filepath.Join(dir, k.blobName()), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return data
}

func readBlobFile(t *testing.T, dir string, k Key) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, k.blobName()))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestV1BlobServesAndHealsToV2 is the transparent-migration contract: a
// store seeded with v1 JSON blobs serves correct results immediately (a
// hit, not a recompute), re-writes each blob in the v2 compressed
// container on that first read, and keeps serving the identical result
// afterwards — including through a fresh handle that never saw v1.
func TestV1BlobServesAndHealsToV2(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := mustKey(t, 0, 42)
	writeV1Blob(t, dir, k)

	res, ok := s.Get(k)
	if !ok {
		t.Fatal("v1 blob missed")
	}
	if !math.IsNaN(res.Pairs[0].Measurements[0].InjectedMs) || res.DeviceName != "A100-SXM4[0]" {
		t.Fatalf("v1 blob decoded wrong: %+v", res)
	}
	if c := s.Counters(); c.Hits != 1 || c.Misses != 0 || c.Corrupt != 0 {
		t.Fatalf("a v1 read must be a clean hit: %+v", c)
	}

	healed := readBlobFile(t, dir, k)
	if !IsGzipBlob(healed) {
		t.Fatal("v1 blob not re-written as the v2 container on first read")
	}

	// The healed index entry carries both sizes.
	var found bool
	for _, e := range s.Index() {
		if e.Digest == k.Digest {
			found = true
			if e.Bytes != int64(len(healed)) || e.RawBytes <= e.Bytes {
				t.Fatalf("healed entry sizes wrong: %+v (blob is %d bytes)", e, len(healed))
			}
		}
	}
	if !found {
		t.Fatal("healed blob not indexed")
	}

	// The heal's sizes are durable, not just this handle's view: a
	// fresh handle's index (journal + snapshot replay, before any Get
	// re-touches) must carry the compressed Bytes and the RawBytes the
	// heal recorded — stale v1 sizes here would skew watermark GC and
	// the stats compression ratio until every blob was re-read.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if e := s2.Index()[0]; e.Bytes != int64(len(healed)) || e.RawBytes <= e.Bytes {
		t.Fatalf("healed sizes not durable across reopen: %+v (blob is %d bytes)", e, len(healed))
	}
	res2, ok := s2.Get(k)
	if !ok {
		t.Fatal("healed blob missed on reopen")
	}
	enc1, err := EncodeBlob(k, res)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := EncodeBlob(k, res2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("v1 and healed-v2 reads decode to different results")
	}
}

// TestGetRawServesV1AsV2: the network read path ships the compact
// container even when the disk blob is still v1 — and heals the disk on
// the way.
func TestGetRawServesV1AsV2(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := mustKey(t, 0, 42)
	writeV1Blob(t, dir, k)

	data, ok := s.GetRaw(k.Digest)
	if !ok {
		t.Fatal("v1 blob missed through GetRaw")
	}
	if !IsGzipBlob(data) {
		t.Fatal("GetRaw served the uncompressed container")
	}
	if _, err := ValidateBlob(data, k.Digest); err != nil {
		t.Fatalf("served container does not validate: %v", err)
	}
	if !bytes.Equal(data, readBlobFile(t, dir, k)) {
		t.Fatal("served bytes differ from the healed disk blob")
	}
}

// TestMixedStoreRebuild: a directory holding both containers rebuilds a
// complete index from a lost manifest — v1 blobs are first-class
// citizens of the scan until their lazy migration.
func TestMixedStoreRebuild(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	kOld, kNew := mustKey(t, 0, 42), mustKey(t, 1, 43)
	writeV1Blob(t, dir, kOld)
	if err := s.Put(kNew, testResult()); err != nil {
		t.Fatal(err)
	}

	// Lose the whole index.
	os.Remove(filepath.Join(dir, manifestName))
	os.Remove(filepath.Join(dir, journalName))
	os.Remove(filepath.Join(dir, journalOldName))

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("rebuilt Len = %d, want both containers indexed", s2.Len())
	}
	for _, k := range []Key{kOld, kNew} {
		if _, ok := s2.Get(k); !ok {
			t.Fatalf("rebuilt store misses %s", k)
		}
	}
}

// TestCorruptV2BlobIsMissAndHeals extends the injected-corruption
// regression to the compressed container: a v2 blob whose gzip stream
// is truncated, bit-flipped, or replaced with garbage behind a valid
// magic must read as a miss that deletes the blob and tombstones its
// entry, after which recompute-and-Put heals it — never an error,
// never a wrong result.
func TestCorruptV2BlobIsMissAndHeals(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"truncated-stream": func(b []byte) []byte { return b[:len(b)/2] },
		"missing-footer":   func(b []byte) []byte { return b[:len(b)-4] },
		"bit-flip": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x40
			return c
		},
		"garbage-after-magic": func([]byte) []byte {
			return []byte{gzipMagic0, gzipMagic1, 'n', 'o', 't', 'g', 'z'}
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			k := mustKey(t, 0, 42)
			if err := s.Put(k, testResult()); err != nil {
				t.Fatal(err)
			}
			blob := filepath.Join(dir, k.blobName())
			good, err := os.ReadFile(blob)
			if err != nil {
				t.Fatal(err)
			}
			if !IsGzipBlob(good) {
				t.Fatal("Put did not write the v2 container")
			}
			if err := os.WriteFile(blob, corrupt(good), 0o644); err != nil {
				t.Fatal(err)
			}

			if _, ok := s.Get(k); ok {
				t.Fatal("corrupt v2 blob served as a hit")
			}
			if _, err := os.Stat(blob); !os.IsNotExist(err) {
				t.Fatal("corrupt blob left on disk")
			}
			if s.Len() != 0 {
				t.Fatalf("index still reports the unreadable key: Len=%d", s.Len())
			}
			if c := s.Counters(); c.Corrupt != 1 || c.Misses != 1 {
				t.Fatalf("counters = %+v, want the corruption counted as one miss", c)
			}

			// Recompute-and-heal: the next Put/Get cycle is clean.
			if err := s.Put(k, testResult()); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(k); !ok {
				t.Fatal("healed blob missed")
			}
		})
	}
}

// TestBlobCompressionRatioSynthetic: the container must earn its keep
// even on a small synthetic result — real quick-scale campaign blobs
// (asserted in the root-level TestBlobCompressionRatio) compress
// better still.
func TestBlobCompressionRatioSynthetic(t *testing.T) {
	k := mustKey(t, 0, 42)
	plain, err := EncodeBlob(k, testResult())
	if err != nil {
		t.Fatal(err)
	}
	comp, err := EncodeBlobCompressed(k, testResult())
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(plain)) / float64(len(comp))
	t.Logf("synthetic blob: %d -> %d bytes (%.2fx)", len(plain), len(comp), ratio)
	if ratio < 1.5 {
		t.Fatalf("compression ratio %.2f on the synthetic blob; the container is not paying for itself", ratio)
	}
}

// TestBlobInflationBound: a compressed container that inflates past the
// canonical-size rail is an invalid blob (a gzip bomb turned miss), not
// an allocation storm.
func TestBlobInflationBound(t *testing.T) {
	old := maxCanonicalBytes
	maxCanonicalBytes = 1 << 10
	defer func() { maxCanonicalBytes = old }()

	bomb, err := compressBlobBytes(bytes.Repeat([]byte{' '}, 64<<10))
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = parseBlob(bomb, "deadbeef")
	if err == nil || !errors.Is(err, ErrInvalidBlob) {
		t.Fatalf("oversized inflate err = %v, want ErrInvalidBlob", err)
	}

	// A legitimate blob under the rail still parses.
	maxCanonicalBytes = old
	k := mustKey(t, 0, 42)
	good, err := EncodeBlobCompressed(k, testResult())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := parseBlob(good, k.Digest); err != nil {
		t.Fatal(err)
	}
}

// TestRejectsMultiMemberContainer: a v2 container must be exactly one
// gzip member — concatenated members (which multistream gzip readers
// transparently append) would let arbitrary padding hide behind a
// valid digest and break the container's byte determinism.
func TestRejectsMultiMemberContainer(t *testing.T) {
	k := mustKey(t, 0, 42)
	good, err := EncodeBlobCompressed(k, testResult())
	if err != nil {
		t.Fatal(err)
	}
	pad, err := compressBlobBytes([]byte("  \n"))
	if err != nil {
		t.Fatal(err)
	}
	concat := append(append([]byte(nil), good...), pad...)
	if _, err := ValidateBlob(concat, k.Digest); err == nil || !errors.Is(err, ErrInvalidBlob) {
		t.Fatalf("multi-member container err = %v, want ErrInvalidBlob", err)
	}
	// Raw trailing garbage after the member is rejected the same way.
	trailing := append(append([]byte(nil), good...), "junk"...)
	if _, err := ValidateBlob(trailing, k.Digest); err == nil || !errors.Is(err, ErrInvalidBlob) {
		t.Fatalf("trailing-bytes container err = %v, want ErrInvalidBlob", err)
	}
	// And the pristine container still validates after those rejections
	// (the pooled reader state is clean).
	if _, err := ValidateBlob(good, k.Digest); err != nil {
		t.Fatal(err)
	}
}
