package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The manifest is maintained as an append-only journal plus a periodic
// snapshot. Every index mutation (Put, tombstone, LRU touch) appends one
// JSON record to manifest.log with O_APPEND, so concurrent writers —
// goroutines of one process or entirely separate processes sharing the
// directory — interleave whole records instead of overwriting each
// other: the lost-update window of a whole-file rewrite is gone, and a
// Put costs O(1) I/O in the store size instead of O(entries).
//
// Compaction folds the log into manifest.json: on Open (a fresh handle
// starts from a clean snapshot) and whenever the live log grows past
// journalCompactBytes. The compactor is serialized across processes by a
// short-lived lease on manifest.lock; it rotates manifest.log to
// manifest.log.old (atomic rename — new appends land in a fresh log),
// folds snapshot ∪ rotated records into a new manifest.json, and removes
// the rotated file. A crash mid-compaction leaves manifest.log.old
// behind; the next compactor folds it first, so no acknowledged record
// is ever dropped.
//
// Appenders keep their log fd open across writes. After every append
// they verify the fd still backs the live path (a compactor may have
// rotated it underneath them) and re-append to the fresh log when it
// does not. Records are idempotent upserts keyed by digest, so the
// occasional duplicate this produces is harmless; what it buys is that
// an append racing a compaction is never lost — either the compactor
// read it from the rotated file, or the appender notices and replays it.
const (
	journalName     = "manifest.log"
	journalOldName  = "manifest.log.old"
	compactLockName = "manifest.lock"
)

// journalCompactBytes is the live-log size past which an append triggers
// compaction. A variable so tests can force frequent compaction.
var journalCompactBytes int64 = 1 << 20

// Journal operations. The journal is index-only: it describes blobs, it
// never carries result payloads, so SchemaVersion (a blob contract) is
// untouched by its existence.
const (
	opPut   = "put"   // upsert a manifest entry
	opDel   = "del"   // tombstone: the blob was deleted (heal or GC)
	opTouch = "touch" // advance an entry's LRU clock
)

// journalRecord is one line of manifest.log.
type journalRecord struct {
	Op           string         `json:"op"`
	Entry        *ManifestEntry `json:"entry,omitempty"`     // put
	Digest       string         `json:"digest,omitempty"`    // del, touch
	AccessUnixNs int64          `json:"access_ns,omitempty"` // touch
}

// applyRecordLocked folds one record into a manifest map. Records are
// idempotent: replaying a record twice converges to the same map.
func applyRecord(m map[string]ManifestEntry, rec journalRecord) {
	switch rec.Op {
	case opPut:
		if rec.Entry != nil && rec.Entry.Digest != "" {
			m[rec.Entry.Digest] = *rec.Entry
		}
	case opDel:
		delete(m, rec.Digest)
	case opTouch:
		if e, ok := m[rec.Digest]; ok && rec.AccessUnixNs > e.AccessUnixNs {
			e.AccessUnixNs = rec.AccessUnixNs
			m[rec.Digest] = e
		}
	}
}

// replayJournal folds every parseable record of one journal file into m,
// in file order, and reports how many bytes it read. A missing file is
// zero records; a torn final line (a crash mid-append) is skipped, as is
// any garbage line — the journal is an optimisation over rebuildManifest,
// never a source of fatal errors.
func replayJournal(path string, m map[string]ManifestEntry) int64 {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec journalRecord
		if json.Unmarshal(line, &rec) != nil {
			continue
		}
		applyRecord(m, rec)
	}
	return int64(len(data))
}

// appendJournalLocked appends one record to the live log, reopening and
// re-appending if a concurrent compactor rotated the log mid-flight.
func (s *Store) appendJournalLocked(rec journalRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: journal record: %w", err)
	}
	data = append(data, '\n')
	path := filepath.Join(s.dir, journalName)
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		if s.journal == nil {
			f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("store: journal: %w", err)
			}
			s.journal = f
			s.journalBytes = 0
			if fi, err := f.Stat(); err == nil {
				s.journalBytes = fi.Size()
			}
		}
		if _, err := s.journal.Write(data); err != nil {
			lastErr = err
			s.journal.Close()
			s.journal = nil
			continue
		}
		if s.journalLiveLocked(path) {
			s.journalBytes += int64(len(data))
			return nil
		}
		// Rotated underneath us: the record may sit in a file the
		// compactor already consumed. Re-append to the fresh log —
		// records are idempotent, a duplicate is benign, a lost record
		// is not.
		s.journal.Close()
		s.journal = nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("log rotated on every attempt")
	}
	return fmt.Errorf("store: journal append: %w", lastErr)
}

// journalLiveLocked reports whether the open journal fd still backs the
// live manifest.log path.
func (s *Store) journalLiveLocked(path string) bool {
	pi, err := os.Stat(path)
	if err != nil {
		return false
	}
	fi, err := s.journal.Stat()
	if err != nil {
		return false
	}
	return os.SameFile(pi, fi)
}

// maybeCompactLocked compacts once the live log outgrows the threshold.
// Best-effort: a busy compaction lock or an I/O hiccup just leaves the
// log to the next opportunity.
func (s *Store) maybeCompactLocked() {
	if s.journalBytes >= journalCompactBytes {
		_ = s.compactLocked()
	}
}

// Compact folds the journal into the manifest.json snapshot. Callers
// rarely need it — Open and the size threshold compact automatically —
// but an explicit fold is useful before archiving or inspecting a store.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	// One compactor at a time, across processes. Busy means a peer is
	// already folding the same records; skipping is correct, not lossy.
	lock, ok, err := tryAcquirePath(filepath.Join(s.dir, compactLockName), s.id, compactLockTTL)
	if err != nil || !ok {
		return err
	}
	defer lock.Release()

	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	s.journalBytes = 0

	// A crashed compactor's rotated log must reach manifest.json before
	// the live log is rotated over its name.
	if err := s.foldLocked(); err != nil {
		return err
	}
	err = os.Rename(filepath.Join(s.dir, journalName), filepath.Join(s.dir, journalOldName))
	if err != nil {
		if os.IsNotExist(err) {
			// No live log: persist in-memory state (e.g. after a rebuild).
			return s.writeSnapshotLocked()
		}
		return fmt.Errorf("store: compact: %w", err)
	}
	return s.foldLocked()
}

// foldLocked merges manifest.json with the rotated log, replaces the
// in-memory index with the merged view, writes it as the new snapshot,
// and removes the rotated log. Crash-safe in that order: the snapshot is
// durable before the records it absorbed disappear.
func (s *Store) foldLocked() error {
	oldPath := filepath.Join(s.dir, journalOldName)
	if _, err := os.Stat(oldPath); os.IsNotExist(err) {
		return nil
	}
	merged := s.readSnapshotMap()
	replayJournal(oldPath, merged)
	// Nothing of this handle's is lost by adopting the merged view:
	// every local mutation was journaled before it reached the map, so
	// it is in the rotated log or in an earlier snapshot.
	s.manifest = merged
	if err := s.writeSnapshotLocked(); err != nil {
		return err
	}
	if err := os.Remove(oldPath); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: compact: %w", err)
	}
	return nil
}

// readSnapshotMap loads manifest.json into a fresh map; any failure —
// missing, unparseable, wrong schema — yields an empty map (the journal
// and, ultimately, rebuildManifest carry the truth).
func (s *Store) readSnapshotMap() map[string]ManifestEntry {
	m := make(map[string]ManifestEntry)
	data, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if err != nil {
		return m
	}
	var mf manifestFile
	if json.Unmarshal(data, &mf) != nil || mf.Schema != SchemaVersion {
		return m
	}
	for _, e := range mf.Entries {
		m[e.Digest] = e
	}
	return m
}

// writeSnapshotLocked writes the in-memory index as manifest.json, via
// the same atomic rename as blobs.
func (s *Store) writeSnapshotLocked() error {
	m := manifestFile{Schema: SchemaVersion}
	for _, e := range s.manifest {
		m.Entries = append(m.Entries, e)
	}
	sort.Slice(m.Entries, func(i, j int) bool { return m.Entries[i].Digest < m.Entries[j].Digest })
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}
	return s.writeAtomic(manifestName, data)
}
