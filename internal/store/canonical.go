package store

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"unicode/utf8"

	"golatest/internal/core"
)

// This file is the hand-rolled canonical envelope writer: it renders
// the exact bytes of json.MarshalIndent(&storedBlob{...}, "", " ")
// by walking core.Result directly, through a pooled appender, without
// ever materialising the storedResult intermediate or the encoded
// []byte. The byte-for-byte equivalence with encoding/json is a hard
// contract — v1 blobs on disk carry MarshalIndent's output, the digest
// and ETag are defined over these bytes, and the v3 container records
// their size — and is pinned by TestCanonicalWriterMatchesEncodingJSON
// against the retained encoding/json reference (encodeEnvelope).
//
// Three encoding/json behaviours are replicated exactly:
//
//   - string escaping with escapeHTML=true (\n \r \t \b \f and \"\\
//     specials, \u00XX for other control bytes and for < > &, �
//     for invalid UTF-8,  /  escaped);
//   - plain float64 fields use the ES6-style 'f'/'e' switch (exponent
//     form below 1e-6 and at/above 1e21, with the e-0X → e-X trim) and
//     reject non-finite values, exactly like json's floatEncoder;
//   - the f64 codec fields render MarshalJSON's output verbatim
//     (shortest 'g' round-trip, quoted "NaN"/"+Inf"/"-Inf").
//
// The indentation contract is MarshalIndent("", " "): one space per
// depth, "key": value, ",\n" separators, empty composites compact.

// appender is pooled write scratch: values are appended to buf and
// flushed to w in bulk, so a full envelope render performs zero
// allocations and O(1) writes per scratch-buffer fill. It doubles as
// the byte counter (n) that gives Put the canonical size for free.
type appender struct {
	w   io.Writer // nil sinks the bytes after counting (sizing pass)
	buf []byte
	n   int64
	err error
}

var appenders = sync.Pool{New: func() any {
	return &appender{buf: make([]byte, 0, 32<<10)}
}}

func getAppender(w io.Writer) *appender {
	a := appenders.Get().(*appender)
	a.w, a.buf, a.n, a.err = w, a.buf[:0], 0, nil
	return a
}

func putAppender(a *appender) {
	a.w = nil
	appenders.Put(a)
}

// flush drains buf into w (or discards it in counting mode). The
// running total n is advanced at append time, not here, so the final
// count is exact even when the destination fails mid-stream.
func (a *appender) flush() {
	if len(a.buf) == 0 {
		return
	}
	if a.w != nil && a.err == nil {
		if _, err := a.w.Write(a.buf); err != nil {
			a.err = err
		}
	}
	a.buf = a.buf[:0]
}

// grow makes room for need more bytes, flushing if the scratch would
// otherwise spill past its capacity (oversized single values simply
// extend the buffer; the pool cap is advisory, not a correctness rail).
func (a *appender) grow(need int) {
	if len(a.buf)+need > cap(a.buf) {
		a.flush()
	}
}

// total returns the bytes appended so far and the first write error.
func (a *appender) total() (int64, error) {
	a.flush()
	return a.n, a.err
}

func (a *appender) byte(b byte) {
	a.grow(1)
	a.buf = append(a.buf, b)
	a.n++
}

func (a *appender) raw(s string) {
	a.grow(len(s))
	a.buf = append(a.buf, s...)
	a.n += int64(len(s))
}

func (a *appender) rawBytes(p []byte) {
	a.grow(len(p))
	a.buf = append(a.buf, p...)
	a.n += int64(len(p))
}

// nl writes the MarshalIndent line break: '\n' plus depth indent units
// (one space each).
func (a *appender) nl(depth int) {
	a.grow(depth + 1)
	before := len(a.buf)
	a.buf = append(a.buf, '\n')
	for i := 0; i < depth; i++ {
		a.buf = append(a.buf, ' ')
	}
	a.n += int64(len(a.buf) - before)
}

func (a *appender) intValue(v int64) {
	a.grow(20)
	before := len(a.buf)
	a.buf = strconv.AppendInt(a.buf, v, 10)
	a.n += int64(len(a.buf) - before)
}

func (a *appender) boolValue(v bool) {
	if v {
		a.raw("true")
	} else {
		a.raw("false")
	}
}

// floatValue renders a plain float64 field exactly as encoding/json's
// floatEncoder: ES6-style shortest form with the 'f'/'e' switch and
// exponent trim, erroring on non-finite values (the f64 codec exists
// for fields that legitimately carry those).
func (a *appender) floatValue(v float64) {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		if a.err == nil {
			a.err = fmt.Errorf("json: unsupported value: %s", strconv.FormatFloat(v, 'g', -1, 64))
		}
		return
	}
	abs := math.Abs(v)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	a.grow(32)
	before := len(a.buf)
	a.buf = strconv.AppendFloat(a.buf, v, format, -1, 64)
	if format == 'e' {
		// clean up e-09 to e-9, as encoding/json does
		if n := len(a.buf); n >= 4 && a.buf[n-4] == 'e' && a.buf[n-3] == '-' && a.buf[n-2] == '0' {
			a.buf[n-2] = a.buf[n-1]
			a.buf = a.buf[:n-1]
		}
	}
	a.n += int64(len(a.buf) - before)
}

// f64Value renders an f64 codec field exactly as f64.MarshalJSON:
// quoted spellings for the non-finite values, shortest 'g' round-trip
// otherwise.
func (a *appender) f64Value(v float64) {
	switch {
	case math.IsNaN(v):
		a.raw(`"NaN"`)
		return
	case math.IsInf(v, 1):
		a.raw(`"+Inf"`)
		return
	case math.IsInf(v, -1):
		a.raw(`"-Inf"`)
		return
	}
	a.grow(32)
	before := len(a.buf)
	a.buf = strconv.AppendFloat(a.buf, v, 'g', -1, 64)
	a.n += int64(len(a.buf) - before)
}

const hexDigits = "0123456789abcdef"

// stringValue renders a JSON string exactly as encoding/json with
// escapeHTML=true (the Marshal default the canonical bytes were always
// produced under).
func (a *appender) stringValue(s string) {
	a.byte('"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			a.raw(s[start:i])
			switch b {
			case '\\', '"':
				a.byte('\\')
				a.byte(b)
			case '\b':
				a.raw(`\b`)
			case '\f':
				a.raw(`\f`)
			case '\n':
				a.raw(`\n`)
			case '\r':
				a.raw(`\r`)
			case '\t':
				a.raw(`\t`)
			default:
				a.raw(`\u00`)
				a.byte(hexDigits[b>>4])
				a.byte(hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			a.raw(s[start:i])
			a.raw(`\ufffd`)
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			a.raw(s[start:i])
			a.raw(`\u202`)
			a.byte(hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	a.raw(s[start:])
	a.byte('"')
}

// jsonObj and jsonArr reproduce MarshalIndent's composite layout: a
// newline plus per-depth indent before every member, ',' separators,
// the closing bracket back at the parent depth, and the empty
// composite compact ("{}" / "[]").
type jsonObj struct {
	a     *appender
	depth int
	n     int
}

func (a *appender) object(depth int) jsonObj { return jsonObj{a: a, depth: depth} }

func (o *jsonObj) key(name string) {
	if o.n == 0 {
		o.a.byte('{')
	} else {
		o.a.byte(',')
	}
	o.n++
	o.a.nl(o.depth + 1)
	o.a.stringValue(name)
	o.a.raw(": ")
}

func (o *jsonObj) close() {
	if o.n == 0 {
		o.a.raw("{}")
		return
	}
	o.a.nl(o.depth)
	o.a.byte('}')
}

type jsonArr struct {
	a     *appender
	depth int
	n     int
}

func (a *appender) array(depth int) jsonArr { return jsonArr{a: a, depth: depth} }

func (r *jsonArr) elem() {
	if r.n == 0 {
		r.a.byte('[')
	} else {
		r.a.byte(',')
	}
	r.n++
	r.a.nl(r.depth + 1)
}

func (r *jsonArr) close() {
	if r.n == 0 {
		r.a.raw("[]")
		return
	}
	r.a.nl(r.depth)
	r.a.byte(']')
}

// renderCanonical writes the canonical envelope of (k, res) — the
// bytes json.MarshalIndent(&storedBlob{...}, "", " ") would produce —
// into the appender. It mirrors encodeResult's structural quirks
// exactly, because those shaped every canonical byte ever digested:
// Pairs, Measurements and the flattened Phase1 stats are built by
// append there, so an empty one collapses to JSON null, while the f64
// sample slices preserve the nil-vs-empty distinction.
func renderCanonical(a *appender, k Key, res *core.Result) {
	top := a.object(0)
	top.key("schema")
	a.intValue(int64(SchemaVersion))
	top.key("digest")
	a.stringValue(k.Digest)
	top.key("profile")
	a.stringValue(k.Profile)
	top.key("instance")
	a.intValue(int64(k.Instance))
	top.key("result")
	renderResult(a, 1, res)
	top.close()
}

func renderResult(a *appender, depth int, res *core.Result) {
	o := a.object(depth)
	o.key("device_name")
	a.stringValue(res.DeviceName)
	o.key("architecture")
	a.stringValue(res.Architecture)
	o.key("capture_hint_ns")
	a.intValue(res.CaptureHintNs)
	if res.Phase1 != nil {
		o.key("phase1")
		renderPhase1(a, depth+1, res.Phase1)
	}
	o.key("pairs")
	if len(res.Pairs) == 0 {
		a.raw("null") // encodeResult builds Pairs by append: empty ⇒ nil ⇒ null
	} else {
		arr := a.array(depth + 1)
		for _, pr := range res.Pairs {
			arr.elem()
			if pr == nil {
				a.raw("null")
			} else {
				renderPair(a, depth+2, pr)
			}
		}
		arr.close()
	}
	o.close()
}

func renderPhase1(a *appender, depth int, p1 *core.Phase1Result) {
	o := a.object(depth)
	o.key("stats")
	if len(p1.Stats) == 0 {
		a.raw("null")
	} else {
		// The float-keyed map flattens to a frequency-sorted slice; the
		// key scratch is the only allocation on this (rare: phase-1 runs
		// once per campaign) path.
		freqs := make([]float64, 0, len(p1.Stats))
		for f := range p1.Stats {
			freqs = append(freqs, f)
		}
		sortFloat64s(freqs)
		arr := a.array(depth + 1)
		for _, f := range freqs {
			arr.elem()
			fs := p1.Stats[f]
			so := a.object(depth + 2)
			so.key("freq_mhz")
			a.floatValue(fs.FreqMHz)
			so.key("n")
			a.intValue(int64(fs.Iter.N))
			so.key("mean")
			a.f64Value(fs.Iter.Mean)
			so.key("std")
			a.f64Value(fs.Iter.Std)
			so.key("normalish")
			a.boolValue(fs.Normalish)
			so.close()
		}
		arr.close()
	}
	o.key("valid_pairs")
	renderPairSlice(a, depth+1, p1.ValidPairs)
	o.key("excluded")
	renderPairSlice(a, depth+1, p1.Excluded)
	o.key("unstable")
	if p1.Unstable == nil {
		a.raw("null")
	} else {
		arr := a.array(depth + 1)
		for _, v := range p1.Unstable {
			arr.elem()
			a.floatValue(v)
		}
		arr.close()
	}
	o.close()
}

func renderPairValue(a *appender, depth int, p core.Pair) {
	o := a.object(depth)
	o.key("InitMHz")
	a.floatValue(p.InitMHz)
	o.key("TargetMHz")
	a.floatValue(p.TargetMHz)
	o.close()
}

func renderPairSlice(a *appender, depth int, ps []core.Pair) {
	if ps == nil {
		a.raw("null")
		return
	}
	arr := a.array(depth)
	for _, p := range ps {
		arr.elem()
		renderPairValue(a, depth+1, p)
	}
	arr.close()
}

// renderF64Slice renders a []float64 under the f64 element codec,
// preserving nil-vs-empty (toF64s does).
func renderF64Slice(a *appender, depth int, xs []float64) {
	if xs == nil {
		a.raw("null")
		return
	}
	arr := a.array(depth)
	for _, v := range xs {
		arr.elem()
		a.f64Value(v)
	}
	arr.close()
}

func renderPair(a *appender, depth int, pr *core.PairResult) {
	o := a.object(depth)
	o.key("pair")
	renderPairValue(a, depth+1, pr.Pair)
	o.key("measurements")
	if len(pr.Measurements) == 0 {
		a.raw("null") // append-built in encodeResult: empty ⇒ null
	} else {
		arr := a.array(depth + 1)
		for i := range pr.Measurements {
			arr.elem()
			m := &pr.Measurements[i]
			mo := a.object(depth + 2)
			mo.key("pair")
			renderPairValue(a, depth+3, m.Pair)
			mo.key("latency_ms")
			a.f64Value(m.LatencyMs)
			mo.key("ts_dev_ns")
			a.intValue(m.TsDevNs)
			mo.key("te_dev_ns")
			a.intValue(m.TeDevNs)
			mo.key("sm")
			a.intValue(int64(m.SM))
			mo.key("transition_index")
			a.intValue(int64(m.TransitionIndex))
			mo.key("injected_ms")
			a.f64Value(m.InjectedMs)
			mo.key("sync_spread_ns")
			a.intValue(m.SyncSpreadNs)
			mo.close()
		}
		arr.close()
	}
	o.key("samples")
	renderF64Slice(a, depth+1, pr.Samples)
	o.key("injected")
	renderF64Slice(a, depth+1, pr.Injected)
	o.key("attempts")
	a.intValue(int64(pr.Attempts))
	o.key("failures")
	a.intValue(int64(pr.Failures))
	o.key("discarded_by_throttle")
	a.intValue(int64(pr.DiscardedByThrottle))
	o.key("throttle_events")
	a.intValue(int64(pr.ThrottleEvents))
	o.key("skipped")
	a.boolValue(pr.Skipped)
	if pr.SkipReason != "" {
		o.key("skip_reason")
		a.stringValue(pr.SkipReason)
	}
	o.key("kept")
	renderF64Slice(a, depth+1, pr.Kept)
	o.key("outliers")
	renderF64Slice(a, depth+1, pr.Outliers)
	if pr.Clusters != nil {
		o.key("clusters")
		co := a.object(depth + 1)
		co.key("labels")
		if pr.Clusters.Labels == nil {
			a.raw("null")
		} else {
			arr := a.array(depth + 2)
			for _, l := range pr.Clusters.Labels {
				arr.elem()
				a.intValue(int64(l))
			}
			arr.close()
		}
		co.key("num_clusters")
		a.intValue(int64(pr.Clusters.NumClusters))
		co.key("eps")
		a.f64Value(pr.Clusters.Eps)
		co.key("min_pts")
		a.intValue(int64(pr.Clusters.MinPts))
		co.close()
	}
	o.key("summary")
	so := a.object(depth + 1)
	so.key("n")
	a.intValue(int64(pr.Summary.N))
	so.key("mean")
	a.f64Value(pr.Summary.Mean)
	so.key("std")
	a.f64Value(pr.Summary.Std)
	so.key("min")
	a.f64Value(pr.Summary.Min)
	so.key("q05")
	a.f64Value(pr.Summary.Q05)
	so.key("q25")
	a.f64Value(pr.Summary.Q25)
	so.key("median")
	a.f64Value(pr.Summary.Median)
	so.key("q75")
	a.f64Value(pr.Summary.Q75)
	so.key("q95")
	a.f64Value(pr.Summary.Q95)
	so.key("max")
	a.f64Value(pr.Summary.Max)
	so.close()
	o.key("final_rse")
	a.f64Value(pr.FinalRSE)
	o.close()
}

// sortFloat64s is an insertion sort: phase-1 sweeps a handful of
// frequencies, and the tiny fixed cost avoids pulling sort's
// interface machinery into the render path.
func sortFloat64s(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// writeCanonicalTo streams the canonical envelope of (k, res) into w
// and returns its size — the renderer behind EncodeBlob and the sizing
// pass of the v3 encoder.
func writeCanonicalTo(w io.Writer, k Key, res *core.Result) (int64, error) {
	a := getAppender(w)
	renderCanonical(a, k, res)
	n, err := a.total()
	putAppender(a)
	return n, err
}
