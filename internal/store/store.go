// Package store persists campaign results as content-addressed,
// versioned JSON blobs, so that repeated and incremental sweeps are
// near-free: a campaign whose inputs have not changed is read back from
// disk instead of being re-simulated.
//
// # Addressing
//
// A campaign is identified by a Key whose digest is the SHA-256 of the
// canonical encoding of everything its result is a deterministic
// function of:
//
//   - the hardware profile key and unit instance (which select the
//     calibrated architecture model),
//   - the device seed (which fixes the simulator's entire random future),
//   - the canonicalized core.Config (every knob that shapes the
//     campaign; Parallelism is excluded because results are bit-for-bit
//     identical at every parallelism level — see Config.CacheFingerprint),
//   - the store schema version (so a code change that alters blob
//     structure or meaning invalidates every older blob at once).
//
// Campaigns are deterministic given those inputs, which is what makes
// content addressing sound: equal key ⇒ equal result, so a hit can be
// substituted for a recompute without changing a single output byte.
//
// # Durability and tolerance
//
// Blobs are written to a temporary file in the store directory and
// atomically renamed into place, so a crash mid-write never leaves a
// half-written blob under a valid digest name. Reads are corruption
// tolerant: a blob that fails to parse, carries the wrong schema
// version, or does not match its digest is treated as a miss — the
// stale blob is deleted and its index entry tombstoned on the spot, and
// the campaign is recomputed and rewritten — never as an error.
//
// # Coordination
//
// The store doubles as a coordination substrate for multiple processes
// sharing one directory. The index is an append-only journal
// (manifest.log) compacted into a manifest.json snapshot — see
// journal.go — so concurrent writers interleave records instead of
// overwriting each other's index. Advisory shard leases
// (`<digest>.lease`, see lease.go) let cooperating sweeps partition
// work: claim before computing, wait on a live peer, steal from a dead
// one. GC (gc.go) bounds the store by size and idle age using the LRU
// clock that Get maintains. A missing or corrupt index is always
// recoverable by scanning the blobs.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"golatest/internal/core"
	"golatest/internal/hwprofile"
)

// SchemaVersion is the on-disk blob schema version. Bump it whenever the
// stored* types in codec.go change shape or meaning, or when a campaign
// code change makes previously-stored results non-reproducible; every
// blob written under an older version then misses (both through the key
// digest and the envelope check) and is recomputed. The manifest journal
// is index-only metadata — blobs are untouched by it — so its
// introduction did not bump this.
const SchemaVersion = 1

// manifestName is the index snapshot; it is not a blob.
const manifestName = "manifest.json"

// tmpPrefix marks staging files; the leading dot keeps them out of every
// blob scan.
const tmpPrefix = ".tmp-"

// Key is the content address of one campaign result.
type Key struct {
	// Digest is the hex SHA-256 of the canonical key material.
	Digest string
	// Profile and Instance echo the hardware identity for manifests and
	// logs; they are inputs to the digest, not extra key dimensions.
	Profile  string
	Instance int
}

func (k Key) String() string { return fmt.Sprintf("%s/%d@%.12s", k.Profile, k.Instance, k.Digest) }

func (k Key) blobName() string { return k.Digest + ".json" }

// KeyFor derives the content address of a campaign from its inputs. The
// digest covers the schema version, so schema bumps invalidate the whole
// key space rather than relying on the envelope check alone.
func KeyFor(profileKey string, instance int, deviceSeed uint64, cfg core.Config) (Key, error) {
	fp, err := cfg.CacheFingerprint()
	if err != nil {
		return Key{}, fmt.Errorf("store: fingerprint config: %w", err)
	}
	material, err := json.Marshal(struct {
		Schema     int             `json:"schema"`
		Profile    string          `json:"profile"`
		Instance   int             `json:"instance"`
		DeviceSeed uint64          `json:"device_seed"`
		Config     json.RawMessage `json:"config"`
	}{SchemaVersion, profileKey, instance, deviceSeed, fp})
	if err != nil {
		return Key{}, fmt.Errorf("store: key material: %w", err)
	}
	sum := sha256.Sum256(material)
	return Key{Digest: hex.EncodeToString(sum[:]), Profile: profileKey, Instance: instance}, nil
}

// ProfileKey derives the content address of the campaign that cfg would
// run on profile p.
func ProfileKey(p hwprofile.Profile, cfg core.Config) (Key, error) {
	return KeyFor(p.Key, p.Instance, p.Config.Seed, cfg)
}

// Counters reports store traffic. Hits and Misses partition Get calls;
// Corrupt counts the subset of misses caused by an unreadable or invalid
// blob; Puts counts successful writes.
type Counters struct {
	Hits    int64
	Misses  int64
	Corrupt int64
	Puts    int64
}

// ManifestEntry describes one blob in the index.
type ManifestEntry struct {
	Digest   string `json:"digest"`
	Profile  string `json:"profile"`
	Instance int    `json:"instance"`
	Schema   int    `json:"schema"`
	// Bytes is the blob size, recorded at Put; GC's size bound sums it.
	Bytes int64 `json:"bytes,omitempty"`
	// AccessUnixNs is the LRU clock: advanced by Put and by every Get
	// hit, consulted by GC's age bound and eviction order.
	AccessUnixNs int64 `json:"access_ns,omitempty"`
}

// Store is a directory of campaign blobs plus a journaled index. All
// methods are safe for concurrent use by multiple goroutines of one
// process, and the on-disk formats are safe for multiple processes
// sharing the directory: blob writes are atomic renames of identical
// bytes (same key ⇒ same result), index mutations append to the journal
// (no lost updates), and compaction is serialized by an advisory lock.
// Each handle's in-memory index converges with its peers' at every
// compaction and on reopen.
type Store struct {
	dir string
	// id identifies this handle as a lease owner for internal locks.
	id string

	mu           sync.Mutex // guards manifest map, journal fd, snapshot writes
	manifest     map[string]ManifestEntry
	journal      *os.File // live manifest.log, opened O_APPEND on first use
	journalBytes int64    // live log size, drives threshold compaction

	hits, misses, corrupt, puts atomic.Int64
}

// Open creates the directory if needed and loads the index: snapshot
// plus journal replay, rebuilding from the blobs when the index is
// missing or corrupt, then compacts any outstanding journal so this
// handle starts from a clean snapshot.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, id: newHandleID(), manifest: make(map[string]ManifestEntry)}
	s.mu.Lock()
	defer s.mu.Unlock()

	absent, snapErr := s.loadSnapshotLocked()
	replayed := replayJournal(filepath.Join(dir, journalOldName), s.manifest)
	replayed += replayJournal(filepath.Join(dir, journalName), s.manifest)
	switch {
	case snapErr != nil,
		absent && replayed == 0 && s.countBlobs() > 0:
		// Corrupt snapshot, or blobs with no index at all: the blobs are
		// the ground truth; scan them and discard the stale journal.
		if err := s.rebuildManifestLocked(); err != nil {
			return nil, err
		}
	case replayed > 0:
		// Fold the journal into the snapshot so the next Open replays
		// nothing. Best-effort: a peer holding the compaction lock just
		// means they are folding the same records.
		_ = s.compactLocked()
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Location implements Backend: a filesystem store is located at its
// directory.
func (s *Store) Location() string { return s.dir }

// Counters returns a snapshot of the traffic counters.
func (s *Store) Counters() Counters {
	return Counters{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Corrupt: s.corrupt.Load(),
		Puts:    s.puts.Load(),
	}
}

// Has reports whether a blob exists for the key, without reading or
// validating it and without touching the hit/miss counters. A planner's
// convenience; only Get vouches for the blob's integrity. A reserved
// digest never has a blob, even though a file by that name exists.
func (s *Store) Has(k Key) bool {
	if reservedDigest(k.Digest) {
		return false
	}
	_, err := os.Stat(filepath.Join(s.dir, k.blobName()))
	return err == nil
}

// Get returns the stored campaign for the key, or (nil, false) on any
// kind of miss: no blob, unparseable blob, schema mismatch, or digest
// mismatch. Invalid blobs are never fatal — the stale blob is deleted
// and its index entry tombstoned immediately (so Index and Len never
// report a key that cannot be read), and the caller recomputes and
// Puts. A hit advances the entry's LRU clock for GC.
func (s *Store) Get(k Key) (*core.Result, bool) {
	data, err := os.ReadFile(filepath.Join(s.dir, k.blobName()))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	res, err := decodeBlob(data, k)
	if err != nil {
		s.corrupt.Add(1)
		s.misses.Add(1)
		s.healCorrupt(k)
		return nil, false
	}
	s.hits.Add(1)
	s.touch(k, int64(len(data)))
	return res, true
}

// reservedDigest reports a digest whose blob filename would collide
// with the store's own index snapshot. Such a digest can never address
// a blob; treating it as ordinary input would let a network client read
// — or, via the corrupt-blob healing path, delete — manifest.json.
func reservedDigest(digest string) bool { return digest+".json" == manifestName }

// GetRaw returns the validated raw bytes of the blob stored under
// digest — the network daemon's read path: the blob is shipped
// verbatim (no decode/re-encode round trip on the wire), while the
// validation, traffic counters, LRU touch, and corrupt-blob healing all
// match Get. The touch indexes under the profile/instance recorded in
// the blob envelope, so a served blob is fully described in the index
// even when this handle never saw its Put.
func (s *Store) GetRaw(digest string) ([]byte, bool) {
	if reservedDigest(digest) {
		// A plain miss, pointedly without healing: the "corrupt blob"
		// a reserved digest resolves to is the index snapshot itself.
		s.misses.Add(1)
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(s.dir, digest+".json"))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	b, err := parseBlob(data, digest)
	if err != nil {
		s.corrupt.Add(1)
		s.misses.Add(1)
		s.healCorrupt(Key{Digest: digest})
		return nil, false
	}
	s.hits.Add(1)
	s.touch(Key{Digest: digest, Profile: b.Profile, Instance: b.Instance}, int64(len(data)))
	return data, true
}

// PutRaw stores pre-encoded blob bytes under digest — the network
// daemon's write path, and the client's local-cache heal. The bytes are
// validated first (envelope parse, schema, digest match; failures wrap
// ErrInvalidBlob), so a caller can never plant a blob Get would reject,
// then written with the same atomic rename and O(1) journal append as
// Put.
func (s *Store) PutRaw(digest string, data []byte) error {
	if reservedDigest(digest) {
		return fmt.Errorf("store: %w: digest %q names the index snapshot", ErrInvalidBlob, digest)
	}
	b, err := parseBlob(data, digest)
	if err != nil {
		return err
	}
	if err := s.writeAtomic(digest+".json", data); err != nil {
		return err
	}
	s.puts.Add(1)
	return s.recordPut(Key{Digest: digest, Profile: b.Profile, Instance: b.Instance}, int64(len(data)))
}

// healCorrupt removes an unreadable blob and tombstones its index entry,
// so the corruption is visible for exactly one Get: the next Put writes
// a fresh blob and a fresh entry. (If a concurrent writer renamed a good
// blob into place between our failed read and this remove, that blob is
// lost and recomputed — determinism makes the recompute identical.)
func (s *Store) healCorrupt(k Key) {
	os.Remove(filepath.Join(s.dir, k.blobName()))
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.manifest, k.Digest)
	_ = s.appendJournalLocked(journalRecord{Op: opDel, Digest: k.Digest})
}

// touch advances the key's LRU clock, indexing the blob on the fly if
// this handle had no entry for it (e.g. a peer's write this handle has
// not folded yet).
func (s *Store) touch(k Key, size int64) {
	now := time.Now().UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.manifest[k.Digest]
	if !ok {
		e = ManifestEntry{Digest: k.Digest, Profile: k.Profile, Instance: k.Instance, Schema: SchemaVersion}
	}
	e.Bytes = size
	e.AccessUnixNs = now
	s.manifest[k.Digest] = e
	rec := journalRecord{Op: opTouch, Digest: k.Digest, AccessUnixNs: now}
	if !ok {
		rec = journalRecord{Op: opPut, Entry: &e}
	}
	_ = s.appendJournalLocked(rec)
	s.maybeCompactLocked()
}

// Put stores the campaign under the key, atomically: the blob is staged
// in a temporary file and renamed into place, so concurrent readers see
// either the old blob or the new one, never a torn write. The index
// update is one O(1) journal append regardless of store size.
func (s *Store) Put(k Key, res *core.Result) error {
	if res == nil {
		return fmt.Errorf("store: nil result for %s", k)
	}
	data, err := encodeBlob(k, res)
	if err != nil {
		return fmt.Errorf("store: encode %s: %w", k, err)
	}
	if err := s.writeAtomic(k.blobName(), data); err != nil {
		return err
	}
	s.puts.Add(1)
	return s.recordPut(k, int64(len(data)))
}

// recordPut indexes a freshly written blob: upsert the manifest entry,
// journal it, and compact if the log outgrew its threshold.
func (s *Store) recordPut(k Key, size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := ManifestEntry{
		Digest:       k.Digest,
		Profile:      k.Profile,
		Instance:     k.Instance,
		Schema:       SchemaVersion,
		Bytes:        size,
		AccessUnixNs: time.Now().UnixNano(),
	}
	s.manifest[k.Digest] = e
	if err := s.appendJournalLocked(journalRecord{Op: opPut, Entry: &e}); err != nil {
		return err
	}
	s.maybeCompactLocked()
	return nil
}

// Index returns the manifest entries sorted by (profile, instance,
// digest).
func (s *Store) Index() []ManifestEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ManifestEntry, 0, len(s.manifest))
	for _, e := range s.manifest {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Profile != out[j].Profile {
			return out[i].Profile < out[j].Profile
		}
		if out[i].Instance != out[j].Instance {
			return out[i].Instance < out[j].Instance
		}
		return out[i].Digest < out[j].Digest
	})
	return out
}

// Len returns the number of indexed blobs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.manifest)
}

// Test hooks: the writeAtomic failure paths (full disk, unwritable
// directory) are injected here because they are otherwise unreachable in
// a tempdir test.
var (
	stageWrite = func(f *os.File, data []byte) (int, error) { return f.Write(data) }
	commitFile = os.Rename
)

// writeAtomic stages data in a temp file in the store directory (same
// filesystem, so the rename is atomic) and renames it over name.
func (s *Store) writeAtomic(name string, data []byte) error {
	return atomicWrite(filepath.Join(s.dir, name), data)
}

// atomicWrite stages data next to dst and renames it into place. Every
// failure path removes the staging file: a failed write must not litter
// the directory with orphans. Shared by blob/snapshot writes and lease
// renewal.
func atomicWrite(dst string, data []byte) error {
	dir, base := filepath.Split(dst)
	tmp, err := os.CreateTemp(dir, tmpPrefix+base+"-*")
	if err != nil {
		return fmt.Errorf("store: stage %s: %w", base, err)
	}
	if _, err := stageWrite(tmp, data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: stage %s: %w", base, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: stage %s: %w", base, err)
	}
	if err := commitFile(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: commit %s: %w", base, err)
	}
	return nil
}

type manifestFile struct {
	Schema  int             `json:"schema"`
	Entries []ManifestEntry `json:"entries"`
}

// loadSnapshotLocked reads manifest.json into the index. absent reports
// a cleanly missing snapshot (not an error: the journal or an empty
// store may carry the state); err reports an unreadable or alien
// snapshot, which callers resolve by rebuilding from the blobs.
func (s *Store) loadSnapshotLocked() (absent bool, err error) {
	data, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return true, nil
		}
		return false, fmt.Errorf("store: manifest: %w", err)
	}
	var m manifestFile
	if err := json.Unmarshal(data, &m); err != nil {
		return false, fmt.Errorf("store: manifest: %w", err)
	}
	if m.Schema != SchemaVersion {
		return false, fmt.Errorf("store: manifest schema %d, want %d", m.Schema, SchemaVersion)
	}
	for _, e := range m.Entries {
		s.manifest[e.Digest] = e
	}
	return false, nil
}

// rebuildManifestLocked recreates the index by reading every blob
// envelope in the directory — the blobs are the ground truth the index
// merely accelerates. Blobs that do not parse are skipped (they will
// miss and be rewritten on their next Get/Put cycle). The journal is
// discarded: whatever it said is superseded by the scan.
func (s *Store) rebuildManifestLocked() error {
	s.manifest = make(map[string]ManifestEntry)
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: rebuild manifest: %w", err)
	}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || name == manifestName || !strings.HasSuffix(name, ".json") ||
			strings.HasPrefix(name, ".") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		var b storedBlob
		if err := json.Unmarshal(data, &b); err != nil || b.Schema != SchemaVersion ||
			b.Digest+".json" != name {
			continue
		}
		e := ManifestEntry{
			Digest:   b.Digest,
			Profile:  b.Profile,
			Instance: b.Instance,
			Schema:   b.Schema,
			Bytes:    int64(len(data)),
		}
		if fi, err := de.Info(); err == nil {
			e.AccessUnixNs = fi.ModTime().UnixNano()
		}
		s.manifest[b.Digest] = e
	}
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	s.journalBytes = 0
	os.Remove(filepath.Join(s.dir, journalName))
	os.Remove(filepath.Join(s.dir, journalOldName))
	return s.writeSnapshotLocked()
}

func (s *Store) countBlobs() int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, de := range entries {
		name := de.Name()
		if !de.IsDir() && name != manifestName && strings.HasSuffix(name, ".json") &&
			!strings.HasPrefix(name, ".") {
			n++
		}
	}
	return n
}
