// Package store persists campaign results as content-addressed,
// versioned blobs — a canonical JSON envelope contract carried in a
// compact binary v3 container — so that repeated and incremental
// sweeps are near-free: a
// campaign whose inputs have not changed is read back from disk
// instead of being re-simulated, at a fraction of its JSON size.
//
// # Addressing
//
// A campaign is identified by a Key whose digest is the SHA-256 of the
// canonical encoding of everything its result is a deterministic
// function of:
//
//   - the hardware profile key and unit instance (which select the
//     calibrated architecture model),
//   - the device seed (which fixes the simulator's entire random future),
//   - the canonicalized core.Config (every knob that shapes the
//     campaign; Parallelism is excluded because results are bit-for-bit
//     identical at every parallelism level — see Config.CacheFingerprint),
//   - the store schema version (so a code change that alters blob
//     structure or meaning invalidates every older blob at once).
//
// Campaigns are deterministic given those inputs, which is what makes
// content addressing sound: equal key ⇒ equal result, so a hit can be
// substituted for a recompute without changing a single output byte.
//
// # Durability and tolerance
//
// Blobs are streamed (encode → gzip → staging file, no full-buffer
// materialisation) to a temporary file in the store directory and
// atomically renamed into place, so a crash mid-write never leaves a
// half-written blob under a valid digest name. Reads are corruption
// tolerant: a blob that fails to parse, carries a broken compressed
// stream, carries the wrong schema version, or does not match its
// digest is treated as a miss — the stale blob is deleted and its
// index entry tombstoned on the spot, and the campaign is recomputed
// and rewritten — never as an error. Legacy v1 (uncompressed) and v2
// (gzip JSON) blobs remain readable and are transparently re-written
// in the v3 container the first time they are read; see codec.go and
// codecv3.go for the container contract.
//
// # Coordination
//
// The store doubles as a coordination substrate for multiple processes
// sharing one directory. The index is an append-only journal
// (manifest.log) compacted into a manifest.json snapshot — see
// journal.go — so concurrent writers interleave records instead of
// overwriting each other's index. Advisory shard leases
// (`<digest>.lease`, see lease.go) let cooperating sweeps partition
// work: claim before computing, wait on a live peer, steal from a dead
// one. GC (gc.go) bounds the store by size and idle age using the LRU
// clock that Get maintains. A missing or corrupt index is always
// recoverable by scanning the blobs.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"golatest/internal/core"
	"golatest/internal/hwprofile"
)

// SchemaVersion is the blob schema version: the version of the
// canonical envelope (the stored* types in codec.go) and of the
// campaign semantics behind it. Bump it whenever those types change
// shape or meaning, or when a campaign code change makes
// previously-stored results non-reproducible; every blob written under
// an older version then misses (both through the key digest and the
// envelope check) and is recomputed. Container-level changes do NOT
// bump it: the manifest journal (index-only metadata) and the v2
// compressed blob container (the same canonical bytes, gzip-wrapped —
// see codec.go) both left it at 1, which is precisely what keeps old
// blobs readable across those transitions.
const SchemaVersion = 1

// manifestName is the index snapshot; it is not a blob.
const manifestName = "manifest.json"

// tmpPrefix marks staging files; the leading dot keeps them out of every
// blob scan.
const tmpPrefix = ".tmp-"

// Key is the content address of one campaign result.
type Key struct {
	// Digest is the hex SHA-256 of the canonical key material.
	Digest string
	// Profile and Instance echo the hardware identity for manifests and
	// logs; they are inputs to the digest, not extra key dimensions.
	Profile  string
	Instance int
}

func (k Key) String() string { return fmt.Sprintf("%s/%d@%.12s", k.Profile, k.Instance, k.Digest) }

func (k Key) blobName() string { return k.Digest + ".json" }

// KeyFor derives the content address of a campaign from its inputs. The
// digest covers the schema version, so schema bumps invalidate the whole
// key space rather than relying on the envelope check alone.
func KeyFor(profileKey string, instance int, deviceSeed uint64, cfg core.Config) (Key, error) {
	fp, err := cfg.CacheFingerprint()
	if err != nil {
		return Key{}, fmt.Errorf("store: fingerprint config: %w", err)
	}
	material, err := json.Marshal(struct {
		Schema     int             `json:"schema"`
		Profile    string          `json:"profile"`
		Instance   int             `json:"instance"`
		DeviceSeed uint64          `json:"device_seed"`
		Config     json.RawMessage `json:"config"`
	}{SchemaVersion, profileKey, instance, deviceSeed, fp})
	if err != nil {
		return Key{}, fmt.Errorf("store: key material: %w", err)
	}
	sum := sha256.Sum256(material)
	return Key{Digest: hex.EncodeToString(sum[:]), Profile: profileKey, Instance: instance}, nil
}

// ProfileKey derives the content address of the campaign that cfg would
// run on profile p.
func ProfileKey(p hwprofile.Profile, cfg core.Config) (Key, error) {
	return KeyFor(p.Key, p.Instance, p.Config.Seed, cfg)
}

// Counters reports store traffic. Hits and Misses partition Get calls;
// Corrupt counts the subset of misses caused by an unreadable or invalid
// blob; Puts counts successful writes.
type Counters struct {
	Hits    int64
	Misses  int64
	Corrupt int64
	Puts    int64
}

// ManifestEntry describes one blob in the index.
type ManifestEntry struct {
	Digest   string `json:"digest"`
	Profile  string `json:"profile"`
	Instance int    `json:"instance"`
	Schema   int    `json:"schema"`
	// Bytes is the on-disk (compressed) blob size, recorded at Put;
	// GC's size bound sums it.
	Bytes int64 `json:"bytes,omitempty"`
	// RawBytes is the canonical (uncompressed) envelope size; with
	// Bytes it yields the store's compression ratio for stats without
	// touching a single blob.
	RawBytes int64 `json:"raw_bytes,omitempty"`
	// AccessUnixNs is the LRU clock: advanced by Put and by every Get
	// hit, consulted by GC's age bound and eviction order.
	AccessUnixNs int64 `json:"access_ns,omitempty"`
}

// Store is a directory of campaign blobs plus a journaled index. All
// methods are safe for concurrent use by multiple goroutines of one
// process, and the on-disk formats are safe for multiple processes
// sharing the directory: blob writes are atomic renames of identical
// bytes (same key ⇒ same result), index mutations append to the journal
// (no lost updates), and compaction is serialized by an advisory lock.
// Each handle's in-memory index converges with its peers' at every
// compaction and on reopen.
type Store struct {
	dir string
	// id identifies this handle as a lease owner for internal locks.
	id string

	mu           sync.Mutex // guards manifest map, journal fd, snapshot writes
	manifest     map[string]ManifestEntry
	journal      *os.File // live manifest.log, opened O_APPEND on first use
	journalBytes int64    // live log size, drives threshold compaction

	hits, misses, corrupt, puts atomic.Int64
}

// Open creates the directory if needed and loads the index: snapshot
// plus journal replay, rebuilding from the blobs when the index is
// missing or corrupt, then compacts any outstanding journal so this
// handle starts from a clean snapshot.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, id: newHandleID(), manifest: make(map[string]ManifestEntry)}
	s.mu.Lock()
	defer s.mu.Unlock()

	absent, snapErr := s.loadSnapshotLocked()
	replayed := replayJournal(filepath.Join(dir, journalOldName), s.manifest)
	replayed += replayJournal(filepath.Join(dir, journalName), s.manifest)
	switch {
	case snapErr != nil,
		absent && replayed == 0 && s.countBlobs() > 0:
		// Corrupt snapshot, or blobs with no index at all: the blobs are
		// the ground truth; scan them and discard the stale journal.
		if err := s.rebuildManifestLocked(); err != nil {
			return nil, err
		}
	case replayed > 0:
		// Fold the journal into the snapshot so the next Open replays
		// nothing. Best-effort: a peer holding the compaction lock just
		// means they are folding the same records.
		_ = s.compactLocked()
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Location implements Backend: a filesystem store is located at its
// directory.
func (s *Store) Location() string { return s.dir }

// Ready probes whether the store can currently accept writes: the
// directory exists and a staging file can be created in it — the same
// operation every Put begins with. It is the readiness half of a
// daemon's health contract (storenet's /readyz); liveness needs no
// store at all.
func (s *Store) Ready() error {
	f, err := os.CreateTemp(s.dir, tmpPrefix+"ready-")
	if err != nil {
		return fmt.Errorf("store: %s not writable: %w", s.dir, err)
	}
	name := f.Name()
	f.Close()
	os.Remove(name)
	return nil
}

// Counters returns a snapshot of the traffic counters.
func (s *Store) Counters() Counters {
	return Counters{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Corrupt: s.corrupt.Load(),
		Puts:    s.puts.Load(),
	}
}

// Has reports whether a blob exists for the key, without reading or
// validating it and without touching the hit/miss counters. A planner's
// convenience; only Get vouches for the blob's integrity. A reserved
// digest never has a blob, even though a file by that name exists.
func (s *Store) Has(k Key) bool {
	if reservedDigest(k.Digest) {
		return false
	}
	_, err := os.Stat(filepath.Join(s.dir, k.blobName()))
	return err == nil
}

// Get returns the stored campaign for the key, or (nil, false) on any
// kind of miss: no blob, unparseable blob, broken compressed stream,
// schema mismatch, or digest mismatch. Invalid blobs are never fatal —
// the stale blob is deleted and its index entry tombstoned immediately
// (so Index and Len never report a key that cannot be read), and the
// caller recomputes and Puts. A hit advances the entry's LRU clock for
// GC. A hit on a legacy v1 (plain JSON) or v2 (gzip JSON) blob
// additionally heals it to the v3 container on the spot, so one warm
// pass migrates a store.
func (s *Store) Get(k Key) (*core.Result, bool) {
	data, err := os.ReadFile(filepath.Join(s.dir, k.blobName()))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	b, rawN, cont, err := parseBlob(data, k.Digest)
	if err != nil {
		s.corrupt.Add(1)
		s.misses.Add(1)
		s.healCorrupt(k)
		return nil, false
	}
	res := decodeResult(b.Result)
	size := int64(len(data))
	if cont != ContainerV3 {
		if _, n, healed := s.healLegacy(k, res); healed {
			size = n
		}
	}
	s.hits.Add(1)
	s.touch(k, size, rawN)
	return res, true
}

// healLegacy re-writes a validated legacy (v1 or v2) blob in the v3
// container, re-encoded from the result the validating parse already
// decoded — the transparent migration path, and never a second parse.
// Best-effort: a store that cannot be written (read-only snapshot,
// full disk) keeps serving the legacy bytes, and the next read
// retries. Concurrent healers and fresh Puts of the same key write
// identical bytes (deterministic v3 encoding), so the rename race is
// benign.
func (s *Store) healLegacy(k Key, res *core.Result) (v3Bytes []byte, size int64, ok bool) {
	data, err := EncodeBlobV3(k, res)
	if err != nil {
		return nil, 0, false
	}
	if err := s.writeAtomic(k.blobName(), data); err != nil {
		return data, 0, false
	}
	return data, int64(len(data)), true
}

// reservedDigest reports a digest whose blob filename would collide
// with the store's own index snapshot. Such a digest can never address
// a blob; treating it as ordinary input would let a network client read
// — or, via the corrupt-blob healing path, delete — manifest.json.
func reservedDigest(digest string) bool { return digest+".json" == manifestName }

// GetRaw returns the validated raw container bytes of the blob stored
// under digest — the network daemon's read path: a v3 blob is shipped
// verbatim (no decompress/recompress, no decode/re-encode round trip
// on the wire), while the validation, traffic counters, LRU touch, and
// corrupt-blob healing all match Get. A legacy v1/v2 blob is healed to
// v3 first and the v3 bytes served, so the wire carries the compact
// container either way. The touch indexes under the profile/instance
// recorded in the blob envelope, so a served blob is fully described
// in the index even when this handle never saw its Put. Callers that
// also want the decoded result or the envelope identity should use
// GetValidated, which this wraps.
func (s *Store) GetRaw(digest string) ([]byte, bool) {
	vb, ok := s.GetValidated(digest)
	if !ok {
		return nil, false
	}
	return vb.Bytes(), true
}

// PutRaw stores pre-encoded blob container bytes under digest — the
// write path for callers holding bytes of unproven provenance. The
// bytes are validated first (container sniff, envelope or binary-body
// parse, gzip integrity, schema, digest match; failures wrap
// ErrInvalidBlob), so a caller can never plant a blob Get would
// reject, then handed to PutValidated: v3 bytes land verbatim — the
// raw passthrough that makes a remote Put → remote Get cycle copy the
// container end to end — while legacy v1/v2 bytes are re-containered
// to v3 on the way down. Callers that already hold a ValidatedBlob
// should call PutValidated directly and skip the re-parse.
func (s *Store) PutRaw(digest string, data []byte) error {
	vb, err := ValidateBlobBytes(data, digest)
	if err != nil {
		return err
	}
	return s.PutValidated(vb)
}

// healCorrupt removes an unreadable blob and tombstones its index entry,
// so the corruption is visible for exactly one Get: the next Put writes
// a fresh blob and a fresh entry. (If a concurrent writer renamed a good
// blob into place between our failed read and this remove, that blob is
// lost and recomputed — determinism makes the recompute identical.)
func (s *Store) healCorrupt(k Key) {
	os.Remove(filepath.Join(s.dir, k.blobName()))
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.manifest, k.Digest)
	_ = s.appendJournalLocked(journalRecord{Op: opDel, Digest: k.Digest})
}

// touch advances the key's LRU clock, indexing the blob on the fly if
// this handle had no entry for it (e.g. a peer's write this handle has
// not folded yet). A size change — a v1→v2 heal just rewrote the blob,
// or the recorded sizes were stale — is journaled as a full upsert
// rather than a bare touch, so the durable index carries the new sizes
// across restarts (opTouch records only the access clock).
func (s *Store) touch(k Key, size, rawSize int64) {
	now := time.Now().UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.manifest[k.Digest]
	if !ok {
		e = ManifestEntry{Digest: k.Digest, Profile: k.Profile, Instance: k.Instance, Schema: SchemaVersion}
	}
	resized := e.Bytes != size || e.RawBytes != rawSize
	e.Bytes = size
	e.RawBytes = rawSize
	e.AccessUnixNs = now
	s.manifest[k.Digest] = e
	rec := journalRecord{Op: opTouch, Digest: k.Digest, AccessUnixNs: now}
	if !ok || resized {
		rec = journalRecord{Op: opPut, Entry: &e}
	}
	_ = s.appendJournalLocked(rec)
	s.maybeCompactLocked()
}

// Put stores the campaign under the key, atomically: the v3 encoding
// flows through pooled scratch and a pooled gzip writer straight into
// a temporary file that is renamed into place, so concurrent readers
// see either the old blob or the new one, never a torn write, and
// neither the canonical bytes nor the container are ever materialised
// in memory (the canonical form exists only as a counting render that
// sizes RawBytes). The index update is one O(1) journal append
// regardless of store size.
func (s *Store) Put(k Key, res *core.Result) error {
	if res == nil {
		return fmt.Errorf("store: nil result for %s", k)
	}
	var size, rawN int64
	err := s.writeAtomicStream(k.blobName(), func(w io.Writer) error {
		cw := &countingWriter{w: w}
		n, err := encodeBlobV3To(cw, k, res)
		size, rawN = cw.n, n
		if err == nil && rawN > maxCanonicalBytes {
			// What Put writes, Get must be able to read: past the
			// decode rail every Get would classify the blob corrupt and
			// delete it — a silent recompute/delete loop. Refuse here
			// instead (the staging file is discarded, nothing lands).
			err = fmt.Errorf("store: %s: canonical size %d exceeds the %d-byte decode bound",
				k, rawN, maxCanonicalBytes)
		}
		return err
	})
	if err != nil {
		return err
	}
	s.puts.Add(1)
	return s.recordPut(k, size, rawN)
}

// recordPut indexes a freshly written blob: upsert the manifest entry,
// journal it, and compact if the log outgrew its threshold.
func (s *Store) recordPut(k Key, size, rawSize int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := ManifestEntry{
		Digest:       k.Digest,
		Profile:      k.Profile,
		Instance:     k.Instance,
		Schema:       SchemaVersion,
		Bytes:        size,
		RawBytes:     rawSize,
		AccessUnixNs: time.Now().UnixNano(),
	}
	s.manifest[k.Digest] = e
	if err := s.appendJournalLocked(journalRecord{Op: opPut, Entry: &e}); err != nil {
		return err
	}
	s.maybeCompactLocked()
	return nil
}

// Index returns the manifest entries sorted by (profile, instance,
// digest).
func (s *Store) Index() []ManifestEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ManifestEntry, 0, len(s.manifest))
	for _, e := range s.manifest {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Profile != out[j].Profile {
			return out[i].Profile < out[j].Profile
		}
		if out[i].Instance != out[j].Instance {
			return out[i].Instance < out[j].Instance
		}
		return out[i].Digest < out[j].Digest
	})
	return out
}

// Len returns the number of indexed blobs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.manifest)
}

// Test hooks: the writeAtomic failure paths (full disk, unwritable
// directory) are injected here because they are otherwise unreachable in
// a tempdir test.
var (
	stageWrite = func(f *os.File, data []byte) (int, error) { return f.Write(data) }
	commitFile = os.Rename
)

// writeAtomic stages data in a temp file in the store directory (same
// filesystem, so the rename is atomic) and renames it over name.
func (s *Store) writeAtomic(name string, data []byte) error {
	return atomicWrite(filepath.Join(s.dir, name), data)
}

// writeAtomicStream is writeAtomic for producers that stream: fill
// writes straight into the staging file (through the same injectable
// stage-write hook), which is then renamed into place — the path Put
// uses to compress-encode a blob without ever holding it in memory.
func (s *Store) writeAtomicStream(name string, fill func(io.Writer) error) error {
	return atomicWriteStream(filepath.Join(s.dir, name), fill)
}

// atomicWrite stages data next to dst and renames it into place.
// Shared by snapshot writes, lease renewal, and the v1→v2 blob heal.
func atomicWrite(dst string, data []byte) error {
	return atomicWriteStream(dst, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// stagingFile routes a staging file's writes through the injectable
// stageWrite hook, so streaming producers hit the same simulated
// failure paths (full disk, unwritable directory) as buffered ones.
type stagingFile struct{ f *os.File }

func (w stagingFile) Write(p []byte) (int, error) { return stageWrite(w.f, p) }

// atomicWriteStream stages fill's output next to dst and renames it
// into place. Every failure path removes the staging file: a failed
// write must not litter the directory with orphans.
func atomicWriteStream(dst string, fill func(io.Writer) error) error {
	dir, base := filepath.Split(dst)
	tmp, err := os.CreateTemp(dir, tmpPrefix+base+"-*")
	if err != nil {
		return fmt.Errorf("store: stage %s: %w", base, err)
	}
	if err := fill(stagingFile{f: tmp}); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: stage %s: %w", base, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: stage %s: %w", base, err)
	}
	if err := commitFile(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: commit %s: %w", base, err)
	}
	return nil
}

type manifestFile struct {
	Schema  int             `json:"schema"`
	Entries []ManifestEntry `json:"entries"`
}

// loadSnapshotLocked reads manifest.json into the index. absent reports
// a cleanly missing snapshot (not an error: the journal or an empty
// store may carry the state); err reports an unreadable or alien
// snapshot, which callers resolve by rebuilding from the blobs.
func (s *Store) loadSnapshotLocked() (absent bool, err error) {
	data, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return true, nil
		}
		return false, fmt.Errorf("store: manifest: %w", err)
	}
	var m manifestFile
	if err := json.Unmarshal(data, &m); err != nil {
		return false, fmt.Errorf("store: manifest: %w", err)
	}
	if m.Schema != SchemaVersion {
		return false, fmt.Errorf("store: manifest schema %d, want %d", m.Schema, SchemaVersion)
	}
	for _, e := range m.Entries {
		s.manifest[e.Digest] = e
	}
	return false, nil
}

// rebuildManifestLocked recreates the index by reading every blob
// envelope in the directory — the blobs are the ground truth the index
// merely accelerates. Blobs that do not parse are skipped (they will
// miss and be rewritten on their next Get/Put cycle). The journal is
// discarded: whatever it said is superseded by the scan.
func (s *Store) rebuildManifestLocked() error {
	s.manifest = make(map[string]ManifestEntry)
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: rebuild manifest: %w", err)
	}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || name == manifestName || !strings.HasSuffix(name, ".json") ||
			strings.HasPrefix(name, ".") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		// Either container format is a citizen of the scan: legacy v1
		// blobs index like v2 ones and migrate lazily on their next Get.
		b, rawN, _, err := parseBlob(data, strings.TrimSuffix(name, ".json"))
		if err != nil {
			continue
		}
		e := ManifestEntry{
			Digest:   b.Digest,
			Profile:  b.Profile,
			Instance: b.Instance,
			Schema:   b.Schema,
			Bytes:    int64(len(data)),
			RawBytes: rawN,
		}
		if fi, err := de.Info(); err == nil {
			e.AccessUnixNs = fi.ModTime().UnixNano()
		}
		s.manifest[b.Digest] = e
	}
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	s.journalBytes = 0
	os.Remove(filepath.Join(s.dir, journalName))
	os.Remove(filepath.Join(s.dir, journalOldName))
	return s.writeSnapshotLocked()
}

func (s *Store) countBlobs() int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, de := range entries {
		name := de.Name()
		if !de.IsDir() && name != manifestName && strings.HasSuffix(name, ".json") &&
			!strings.HasPrefix(name, ".") {
			n++
		}
	}
	return n
}
