// Package store persists campaign results as content-addressed,
// versioned JSON blobs, so that repeated and incremental sweeps are
// near-free: a campaign whose inputs have not changed is read back from
// disk instead of being re-simulated.
//
// # Addressing
//
// A campaign is identified by a Key whose digest is the SHA-256 of the
// canonical encoding of everything its result is a deterministic
// function of:
//
//   - the hardware profile key and unit instance (which select the
//     calibrated architecture model),
//   - the device seed (which fixes the simulator's entire random future),
//   - the canonicalized core.Config (every knob that shapes the
//     campaign; Parallelism is excluded because results are bit-for-bit
//     identical at every parallelism level — see Config.CacheFingerprint),
//   - the store schema version (so a code change that alters blob
//     structure or meaning invalidates every older blob at once).
//
// Campaigns are deterministic given those inputs, which is what makes
// content addressing sound: equal key ⇒ equal result, so a hit can be
// substituted for a recompute without changing a single output byte.
//
// # Durability and tolerance
//
// Blobs are written to a temporary file in the store directory and
// atomically renamed into place, so a crash mid-write never leaves a
// half-written blob under a valid digest name. Reads are corruption
// tolerant: a blob that fails to parse, carries the wrong schema
// version, or does not match its digest is treated as a miss (the
// campaign is recomputed and the blob rewritten), never as an error.
// The store keeps an index manifest (manifest.json) describing every
// blob; a missing or corrupt manifest is rebuilt by scanning the blobs.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"golatest/internal/core"
	"golatest/internal/hwprofile"
)

// SchemaVersion is the on-disk blob schema version. Bump it whenever the
// stored* types in codec.go change shape or meaning, or when a campaign
// code change makes previously-stored results non-reproducible; every
// blob written under an older version then misses (both through the key
// digest and the envelope check) and is recomputed.
const SchemaVersion = 1

// manifestName is the index file; it is not a blob.
const manifestName = "manifest.json"

// Key is the content address of one campaign result.
type Key struct {
	// Digest is the hex SHA-256 of the canonical key material.
	Digest string
	// Profile and Instance echo the hardware identity for manifests and
	// logs; they are inputs to the digest, not extra key dimensions.
	Profile  string
	Instance int
}

func (k Key) String() string { return fmt.Sprintf("%s/%d@%.12s", k.Profile, k.Instance, k.Digest) }

func (k Key) blobName() string { return k.Digest + ".json" }

// KeyFor derives the content address of a campaign from its inputs. The
// digest covers the schema version, so schema bumps invalidate the whole
// key space rather than relying on the envelope check alone.
func KeyFor(profileKey string, instance int, deviceSeed uint64, cfg core.Config) (Key, error) {
	fp, err := cfg.CacheFingerprint()
	if err != nil {
		return Key{}, fmt.Errorf("store: fingerprint config: %w", err)
	}
	material, err := json.Marshal(struct {
		Schema     int             `json:"schema"`
		Profile    string          `json:"profile"`
		Instance   int             `json:"instance"`
		DeviceSeed uint64          `json:"device_seed"`
		Config     json.RawMessage `json:"config"`
	}{SchemaVersion, profileKey, instance, deviceSeed, fp})
	if err != nil {
		return Key{}, fmt.Errorf("store: key material: %w", err)
	}
	sum := sha256.Sum256(material)
	return Key{Digest: hex.EncodeToString(sum[:]), Profile: profileKey, Instance: instance}, nil
}

// ProfileKey derives the content address of the campaign that cfg would
// run on profile p.
func ProfileKey(p hwprofile.Profile, cfg core.Config) (Key, error) {
	return KeyFor(p.Key, p.Instance, p.Config.Seed, cfg)
}

// Counters reports store traffic. Hits and Misses partition Get calls;
// Corrupt counts the subset of misses caused by an unreadable or invalid
// blob; Puts counts successful writes.
type Counters struct {
	Hits    int64
	Misses  int64
	Corrupt int64
	Puts    int64
}

// ManifestEntry describes one blob in the index manifest.
type ManifestEntry struct {
	Digest   string `json:"digest"`
	Profile  string `json:"profile"`
	Instance int    `json:"instance"`
	Schema   int    `json:"schema"`
}

// Store is a directory of campaign blobs plus an index manifest. All
// methods are safe for concurrent use by multiple goroutines of one
// process. Cross-process writers are coordinated only by the atomicity
// of rename: for blobs that is fully benign (two processes computing
// the same key write identical bytes), and manifest writes merge with
// the on-disk index first, though a lost update between merge and
// rename can still transiently undercount until the next write or
// rebuild — see the ROADMAP open item for real cross-process locking.
type Store struct {
	dir string

	mu       sync.Mutex // guards manifest map and manifest file writes
	manifest map[string]ManifestEntry

	hits, misses, corrupt, puts atomic.Int64
}

// Open creates the directory if needed and loads (or rebuilds) the
// manifest.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, manifest: make(map[string]ManifestEntry)}
	if err := s.loadManifest(); err != nil {
		// Corrupt or missing manifest: rebuild from the blobs on disk.
		if err := s.rebuildManifest(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Counters returns a snapshot of the traffic counters.
func (s *Store) Counters() Counters {
	return Counters{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Corrupt: s.corrupt.Load(),
		Puts:    s.puts.Load(),
	}
}

// Has reports whether a blob exists for the key, without reading or
// validating it and without touching the hit/miss counters. A planner's
// convenience; only Get vouches for the blob's integrity.
func (s *Store) Has(k Key) bool {
	_, err := os.Stat(filepath.Join(s.dir, k.blobName()))
	return err == nil
}

// Get returns the stored campaign for the key, or (nil, false) on any
// kind of miss: no blob, unparseable blob, schema mismatch, or digest
// mismatch. Invalid blobs are never fatal — the contract is that the
// caller recomputes and Puts, overwriting the bad blob.
func (s *Store) Get(k Key) (*core.Result, bool) {
	data, err := os.ReadFile(filepath.Join(s.dir, k.blobName()))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	res, err := decodeBlob(data, k)
	if err != nil {
		s.corrupt.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return res, true
}

// Put stores the campaign under the key, atomically: the blob is staged
// in a temporary file and renamed into place, so concurrent readers see
// either the old blob or the new one, never a torn write.
func (s *Store) Put(k Key, res *core.Result) error {
	if res == nil {
		return fmt.Errorf("store: nil result for %s", k)
	}
	data, err := encodeBlob(k, res)
	if err != nil {
		return fmt.Errorf("store: encode %s: %w", k, err)
	}
	if err := s.writeAtomic(k.blobName(), data); err != nil {
		return err
	}
	s.puts.Add(1)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.manifest[k.Digest] = ManifestEntry{
		Digest:   k.Digest,
		Profile:  k.Profile,
		Instance: k.Instance,
		Schema:   SchemaVersion,
	}
	return s.writeManifestLocked()
}

// Index returns the manifest entries sorted by (profile, instance,
// digest).
func (s *Store) Index() []ManifestEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ManifestEntry, 0, len(s.manifest))
	for _, e := range s.manifest {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Profile != out[j].Profile {
			return out[i].Profile < out[j].Profile
		}
		if out[i].Instance != out[j].Instance {
			return out[i].Instance < out[j].Instance
		}
		return out[i].Digest < out[j].Digest
	})
	return out
}

// Len returns the number of indexed blobs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.manifest)
}

// writeAtomic stages data in a temp file in the store directory (same
// filesystem, so the rename is atomic) and renames it over name.
func (s *Store) writeAtomic(name string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".tmp-"+name+"-*")
	if err != nil {
		return fmt.Errorf("store: stage %s: %w", name, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: stage %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: stage %s: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		return fmt.Errorf("store: commit %s: %w", name, err)
	}
	return nil
}

type manifestFile struct {
	Schema  int             `json:"schema"`
	Entries []ManifestEntry `json:"entries"`
}

func (s *Store) loadManifest() error {
	data, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			// An empty store is a valid store; only rebuild when blobs
			// exist without an index.
			if s.countBlobs() == 0 {
				return nil
			}
		}
		return fmt.Errorf("store: manifest: %w", err)
	}
	var m manifestFile
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}
	if m.Schema != SchemaVersion {
		return fmt.Errorf("store: manifest schema %d, want %d", m.Schema, SchemaVersion)
	}
	for _, e := range m.Entries {
		s.manifest[e.Digest] = e
	}
	return nil
}

// rebuildManifest recreates the index by reading every blob envelope in
// the directory. Blobs that do not parse are skipped (they will miss and
// be rewritten on their next Get/Put cycle).
func (s *Store) rebuildManifest() error {
	s.manifest = make(map[string]ManifestEntry)
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: rebuild manifest: %w", err)
	}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || name == manifestName || !strings.HasSuffix(name, ".json") ||
			strings.HasPrefix(name, ".") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		var b storedBlob
		if err := json.Unmarshal(data, &b); err != nil || b.Schema != SchemaVersion ||
			b.Digest+".json" != name {
			continue
		}
		s.manifest[b.Digest] = ManifestEntry{
			Digest:   b.Digest,
			Profile:  b.Profile,
			Instance: b.Instance,
			Schema:   b.Schema,
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeManifestLocked()
}

func (s *Store) countBlobs() int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, de := range entries {
		name := de.Name()
		if !de.IsDir() && name != manifestName && strings.HasSuffix(name, ".json") &&
			!strings.HasPrefix(name, ".") {
			n++
		}
	}
	return n
}

func (s *Store) writeManifestLocked() error {
	// Merge with whatever is on disk first: another process sharing the
	// directory may have indexed blobs this process never saw, and a
	// plain rewrite from local state would drop them. (Blob contents
	// are immune to this race — same key ⇒ identical bytes — the
	// manifest is the one mutable aggregate; see the ROADMAP locking
	// open item for the remaining lost-update window between this read
	// and the rename.)
	if data, err := os.ReadFile(filepath.Join(s.dir, manifestName)); err == nil {
		var disk manifestFile
		if json.Unmarshal(data, &disk) == nil && disk.Schema == SchemaVersion {
			for _, e := range disk.Entries {
				if _, ok := s.manifest[e.Digest]; !ok {
					s.manifest[e.Digest] = e
				}
			}
		}
	}
	m := manifestFile{Schema: SchemaVersion}
	for _, e := range s.manifest {
		m.Entries = append(m.Entries, e)
	}
	sort.Slice(m.Entries, func(i, j int) bool { return m.Entries[i].Digest < m.Entries[j].Digest })
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}
	return s.writeAtomic(manifestName, data)
}
