package store_test

import (
	"os"
	"path/filepath"
	"testing"

	"golatest/internal/store"
	"golatest/internal/store/conformancetest"
	"golatest/internal/storenet/faults"
)

// corruptInDir returns a Corrupt hook that tampers the on-disk blob in
// a store directory — the authoritative bytes a directory-backed
// backend reads.
func corruptInDir(t *testing.T, dir string) func(digest string) {
	return func(digest string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, digest+".json"),
			[]byte("tampered: not a blob container"), 0o644); err != nil {
			t.Fatalf("corrupt %s: %v", digest, err)
		}
	}
}

// plantInDir returns a Plant hook writing raw container bytes into a
// store directory — how a legacy deployment's blobs actually arrive.
func plantInDir(t *testing.T, dir string) func(digest string, data []byte) {
	return func(digest string, data []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, digest+".json"), data, 0o644); err != nil {
			t.Fatalf("plant %s: %v", digest, err)
		}
	}
}

// readBlobInDir returns a ReadBlob hook reading the current on-disk
// bytes of a digest's blob (nil if absent).
func readBlobInDir(t *testing.T, dir string) func(digest string) []byte {
	return func(digest string) []byte {
		t.Helper()
		data, err := os.ReadFile(filepath.Join(dir, digest+".json"))
		if err != nil {
			return nil
		}
		return data
	}
}

// TestBackendConformanceLocalStore holds the directory store to the
// Backend contract — the reference implementation must pass its own
// gate.
func TestBackendConformanceLocalStore(t *testing.T) {
	conformancetest.Run(t, func(t *testing.T) conformancetest.Harness {
		dir := t.TempDir()
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return conformancetest.Harness{
			Backend:  st,
			Corrupt:  corruptInDir(t, dir),
			Plant:    plantInDir(t, dir),
			ReadBlob: readBlobInDir(t, dir),
		}
	})
}

// TestBackendConformanceFaultsWrapper proves the fault-injection
// wrapper is contract-transparent when its plan injects nothing: tests
// that wrap a backend in faults.WrapBackend are still testing a
// conforming Backend, not a subtly different one.
func TestBackendConformanceFaultsWrapper(t *testing.T) {
	conformancetest.Run(t, func(t *testing.T) conformancetest.Harness {
		dir := t.TempDir()
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return conformancetest.Harness{
			Backend:  faults.WrapBackend(st, faults.Plan{Seed: 1}),
			Corrupt:  corruptInDir(t, dir),
			Plant:    plantInDir(t, dir),
			ReadBlob: readBlobInDir(t, dir),
		}
	})
}
