package store

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"golatest/internal/core"
)

// The v3 container. v1 and v2 both carry the canonical JSON envelope
// (v2 gzip-wrapped); every f64 element in them is decimal text, so a
// full-scale blob pays strconv both ways on every warm decode. v3
// keeps the *contract* on the canonical bytes — the digest, the ETag,
// SchemaVersion, and the envelope-level validation are all still
// defined over the canonical JSON — but stores the payload as a
// length-prefixed binary section instead:
//
//	v3: magic(4) ‖ gzip(body)
//	body: schema u32 ‖ canonicalSize u64 ‖ envelope fields ‖ result
//
// All integers are little-endian and fixed-width; floats are IEEE-754
// bits. Float fields that travel through the f64 JSON codec are
// NaN-canonicalised at encode (every NaN payload collapses to the one
// canonical quiet NaN), mirroring what a JSON round trip has always
// done — which is what keeps heal-to-v3 deterministic: re-encoding a
// decoded v1/v2 blob lands on the same bytes as a fresh Put of the
// same key. canonicalSize records the size of the canonical JSON the
// body decodes to, so the index's RawBytes (and the compression-ratio
// stats) survive the format change without ever rendering the JSON on
// a read.
//
// Slices encode as a u32 tag — v3NilSlice for a nil slice, the element
// count otherwise — preserving the canonical encoding's nil-vs-empty
// distinction ([]f64 null vs []); the three append-built slices of the
// canonical form (pairs, measurements, phase-1 stats) collapse empty
// to nil exactly as encodeResult always has. Strings are u32 length
// prefix plus bytes. Every count is bounds-checked against the bytes
// actually remaining before anything is allocated, so a tampered
// length prefix is an invalid blob, not an allocation storm; the gzip
// layer reuses the v2 rails (pooled writers/readers, single-member
// enforcement, trailing-byte rejection, the maxCanonicalBytes inflate
// bound).
//
// Like v2, introducing v3 does NOT bump SchemaVersion: the canonical
// envelope, and therefore every digest, is untouched. v1/v2 blobs keep
// hitting and heal forward to v3 on first read.

// v3Magic opens every v3 container. The first byte is outside both
// prior discriminators (the envelope's '{' and the gzip magic 0x1f)
// and outside ASCII, so the three containers sniff unambiguously.
var v3Magic = [4]byte{0xB3, 'G', 'L', '3'}

// v3NilSlice is the slice tag distinguishing nil from empty.
const v3NilSlice = ^uint32(0)

// canonicalNaN is the one NaN bit pattern v3 stores: the same value
// every "NaN" JSON spelling has always decoded to.
var canonicalNaN = math.Float64bits(math.NaN())

// Container identifies a blob container format; ContainerOf is the one
// discriminator the store codec, the network layer, and the tests all
// share, so no two layers can classify the same bytes differently.
type Container int

const (
	// ContainerV1 is the canonical JSON envelope, verbatim (legacy,
	// read-only).
	ContainerV1 Container = 1
	// ContainerV2 is gzip(canonical JSON) (legacy, read-only).
	ContainerV2 Container = 2
	// ContainerV3 is magic ‖ gzip(binary body) — what writers emit.
	ContainerV3 Container = 3
)

func (c Container) String() string {
	switch c {
	case ContainerV1:
		return "v1"
	case ContainerV2:
		return "v2"
	case ContainerV3:
		return "v3"
	}
	return fmt.Sprintf("container(%d)", int(c))
}

// ContainerOf sniffs the container format of raw blob bytes. Anything
// that is neither the v3 magic nor the gzip magic is classified v1 and
// left to the JSON parse to accept or reject.
func ContainerOf(data []byte) Container {
	if len(data) >= 4 && data[0] == v3Magic[0] && data[1] == v3Magic[1] &&
		data[2] == v3Magic[2] && data[3] == v3Magic[3] {
		return ContainerV3
	}
	if IsGzipBlob(data) {
		return ContainerV2
	}
	return ContainerV1
}

// binary append helpers on the shared pooled appender.

func (a *appender) u8(v byte) { a.byte(v) }

func (a *appender) u32le(v uint32) {
	a.grow(4)
	a.buf = binary.LittleEndian.AppendUint32(a.buf, v)
	a.n += 4
}

func (a *appender) u64le(v uint64) {
	a.grow(8)
	a.buf = binary.LittleEndian.AppendUint64(a.buf, v)
	a.n += 8
}

func (a *appender) i64le(v int64) { a.u64le(uint64(v)) }

// f64bits writes raw IEEE-754 bits (plain float fields, always finite
// past the canonical sizing pass).
func (a *appender) f64bits(v float64) { a.u64le(math.Float64bits(v)) }

// f64canon writes NaN-canonicalised bits (fields under the f64 codec).
func (a *appender) f64canon(v float64) {
	if math.IsNaN(v) {
		a.u64le(canonicalNaN)
		return
	}
	a.u64le(math.Float64bits(v))
}

func (a *appender) v3String(s string) {
	a.u32le(uint32(len(s)))
	a.raw(s)
}

func (a *appender) v3F64Slice(xs []float64) {
	if xs == nil {
		a.u32le(v3NilSlice)
		return
	}
	a.u32le(uint32(len(xs)))
	for _, v := range xs {
		a.f64canon(v)
	}
}

func (a *appender) v3PairValue(p core.Pair) {
	a.f64bits(p.InitMHz)
	a.f64bits(p.TargetMHz)
}

func (a *appender) v3PairSlice(ps []core.Pair) {
	if ps == nil {
		a.u32le(v3NilSlice)
		return
	}
	a.u32le(uint32(len(ps)))
	for _, p := range ps {
		a.v3PairValue(p)
	}
}

// encodeBlobV3To streams the v3 container of a campaign result into w
// (typically the atomic-rename staging file or a network body) and
// returns the canonical size for the index's RawBytes. Two passes, no
// materialisation: a counting render of the canonical JSON first —
// which both sizes RawBytes and enforces JSON-encodability, so v3
// accepts exactly the results v1 did — then the binary body through
// the pooled gzip writer.
func encodeBlobV3To(w io.Writer, k Key, res *core.Result) (int64, error) {
	rawBytes, err := writeCanonicalTo(nil, k, res)
	if err != nil {
		return 0, fmt.Errorf("store: encode %s: %w", k, err)
	}
	if _, err := w.Write(v3Magic[:]); err != nil {
		return rawBytes, fmt.Errorf("store: encode %s: %w", k, err)
	}
	gz := gzipWriters.Get().(*gzip.Writer)
	gz.Reset(w)
	a := getAppender(gz)
	encodeV3Body(a, k, res, rawBytes)
	_, aerr := a.total()
	putAppender(a)
	cerr := gz.Close()
	gzipWriters.Put(gz)
	if aerr == nil {
		aerr = cerr
	}
	if aerr != nil {
		return rawBytes, fmt.Errorf("store: encode %s: %w", k, aerr)
	}
	return rawBytes, nil
}

// EncodeBlobV3 renders the v3 container — what Put writes to disk and
// the network client ships. Deterministic for a given key and build
// (fixed gzip level, canonical NaN bits, no gzip header metadata), so
// concurrent identical writers and legacy-blob healers converge
// byte-for-byte.
func EncodeBlobV3(k Key, res *core.Result) ([]byte, error) {
	if res == nil {
		return nil, fmt.Errorf("store: nil result for %s", k)
	}
	var buf bytes.Buffer
	if _, err := encodeBlobV3To(&buf, k, res); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func encodeV3Body(a *appender, k Key, res *core.Result, rawBytes int64) {
	a.u32le(uint32(SchemaVersion))
	a.u64le(uint64(rawBytes))
	a.v3String(k.Digest)
	a.v3String(k.Profile)
	a.i64le(int64(k.Instance))

	a.v3String(res.DeviceName)
	a.v3String(res.Architecture)
	a.i64le(res.CaptureHintNs)

	if res.Phase1 == nil {
		a.u8(0)
	} else {
		a.u8(1)
		p1 := res.Phase1
		if len(p1.Stats) == 0 {
			a.u32le(v3NilSlice) // append-built in the canonical form: empty ⇒ null
		} else {
			freqs := make([]float64, 0, len(p1.Stats))
			for f := range p1.Stats {
				freqs = append(freqs, f)
			}
			sortFloat64s(freqs)
			a.u32le(uint32(len(freqs)))
			for _, f := range freqs {
				fs := p1.Stats[f]
				a.f64bits(fs.FreqMHz)
				a.i64le(int64(fs.Iter.N))
				a.f64canon(fs.Iter.Mean)
				a.f64canon(fs.Iter.Std)
				a.bool8(fs.Normalish)
			}
		}
		a.v3PairSlice(p1.ValidPairs)
		a.v3PairSlice(p1.Excluded)
		if p1.Unstable == nil {
			a.u32le(v3NilSlice)
		} else {
			a.u32le(uint32(len(p1.Unstable)))
			for _, v := range p1.Unstable {
				a.f64bits(v)
			}
		}
	}

	if len(res.Pairs) == 0 {
		a.u32le(v3NilSlice) // append-built: empty ⇒ null
		return
	}
	a.u32le(uint32(len(res.Pairs)))
	for _, pr := range res.Pairs {
		if pr == nil {
			a.u8(0)
			continue
		}
		a.u8(1)
		a.v3PairValue(pr.Pair)
		if len(pr.Measurements) == 0 {
			a.u32le(v3NilSlice) // append-built: empty ⇒ null
		} else {
			a.u32le(uint32(len(pr.Measurements)))
			for i := range pr.Measurements {
				m := &pr.Measurements[i]
				a.v3PairValue(m.Pair)
				a.f64canon(m.LatencyMs)
				a.i64le(m.TsDevNs)
				a.i64le(m.TeDevNs)
				a.i64le(int64(m.SM))
				a.i64le(int64(m.TransitionIndex))
				a.f64canon(m.InjectedMs)
				a.i64le(m.SyncSpreadNs)
			}
		}
		a.v3F64Slice(pr.Samples)
		a.v3F64Slice(pr.Injected)
		a.i64le(int64(pr.Attempts))
		a.i64le(int64(pr.Failures))
		a.i64le(int64(pr.DiscardedByThrottle))
		a.i64le(int64(pr.ThrottleEvents))
		a.bool8(pr.Skipped)
		a.v3String(pr.SkipReason)
		a.v3F64Slice(pr.Kept)
		a.v3F64Slice(pr.Outliers)
		if pr.Clusters == nil {
			a.u8(0)
		} else {
			a.u8(1)
			c := pr.Clusters
			if c.Labels == nil {
				a.u32le(v3NilSlice)
			} else {
				a.u32le(uint32(len(c.Labels)))
				for _, l := range c.Labels {
					a.i64le(int64(l))
				}
			}
			a.i64le(int64(c.NumClusters))
			a.f64canon(c.Eps)
			a.i64le(int64(c.MinPts))
		}
		s := pr.Summary
		a.i64le(int64(s.N))
		a.f64canon(s.Mean)
		a.f64canon(s.Std)
		a.f64canon(s.Min)
		a.f64canon(s.Q05)
		a.f64canon(s.Q25)
		a.f64canon(s.Median)
		a.f64canon(s.Q75)
		a.f64canon(s.Q95)
		a.f64canon(s.Max)
		a.f64canon(pr.FinalRSE)
	}
}

func (a *appender) bool8(v bool) {
	if v {
		a.u8(1)
	} else {
		a.u8(0)
	}
}

// v3Reader is the bounds-checked cursor over an inflated v3 body. The
// first malformed read latches err and turns every subsequent read
// into a cheap zero-value no-op, so decoders need no per-field error
// plumbing; strings and slices are copied out, because the backing
// buffer is pooled scratch that is recycled the moment the parse
// returns.
type v3Reader struct {
	b   []byte
	off int
	err error
}

func (r *v3Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *v3Reader) need(n int64) bool {
	if r.err != nil {
		return false
	}
	if n < 0 || int64(len(r.b)-r.off) < n {
		r.fail("truncated body: need %d bytes at offset %d of %d", n, r.off, len(r.b))
		return false
	}
	return true
}

func (r *v3Reader) u8() byte {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *v3Reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *v3Reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *v3Reader) i64() int64   { return int64(r.u64()) }
func (r *v3Reader) f64() float64 { return math.Float64frombits(r.u64()) }

// count reads a slice tag and validates it against the bytes actually
// remaining: a slice of n elements of elemSize bytes each must fit in
// the unread body. Returns (-1, nil slice) for the nil tag.
func (r *v3Reader) count(elemSize int64) int {
	tag := r.u32()
	if r.err != nil {
		return 0
	}
	if tag == v3NilSlice {
		return -1
	}
	n := int64(tag)
	if elemSize > 0 && n > int64(len(r.b)-r.off)/elemSize {
		r.fail("slice count %d overruns the %d-byte body", n, len(r.b))
		return 0
	}
	return int(n)
}

func (r *v3Reader) str() string {
	n := r.u32()
	if !r.need(int64(n)) {
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)]) // copies out of the pooled buffer
	r.off += int(n)
	return s
}

func (r *v3Reader) f64Slice() []f64 {
	n := r.count(8)
	if n < 0 || r.err != nil {
		return nil
	}
	out := make([]f64, n)
	for i := range out {
		out[i] = f64(r.f64())
	}
	return out
}

func (r *v3Reader) pairValue() core.Pair {
	return core.Pair{InitMHz: r.f64(), TargetMHz: r.f64()}
}

func (r *v3Reader) pairSlice() []core.Pair {
	n := r.count(16)
	if n < 0 || r.err != nil {
		return nil
	}
	out := make([]core.Pair, n)
	for i := range out {
		out[i] = r.pairValue()
	}
	return out
}

// decodeV3Body parses an inflated v3 body into the envelope the shared
// schema/digest checks run over.
func decodeV3Body(body []byte) (*storedBlob, int64, error) {
	r := &v3Reader{b: body}
	b := &storedBlob{Schema: int(r.u32())}
	rawBytes := int64(r.u64())
	if r.err == nil && (rawBytes < 0 || rawBytes > maxCanonicalBytes) {
		r.fail("canonical size %d outside [0, %d]", rawBytes, maxCanonicalBytes)
	}
	b.Digest = r.str()
	b.Profile = r.str()
	b.Instance = int(r.i64())

	sr := &b.Result
	sr.DeviceName = r.str()
	sr.Architecture = r.str()
	sr.CaptureHintNs = r.i64()

	if r.u8() != 0 {
		p1 := &storedPhase1{}
		if n := r.count(33); n >= 0 && r.err == nil { // 8+8+8+8+1 per stat
			p1.Stats = make([]storedFreqStats, n)
			for i := range p1.Stats {
				p1.Stats[i] = storedFreqStats{
					FreqMHz:   r.f64(),
					N:         int(r.i64()),
					Mean:      f64(r.f64()),
					Std:       f64(r.f64()),
					Normalish: r.u8() != 0,
				}
			}
		}
		p1.ValidPairs = r.pairSlice()
		p1.Excluded = r.pairSlice()
		if n := r.count(8); n >= 0 && r.err == nil {
			p1.Unstable = make([]float64, n)
			for i := range p1.Unstable {
				p1.Unstable[i] = r.f64()
			}
		}
		sr.Phase1 = p1
	}

	// A pair is at minimum a presence byte; deeper counts are checked
	// against the remaining bytes as they stream past.
	if n := r.count(1); n >= 0 && r.err == nil {
		sr.Pairs = make([]*storedPair, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			if r.u8() == 0 {
				sr.Pairs = append(sr.Pairs, nil)
				continue
			}
			sp := &storedPair{Pair: r.pairValue()}
			if mn := r.count(72); mn >= 0 && r.err == nil { // 16+8*7 per measurement
				sp.Measurements = make([]storedMeasurement, mn)
				for j := range sp.Measurements {
					sp.Measurements[j] = storedMeasurement{
						Pair:            r.pairValue(),
						LatencyMs:       f64(r.f64()),
						TsDevNs:         r.i64(),
						TeDevNs:         r.i64(),
						SM:              int(r.i64()),
						TransitionIndex: int(r.i64()),
						InjectedMs:      f64(r.f64()),
						SyncSpreadNs:    r.i64(),
					}
				}
			}
			sp.Samples = r.f64Slice()
			sp.Injected = r.f64Slice()
			sp.Attempts = int(r.i64())
			sp.Failures = int(r.i64())
			sp.DiscardedByThrottle = int(r.i64())
			sp.ThrottleEvents = int(r.i64())
			sp.Skipped = r.u8() != 0
			sp.SkipReason = r.str()
			sp.Kept = r.f64Slice()
			sp.Outliers = r.f64Slice()
			if r.u8() != 0 {
				sc := &storedClusters{}
				if ln := r.count(8); ln >= 0 && r.err == nil {
					sc.Labels = make([]int, ln)
					for j := range sc.Labels {
						sc.Labels[j] = int(r.i64())
					}
				}
				sc.NumClusters = int(r.i64())
				sc.Eps = f64(r.f64())
				sc.MinPts = int(r.i64())
				sp.Clusters = sc
			}
			sp.Summary = storedSummary{
				N: int(r.i64()), Mean: f64(r.f64()), Std: f64(r.f64()), Min: f64(r.f64()),
				Q05: f64(r.f64()), Q25: f64(r.f64()), Median: f64(r.f64()),
				Q75: f64(r.f64()), Q95: f64(r.f64()), Max: f64(r.f64()),
			}
			sp.FinalRSE = f64(r.f64())
			sr.Pairs = append(sr.Pairs, sp)
		}
	}

	if r.err != nil {
		return nil, 0, r.err
	}
	if r.off != len(r.b) {
		return nil, 0, fmt.Errorf("%d trailing bytes after body", len(r.b)-r.off)
	}
	return b, rawBytes, nil
}

// inflateV3 inflates the gzip stream after the magic into the pooled
// scratch buffer under the same rails as v2: single member, bounded
// inflation, no trailing bytes. The returned buffer must be released
// with putDecodeBuf once the parse has copied everything it keeps.
func inflateV3(data []byte) (*bytes.Buffer, error) {
	r := bytes.NewReader(data[len(v3Magic):])
	gz := gzipReaders.Get().(*gzip.Reader)
	if err := gz.Reset(r); err != nil {
		gzipReaders.Put(gz)
		return nil, err
	}
	gz.Multistream(false)
	buf := decodeBufs.Get().(*bytes.Buffer)
	buf.Reset()
	_, rerr := buf.ReadFrom(io.LimitReader(gz, maxCanonicalBytes+1))
	gz.Close()
	gzipReaders.Put(gz)
	if rerr != nil {
		putDecodeBuf(buf)
		return nil, rerr
	}
	if int64(buf.Len()) > maxCanonicalBytes {
		putDecodeBuf(buf)
		return nil, fmt.Errorf("body inflates past %d bytes", maxCanonicalBytes)
	}
	if r.Len() != 0 {
		putDecodeBuf(buf)
		return nil, fmt.Errorf("%d trailing bytes after container", r.Len())
	}
	return buf, nil
}
