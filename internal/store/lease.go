package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"
)

// Advisory shard leases. A lease is a `<digest>.lease` file created with
// O_CREATE|O_EXCL — the filesystem arbitrates exactly one winner per
// digest, across goroutines and across processes — holding the owner's
// id and an expiry. A holder renews while it works; anyone finding an
// expired (or unparseable) lease may steal it, so a crashed holder
// blocks a shard for at most one TTL.
//
// Leases are coordination, not correctness: campaigns are deterministic,
// so the worst a lease race can cause is duplicated work writing
// identical bytes. That keeps the protocol honest about its one
// documented window — two stealers of the same expired lease can, in a
// narrow interleaving, both believe they won; both then compute the same
// shard and Put the same blob. fleet.Sweep's claim loop rides on this:
// claim before compute, wait (and poll the store) when a live peer holds
// the shard, steal when the holder's lease has expired.

// leaseSuffix names lease files next to their blobs.
const leaseSuffix = ".lease"

// compactLockTTL bounds how long a crashed compactor can block
// compaction; folding a log takes milliseconds, so stealing after 30 s
// is conservative.
const compactLockTTL = 30 * time.Second

// leaseFile is the on-disk lease content. Token, minted fresh per
// acquisition, is what Renew and Release verify against: Owner is a
// human-facing label with no uniqueness requirement, so it must never
// decide whether a lease on disk is "ours" (two processes sharing an
// owner string would otherwise clobber each other's claims after a
// steal).
type leaseFile struct {
	Owner         string `json:"owner"`
	Token         string `json:"token"`
	ExpiresUnixNs int64  `json:"expires_unix_ns"`
}

// Lease is a held claim on the local filesystem. Release it when done;
// Renew it while working longer than the TTL.
type Lease struct {
	path   string
	owner  string
	token  string
	stolen bool
}

// Owner returns the id the lease was acquired under.
func (l *Lease) Owner() string { return l.owner }

// Token returns the per-acquisition token Renew and Release verify.
func (l *Lease) Token() string { return l.token }

// Stolen reports the claim displaced an expired previous holder.
func (l *Lease) Stolen() bool { return l.stolen }

// handleSeq disambiguates handle ids minted in the same nanosecond.
var handleSeq atomic.Int64

// newHandleID mints a process-unique owner id for internal locks.
func newHandleID() string {
	return fmt.Sprintf("%d-%d-%d", os.Getpid(), time.Now().UnixNano(), handleSeq.Add(1))
}

// TryAcquire attempts to claim the digest for owner until now+ttl.
// It returns (lease, true, nil) on success — including taking over an
// expired holder's claim (Lease.Stolen) — and (nil, false, nil) when a
// live lease exists. Claims are strictly exclusive: a live lease is
// busy even for its own owner id, so an owner string shared by several
// processes still partitions work correctly (the id is an
// observability label, not an identity with privileges — a process
// that crashed and restarted re-claims its shards through the ordinary
// expiry-steal path). The error return is reserved for real I/O
// failures.
func (s *Store) TryAcquire(digest, owner string, ttl time.Duration) (LeaseHandle, bool, error) {
	if digest == "" || strings.ContainsRune(digest, os.PathSeparator) {
		return nil, false, fmt.Errorf("store: invalid lease digest %q", digest)
	}
	if owner == "" {
		return nil, false, fmt.Errorf("store: empty lease owner")
	}
	if ttl <= 0 {
		return nil, false, fmt.Errorf("store: non-positive lease ttl %v", ttl)
	}
	l, ok, err := tryAcquirePath(filepath.Join(s.dir, digest+leaseSuffix), owner, ttl)
	if l == nil {
		// Return an untyped nil: a typed-nil *Lease inside the interface
		// would make callers' `lease != nil` checks lie.
		return nil, ok, err
	}
	return l, ok, err
}

// AttachLease reconstructs a handle for an acquisition made earlier —
// possibly by another handle or another process — from its digest,
// owner label, and token. Nothing is checked at attach time: Renew and
// Release verify the token against the on-disk lease, so an attach with
// a stale or fabricated token can only fail, never displace the live
// holder. This is what lets the network daemon stay stateless — clients
// round-trip the token, and a restarted daemon serves renewals without
// any in-memory lease table.
func (s *Store) AttachLease(digest, owner, token string) LeaseHandle {
	return &Lease{path: filepath.Join(s.dir, digest+leaseSuffix), owner: owner, token: token}
}

func tryAcquirePath(path, owner string, ttl time.Duration) (*Lease, bool, error) {
	stolen := false
	token := newHandleID()
	for attempt := 0; attempt < 8; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			data, merr := json.Marshal(leaseFile{
				Owner: owner, Token: token, ExpiresUnixNs: time.Now().Add(ttl).UnixNano(),
			})
			if merr == nil {
				_, merr = f.Write(data)
			}
			f.Close()
			if merr != nil {
				os.Remove(path)
				return nil, false, fmt.Errorf("store: lease %s: %w", path, merr)
			}
			return &Lease{path: path, owner: owner, token: token, stolen: stolen}, true, nil
		}
		if !os.IsExist(err) {
			return nil, false, fmt.Errorf("store: lease %s: %w", path, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // released between the create attempt and the read
			}
			return nil, false, fmt.Errorf("store: lease %s: %w", path, err)
		}
		var lf leaseFile
		if json.Unmarshal(data, &lf) != nil || time.Now().UnixNano() >= lf.ExpiresUnixNs {
			// Expired or garbage: steal. The remove-then-recreate is the
			// documented advisory window — a fresh claimant between our
			// read and remove loses its lease and the shard computes
			// twice, identically.
			os.Remove(path)
			stolen = true
			continue
		}
		return nil, false, nil
	}
	// Pathological churn (create/steal racing in a tight loop): report
	// busy rather than spinning; the caller's claim loop retries.
	return nil, false, nil
}

// Renew extends the lease to now+ttl. The content is replaced via a
// temp file and rename, so a concurrent reader sees either expiry. A
// lease whose on-disk token no longer matches (a stealer took over
// after our expiry) is lost: Renew refuses rather than clobbering the
// new holder's live claim.
func (l *Lease) Renew(ttl time.Duration) error {
	if !l.stillHeld() {
		return fmt.Errorf("store: renew %s: lease lost to another holder", l.path)
	}
	data, err := json.Marshal(leaseFile{
		Owner: l.owner, Token: l.token, ExpiresUnixNs: time.Now().Add(ttl).UnixNano(),
	})
	if err != nil {
		return fmt.Errorf("store: renew %s: %w", l.path, err)
	}
	if err := atomicWrite(l.path, data); err != nil {
		return fmt.Errorf("store: renew: %w", err)
	}
	return nil
}

// Release drops the claim. Best-effort and idempotent: if a stealer
// already holds the path (our lease expired mid-flight), their lease is
// left untouched.
func (l *Lease) Release() error {
	if !l.stillHeld() {
		return nil
	}
	if err := os.Remove(l.path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: release %s: %w", l.path, err)
	}
	return nil
}

// stillHeld reports whether the on-disk lease still carries this
// acquisition's token. There is an unavoidable window between this read
// and the caller's write/remove; losing that race costs one duplicated
// (identical) computation, never a wrong result.
func (l *Lease) stillHeld() bool {
	data, err := os.ReadFile(l.path)
	if err != nil {
		return false
	}
	var lf leaseFile
	return json.Unmarshal(data, &lf) == nil && lf.Token == l.token
}

// LeaseHolder reports the live holder of a digest's lease, if any:
// a planner's peek, racy by nature.
func (s *Store) LeaseHolder(digest string) (owner string, held bool) {
	return leaseHolderAt(filepath.Join(s.dir, digest+leaseSuffix))
}

// leaseHolderAt reads a lease file directly; expired or unparseable
// leases report unheld.
func leaseHolderAt(path string) (string, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", false
	}
	var lf leaseFile
	if json.Unmarshal(data, &lf) != nil || time.Now().UnixNano() >= lf.ExpiresUnixNs {
		return "", false
	}
	return lf.Owner, true
}
