package store

import (
	"time"

	"golatest/internal/core"
)

// Backend is the campaign-store surface the rest of the system builds
// on: content-addressed Get/Put over campaign Keys, the advisory lease
// protocol, the index, and GC. Two implementations exist:
//
//   - *Store — the filesystem store in this package, coordinating
//     processes that share one directory (rename atomicity, O_APPEND
//     journal, O_EXCL leases);
//   - storenet.Client — the same contract spoken over HTTP to a
//     `stored` daemon, so fleets spanning hosts share one store.
//
// The error discipline is deliberately asymmetric, matching the local
// store's corruption tolerance: reads (Get, Has, Index, Len,
// LeaseHolder) degrade to a miss/empty answer on any failure — a miss
// is always recoverable by recomputing, and campaigns are deterministic
// so the recompute is byte-identical — while writes and claims (Put,
// TryAcquire, GC) surface their errors, because a store that cannot
// accept results or arbitrate leases must stop the fleet rather than
// let it silently recompute forever.
type Backend interface {
	// Location names the store for logs and stats lines: a directory
	// for the filesystem store, a base URL for a remote one.
	Location() string

	// Get returns the stored campaign for the key, or (nil, false) on
	// any kind of miss — absent, unreadable, or invalid.
	Get(k Key) (*core.Result, bool)
	// Put stores the campaign under the key.
	Put(k Key, res *core.Result) error
	// Has reports whether a blob exists for the key without validating
	// it; only Get vouches for integrity.
	Has(k Key) bool

	// Index lists the indexed blobs; Len counts them.
	Index() []ManifestEntry
	Len() int
	// Counters reports this handle's traffic.
	Counters() Counters

	// TryAcquire claims digest for owner until now+ttl: (lease, true,
	// nil) on success, (nil, false, nil) when a live peer holds it.
	TryAcquire(digest, owner string, ttl time.Duration) (LeaseHandle, bool, error)
	// LeaseHolder peeks at the live holder of a digest's lease.
	LeaseHolder(digest string) (owner string, held bool)

	// GC bounds the store per the policy and sweeps debris.
	GC(p GCPolicy) (GCStats, error)
}

// LeaseHandle is a held advisory claim, abstracted over backends. Renew
// and Release verify the acquisition token — a handle whose lease was
// stolen after expiry can only fail, never clobber the new holder.
type LeaseHandle interface {
	// Owner returns the label the lease was acquired under.
	Owner() string
	// Token returns the per-acquisition token Renew/Release verify; the
	// network layer round-trips it so a stateless daemon can reattach.
	Token() string
	// Stolen reports the claim displaced an expired previous holder.
	Stolen() bool
	// Renew extends the claim to now+ttl.
	Renew(ttl time.Duration) error
	// Release drops the claim; best-effort and idempotent.
	Release() error
}

// ResilienceStats reports a backend's degraded-mode traffic: what it
// absorbed, deferred, and healed while its remote tier was unavailable.
type ResilienceStats struct {
	// Degraded counts requests the backend answered without the remote
	// because its circuit breaker was open — reads served local-only (or
	// fast-failed to a miss) instead of waiting out a network timeout.
	Degraded int64
	// Deferred counts writes that landed in the local tier plus the
	// write-behind journal instead of the remote.
	Deferred int64
	// Reconciled counts journaled writes since replayed to the remote.
	Reconciled int64
	// Pending counts journal entries not yet replayed.
	Pending int64
}

// ValidatedGetter is the optional read-side half of the proof-carrying
// blob handoff: backends that can return the validated container bytes
// alongside the decoded result implement it (*Store reads them off
// disk, storenet.Client validates the wire body). Composite backends —
// the replicating router — use it to move a blob between members
// without a second decode: the ValidatedBlob a member hands back is
// exactly what another member's PutValidated accepts verbatim.
type ValidatedGetter interface {
	GetValidated(digest string) (*ValidatedBlob, bool)
}

// ValidatedPutter is the write-side half: backends that can persist an
// already-validated blob without re-encoding or re-validating it. The
// ValidatedBlob type has no public constructor outside the validating
// parse paths, so an implementation may trust the bytes unconditionally.
type ValidatedPutter interface {
	PutValidated(vb *ValidatedBlob) error
}

// ReplicationStats reports a replicating composite backend's health and
// repair traffic — the replication-aware analogue of ResilienceStats.
// All fields are counters since construction except Members, Healthy,
// Replication, and PendingRepairs (point-in-time gauges).
type ReplicationStats struct {
	// Members is the ring size; Healthy is how many members currently
	// answer their health signal; Replication is the configured factor R.
	Members, Healthy, Replication int
	// Failovers counts operations routed past an unhealthy or failing
	// member to its ring successor (reads, writes, and lease claims).
	Failovers int64
	// UnderReplicatedPuts counts Puts acknowledged with fewer than R
	// replica writes — durable, but owed a repair.
	UnderReplicatedPuts int64
	// ReadRepairs counts replicas healed opportunistically by a Get that
	// observed a preferred member missing the blob it then found further
	// along the ring.
	ReadRepairs int64
	// ScrubRepairs counts replicas healed by the anti-entropy scrubber;
	// ScrubRuns counts completed scrub passes.
	ScrubRepairs, ScrubRuns int64
	// PendingRepairs gauges replica slots known to be missing their blob
	// (failed replica writes not yet healed by read-repair or a scrub).
	PendingRepairs int64
}

// Replicated is implemented by composite backends that spread blobs
// over member stores with redundancy (the storenet router). Fleet
// sweeps use it for replication-aware accounting: a sweep that rode out
// a member outage reports the failovers and repairs that absorbed it.
type Replicated interface {
	ReplicationStats() ReplicationStats
}

// Resilient is implemented by backends that survive a remote outage by
// degrading to a local tier (storenet.Client with a cache configured).
// Blobs are content-addressed and immutable, so the degraded contract
// is safe by construction: a deferred write holds exactly the bytes the
// remote would have stored, replaying it is idempotent, and no reader
// can ever observe a wrong result — only a temporarily smaller store.
type Resilient interface {
	// CanDegrade reports whether a local tier absorbs remote failures —
	// the signal fleet sweeps use to default their store-error policy.
	CanDegrade() bool
	// Resilience snapshots the degraded-mode counters.
	Resilience() ResilienceStats
	// Reconcile replays the write-behind journal to the remote,
	// returning how many blobs were replayed. Idempotent: replayed
	// entries leave the journal, and an entry whose blob has since been
	// evicted locally is dropped (the result recomputes on demand).
	Reconcile() (int, error)
}

var (
	_ Backend         = (*Store)(nil)
	_ LeaseHandle     = (*Lease)(nil)
	_ ValidatedGetter = (*Store)(nil)
	_ ValidatedPutter = (*Store)(nil)
)

// IndexedBytes sums the recorded on-disk blob sizes of an index
// listing — the cheap store-size estimate watermark checks use
// (recorded sizes can lag the filesystem briefly; GC itself re-stats
// every blob).
func IndexedBytes(entries []ManifestEntry) int64 {
	var total int64
	for _, e := range entries {
		total += e.Bytes
	}
	return total
}

// IndexedRawBytes sums the recorded canonical (uncompressed) envelope
// sizes; against IndexedBytes it yields the store's live compression
// ratio without reading a single blob. Entries indexed before the v2
// container (no recorded raw size) contribute zero.
func IndexedRawBytes(entries []ManifestEntry) int64 {
	var total int64
	for _, e := range entries {
		total += e.RawBytes
	}
	return total
}
