package store

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"testing"
)

// FuzzDecodeBlob throws arbitrary bytes at the full blob-validation
// path — container sniffing, inflation under the canonical-size rail,
// the bounds-checked v3 binary walk, JSON decode, digest/schema
// checks. The invariant is the store's corrupt-blob promise: any input
// either validates to a non-nil result or returns an error; it never
// panics and a compressed container never inflates past
// maxCanonicalBytes (a bomb is an invalid blob, not an allocation
// storm).
func FuzzDecodeBlob(f *testing.F) {
	k := mustKey(f, 0, 42)
	plain, err := EncodeBlob(k, testResult())
	if err != nil {
		f.Fatal(err)
	}
	comp, err := EncodeBlobCompressed(k, testResult())
	if err != nil {
		f.Fatal(err)
	}
	v3, err := EncodeBlobV3(k, testResult())
	if err != nil {
		f.Fatal(err)
	}

	f.Add(plain)
	f.Add(comp)
	f.Add(v3)
	// Truncations tear the container at every layer: mid-JSON for v1,
	// mid-deflate-stream and mid-gzip-footer for v2/v3, and — for v3 —
	// mid-length-prefix and mid-section inside the inflated binary body.
	f.Add(plain[:len(plain)/2])
	for _, src := range [][]byte{comp, v3} {
		f.Add(src[:len(src)/2])
		f.Add(src[:len(src)-4]) // gzip CRC/ISIZE footer torn off
	}
	// Bit flips corrupt without truncating — on v3 they land in the
	// deflate stream (CRC catch) or the magic (container misdetect).
	for _, src := range [][]byte{plain, comp, v3} {
		flipped := bytes.Clone(src)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}
	// Torn and misaligned v3 bodies behind an intact gzip layer: the
	// deflate CRC passes, so every cut lands on the binary reader's
	// bounds checks — truncated length prefixes, section counts pointing
	// past the end, and a trailing-garbage tail. reV3 rebuilds a valid
	// container around a mutated body so only the body is hostile.
	body, err := inflateV3(v3)
	if err != nil {
		f.Fatal(err)
	}
	reV3 := func(b []byte) []byte {
		deflated, err := compressBlobBytes(b)
		if err != nil {
			f.Fatal(err)
		}
		return append(append([]byte(nil), v3Magic[:]...), deflated...)
	}
	raw := bytes.Clone(body.Bytes())
	putDecodeBuf(body)
	for _, cut := range []int{1, 3, 7, len(raw) / 2, len(raw) - 1} {
		if cut < len(raw) {
			f.Add(reV3(raw[:cut]))
		}
	}
	f.Add(reV3(append(bytes.Clone(raw), 0xEE))) // trailing body byte
	counts := bytes.Clone(raw)
	counts[len(counts)/2] ^= 0xFF // likely lands in a count or length
	f.Add(reV3(counts))
	// A high-ratio member: 64 KiB of padding compresses to ~100 bytes,
	// steering the fuzzer toward the inflation rail in both compressed
	// containers.
	bombBody, err := compressBlobBytes(bytes.Repeat([]byte{' '}, 64<<10))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(bombBody)
	f.Add(append(append([]byte(nil), v3Magic[:]...), bombBody...))
	f.Add([]byte(`{}`))
	f.Add([]byte{})
	f.Add([]byte{0x1f, 0x8b}) // bare gzip magic, no stream
	f.Add(v3Magic[:])         // bare v3 magic, no stream
	f.Add(v3[:4+2])           // v3 magic + torn gzip header

	digest := k.Digest
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := ValidateBlob(data, digest)
		if err == nil && res == nil {
			t.Fatal("ValidateBlob returned nil result with nil error")
		}
		// The proof-carrying constructor shares the parse; it must agree
		// with ValidateBlob on validity and never hand out a nil result.
		vb, vbErr := ValidateBlobBytes(data, digest)
		if (vbErr == nil) != (err == nil) {
			t.Fatalf("ValidateBlobBytes err=%v disagrees with ValidateBlob err=%v", vbErr, err)
		}
		if vbErr == nil && vb.Result() == nil {
			t.Fatal("ValidateBlobBytes returned nil result with nil error")
		}
		// The digest-mismatch path must be just as total.
		if res, err := ValidateBlob(data, "deadbeef"); err == nil && res == nil {
			t.Fatal("digest-mismatch ValidateBlob: nil result with nil error")
		}
		// The canonical re-render paths share the sniff/inflate/walk
		// machinery; they must be equally crash-free on hostile input
		// (errors are fine).
		_ = WriteCanonical(io.Discard, data)
		_ = WriteCanonicalCompressed(io.Discard, data)
	})
}

// FuzzF64UnmarshalJSON fuzzes the hand-rolled f64 element parser
// against its encoder: any input it accepts must re-encode and
// re-parse to the identical bit pattern (modulo NaN payloads, which
// canonicalise to the single "NaN" spelling).
func FuzzF64UnmarshalJSON(f *testing.F) {
	for _, seed := range []string{
		`1.5`, `-0`, `0`, `3.141592653589793`, `1e308`, `5e-324`,
		`"NaN"`, `"+Inf"`, `"-Inf"`,
		"\"\\u004EaN\"", // escaped spelling of "NaN", the alien-encoder slow path
		`null`, `1e999`, `"Inf"`, `""`, `NaN`, `[1]`, `0x1p2`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var v f64
		if err := v.UnmarshalJSON(data); err != nil {
			return // rejected input: nothing more to hold it to
		}
		out, err := v.MarshalJSON()
		if err != nil {
			t.Fatalf("accepted %q but re-encode failed: %v", data, err)
		}
		// What the encoder emits must also be valid generic JSON — this
		// is what guards interop with foreign decoders.
		if !json.Valid(out) {
			t.Fatalf("%q encoded to invalid JSON %q", data, out)
		}
		var back f64
		if err := back.UnmarshalJSON(out); err != nil {
			t.Fatalf("round-trip parse of %q (from %q) failed: %v", out, data, err)
		}
		vb, bb := math.Float64bits(float64(v)), math.Float64bits(float64(back))
		bothNaN := math.IsNaN(float64(v)) && math.IsNaN(float64(back))
		if vb != bb && !bothNaN {
			t.Fatalf("%q: round trip %x -> %q -> %x", data, vb, out, bb)
		}
	})
}
