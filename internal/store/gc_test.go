package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// putN writes n distinct entries and returns their keys in put order,
// so their LRU clocks are strictly ascending.
func putN(t *testing.T, s *Store, n int) []Key {
	t.Helper()
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = mustKey(t, i, uint64(300+i))
		if err := s.Put(keys[i], testResult()); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

func TestGCSizeBoundEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := putN(t, s, 3)
	// Touch the oldest entry: the Get hit advances its LRU clock, so
	// the eviction order becomes k1, k2 — not put order.
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("miss on stored key")
	}

	// Compressed blob sizes vary slightly with content (the digest field
	// differs per key), so account per entry rather than assuming one
	// uniform size.
	sizes := map[string]int64{}
	var total int64
	for _, e := range s.Index() {
		if e.Bytes <= 0 {
			t.Fatalf("entry %s has no recorded size", e.Digest)
		}
		sizes[e.Digest] = e.Bytes
		total += e.Bytes
	}
	// One byte over the bound: evicting the single least-recently-used
	// blob must satisfy it.
	st, err := s.GC(GCPolicy{MaxBytes: total - 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Evicted != 1 || st.Scanned != 3 {
		t.Fatalf("stats = %+v, want 1 eviction of 3 scanned", st)
	}
	if st.BytesBefore != total || st.BytesAfter != total-sizes[keys[1].Digest] {
		t.Fatalf("byte accounting: %+v", st)
	}
	if s.Has(keys[1]) {
		t.Fatal("LRU blob survived the size bound")
	}
	if !s.Has(keys[0]) || !s.Has(keys[2]) {
		t.Fatal("recently-used blob evicted")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}

	// The tombstones are durable: a fresh handle agrees.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", s2.Len())
	}
}

func TestGCAgeBound(t *testing.T) {
	s := openStore(t)
	keys := putN(t, s, 2)
	st, err := s.GC(GCPolicy{MaxAge: time.Minute, Now: time.Now().Add(2 * time.Minute)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Evicted != 2 || st.BytesAfter != 0 {
		t.Fatalf("stats = %+v, want everything evicted", st)
	}
	for _, k := range keys {
		if s.Has(k) {
			t.Fatalf("expired blob %s survived", k)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}

// TestGCZeroPolicyIsJanitorOnly: with no bounds set, GC drops phantom
// index entries (blob deleted out from under the index) but never a
// live blob.
func TestGCZeroPolicyIsJanitorOnly(t *testing.T) {
	s := openStore(t)
	keys := putN(t, s, 2)
	if err := os.Remove(filepath.Join(s.Dir(), keys[0].blobName())); err != nil {
		t.Fatal(err)
	}
	st, err := s.GC(GCPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Evicted != 1 {
		t.Fatalf("stats = %+v, want exactly the phantom dropped", st)
	}
	if s.Len() != 1 || !s.Has(keys[1]) {
		t.Fatalf("live blob disturbed: Len=%d", s.Len())
	}
}

// TestGCSeesPeerWrites: a GC pass must bound the whole directory, not
// just the entries this handle saw — blobs written by a peer process
// since this handle opened live only in the journal until GC folds it.
func TestGCSeesPeerWrites(t *testing.T) {
	dir := t.TempDir()
	collector, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	peer, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := putN(t, peer, 3)
	if collector.Len() != 0 {
		t.Fatalf("precondition: collector already indexed %d peer entries", collector.Len())
	}

	st, err := collector.GC(GCPolicy{MaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 3 {
		t.Fatalf("Scanned = %d, want 3 (peer's journaled writes invisible to GC)", st.Scanned)
	}
	if st.Evicted != 3 || st.BytesAfter != 0 {
		t.Fatalf("stats = %+v, want the peer's blobs evicted under the size bound", st)
	}
	for _, k := range keys {
		if collector.Has(k) {
			t.Fatalf("peer blob %s survived the size bound", k)
		}
	}
}

func TestGCSweepsDebris(t *testing.T) {
	s := openStore(t)
	dir := s.Dir()

	// A crash-orphaned staging file, aged past the threshold.
	stale := filepath.Join(dir, tmpPrefix+"blob.json-123")
	if err := os.WriteFile(stale, []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}
	past := time.Now().Add(-2 * staleTmpAge)
	if err := os.Chtimes(stale, past, past); err != nil {
		t.Fatal(err)
	}
	// A fresh staging file: could be a live writer, must survive.
	fresh := filepath.Join(dir, tmpPrefix+"blob.json-456")
	if err := os.WriteFile(fresh, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}
	// An expired lease and a live one.
	if _, ok, err := s.TryAcquire("dead", "gone", time.Millisecond); err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	time.Sleep(5 * time.Millisecond)
	if _, ok, err := s.TryAcquire("live", "here", time.Minute); err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}

	st, err := s.GC(GCPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if st.TmpRemoved != 1 {
		t.Fatalf("TmpRemoved = %d, want 1", st.TmpRemoved)
	}
	if st.LeasesRemoved != 1 {
		t.Fatalf("LeasesRemoved = %d, want 1", st.LeasesRemoved)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("fresh temp file removed — could have been a live writer")
	}
	if _, held := s.LeaseHolder("dead"); held {
		t.Fatal("expired lease survived")
	}
	if owner, held := s.LeaseHolder("live"); !held || owner != "here" {
		t.Fatal("live lease removed")
	}
}

// TestGCFillsLegacyEntries: entries written before sizes/access times
// existed (or rebuilt from a scan) are backfilled from the blob file
// rather than treated as phantoms.
func TestGCFillsLegacyEntries(t *testing.T) {
	s := openStore(t)
	keys := putN(t, s, 1)
	s.mu.Lock()
	e := s.manifest[keys[0].Digest]
	e.Bytes = 0
	e.AccessUnixNs = 0
	s.manifest[keys[0].Digest] = e
	s.mu.Unlock()

	st, err := s.GC(GCPolicy{MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if st.Evicted != 0 || !s.Has(keys[0]) {
		t.Fatalf("legacy entry evicted: %+v", st)
	}
	if e := s.Index()[0]; e.Bytes == 0 || e.AccessUnixNs == 0 {
		t.Fatalf("legacy entry not backfilled: %+v", e)
	}
}
