package store

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"unsafe"

	"golatest/internal/cluster"
	"golatest/internal/core"
	"golatest/internal/stats"
)

// f64 is a float64 that survives JSON: encoding/json rejects NaN and the
// infinities, but campaign results legitimately contain them (e.g. a
// Measurement.InjectedMs is NaN when the simulator could not attribute
// the injection, and an empty population summarises to NaN). Non-finite
// values encode as the strings "NaN", "+Inf" and "-Inf"; finite values
// encode as the shortest decimal that round-trips the exact bit pattern,
// so a decoded blob reproduces every sample bit for bit.
type f64 float64

func (f f64) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// UnmarshalJSON parses the element directly (strconv, literal
// comparisons) rather than recursing into json.Unmarshal: a blob holds
// thousands of f64 elements, and a nested Unmarshal per element — with
// its own scanner state — used to dominate the warm-path alloc count.
func (f *f64) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		switch string(data) {
		case `"NaN"`:
			*f = f64(math.NaN())
		case `"+Inf"`:
			*f = f64(math.Inf(1))
		case `"-Inf"`:
			*f = f64(math.Inf(-1))
		default:
			// Slow path for escaped spellings (e.g. "NaN") a
			// foreign encoder might emit; the canonical encoder never
			// does, so this allocates only on alien blobs.
			var s string
			if err := json.Unmarshal(data, &s); err != nil {
				return err
			}
			switch s {
			case "NaN":
				*f = f64(math.NaN())
			case "+Inf":
				*f = f64(math.Inf(1))
			case "-Inf":
				*f = f64(math.Inf(-1))
			default:
				return fmt.Errorf("store: invalid float string %q", s)
			}
		}
		return nil
	}
	if string(data) == "null" {
		return nil // the json.Unmarshaler convention: null is a no-op
	}
	v, err := strconv.ParseFloat(string(data), 64)
	if err != nil {
		return fmt.Errorf("store: invalid float %s: %w", data, err)
	}
	*f = f64(v)
	return nil
}

// toF64s and fromF64s reinterpret a slice between float64 and f64
// without copying. f64 is a defined type whose underlying type is
// float64, so the two element layouts are identical by the language
// spec; only the method set (the JSON codec) differs. Copy-free
// conversion is safe in both directions here: the encoder only reads
// the aliased memory, and the decoder hands over slices that
// encoding/json freshly allocated and nothing else references. The
// nil/empty distinction is preserved explicitly because the canonical
// encoding distinguishes null from [].
func toF64s(xs []float64) []f64 {
	if xs == nil {
		return nil
	}
	if len(xs) == 0 {
		return []f64{}
	}
	return unsafe.Slice((*f64)(unsafe.Pointer(&xs[0])), len(xs))
}

func fromF64s(xs []f64) []float64 {
	if xs == nil {
		return nil
	}
	if len(xs) == 0 {
		return []float64{}
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&xs[0])), len(xs))
}

// The stored* types below are the on-disk schema, deliberately decoupled
// from the in-memory types: in-memory layouts may change freely, but any
// change that alters this schema (or the meaning of a stored field) MUST
// bump SchemaVersion so stale blobs read as misses instead of decoding
// into garbage. The only structural divergence from internal/core is
// Phase1's Stats: JSON objects cannot key on float64, so the map is
// flattened to a frequency-sorted slice (FreqStats carries its own
// FreqMHz, making the flattening lossless).

type storedBlob struct {
	Schema   int          `json:"schema"`
	Digest   string       `json:"digest"`
	Profile  string       `json:"profile"`
	Instance int          `json:"instance"`
	Result   storedResult `json:"result"`
}

type storedResult struct {
	DeviceName    string        `json:"device_name"`
	Architecture  string        `json:"architecture"`
	CaptureHintNs int64         `json:"capture_hint_ns"`
	Phase1        *storedPhase1 `json:"phase1,omitempty"`
	Pairs         []*storedPair `json:"pairs"`
}

type storedPhase1 struct {
	Stats      []storedFreqStats `json:"stats"`
	ValidPairs []core.Pair       `json:"valid_pairs"`
	Excluded   []core.Pair       `json:"excluded"`
	Unstable   []float64         `json:"unstable"`
}

type storedFreqStats struct {
	FreqMHz   float64 `json:"freq_mhz"`
	N         int     `json:"n"`
	Mean      f64     `json:"mean"`
	Std       f64     `json:"std"`
	Normalish bool    `json:"normalish"`
}

type storedPair struct {
	Pair                core.Pair           `json:"pair"`
	Measurements        []storedMeasurement `json:"measurements"`
	Samples             []f64               `json:"samples"`
	Injected            []f64               `json:"injected"`
	Attempts            int                 `json:"attempts"`
	Failures            int                 `json:"failures"`
	DiscardedByThrottle int                 `json:"discarded_by_throttle"`
	ThrottleEvents      int                 `json:"throttle_events"`
	Skipped             bool                `json:"skipped"`
	SkipReason          string              `json:"skip_reason,omitempty"`
	Kept                []f64               `json:"kept"`
	Outliers            []f64               `json:"outliers"`
	Clusters            *storedClusters     `json:"clusters,omitempty"`
	Summary             storedSummary       `json:"summary"`
	FinalRSE            f64                 `json:"final_rse"`
}

type storedMeasurement struct {
	Pair            core.Pair `json:"pair"`
	LatencyMs       f64       `json:"latency_ms"`
	TsDevNs         int64     `json:"ts_dev_ns"`
	TeDevNs         int64     `json:"te_dev_ns"`
	SM              int       `json:"sm"`
	TransitionIndex int       `json:"transition_index"`
	InjectedMs      f64       `json:"injected_ms"`
	SyncSpreadNs    int64     `json:"sync_spread_ns"`
}

type storedClusters struct {
	Labels      []int `json:"labels"`
	NumClusters int   `json:"num_clusters"`
	Eps         f64   `json:"eps"`
	MinPts      int   `json:"min_pts"`
}

type storedSummary struct {
	N      int `json:"n"`
	Mean   f64 `json:"mean"`
	Std    f64 `json:"std"`
	Min    f64 `json:"min"`
	Q05    f64 `json:"q05"`
	Q25    f64 `json:"q25"`
	Median f64 `json:"median"`
	Q75    f64 `json:"q75"`
	Q95    f64 `json:"q95"`
	Max    f64 `json:"max"`
}

func encodeResult(res *core.Result) storedResult {
	sr := storedResult{
		DeviceName:    res.DeviceName,
		Architecture:  res.Architecture,
		CaptureHintNs: res.CaptureHintNs,
	}
	if res.Phase1 != nil {
		p1 := &storedPhase1{
			ValidPairs: res.Phase1.ValidPairs,
			Excluded:   res.Phase1.Excluded,
			Unstable:   res.Phase1.Unstable,
		}
		for _, fs := range res.Phase1.Stats {
			p1.Stats = append(p1.Stats, storedFreqStats{
				FreqMHz:   fs.FreqMHz,
				N:         fs.Iter.N,
				Mean:      f64(fs.Iter.Mean),
				Std:       f64(fs.Iter.Std),
				Normalish: fs.Normalish,
			})
		}
		sort.Slice(p1.Stats, func(i, j int) bool { return p1.Stats[i].FreqMHz < p1.Stats[j].FreqMHz })
		sr.Phase1 = p1
	}
	for _, pr := range res.Pairs {
		if pr == nil {
			sr.Pairs = append(sr.Pairs, nil)
			continue
		}
		sp := &storedPair{
			Pair:                pr.Pair,
			Samples:             toF64s(pr.Samples),
			Injected:            toF64s(pr.Injected),
			Attempts:            pr.Attempts,
			Failures:            pr.Failures,
			DiscardedByThrottle: pr.DiscardedByThrottle,
			ThrottleEvents:      pr.ThrottleEvents,
			Skipped:             pr.Skipped,
			SkipReason:          pr.SkipReason,
			Kept:                toF64s(pr.Kept),
			Outliers:            toF64s(pr.Outliers),
			Summary:             encodeSummary(pr.Summary),
			FinalRSE:            f64(pr.FinalRSE),
		}
		for _, m := range pr.Measurements {
			sp.Measurements = append(sp.Measurements, storedMeasurement{
				Pair:            m.Pair,
				LatencyMs:       f64(m.LatencyMs),
				TsDevNs:         m.TsDevNs,
				TeDevNs:         m.TeDevNs,
				SM:              m.SM,
				TransitionIndex: m.TransitionIndex,
				InjectedMs:      f64(m.InjectedMs),
				SyncSpreadNs:    m.SyncSpreadNs,
			})
		}
		if pr.Clusters != nil {
			sp.Clusters = &storedClusters{
				Labels:      pr.Clusters.Labels,
				NumClusters: pr.Clusters.NumClusters,
				Eps:         f64(pr.Clusters.Eps),
				MinPts:      pr.Clusters.MinPts,
			}
		}
		sr.Pairs = append(sr.Pairs, sp)
	}
	return sr
}

func encodeSummary(s stats.Summary) storedSummary {
	return storedSummary{
		N: s.N, Mean: f64(s.Mean), Std: f64(s.Std), Min: f64(s.Min),
		Q05: f64(s.Q05), Q25: f64(s.Q25), Median: f64(s.Median),
		Q75: f64(s.Q75), Q95: f64(s.Q95), Max: f64(s.Max),
	}
}

func decodeSummary(s storedSummary) stats.Summary {
	return stats.Summary{
		N: s.N, Mean: float64(s.Mean), Std: float64(s.Std), Min: float64(s.Min),
		Q05: float64(s.Q05), Q25: float64(s.Q25), Median: float64(s.Median),
		Q75: float64(s.Q75), Q95: float64(s.Q95), Max: float64(s.Max),
	}
}

func decodeResult(sr storedResult) *core.Result {
	res := &core.Result{
		DeviceName:    sr.DeviceName,
		Architecture:  sr.Architecture,
		CaptureHintNs: sr.CaptureHintNs,
	}
	if sr.Phase1 != nil {
		p1 := &core.Phase1Result{
			Stats:      make(map[float64]core.FreqStats, len(sr.Phase1.Stats)),
			ValidPairs: sr.Phase1.ValidPairs,
			Excluded:   sr.Phase1.Excluded,
			Unstable:   sr.Phase1.Unstable,
		}
		for _, fs := range sr.Phase1.Stats {
			p1.Stats[fs.FreqMHz] = core.FreqStats{
				FreqMHz: fs.FreqMHz,
				Iter: stats.MeanStd{
					N:    fs.N,
					Mean: float64(fs.Mean),
					Std:  float64(fs.Std),
				},
				Normalish: fs.Normalish,
			}
		}
		res.Phase1 = p1
	}
	for _, sp := range sr.Pairs {
		if sp == nil {
			res.Pairs = append(res.Pairs, nil)
			continue
		}
		pr := &core.PairResult{
			Pair:                sp.Pair,
			Samples:             fromF64s(sp.Samples),
			Injected:            fromF64s(sp.Injected),
			Attempts:            sp.Attempts,
			Failures:            sp.Failures,
			DiscardedByThrottle: sp.DiscardedByThrottle,
			ThrottleEvents:      sp.ThrottleEvents,
			Skipped:             sp.Skipped,
			SkipReason:          sp.SkipReason,
			Kept:                fromF64s(sp.Kept),
			Outliers:            fromF64s(sp.Outliers),
			Summary:             decodeSummary(sp.Summary),
			FinalRSE:            float64(sp.FinalRSE),
		}
		for _, m := range sp.Measurements {
			pr.Measurements = append(pr.Measurements, core.Measurement{
				Pair:            m.Pair,
				LatencyMs:       float64(m.LatencyMs),
				TsDevNs:         m.TsDevNs,
				TeDevNs:         m.TeDevNs,
				SM:              m.SM,
				TransitionIndex: m.TransitionIndex,
				InjectedMs:      float64(m.InjectedMs),
				SyncSpreadNs:    m.SyncSpreadNs,
			})
		}
		if sp.Clusters != nil {
			pr.Clusters = &cluster.Result{
				Labels:      sp.Clusters.Labels,
				NumClusters: sp.Clusters.NumClusters,
				Eps:         float64(sp.Clusters.Eps),
				MinPts:      sp.Clusters.MinPts,
			}
		}
		res.Pairs = append(res.Pairs, pr)
	}
	return res
}

// ErrInvalidBlob marks bytes that are not a valid blob for the digest
// they were presented under: unparseable JSON, a broken or truncated
// compressed stream, a foreign schema version, or a digest mismatch. It
// distinguishes "these bytes are garbage" (reject, recompute) from I/O
// failures; the network daemon maps it to 400 Bad Request.
var ErrInvalidBlob = errors.New("invalid blob")

// Blob container formats. The canonical envelope — the storedBlob JSON
// above, which the digest/ETag contract and SchemaVersion govern — is
// unchanged since v1; what changed in v2 and again in v3 is only the
// container those canonical bytes (or, for v3, their bit-exact binary
// equivalent) travel and rest in:
//
//	v1: the canonical JSON bytes, verbatim (plain, uncompressed)
//	v2: gzip(canonical JSON bytes)
//	v3: magic ‖ gzip(binary body)            (see codecv3.go)
//
// The three are distinguished by their leading bytes: the gzip magic
// (0x1f 0x8b), the v3 magic (0xB3 'G' 'L' '3'), and the canonical
// envelope's '{' — ContainerOf is the single sniff every layer shares.
// Readers accept all three; writers emit v3. Because the canonical
// envelope — and therefore everything the digest covers — is identical
// across containers, neither v2 nor v3 bumped SchemaVersion (the same
// reasoning that kept the manifest journal at schema 1: the campaign
// payload contract is untouched), which is what makes the migrations
// transparent: a v1 or v2 blob still matches its digest, still
// validates, and is re-written as v3 the first time it is read.
const (
	gzipMagic0 = 0x1f
	gzipMagic1 = 0x8b
)

// IsGzipBlob sniffs the v2 (gzip) container. Most callers want the
// three-way ContainerOf instead; this remains for the layers whose
// question really is "is this byte stream a bare gzip member" (e.g.
// HTTP Content-Encoding decisions).
func IsGzipBlob(data []byte) bool {
	return len(data) >= 2 && data[0] == gzipMagic0 && data[1] == gzipMagic1
}

// gzipBlobLevel is the compression level of every v2 container this
// process writes. One fixed level keeps the bytes deterministic (equal
// key ⇒ equal result ⇒ equal canonical bytes ⇒ equal compressed bytes
// for writers of the same build), so idempotent duplicate Puts still
// converge byte-for-byte. DefaultCompression trades a few extra ms on
// the (compute-dominated) cold path for the best ratio on the warm
// paths every later read and transfer pays.
const gzipBlobLevel = gzip.DefaultCompression

// Codec pools: encode/decode run on every warm store hit and every
// wire transfer, so the gzip state machines (~hundreds of KB each) and
// the sniff readers are recycled instead of reallocated per call.
var (
	gzipWriters = sync.Pool{New: func() any {
		w, _ := gzip.NewWriterLevel(io.Discard, gzipBlobLevel)
		return w
	}}
	gzipReaders = sync.Pool{New: func() any { return new(gzip.Reader) }}
	// decodeBufs holds the canonical bytes between inflation and the
	// JSON parse. Safe to recycle immediately after Unmarshal —
	// encoding/json copies every string out of its input — and it is
	// what keeps a warm Get's allocation cost at the compressed size,
	// not the canonical one.
	decodeBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}
)

// maxCanonicalBytes bounds how far a compressed container may inflate —
// the canonical form of a full-scale campaign blob is low megabytes, so
// 256 MiB is a safety rail, not a working limit. Without it a crafted
// gzip bomb (deflate approaches 1032:1) arriving through PutRaw or a
// client Get body would balloon a bounded compressed payload into
// gigabytes of decode buffer. A variable so the bomb test does not have
// to inflate 256 MiB to cross it.
var maxCanonicalBytes int64 = 256 << 20

// maxPooledDecodeBuf caps the scratch buffers decodeBufs retains; a
// pathological blob's oversized buffer is dropped for GC instead of
// pinning its memory in the pool forever.
const maxPooledDecodeBuf = 8 << 20

func putDecodeBuf(buf *bytes.Buffer) {
	if buf.Cap() <= maxPooledDecodeBuf {
		decodeBufs.Put(buf)
	}
}

// countingWriter measures the byte stream passing through it, so Put
// can record both the canonical and the compressed size without ever
// materialising either.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// encodeEnvelope renders the canonical envelope JSON through
// encoding/json — json.MarshalIndent, unchanged since v1. It is no
// longer on any production path (the hand-rolled renderer in
// canonical.go produces byte-identical output without materialising
// the storedResult intermediate) but is retained as the reference
// implementation the equivalence test pins the renderer against: the
// canonical-bytes contract is "whatever MarshalIndent said", forever.
func encodeEnvelope(k Key, res *core.Result) ([]byte, error) {
	data, err := json.MarshalIndent(&storedBlob{
		Schema:   SchemaVersion,
		Digest:   k.Digest,
		Profile:  k.Profile,
		Instance: k.Instance,
		Result:   encodeResult(res),
	}, "", " ")
	if err != nil {
		return nil, fmt.Errorf("store: encode %s: %w", k, err)
	}
	return data, nil
}

// encodeBlobTo writes the v2 container of a campaign result straight
// into w: canonical JSON → pooled gzip writer → w. Superseded by
// encodeBlobV3To on the Put path; kept behind EncodeBlobCompressed for
// legacy-container fixtures and benchmarks. Returns the canonical size
// for the index's RawBytes.
func encodeBlobTo(w io.Writer, k Key, res *core.Result) (int64, error) {
	data, err := encodeEnvelope(k, res)
	if err != nil {
		return 0, err
	}
	if err := gzipTo(w, data); err != nil {
		return int64(len(data)), fmt.Errorf("store: encode %s: %w", k, err)
	}
	return int64(len(data)), nil
}

// gzipTo deflates data into w through the writer pool — the one
// deflate block both the encode path and the v1-heal compression use.
func gzipTo(w io.Writer, data []byte) error {
	gz := gzipWriters.Get().(*gzip.Writer)
	gz.Reset(w)
	_, werr := gz.Write(data)
	cerr := gz.Close() // flushes; the pooled writer is reusable after Reset
	gzipWriters.Put(gz)
	if werr == nil {
		werr = cerr
	}
	return werr
}

// EncodeBlob renders the canonical (uncompressed) bytes of a campaign
// result under its key — the bytes the digest/ETag contract vouches
// for and that validation is defined over. Equal key ⇒ equal result ⇒
// equal bytes, which is what makes a blob immutable for its digest.
// Storage and the wire carry these bytes (or their bit-exact binary
// equivalent) inside the v2/v3 containers; see EncodeBlobV3.
func EncodeBlob(k Key, res *core.Result) ([]byte, error) {
	if res == nil {
		return nil, fmt.Errorf("store: nil result for %s", k)
	}
	var buf bytes.Buffer
	if _, err := writeCanonicalTo(&buf, k, res); err != nil {
		return nil, fmt.Errorf("store: encode %s: %w", k, err)
	}
	return buf.Bytes(), nil
}

// EncodeBlobCompressed renders the v2 container — gzip around the
// canonical bytes. Writers emit v3 now (EncodeBlobV3); this remains
// for the migration and conformance tests that plant legacy-generation
// blobs, and for any legacy peer that needs bytes it can parse.
// Deterministic for a given key and build (fixed gzip level, no gzip
// header metadata), so concurrent identical writers converge.
func EncodeBlobCompressed(k Key, res *core.Result) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := encodeBlobTo(&buf, k, res); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteCanonical writes a blob's canonical bytes into w: identity
// container bytes pass through verbatim, a v2 container is inflated
// through the codec's pooled readers under the usual canonical-size
// rail, and a v3 container is decoded and its canonical JSON rendered
// on the fly. The network daemon uses it to serve identity-only
// clients from whatever container the disk holds.
func WriteCanonical(w io.Writer, data []byte) error {
	switch ContainerOf(data) {
	case ContainerV3:
		res, k, err := decodeV3ForRender(data)
		if err != nil {
			return err
		}
		if _, err := writeCanonicalTo(w, k, res); err != nil {
			return fmt.Errorf("store: render blob: %w", err)
		}
		return nil
	case ContainerV2:
		r := bytes.NewReader(data)
		gz := gzipReaders.Get().(*gzip.Reader)
		if err := gz.Reset(r); err != nil {
			gzipReaders.Put(gz)
			return fmt.Errorf("store: inflate blob: %w", err)
		}
		gz.Multistream(false)
		buf := copyBufs.Get().(*[]byte)
		_, err := io.CopyBuffer(w, io.LimitReader(gz, maxCanonicalBytes), *buf)
		copyBufs.Put(buf)
		gz.Close()
		gzipReaders.Put(gz)
		if err != nil {
			return fmt.Errorf("store: inflate blob: %w", err)
		}
		return nil
	default:
		_, err := w.Write(data)
		return err
	}
}

// WriteCanonicalCompressed writes gzip(canonical bytes) — the v2
// container — into w from any disk container: v2 passes through
// verbatim, v1 deflates the canonical bytes, and v3 decodes and
// re-renders the canonical JSON straight through the pooled gzip
// writer. The daemon uses it to serve gzip-accepting legacy clients
// (which understand the canonical bytes under Content-Encoding: gzip,
// but not the v3 container) from a v3-era disk. Deterministic, so the
// response equals what EncodeBlobCompressed would produce.
func WriteCanonicalCompressed(w io.Writer, data []byte) error {
	switch ContainerOf(data) {
	case ContainerV2:
		_, err := w.Write(data)
		return err
	case ContainerV3:
		res, k, err := decodeV3ForRender(data)
		if err != nil {
			return err
		}
		gz := gzipWriters.Get().(*gzip.Writer)
		gz.Reset(w)
		_, rerr := writeCanonicalTo(gz, k, res)
		cerr := gz.Close()
		gzipWriters.Put(gz)
		if rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			return fmt.Errorf("store: render blob: %w", rerr)
		}
		return nil
	default:
		if err := gzipTo(w, data); err != nil {
			return fmt.Errorf("store: compress blob: %w", err)
		}
		return nil
	}
}

// decodeV3ForRender decodes a v3 container far enough to re-render its
// canonical form: the envelope key plus the decoded result.
func decodeV3ForRender(data []byte) (*core.Result, Key, error) {
	buf, err := inflateV3(data)
	if err != nil {
		return nil, Key{}, fmt.Errorf("store: inflate blob: %w", err)
	}
	b, _, derr := decodeV3Body(buf.Bytes())
	putDecodeBuf(buf)
	if derr != nil {
		return nil, Key{}, fmt.Errorf("store: decode blob: %w", derr)
	}
	return decodeResult(b.Result), Key{Digest: b.Digest, Profile: b.Profile, Instance: b.Instance}, nil
}

// copyBufs holds WriteCanonical's copy scratch.
var copyBufs = sync.Pool{New: func() any { b := make([]byte, 32<<10); return &b }}

// compressBlobBytes wraps already-canonical blob bytes in the v2
// container — the migration path that heals a v1 blob without
// re-encoding its payload.
func compressBlobBytes(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(len(data) / 3)
	if err := gzipTo(&buf, data); err != nil {
		return nil, fmt.Errorf("store: compress blob: %w", err)
	}
	return buf.Bytes(), nil
}

// decodePasses counts every full blob parse (any container) this
// process has performed. It exists for the single-validation pipeline
// contract: tests instrument it to prove that a warm remote Get
// decodes the wire bytes exactly once before they land in the local
// tier verbatim.
var decodePasses atomic.Int64

// DecodePasses returns the number of blob parses performed so far —
// an instrumentation hook, not an operational counter.
func DecodePasses() int64 { return decodePasses.Load() }

// parseBlob validates blob bytes in any container format against the
// digest they are stored (or addressed) under and returns the envelope
// plus the canonical byte count. A compressed container is inflated
// through a pooled gzip reader into a pooled scratch buffer — the full
// inflate-before-parse is what verifies the gzip CRC, so a truncated
// or bit-flipped stream whose prefix still deflates can never be
// served — and the JSON (v1/v2) or binary (v3) parse runs over that
// recycled buffer, keeping a warm decode's allocations proportional to
// the compressed size. Any mismatch — garbage JSON, a malformed binary
// section, a broken gzip stream or checksum, schema drift, a blob
// renamed onto the wrong digest, a truncated body, trailing garbage —
// wraps ErrInvalidBlob; callers treat it as a cache miss and
// recompute.
func parseBlob(data []byte, digest string) (b *storedBlob, rawBytes int64, cont Container, err error) {
	decodePasses.Add(1)
	invalid := func(cause error) error {
		return fmt.Errorf("store: blob %s: %w: %v", digest, ErrInvalidBlob, cause)
	}
	cont = ContainerOf(data)
	var canonical []byte
	switch cont {
	case ContainerV3:
		buf, ierr := inflateV3(data)
		if ierr != nil {
			return nil, 0, cont, invalid(ierr)
		}
		b, rawBytes, err = decodeV3Body(buf.Bytes())
		putDecodeBuf(buf)
		if err != nil {
			return nil, 0, cont, invalid(err)
		}
	case ContainerV2:
		r := bytes.NewReader(data)
		gz := gzipReaders.Get().(*gzip.Reader)
		if rerr := gz.Reset(r); rerr != nil {
			gzipReaders.Put(gz)
			return nil, 0, cont, invalid(rerr)
		}
		// Single-member containers only: in (the default) multistream
		// mode a second concatenated gzip member would be transparently
		// appended, letting arbitrary padding hide behind a valid
		// digest and breaking the container's byte determinism.
		gz.Multistream(false)
		buf := decodeBufs.Get().(*bytes.Buffer)
		buf.Reset()
		defer putDecodeBuf(buf)
		// ReadFrom drains the member to EOF, which forces the gzip
		// footer read and its CRC check. The limit turns a
		// decompression bomb into an invalid blob instead of an
		// allocation storm.
		_, rerr := buf.ReadFrom(io.LimitReader(gz, maxCanonicalBytes+1))
		gz.Close()
		gzipReaders.Put(gz)
		if rerr != nil {
			return nil, 0, cont, invalid(rerr)
		}
		if int64(buf.Len()) > maxCanonicalBytes {
			return nil, 0, cont, invalid(fmt.Errorf("inflates past %d bytes", maxCanonicalBytes))
		}
		// flate never reads past the final block and gzip reads exactly
		// the 8-byte trailer, so whatever remains in r is trailing data
		// after the container — reject it.
		if r.Len() != 0 {
			return nil, 0, cont, invalid(fmt.Errorf("%d trailing bytes after container", r.Len()))
		}
		canonical = buf.Bytes()
	default: // ContainerV1: the canonical bytes verbatim
		canonical = data
	}
	if cont != ContainerV3 {
		rawBytes = int64(len(canonical))
		// The identity container honours the same rail: an oversized
		// plain blob accepted here would be re-containered on the way
		// down and then trip the inflate limit on every read — the
		// store-then-self-delete loop Put also refuses.
		if rawBytes > maxCanonicalBytes {
			return nil, rawBytes, cont, invalid(fmt.Errorf("canonical size %d exceeds the %d-byte bound",
				rawBytes, maxCanonicalBytes))
		}
		b = new(storedBlob)
		if derr := json.Unmarshal(canonical, b); derr != nil {
			return nil, rawBytes, cont, invalid(derr)
		}
	}
	if b.Schema != SchemaVersion {
		return nil, rawBytes, cont, fmt.Errorf("store: blob %s: %w: schema %d, want %d",
			digest, ErrInvalidBlob, b.Schema, SchemaVersion)
	}
	if b.Digest != digest {
		return nil, rawBytes, cont, fmt.Errorf("store: %w: blob digest %s does not match key %s",
			ErrInvalidBlob, b.Digest, digest)
	}
	return b, rawBytes, cont, nil
}

// ValidateBlob parses and validates raw blob bytes — v1 (plain), v2
// (gzip) or v3 (binary) container alike — against a digest and returns
// the decoded result. The network client runs every response body
// through it, so a truncated or tampered transfer is a miss (and a
// recompute), never a wrong result. Callers that go on to store the
// bytes should use ValidateBlobBytes instead, which keeps the
// validated bytes and the decoded result together.
func ValidateBlob(data []byte, digest string) (*core.Result, error) {
	b, _, _, err := parseBlob(data, digest)
	if err != nil {
		return nil, err
	}
	return decodeResult(b.Result), nil
}
