package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"

	"golatest/internal/cluster"
	"golatest/internal/core"
	"golatest/internal/stats"
)

// f64 is a float64 that survives JSON: encoding/json rejects NaN and the
// infinities, but campaign results legitimately contain them (e.g. a
// Measurement.InjectedMs is NaN when the simulator could not attribute
// the injection, and an empty population summarises to NaN). Non-finite
// values encode as the strings "NaN", "+Inf" and "-Inf"; finite values
// encode as the shortest decimal that round-trips the exact bit pattern,
// so a decoded blob reproduces every sample bit for bit.
type f64 float64

func (f f64) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

func (f *f64) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		switch s {
		case "NaN":
			*f = f64(math.NaN())
		case "+Inf":
			*f = f64(math.Inf(1))
		case "-Inf":
			*f = f64(math.Inf(-1))
		default:
			return fmt.Errorf("store: invalid float string %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*f = f64(v)
	return nil
}

func toF64s(xs []float64) []f64 {
	if xs == nil {
		return nil
	}
	out := make([]f64, len(xs))
	for i, x := range xs {
		out[i] = f64(x)
	}
	return out
}

func fromF64s(xs []f64) []float64 {
	if xs == nil {
		return nil
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// The stored* types below are the on-disk schema, deliberately decoupled
// from the in-memory types: in-memory layouts may change freely, but any
// change that alters this schema (or the meaning of a stored field) MUST
// bump SchemaVersion so stale blobs read as misses instead of decoding
// into garbage. The only structural divergence from internal/core is
// Phase1's Stats: JSON objects cannot key on float64, so the map is
// flattened to a frequency-sorted slice (FreqStats carries its own
// FreqMHz, making the flattening lossless).

type storedBlob struct {
	Schema   int          `json:"schema"`
	Digest   string       `json:"digest"`
	Profile  string       `json:"profile"`
	Instance int          `json:"instance"`
	Result   storedResult `json:"result"`
}

type storedResult struct {
	DeviceName    string        `json:"device_name"`
	Architecture  string        `json:"architecture"`
	CaptureHintNs int64         `json:"capture_hint_ns"`
	Phase1        *storedPhase1 `json:"phase1,omitempty"`
	Pairs         []*storedPair `json:"pairs"`
}

type storedPhase1 struct {
	Stats      []storedFreqStats `json:"stats"`
	ValidPairs []core.Pair       `json:"valid_pairs"`
	Excluded   []core.Pair       `json:"excluded"`
	Unstable   []float64         `json:"unstable"`
}

type storedFreqStats struct {
	FreqMHz   float64 `json:"freq_mhz"`
	N         int     `json:"n"`
	Mean      f64     `json:"mean"`
	Std       f64     `json:"std"`
	Normalish bool    `json:"normalish"`
}

type storedPair struct {
	Pair                core.Pair           `json:"pair"`
	Measurements        []storedMeasurement `json:"measurements"`
	Samples             []f64               `json:"samples"`
	Injected            []f64               `json:"injected"`
	Attempts            int                 `json:"attempts"`
	Failures            int                 `json:"failures"`
	DiscardedByThrottle int                 `json:"discarded_by_throttle"`
	ThrottleEvents      int                 `json:"throttle_events"`
	Skipped             bool                `json:"skipped"`
	SkipReason          string              `json:"skip_reason,omitempty"`
	Kept                []f64               `json:"kept"`
	Outliers            []f64               `json:"outliers"`
	Clusters            *storedClusters     `json:"clusters,omitempty"`
	Summary             storedSummary       `json:"summary"`
	FinalRSE            f64                 `json:"final_rse"`
}

type storedMeasurement struct {
	Pair            core.Pair `json:"pair"`
	LatencyMs       f64       `json:"latency_ms"`
	TsDevNs         int64     `json:"ts_dev_ns"`
	TeDevNs         int64     `json:"te_dev_ns"`
	SM              int       `json:"sm"`
	TransitionIndex int       `json:"transition_index"`
	InjectedMs      f64       `json:"injected_ms"`
	SyncSpreadNs    int64     `json:"sync_spread_ns"`
}

type storedClusters struct {
	Labels      []int `json:"labels"`
	NumClusters int   `json:"num_clusters"`
	Eps         f64   `json:"eps"`
	MinPts      int   `json:"min_pts"`
}

type storedSummary struct {
	N      int `json:"n"`
	Mean   f64 `json:"mean"`
	Std    f64 `json:"std"`
	Min    f64 `json:"min"`
	Q05    f64 `json:"q05"`
	Q25    f64 `json:"q25"`
	Median f64 `json:"median"`
	Q75    f64 `json:"q75"`
	Q95    f64 `json:"q95"`
	Max    f64 `json:"max"`
}

func encodeResult(res *core.Result) storedResult {
	sr := storedResult{
		DeviceName:    res.DeviceName,
		Architecture:  res.Architecture,
		CaptureHintNs: res.CaptureHintNs,
	}
	if res.Phase1 != nil {
		p1 := &storedPhase1{
			ValidPairs: res.Phase1.ValidPairs,
			Excluded:   res.Phase1.Excluded,
			Unstable:   res.Phase1.Unstable,
		}
		for _, fs := range res.Phase1.Stats {
			p1.Stats = append(p1.Stats, storedFreqStats{
				FreqMHz:   fs.FreqMHz,
				N:         fs.Iter.N,
				Mean:      f64(fs.Iter.Mean),
				Std:       f64(fs.Iter.Std),
				Normalish: fs.Normalish,
			})
		}
		sort.Slice(p1.Stats, func(i, j int) bool { return p1.Stats[i].FreqMHz < p1.Stats[j].FreqMHz })
		sr.Phase1 = p1
	}
	for _, pr := range res.Pairs {
		if pr == nil {
			sr.Pairs = append(sr.Pairs, nil)
			continue
		}
		sp := &storedPair{
			Pair:                pr.Pair,
			Samples:             toF64s(pr.Samples),
			Injected:            toF64s(pr.Injected),
			Attempts:            pr.Attempts,
			Failures:            pr.Failures,
			DiscardedByThrottle: pr.DiscardedByThrottle,
			ThrottleEvents:      pr.ThrottleEvents,
			Skipped:             pr.Skipped,
			SkipReason:          pr.SkipReason,
			Kept:                toF64s(pr.Kept),
			Outliers:            toF64s(pr.Outliers),
			Summary:             encodeSummary(pr.Summary),
			FinalRSE:            f64(pr.FinalRSE),
		}
		for _, m := range pr.Measurements {
			sp.Measurements = append(sp.Measurements, storedMeasurement{
				Pair:            m.Pair,
				LatencyMs:       f64(m.LatencyMs),
				TsDevNs:         m.TsDevNs,
				TeDevNs:         m.TeDevNs,
				SM:              m.SM,
				TransitionIndex: m.TransitionIndex,
				InjectedMs:      f64(m.InjectedMs),
				SyncSpreadNs:    m.SyncSpreadNs,
			})
		}
		if pr.Clusters != nil {
			sp.Clusters = &storedClusters{
				Labels:      pr.Clusters.Labels,
				NumClusters: pr.Clusters.NumClusters,
				Eps:         f64(pr.Clusters.Eps),
				MinPts:      pr.Clusters.MinPts,
			}
		}
		sr.Pairs = append(sr.Pairs, sp)
	}
	return sr
}

func encodeSummary(s stats.Summary) storedSummary {
	return storedSummary{
		N: s.N, Mean: f64(s.Mean), Std: f64(s.Std), Min: f64(s.Min),
		Q05: f64(s.Q05), Q25: f64(s.Q25), Median: f64(s.Median),
		Q75: f64(s.Q75), Q95: f64(s.Q95), Max: f64(s.Max),
	}
}

func decodeSummary(s storedSummary) stats.Summary {
	return stats.Summary{
		N: s.N, Mean: float64(s.Mean), Std: float64(s.Std), Min: float64(s.Min),
		Q05: float64(s.Q05), Q25: float64(s.Q25), Median: float64(s.Median),
		Q75: float64(s.Q75), Q95: float64(s.Q95), Max: float64(s.Max),
	}
}

func decodeResult(sr storedResult) *core.Result {
	res := &core.Result{
		DeviceName:    sr.DeviceName,
		Architecture:  sr.Architecture,
		CaptureHintNs: sr.CaptureHintNs,
	}
	if sr.Phase1 != nil {
		p1 := &core.Phase1Result{
			Stats:      make(map[float64]core.FreqStats, len(sr.Phase1.Stats)),
			ValidPairs: sr.Phase1.ValidPairs,
			Excluded:   sr.Phase1.Excluded,
			Unstable:   sr.Phase1.Unstable,
		}
		for _, fs := range sr.Phase1.Stats {
			p1.Stats[fs.FreqMHz] = core.FreqStats{
				FreqMHz: fs.FreqMHz,
				Iter: stats.MeanStd{
					N:    fs.N,
					Mean: float64(fs.Mean),
					Std:  float64(fs.Std),
				},
				Normalish: fs.Normalish,
			}
		}
		res.Phase1 = p1
	}
	for _, sp := range sr.Pairs {
		if sp == nil {
			res.Pairs = append(res.Pairs, nil)
			continue
		}
		pr := &core.PairResult{
			Pair:                sp.Pair,
			Samples:             fromF64s(sp.Samples),
			Injected:            fromF64s(sp.Injected),
			Attempts:            sp.Attempts,
			Failures:            sp.Failures,
			DiscardedByThrottle: sp.DiscardedByThrottle,
			ThrottleEvents:      sp.ThrottleEvents,
			Skipped:             sp.Skipped,
			SkipReason:          sp.SkipReason,
			Kept:                fromF64s(sp.Kept),
			Outliers:            fromF64s(sp.Outliers),
			Summary:             decodeSummary(sp.Summary),
			FinalRSE:            float64(sp.FinalRSE),
		}
		for _, m := range sp.Measurements {
			pr.Measurements = append(pr.Measurements, core.Measurement{
				Pair:            m.Pair,
				LatencyMs:       float64(m.LatencyMs),
				TsDevNs:         m.TsDevNs,
				TeDevNs:         m.TeDevNs,
				SM:              m.SM,
				TransitionIndex: m.TransitionIndex,
				InjectedMs:      float64(m.InjectedMs),
				SyncSpreadNs:    m.SyncSpreadNs,
			})
		}
		if sp.Clusters != nil {
			pr.Clusters = &cluster.Result{
				Labels:      sp.Clusters.Labels,
				NumClusters: sp.Clusters.NumClusters,
				Eps:         float64(sp.Clusters.Eps),
				MinPts:      sp.Clusters.MinPts,
			}
		}
		res.Pairs = append(res.Pairs, pr)
	}
	return res
}

// ErrInvalidBlob marks bytes that are not a valid blob for the digest
// they were presented under: unparseable JSON, a foreign schema
// version, or a digest mismatch. It distinguishes "these bytes are
// garbage" (reject, recompute) from I/O failures; the network daemon
// maps it to 400 Bad Request.
var ErrInvalidBlob = errors.New("invalid blob")

// encodeBlob renders the versioned on-disk form of a campaign result.
func encodeBlob(k Key, res *core.Result) ([]byte, error) {
	b := storedBlob{
		Schema:   SchemaVersion,
		Digest:   k.Digest,
		Profile:  k.Profile,
		Instance: k.Instance,
		Result:   encodeResult(res),
	}
	return json.MarshalIndent(b, "", " ")
}

// EncodeBlob renders the canonical wire/disk bytes of a campaign result
// under its key — the payload the network layer ships verbatim. Equal
// key ⇒ equal result ⇒ equal bytes, which is what makes a blob
// immutable for its digest (the ETag contract).
func EncodeBlob(k Key, res *core.Result) ([]byte, error) {
	return encodeBlob(k, res)
}

// parseBlob validates data against the digest it is stored (or
// addressed) under and returns the envelope. Any mismatch — garbage
// JSON, schema drift, a blob renamed onto the wrong digest, a truncated
// body — wraps ErrInvalidBlob; callers treat it as a cache miss and
// recompute.
func parseBlob(data []byte, digest string) (*storedBlob, error) {
	var b storedBlob
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("store: blob %s: %w: %v", digest, ErrInvalidBlob, err)
	}
	if b.Schema != SchemaVersion {
		return nil, fmt.Errorf("store: blob %s: %w: schema %d, want %d",
			digest, ErrInvalidBlob, b.Schema, SchemaVersion)
	}
	if b.Digest != digest {
		return nil, fmt.Errorf("store: %w: blob digest %s does not match key %s",
			ErrInvalidBlob, b.Digest, digest)
	}
	return &b, nil
}

// ValidateBlob parses and validates raw blob bytes against a digest and
// returns the decoded result. The network client runs every response
// body through it, so a truncated or tampered transfer is a miss (and a
// recompute), never a wrong result.
func ValidateBlob(data []byte, digest string) (*core.Result, error) {
	b, err := parseBlob(data, digest)
	if err != nil {
		return nil, err
	}
	return decodeResult(b.Result), nil
}

// decodeBlob parses a blob and validates its envelope against the key it
// was looked up under.
func decodeBlob(data []byte, k Key) (*core.Result, error) {
	return ValidateBlob(data, k.Digest)
}
