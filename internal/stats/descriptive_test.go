package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestMeanEmptyIsNaN(t *testing.T) {
	if got := Mean(nil); !math.IsNaN(got) {
		t.Fatalf("Mean(nil) = %v, want NaN", got)
	}
}

func TestVarianceKnown(t *testing.T) {
	// Sample variance of {2,4,4,4,5,5,7,9} with divisor n-1 is 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEqual(got, want, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
}

func TestVarianceTooFewSamples(t *testing.T) {
	if got := Variance([]float64{1}); !math.IsNaN(got) {
		t.Fatalf("Variance of single sample = %v, want NaN", got)
	}
}

func TestStdErrMatchesDefinition(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	want := Stdev(xs) / math.Sqrt(6)
	if got := StdErr(xs); !almostEqual(got, want, 1e-15) {
		t.Fatalf("StdErr = %v, want %v", got, want)
	}
}

func TestRSEScaleInvariance(t *testing.T) {
	// RSE is invariant under positive scaling of the data.
	xs := []float64{10, 11, 9, 10.5, 9.5}
	scaled := make([]float64, len(xs))
	for i, x := range xs {
		scaled[i] = 1000 * x
	}
	if a, b := RSE(xs), RSE(scaled); !almostEqual(a, b, 1e-12) {
		t.Fatalf("RSE not scale invariant: %v vs %v", a, b)
	}
}

func TestRSEZeroMean(t *testing.T) {
	if got := RSE([]float64{-1, 1}); !math.IsInf(got, 1) {
		t.Fatalf("RSE with zero mean = %v, want +Inf", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = (%v, %v), want (-1, 7)", min, max)
	}
}

func TestMinMaxEmpty(t *testing.T) {
	min, max := MinMax(nil)
	if !math.IsNaN(min) || !math.IsNaN(max) {
		t.Fatalf("MinMax(nil) = (%v, %v), want NaNs", min, max)
	}
}

func TestQuantileMedianOdd(t *testing.T) {
	if got := Quantile([]float64{5, 1, 3}, 0.5); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
}

func TestQuantileMedianEvenInterpolates(t *testing.T) {
	if got := Quantile([]float64{1, 2, 3, 4}, 0.5); got != 2.5 {
		t.Fatalf("median = %v, want 2.5", got)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{9, 2, 5}
	if got := Quantile(xs, 0); got != 2 {
		t.Fatalf("q0 = %v, want 2", got)
	}
	if got := Quantile(xs, 1); got != 9 {
		t.Fatalf("q1 = %v, want 9", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated its input: %v", xs)
	}
}

func TestQuantileRange(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	got := QuantileRange(xs, 0.05, 0.95)
	if !almostEqual(got, 90, 1e-9) {
		t.Fatalf("QuantileRange = %v, want 90", got)
	}
}

func TestQuantileInvalidQ(t *testing.T) {
	if got := Quantile([]float64{1, 2}, 1.5); !math.IsNaN(got) {
		t.Fatalf("Quantile(q=1.5) = %v, want NaN", got)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		q1 = clamp01(q1)
		q2 = clamp01(q2)
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		lo := Quantile(xs, q1)
		hi := Quantile(xs, q2)
		min, max := MinMax(xs)
		return lo <= hi+1e-9 && lo >= min-1e-9 && hi <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Describe agrees with the two-pass Mean/Stdev implementations.
func TestDescribeMatchesTwoPassProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) < 2 {
			return true
		}
		ms := Describe(xs)
		return almostEqual(ms.Mean, Mean(xs), 1e-6*(1+math.Abs(Mean(xs)))) &&
			almostEqual(ms.Std, Stdev(xs), 1e-6*(1+Stdev(xs)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies within [min, max].
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		lo, hi := MinMax(xs)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorMatchesDescribe(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
	}
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	got := acc.MeanStd()
	want := Describe(xs)
	if !almostEqual(got.Mean, want.Mean, 1e-9) || !almostEqual(got.Std, want.Std, 1e-9) {
		t.Fatalf("Accumulator = %+v, Describe = %+v", got, want)
	}
}

func TestAccumulatorMerge(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	xs := make([]float64, 501)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	var whole, left, right Accumulator
	for i, x := range xs {
		whole.Add(x)
		if i < 200 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(&right)
	a, b := left.MeanStd(), whole.MeanStd()
	if a.N != b.N || !almostEqual(a.Mean, b.Mean, 1e-9) || !almostEqual(a.Std, b.Std, 1e-9) {
		t.Fatalf("merged = %+v, whole = %+v", a, b)
	}
}

func TestAccumulatorMergeEmpty(t *testing.T) {
	var a, b Accumulator
	a.Add(1)
	a.Add(3)
	a.Merge(&b) // merging empty must be a no-op
	if got := a.MeanStd(); got.N != 2 || got.Mean != 2 {
		t.Fatalf("merge with empty changed state: %+v", got)
	}
	b.Merge(&a) // merging into empty adopts the other
	if got := b.MeanStd(); got.N != 2 || got.Mean != 2 {
		t.Fatalf("empty.Merge(full) = %+v", got)
	}
}

func TestMeanStdTwoSigmaBounds(t *testing.T) {
	m := MeanStd{N: 100, Mean: 10, Std: 2}
	lo, hi := m.TwoSigmaBounds()
	if lo != 6 || hi != 14 {
		t.Fatalf("TwoSigmaBounds = (%v, %v), want (6, 14)", lo, hi)
	}
	if !m.Contains(13.9, 2) || m.Contains(14.1, 2) {
		t.Fatal("Contains disagrees with TwoSigmaBounds")
	}
}

func TestMeanStdDegenerate(t *testing.T) {
	m := Describe(nil)
	if m.N != 0 || !math.IsNaN(m.Mean) || !math.IsNaN(m.Std) {
		t.Fatalf("Describe(nil) = %+v", m)
	}
	m = Describe([]float64{5})
	if m.N != 1 || m.Mean != 5 || !math.IsNaN(m.Std) {
		t.Fatalf("Describe({5}) = %+v", m)
	}
}

// sanitize maps arbitrary quick-generated floats into a well-behaved
// bounded range, discarding NaNs and infinities.
func sanitize(raw []float64) []float64 {
	xs := make([]float64, 0, len(raw))
	for _, x := range raw {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		// Fold huge magnitudes into [-1e6, 1e6] to avoid overflow noise.
		xs = append(xs, math.Mod(x, 1e6))
	}
	return xs
}

func clamp01(q float64) float64 {
	if math.IsNaN(q) {
		return 0.5
	}
	q = math.Abs(math.Mod(q, 1))
	return q
}
