package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestIntervalContains(t *testing.T) {
	iv := Interval{-1, 2}
	if !iv.Contains(0) || !iv.Contains(-1) || !iv.Contains(2) {
		t.Fatal("endpoints/interior not contained")
	}
	if iv.Contains(2.001) || iv.Contains(-1.001) {
		t.Fatal("points outside reported as contained")
	}
	if !iv.ContainsZero() {
		t.Fatal("ContainsZero false for [-1,2]")
	}
	if (Interval{1, 2}).ContainsZero() {
		t.Fatal("ContainsZero true for [1,2]")
	}
	if got := iv.Width(); got != 3 {
		t.Fatalf("Width = %v, want 3", got)
	}
}

func TestMeanCICoversTrueMean(t *testing.T) {
	// Draw many samples from N(50, 4) and verify the 95 % CI covers the
	// true mean at roughly the nominal rate.
	rng := rand.New(rand.NewPCG(10, 20))
	const trials = 400
	covered := 0
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 40)
		for i := range xs {
			xs[i] = 50 + 2*rng.NormFloat64()
		}
		if MeanCI(Describe(xs), 0.95).Contains(50) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.90 || rate > 0.99 {
		t.Fatalf("95%% CI coverage rate = %v, want ≈0.95", rate)
	}
}

func TestMeanCISymmetricAroundMean(t *testing.T) {
	m := MeanStd{N: 25, Mean: 7, Std: 1.5}
	iv := MeanCI(m, 0.95)
	if !almostEqual(iv.Lo+iv.Hi, 14, 1e-9) {
		t.Fatalf("CI not centred on mean: %+v", iv)
	}
}

func TestMeanCIDegenerate(t *testing.T) {
	iv := MeanCI(MeanStd{N: 1, Mean: 3, Std: math.NaN()}, 0.95)
	if !math.IsNaN(iv.Lo) || !math.IsNaN(iv.Hi) {
		t.Fatalf("CI for single sample = %+v, want NaNs", iv)
	}
}

func TestMeanDiffCISeparatesDistinctMeans(t *testing.T) {
	a := MeanStd{N: 500, Mean: 100, Std: 3}
	b := MeanStd{N: 500, Mean: 90, Std: 3}
	iv := MeanDiffCI(a, b, 0.95)
	if iv.ContainsZero() {
		t.Fatalf("clearly distinct means produced CI containing zero: %+v", iv)
	}
	if iv.Lo > 10 || iv.Hi < 10 {
		t.Fatalf("CI %+v does not cover the true difference 10", iv)
	}
}

func TestMeanDiffCIOverlappingMeans(t *testing.T) {
	a := MeanStd{N: 30, Mean: 100.01, Std: 5}
	b := MeanStd{N: 30, Mean: 100.00, Std: 5}
	if iv := MeanDiffCI(a, b, 0.95); !iv.ContainsZero() {
		t.Fatalf("indistinguishable means produced CI excluding zero: %+v", iv)
	}
}

// Property: swapping the operands mirrors the difference interval.
func TestMeanDiffCIAntisymmetryProperty(t *testing.T) {
	f := func(m1, m2, s1, s2 float64) bool {
		a := MeanStd{N: 50, Mean: math.Mod(m1, 100), Std: 0.1 + math.Abs(math.Mod(s1, 10))}
		b := MeanStd{N: 60, Mean: math.Mod(m2, 100), Std: 0.1 + math.Abs(math.Mod(s2, 10))}
		if math.IsNaN(a.Mean) || math.IsNaN(b.Mean) || math.IsNaN(a.Std) || math.IsNaN(b.Std) {
			return true
		}
		ab := MeanDiffCI(a, b, 0.95)
		ba := MeanDiffCI(b, a, 0.95)
		return almostEqual(ab.Lo, -ba.Hi, 1e-9) && almostEqual(ab.Hi, -ba.Lo, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWelchTTestDetectsDifference(t *testing.T) {
	a := MeanStd{N: 1000, Mean: 10.0, Std: 0.5}
	b := MeanStd{N: 1000, Mean: 10.2, Std: 0.5}
	res := WelchTTest(a, b, 0.05)
	if !res.Significant(0.05) {
		t.Fatalf("difference of 0.4σ over 1000 samples not significant: %+v", res)
	}
	if res.Diff >= 0 {
		t.Fatalf("Diff = %v, want negative (a < b)", res.Diff)
	}
}

func TestWelchTTestAcceptsEqualMeans(t *testing.T) {
	a := MeanStd{N: 20, Mean: 5, Std: 1}
	b := MeanStd{N: 20, Mean: 5, Std: 1}
	res := WelchTTest(a, b, 0.05)
	if res.Significant(0.05) {
		t.Fatalf("identical summaries rejected: %+v", res)
	}
	if !almostEqual(res.PValue, 1, 1e-9) {
		t.Fatalf("p-value for zero difference = %v, want 1", res.PValue)
	}
}

func TestWelchTTestFalsePositiveRate(t *testing.T) {
	// Under H0 the rejection rate at alpha=0.05 must be ≈5 %.
	rng := rand.New(rand.NewPCG(31, 7))
	const trials = 500
	rejects := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 30)
		ys := make([]float64, 30)
		for j := range xs {
			xs[j] = rng.NormFloat64()
			ys[j] = rng.NormFloat64()
		}
		if WelchTTest(Describe(xs), Describe(ys), 0.05).Significant(0.05) {
			rejects++
		}
	}
	rate := float64(rejects) / trials
	if rate > 0.10 {
		t.Fatalf("false-positive rate %v too high", rate)
	}
}

func TestWelchTTestZeroVariance(t *testing.T) {
	a := MeanStd{N: 10, Mean: 1, Std: 0}
	b := MeanStd{N: 10, Mean: 2, Std: 0}
	res := WelchTTest(a, b, 0.05)
	if res.PValue != 0 {
		t.Fatalf("distinct constant samples: p = %v, want 0", res.PValue)
	}
	c := MeanStd{N: 10, Mean: 1, Std: 0}
	res = WelchTTest(a, c, 0.05)
	if res.PValue != 1 {
		t.Fatalf("identical constant samples: p = %v, want 1", res.PValue)
	}
}

func TestZTestMatchesWelchForLargeN(t *testing.T) {
	a := MeanStd{N: 5000, Mean: 20, Std: 2}
	b := MeanStd{N: 5000, Mean: 20.1, Std: 2}
	zt := ZTest(a, b, 0.05)
	wt := WelchTTest(a, b, 0.05)
	if !almostEqual(zt.PValue, wt.PValue, 1e-3) {
		t.Fatalf("z-test p=%v vs t-test p=%v diverge at large n", zt.PValue, wt.PValue)
	}
}

func TestZTestInsufficientSamples(t *testing.T) {
	res := ZTest(MeanStd{N: 1}, MeanStd{N: 5, Mean: 1, Std: 1}, 0.05)
	if !math.IsNaN(res.PValue) {
		t.Fatalf("z-test with n=1 produced p=%v, want NaN", res.PValue)
	}
	if res.Significant(0.05) {
		t.Fatal("NaN result must never be significant")
	}
}

// Property: the Welch CI and the test decision agree — zero is outside the
// (1−alpha) difference CI exactly when p < alpha (up to FP tolerance at
// the decision boundary).
func TestWelchDecisionConsistencyProperty(t *testing.T) {
	f := func(dm, s1, s2 float64) bool {
		a := MeanStd{N: 40, Mean: 10, Std: 0.5 + math.Abs(math.Mod(s1, 3))}
		b := MeanStd{N: 55, Mean: 10 + math.Mod(dm, 5), Std: 0.5 + math.Abs(math.Mod(s2, 3))}
		if math.IsNaN(a.Std) || math.IsNaN(b.Std) || math.IsNaN(b.Mean) {
			return true
		}
		res := WelchTTest(a, b, 0.05)
		// Skip razor-edge cases where FP noise flips the decision.
		if math.Abs(res.PValue-0.05) < 1e-3 {
			return true
		}
		return res.Significant(0.05) == !res.DiffCI.ContainsZero()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
