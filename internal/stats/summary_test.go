package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("Summarize = %+v", s)
	}
	if s.Q25 != 2 || s.Q75 != 4 {
		t.Fatalf("quartiles = (%v, %v), want (2, 4)", s.Q25, s.Q75)
	}
	if s.IQR() != 2 {
		t.Fatalf("IQR = %v, want 2", s.IQR())
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || !math.IsNaN(s.Mean) || !math.IsNaN(s.Max) {
		t.Fatalf("Summarize(nil) = %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	str := s.String()
	if !strings.Contains(str, "n=3") || !strings.Contains(str, "mean=2.000") {
		t.Fatalf("String() = %q", str)
	}
}

// Property: the five-number summary is ordered
// min ≤ q05 ≤ q25 ≤ median ≤ q75 ≤ q95 ≤ max.
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		vals := []float64{s.Min, s.Q05, s.Q25, s.Median, s.Q75, s.Q95, s.Max}
		for i := 1; i < len(vals); i++ {
			if vals[i] < vals[i-1]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram([]float64{0.5, 1.5, 1.6, 2.5, -1, 10}, 0, 3, 3)
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("Under=%d Over=%d, want 1,1", h.Under, h.Over)
	}
	want := []int{1, 2, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("Counts = %v, want %v", h.Counts, want)
		}
	}
	if h.Total() != 4 {
		t.Fatalf("Total = %d, want 4", h.Total())
	}
	if h.Mode() != 1 {
		t.Fatalf("Mode = %d, want 1", h.Mode())
	}
	if got := h.BinCenter(0); got != 0.5 {
		t.Fatalf("BinCenter(0) = %v, want 0.5", got)
	}
}

func TestHistogramEdgeValueGoesToOver(t *testing.T) {
	h := NewHistogram([]float64{3}, 0, 3, 3)
	if h.Over != 1 || h.Total() != 0 {
		t.Fatalf("value at hi edge: Over=%d Total=%d", h.Over, h.Total())
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]float64{1, 2}, 5, 5, 3) // hi == lo
	if len(h.Counts) != 0 {
		t.Fatalf("degenerate histogram has bins: %v", h.Counts)
	}
	if h.Mode() != -1 {
		t.Fatalf("Mode of empty histogram = %d, want -1", h.Mode())
	}
}

// Property: every in-range sample lands in exactly one bin.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		h := NewHistogram(xs, -1000, 1000, 16)
		return h.Total()+h.Under+h.Over == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
