package stats

import "math"

// Interval is a closed interval [Lo, Hi] on the real line.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// ContainsZero reports whether the interval straddles zero — the paper's
// pair-exclusion criterion (phase 1) and transition-confirmation test
// (phase 3) both ask this of a mean-difference interval.
func (iv Interval) ContainsZero() bool { return iv.Contains(0) }

// Width returns Hi − Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// MeanCI returns the two-sided confidence interval of the population mean
// from the sample summary m, using the Student-t critical value for the
// sample's degrees of freedom.
func MeanCI(m MeanStd, confidence float64) Interval {
	se := m.StdErr()
	if math.IsNaN(se) {
		return Interval{math.NaN(), math.NaN()}
	}
	t := TCritical(float64(m.N-1), confidence)
	return Interval{m.Mean - t*se, m.Mean + t*se}
}

// MeanDiffCI returns the Welch confidence interval of μa − μb.
// The LATEST phase-1 pair filter keeps pair (a, b) only when this interval
// does not contain zero, i.e. the two frequencies are statistically
// distinguishable from iteration timings alone.
func MeanDiffCI(a, b MeanStd, confidence float64) Interval {
	if a.N < 2 || b.N < 2 {
		return Interval{math.NaN(), math.NaN()}
	}
	va := a.Std * a.Std / float64(a.N)
	vb := b.Std * b.Std / float64(b.N)
	se := math.Sqrt(va + vb)
	df := welchDF(a, b)
	t := TCritical(df, confidence)
	d := a.Mean - b.Mean
	return Interval{d - t*se, d + t*se}
}

// welchDF is the Welch–Satterthwaite effective degrees of freedom.
func welchDF(a, b MeanStd) float64 {
	va := a.Std * a.Std / float64(a.N)
	vb := b.Std * b.Std / float64(b.N)
	num := (va + vb) * (va + vb)
	den := va*va/float64(a.N-1) + vb*vb/float64(b.N-1)
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}

// TestResult carries the outcome of a two-sample location test.
type TestResult struct {
	Statistic float64 // t (or z) statistic
	DF        float64 // effective degrees of freedom (Inf for z-test)
	PValue    float64 // two-sided p-value
	Diff      float64 // estimated mean difference μa − μb
	DiffCI    Interval
}

// Significant reports whether the null hypothesis of equal means is
// rejected at the given significance level alpha.
func (r TestResult) Significant(alpha float64) bool {
	return !math.IsNaN(r.PValue) && r.PValue < alpha
}

// WelchTTest performs Welch's unequal-variance t-test of H0: μa = μb and
// also reports the (1−alpha) confidence interval of the difference.
func WelchTTest(a, b MeanStd, alpha float64) TestResult {
	if a.N < 2 || b.N < 2 {
		return TestResult{Statistic: math.NaN(), PValue: math.NaN(),
			Diff: math.NaN(), DiffCI: Interval{math.NaN(), math.NaN()}}
	}
	va := a.Std * a.Std / float64(a.N)
	vb := b.Std * b.Std / float64(b.N)
	se := math.Sqrt(va + vb)
	diff := a.Mean - b.Mean
	df := welchDF(a, b)
	var t, p float64
	if se == 0 {
		if diff == 0 {
			t, p = 0, 1
		} else {
			t, p = math.Inf(sign(diff)), 0
		}
	} else {
		t = diff / se
		p = 2 * (1 - StudentTCDF(math.Abs(t), df))
	}
	return TestResult{
		Statistic: t,
		DF:        df,
		PValue:    p,
		Diff:      diff,
		DiffCI:    MeanDiffCI(a, b, 1-alpha),
	}
}

// ZTest performs the large-sample z-test of H0: μa = μb. The paper lists
// it alongside the t-test as an acceptable phase-1 null-hypothesis test;
// it is appropriate here because phase-1 populations contain thousands of
// iterations per frequency.
func ZTest(a, b MeanStd, alpha float64) TestResult {
	if a.N < 2 || b.N < 2 {
		return TestResult{Statistic: math.NaN(), PValue: math.NaN(),
			Diff: math.NaN(), DiffCI: Interval{math.NaN(), math.NaN()}}
	}
	va := a.Std * a.Std / float64(a.N)
	vb := b.Std * b.Std / float64(b.N)
	se := math.Sqrt(va + vb)
	diff := a.Mean - b.Mean
	var z, p float64
	if se == 0 {
		if diff == 0 {
			z, p = 0, 1
		} else {
			z, p = math.Inf(sign(diff)), 0
		}
	} else {
		z = diff / se
		p = 2 * (1 - NormalCDF(math.Abs(z)))
	}
	zc := ZCritical(1 - alpha)
	return TestResult{
		Statistic: z,
		DF:        math.Inf(1),
		PValue:    p,
		Diff:      diff,
		DiffCI:    Interval{diff - zc*se, diff + zc*se},
	}
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}
