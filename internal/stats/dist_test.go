package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{1, 0.8413447461},
		{-2.5, 0.0062096653},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !almostEqual(got, c.want, 1e-8) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963985},
		{0.025, -1.959963985},
		{0.995, 2.575829304},
		{0.8413447461, 1},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); !almostEqual(got, c.want, 1e-7) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileBoundaries(t *testing.T) {
	if got := NormalQuantile(0); !math.IsInf(got, -1) {
		t.Fatalf("NormalQuantile(0) = %v, want -Inf", got)
	}
	if got := NormalQuantile(1); !math.IsInf(got, 1) {
		t.Fatalf("NormalQuantile(1) = %v, want +Inf", got)
	}
	if got := NormalQuantile(-0.1); !math.IsNaN(got) {
		t.Fatalf("NormalQuantile(-0.1) = %v, want NaN", got)
	}
}

// Property: NormalQuantile inverts NormalCDF across the usable range.
func TestNormalQuantileRoundTripProperty(t *testing.T) {
	f := func(seed float64) bool {
		p := clamp01(seed)
		if p < 1e-6 || p > 1-1e-6 {
			return true
		}
		x := NormalQuantile(p)
		return almostEqual(NormalCDF(x), p, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestZCritical95(t *testing.T) {
	if got := ZCritical(0.95); !almostEqual(got, 1.959963985, 1e-7) {
		t.Fatalf("ZCritical(0.95) = %v", got)
	}
}

func TestTCriticalAgainstTables(t *testing.T) {
	// Reference values from standard t tables (two-sided, 95 %).
	cases := []struct {
		df   float64
		want float64
		tol  float64
	}{
		{5, 2.571, 0.03},
		{10, 2.228, 0.01},
		{30, 2.042, 0.005},
		{100, 1.984, 0.002},
		{1000, 1.962, 0.001},
	}
	for _, c := range cases {
		if got := TCritical(c.df, 0.95); !almostEqual(got, c.want, c.tol) {
			t.Errorf("TCritical(%v, 0.95) = %v, want %v±%v", c.df, got, c.want, c.tol)
		}
	}
}

func TestTCriticalConvergesToZ(t *testing.T) {
	z := ZCritical(0.99)
	tc := TCritical(1e6, 0.99)
	if !almostEqual(z, tc, 1e-4) {
		t.Fatalf("TCritical(1e6) = %v, ZCritical = %v", tc, z)
	}
}

func TestStudentTCDFSymmetry(t *testing.T) {
	for _, df := range []float64{3, 10, 50} {
		for _, x := range []float64{0.3, 1.1, 2.7} {
			a := StudentTCDF(x, df)
			b := StudentTCDF(-x, df)
			if !almostEqual(a+b, 1, 1e-10) {
				t.Errorf("CDF(%v)+CDF(-%v) = %v for df=%v", x, x, a+b, df)
			}
		}
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// t=2.228, df=10 is the two-sided 95 % critical point:
	// CDF must be 0.975.
	if got := StudentTCDF(2.228, 10); !almostEqual(got, 0.975, 5e-4) {
		t.Fatalf("StudentTCDF(2.228, 10) = %v, want 0.975", got)
	}
	if got := StudentTCDF(0, 7); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("StudentTCDF(0, 7) = %v, want 0.5", got)
	}
}

func TestStudentTCDFConvergesToNormal(t *testing.T) {
	for _, x := range []float64{-2, -0.5, 0.7, 1.9} {
		tv := StudentTCDF(x, 1e5)
		nv := NormalCDF(x)
		if !almostEqual(tv, nv, 1e-4) {
			t.Errorf("StudentTCDF(%v, 1e5) = %v, NormalCDF = %v", x, tv, nv)
		}
	}
}

// Property: the t CDF is monotone non-decreasing in its argument.
func TestStudentTCDFMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		a = math.Mod(a, 50)
		b = math.Mod(b, 50)
		if a > b {
			a, b = b, a
		}
		return StudentTCDF(a, 8) <= StudentTCDF(b, 8)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStudentTCDFInfinities(t *testing.T) {
	if got := StudentTCDF(math.Inf(1), 5); got != 1 {
		t.Fatalf("CDF(+Inf) = %v", got)
	}
	if got := StudentTCDF(math.Inf(-1), 5); got != 0 {
		t.Fatalf("CDF(-Inf) = %v", got)
	}
}
