package stats

import "math"

// MeanStd bundles the sufficient statistics the methodology carries
// between phases: sample count, mean, and sample standard deviation.
// Phase 1 produces one MeanStd per characterised frequency; phase 3
// compares fresh iteration populations against it.
type MeanStd struct {
	N    int
	Mean float64
	Std  float64
}

// Describe computes the MeanStd of xs in a single pass (Welford's
// algorithm, numerically stable for the microsecond-scale timings with
// nanosecond noise the simulator produces).
func Describe(xs []float64) MeanStd {
	var (
		n    int
		mean float64
		m2   float64
	)
	for _, x := range xs {
		n++
		delta := x - mean
		mean += delta / float64(n)
		m2 += delta * (x - mean)
	}
	ms := MeanStd{N: n, Mean: mean}
	switch {
	case n == 0:
		ms.Mean = math.NaN()
		ms.Std = math.NaN()
	case n == 1:
		ms.Std = math.NaN()
	default:
		ms.Std = math.Sqrt(m2 / float64(n-1))
	}
	return ms
}

// StdErr returns the standard error of the mean, Std/√N.
func (m MeanStd) StdErr() float64 {
	if m.N < 2 {
		return math.NaN()
	}
	return m.Std / math.Sqrt(float64(m.N))
}

// RSE returns the relative standard error of the mean.
func (m MeanStd) RSE() float64 {
	se := m.StdErr()
	if math.IsNaN(se) {
		return math.NaN()
	}
	if m.Mean == 0 {
		return math.Inf(1)
	}
	return se / math.Abs(m.Mean)
}

// TwoSigmaBounds returns the (mean − 2σ, mean + 2σ) acceptance band the
// accelerator methodology uses in place of FTaLaT's confidence interval
// (§V-A): roughly 95 % of individual iteration times fall inside it when
// the population is approximately normal.
func (m MeanStd) TwoSigmaBounds() (lo, hi float64) {
	return m.Mean - 2*m.Std, m.Mean + 2*m.Std
}

// SigmaBounds generalises TwoSigmaBounds to an arbitrary multiple k.
func (m MeanStd) SigmaBounds(k float64) (lo, hi float64) {
	return m.Mean - k*m.Std, m.Mean + k*m.Std
}

// Contains reports whether x lies within k standard deviations of the
// mean. This is the phase-3 per-iteration acceptance predicate.
func (m MeanStd) Contains(x, k float64) bool {
	return math.Abs(x-m.Mean) <= k*m.Std
}

// Accumulator incrementally builds a MeanStd. It exists for the hot
// per-SM scan in phase 3, which must fold thousands of iteration timings
// without materialising intermediate slices.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N reports the number of observations added so far.
func (a *Accumulator) N() int { return a.n }

// MeanStd freezes the accumulator into a MeanStd snapshot.
func (a *Accumulator) MeanStd() MeanStd {
	ms := MeanStd{N: a.n, Mean: a.mean}
	switch {
	case a.n == 0:
		ms.Mean = math.NaN()
		ms.Std = math.NaN()
	case a.n == 1:
		ms.Std = math.NaN()
	default:
		ms.Std = math.Sqrt(a.m2 / float64(a.n-1))
	}
	return ms
}

// MomentAccumulator extends Accumulator to the third and fourth central
// moments, so the streaming kernel-statistics path can run the phase-1
// normality diagnostic (skewness/kurtosis) without materialising the
// iteration population. Updates follow Pébay's one-pass formulas; the
// mean/M2 recurrences are identical to Accumulator's, so Mean and Std
// match Describe bit-for-bit over the same input order.
type MomentAccumulator struct {
	n          int
	mean       float64
	m2, m3, m4 float64
}

// Add folds one observation into the accumulator.
func (a *MomentAccumulator) Add(x float64) {
	n1 := float64(a.n)
	a.n++
	n := float64(a.n)
	delta := x - a.mean
	dn := delta / n
	dn2 := dn * dn
	term1 := delta * dn * n1
	a.mean += dn
	a.m4 += term1*dn2*(n*n-3*n+3) + 6*dn2*a.m2 - 4*dn*a.m3
	a.m3 += term1*dn*(n-2) - 3*dn*a.m2
	a.m2 += term1
}

// N reports the number of observations added so far.
func (a *MomentAccumulator) N() int { return a.n }

// Reset returns the accumulator to its empty state so callers can reuse
// one allocation across kernels.
func (a *MomentAccumulator) Reset() { *a = MomentAccumulator{} }

// MeanStd freezes the accumulator into a MeanStd snapshot.
func (a *MomentAccumulator) MeanStd() MeanStd {
	ms := MeanStd{N: a.n, Mean: a.mean}
	switch {
	case a.n == 0:
		ms.Mean = math.NaN()
		ms.Std = math.NaN()
	case a.n == 1:
		ms.Std = math.NaN()
	default:
		ms.Std = math.Sqrt(a.m2 / float64(a.n-1))
	}
	return ms
}

// Skewness returns the sample skewness (g1), or NaN for n < 3 or zero
// variance, matching the slice-based Skewness convention.
func (a *MomentAccumulator) Skewness() float64 {
	if a.n < 3 || a.m2 == 0 {
		return math.NaN()
	}
	n := float64(a.n)
	return math.Sqrt(n) * a.m3 / math.Pow(a.m2, 1.5)
}

// ExcessKurtosis returns the sample excess kurtosis (g2), or NaN for
// n < 4 or zero variance, matching the slice-based convention.
func (a *MomentAccumulator) ExcessKurtosis() float64 {
	if a.n < 4 || a.m2 == 0 {
		return math.NaN()
	}
	n := float64(a.n)
	return n*a.m4/(a.m2*a.m2) - 3
}

// Merge combines another accumulator into this one (parallel reduction of
// per-SM partial statistics; Chan et al. parallel variance formula).
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	na, nb := float64(a.n), float64(b.n)
	delta := b.mean - a.mean
	total := na + nb
	a.mean += delta * nb / total
	a.m2 += b.m2 + delta*delta*na*nb/total
	a.n += b.n
}
