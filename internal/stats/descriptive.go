// Package stats implements the statistical machinery the LATEST
// methodology depends on: descriptive estimators (mean, sample standard
// deviation, standard error of the mean), normal and Student-t confidence
// intervals, Welch's two-sample test, mean-difference bounds, relative
// standard error, and quantile utilities.
//
// Everything operates on float64 slices and is allocation-conscious: the
// phase-3 evaluation scans millions of iteration timings per campaign.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (divisor n-1) of xs.
// It returns NaN for fewer than two samples.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	mean := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return ss / float64(n-1)
}

// Stdev returns the sample standard deviation of xs (NaN for n < 2).
func Stdev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean, σ/√n — the σ0 of the
// paper's equation (2). NaN for n < 2.
func StdErr(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	return Stdev(xs) / math.Sqrt(float64(len(xs)))
}

// RSE returns the relative standard error StdErr/|Mean| used by the
// benchmark's stopping rule (§VI: stop once RSE < threshold).
// It returns +Inf when the mean is zero and NaN for n < 2.
func RSE(xs []float64) float64 {
	m := Mean(xs)
	se := StdErr(xs)
	if math.IsNaN(se) {
		return math.NaN()
	}
	if m == 0 {
		return math.Inf(1)
	}
	return se / math.Abs(m)
}

// MinMax returns the smallest and largest element of xs.
// It returns (NaN, NaN) for an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the numpy default).
// xs need not be sorted; the function does not modify it.
// It returns NaN for an empty slice or q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// QuantileSorted is Quantile for data already in ascending order,
// avoiding the copy and sort. Behaviour is undefined for unsorted input.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// QuantileRange returns Quantile(xs, hi) − Quantile(xs, lo); the paper's
// Algorithm 3 uses the 0.05–0.95 range to derive the DBSCAN eps.
func QuantileRange(xs []float64, lo, hi float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, hi) - quantileSorted(sorted, lo)
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }
