package stats

import "math"

// The accelerator methodology leans on approximate normality twice: the
// 2σ acceptance band "assuming the execution time distribution
// approximates a normal distribution" (§V-A) and the z/t tests of
// phase 1. This file provides the Jarque–Bera moment diagnostic so the
// runner can warn when a population is too skewed or heavy-tailed for
// those assumptions to hold.

// Skewness returns the sample skewness (g1) of xs, or NaN for n < 3 or
// zero variance.
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return math.NaN()
	}
	mean := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - mean
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return math.NaN()
	}
	return m3 / math.Pow(m2, 1.5)
}

// ExcessKurtosis returns the sample excess kurtosis (g2) of xs, or NaN
// for n < 4 or zero variance.
func ExcessKurtosis(xs []float64) float64 {
	n := float64(len(xs))
	if n < 4 {
		return math.NaN()
	}
	mean := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - mean
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return math.NaN()
	}
	return m4/(m2*m2) - 3
}

// JarqueBera computes the Jarque–Bera statistic of xs:
//
//	JB = n/6 · (g1² + g2²/4)
//
// which is asymptotically χ²(2) under normality. The returned p-value
// uses the χ²(2) closed form exp(−JB/2).
func JarqueBera(xs []float64) (statistic, pValue float64) {
	n := float64(len(xs))
	if n < 8 {
		return math.NaN(), math.NaN()
	}
	g1 := Skewness(xs)
	g2 := ExcessKurtosis(xs)
	if math.IsNaN(g1) || math.IsNaN(g2) {
		return math.NaN(), math.NaN()
	}
	jb := n / 6 * (g1*g1 + g2*g2/4)
	return jb, math.Exp(-jb / 2)
}

// ApproximatelyNormal reports whether xs is consistent with normality at
// the given significance level (the null hypothesis of normality is NOT
// rejected). It errs permissive on small samples, where the methodology's
// bands are dominated by other error sources anyway.
func ApproximatelyNormal(xs []float64, alpha float64) bool {
	_, p := JarqueBera(xs)
	if math.IsNaN(p) {
		return true
	}
	return p >= alpha
}
