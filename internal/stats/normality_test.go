package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func normals(n int, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, 1))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 10 + 2*rng.NormFloat64()
	}
	return xs
}

func exponentials(n int, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, 2))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	return xs
}

func TestSkewnessSymmetricNearZero(t *testing.T) {
	if got := Skewness(normals(20000, 3)); math.Abs(got) > 0.05 {
		t.Fatalf("normal skewness = %v, want ≈0", got)
	}
}

func TestSkewnessRightSkewPositive(t *testing.T) {
	if got := Skewness(exponentials(20000, 4)); got < 1.5 {
		t.Fatalf("exponential skewness = %v, want ≈2", got)
	}
}

func TestExcessKurtosis(t *testing.T) {
	if got := ExcessKurtosis(normals(40000, 5)); math.Abs(got) > 0.15 {
		t.Fatalf("normal excess kurtosis = %v, want ≈0", got)
	}
	if got := ExcessKurtosis(exponentials(40000, 6)); got < 4 {
		t.Fatalf("exponential excess kurtosis = %v, want ≈6", got)
	}
}

func TestMomentsDegenerate(t *testing.T) {
	if !math.IsNaN(Skewness([]float64{1, 2})) {
		t.Error("skewness of n=2 not NaN")
	}
	if !math.IsNaN(ExcessKurtosis([]float64{1, 2, 3})) {
		t.Error("kurtosis of n=3 not NaN")
	}
	if !math.IsNaN(Skewness([]float64{5, 5, 5, 5})) {
		t.Error("skewness of constants not NaN")
	}
}

func TestJarqueBeraAcceptsNormal(t *testing.T) {
	accepted := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		if ApproximatelyNormal(normals(500, uint64(100+i)), 0.01) {
			accepted++
		}
	}
	if accepted < trials*9/10 {
		t.Fatalf("normal samples accepted %d/%d times", accepted, trials)
	}
}

func TestJarqueBeraRejectsExponential(t *testing.T) {
	for i := 0; i < 20; i++ {
		if ApproximatelyNormal(exponentials(500, uint64(200+i)), 0.01) {
			t.Fatalf("trial %d: exponential sample passed as normal", i)
		}
	}
}

func TestJarqueBeraRejectsBimodal(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	xs := make([]float64, 600)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 5 + 0.1*rng.NormFloat64()
		} else {
			xs[i] = 20 + 0.1*rng.NormFloat64()
		}
	}
	if ApproximatelyNormal(xs, 0.01) {
		t.Fatal("bimodal sample passed as normal")
	}
}

func TestJarqueBeraSmallSamplePermissive(t *testing.T) {
	if !ApproximatelyNormal([]float64{1, 2, 3}, 0.01) {
		t.Fatal("tiny sample rejected (should be permissive)")
	}
	if jb, p := JarqueBera([]float64{1, 2, 3}); !math.IsNaN(jb) || !math.IsNaN(p) {
		t.Fatalf("JB on n=3 = (%v, %v), want NaNs", jb, p)
	}
}
