package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is the full descriptive digest reports are built from: the
// five-number summary plus mean/stdev and the 5–95 % quantiles used for
// violin rendering and DBSCAN eps selection.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Q05    float64
	Q25    float64
	Median float64
	Q75    float64
	Q95    float64
	Max    float64
}

// Summarize computes the Summary of xs. For an empty slice all fields are
// NaN (with N = 0).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{Mean: nan, Std: nan, Min: nan, Q05: nan, Q25: nan,
			Median: nan, Q75: nan, Q95: nan, Max: nan}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	ms := Describe(xs)
	return Summary{
		N:      len(xs),
		Mean:   ms.Mean,
		Std:    ms.Std,
		Min:    sorted[0],
		Q05:    quantileSorted(sorted, 0.05),
		Q25:    quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.50),
		Q75:    quantileSorted(sorted, 0.75),
		Q95:    quantileSorted(sorted, 0.95),
		Max:    sorted[len(sorted)-1],
	}
}

// IQR returns the interquartile range Q75 − Q25.
func (s Summary) IQR() float64 { return s.Q75 - s.Q25 }

// String renders the summary compactly for logs and CLI output.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f p50=%.3f p95=%.3f max=%.3f",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Q95, s.Max)
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // samples below Lo
	Over   int // samples at or above Hi
}

// NewHistogram bins xs into nbins equal-width bins spanning [lo, hi).
func NewHistogram(xs []float64, lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		return &Histogram{Lo: lo, Hi: hi}
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		switch {
		case x < lo:
			h.Under++
		case x >= hi:
			h.Over++
		default:
			idx := int((x - lo) / width)
			if idx >= nbins { // guard against FP rounding at the edge
				idx = nbins - 1
			}
			h.Counts[idx]++
		}
	}
	return h
}

// Total returns the number of samples inside the histogram range.
func (h *Histogram) Total() int {
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	return total
}

// Mode returns the index of the fullest bin (first one on ties), or -1
// for an empty histogram.
func (h *Histogram) Mode() int {
	best, bestCount := -1, 0
	for i, c := range h.Counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	return best
}

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + width*(float64(i)+0.5)
}
