package stats

import "math"

// NormalCDF returns Φ(x), the standard normal cumulative distribution
// function, via the error function.
func NormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// NormalQuantile returns Φ⁻¹(p) for p in (0, 1) using Acklam's rational
// approximation (relative error below 1.15e-9), refined with one Halley
// step. It returns ±Inf at the boundaries and NaN outside [0, 1].
func NormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}

	// Coefficients for the central and tail rational approximations.
	a := [...]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [...]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [...]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [...]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}

	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement step against the exact CDF.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// ZCritical returns the two-sided z critical value for the given
// confidence level, e.g. ZCritical(0.95) ≈ 1.96.
func ZCritical(confidence float64) float64 {
	if confidence <= 0 || confidence >= 1 {
		return math.NaN()
	}
	return NormalQuantile(0.5 + confidence/2)
}

// TCritical returns the two-sided Student-t critical value for the given
// confidence level and degrees of freedom, using the Cornish–Fisher
// expansion around the normal quantile. Accuracy is better than 1 % for
// df ≥ 3, which covers every use in this codebase (phase-1 kernels gather
// hundreds of samples; the smallest populations are the ≥ 20 repeated
// switching-latency measurements).
func TCritical(df float64, confidence float64) float64 {
	if df <= 0 || confidence <= 0 || confidence >= 1 {
		return math.NaN()
	}
	z := NormalQuantile(0.5 + confidence/2)
	z2 := z * z
	g1 := (z2 + 1) * z / 4
	g2 := ((5*z2+16)*z2 + 3) * z / 96
	g3 := (((3*z2+19)*z2+17)*z2 - 15) * z / 384
	g4 := ((((79*z2+776)*z2+1482)*z2-1920)*z2 - 945) * z / 92160
	return z + g1/df + g2/(df*df) + g3/(df*df*df) + g4/(df*df*df*df)
}

// StudentTCDF returns the CDF of Student's t distribution with df degrees
// of freedom at t, computed through the regularised incomplete beta
// function. Used to attach p-values to Welch tests in reports.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := df / (df + t*t)
	p := 0.5 * regIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// regIncBeta computes the regularised incomplete beta function I_x(a, b)
// by the continued-fraction method (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a+math.Log(1-x)*b+lbeta) / a
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x)
	}
	// Use symmetry for faster convergence.
	lbetaSym := lgamma(a+b) - lgamma(a) - lgamma(b)
	frontSym := math.Exp(math.Log(1-x)*b+math.Log(x)*a+lbetaSym) / b
	return 1 - frontSym*betacf(b, a, 1-x)
}

func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
