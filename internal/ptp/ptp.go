// Package ptp implements the IEEE 1588-style two-way time transfer the
// methodology uses to relate host timestamps (the moment the frequency
// change call is issued) to the accelerator's global timer (§V-B phase 2).
//
// The exchange is the classic delay-request/response:
//
//	t1  host sends request
//	t2  device timestamps receipt
//	t3  device timestamps response departure
//	t4  host timestamps response arrival
//
// offset = ((t2 − t1) + (t3 − t4)) / 2, exact when the link is symmetric.
// Each round samples fresh link delays; the estimator takes the median of
// the per-round offsets, making it robust to the occasional delayed
// exchange (the same driver-noise mechanism that causes measurement
// outliers).
package ptp

import (
	"fmt"
	"sort"

	"golatest/internal/sim/clock"
)

// DeviceClock is the device-side timer the host synchronises against.
// *gpu.Device implements it.
type DeviceClock interface {
	// DeviceTimeAt returns the device global-timer reading at the given
	// host instant (quantised to the timer refresh period).
	DeviceTimeAt(hostNs int64) int64
}

// Config tunes the synchronisation exchange.
type Config struct {
	// Rounds is the number of delay-request exchanges (default 16).
	Rounds int
	// MeanLinkDelayNs is the mean one-way PCIe/NVLink message delay
	// (default 1.5 µs).
	MeanLinkDelayNs float64
	// LinkJitterNs is the per-message delay stddev (default 300 ns).
	LinkJitterNs float64
	// AsymmetryNs is added to host→device messages only; asymmetric links
	// bias the classic estimator by AsymmetryNs/2 and the methodology
	// treats that bias as part of its error budget (default 0).
	AsymmetryNs float64
	// DeviceTurnaroundNs separates t2 from t3 on the device (default 200).
	DeviceTurnaroundNs int64
}

func (c Config) withDefaults() Config {
	if c.Rounds <= 0 {
		c.Rounds = 16
	}
	if c.MeanLinkDelayNs == 0 {
		c.MeanLinkDelayNs = 1500
	}
	if c.LinkJitterNs == 0 {
		c.LinkJitterNs = 300
	}
	if c.DeviceTurnaroundNs == 0 {
		c.DeviceTurnaroundNs = 200
	}
	return c
}

// Result is a completed synchronisation: the offset estimate and its
// dispersion diagnostics.
type Result struct {
	// OffsetNs estimates device_time − host_time at the sync instant.
	OffsetNs int64
	// DelayNs estimates the one-way link delay.
	DelayNs int64
	// Rounds is the number of exchanges performed.
	Rounds int
	// SpreadNs is the max−min of per-round offset estimates, an upper
	// bound on the sync error contribution to measured latencies.
	SpreadNs int64
}

// HostToDevice converts a host timestamp to the device timebase.
func (r Result) HostToDevice(hostNs int64) int64 { return hostNs + r.OffsetNs }

// DeviceToHost converts a device timestamp to the host timebase.
func (r Result) DeviceToHost(devNs int64) int64 { return devNs - r.OffsetNs }

// Sync performs the two-way exchange between the host clock and the
// device timer, advancing the host clock by the virtual time the
// exchanges consume.
func Sync(clk *clock.Clock, dev DeviceClock, cfg Config, r *clock.Rand) (Result, error) {
	cfg = cfg.withDefaults()
	if dev == nil {
		return Result{}, fmt.Errorf("ptp: nil device clock")
	}

	offsets := make([]float64, 0, cfg.Rounds)
	delays := make([]float64, 0, cfg.Rounds)
	for i := 0; i < cfg.Rounds; i++ {
		d1 := sampleDelay(r, cfg.MeanLinkDelayNs+cfg.AsymmetryNs, cfg.LinkJitterNs)
		d2 := sampleDelay(r, cfg.MeanLinkDelayNs, cfg.LinkJitterNs)

		t1 := clk.Now()
		clk.Advance(d1)
		t2 := dev.DeviceTimeAt(clk.Now())
		clk.Advance(cfg.DeviceTurnaroundNs)
		t3 := dev.DeviceTimeAt(clk.Now())
		clk.Advance(d2)
		t4 := clk.Now()

		offsets = append(offsets, (float64(t2-t1)+float64(t3-t4))/2)
		delays = append(delays, (float64(t4-t1)-float64(t3-t2))/2)
	}

	sort.Float64s(offsets)
	sort.Float64s(delays)
	return Result{
		OffsetNs: int64(median(offsets)),
		DelayNs:  int64(median(delays)),
		Rounds:   cfg.Rounds,
		SpreadNs: int64(offsets[len(offsets)-1] - offsets[0]),
	}, nil
}

func sampleDelay(r *clock.Rand, mean, jitter float64) int64 {
	d := mean
	if r != nil {
		d = r.Normal(mean, jitter)
	}
	if d < 1 {
		d = 1
	}
	return int64(d)
}

// median of a sorted slice.
func median(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}
