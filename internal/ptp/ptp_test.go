package ptp

import (
	"testing"

	"golatest/internal/sim/clock"
	"golatest/internal/sim/gpu"
)

// shiftClock is a minimal DeviceClock with a constant offset.
type shiftClock struct{ offset int64 }

func (s shiftClock) DeviceTimeAt(hostNs int64) int64 { return hostNs + s.offset }

func TestSyncRecoversConstantOffset(t *testing.T) {
	clk := clock.NewAt(1_000_000)
	r := clock.NewRand(1, 2)
	res, err := Sync(clk, shiftClock{offset: 123_456_789}, Config{}, r)
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.OffsetNs - 123_456_789; diff < -2000 || diff > 2000 {
		t.Fatalf("offset error %d ns (got %d)", diff, res.OffsetNs)
	}
	if res.DelayNs < 500 || res.DelayNs > 5000 {
		t.Fatalf("delay estimate %d ns implausible", res.DelayNs)
	}
	if res.Rounds != 16 {
		t.Fatalf("Rounds = %d, want default 16", res.Rounds)
	}
}

func TestSyncAdvancesHostClock(t *testing.T) {
	clk := clock.New()
	r := clock.NewRand(3, 4)
	before := clk.Now()
	if _, err := Sync(clk, shiftClock{}, Config{Rounds: 8}, r); err != nil {
		t.Fatal(err)
	}
	if clk.Now() <= before {
		t.Fatal("Sync did not consume virtual time")
	}
}

func TestSyncNilDevice(t *testing.T) {
	if _, err := Sync(clock.New(), nil, Config{}, clock.NewRand(1, 1)); err == nil {
		t.Fatal("nil device accepted")
	}
}

func TestSyncAsymmetryBias(t *testing.T) {
	// A one-sided extra delay of 2A biases the estimate by about +A
	// toward the device.
	clk := clock.New()
	r := clock.NewRand(5, 6)
	const asym = 10_000
	res, err := Sync(clk, shiftClock{offset: 0}, Config{AsymmetryNs: asym, LinkJitterNs: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(asym / 2)
	if diff := res.OffsetNs - want; diff < -1500 || diff > 1500 {
		t.Fatalf("asymmetry bias = %d, want ≈%d", res.OffsetNs, want)
	}
}

func TestSyncAgainstSimulatedGPU(t *testing.T) {
	clk := clock.NewAt(5_000_000)
	cfg := gpu.Config{
		Name:          "sync-target",
		SMCount:       2,
		FreqsMHz:      []float64{500, 1000},
		ClockOffsetNs: 987_654_321,
		ClockDriftPPM: 5,
		Latency:       fixedModel{},
		Seed:          7,
	}
	dev, err := gpu.New(cfg, clk)
	if err != nil {
		t.Fatal(err)
	}
	r := clock.NewRand(9, 9)
	res, err := Sync(clk, dev, Config{Rounds: 32}, r)
	if err != nil {
		t.Fatal(err)
	}
	// The recovered offset must map host times onto the device timeline
	// within quantisation + jitter (a few µs).
	host := clk.Now()
	wantDev := dev.DeviceTimeAt(host)
	gotDev := res.HostToDevice(host)
	if diff := gotDev - wantDev; diff < -5000 || diff > 5000 {
		t.Fatalf("HostToDevice error %d ns", diff)
	}
	if back := res.DeviceToHost(res.HostToDevice(42)); back != 42 {
		t.Fatalf("round trip = %d, want 42", back)
	}
}

func TestSyncSpreadReflectsJitter(t *testing.T) {
	clk := clock.New()
	quiet, _ := Sync(clk, shiftClock{}, Config{LinkJitterNs: 1}, clock.NewRand(1, 1))
	noisy, _ := Sync(clk, shiftClock{}, Config{LinkJitterNs: 5000}, clock.NewRand(1, 1))
	if quiet.SpreadNs >= noisy.SpreadNs {
		t.Fatalf("spread: quiet %d >= noisy %d", quiet.SpreadNs, noisy.SpreadNs)
	}
}

// fixedModel satisfies gpu.LatencyModel for device construction.
type fixedModel struct{}

func (fixedModel) Sample(init, target float64, r *clock.Rand) gpu.Transition {
	return gpu.Transition{}
}
