package ptp

import (
	"testing"
	"testing/quick"

	"golatest/internal/sim/clock"
)

// TestOffsetRecoveryProperty: for arbitrary constant device offsets and
// symmetric link jitter, the estimator recovers the offset within a few
// jitter standard deviations.
func TestOffsetRecoveryProperty(t *testing.T) {
	f := func(rawOffset int32, jitterSeed uint8, seed uint16) bool {
		offset := int64(rawOffset) // up to ±2.1 s
		if offset < 0 {
			offset = -offset
		}
		jitter := float64(jitterSeed%50+1) * 20 // 20 ns – 1 µs
		clk := clock.NewAt(1_000_000)
		r := clock.NewRand(uint64(seed)+1, 99)
		res, err := Sync(clk, shiftClock{offset: offset}, Config{
			Rounds:       24,
			LinkJitterNs: jitter,
		}, r)
		if err != nil {
			return false
		}
		errNs := res.OffsetNs - offset
		if errNs < 0 {
			errNs = -errNs
		}
		// Median-of-24 symmetric-jitter estimate: well within 3 jitter
		// sigmas plus the device turnaround rounding.
		return float64(errNs) <= 3*jitter+500
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripIdentityProperty: HostToDevice and DeviceToHost are exact
// inverses for any estimated offset.
func TestRoundTripIdentityProperty(t *testing.T) {
	f := func(offset int64, ts int32) bool {
		res := Result{OffsetNs: offset % (1 << 40)}
		v := int64(ts)
		return res.DeviceToHost(res.HostToDevice(v)) == v &&
			res.HostToDevice(res.DeviceToHost(v)) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
