// Package workload plans the artificial iterative microbenchmark of §V:
// how much arithmetic one iteration should contain and how many
// iterations each benchmark phase needs so that the kernel (a) keeps the
// accelerator under sustained load, (b) cleanly separates the
// initial-frequency region from the switch, (c) spans the longest
// plausible switching latency, and (d) leaves enough tail iterations to
// confirm the target frequency statistically.
package workload

import (
	"fmt"
	"math"
)

// CyclesForIterDuration returns the per-iteration cycle budget that makes
// an iteration last about durNs at the given clock. The iteration is the
// measurement granule: the paper wants it "as tiny as possible" because
// it bounds the resolution of the switching-latency estimate, but it must
// remain long against the device timer quantum.
func CyclesForIterDuration(durNs float64, freqMHz float64) float64 {
	return durNs * freqMHz / 1000
}

// IterDurationNs inverts CyclesForIterDuration.
func IterDurationNs(cycles, freqMHz float64) float64 {
	return cycles * 1000 / freqMHz
}

// Budget is the iteration plan of one switching-latency benchmark run,
// following the four §V components.
type Budget struct {
	// WakeupIters keeps the device busy long enough to leave idle clocks
	// and stabilise at the programmed frequency before measurement.
	WakeupIters int
	// DelayIters run at the initial frequency before the change request,
	// clearly separating the two frequency regions.
	DelayIters int
	// CaptureIters span the switching latency itself, sized at a safety
	// multiple of the longest expected latency.
	CaptureIters int
	// ConfirmIters are the tail used to verify the device settled at the
	// target frequency ("several hundred up to a thousand").
	ConfirmIters int
}

// Total returns the kernel's iteration count.
func (b Budget) Total() int {
	return b.WakeupIters + b.DelayIters + b.CaptureIters + b.ConfirmIters
}

// DelayNs returns the host sleep before issuing the frequency change:
// the wake-up plus delay regions at the initial frequency.
func (b Budget) DelayNs(iterNs float64) int64 {
	return int64(float64(b.WakeupIters+b.DelayIters) * iterNs)
}

// PlanBudget sizes a Budget.
//
//	iterNs        — nominal iteration duration at the slower frequency of
//	                the measured pair (worst case for coverage);
//	wakeNs        — the platform's wake-up upper bound (0 if the device is
//	                known warm);
//	maxLatencyNs  — upper-bound estimate of the switching latency, e.g.
//	                from EstimateCaptureNs;
//	safety        — multiplier on the capture region (§V recommends 10×;
//	                values < 1 are raised to 1).
func PlanBudget(iterNs float64, wakeNs, maxLatencyNs int64, safety float64) (Budget, error) {
	if iterNs <= 0 {
		return Budget{}, fmt.Errorf("workload: non-positive iteration duration %v", iterNs)
	}
	if maxLatencyNs <= 0 {
		return Budget{}, fmt.Errorf("workload: non-positive latency bound %d", maxLatencyNs)
	}
	if safety < 1 {
		safety = 1
	}
	iters := func(ns float64) int {
		return int(math.Ceil(ns / iterNs))
	}
	b := Budget{
		WakeupIters:  iters(float64(wakeNs)),
		DelayIters:   200, // "several hundred iterations" on the initial clock
		CaptureIters: iters(safety * float64(maxLatencyNs)),
		ConfirmIters: 500, // "several hundred up to a thousand"
	}
	return b, nil
}

// EstimateCaptureNs implements the §V bootstrap for an untested platform:
// given the latencies observed on a few probe pairs (small, medium, and
// high frequency levels), the capture budget is ten times the longest
// observed latency. If the probes saw nothing (all zero), the caller
// should retry with a ten-times longer workload; this function returns 0
// in that case so the caller can detect it.
func EstimateCaptureNs(probeLatenciesNs []int64) int64 {
	var max int64
	for _, l := range probeLatenciesNs {
		if l > max {
			max = l
		}
	}
	return 10 * max
}

// SplitKernels divides a total iteration count into n equal kernels
// (remainder in the last), the shape the wake-up estimation procedure
// uses: comparing the first kernel's iteration times with the last
// kernel's average reveals when the device stabilised.
func SplitKernels(total, n int) ([]int, error) {
	if total <= 0 || n <= 0 {
		return nil, fmt.Errorf("workload: invalid split %d into %d", total, n)
	}
	if n > total {
		n = total
	}
	out := make([]int, n)
	base := total / n
	for i := range out {
		out[i] = base
	}
	out[n-1] += total - base*n
	return out, nil
}
