package workload

import (
	"testing"
	"testing/quick"
)

func TestCyclesForIterDurationRoundTrip(t *testing.T) {
	cycles := CyclesForIterDuration(100_000, 1410) // 100 µs at 1410 MHz
	if got := IterDurationNs(cycles, 1410); got != 100_000 {
		t.Fatalf("round trip = %v, want 100000", got)
	}
	if cycles != 141_000 {
		t.Fatalf("cycles = %v, want 141000", cycles)
	}
}

func TestPlanBudgetComponents(t *testing.T) {
	b, err := PlanBudget(100_000, 30_000_000, 50_000_000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if b.WakeupIters != 300 {
		t.Errorf("WakeupIters = %d, want 300", b.WakeupIters)
	}
	if b.DelayIters != 200 {
		t.Errorf("DelayIters = %d, want 200", b.DelayIters)
	}
	if b.CaptureIters != 5000 {
		t.Errorf("CaptureIters = %d, want 5000 (10× latency)", b.CaptureIters)
	}
	if b.ConfirmIters != 500 {
		t.Errorf("ConfirmIters = %d, want 500", b.ConfirmIters)
	}
	if b.Total() != 6000 {
		t.Errorf("Total = %d", b.Total())
	}
	if got := b.DelayNs(100_000); got != 50_000_000 {
		t.Errorf("DelayNs = %d, want 50ms", got)
	}
}

func TestPlanBudgetWarmDevice(t *testing.T) {
	b, err := PlanBudget(100_000, 0, 10_000_000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if b.WakeupIters != 0 {
		t.Fatalf("warm device WakeupIters = %d", b.WakeupIters)
	}
}

func TestPlanBudgetSafetyFloor(t *testing.T) {
	b, err := PlanBudget(1000, 0, 10_000, 0.1) // safety below 1 is raised
	if err != nil {
		t.Fatal(err)
	}
	if b.CaptureIters != 10 {
		t.Fatalf("CaptureIters = %d, want 10 (safety clamped to 1)", b.CaptureIters)
	}
}

func TestPlanBudgetValidation(t *testing.T) {
	if _, err := PlanBudget(0, 0, 1000, 10); err == nil {
		t.Error("zero iterNs accepted")
	}
	if _, err := PlanBudget(1000, 0, 0, 10); err == nil {
		t.Error("zero latency bound accepted")
	}
}

// Property: the capture region always covers safety × maxLatency.
func TestPlanBudgetCoverageProperty(t *testing.T) {
	f := func(iterUs uint16, latMs uint16, safetyX uint8) bool {
		iterNs := float64(iterUs%1000+1) * 1000
		latNs := int64(latMs%500+1) * 1_000_000
		safety := float64(safetyX%20 + 1)
		b, err := PlanBudget(iterNs, 0, latNs, safety)
		if err != nil {
			return false
		}
		return float64(b.CaptureIters)*iterNs >= safety*float64(latNs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateCaptureNs(t *testing.T) {
	if got := EstimateCaptureNs([]int64{5, 80, 12}); got != 800 {
		t.Fatalf("EstimateCaptureNs = %d, want 800", got)
	}
	if got := EstimateCaptureNs(nil); got != 0 {
		t.Fatalf("empty probes = %d, want 0 (caller must retry longer)", got)
	}
}

func TestSplitKernels(t *testing.T) {
	parts, err := SplitKernels(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{250, 250, 250, 250}
	for i := range want {
		if parts[i] != want[i] {
			t.Fatalf("parts = %v", parts)
		}
	}
	parts, _ = SplitKernels(10, 3)
	if parts[0] != 3 || parts[1] != 3 || parts[2] != 4 {
		t.Fatalf("remainder handling: %v", parts)
	}
}

func TestSplitKernelsMoreKernelsThanIters(t *testing.T) {
	parts, err := SplitKernels(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parts {
		if p <= 0 {
			t.Fatalf("empty kernel in %v", parts)
		}
		total += p
	}
	if total != 2 {
		t.Fatalf("split loses iterations: %v", parts)
	}
}

func TestSplitKernelsValidation(t *testing.T) {
	if _, err := SplitKernels(0, 3); err == nil {
		t.Error("total=0 accepted")
	}
	if _, err := SplitKernels(10, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

// Property: SplitKernels conserves the total.
func TestSplitConservationProperty(t *testing.T) {
	f := func(total uint16, n uint8) bool {
		tt := int(total%5000) + 1
		nn := int(n%20) + 1
		parts, err := SplitKernels(tt, nn)
		if err != nil {
			return false
		}
		sum := 0
		for _, p := range parts {
			sum += p
		}
		return sum == tt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
