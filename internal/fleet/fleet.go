// Package fleet shards multi-device campaign sweeps over a bounded pool
// of device replicas, with optional persistent-store integration so an
// interrupted or re-run sweep only recomputes the shards that are
// missing from the store (resumable sweeps).
//
// A shard is one (hardware profile, campaign config) unit — e.g. one
// A100 unit of the §VII-C manufacturing-variability study. Sweep walks
// the shard list with Options.Replicas workers; each worker first looks
// its shard up in the store (when one is configured), and only computes
// on a miss, persisting the fresh result before moving on. Because every
// completed shard is durable the moment it finishes, a sweep that dies
// half-way — crash, ^C, a failing shard — resumes from the completed
// prefix: the next Sweep call finds those shards in the store and
// recomputes only the remainder.
//
// Campaigns are deterministic functions of their shard (profile,
// instance, seeds, config — see internal/store's addressing), so a
// sweep's results are identical whether a shard was computed this run,
// last run, or by another process sharing the store, and identical at
// every Replicas setting; the pool bounds memory and CPU, not the
// outcome.
package fleet

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"golatest/internal/core"
	"golatest/internal/hwprofile"
	"golatest/internal/store"
)

// Options configures a sweep.
type Options struct {
	// Replicas bounds how many shards are in flight at once (each shard
	// runs on its own device replica). Zero means one per CPU; the pool
	// never exceeds the shard count. Results are identical at every
	// setting.
	Replicas int

	// Store, when non-nil, is consulted before and written after every
	// shard computation. Nil disables persistence: every shard computes.
	// Callers whose Run already persists (e.g. a store-backed
	// experiments.Suite) pass nil here to avoid double bookkeeping.
	Store *store.Store

	// Config maps a shard's profile to the campaign configuration it
	// runs; required when Store is set (it feeds the content address).
	Config func(hwprofile.Profile) core.Config

	// Run computes one shard. Required.
	Run func(hwprofile.Profile, core.Config) (*core.Result, error)
}

func (o Options) replicas(shards int) int {
	n := o.Replicas
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > shards {
		n = shards
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Shard is one unit of a sweep report.
type Shard struct {
	Profile hwprofile.Profile
	// Key is the shard's content address (zero when no store is
	// configured).
	Key store.Key
	// Result is the shard's campaign; nil when the shard errored or was
	// never reached before the sweep aborted.
	Result *core.Result
	// FromCache reports whether Result was read from the store rather
	// than computed.
	FromCache bool
	// Err is the shard's failure, if any.
	Err error
}

// Report summarises a sweep.
type Report struct {
	Shards []Shard
	// Hits counts shards served from the store; Computed counts shards
	// actually run. Hits + Computed can be less than len(Shards) when an
	// aborted sweep left shards unreached.
	Hits, Computed int
}

// Results returns the shard results in shard order. Only meaningful when
// Sweep returned no error (every shard then has a result).
func (r *Report) Results() []*core.Result {
	out := make([]*core.Result, len(r.Shards))
	for i := range r.Shards {
		out[i] = r.Shards[i].Result
	}
	return out
}

// Plan reports, per shard, whether the store already holds its result —
// i.e. what a Sweep would skip. Without a store every entry is false.
func Plan(profiles []hwprofile.Profile, opts Options) ([]bool, error) {
	cached := make([]bool, len(profiles))
	if opts.Store == nil {
		return cached, nil
	}
	if opts.Config == nil {
		return nil, fmt.Errorf("fleet: store configured without a Config function")
	}
	for i, p := range profiles {
		k, err := store.ProfileKey(p, opts.Config(p))
		if err != nil {
			return nil, fmt.Errorf("fleet: key for %s/%d: %w", p.Key, p.Instance, err)
		}
		cached[i] = opts.Store.Has(k)
	}
	return cached, nil
}

// Sweep runs one campaign per profile over the replica pool and returns
// the per-shard report. On the first shard error the sweep stops handing
// out new shards (in-flight shards finish) and returns that error
// alongside the partial report; every shard completed before the abort
// has already been persisted, so a follow-up Sweep resumes rather than
// restarts.
func Sweep(profiles []hwprofile.Profile, opts Options) (*Report, error) {
	if opts.Run == nil {
		return nil, fmt.Errorf("fleet: Options.Run is required")
	}
	if opts.Store != nil && opts.Config == nil {
		return nil, fmt.Errorf("fleet: store configured without a Config function")
	}

	rep := &Report{Shards: make([]Shard, len(profiles))}
	for i, p := range profiles {
		rep.Shards[i].Profile = p
	}
	if len(profiles) == 0 {
		return rep, nil
	}

	var (
		next     atomic.Int64
		failed   atomic.Bool
		hits     atomic.Int64
		computed atomic.Int64
		wg       sync.WaitGroup
	)
	for w := 0; w < opts.replicas(len(profiles)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(profiles) || failed.Load() {
					return
				}
				sh := &rep.Shards[i]
				if err := runShard(sh, opts, &hits, &computed); err != nil {
					sh.Err = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	rep.Hits = int(hits.Load())
	rep.Computed = int(computed.Load())

	for i := range rep.Shards {
		if rep.Shards[i].Err != nil {
			return rep, fmt.Errorf("fleet: shard %s/%d: %w",
				rep.Shards[i].Profile.Key, rep.Shards[i].Profile.Instance, rep.Shards[i].Err)
		}
	}
	return rep, nil
}

// runShard resolves one shard: store lookup, compute on miss, persist.
func runShard(sh *Shard, opts Options, hits, computed *atomic.Int64) error {
	var cfg core.Config
	if opts.Config != nil {
		cfg = opts.Config(sh.Profile)
	}
	if opts.Store != nil {
		k, err := store.ProfileKey(sh.Profile, cfg)
		if err != nil {
			return err
		}
		sh.Key = k
		if res, ok := opts.Store.Get(k); ok {
			sh.Result = res
			sh.FromCache = true
			hits.Add(1)
			return nil
		}
	}
	res, err := opts.Run(sh.Profile, cfg)
	if err != nil {
		return err
	}
	sh.Result = res
	computed.Add(1)
	if opts.Store != nil {
		// A failed write means the store the caller asked for is broken
		// (full disk, bad permissions); surfacing it beats silently
		// recomputing every shard forever.
		if err := opts.Store.Put(sh.Key, res); err != nil {
			return err
		}
	}
	return nil
}
