// Package fleet shards multi-device campaign sweeps over a bounded pool
// of device replicas, with optional persistent-store integration so an
// interrupted or re-run sweep only recomputes the shards that are
// missing from the store (resumable sweeps).
//
// A shard is one (hardware profile, campaign config) unit — e.g. one
// A100 unit of the §VII-C manufacturing-variability study. Sweep walks
// the shard list with Options.Replicas workers; each worker first looks
// its shard up in the store (when one is configured), and only computes
// on a miss, persisting the fresh result before moving on. Because every
// completed shard is durable the moment it finishes, a sweep that dies
// half-way — crash, ^C, a failing shard — resumes from the completed
// prefix: the next Sweep call finds those shards in the store and
// recomputes only the remainder.
//
// # Cross-process sweeps
//
// With Options.LeaseTTL set, a sweep additionally claims each missing
// shard through an advisory store lease before computing it. Two (or
// twenty) processes pointed at the same store directory then partition
// the sweep instead of duplicating it: a worker that finds a shard
// claimed by a live peer waits, polling the store until the peer's
// result lands; a worker that finds an expired claim (the peer died)
// steals it and computes. Every process finishes with the complete
// result set — claims decide who computes, the store delivers the
// results to everyone. Report's Claimed/Waited/Stolen counters expose
// the contention.
//
// Campaigns are deterministic functions of their shard (profile,
// instance, seeds, config — see internal/store's addressing), so a
// sweep's results are identical whether a shard was computed this run,
// last run, or by another process sharing the store, and identical at
// every Replicas setting; the pool and the leases bound duplicated
// effort, not the outcome.
package fleet

import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"golatest/internal/core"
	"golatest/internal/hwprofile"
	"golatest/internal/obs"
	"golatest/internal/store"
)

// defaultWaitPoll is how often a worker re-checks a shard held by a
// peer; campaigns run for tens of milliseconds and up, so polling much
// faster only burns syscalls.
const defaultWaitPoll = 25 * time.Millisecond

// Options configures a sweep.
type Options struct {
	// Replicas bounds how many shards are in flight at once (each shard
	// runs on its own device replica). Zero means one per CPU; the pool
	// never exceeds the shard count. Results are identical at every
	// setting.
	Replicas int

	// Store, when non-nil, is consulted before and written after every
	// shard computation. Nil disables persistence: every shard computes.
	// Callers whose Run already persists (e.g. a store-backed
	// experiments.Suite) pass nil here to avoid double bookkeeping.
	// Any store.Backend works: a local *store.Store directory or a
	// storenet.Client speaking to a stored daemon — the claim/wait/steal
	// protocol below is identical either way, which is what lets a sweep
	// span hosts.
	Store store.Backend

	// Config maps a shard's profile to the campaign configuration it
	// runs; required when Store is set (it feeds the content address).
	Config func(hwprofile.Profile) core.Config

	// Run computes one shard. Required.
	Run func(hwprofile.Profile, core.Config) (*core.Result, error)

	// LeaseTTL, when positive (requires Store), turns on cross-process
	// claims: a worker acquires `<digest>.lease` before computing a
	// missing shard, renews it at TTL/2 while the campaign runs, and
	// releases it after the Put. Size it to comfortably exceed one
	// shard's compute time; an expired lease is stolen by the next
	// worker that wants the shard.
	LeaseTTL time.Duration

	// Owner labels this process in lease files for observability. Empty
	// generates a host/pid-derived id. Claims are exclusive per lease
	// file regardless — processes sharing an Owner string still
	// partition correctly.
	Owner string

	// WaitPoll is how often a worker re-checks a shard held by a live
	// peer. Zero means a sensible default.
	WaitPoll time.Duration

	// GCWatermarkBytes, when positive (requires Store), bounds the store
	// without operator action: after the sweep, if the indexed blobs
	// total more than the watermark, one GC pass evicts
	// least-recently-used blobs back under it (and sweeps crash debris).
	// Report.GC carries the pass's stats when one ran. Zero leaves GC
	// manual.
	GCWatermarkBytes int64

	// ShardOffset rotates the order workers visit shards: the sweep
	// starts at shard index ShardOffset (mod the shard count) and wraps.
	// Cooperating processes given disjoint offsets (host i of n starts
	// at i*shards/n) claim disjoint ranges up front, cutting lease
	// contention — the waits and steals of everyone racing for shard 0 —
	// from O(shards) to near zero. Purely a scheduling hint: results,
	// resumability, and the claim/wait/steal safety net are identical at
	// every offset.
	ShardOffset int

	// AutoShardOffset (requires Store) derives the offset from the
	// store's live state instead: one Plan pass finds the first shard
	// that is neither cached nor claimed by a live holder, and the sweep
	// starts there — a host joining mid-sweep skips past the ranges its
	// peers are already computing. Racy by nature (peers move between
	// the plan and the first claim), which is fine: the claim loop still
	// arbitrates correctness. Overrides ShardOffset when it finds a
	// starting point.
	AutoShardOffset bool

	// StoreErrors selects what a store write or claim failure does to
	// the sweep: abort it (the pre-resilience behavior) or degrade
	// around it. The zero value resolves automatically: degrade when the
	// store reports a local fallback tier (store.Resilient with
	// CanDegrade), abort otherwise.
	StoreErrors StoreErrorPolicy

	// Tracer, when non-nil, records the sweep as a span tree: one root
	// span with a per-shard child span in its own timeline lane (TID =
	// shard index + 1), carrying typed events (claim/wait/steal, store
	// hit/miss, compute, put, defer, degrade). The root span's context
	// is installed on Options.Store when it implements
	// obs.TraceContextSetter, so a storenet.Client's wire requests —
	// and the daemon-side records they leave — correlate with this
	// sweep by trace ID. nil disables tracing at zero cost; per-shard
	// wall-clock attribution (Shard.StoreNs/WaitNs/ComputeNs) is
	// collected either way.
	Tracer *obs.Tracer

	// TraceCarrier optionally names an additional trace-context carrier
	// (typically the store client a Run callback reads through when
	// Options.Store is nil because the callback does its own
	// persistence). Options.Store is consulted automatically; set this
	// only for store traffic the sweep cannot see.
	TraceCarrier obs.TraceContextSetter
}

// StoreErrorPolicy is a sweep's response to store write/claim failures.
// Read failures are unaffected — the Backend contract already degrades
// every read to a recoverable miss.
type StoreErrorPolicy int

const (
	// StoreErrorsAuto resolves to Degrade when Options.Store implements
	// store.Resilient and reports CanDegrade (a tiered storenet.Client
	// with a local cache), Abort otherwise. The zero value, so existing
	// callers keep strict semantics on non-resilient stores.
	StoreErrorsAuto StoreErrorPolicy = iota
	// StoreErrorsAbort stops the sweep on the first store write or
	// claim error — a store that cannot accept results must not let the
	// fleet silently recompute forever.
	StoreErrorsAbort
	// StoreErrorsDegrade finishes the sweep despite store failures: a
	// failed lease acquire falls back to unleased recompute (duplicate
	// work across peers at worst — results are deterministic, so never
	// wrong ones), and a failed Put keeps the result in the report and
	// moves on. Each fallback ticks Report.Degraded.
	StoreErrorsDegrade
)

func (p StoreErrorPolicy) String() string {
	switch p {
	case StoreErrorsAbort:
		return "abort"
	case StoreErrorsDegrade:
		return "degrade"
	default:
		return "auto"
	}
}

func (o Options) replicas(shards int) int {
	n := o.Replicas
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > shards {
		n = shards
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Shard is one unit of a sweep report.
type Shard struct {
	Profile hwprofile.Profile
	// Key is the shard's content address (zero when no store is
	// configured).
	Key store.Key
	// Result is the shard's campaign; nil when the shard errored or was
	// never reached before the sweep aborted.
	Result *core.Result
	// FromCache reports whether Result was read from the store rather
	// than computed — including results another process computed while
	// this sweep waited on its claim.
	FromCache bool
	// Err is the shard's failure, if any.
	Err error
	// Wall-clock attribution for the shard, collected whether or not a
	// tracer is configured: StoreNs is time spent in store reads and
	// writes (Get + Put), WaitNs is time spent parked on a peer's claim,
	// ComputeNs is time inside Options.Run. Report.WriteTimingTable
	// renders these; a trace export shows the same intervals as spans.
	StoreNs, WaitNs, ComputeNs int64
}

// Report summarises a sweep.
type Report struct {
	Shards []Shard
	// Hits counts shards served from the store; Computed counts shards
	// actually run. Hits + Computed can be less than len(Shards) when an
	// aborted sweep left shards unreached.
	Hits, Computed int
	// ShardOffset is the starting index the sweep actually used —
	// Options.ShardOffset normalised, or the auto-derived one.
	ShardOffset int
	// Contention counters, populated in lease mode: Claimed counts
	// leases this sweep acquired, Waited counts shards it resolved by
	// waiting on a peer's claim, Stolen counts expired leases it took
	// over from dead peers.
	Claimed, Waited, Stolen int
	// Degraded counts the sweep's own store-failure fallbacks under the
	// degrade policy: lease acquires that fell back to unleased
	// recompute, and Puts whose failure was absorbed (result kept in
	// the report, not persisted).
	Degraded int
	// Deferred and Reconciled mirror the resilient backend's journal
	// traffic attributable to this sweep (deltas of its
	// store.Resilient counters across the sweep): writes that landed
	// local-plus-journal instead of the remote, and journal entries
	// replayed to the remote while the sweep ran.
	Deferred, Reconciled int
	// GC carries the stats of the watermark GC pass that followed the
	// sweep, when Options.GCWatermarkBytes triggered one; nil otherwise.
	GC *store.GCStats
	// Replication, when the sweep's store is a replicating backend
	// (store.Replicated), carries its post-sweep stats with the traffic
	// counters reduced to this sweep's deltas: Failovers,
	// UnderReplicatedPuts, ReadRepairs, ScrubRepairs and ScrubRuns count
	// only what happened while the sweep ran, while Members, Healthy,
	// Replication and PendingRepairs are the end-of-sweep snapshot. Nil
	// for non-replicated backends.
	Replication *store.ReplicationStats
	// TraceID is the hex trace identifier of the sweep's root span when
	// Options.Tracer was set ("" otherwise) — the value to grep for in a
	// trace export or a daemon's /debug/ops flight recorder.
	TraceID string
}

// Results returns the shard results in shard order. Only meaningful when
// Sweep returned no error (every shard then has a result).
func (r *Report) Results() []*core.Result {
	out := make([]*core.Result, len(r.Shards))
	for i := range r.Shards {
		out[i] = r.Shards[i].Result
	}
	return out
}

// WriteTimingTable renders the per-shard wall-clock breakdown as an
// aligned text table: where each shard's time went (store I/O, waiting
// on peers, compute) and how it resolved. The same intervals appear as
// spans in a trace export; the table is the no-tooling view.
func (r *Report) WriteTimingTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "shard\tprofile\tsource\tstore\twait\tcompute")
	for i := range r.Shards {
		sh := &r.Shards[i]
		src := "computed"
		switch {
		case sh.Err != nil:
			src = "error"
		case sh.Result == nil:
			src = "unreached"
		case sh.FromCache:
			src = "cache"
		}
		fmt.Fprintf(tw, "%d\t%s/%d\t%s\t%s\t%s\t%s\n",
			i, sh.Profile.Key, sh.Profile.Instance, src,
			time.Duration(sh.StoreNs).Round(time.Microsecond),
			time.Duration(sh.WaitNs).Round(time.Microsecond),
			time.Duration(sh.ComputeNs).Round(time.Microsecond))
	}
	return tw.Flush()
}

// ShardPlan previews one shard of a prospective sweep.
type ShardPlan struct {
	// Key is the shard's content address (zero without a store).
	Key store.Key
	// Cached reports the store already holds the shard's result — the
	// sweep would serve it without computing.
	Cached bool
	// LeaseHolder is the owner label of a live claim on the shard, ""
	// when unclaimed. It lets a scheduler route processes at disjoint
	// shard ranges up front instead of discovering contention by
	// polling. A racy peek by nature: the holder may finish, die, or be
	// stolen from between Plan and Sweep, and the claim loop handles all
	// three — the plan optimises placement, it never gates correctness.
	LeaseHolder string
}

// Plan reports, per shard, whether the store already holds its result
// (what a Sweep would skip) and who, if anyone, currently holds its
// lease. Without a store every entry is zero-valued.
func Plan(profiles []hwprofile.Profile, opts Options) ([]ShardPlan, error) {
	plans := make([]ShardPlan, len(profiles))
	if opts.Store == nil {
		return plans, nil
	}
	if opts.Config == nil {
		return nil, fmt.Errorf("fleet: store configured without a Config function")
	}
	// One Index call answers Cached for every shard — against a remote
	// backend that is a single round trip instead of a HEAD per shard.
	// (The index can trail a peer's seconds-old write; the sweep's own
	// Get still catches it, so the plan errs only toward scheduling a
	// shard that turns into a free hit.)
	indexed := make(map[string]bool)
	for _, e := range opts.Store.Index() {
		indexed[e.Digest] = true
	}
	for i, p := range profiles {
		k, err := store.ProfileKey(p, opts.Config(p))
		if err != nil {
			return nil, fmt.Errorf("fleet: key for %s/%d: %w", p.Key, p.Instance, err)
		}
		plans[i].Key = k
		plans[i].Cached = indexed[k.Digest]
		if plans[i].Cached {
			// A cached shard resolves from the store regardless of
			// claims; skipping the peek saves a round trip per shard on
			// remote backends.
			continue
		}
		if owner, held := opts.Store.LeaseHolder(k.Digest); held {
			plans[i].LeaseHolder = owner
		}
	}
	return plans, nil
}

// errAborted marks a shard abandoned because the sweep failed elsewhere
// while this worker was waiting on a peer's claim: the shard is
// unreached, not failed.
var errAborted = errors.New("fleet: sweep aborted")

// sweeper carries one Sweep invocation's shared state.
type sweeper struct {
	opts    Options
	owner   string
	degrade bool // resolved StoreErrors policy

	tracer  *obs.Tracer     // nil when tracing is off
	rootCtx obs.SpanContext // the sweep root span's context

	failed                                  atomic.Bool
	hits, computed, claimed, waited, stolen atomic.Int64
	degraded                                atomic.Int64
}

// shardSpan opens the per-shard child span: its own timeline lane (TID
// = shard index + 1, lane 0 being the root) labelled with the shard's
// profile. nil tracer → nil span, and every use below is nil-safe.
func (w *sweeper) shardSpan(sh *Shard, idx int) *obs.Span {
	if w.tracer == nil {
		return nil
	}
	span := w.tracer.StartSpan("fleet.shard", w.rootCtx)
	span.SetTID(idx + 1)
	span.SetAttr("profile", fmt.Sprintf("%s/%d", sh.Profile.Key, sh.Profile.Instance))
	return span
}

// resolvePolicy turns StoreErrorsAuto into a concrete choice: degrade
// exactly when the store advertises a local fallback tier.
func resolvePolicy(p StoreErrorPolicy, b store.Backend) bool {
	switch p {
	case StoreErrorsDegrade:
		return true
	case StoreErrorsAbort:
		return false
	default:
		if r, ok := b.(store.Resilient); ok {
			return r.CanDegrade()
		}
		return false
	}
}

// defaultOwner derives a lease owner id unique enough for a fleet:
// hostname-qualified pid plus a clock-disambiguated suffix for multiple
// sweeps in one process.
func defaultOwner() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "unknown-host"
	}
	return fmt.Sprintf("%s:%d:%d", host, os.Getpid(), time.Now().UnixNano())
}

// Sweep runs one campaign per profile over the replica pool and returns
// the per-shard report. On the first shard error the sweep stops handing
// out new shards (in-flight shards finish) and returns that error —
// wrapped with the failing shard's identity — alongside the partial
// report; every shard completed before the abort has already been
// persisted, so a follow-up Sweep resumes rather than restarts.
func Sweep(profiles []hwprofile.Profile, opts Options) (*Report, error) {
	if opts.Run == nil {
		return nil, fmt.Errorf("fleet: Options.Run is required")
	}
	if opts.Store != nil && opts.Config == nil {
		return nil, fmt.Errorf("fleet: store configured without a Config function")
	}
	if opts.LeaseTTL > 0 && opts.Store == nil {
		return nil, fmt.Errorf("fleet: LeaseTTL configured without a store")
	}
	if opts.LeaseTTL < 0 {
		return nil, fmt.Errorf("fleet: negative LeaseTTL %v", opts.LeaseTTL)
	}

	rep := &Report{Shards: make([]Shard, len(profiles))}
	for i, p := range profiles {
		rep.Shards[i].Profile = p
	}
	if len(profiles) == 0 {
		return rep, nil
	}

	sw := &sweeper{opts: opts, owner: opts.Owner, tracer: opts.Tracer}
	if sw.owner == "" {
		sw.owner = defaultOwner()
	}
	var root *obs.Span
	if sw.tracer != nil {
		root = sw.tracer.StartRoot("fleet.sweep")
		root.SetAttr("owner", sw.owner)
		root.SetAttr("shards", fmt.Sprintf("%d", len(profiles)))
		root.SetAttr("replicas", fmt.Sprintf("%d", opts.replicas(len(profiles))))
		sw.rootCtx = root.Context()
		rep.TraceID = sw.rootCtx.TraceID.String()
		defer root.End()
		// Install the sweep's trace identity on every store client in
		// reach, and clear it when the sweep ends so later traffic is not
		// misattributed. A deferred Put journals the context it was issued
		// under, so even a reconcile replayed after this clear still
		// carries this sweep's trace ID.
		for _, c := range []obs.TraceContextSetter{traceSetter(opts.Store), opts.TraceCarrier} {
			if c != nil {
				c.SetTraceContext(sw.rootCtx)
				defer c.SetTraceContext(obs.SpanContext{})
			}
		}
	}
	var before store.ResilienceStats
	var replBefore store.ReplicationStats
	if opts.Store != nil {
		sw.degrade = resolvePolicy(opts.StoreErrors, opts.Store)
		if r, ok := opts.Store.(store.Resilient); ok {
			// Snapshot the backend's journal counters so the report can
			// attribute this sweep's share of deferred/reconciled traffic
			// (the backend's totals span its whole lifetime).
			before = r.Resilience()
		}
		if r, ok := opts.Store.(store.Replicated); ok {
			replBefore = r.ReplicationStats()
		}
	}

	offset := shardOffset(profiles, opts)
	rep.ShardOffset = offset
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < opts.replicas(len(profiles)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(profiles) || sw.failed.Load() {
					return
				}
				idx := (i + offset) % len(profiles)
				sh := &rep.Shards[idx]
				if err := sw.runShard(sh, idx); err != nil {
					if errors.Is(err, errAborted) {
						return // unreached, not failed
					}
					sh.Err = err
					sw.failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	rep.Hits = int(sw.hits.Load())
	rep.Computed = int(sw.computed.Load())
	rep.Claimed = int(sw.claimed.Load())
	rep.Waited = int(sw.waited.Load())
	rep.Stolen = int(sw.stolen.Load())
	rep.Degraded = int(sw.degraded.Load())
	if opts.Store != nil {
		if r, ok := opts.Store.(store.Resilient); ok {
			after := r.Resilience()
			rep.Deferred = int(after.Deferred - before.Deferred)
			rep.Reconciled = int(after.Reconciled - before.Reconciled)
		}
		if r, ok := opts.Store.(store.Replicated); ok {
			// Gauges stay absolute; traffic counters become this sweep's
			// share, mirroring the Deferred/Reconciled attribution above.
			rs := r.ReplicationStats()
			rs.Failovers -= replBefore.Failovers
			rs.UnderReplicatedPuts -= replBefore.UnderReplicatedPuts
			rs.ReadRepairs -= replBefore.ReadRepairs
			rs.ScrubRepairs -= replBefore.ScrubRepairs
			rs.ScrubRuns -= replBefore.ScrubRuns
			rep.Replication = &rs
		}
	}

	var shardErr error
	for i := range rep.Shards {
		if rep.Shards[i].Err != nil {
			shardErr = fmt.Errorf("fleet: shard %d (%s/%d): %w",
				i, rep.Shards[i].Profile.Key, rep.Shards[i].Profile.Instance, rep.Shards[i].Err)
			break
		}
	}

	// The watermark pass runs even after a shard failure — completed
	// shards were persisted and count against the bound either way — but
	// its own error never masks the shard's.
	if opts.Store != nil && opts.GCWatermarkBytes > 0 {
		gs, ran, gcErr := GCAtWatermark(opts.Store, opts.GCWatermarkBytes)
		if ran {
			rep.GC = gs
		}
		if gcErr != nil && shardErr == nil {
			shardErr = fmt.Errorf("fleet: gc at watermark: %w", gcErr)
		}
	}
	return rep, shardErr
}

// traceSetter returns the backend's trace-context carrier, nil when the
// backend is nil or does not carry one (a plain directory store).
func traceSetter(b store.Backend) obs.TraceContextSetter {
	if b == nil {
		return nil
	}
	s, _ := b.(obs.TraceContextSetter)
	return s
}

// shardOffset resolves the starting index of a sweep's shard walk:
// the explicit Options.ShardOffset normalised into [0, n), or — in
// auto mode — the first shard the store shows as neither cached nor
// claimed by a live peer. Auto failures (a degraded remote Index, a
// key error) fall back to the explicit offset: scheduling is a hint,
// never a gate.
func shardOffset(profiles []hwprofile.Profile, opts Options) int {
	n := len(profiles)
	if n == 0 {
		return 0
	}
	offset := ((opts.ShardOffset % n) + n) % n
	if !opts.AutoShardOffset || opts.Store == nil {
		return offset
	}
	plans, err := Plan(profiles, opts)
	if err != nil {
		return offset
	}
	for i, p := range plans {
		if !p.Cached && p.LeaseHolder == "" {
			return i
		}
	}
	return offset
}

// GCAtWatermark runs one size-bounded GC pass when the store's indexed
// bytes exceed the watermark, keeping long-lived caches bounded without
// operator action. It reports whether a pass ran; under the watermark
// it costs one Index call and touches nothing.
func GCAtWatermark(b store.Backend, watermark int64) (*store.GCStats, bool, error) {
	if b == nil || watermark <= 0 {
		return nil, false, nil
	}
	if store.IndexedBytes(b.Index()) <= watermark {
		return nil, false, nil
	}
	gs, err := b.GC(store.GCPolicy{MaxBytes: watermark})
	if err != nil {
		return nil, true, err
	}
	return &gs, true, nil
}

// runShard resolves one shard: store lookup, claim (in lease mode),
// compute on miss, persist.
func (w *sweeper) runShard(sh *Shard, idx int) error {
	span := w.shardSpan(sh, idx)
	defer span.End()
	var cfg core.Config
	if w.opts.Config != nil {
		cfg = w.opts.Config(sh.Profile)
	}
	if w.opts.Store != nil {
		k, err := store.ProfileKey(sh.Profile, cfg)
		if err != nil {
			span.SetAttr("outcome", "error")
			return err
		}
		sh.Key = k
		t0 := time.Now()
		res, ok := w.opts.Store.Get(k)
		sh.StoreNs += time.Since(t0).Nanoseconds()
		if ok {
			span.Event("store.hit")
			span.SetAttr("outcome", "cache")
			sh.Result = res
			sh.FromCache = true
			w.hits.Add(1)
			return nil
		}
		span.Event("store.miss")
		if w.opts.LeaseTTL > 0 {
			return w.claimAndRun(sh, cfg, span)
		}
	}
	return w.computeAndPersist(sh, cfg, nil, span)
}

// claimAndRun is the cross-process loop: claim the shard's lease and
// compute, or wait on a live peer's claim until its result lands in the
// store, stealing the claim if the peer's lease expires first.
func (w *sweeper) claimAndRun(sh *Shard, cfg core.Config, span *obs.Span) error {
	st := w.opts.Store
	poll := w.opts.WaitPoll
	if poll <= 0 {
		poll = defaultWaitPoll
	}
	waitedHere := false
	for {
		lease, ok, err := st.TryAcquire(sh.Key.Digest, w.owner, w.opts.LeaseTTL)
		if err != nil {
			if w.degrade {
				// The lease arbiter is unreachable. Compute unleased: a
				// peer may duplicate this shard, but campaigns are
				// deterministic, so duplicated work writes identical bytes
				// — never a wrong result, and never a lost shard.
				span.Event("degrade.unleased")
				w.degraded.Add(1)
				return w.computeAndPersist(sh, cfg, nil, span)
			}
			return fmt.Errorf("claim: %w", err)
		}
		if ok {
			span.Event("claim")
			w.claimed.Add(1)
			if lease.Stolen() {
				span.Event("steal")
				w.stolen.Add(1)
			}
			// The previous holder may have finished between our miss and
			// this claim; a hit here is its result, not a wasted claim.
			t0 := time.Now()
			res, hit := st.Get(sh.Key)
			sh.StoreNs += time.Since(t0).Nanoseconds()
			if hit {
				_ = lease.Release()
				span.Event("store.hit")
				span.SetAttr("outcome", "cache")
				sh.Result = res
				sh.FromCache = true
				w.hits.Add(1)
				return nil
			}
			return w.computeAndPersist(sh, cfg, lease, span)
		}
		// A live peer holds the claim: its result will appear in the
		// store, or its lease will expire and the claim attempt above
		// will steal. Either way the shard resolves.
		if !waitedHere {
			waitedHere = true
			span.Event("wait")
			w.waited.Add(1)
		}
		if w.failed.Load() {
			return errAborted
		}
		t0 := time.Now()
		time.Sleep(poll)
		sh.WaitNs += time.Since(t0).Nanoseconds()
		if st.Has(sh.Key) {
			t1 := time.Now()
			res, hit := st.Get(sh.Key)
			sh.StoreNs += time.Since(t1).Nanoseconds()
			if hit {
				span.Event("store.hit")
				span.SetAttr("outcome", "peer")
				sh.Result = res
				sh.FromCache = true
				w.hits.Add(1)
				return nil
			}
			// Has saw a blob Get could not read: the corrupt blob was
			// healed; loop back to claim and recompute it.
		}
	}
}

// computeAndPersist runs the shard and writes it through, renewing the
// lease (when one is held) at half-TTL so a long campaign is not stolen
// mid-compute.
func (w *sweeper) computeAndPersist(sh *Shard, cfg core.Config, lease store.LeaseHandle, span *obs.Span) error {
	var stopRenew func()
	if lease != nil {
		stopRenew = renewLoop(lease, w.opts.LeaseTTL)
	}
	span.Event("compute")
	t0 := time.Now()
	res, err := w.opts.Run(sh.Profile, cfg)
	sh.ComputeNs = time.Since(t0).Nanoseconds()
	if stopRenew != nil {
		stopRenew()
	}
	if lease != nil {
		defer lease.Release()
	}
	if err != nil {
		span.SetAttr("outcome", "error")
		return err
	}
	sh.Result = res
	w.computed.Add(1)
	span.SetAttr("outcome", "computed")
	if w.opts.Store != nil {
		// A failed write means the store the caller asked for is broken
		// (full disk, bad permissions); surfacing it beats silently
		// recomputing every shard forever — unless the degrade policy
		// says otherwise, in which case the result stays in the report
		// (this process loses nothing) and only the shared tier misses
		// it until a future sweep recomputes or reconciles.
		var deferredBefore int64
		r, resilient := w.opts.Store.(store.Resilient)
		if resilient {
			deferredBefore = r.Resilience().Deferred
		}
		span.Event("put")
		t1 := time.Now()
		err := w.opts.Store.Put(sh.Key, res)
		sh.StoreNs += time.Since(t1).Nanoseconds()
		if err != nil {
			if w.degrade {
				span.Event("degrade.unpersisted")
				w.degraded.Add(1)
				return nil
			}
			return fmt.Errorf("persist: %w", err)
		}
		// A Put that the resilient tier absorbed locally (journal + defer)
		// succeeded from this shard's view but has not reached the remote;
		// mark it so the trace shows which shards ride the journal. The
		// counter is backend-global, so under concurrent workers the event
		// can land on a sibling shard's span — a diagnostic marker, not a
		// ledger (Report.Deferred is the ledger).
		if resilient && r.Resilience().Deferred > deferredBefore {
			span.Event("put.deferred")
		}
	}
	return nil
}

// renewLoop keeps a held lease fresh until stopped. The returned stop
// function blocks until the renewer has exited, so a Release that
// follows cannot race a final Renew.
func renewLoop(lease store.LeaseHandle, ttl time.Duration) func() {
	interval := ttl / 2
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				_ = lease.Renew(ttl)
			}
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}
