package fleet

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"golatest/internal/core"
	"golatest/internal/hwprofile"
	"golatest/internal/obs"
	"golatest/internal/store"
)

// spanByName pulls the single span with the given name out of a
// snapshot, failing the test on zero or many.
func spanByName(t *testing.T, spans []obs.SpanRecord, name string) obs.SpanRecord {
	t.Helper()
	var found []obs.SpanRecord
	for _, s := range spans {
		if s.Name == name {
			found = append(found, s)
		}
	}
	if len(found) != 1 {
		t.Fatalf("want exactly one %q span, got %d", name, len(found))
	}
	return found[0]
}

func hasEvent(s obs.SpanRecord, name string) bool {
	for _, e := range s.Events {
		if e.Name == name {
			return true
		}
	}
	return false
}

func attr(s obs.SpanRecord, key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestSweepTraceTreeCoversEveryShard is the tentpole's core contract: a
// traced lease-mode sweep produces one root span and one child span per
// shard, each in its own timeline lane, carrying the claim/compute/put
// event sequence — and the warm re-run shows the same shards resolving
// as store hits under a fresh trace ID.
func TestSweepTraceTreeCoversEveryShard(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New(obs.Options{Seed: 42})
	profiles := testProfiles(4)
	var calls atomic.Int64
	run := fakeRun(&calls)
	opts := Options{
		Store:  st,
		Config: testConfig,
		Run: func(p hwprofile.Profile, cfg core.Config) (*core.Result, error) {
			time.Sleep(time.Millisecond) // make ComputeNs visibly nonzero
			return run(p, cfg)
		},
		LeaseTTL: time.Second,
		Tracer:   tr,
	}

	rep, err := Sweep(profiles, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TraceID == "" {
		t.Fatal("traced sweep reported no TraceID")
	}
	spans := tr.Snapshot()
	root := spanByName(t, spans, "fleet.sweep")
	if root.Context.TraceID.String() != rep.TraceID {
		t.Fatalf("Report.TraceID %s != root trace %s", rep.TraceID, root.Context.TraceID)
	}
	if attr(root, "owner") == "" || attr(root, "shards") != "4" {
		t.Fatalf("root attrs incomplete: %+v", root.Attrs)
	}

	var shards []obs.SpanRecord
	seenTID := map[int]bool{}
	for _, s := range spans {
		if s.Name != "fleet.shard" {
			continue
		}
		shards = append(shards, s)
		if s.Parent != root.Context.SpanID {
			t.Fatalf("shard span not parented under root: %+v", s)
		}
		if s.Context.TraceID != root.Context.TraceID {
			t.Fatalf("shard span has foreign trace ID: %+v", s)
		}
		if s.TID < 1 || s.TID > len(profiles) || seenTID[s.TID] {
			t.Fatalf("shard TID %d out of range or duplicated", s.TID)
		}
		seenTID[s.TID] = true
		for _, ev := range []string{"store.miss", "claim", "compute", "put"} {
			if !hasEvent(s, ev) {
				t.Fatalf("cold shard span missing %q event: %+v", ev, s.Events)
			}
		}
		if attr(s, "outcome") != "computed" || attr(s, "profile") == "" {
			t.Fatalf("cold shard span attrs: %+v", s.Attrs)
		}
	}
	if len(shards) != len(profiles) {
		t.Fatalf("want %d shard spans, got %d", len(profiles), len(shards))
	}
	for i, sh := range rep.Shards {
		if sh.ComputeNs <= 0 {
			t.Fatalf("shard %d ComputeNs = %d", i, sh.ComputeNs)
		}
		if sh.StoreNs <= 0 {
			t.Fatalf("shard %d StoreNs = %d", i, sh.StoreNs)
		}
	}

	// Warm sweep under the same tracer: new root (fresh trace ID), every
	// shard a store hit.
	tr.Reset()
	rep2, err := Sweep(profiles, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.TraceID == "" || rep2.TraceID == rep.TraceID {
		t.Fatalf("warm sweep trace ID %q should be fresh (cold was %q)", rep2.TraceID, rep.TraceID)
	}
	for _, s := range tr.Snapshot() {
		if s.Name != "fleet.shard" {
			continue
		}
		if !hasEvent(s, "store.hit") || attr(s, "outcome") != "cache" {
			t.Fatalf("warm shard span: events=%v attrs=%v", s.Events, s.Attrs)
		}
		if hasEvent(s, "compute") {
			t.Fatalf("warm shard span computed: %v", s.Events)
		}
	}
}

// recordingCarrier captures every SetTraceContext call. Sweep calls it
// from the driving goroutine only, so no locking is needed.
type recordingCarrier struct {
	calls []obs.SpanContext
}

func (c *recordingCarrier) SetTraceContext(sc obs.SpanContext) {
	c.calls = append(c.calls, sc)
}

// TestSweepInstallsAndClearsTraceContext: the sweep hands its root
// context to the trace carrier before shards run and clears it on the
// way out, so post-sweep store traffic is not misattributed.
func TestSweepInstallsAndClearsTraceContext(t *testing.T) {
	tr := obs.New(obs.Options{Seed: 7})
	carrier := &recordingCarrier{}
	var calls atomic.Int64
	rep, err := Sweep(testProfiles(2), Options{
		Run:          fakeRun(&calls),
		Tracer:       tr,
		TraceCarrier: carrier,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(carrier.calls) != 2 {
		t.Fatalf("want install+clear, got %d calls: %v", len(carrier.calls), carrier.calls)
	}
	if got := carrier.calls[0].TraceID.String(); got != rep.TraceID {
		t.Fatalf("installed trace %s != report trace %s", got, rep.TraceID)
	}
	if carrier.calls[1].Valid() {
		t.Fatalf("trace context not cleared after sweep: %+v", carrier.calls[1])
	}
}

// TestUntracedSweepCollectsTimings: the wall-clock attribution fields
// are populated with tracing off, and the timing table renders them.
func TestUntracedSweepCollectsTimings(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	rep, err := Sweep(testProfiles(2), Options{Store: st, Config: testConfig, Run: fakeRun(&calls)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TraceID != "" {
		t.Fatalf("untraced sweep has TraceID %q", rep.TraceID)
	}
	for i, sh := range rep.Shards {
		if sh.StoreNs <= 0 {
			t.Fatalf("shard %d StoreNs = %d with store configured", i, sh.StoreNs)
		}
	}
	var b strings.Builder
	if err := rep.WriteTimingTable(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "shard") || !strings.Contains(out, "a100/0") || !strings.Contains(out, "computed") {
		t.Fatalf("timing table missing expected columns:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 3 { // header + 2 shards
		t.Fatalf("timing table has %d lines:\n%s", lines, out)
	}
}
