package fleet

import (
	"sync/atomic"
	"testing"
	"time"

	"golatest/internal/store"
	"golatest/internal/storenet/faults"
)

// TestSweepDegradePolicySurvivesStoreFailures: with the degrade policy,
// a store whose writes and claims all fail (a total backend outage,
// scripted through the fault wrapper) no longer aborts the sweep —
// every shard still computes and lands in the report, with the
// fallbacks counted.
func TestSweepDegradePolicySurvivesStoreFailures(t *testing.T) {
	inner, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b := faults.WrapBackend(inner, faults.Plan{})
	b.Kill()

	profiles := testProfiles(4)
	var calls atomic.Int64
	rep, err := Sweep(profiles, Options{
		Store:       b,
		Config:      testConfig,
		Run:         fakeRun(&calls),
		LeaseTTL:    time.Minute,
		WaitPoll:    time.Millisecond,
		StoreErrors: StoreErrorsDegrade,
	})
	if err != nil {
		t.Fatalf("degrade-policy sweep failed: %v", err)
	}
	if calls.Load() != 4 || rep.Computed != 4 {
		t.Fatalf("calls=%d computed=%d, want 4 each", calls.Load(), rep.Computed)
	}
	for i, sh := range rep.Shards {
		if sh.Result == nil {
			t.Fatalf("shard %d lost to the store outage", i)
		}
	}
	// Each shard fell back twice: once around the failed claim, once
	// around the failed Put.
	if rep.Degraded != 8 {
		t.Fatalf("Degraded = %d, want 8 (claim + persist per shard)", rep.Degraded)
	}
	if inner.Len() != 0 {
		t.Fatalf("store holds %d blobs despite the outage", inner.Len())
	}
}

// TestSweepAutoPolicyAbortsOnPlainStore: auto must resolve to abort for
// a backend with no local fallback tier — silently losing persistence
// on a plain store directory would defeat the resumability contract.
func TestSweepAutoPolicyAbortsOnPlainStore(t *testing.T) {
	inner, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b := faults.WrapBackend(inner, faults.Plan{})
	b.Kill()

	var calls atomic.Int64
	_, err = Sweep(testProfiles(2), Options{
		Store:    b,
		Config:   testConfig,
		Run:      fakeRun(&calls),
		LeaseTTL: time.Minute,
		WaitPoll: time.Millisecond,
		// StoreErrors left at auto: the wrapper forwards the inner
		// store's (absent) resilience, so this must behave like abort.
	})
	if err == nil {
		t.Fatal("auto policy degraded over a store with no fallback tier")
	}
}

// TestSweepDegradeAbsorbsPartialFailures: a flaky (not dead) store
// under the degrade policy costs fallbacks, never shards. Seeded rates
// make the fault schedule — and therefore the assertion — reproducible.
func TestSweepDegradeAbsorbsPartialFailures(t *testing.T) {
	inner, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b := faults.WrapBackend(inner, faults.Plan{Seed: 11, FailRate: 0.4})

	profiles := testProfiles(6)
	var calls atomic.Int64
	rep, err := Sweep(profiles, Options{
		Store:       b,
		Config:      testConfig,
		Run:         fakeRun(&calls),
		LeaseTTL:    time.Minute,
		WaitPoll:    time.Millisecond,
		StoreErrors: StoreErrorsDegrade,
	})
	if err != nil {
		t.Fatalf("sweep over flaky store: %v", err)
	}
	for i, sh := range rep.Shards {
		if sh.Result == nil {
			t.Fatalf("shard %d lost to a transient fault", i)
		}
	}
	if inj := b.Injected(); inj.Failed == 0 {
		t.Fatal("FailRate 0.4 injected nothing; the test exercised only the happy path")
	}
}

func TestResolvePolicy(t *testing.T) {
	plain, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if resolvePolicy(StoreErrorsAuto, plain) {
		t.Fatal("auto resolved to degrade on a plain store")
	}
	if !resolvePolicy(StoreErrorsDegrade, plain) {
		t.Fatal("explicit degrade ignored")
	}
	if resolvePolicy(StoreErrorsAbort, plain) {
		t.Fatal("explicit abort ignored")
	}
	for p, want := range map[StoreErrorPolicy]string{
		StoreErrorsAuto:    "auto",
		StoreErrorsAbort:   "abort",
		StoreErrorsDegrade: "degrade",
	} {
		if got := p.String(); got != want {
			t.Fatalf("String(%d) = %q, want %q", int(p), got, want)
		}
	}
}
