package fleet

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"golatest/internal/core"
	"golatest/internal/hwprofile"
	"golatest/internal/store"
)

func testProfiles(n int) []hwprofile.Profile {
	out := make([]hwprofile.Profile, n)
	for i := range out {
		out[i] = hwprofile.A100Instance(i)
	}
	return out
}

func testConfig(p hwprofile.Profile) core.Config {
	return core.Config{
		Frequencies: []float64{705, 1065, 1410},
		Seed:        100 + uint64(p.Instance),
	}
}

// fakeRun produces a tiny synthetic result and counts invocations; fleet
// never inspects result internals, so campaigns need not be real here.
func fakeRun(calls *atomic.Int64) func(hwprofile.Profile, core.Config) (*core.Result, error) {
	return func(p hwprofile.Profile, cfg core.Config) (*core.Result, error) {
		calls.Add(1)
		return &core.Result{
			DeviceName:   fmt.Sprintf("%s[%d]", p.Key, p.Instance),
			Architecture: p.Config.Architecture,
		}, nil
	}
}

func TestSweepComputesThenHits(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	profiles := testProfiles(3)
	var calls atomic.Int64
	opts := Options{Store: st, Config: testConfig, Run: fakeRun(&calls)}

	rep, err := Sweep(profiles, opts)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 || rep.Computed != 3 || rep.Hits != 0 {
		t.Fatalf("cold sweep: calls=%d computed=%d hits=%d", calls.Load(), rep.Computed, rep.Hits)
	}
	for i, sh := range rep.Shards {
		if sh.Result == nil || sh.FromCache {
			t.Fatalf("shard %d: %+v", i, sh)
		}
		if sh.Key.Digest == "" {
			t.Fatalf("shard %d has no content address", i)
		}
	}

	// Warm sweep: everything served from the store, zero recomputation.
	rep2, err := Sweep(profiles, opts)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 || rep2.Computed != 0 || rep2.Hits != 3 {
		t.Fatalf("warm sweep: calls=%d computed=%d hits=%d", calls.Load(), rep2.Computed, rep2.Hits)
	}
	for i, sh := range rep2.Shards {
		if !sh.FromCache || sh.Result == nil {
			t.Fatalf("warm shard %d not from cache: %+v", i, sh)
		}
		if sh.Result.DeviceName != rep.Shards[i].Result.DeviceName {
			t.Fatalf("warm shard %d result diverged", i)
		}
	}
	if got := rep2.Results(); len(got) != 3 || got[2].DeviceName != "a100[2]" {
		t.Fatalf("Results() = %v", got)
	}
}

func TestSweepResumesAfterFailure(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	profiles := testProfiles(4)
	var calls atomic.Int64
	inner := fakeRun(&calls)

	// First sweep dies on unit 2. Replicas=1 makes the completed prefix
	// deterministic: units 0 and 1 land in the store before the abort.
	failing := Options{Replicas: 1, Store: st, Config: testConfig,
		Run: func(p hwprofile.Profile, cfg core.Config) (*core.Result, error) {
			if p.Instance == 2 {
				return nil, fmt.Errorf("device fell off the bus")
			}
			return inner(p, cfg)
		}}
	rep, err := Sweep(profiles, failing)
	if err == nil {
		t.Fatal("failing sweep reported success")
	}
	if rep.Computed != 2 || rep.Shards[2].Err == nil || rep.Shards[3].Result != nil {
		t.Fatalf("partial report: computed=%d shards=%+v", rep.Computed, rep.Shards)
	}

	// The plan shows exactly the completed prefix as cached.
	cached, err := Plan(profiles, failing)
	if err != nil {
		t.Fatal(err)
	}
	if want := []bool{true, true, false, false}; fmt.Sprint(cached) != fmt.Sprint(want) {
		t.Fatalf("Plan = %v, want %v", cached, want)
	}

	// The healed re-run recomputes only the missing shards.
	calls.Store(0)
	rep2, err := Sweep(profiles, Options{Replicas: 1, Store: st, Config: testConfig, Run: inner})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 || rep2.Hits != 2 || rep2.Computed != 2 {
		t.Fatalf("resume: calls=%d hits=%d computed=%d", calls.Load(), rep2.Hits, rep2.Computed)
	}
	if !rep2.Shards[0].FromCache || !rep2.Shards[1].FromCache ||
		rep2.Shards[2].FromCache || rep2.Shards[3].FromCache {
		t.Fatalf("resume cache pattern: %+v", rep2.Shards)
	}
}

func TestSweepBoundsReplicas(t *testing.T) {
	var inFlight, peak, calls atomic.Int64
	opts := Options{Replicas: 2,
		Run: func(p hwprofile.Profile, cfg core.Config) (*core.Result, error) {
			n := inFlight.Add(1)
			defer inFlight.Add(-1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			calls.Add(1)
			return &core.Result{}, nil
		}}
	rep, err := Sweep(testProfiles(6), opts)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 6 || rep.Computed != 6 {
		t.Fatalf("calls=%d computed=%d", calls.Load(), rep.Computed)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("replica pool peaked at %d, bound is 2", p)
	}
}

func TestSweepWithoutStore(t *testing.T) {
	var calls atomic.Int64
	opts := Options{Run: fakeRun(&calls)}
	rep, err := Sweep(testProfiles(2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 || rep.Hits != 0 || rep.Computed != 2 {
		t.Fatalf("calls=%d rep=%+v", calls.Load(), rep)
	}
	cached, err := Plan(testProfiles(2), opts)
	if err != nil || cached[0] || cached[1] {
		t.Fatalf("Plan without store: %v %v", cached, err)
	}
}

func TestSweepOptionValidation(t *testing.T) {
	if _, err := Sweep(testProfiles(1), Options{}); err == nil {
		t.Fatal("missing Run accepted")
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sweep(testProfiles(1), Options{Store: st, Run: fakeRun(new(atomic.Int64))}); err == nil {
		t.Fatal("store without Config accepted")
	}
}
