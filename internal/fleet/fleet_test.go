package fleet

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"golatest/internal/core"
	"golatest/internal/hwprofile"
	"golatest/internal/store"
)

func testProfiles(n int) []hwprofile.Profile {
	out := make([]hwprofile.Profile, n)
	for i := range out {
		out[i] = hwprofile.A100Instance(i)
	}
	return out
}

func testConfig(p hwprofile.Profile) core.Config {
	return core.Config{
		Frequencies: []float64{705, 1065, 1410},
		Seed:        100 + uint64(p.Instance),
	}
}

// fakeRun produces a tiny synthetic result and counts invocations; fleet
// never inspects result internals, so campaigns need not be real here.
func fakeRun(calls *atomic.Int64) func(hwprofile.Profile, core.Config) (*core.Result, error) {
	return func(p hwprofile.Profile, cfg core.Config) (*core.Result, error) {
		calls.Add(1)
		return &core.Result{
			DeviceName:   fmt.Sprintf("%s[%d]", p.Key, p.Instance),
			Architecture: p.Config.Architecture,
		}, nil
	}
}

func TestSweepComputesThenHits(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	profiles := testProfiles(3)
	var calls atomic.Int64
	opts := Options{Store: st, Config: testConfig, Run: fakeRun(&calls)}

	rep, err := Sweep(profiles, opts)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 || rep.Computed != 3 || rep.Hits != 0 {
		t.Fatalf("cold sweep: calls=%d computed=%d hits=%d", calls.Load(), rep.Computed, rep.Hits)
	}
	for i, sh := range rep.Shards {
		if sh.Result == nil || sh.FromCache {
			t.Fatalf("shard %d: %+v", i, sh)
		}
		if sh.Key.Digest == "" {
			t.Fatalf("shard %d has no content address", i)
		}
	}

	// Warm sweep: everything served from the store, zero recomputation.
	rep2, err := Sweep(profiles, opts)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 || rep2.Computed != 0 || rep2.Hits != 3 {
		t.Fatalf("warm sweep: calls=%d computed=%d hits=%d", calls.Load(), rep2.Computed, rep2.Hits)
	}
	for i, sh := range rep2.Shards {
		if !sh.FromCache || sh.Result == nil {
			t.Fatalf("warm shard %d not from cache: %+v", i, sh)
		}
		if sh.Result.DeviceName != rep.Shards[i].Result.DeviceName {
			t.Fatalf("warm shard %d result diverged", i)
		}
	}
	if got := rep2.Results(); len(got) != 3 || got[2].DeviceName != "a100[2]" {
		t.Fatalf("Results() = %v", got)
	}
}

func TestSweepResumesAfterFailure(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	profiles := testProfiles(4)
	var calls atomic.Int64
	inner := fakeRun(&calls)

	// First sweep dies on unit 2. Replicas=1 makes the completed prefix
	// deterministic: units 0 and 1 land in the store before the abort.
	failing := Options{Replicas: 1, Store: st, Config: testConfig,
		Run: func(p hwprofile.Profile, cfg core.Config) (*core.Result, error) {
			if p.Instance == 2 {
				return nil, fmt.Errorf("device fell off the bus")
			}
			return inner(p, cfg)
		}}
	rep, err := Sweep(profiles, failing)
	if err == nil {
		t.Fatal("failing sweep reported success")
	}
	if rep.Computed != 2 || rep.Shards[2].Err == nil || rep.Shards[3].Result != nil {
		t.Fatalf("partial report: computed=%d shards=%+v", rep.Computed, rep.Shards)
	}

	// The plan shows exactly the completed prefix as cached.
	plan, err := Plan(profiles, failing)
	if err != nil {
		t.Fatal(err)
	}
	cached := make([]bool, len(plan))
	for i, sp := range plan {
		cached[i] = sp.Cached
		if sp.Key.Digest == "" {
			t.Fatalf("plan shard %d has no content address", i)
		}
	}
	if want := []bool{true, true, false, false}; fmt.Sprint(cached) != fmt.Sprint(want) {
		t.Fatalf("Plan = %v, want %v", cached, want)
	}

	// The healed re-run recomputes only the missing shards.
	calls.Store(0)
	rep2, err := Sweep(profiles, Options{Replicas: 1, Store: st, Config: testConfig, Run: inner})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 || rep2.Hits != 2 || rep2.Computed != 2 {
		t.Fatalf("resume: calls=%d hits=%d computed=%d", calls.Load(), rep2.Hits, rep2.Computed)
	}
	if !rep2.Shards[0].FromCache || !rep2.Shards[1].FromCache ||
		rep2.Shards[2].FromCache || rep2.Shards[3].FromCache {
		t.Fatalf("resume cache pattern: %+v", rep2.Shards)
	}
}

func TestSweepBoundsReplicas(t *testing.T) {
	var inFlight, peak, calls atomic.Int64
	opts := Options{Replicas: 2,
		Run: func(p hwprofile.Profile, cfg core.Config) (*core.Result, error) {
			n := inFlight.Add(1)
			defer inFlight.Add(-1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			calls.Add(1)
			return &core.Result{}, nil
		}}
	rep, err := Sweep(testProfiles(6), opts)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 6 || rep.Computed != 6 {
		t.Fatalf("calls=%d computed=%d", calls.Load(), rep.Computed)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("replica pool peaked at %d, bound is 2", p)
	}
}

func TestSweepWithoutStore(t *testing.T) {
	var calls atomic.Int64
	opts := Options{Run: fakeRun(&calls)}
	rep, err := Sweep(testProfiles(2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 || rep.Hits != 0 || rep.Computed != 2 {
		t.Fatalf("calls=%d rep=%+v", calls.Load(), rep)
	}
	plan, err := Plan(testProfiles(2), opts)
	if err != nil || plan[0].Cached || plan[1].Cached || plan[0].LeaseHolder != "" {
		t.Fatalf("Plan without store: %v %v", plan, err)
	}
}

func TestSweepOptionValidation(t *testing.T) {
	if _, err := Sweep(testProfiles(1), Options{}); err == nil {
		t.Fatal("missing Run accepted")
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sweep(testProfiles(1), Options{Store: st, Run: fakeRun(new(atomic.Int64))}); err == nil {
		t.Fatal("store without Config accepted")
	}
	if _, err := Sweep(testProfiles(1), Options{Run: fakeRun(new(atomic.Int64)), LeaseTTL: time.Minute}); err == nil {
		t.Fatal("LeaseTTL without store accepted")
	}
	if _, err := Sweep(testProfiles(1), Options{Store: st, Config: testConfig,
		Run: fakeRun(new(atomic.Int64)), LeaseTTL: -time.Second}); err == nil {
		t.Fatal("negative LeaseTTL accepted")
	}
}

// TestSweepErrorCarriesShardIdentity: a failing shard's error must name
// the shard (profile/instance), and the failure must not roll back
// sibling shards already persisted — the resume contract depends on
// those writes surviving the abort.
func TestSweepErrorCarriesShardIdentity(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	profiles := testProfiles(4)
	var calls atomic.Int64
	inner := fakeRun(&calls)
	opts := Options{Replicas: 1, Store: st, Config: testConfig,
		Run: func(p hwprofile.Profile, cfg core.Config) (*core.Result, error) {
			if p.Instance == 2 {
				return nil, fmt.Errorf("device fell off the bus")
			}
			return inner(p, cfg)
		}}
	rep, err := Sweep(profiles, opts)
	if err == nil {
		t.Fatal("failing sweep reported success")
	}
	for _, want := range []string{"a100/2", "shard 2", "device fell off the bus"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not name the failing shard (want %q)", err, want)
		}
	}

	// Sibling shards completed before the abort are durable in the store.
	for i := 0; i < 2; i++ {
		k, kerr := store.ProfileKey(profiles[i], testConfig(profiles[i]))
		if kerr != nil {
			t.Fatal(kerr)
		}
		if !st.Has(k) {
			t.Fatalf("completed sibling shard %d lost its store write after the abort", i)
		}
		if _, ok := st.Get(k); !ok {
			t.Fatalf("sibling shard %d blob unreadable after the abort", i)
		}
	}
	if rep.Computed != 2 {
		t.Fatalf("computed = %d, want 2 completed siblings", rep.Computed)
	}
}

// TestSweepLeasePartition is the cross-process acceptance shape: two
// sweeps racing over one store directory must compute each shard exactly
// once between them, and both must finish with identical full results.
func TestSweepLeasePartition(t *testing.T) {
	dir := t.TempDir()
	profiles := testProfiles(6)
	type proc struct {
		rep   *Report
		err   error
		calls atomic.Int64
	}
	procs := make([]*proc, 2)
	var wg sync.WaitGroup
	for i := range procs {
		p := &proc{}
		procs[i] = p
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		owner := fmt.Sprintf("proc-%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.rep, p.err = Sweep(profiles, Options{
				Store:    st,
				Config:   testConfig,
				Run:      fakeRun(&p.calls),
				LeaseTTL: time.Minute,
				Owner:    owner,
				WaitPoll: 2 * time.Millisecond,
			})
		}()
	}
	wg.Wait()

	var computed, calls int64
	for i, p := range procs {
		if p.err != nil {
			t.Fatalf("proc %d: %v", i, p.err)
		}
		computed += int64(p.rep.Computed)
		calls += p.calls.Load()
		for j, sh := range p.rep.Shards {
			if sh.Result == nil {
				t.Fatalf("proc %d shard %d has no result", i, j)
			}
		}
	}
	if computed != int64(len(profiles)) || calls != int64(len(profiles)) {
		t.Fatalf("computed=%d calls=%d across both procs, want exactly %d each (shards duplicated or lost)",
			computed, calls, len(profiles))
	}
	// Both reports carry the identical result set, shard for shard.
	for j := range profiles {
		a := procs[0].rep.Shards[j].Result
		b := procs[1].rep.Shards[j].Result
		if a.DeviceName != b.DeviceName || a.Architecture != b.Architecture {
			t.Fatalf("shard %d diverged between procs: %+v vs %+v", j, a, b)
		}
	}
}

// TestSweepLeaseWaitsForPeer: a shard claimed by a live peer is not
// recomputed — the sweep waits and takes the peer's result from the
// store.
func TestSweepLeaseWaitsForPeer(t *testing.T) {
	dir := t.TempDir()
	stPeer, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stLocal, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	profiles := testProfiles(2)
	k0, err := store.ProfileKey(profiles[0], testConfig(profiles[0]))
	if err != nil {
		t.Fatal(err)
	}
	// The "peer": holds shard 0's lease, delivers its result mid-sweep.
	lease, ok, err := stPeer.TryAcquire(k0.Digest, "peer", time.Minute)
	if err != nil || !ok {
		t.Fatalf("peer claim: ok=%v err=%v", ok, err)
	}
	peerDone := make(chan error, 1)
	go func() {
		time.Sleep(30 * time.Millisecond)
		if err := stPeer.Put(k0, &core.Result{DeviceName: "a100[0]"}); err != nil {
			peerDone <- err
			return
		}
		peerDone <- lease.Release()
	}()

	var calls atomic.Int64
	rep, err := Sweep(profiles, Options{
		Store: stLocal, Config: testConfig, Run: fakeRun(&calls),
		LeaseTTL: time.Minute, Owner: "local", WaitPoll: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-peerDone; err != nil {
		t.Fatalf("peer: %v", err)
	}
	if calls.Load() != 1 || rep.Computed != 1 {
		t.Fatalf("local sweep computed %d shards (calls=%d), want only the unclaimed one",
			rep.Computed, calls.Load())
	}
	if rep.Waited != 1 {
		t.Fatalf("Waited = %d, want 1", rep.Waited)
	}
	if !rep.Shards[0].FromCache || rep.Shards[0].Result.DeviceName != "a100[0]" {
		t.Fatalf("shard 0 not served from the peer's write: %+v", rep.Shards[0])
	}
}

// TestSweepLeaseStealsExpired: a dead peer's expired lease must not
// block the shard forever — the sweep steals it and computes.
func TestSweepLeaseStealsExpired(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	profiles := testProfiles(2)
	k0, err := store.ProfileKey(profiles[0], testConfig(profiles[0]))
	if err != nil {
		t.Fatal(err)
	}
	// A lease whose holder died: tiny TTL, never renewed, never released.
	if _, ok, err := st.TryAcquire(k0.Digest, "dead-peer", time.Millisecond); err != nil || !ok {
		t.Fatalf("dead peer claim: ok=%v err=%v", ok, err)
	}
	time.Sleep(10 * time.Millisecond)

	var calls atomic.Int64
	rep, err := Sweep(profiles, Options{
		Store: st, Config: testConfig, Run: fakeRun(&calls),
		LeaseTTL: time.Minute, Owner: "survivor", WaitPoll: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Computed != 2 || calls.Load() != 2 {
		t.Fatalf("computed=%d calls=%d, want both shards computed", rep.Computed, calls.Load())
	}
	if rep.Stolen != 1 {
		t.Fatalf("Stolen = %d, want 1", rep.Stolen)
	}
}

// TestSweepLeaseWarmIsAllHits: lease mode changes who computes, never
// what a warm sweep looks like.
func TestSweepLeaseWarmIsAllHits(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	profiles := testProfiles(3)
	var calls atomic.Int64
	opts := Options{Store: st, Config: testConfig, Run: fakeRun(&calls),
		LeaseTTL: time.Minute, Owner: "solo", WaitPoll: 2 * time.Millisecond}
	if _, err := Sweep(profiles, opts); err != nil {
		t.Fatal(err)
	}
	rep, err := Sweep(profiles, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hits != 3 || rep.Computed != 0 || rep.Claimed != 0 || calls.Load() != 3 {
		t.Fatalf("warm lease sweep: %+v calls=%d", rep, calls.Load())
	}
	// No lease debris left behind.
	entries, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".lease") {
			t.Fatalf("lease file %s left behind after clean sweeps", e.Name())
		}
	}
}

// TestPlanReportsLeaseHolder: the plan exposes who holds each shard's
// claim, so a scheduler can route processes at disjoint ranges up front.
func TestPlanReportsLeaseHolder(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	profiles := testProfiles(3)
	opts := Options{Store: st, Config: testConfig, Run: fakeRun(new(atomic.Int64))}

	k0, err := store.ProfileKey(profiles[0], testConfig(profiles[0]))
	if err != nil {
		t.Fatal(err)
	}
	lease, ok, err := st.TryAcquire(k0.Digest, "peer-7", time.Minute)
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	// Shard 1 is cached; an *expired* claim on shard 2 must read as free.
	if err := st.Put(mustProfileKey(t, profiles[1]), &core.Result{DeviceName: "cached"}); err != nil {
		t.Fatal(err)
	}
	k2 := mustProfileKey(t, profiles[2])
	if _, ok, err := st.TryAcquire(k2.Digest, "dead", time.Millisecond); err != nil || !ok {
		t.Fatalf("dead claim: ok=%v err=%v", ok, err)
	}
	time.Sleep(10 * time.Millisecond)

	plan, err := Plan(profiles, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan[0].LeaseHolder != "peer-7" || plan[0].Cached {
		t.Fatalf("plan[0] = %+v, want live holder peer-7, uncached", plan[0])
	}
	if !plan[1].Cached || plan[1].LeaseHolder != "" {
		t.Fatalf("plan[1] = %+v, want cached, unclaimed", plan[1])
	}
	if plan[2].LeaseHolder != "" {
		t.Fatalf("plan[2] = %+v, an expired claim must read as free", plan[2])
	}
	if err := lease.Release(); err != nil {
		t.Fatal(err)
	}
}

func mustProfileKey(t *testing.T, p hwprofile.Profile) store.Key {
	t.Helper()
	k, err := store.ProfileKey(p, testConfig(p))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestSweepWatermarkGC: a sweep whose store outgrew the watermark runs
// one size-bounded GC pass afterwards and reports it; under the
// watermark no pass runs.
func TestSweepWatermarkGC(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	profiles := testProfiles(4)
	var calls atomic.Int64
	over := Options{Store: st, Config: testConfig, Run: fakeRun(&calls), GCWatermarkBytes: 1}
	rep, err := Sweep(profiles, over)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GC == nil {
		t.Fatal("no watermark GC pass despite a 1-byte watermark")
	}
	if rep.GC.Evicted == 0 || st.Len() != 0 {
		t.Fatalf("watermark pass evicted %d, %d blobs left; want everything gone under a 1-byte bound",
			rep.GC.Evicted, st.Len())
	}
	// Every shard still carries its result: GC bounds the cache, never
	// the sweep in hand.
	for i, sh := range rep.Shards {
		if sh.Result == nil {
			t.Fatalf("shard %d lost its result to the GC pass", i)
		}
	}

	// A generous watermark leaves the store alone.
	calls.Store(0)
	rep2, err := Sweep(profiles, Options{Store: st, Config: testConfig, Run: fakeRun(&calls),
		GCWatermarkBytes: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.GC != nil {
		t.Fatalf("GC pass ran below the watermark: %+v", rep2.GC)
	}
	if st.Len() != len(profiles) {
		t.Fatalf("store len = %d, want %d", st.Len(), len(profiles))
	}
}

// TestSweepShardOffsetRotation: an explicit offset changes only the
// order shards are visited — every shard still resolves into its own
// report slot, and negative/oversized offsets normalise into range.
func TestSweepShardOffsetRotation(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	profiles := testProfiles(4)
	var calls atomic.Int64
	rep, err := Sweep(profiles, Options{
		Replicas: 1, Store: st, Config: testConfig, Run: fakeRun(&calls),
		ShardOffset: -3, // ≡ 1 mod 4
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ShardOffset != 1 {
		t.Fatalf("ShardOffset = %d, want -3 normalised to 1", rep.ShardOffset)
	}
	if calls.Load() != 4 || rep.Computed != 4 {
		t.Fatalf("calls=%d computed=%d, want all 4 shards computed", calls.Load(), rep.Computed)
	}
	for i, sh := range rep.Shards {
		if sh.Result == nil || sh.Profile.Instance != i {
			t.Fatalf("shard %d misplaced or empty: %+v", i, sh)
		}
		if want := fmt.Sprintf("a100[%d]", i); sh.Result.DeviceName != want {
			t.Fatalf("shard %d result = %q, want %q (rotation scrambled shard identity)",
				i, sh.Result.DeviceName, want)
		}
	}
}

// TestAutoShardOffsetCutsContention is the lease-holder-aware
// scheduling contract: a sweep that starts while a peer holds shard
// 0's lease either piles onto that claim (naive order — it waits) or,
// with AutoShardOffset, consults the plan and starts past the claimed
// range, finding the peer's result already landed by the time it wraps
// around — Waited and Stolen drop to zero.
func TestAutoShardOffsetCutsContention(t *testing.T) {
	sweepAgainstPeer := func(auto bool) *Report {
		t.Helper()
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		profiles := testProfiles(3)
		k0 := mustProfileKey(t, profiles[0])
		lease, ok, err := st.TryAcquire(k0.Digest, "peer", time.Minute)
		if err != nil || !ok {
			t.Fatalf("peer claim: ok=%v err=%v", ok, err)
		}
		// The peer finishes its shard 40 ms in; the sweep's own shards
		// take 50 ms each, so an offset sweep reaches shard 0 at ~100 ms
		// — long after the peer's result landed — while a naive sweep
		// hits the live claim immediately and must wait.
		peerDone := make(chan struct{})
		go func() {
			defer close(peerDone)
			time.Sleep(40 * time.Millisecond)
			if err := st.Put(k0, &core.Result{DeviceName: "a100[0]"}); err != nil {
				t.Error(err)
			}
			_ = lease.Release()
		}()
		var calls atomic.Int64
		inner := fakeRun(&calls)
		rep, err := Sweep(profiles, Options{
			Replicas: 1,
			Store:    st,
			Config:   testConfig,
			Run: func(p hwprofile.Profile, cfg core.Config) (*core.Result, error) {
				time.Sleep(50 * time.Millisecond)
				return inner(p, cfg)
			},
			LeaseTTL:        time.Minute,
			Owner:           "sweeper",
			WaitPoll:        time.Millisecond,
			AutoShardOffset: auto,
		})
		<-peerDone
		if err != nil {
			t.Fatal(err)
		}
		for i, sh := range rep.Shards {
			if sh.Result == nil {
				t.Fatalf("shard %d unresolved", i)
			}
		}
		return rep
	}

	naive := sweepAgainstPeer(false)
	if naive.ShardOffset != 0 {
		t.Fatalf("naive ShardOffset = %d, want 0", naive.ShardOffset)
	}
	if naive.Waited == 0 {
		t.Fatal("naive order never waited on the peer's claim; the baseline shows no contention to cut")
	}

	auto := sweepAgainstPeer(true)
	if auto.ShardOffset != 1 {
		t.Fatalf("auto ShardOffset = %d, want 1 (first unclaimed, uncached shard)", auto.ShardOffset)
	}
	if auto.Waited != 0 || auto.Stolen != 0 {
		t.Fatalf("auto-offset sweep still contended: waited=%d stolen=%d (naive waited=%d)",
			auto.Waited, auto.Stolen, naive.Waited)
	}
	if auto.Hits != 1 || auto.Computed != 2 {
		t.Fatalf("auto sweep: hits=%d computed=%d, want the peer's shard served as a hit", auto.Hits, auto.Computed)
	}
}
