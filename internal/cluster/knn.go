package cluster

import (
	"math"
	"sort"
)

// KNNDistances returns, for each sample, the distance to its k-th nearest
// neighbour (k ≥ 1, self excluded). The returned slice is in input order.
// The classic DBSCAN eps heuristic reads the knee of the sorted version of
// this curve; the paper instead relates its average to the 0.05–0.95
// quantile range (§V-C), which AverageKNNDistance serves.
func KNNDistances(xs []float64, k int) []float64 {
	n := len(xs)
	out := make([]float64, n)
	if n == 0 || k <= 0 {
		return out
	}
	if k >= n {
		k = n - 1
	}
	if k == 0 {
		return out
	}

	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return xs[perm[a]] < xs[perm[b]] })
	sorted := make([]float64, n)
	for i, idx := range perm {
		sorted[i] = xs[idx]
	}

	// In one dimension the k nearest neighbours of sorted[i] form a
	// contiguous window around i; slide a two-pointer window of size k+1.
	for i := 0; i < n; i++ {
		lo, hi := i, i // window [lo, hi] inclusive, contains the point itself
		for hi-lo < k {
			switch {
			case lo == 0:
				hi++
			case hi == n-1:
				lo--
			case sorted[i]-sorted[lo-1] <= sorted[hi+1]-sorted[i]:
				lo--
			default:
				hi++
			}
		}
		d := math.Max(sorted[i]-sorted[lo], sorted[hi]-sorted[i])
		out[perm[i]] = d
	}
	return out
}

// AverageKNNDistance returns the mean k-NN distance over all samples.
func AverageKNNDistance(xs []float64, k int) float64 {
	ds := KNNDistances(xs, k)
	if len(ds) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, d := range ds {
		sum += d
	}
	return sum / float64(len(ds))
}

// KneeEps estimates a DBSCAN eps from the sorted k-NN distance curve by
// locating its knee: the point of maximum distance from the chord joining
// the curve's endpoints. This is the textbook alternative to the paper's
// quantile-range multiplier; the experiments compare both.
func KneeEps(xs []float64, k int) float64 {
	ds := KNNDistances(xs, k)
	if len(ds) < 3 {
		if len(ds) == 0 {
			return math.NaN()
		}
		return ds[len(ds)-1]
	}
	sort.Float64s(ds)
	n := len(ds)
	x1, y1 := 0.0, ds[0]
	x2, y2 := float64(n-1), ds[n-1]
	dx, dy := x2-x1, y2-y1
	norm := math.Hypot(dx, dy)
	if norm == 0 {
		return ds[n-1]
	}
	bestIdx, bestDist := n-1, -1.0
	for i := 0; i < n; i++ {
		// Perpendicular distance of (i, ds[i]) from the chord.
		d := math.Abs(dy*float64(i)-dx*ds[i]+x2*y1-y2*x1) / norm
		if d > bestDist {
			bestDist, bestIdx = d, i
		}
	}
	return ds[bestIdx]
}
