package cluster

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// latencyLike builds a dataset shaped like a real switching-latency
// sample: one dominant cluster, an optional secondary cluster, and a few
// extreme outliers.
func latencyLike(rng *rand.Rand, n int, secondary bool) (xs []float64, nOutliers int) {
	sec := 0
	if secondary {
		sec = int(float64(n) * 0.10)
	}
	// Outliers are a small fraction and widely scattered, as the paper
	// observes ("never exceeds a low percentage of the measurements").
	nOutliers = int(float64(n) * 0.03)
	main := n - sec - nOutliers
	for i := 0; i < main; i++ {
		xs = append(xs, 15+0.4*rng.NormFloat64())
	}
	for i := 0; i < sec; i++ {
		xs = append(xs, 135+1.0*rng.NormFloat64())
	}
	for i := 0; i < nOutliers; i++ {
		xs = append(xs, 300+2500*rng.Float64())
	}
	return xs, nOutliers
}

func TestAdaptiveFindsOutliers(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 3))
	xs, nOut := latencyLike(rng, 300, false)
	res := Adaptive(xs, DefaultAdaptiveConfig())
	if res.NoiseRatio() > 0.1 {
		t.Fatalf("noise ratio %v exceeds threshold", res.NoiseRatio())
	}
	if res.NoiseCount() < nOut {
		t.Fatalf("found %d outliers, injected %d", res.NoiseCount(), nOut)
	}
	if res.NumClusters < 1 {
		t.Fatal("no clusters found")
	}
}

func TestAdaptiveMultiCluster(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 4))
	xs, _ := latencyLike(rng, 400, true)
	res := Adaptive(xs, DefaultAdaptiveConfig())
	if res.NumClusters != 2 {
		t.Fatalf("NumClusters = %d, want 2 (main + secondary)", res.NumClusters)
	}
}

func TestAdaptiveIdenticalSamples(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 7.5
	}
	res := Adaptive(xs, DefaultAdaptiveConfig())
	if res.NoiseCount() != 0 {
		t.Fatalf("identical samples produced %d outliers", res.NoiseCount())
	}
	if res.NumClusters != 1 {
		t.Fatalf("identical samples produced %d clusters", res.NumClusters)
	}
}

func TestAdaptiveEmpty(t *testing.T) {
	res := Adaptive(nil, DefaultAdaptiveConfig())
	if len(res.Labels) != 0 {
		t.Fatalf("empty input: %+v", res)
	}
}

func TestAdaptiveTinyDataset(t *testing.T) {
	// Fewer points than any sensible minPts: must not panic, and the
	// floor keeps minPts positive.
	xs := []float64{1, 1.1, 0.9, 1.05, 25}
	res := Adaptive(xs, DefaultAdaptiveConfig())
	if len(res.Labels) != 5 {
		t.Fatalf("labels = %v", res.Labels)
	}
}

func TestFilterOutliersPartition(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 5))
	xs, _ := latencyLike(rng, 250, false)
	kept, outliers, res := FilterOutliers(xs, DefaultAdaptiveConfig())
	if len(kept)+len(outliers) != len(xs) {
		t.Fatalf("partition loses points: %d + %d != %d", len(kept), len(outliers), len(xs))
	}
	if len(outliers) != res.NoiseCount() {
		t.Fatalf("outliers %d != NoiseCount %d", len(outliers), res.NoiseCount())
	}
	// Every outlier must exceed the kept maximum (they were injected far
	// above the clusters).
	keptMax := kept[0]
	for _, k := range kept {
		if k > keptMax {
			keptMax = k
		}
	}
	for _, o := range outliers {
		if o <= keptMax {
			t.Fatalf("outlier %v below kept max %v", o, keptMax)
		}
	}
}

// Property: FilterOutliers always partitions the input (no loss, no
// duplication) and the noise ratio never exceeds 1.
func TestFilterOutliersPartitionProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e4))
			}
		}
		kept, outliers, res := FilterOutliers(xs, DefaultAdaptiveConfig())
		return len(kept)+len(outliers) == len(xs) && res.NoiseRatio() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSilhouetteWellSeparated(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 6))
	xs, _ := twoBlobs(rng, 60, 60)
	res := DBSCAN(xs, 1.0, 4)
	s := Silhouette(xs, res.Labels)
	if s < 0.9 {
		t.Fatalf("silhouette of well-separated blobs = %v, want > 0.9", s)
	}
}

func TestSilhouetteOverlapping(t *testing.T) {
	// Force two labels onto a single homogeneous set: silhouette near 0
	// or negative.
	rng := rand.New(rand.NewPCG(15, 7))
	xs := make([]float64, 100)
	labels := make([]int, 100)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		labels[i] = i % 2
	}
	s := Silhouette(xs, labels)
	if s > 0.2 {
		t.Fatalf("silhouette of interleaved labels = %v, want ≤ 0.2", s)
	}
}

func TestSilhouetteSingleClusterNaN(t *testing.T) {
	xs := []float64{1, 2, 3}
	labels := []int{0, 0, 0}
	if s := Silhouette(xs, labels); !math.IsNaN(s) {
		t.Fatalf("single-cluster silhouette = %v, want NaN", s)
	}
}

func TestSilhouetteIgnoresNoise(t *testing.T) {
	xs := []float64{1, 1.1, 5, 5.1, 1000}
	labels := []int{0, 0, 1, 1, Noise}
	s := Silhouette(xs, labels)
	if math.IsNaN(s) || s < 0.9 {
		t.Fatalf("silhouette with noise point = %v, want > 0.9", s)
	}
}

// Property: silhouette is always within [-1, 1] when defined.
func TestSilhouetteRangeProperty(t *testing.T) {
	f := func(raw []float64, mod uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 100))
			}
		}
		k := 2 + int(mod)%3
		labels := make([]int, len(xs))
		for i := range labels {
			labels[i] = i % k
		}
		s := Silhouette(xs, labels)
		if math.IsNaN(s) {
			return true
		}
		return s >= -1-1e-9 && s <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSilhouetteMismatchedLengths(t *testing.T) {
	if s := Silhouette([]float64{1, 2}, []int{0}); !math.IsNaN(s) {
		t.Fatalf("mismatched lengths = %v, want NaN", s)
	}
}
