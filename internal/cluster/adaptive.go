package cluster

import (
	"math"

	"golatest/internal/stats"
)

// AdaptiveConfig parameterises the iterative DBSCAN outlier detection of
// the paper's Algorithm 3.
type AdaptiveConfig struct {
	// EpsMultiplier scales the 0.05–0.95 quantile range to obtain eps.
	// The paper's data analysis settled on 0.15 across all three GPUs.
	EpsMultiplier float64
	// MinPtsStartFrac and MinPtsEndFrac bound the minPts sweep as dataset
	// fractions; the paper walks from 4 % down to 2 % in steps of 2.
	MinPtsStartFrac float64
	MinPtsEndFrac   float64
	// Step is the decrement applied to minPts per iteration (paper: 2).
	Step int
	// MaxNoiseRatio is the acceptance threshold: the sweep halts at the
	// first configuration marking at most this fraction as outliers
	// (paper: 0.1).
	MaxNoiseRatio float64
	// MinPtsFloor clamps the smallest minPts ever used. The paper's
	// guideline is dimensionality+1 or a multiple of two of it; for the
	// one-dimensional latency data we default to 4.
	MinPtsFloor int
}

// DefaultAdaptiveConfig returns the configuration used throughout the
// paper's evaluation (§VII: minPts 8→15 range driven by dataset size,
// eps = 0.15 × quantile range, ≤10 % outliers).
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		EpsMultiplier:   0.15,
		MinPtsStartFrac: 0.04,
		MinPtsEndFrac:   0.02,
		Step:            2,
		MaxNoiseRatio:   0.10,
		MinPtsFloor:     4,
	}
}

// Adaptive runs Algorithm 3: DBSCAN with eps fixed from the quantile
// range and minPts swept from ceil(startFrac·n) down to floor(endFrac·n),
// stopping at the first clustering whose noise ratio drops to
// MaxNoiseRatio or below. The last attempted clustering is returned even
// if no configuration met the threshold (callers can inspect NoiseRatio).
func Adaptive(xs []float64, cfg AdaptiveConfig) *Result {
	n := len(xs)
	if n == 0 {
		return &Result{}
	}
	if cfg.Step <= 0 {
		cfg.Step = 2
	}
	if cfg.MinPtsFloor <= 0 {
		cfg.MinPtsFloor = 4
	}

	qr := stats.QuantileRange(xs, 0.05, 0.95)
	eps := cfg.EpsMultiplier * qr
	if eps <= 0 || math.IsNaN(eps) {
		// Degenerate spread (identical samples): one cluster, no outliers.
		eps = math.Max(1e-12, math.Abs(xs[0])*1e-9)
	}

	start := int(math.Ceil(cfg.MinPtsStartFrac * float64(n)))
	end := int(math.Floor(cfg.MinPtsEndFrac * float64(n)))
	if start < cfg.MinPtsFloor {
		start = cfg.MinPtsFloor
	}
	if end < cfg.MinPtsFloor {
		end = cfg.MinPtsFloor
	}
	if end > start {
		end = start
	}

	var last *Result
	for minPts := start; minPts >= end; minPts -= cfg.Step {
		last = DBSCAN(xs, eps, minPts)
		if last.NoiseRatio() <= cfg.MaxNoiseRatio {
			return last
		}
	}
	return last
}

// FilterOutliers runs Adaptive and splits xs into kept (clustered) and
// outlier values, preserving input order within each slice. It also
// returns the clustering for callers that need cluster structure (e.g.
// the multi-cluster census of §VII-B).
func FilterOutliers(xs []float64, cfg AdaptiveConfig) (kept, outliers []float64, res *Result) {
	res = Adaptive(xs, cfg)
	kept = make([]float64, 0, len(xs))
	for i, l := range res.Labels {
		if l == Noise {
			outliers = append(outliers, xs[i])
		} else {
			kept = append(kept, xs[i])
		}
	}
	return kept, outliers, res
}
