package cluster

import (
	"math/rand/v2"
	"testing"
)

func benchData(n int) []float64 {
	rng := rand.New(rand.NewPCG(9, 9))
	xs := make([]float64, n)
	for i := range xs {
		switch {
		case i%20 == 0:
			xs[i] = 250 + 50*rng.Float64()
		case i%7 == 0:
			xs[i] = 135 + rng.NormFloat64()
		default:
			xs[i] = 15 + 0.5*rng.NormFloat64()
		}
	}
	return xs
}

func BenchmarkDBSCAN300(b *testing.B) {
	xs := benchData(300)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DBSCAN(xs, 2.0, 8)
	}
}

func BenchmarkDBSCAN5000(b *testing.B) {
	xs := benchData(5000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DBSCAN(xs, 2.0, 50)
	}
}

func BenchmarkAdaptive300(b *testing.B) {
	xs := benchData(300)
	cfg := DefaultAdaptiveConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Adaptive(xs, cfg)
	}
}

func BenchmarkKNNDistances1000(b *testing.B) {
	xs := benchData(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		KNNDistances(xs, 8)
	}
}

func BenchmarkSilhouette(b *testing.B) {
	xs := benchData(400)
	res := DBSCAN(xs, 2.0, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Silhouette(xs, res.Labels)
	}
}
