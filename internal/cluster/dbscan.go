// Package cluster implements the density-based outlier machinery of the
// paper's analysis phase: DBSCAN over one-dimensional switching-latency
// samples, k-nearest-neighbour distance diagnostics, silhouette scoring,
// and the adaptive parameter-selection loop of Algorithm 3.
//
// Switching latencies are scalar, so all algorithms operate on sorted
// float64 slices with |a−b| as the metric; this keeps region queries
// O(log n) instead of the general O(n).
package cluster

import "sort"

// Noise is the label assigned to points DBSCAN classifies as noise
// (outliers in the paper's terminology).
const Noise = -1

// Result holds a clustering of the input samples.
type Result struct {
	// Labels[i] is the cluster index of input point i (in the original,
	// not sorted, order), or Noise.
	Labels []int
	// NumClusters is the number of clusters found (labels 0..NumClusters-1).
	NumClusters int
	// Eps and MinPts echo the parameters used.
	Eps    float64
	MinPts int

	// noiseCount and clusterSizes are precomputed by finalize when the
	// clustering is built, so the adaptive loop's repeated NoiseRatio
	// checks and the census's size queries never rescan Labels. counted
	// distinguishes a finalized Result from a hand-assembled zero value,
	// for which the accessors fall back to scanning.
	counted      bool
	noiseCount   int
	clusterSizes []int
}

// finalize counts noise and per-cluster sizes once, at construction.
func (r *Result) finalize() {
	r.noiseCount = 0
	r.clusterSizes = make([]int, r.NumClusters)
	for _, l := range r.Labels {
		if l == Noise {
			r.noiseCount++
		} else {
			r.clusterSizes[l]++
		}
	}
	r.counted = true
}

// NoiseCount returns the number of points labelled Noise.
func (r *Result) NoiseCount() int {
	if r.counted {
		return r.noiseCount
	}
	n := 0
	for _, l := range r.Labels {
		if l == Noise {
			n++
		}
	}
	return n
}

// NoiseRatio returns NoiseCount/len(Labels), or 0 for empty input.
func (r *Result) NoiseRatio() float64 {
	if len(r.Labels) == 0 {
		return 0
	}
	return float64(r.NoiseCount()) / float64(len(r.Labels))
}

// ClusterSizes returns the size of each cluster, indexed by label. The
// returned slice is shared; callers must not modify it.
func (r *Result) ClusterSizes() []int {
	if r.counted {
		return r.clusterSizes
	}
	sizes := make([]int, r.NumClusters)
	for _, l := range r.Labels {
		if l >= 0 {
			sizes[l]++
		}
	}
	return sizes
}

// Members returns the indices of points belonging to the given cluster
// label (or to noise, when label == Noise), in input order.
func (r *Result) Members(label int) []int {
	var out []int
	for i, l := range r.Labels {
		if l == label {
			out = append(out, i)
		}
	}
	return out
}

// DBSCAN clusters the scalar samples xs with radius eps and density
// threshold minPts. A point is a core point when at least minPts points
// (including itself) lie within eps of it; clusters grow from core points;
// non-core points within eps of a core point join its cluster; everything
// else is Noise.
//
// The implementation sorts an index permutation of xs and answers each
// region query with two binary searches, so a full run is O(n log n).
func DBSCAN(xs []float64, eps float64, minPts int) *Result {
	n := len(xs)
	res := &Result{Labels: make([]int, n), Eps: eps, MinPts: minPts}
	for i := range res.Labels {
		res.Labels[i] = Noise
	}
	if n == 0 || minPts <= 0 || eps < 0 {
		res.finalize()
		return res
	}

	// perm[k] is the index into xs of the k-th smallest sample.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return xs[perm[a]] < xs[perm[b]] })
	sorted := make([]float64, n)
	for k, idx := range perm {
		sorted[k] = xs[idx]
	}

	// neighbors returns the half-open sorted-position range [lo, hi) of
	// points within eps of sorted[k]: two binary searches, the second for
	// the first element strictly greater than x+eps so that elements
	// exactly at x+eps are included (closed ball, as in classic DBSCAN
	// formulations) without a linear extension over tied samples.
	neighbors := func(k int) (lo, hi int) {
		x := sorted[k]
		lo = sort.SearchFloat64s(sorted, x-eps)
		hi = lo + sort.Search(n-lo, func(i int) bool { return sorted[lo+i] > x+eps })
		return lo, hi
	}

	labels := make([]int, n) // labels in sorted order
	for k := range labels {
		labels[k] = Noise
	}
	visited := make([]bool, n)
	queued := make([]bool, n) // each point enters a BFS queue at most once
	next := 0

	for k := 0; k < n; k++ {
		if visited[k] {
			continue
		}
		visited[k] = true
		lo, hi := neighbors(k)
		if hi-lo < minPts {
			continue // not a core point; stays noise unless adopted later
		}
		// Start a new cluster and expand it breadth-first. The queued
		// bitmap bounds total enqueues by n, keeping dense clusters
		// linear instead of quadratic.
		c := next
		next++
		labels[k] = c
		queued[k] = true
		queue := make([]int, 0, hi-lo)
		for j := lo; j < hi; j++ {
			if !queued[j] {
				queued[j] = true
				queue = append(queue, j)
			}
		}
		for head := 0; head < len(queue); head++ {
			j := queue[head]
			if labels[j] == Noise {
				labels[j] = c // border point adoption
			}
			if visited[j] {
				continue
			}
			visited[j] = true
			jlo, jhi := neighbors(j)
			if jhi-jlo >= minPts {
				labels[j] = c
				for q := jlo; q < jhi; q++ {
					if !queued[q] {
						queued[q] = true
						queue = append(queue, q)
					}
				}
			}
		}
	}

	res.NumClusters = next
	for k, idx := range perm {
		res.Labels[idx] = labels[k]
	}
	res.finalize()
	return res
}
