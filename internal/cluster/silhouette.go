package cluster

import "math"

// Silhouette returns the mean silhouette coefficient of the clustering:
// for each clustered point, s = (b − a) / max(a, b) where a is the mean
// distance to its own cluster and b the smallest mean distance to another
// cluster. Noise points are excluded, matching the paper's §VII-B usage
// (silhouette evaluated on the post-DBSCAN clusters).
//
// It returns NaN when fewer than two clusters have members, since the
// coefficient is undefined there.
func Silhouette(xs []float64, labels []int) float64 {
	if len(xs) != len(labels) {
		return math.NaN()
	}
	// Group member values by cluster.
	groups := map[int][]float64{}
	for i, l := range labels {
		if l >= 0 {
			groups[l] = append(groups[l], xs[i])
		}
	}
	if len(groups) < 2 {
		return math.NaN()
	}

	// Pre-compute per-cluster sums for O(1) mean-distance updates — in one
	// dimension the mean absolute distance still needs a pass, so simply
	// iterate (cluster sizes here are at most a few hundred).
	var total float64
	var count int
	for l, members := range groups {
		for _, x := range members {
			a := meanAbsDistance(x, members, true)
			if math.IsNaN(a) {
				// Singleton cluster: silhouette defined as 0.
				total += 0
				count++
				continue
			}
			b := math.Inf(1)
			for ol, others := range groups {
				if ol == l {
					continue
				}
				if d := meanAbsDistance(x, others, false); d < b {
					b = d
				}
			}
			den := math.Max(a, b)
			if den == 0 {
				total += 0
			} else {
				total += (b - a) / den
			}
			count++
		}
	}
	if count == 0 {
		return math.NaN()
	}
	return total / float64(count)
}

// meanAbsDistance returns the mean |x − y| over members. When excludeSelf
// is true one zero-distance occurrence of x is removed from the average
// (the point's own entry); NaN is returned if nothing remains.
func meanAbsDistance(x float64, members []float64, excludeSelf bool) float64 {
	n := len(members)
	if excludeSelf {
		n--
	}
	if n <= 0 {
		return math.NaN()
	}
	var sum float64
	for _, y := range members {
		sum += math.Abs(x - y)
	}
	return sum / float64(n)
}
