package cluster

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// twoBlobs returns two well-separated Gaussian clusters plus explicit
// far-away outliers, with ground-truth membership boundaries.
func twoBlobs(rng *rand.Rand, n1, n2 int) (xs []float64, outliers []float64) {
	for i := 0; i < n1; i++ {
		xs = append(xs, 10+0.1*rng.NormFloat64())
	}
	for i := 0; i < n2; i++ {
		xs = append(xs, 20+0.1*rng.NormFloat64())
	}
	outliers = []float64{55, 60, -30}
	xs = append(xs, outliers...)
	return xs, outliers
}

func TestDBSCANTwoClustersAndNoise(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	xs, _ := twoBlobs(rng, 100, 80)
	res := DBSCAN(xs, 1.0, 5)
	if res.NumClusters != 2 {
		t.Fatalf("NumClusters = %d, want 2", res.NumClusters)
	}
	if res.NoiseCount() != 3 {
		t.Fatalf("NoiseCount = %d, want 3", res.NoiseCount())
	}
	// All members of the first blob share one label.
	first := res.Labels[0]
	for i := 1; i < 100; i++ {
		if res.Labels[i] != first {
			t.Fatalf("blob 1 split: labels[%d]=%d, labels[0]=%d", i, res.Labels[i], first)
		}
	}
	second := res.Labels[100]
	if second == first {
		t.Fatal("blobs merged into one cluster")
	}
	for i := 101; i < 180; i++ {
		if res.Labels[i] != second {
			t.Fatalf("blob 2 split at %d", i)
		}
	}
}

func TestDBSCANSingleCluster(t *testing.T) {
	xs := []float64{1.0, 1.1, 1.2, 1.05, 1.15, 0.95}
	res := DBSCAN(xs, 0.5, 3)
	if res.NumClusters != 1 || res.NoiseCount() != 0 {
		t.Fatalf("got %d clusters, %d noise; want 1, 0", res.NumClusters, res.NoiseCount())
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	xs := []float64{0, 100, 200, 300}
	res := DBSCAN(xs, 1, 2)
	if res.NumClusters != 0 || res.NoiseCount() != 4 {
		t.Fatalf("got %d clusters, %d noise; want 0, 4", res.NumClusters, res.NoiseCount())
	}
	if r := res.NoiseRatio(); r != 1 {
		t.Fatalf("NoiseRatio = %v, want 1", r)
	}
}

func TestDBSCANEmptyInput(t *testing.T) {
	res := DBSCAN(nil, 1, 3)
	if res.NumClusters != 0 || len(res.Labels) != 0 {
		t.Fatalf("empty input: %+v", res)
	}
	if res.NoiseRatio() != 0 {
		t.Fatalf("NoiseRatio of empty = %v", res.NoiseRatio())
	}
}

func TestDBSCANInvalidParams(t *testing.T) {
	xs := []float64{1, 2, 3}
	res := DBSCAN(xs, -1, 2)
	if res.NoiseCount() != 3 {
		t.Fatal("negative eps should classify everything as noise")
	}
	res = DBSCAN(xs, 1, 0)
	if res.NoiseCount() != 3 {
		t.Fatal("minPts=0 should classify everything as noise")
	}
}

func TestDBSCANBorderPointAdoption(t *testing.T) {
	// Dense core at 0..4 (spacing 0.4), border point at 1.3 away from the
	// edge: within eps of a core point but not itself core.
	xs := []float64{0, 0.4, 0.8, 1.2, 1.6, 2.6}
	res := DBSCAN(xs, 1.0, 3)
	if res.NumClusters != 1 {
		t.Fatalf("NumClusters = %d, want 1", res.NumClusters)
	}
	if res.Labels[5] != res.Labels[0] {
		t.Fatalf("border point not adopted: labels=%v", res.Labels)
	}
}

func TestDBSCANClusterSizesAndMembers(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	xs, _ := twoBlobs(rng, 30, 50)
	res := DBSCAN(xs, 1.0, 4)
	sizes := res.ClusterSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total+res.NoiseCount() != len(xs) {
		t.Fatalf("sizes %v + noise %d != %d points", sizes, res.NoiseCount(), len(xs))
	}
	for label := 0; label < res.NumClusters; label++ {
		if got := len(res.Members(label)); got != sizes[label] {
			t.Fatalf("Members(%d) len = %d, sizes = %v", label, got, sizes)
		}
	}
	if noise := res.Members(Noise); len(noise) != res.NoiseCount() {
		t.Fatalf("Members(Noise) = %v", noise)
	}
}

// Property: labels are always in {Noise} ∪ [0, NumClusters), every point
// gets a label, and clusters are non-empty.
func TestDBSCANLabelValidityProperty(t *testing.T) {
	f := func(raw []float64, epsSeed uint8, minPtsSeed uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1000))
			}
		}
		eps := 0.1 + float64(epsSeed)
		minPts := 1 + int(minPtsSeed)%8
		res := DBSCAN(xs, eps, minPts)
		if len(res.Labels) != len(xs) {
			return false
		}
		seen := make([]bool, res.NumClusters)
		for _, l := range res.Labels {
			if l < Noise || l >= res.NumClusters {
				return false
			}
			if l >= 0 {
				seen[l] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false // empty cluster label
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: with minPts = 1 every point is core, so there is no noise.
func TestDBSCANMinPtsOneNoNoiseProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 100))
			}
		}
		res := DBSCAN(xs, 0.5, 1)
		return res.NoiseCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: DBSCAN output is invariant under input permutation up to
// label renaming (partition equality).
func TestDBSCANPermutationInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	xs, _ := twoBlobs(rng, 40, 40)
	res1 := DBSCAN(xs, 1.0, 4)

	perm := rng.Perm(len(xs))
	shuffled := make([]float64, len(xs))
	for i, p := range perm {
		shuffled[i] = xs[p]
	}
	res2 := DBSCAN(shuffled, 1.0, 4)

	// Two points share a cluster in res1 iff they share one in res2.
	for i := 0; i < len(xs); i++ {
		for j := i + 1; j < len(xs); j++ {
			same1 := res1.Labels[perm[i]] == res1.Labels[perm[j]] && res1.Labels[perm[i]] != Noise
			same2 := res2.Labels[i] == res2.Labels[j] && res2.Labels[i] != Noise
			if same1 != same2 {
				t.Fatalf("partition differs for points %d,%d", i, j)
			}
		}
	}
}

func TestDBSCANDuplicatePoints(t *testing.T) {
	xs := []float64{5, 5, 5, 5, 5}
	res := DBSCAN(xs, 0.001, 5)
	if res.NumClusters != 1 || res.NoiseCount() != 0 {
		t.Fatalf("duplicates: %d clusters, %d noise", res.NumClusters, res.NoiseCount())
	}
}

// TestDBSCANClosedBallAtEps pins the closed-ball region query after the
// linear hi-extension was replaced with a second binary search: points
// exactly eps away are neighbours, including long runs of tied samples
// sitting on the boundary.
func TestDBSCANClosedBallAtEps(t *testing.T) {
	// 1 core candidate at 0 and four tied points exactly at eps.
	xs := []float64{0, 1, 1, 1, 1}
	res := DBSCAN(xs, 1, 5)
	if res.NumClusters != 1 {
		t.Fatalf("clusters = %d, want 1 (boundary ties excluded?)", res.NumClusters)
	}
	if res.NoiseCount() != 0 {
		t.Fatalf("noise = %d, want 0", res.NoiseCount())
	}
	// Just beyond eps must not be a neighbour: nudging every tie past the
	// boundary leaves no point with 5 neighbours, so all points are noise.
	over := math.Nextafter(1, 2)
	xs = []float64{0, over, over, over, over}
	res = DBSCAN(xs, 1, 5)
	if res.NumClusters != 0 {
		t.Fatalf("clusters = %d, want 0", res.NumClusters)
	}
}

// TestDBSCANCachedCountsConsistent checks the precomputed noise and
// cluster-size counts agree with a fresh scan of Labels.
func TestDBSCANCachedCountsConsistent(t *testing.T) {
	xs := []float64{1, 1.1, 1.2, 5, 5.1, 5.2, 40, 1.15, 5.15, 80}
	res := DBSCAN(xs, 0.3, 3)
	noise := 0
	sizes := make([]int, res.NumClusters)
	for _, l := range res.Labels {
		if l == Noise {
			noise++
		} else {
			sizes[l]++
		}
	}
	if res.NoiseCount() != noise {
		t.Fatalf("NoiseCount = %d, scan says %d", res.NoiseCount(), noise)
	}
	got := res.ClusterSizes()
	if len(got) != len(sizes) {
		t.Fatalf("ClusterSizes len = %d, want %d", len(got), len(sizes))
	}
	for i := range sizes {
		if got[i] != sizes[i] {
			t.Fatalf("cluster %d size = %d, scan says %d", i, got[i], sizes[i])
		}
	}
	// A hand-assembled Result (no finalize) must still answer correctly.
	manual := &Result{Labels: []int{0, Noise, 0, 1}, NumClusters: 2}
	if manual.NoiseCount() != 1 || manual.ClusterSizes()[0] != 2 || manual.ClusterSizes()[1] != 1 {
		t.Fatal("unfinalized Result accessors broken")
	}
}
