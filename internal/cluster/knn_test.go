package cluster

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestKNNDistancesSimple(t *testing.T) {
	xs := []float64{0, 1, 3, 7}
	// k=1 nearest-neighbour distances: 1, 1, 2, 4.
	got := KNNDistances(xs, 1)
	want := []float64{1, 1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("KNN(1) = %v, want %v", got, want)
		}
	}
}

func TestKNNDistancesK2(t *testing.T) {
	xs := []float64{0, 1, 3, 7}
	// k=2: for 0 → {1,3} → 3; for 1 → {0,3} → 2; for 3 → {1,0 or 7}: nearest
	// two of 3 are 1 (d=2) and 7 (d=4)? distances from 3: |3-1|=2, |3-0|=3,
	// |3-7|=4 → second nearest = 3. For 7: {3,1} → 6.
	got := KNNDistances(xs, 2)
	want := []float64{3, 2, 3, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("KNN(2) = %v, want %v", got, want)
		}
	}
}

func TestKNNDistancesKClamped(t *testing.T) {
	xs := []float64{0, 10}
	got := KNNDistances(xs, 99)
	if got[0] != 10 || got[1] != 10 {
		t.Fatalf("clamped k: %v", got)
	}
}

func TestKNNDistancesDegenerate(t *testing.T) {
	if got := KNNDistances(nil, 3); len(got) != 0 {
		t.Fatalf("empty input: %v", got)
	}
	got := KNNDistances([]float64{5}, 1)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("single point: %v", got)
	}
}

// Property: the sliding-window k-NN matches a brute-force computation.
func TestKNNMatchesBruteForceProperty(t *testing.T) {
	f := func(raw []float64, kSeed uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 500))
			}
		}
		if len(xs) < 2 {
			return true
		}
		k := 1 + int(kSeed)%(len(xs)-1)
		got := KNNDistances(xs, k)
		for i, x := range xs {
			ds := make([]float64, 0, len(xs)-1)
			for j, y := range xs {
				if i != j {
					ds = append(ds, math.Abs(x-y))
				}
			}
			sort.Float64s(ds)
			if math.Abs(got[i]-ds[k-1]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAverageKNNDistance(t *testing.T) {
	xs := []float64{0, 1, 3, 7}
	want := (1.0 + 1 + 2 + 4) / 4
	if got := AverageKNNDistance(xs, 1); got != want {
		t.Fatalf("AverageKNNDistance = %v, want %v", got, want)
	}
	if got := AverageKNNDistance(nil, 1); !math.IsNaN(got) {
		t.Fatalf("empty input = %v, want NaN", got)
	}
}

func TestKneeEpsSeparatesDenseFromSparse(t *testing.T) {
	// Dense cluster + far outliers: the knee eps must fall between the
	// intra-cluster spacing and the outlier distances.
	rng := rand.New(rand.NewPCG(5, 5))
	var xs []float64
	for i := 0; i < 200; i++ {
		xs = append(xs, 10+0.05*rng.NormFloat64())
	}
	xs = append(xs, 100, 200)
	eps := KneeEps(xs, 4)
	if eps <= 0 || eps >= 90 {
		t.Fatalf("KneeEps = %v, want within (0, 90)", eps)
	}
	res := DBSCAN(xs, eps, 4)
	if res.NoiseCount() < 2 {
		t.Fatalf("knee eps failed to isolate outliers: noise=%d", res.NoiseCount())
	}
}

func TestKneeEpsDegenerate(t *testing.T) {
	if got := KneeEps(nil, 3); !math.IsNaN(got) {
		t.Fatalf("empty = %v, want NaN", got)
	}
	if got := KneeEps([]float64{1, 1, 1, 1}, 2); got != 0 {
		t.Fatalf("identical points knee = %v, want 0", got)
	}
}
