// Package core implements the paper's accelerator switching-latency
// methodology (§V) end to end:
//
//   - Phase 1 — warm-up and frequency characterisation: the iterative
//     microbenchmark runs under every candidate clock; per-clock iteration
//     statistics feed pairwise null-hypothesis tests that exclude pairs
//     whose execution times are statistically indistinguishable
//     (Algorithm 1).
//   - Phase 2 — the switching benchmark: host and device timers are
//     synchronised (IEEE 1588), the benchmark kernel launches under the
//     initial clock, the host sleeps through the delay region, issues the
//     clock change, and records its timestamp (Algorithm 2, lines 1–8).
//   - Phase 3 — evaluation: each SM's iteration trace is scanned after the
//     change timestamp for the first iteration inside the two-standard-
//     deviation band of the target clock (§V-A), confirmed by a
//     mean-difference test over the remaining iterations; the pair's
//     switching latency is the maximum t_e − t_s over SMs (Algorithm 2,
//     lines 9–24).
//
// A pair's campaign repeats phases 2–3 under the relative-standard-error
// stopping rule with throttle backoff (§VI), and the analysis phase
// removes outliers with adaptive DBSCAN (Algorithm 3) via
// internal/cluster.
package core

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"golatest/internal/cluster"
	"golatest/internal/nvml"
	"golatest/internal/ptp"
)

// Pair is an ordered frequency pair: the switching latency of init→target
// is generally different from target→init (§III).
type Pair struct {
	InitMHz   float64
	TargetMHz float64
}

// String renders the pair the way the paper writes transitions.
func (p Pair) String() string { return fmt.Sprintf("%.0f→%.0f MHz", p.InitMHz, p.TargetMHz) }

// Increasing reports whether the pair raises the clock.
func (p Pair) Increasing() bool { return p.TargetMHz > p.InitMHz }

// Config tunes a measurement campaign. The zero value is not valid;
// Frequencies is required and everything else has paper-faithful defaults
// filled by withDefaults.
type Config struct {
	// Frequencies are the SM clocks under test (the tool's mandatory
	// comma-separated list). At least two distinct supported clocks.
	Frequencies []float64

	// Blocks bounds how many SM-resident blocks are simulated and
	// analysed per kernel. Zero means all SMs, the methodology's full
	// shape; campaigns use a subset for tractability since per-SM
	// populations are statistically identical (documented substitution).
	Blocks int

	// IterTargetNs is the nominal iteration duration at the slower clock
	// of each measured pair; it bounds the latency resolution (§V:
	// "as tiny as possible"). Default 150 µs.
	IterTargetNs float64

	// WarmKernels and ItersPerKernel shape phase 1: several kernels per
	// clock, statistics from the last one. Defaults 3 and 300.
	WarmKernels    int
	ItersPerKernel int

	// Confidence drives every interval/test (default 0.95).
	Confidence float64

	// RSETarget is the stopping threshold on the relative standard error
	// of a pair's switching latencies (default 0.05, the tool's default).
	RSETarget float64
	// MinMeasurements skips RSE checks until this many samples exist;
	// MaxMeasurements hard-stops the pair. Defaults 25 and 100.
	MinMeasurements int
	MaxMeasurements int
	// RSECheckEvery and ThrottleCheckEvery are the §VI cadences: RSE every
	// 25 passes, throttle reasons every 5. Defaults 25 and 5.
	RSECheckEvery      int
	ThrottleCheckEvery int
	// Cooldown is the backoff after a thermal throttle event (§VI: ten
	// seconds). Default 10 s of virtual time.
	Cooldown time.Duration

	// DelayIters run under the initial clock before the change request
	// (§V delay period, default 200); ConfirmIters is the
	// target-identification tail (default 400).
	DelayIters   int
	ConfirmIters int

	// MaxLatencyHintNs bounds the capture region. Zero means the runner
	// probes a few pairs first (§V switching-latency estimation) and uses
	// ten times the longest observed latency.
	MaxLatencyHintNs int64
	// CaptureSafety multiplies the hint when sizing the capture region
	// (default 1.5 for explicit hints; probing already includes the 10×).
	CaptureSafety float64

	// SigmaK is the acceptance band half-width in target-population
	// standard deviations (§V-A uses 2).
	SigmaK float64
	// CIDetection switches phase 3 to FTaLaT's confidence-interval band
	// (SigmaK standard *errors* instead of standard deviations). The
	// paper's §V-A argues this degenerates on accelerators; the option
	// exists for the ablation that demonstrates it.
	CIDetection bool
	// RelTolerance accepts the confirmation population when its mean
	// differs from the phase-1 target mean by less than this fraction
	// (Algorithm 2's "meanDiff < tol"). Default 0.02.
	RelTolerance float64

	// Outlier configures the adaptive DBSCAN filter (Algorithm 3).
	Outlier cluster.AdaptiveConfig
	// PTP configures the timer synchronisation.
	PTP ptp.Config

	// Seed drives host-side randomness (PTP link sampling).
	Seed uint64

	// Parallelism bounds how many pair campaigns Run sweeps concurrently.
	// Each pair runs on an independent device replica seeded
	// deterministically from (Seed, pair), so results are bit-for-bit
	// identical at every setting — parallelism only changes wall clock.
	// Zero means one worker per available CPU; 1 restores a serial sweep.
	Parallelism int
}

// withDefaults validates cfg against the device and fills defaults.
func (c Config) withDefaults(dev *nvml.Device) (Config, error) {
	if dev == nil {
		return c, fmt.Errorf("core: nil device")
	}
	if len(c.Frequencies) < 2 {
		return c, fmt.Errorf("core: need at least two frequencies, got %d", len(c.Frequencies))
	}
	seen := map[float64]bool{}
	simCfg := dev.Sim().Config()
	for _, f := range c.Frequencies {
		if !simCfg.SupportsFreq(f) {
			return c, fmt.Errorf("core: clock %v MHz not supported by %s", f, dev.Name())
		}
		if seen[f] {
			return c, fmt.Errorf("core: duplicate clock %v MHz", f)
		}
		seen[f] = true
	}
	if c.Blocks == 0 || c.Blocks > simCfg.SMCount {
		c.Blocks = simCfg.SMCount
		if c.Blocks > 8 {
			c.Blocks = 8
		}
	}
	if c.IterTargetNs == 0 {
		c.IterTargetNs = 150_000
	}
	if c.IterTargetNs < 10*float64(simCfg.TimerQuantumNs) {
		return c, fmt.Errorf("core: iteration target %v ns too close to timer quantum %d ns",
			c.IterTargetNs, simCfg.TimerQuantumNs)
	}
	if c.WarmKernels == 0 {
		c.WarmKernels = 3
	}
	if c.ItersPerKernel == 0 {
		c.ItersPerKernel = 300
	}
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		return c, fmt.Errorf("core: confidence %v outside (0, 1)", c.Confidence)
	}
	if c.RSETarget == 0 {
		c.RSETarget = 0.05
	}
	if c.MinMeasurements == 0 {
		c.MinMeasurements = 25
	}
	if c.MaxMeasurements == 0 {
		c.MaxMeasurements = 100
	}
	if c.MaxMeasurements < c.MinMeasurements {
		return c, fmt.Errorf("core: MaxMeasurements %d < MinMeasurements %d",
			c.MaxMeasurements, c.MinMeasurements)
	}
	if c.RSECheckEvery == 0 {
		c.RSECheckEvery = 25
	}
	if c.ThrottleCheckEvery == 0 {
		c.ThrottleCheckEvery = 5
	}
	if c.Cooldown == 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.DelayIters == 0 {
		c.DelayIters = 200
	}
	if c.ConfirmIters == 0 {
		c.ConfirmIters = 400
	}
	if c.CaptureSafety == 0 {
		c.CaptureSafety = 1.5
	}
	if c.SigmaK == 0 {
		c.SigmaK = 2
	}
	if c.RelTolerance == 0 {
		c.RelTolerance = 0.02
	}
	if c.Outlier == (cluster.AdaptiveConfig{}) {
		c.Outlier = cluster.DefaultAdaptiveConfig()
	}
	if c.Seed == 0 {
		c.Seed = 0xbe9c481
	}
	if c.Parallelism < 0 {
		return c, fmt.Errorf("core: negative Parallelism %d", c.Parallelism)
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c, nil
}

// CacheFingerprint returns the canonical encoding of the configuration
// used to content-address campaign results (see internal/store). Two
// configurations with the same fingerprint produce bit-for-bit identical
// campaigns on the same device.
//
// Parallelism is excluded: results are identical at every parallelism
// level (see Runner.Run), so including it would needlessly split the key
// space. Every other field participates, including fields that still
// carry their zero value — the fingerprint encodes the configuration as
// written, not the default-filled effective configuration, so a caller
// that spells a default out explicitly addresses a different (but
// identically-valued) cache entry. That is deliberately conservative:
// a spurious recompute is always correct, a spurious hit never is.
func (c Config) CacheFingerprint() ([]byte, error) {
	c.Parallelism = 0
	return json.Marshal(c)
}

// AllPairs returns every ordered pair of distinct configured clocks, in
// deterministic (init-major) order.
func (c Config) AllPairs() []Pair {
	var out []Pair
	for _, init := range c.Frequencies {
		for _, target := range c.Frequencies {
			if init != target {
				out = append(out, Pair{InitMHz: init, TargetMHz: target})
			}
		}
	}
	return out
}
