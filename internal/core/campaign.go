package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"golatest/internal/cluster"
	"golatest/internal/sim/gpu"
	"golatest/internal/stats"
)

// PairResult is the completed campaign of one frequency pair.
type PairResult struct {
	Pair Pair

	// Measurements are the accepted observations in acquisition order
	// (post throttle-discard).
	Measurements []Measurement
	// Samples are the switching latencies in ms (parallel to
	// Measurements).
	Samples []float64
	// Injected are the simulator ground-truth latencies in ms (NaN-free
	// only in simulation; parallel to Samples).
	Injected []float64

	// Attempts counts phase-2 runs including failed ones; Failures counts
	// runs that produced no usable latency; DiscardedByThrottle counts
	// measurements dropped by thermal backoff.
	Attempts            int
	Failures            int
	DiscardedByThrottle int
	ThrottleEvents      int

	// Skipped marks pairs abandoned due to power throttling (§VI) with
	// the reason recorded.
	Skipped    bool
	SkipReason string

	// Kept and Outliers partition Samples by the adaptive DBSCAN filter;
	// Clusters is the underlying clustering.
	Kept     []float64
	Outliers []float64
	Clusters *cluster.Result

	// Summary describes Kept; FinalRSE is the stopping-rule value over
	// all samples.
	Summary  stats.Summary
	FinalRSE float64
}

// MeasurePair runs the full phase-2/3 campaign for one pair: repeated
// measurements under the RSE stopping rule with throttle handling and
// adaptive-capture retry, then outlier filtering.
func (r *Runner) MeasurePair(pair Pair, p1 *Phase1Result) (*PairResult, error) {
	if !pairValid(p1, pair) {
		return nil, fmt.Errorf("core: pair %v was excluded in phase 1", pair)
	}
	initStat, targetStat, err := r.pairStats(pair, p1)
	if err != nil {
		return nil, err
	}

	pr := &PairResult{Pair: pair}
	consecutiveFailures := 0
	maxAttempts := 6 * r.cfg.MaxMeasurements

	for len(pr.Samples) < r.cfg.MaxMeasurements && pr.Attempts < maxAttempts {
		pr.Attempts++
		m, err := r.MeasureOnce(pair, initStat, targetStat)
		if err != nil {
			var me *measureErr
			if errors.As(err, &me) {
				pr.Failures++
				consecutiveFailures++
				// §V: if the latency cannot be captured, retry with a
				// longer workload (here: doubling the capture window,
				// bounded — pairs that keep failing are unmeasurable, not
				// under-captured).
				if consecutiveFailures >= 3 {
					const captureCapNs = 2_000_000_000
					if next := 2 * r.effectiveCaptureNs(); next <= captureCapNs {
						r.captureHintNs = next
					}
					consecutiveFailures = 0
				}
				continue
			}
			return nil, err
		}
		consecutiveFailures = 0
		pr.Measurements = append(pr.Measurements, m)
		pr.Samples = append(pr.Samples, m.LatencyMs)
		pr.Injected = append(pr.Injected, m.InjectedMs)
		n := len(pr.Samples)

		// Throttle-reason poll every few passes (§VI).
		if n%r.cfg.ThrottleCheckEvery == 0 {
			reasons := r.dev.ClocksThrottleReasons()
			if reasons.Has(gpu.ThrottlePower) {
				pr.Skipped = true
				pr.SkipReason = fmt.Sprintf(
					"power throttling: clocks of %v cannot be sustained", pair)
				break
			}
			if reasons.Has(gpu.ThrottleThermal) {
				drop := r.cfg.ThrottleCheckEvery
				if drop > n {
					drop = n
				}
				pr.Measurements = pr.Measurements[:len(pr.Measurements)-drop]
				pr.Samples = pr.Samples[:len(pr.Samples)-drop]
				pr.Injected = pr.Injected[:len(pr.Injected)-drop]
				pr.DiscardedByThrottle += drop
				pr.ThrottleEvents++
				r.ctx.Sleep(r.cfg.Cooldown)
				continue
			}
		}

		// RSE stopping rule every RSECheckEvery passes past the minimum.
		if n >= r.cfg.MinMeasurements && n%r.cfg.RSECheckEvery == 0 {
			if stats.RSE(pr.Samples) < r.cfg.RSETarget {
				break
			}
		}
	}

	if len(pr.Samples) > 0 {
		pr.FinalRSE = stats.RSE(pr.Samples)
		// Algorithm 3 presumes "several hundred" measurements; below a
		// couple of density thresholds DBSCAN degenerates (every point is
		// low-density), so small campaigns keep all samples.
		if len(pr.Samples) >= 5*r.cfg.Outlier.MinPtsFloor {
			pr.Kept, pr.Outliers, pr.Clusters = cluster.FilterOutliers(pr.Samples, r.cfg.Outlier)
		} else {
			pr.Kept = append([]float64(nil), pr.Samples...)
		}
		pr.Summary = stats.Summarize(pr.Kept)
	}
	return pr, nil
}

// Result is a whole-campaign output: one PairResult per valid pair.
type Result struct {
	DeviceName    string
	Architecture  string
	Phase1        *Phase1Result
	CaptureHintNs int64
	Pairs         []*PairResult
}

// PairByFreqs finds the result for init→target, if measured.
func (res *Result) PairByFreqs(init, target float64) (*PairResult, bool) {
	for _, pr := range res.Pairs {
		if pr.Pair.InitMHz == init && pr.Pair.TargetMHz == target {
			return pr, true
		}
	}
	return nil, false
}

// Run executes the complete campaign: phase 1, capture-bound probing when
// no hint was configured, then the pair sweep.
//
// The sweep fans out over Config.Parallelism workers. Each pair's
// campaign runs on an independent device replica (fresh virtual clock,
// same hardware profile, seed derived deterministically from the device
// seed and the pair), so pairs neither contend for the shared clock nor
// observe each other's thermal or frequency state. Results — sample
// values and their order within each pair, and the init-major pair order
// of Result.Pairs — are bit-for-bit identical at every parallelism level.
func (r *Runner) Run() (*Result, error) {
	p1, err := r.Phase1()
	if err != nil {
		return nil, err
	}
	if r.captureHintNs == 0 {
		if _, err := r.Probe(p1); err != nil {
			return nil, err
		}
	}
	res := &Result{
		DeviceName:    r.dev.Name(),
		Architecture:  r.dev.Architecture(),
		Phase1:        p1,
		CaptureHintNs: r.captureHintNs,
	}
	pairs := p1.ValidPairs
	if len(pairs) == 0 {
		return res, nil
	}

	results := make([]*PairResult, len(pairs))
	errs := make([]error, len(pairs))
	workers := r.cfg.Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}

	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) || failed.Load() {
					return
				}
				sub, err := r.replicaRunner(pairs[i])
				if err == nil {
					results[i], err = sub.MeasurePair(pairs[i], p1)
				}
				if err != nil {
					errs[i] = err
					failed.Store(true) // abort: don't spend campaigns on a doomed Run
					return
				}
			}
		}()
	}
	wg.Wait()

	// Report the earliest-indexed error observed. (Which pairs got to
	// run before the abort depends on scheduling, but the success path —
	// the determinism contract — never aborts.)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.Pairs = results
	return res, nil
}
