package core

import (
	"math"
	"testing"
	"time"

	"golatest/internal/nvml"
	"golatest/internal/sim/clock"
	"golatest/internal/sim/gpu"
)

// fixedModel injects a constant switching latency.
type fixedModel struct{ bus, dur int64 }

func (m fixedModel) Sample(init, target float64, r *clock.Rand) gpu.Transition {
	return gpu.Transition{BusDelayNs: m.bus, DurationNs: m.dur}
}

// pairModel injects different constant latencies per direction.
type pairModel struct{ upNs, downNs int64 }

func (m pairModel) Sample(init, target float64, r *clock.Rand) gpu.Transition {
	d := m.downNs
	if target > init {
		d = m.upNs
	}
	return gpu.Transition{BusDelayNs: 40_000, DurationNs: d - 40_000}
}

func testDevice(t *testing.T, model gpu.LatencyModel, mutate func(*gpu.Config)) *nvml.Device {
	t.Helper()
	cfg := gpu.Config{
		Name:         "core-gpu",
		Architecture: "Test",
		SMCount:      6,
		MemFreqMHz:   1215,
		FreqsMHz:     []float64{600, 750, 900, 1050, 1200, 1350, 1500},
		Latency:      model,
		Seed:         77,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	dev, err := gpu.New(cfg, clock.New())
	if err != nil {
		t.Fatal(err)
	}
	lib, err := nvml.New(dev)
	if err != nil {
		t.Fatal(err)
	}
	h, err := lib.DeviceHandleByIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// quickConfig keeps campaigns small for unit tests.
func quickConfig(freqs ...float64) Config {
	return Config{
		Frequencies:      freqs,
		Blocks:           3,
		WarmKernels:      2,
		ItersPerKernel:   150,
		MinMeasurements:  5,
		MaxMeasurements:  10,
		RSECheckEvery:    5,
		MaxLatencyHintNs: 30_000_000, // 30 ms
	}
}

func TestConfigValidation(t *testing.T) {
	dev := testDevice(t, fixedModel{bus: 1000, dur: 5_000_000}, nil)
	cases := []Config{
		{},                                 // no frequencies
		{Frequencies: []float64{600}},      // single clock
		{Frequencies: []float64{600, 601}}, // unsupported clock
		{Frequencies: []float64{600, 600}}, // duplicate
		{Frequencies: []float64{600, 900}, MinMeasurements: 10, MaxMeasurements: 5},
		{Frequencies: []float64{600, 900}, Confidence: 1.5},
		{Frequencies: []float64{600, 900}, IterTargetNs: 500}, // below quantum floor
	}
	for i, cfg := range cases {
		if _, err := NewRunner(dev, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := NewRunner(nil, quickConfig(600, 900)); err == nil {
		t.Error("nil device accepted")
	}
	if _, err := NewRunner(dev, quickConfig(600, 900)); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	dev := testDevice(t, fixedModel{bus: 1000, dur: 5_000_000}, nil)
	r, err := NewRunner(dev, Config{Frequencies: []float64{600, 900}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := r.Config()
	if cfg.RSETarget != 0.05 || cfg.MinMeasurements != 25 || cfg.MaxMeasurements != 100 {
		t.Errorf("stopping defaults: %+v", cfg)
	}
	if cfg.SigmaK != 2 || cfg.Confidence != 0.95 {
		t.Errorf("statistical defaults: %+v", cfg)
	}
	if cfg.ThrottleCheckEvery != 5 || cfg.RSECheckEvery != 25 || cfg.Cooldown != 10*time.Second {
		t.Errorf("cadence defaults: %+v", cfg)
	}
	if cfg.Blocks != 6 { // device has 6 SMs, under the cap of 8
		t.Errorf("Blocks = %d, want 6", cfg.Blocks)
	}
}

func TestAllPairsOrderedComplete(t *testing.T) {
	cfg := Config{Frequencies: []float64{600, 900, 1200}}
	pairs := cfg.AllPairs()
	if len(pairs) != 6 {
		t.Fatalf("len(pairs) = %d, want 6", len(pairs))
	}
	if pairs[0] != (Pair{600, 900}) || pairs[5] != (Pair{1200, 900}) {
		t.Fatalf("ordering: %v", pairs)
	}
	for _, p := range pairs {
		if p.InitMHz == p.TargetMHz {
			t.Fatalf("self pair %v", p)
		}
	}
}

func TestPairString(t *testing.T) {
	p := Pair{InitMHz: 1770, TargetMHz: 1260}
	if got := p.String(); got != "1770→1260 MHz" {
		t.Fatalf("String = %q", got)
	}
	if p.Increasing() {
		t.Fatal("1770→1260 reported as increasing")
	}
}

func TestPhase1StatsOrderedByFrequency(t *testing.T) {
	dev := testDevice(t, fixedModel{bus: 1000, dur: 5_000_000}, nil)
	r, err := NewRunner(dev, quickConfig(600, 900, 1200))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := r.Phase1()
	if err != nil {
		t.Fatal(err)
	}
	// Higher clocks must give shorter iterations, and all pairs must be
	// distinguishable at these step sizes.
	if !(p1.Stats[600].Iter.Mean > p1.Stats[900].Iter.Mean &&
		p1.Stats[900].Iter.Mean > p1.Stats[1200].Iter.Mean) {
		t.Fatalf("iteration means not ordered: %+v", p1.Stats)
	}
	if len(p1.ValidPairs) != 6 || len(p1.Excluded) != 0 {
		t.Fatalf("valid=%d excluded=%d, want 6/0", len(p1.ValidPairs), len(p1.Excluded))
	}
	// The reference iteration duration at the slowest clock ≈ the target.
	mean := p1.Stats[600].Iter.Mean
	if math.Abs(mean-0.15) > 0.01 {
		t.Fatalf("iteration at slowest clock = %v ms, want ≈0.15", mean)
	}
}

func TestPhase1ExcludesIndistinguishablePairs(t *testing.T) {
	// A device with enormous iteration jitter makes neighbouring clocks
	// statistically inseparable at phase-1 sample sizes.
	dev := testDevice(t, fixedModel{bus: 1000, dur: 5_000_000}, func(c *gpu.Config) {
		// 8 % iteration noise: the 0.25 %-apart clocks are hopeless, but
		// the 2× pair stays separated beyond the detection band + margin.
		c.FreqsMHz = []float64{1200, 1203, 2400}
		c.IterJitterSigma = 0.08
	})
	cfg := quickConfig(1200, 1203, 2400)
	cfg.WarmKernels = 2
	cfg.ItersPerKernel = 60
	cfg.Blocks = 2
	r, err := NewRunner(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := r.Phase1()
	if err != nil {
		t.Fatal(err)
	}
	excluded := map[Pair]bool{}
	for _, p := range p1.Excluded {
		excluded[p] = true
	}
	if !excluded[Pair{1200, 1203}] || !excluded[Pair{1203, 1200}] {
		t.Fatalf("0.25%%-apart clocks under 20%% jitter not excluded: %+v", p1.Excluded)
	}
	if excluded[Pair{1200, 2400}] {
		t.Fatalf("2× apart clocks wrongly excluded")
	}
}

func TestMeasureOnceMatchesInjected(t *testing.T) {
	const injectedNs = 12_000_000 // 12 ms
	dev := testDevice(t, fixedModel{bus: 60_000, dur: injectedNs - 60_000}, nil)
	r, err := NewRunner(dev, quickConfig(600, 1200))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := r.Phase1()
	if err != nil {
		t.Fatal(err)
	}
	pair := Pair{InitMHz: 1200, TargetMHz: 600}
	is, ts, err := r.pairStats(pair, p1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.MeasureOnce(pair, is, ts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.InjectedMs-12.0) > 0.001 {
		t.Fatalf("InjectedMs = %v, want 12", m.InjectedMs)
	}
	// Measured = injected + detection granularity (≤ ~2.5 iterations)
	// + sync error (µs-scale).
	iterMs := r.cfg.IterTargetNs / 1e6
	errMs := m.LatencyMs - m.InjectedMs
	if errMs < -0.1*iterMs || errMs > 4*iterMs {
		t.Fatalf("measured %v vs injected %v: error %v ms outside [0, 4 iter]",
			m.LatencyMs, m.InjectedMs, errMs)
	}
}

func TestMeasurePairRSEStopsEarly(t *testing.T) {
	// Constant injected latency → tiny RSE → the loop must stop at the
	// first check past the minimum, not run to MaxMeasurements.
	dev := testDevice(t, fixedModel{bus: 50_000, dur: 8_000_000}, nil)
	cfg := quickConfig(600, 1200)
	cfg.MinMeasurements = 5
	cfg.MaxMeasurements = 50
	cfg.RSECheckEvery = 5
	r, err := NewRunner(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := r.Phase1()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := r.MeasurePair(Pair{600, 1200}, p1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Samples) != 5 {
		t.Fatalf("samples = %d, want 5 (early RSE stop)", len(pr.Samples))
	}
	if pr.FinalRSE >= 0.05 {
		t.Fatalf("FinalRSE = %v", pr.FinalRSE)
	}
	if pr.Skipped || pr.ThrottleEvents != 0 {
		t.Fatalf("unexpected throttle state: %+v", pr)
	}
}

func TestMeasurePairValidationAgainstGroundTruth(t *testing.T) {
	// The central validation: across a pair campaign the measured
	// latencies track the injected ones within detection granularity.
	dev := testDevice(t, pairModel{upNs: 15_000_000, downNs: 6_000_000}, nil)
	cfg := quickConfig(600, 1200)
	r, err := NewRunner(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := r.Phase1()
	if err != nil {
		t.Fatal(err)
	}
	iterMs := r.Config().IterTargetNs / 1e6
	for _, pair := range []Pair{{600, 1200}, {1200, 600}} {
		pr, err := r.MeasurePair(pair, p1)
		if err != nil {
			t.Fatal(err)
		}
		if len(pr.Samples) < cfg.MinMeasurements {
			t.Fatalf("%v: only %d samples", pair, len(pr.Samples))
		}
		for i, lat := range pr.Samples {
			diff := lat - pr.Injected[i]
			if diff < -0.1*iterMs || diff > 5*iterMs {
				t.Fatalf("%v sample %d: measured %v, injected %v",
					pair, i, lat, pr.Injected[i])
			}
		}
	}
}

func TestMeasurePairExcludedPairRejected(t *testing.T) {
	dev := testDevice(t, fixedModel{bus: 1000, dur: 5_000_000}, nil)
	r, err := NewRunner(dev, quickConfig(600, 1200))
	if err != nil {
		t.Fatal(err)
	}
	p1 := &Phase1Result{Stats: map[float64]FreqStats{}}
	if _, err := r.MeasurePair(Pair{600, 1200}, p1); err == nil {
		t.Fatal("pair absent from ValidPairs accepted")
	}
}

func TestMeasurePairPowerThrottleSkips(t *testing.T) {
	dev := testDevice(t, fixedModel{bus: 50_000, dur: 5_000_000}, func(c *gpu.Config) {
		c.PowerCapMHz = 900
		c.PowerCapDelayNs = int64(20 * time.Millisecond)
	})
	cfg := quickConfig(600, 1200)
	r, err := NewRunner(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := r.Phase1()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := r.MeasurePair(Pair{600, 1200}, p1)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Skipped {
		t.Fatalf("pair above the power cap not skipped: %+v", pr)
	}
}

func TestMeasurePairThermalBackoff(t *testing.T) {
	// Scenario: the device enters the campaign hot (a previous tenant ran
	// it at full clocks). The clamp equals the pair's upper clock, so the
	// throttled measurements still succeed; the 5-pass reason check must
	// discard them and back off, after which the cooled device completes
	// the campaign cleanly.
	dev := testDevice(t, fixedModel{bus: 50_000, dur: 5_000_000}, func(c *gpu.Config) {
		c.ThermalLimitC = 45
		c.ThermalHysteresisC = 2
		c.SteadyTempAtMaxC = 120
		c.ThermalTauS = 10
		c.ThrottleClampMHz = 750
	})
	cfg := quickConfig(600, 750)
	cfg.Cooldown = 30 * time.Second
	r, err := NewRunner(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := r.Phase1()
	if err != nil {
		t.Fatal(err)
	}
	// Pre-heat: ~10 s of full-clock load drives the die far past the
	// 45 °C limit and latches the thermal throttle.
	if err := dev.SetApplicationsClocks(0, 1500); err != nil {
		t.Fatal(err)
	}
	r.ctx.Sleep(200 * time.Millisecond)
	if _, err := dev.Sim().Launch(gpu.KernelSpec{Iters: 100, CyclesPerIter: 1.5e8, Blocks: 1}); err != nil {
		t.Fatal(err)
	}
	dev.Sim().Synchronize()
	if !dev.Sim().ThrottleReasons().Has(gpu.ThrottleThermal) {
		t.Fatalf("pre-heat failed: temp=%v", dev.Temperature())
	}

	pr, err := r.MeasurePair(Pair{750, 600}, p1)
	if err != nil {
		t.Fatal(err)
	}
	if pr.ThrottleEvents == 0 {
		t.Fatalf("no thermal backoff despite hot start: temp=%v", dev.Temperature())
	}
	if pr.DiscardedByThrottle == 0 {
		t.Fatal("thermal backoff discarded nothing")
	}
	if len(pr.Samples) == 0 {
		t.Fatal("campaign produced no samples after cooldown")
	}
	if dev.Sim().ThrottleReasons().Has(gpu.ThrottleThermal) {
		t.Fatal("thermal throttle still latched after cooldown")
	}
}

func TestProbeEstimatesCapture(t *testing.T) {
	dev := testDevice(t, fixedModel{bus: 50_000, dur: 9_000_000}, nil)
	cfg := quickConfig(600, 900, 1200)
	cfg.MaxLatencyHintNs = 0 // force probing path via Probe
	r, err := NewRunner(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := r.Phase1()
	if err != nil {
		t.Fatal(err)
	}
	est, err := r.Probe(p1)
	if err != nil {
		t.Fatal(err)
	}
	// 10× the ≈9 ms latency, plus detection granularity.
	if est < 85_000_000 || est > 130_000_000 {
		t.Fatalf("probe estimate = %d ns, want ≈90 ms", est)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dev := testDevice(t, pairModel{upNs: 10_000_000, downNs: 5_000_000}, nil)
	cfg := quickConfig(600, 900, 1200)
	r, err := NewRunner(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeviceName != "core-gpu" {
		t.Fatalf("DeviceName = %q", res.DeviceName)
	}
	if len(res.Pairs) != 6 {
		t.Fatalf("pairs measured = %d, want 6", len(res.Pairs))
	}
	for _, pr := range res.Pairs {
		if pr.Skipped {
			t.Fatalf("%v skipped unexpectedly", pr.Pair)
		}
		if pr.Summary.N == 0 {
			t.Fatalf("%v: empty summary", pr.Pair)
		}
		// Direction must control the measured magnitude.
		wantMs := 5.0
		if pr.Pair.Increasing() {
			wantMs = 10.0
		}
		if math.Abs(pr.Summary.Median-wantMs) > 0.6 {
			t.Fatalf("%v median = %v, want ≈%v", pr.Pair, pr.Summary.Median, wantMs)
		}
	}
	if _, ok := res.PairByFreqs(600, 1200); !ok {
		t.Fatal("PairByFreqs lookup failed")
	}
	if _, ok := res.PairByFreqs(600, 601); ok {
		t.Fatal("PairByFreqs found a non-measured pair")
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() []float64 {
		dev := testDevice(t, pairModel{upNs: 10_000_000, downNs: 5_000_000}, nil)
		r, err := NewRunner(dev, quickConfig(600, 1200))
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for _, pr := range res.Pairs {
			out = append(out, pr.Samples...)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d: %v vs %v", i, a[i], b[i])
		}
	}
}
