package core

import "testing"

func TestPhase1NormalityDiagnostic(t *testing.T) {
	dev := testDevice(t, fixedModel{bus: 1000, dur: 5_000_000}, nil)
	r, err := NewRunner(dev, quickConfig(600, 1200))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := r.Phase1()
	if err != nil {
		t.Fatal(err)
	}
	for f, st := range p1.Stats {
		if !st.Normalish {
			t.Errorf("clock %v flagged non-normal on a clean device (n=%d)", f, st.Iter.N)
		}
	}
}
