package core

import (
	"testing"

	"golatest/internal/sim/gpu"
)

// TestOverlappingBandsPairUnmeasurable covers the degenerate regime the
// closeness guard exists for: two clocks so close that the target's 2σ
// band contains the initial clock's iterations. Phase 1's mean-difference
// test still admits the pair (means are distinguishable at large n —
// §V-A's point about intervals), but phase 3 must reject every run
// instead of reporting near-zero switching latencies.
func TestOverlappingBandsPairUnmeasurable(t *testing.T) {
	dev := testDevice(t, fixedModel{bus: 50_000, dur: 8_000_000}, func(c *gpu.Config) {
		// 0.33 % apart with ~0.5 % iteration noise: bands fully overlap.
		c.FreqsMHz = []float64{1200, 1204}
		c.IterJitterSigma = 0.005
	})
	cfg := quickConfig(1200, 1204)
	cfg.MinMeasurements = 3
	cfg.MaxMeasurements = 5
	r, err := NewRunner(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := r.Phase1()
	if err != nil {
		t.Fatal(err)
	}
	pair := Pair{InitMHz: 1200, TargetMHz: 1204}
	if pairValid(p1, pair) {
		t.Fatalf("phase 1 admitted a pair whose population bands overlap: %+v", p1.ValidPairs)
	}
	found := false
	for _, p := range p1.Excluded {
		if p == pair {
			found = true
		}
	}
	if !found {
		t.Fatalf("pair missing from Excluded: %+v", p1.Excluded)
	}
}

// TestAdjacentStepPairMeasurable is the complementary case: one 15 MHz
// step at the bottom of the clock table (2.5 % apart) must remain
// measurable with the default (quarter-percent) iteration noise, as the
// paper's heatmaps include neighbouring-step pairs with ordinary
// latencies.
func TestAdjacentStepPairMeasurable(t *testing.T) {
	dev := testDevice(t, fixedModel{bus: 50_000, dur: 8_000_000}, func(c *gpu.Config) {
		c.FreqsMHz = []float64{600, 615}
	})
	cfg := quickConfig(600, 615)
	r, err := NewRunner(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := r.Phase1()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := r.MeasurePair(Pair{InitMHz: 615, TargetMHz: 600}, p1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Samples) < cfg.MinMeasurements {
		t.Fatalf("adjacent-step pair under-measured: %d samples, %d failures",
			len(pr.Samples), pr.Failures)
	}
	iterMs := r.Config().IterTargetNs / 1e6
	for i, lat := range pr.Samples {
		diff := lat - pr.Injected[i]
		if diff < -0.2*iterMs || diff > 6*iterMs {
			t.Fatalf("sample %d: measured %v vs injected %v", i, lat, pr.Injected[i])
		}
	}
}
