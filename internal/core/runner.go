package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"golatest/internal/cuda"
	"golatest/internal/nvml"
	"golatest/internal/ptp"
	"golatest/internal/sim/clock"
	"golatest/internal/sim/gpu"
	"golatest/internal/stats"
	"golatest/internal/workload"
)

// warmTailWindow is how many trailing iterations per block the warm-up
// verification compares against the phase-1 characterisation (capped at
// half the block).
const warmTailWindow = 100

// Runner drives a measurement campaign on one device.
type Runner struct {
	dev *nvml.Device
	ctx *cuda.Context
	cfg Config
	rng *clock.Rand

	// sink is the reusable streaming-statistics sink for the warm-up and
	// phase-1 kernels, which only need summary statistics and therefore
	// skip trace materialisation. One per runner: the single host thread
	// that advances virtual time is also the only sink writer.
	sink *gpu.StreamStats

	// captureHintNs is the effective capture bound (config hint or probe
	// result), mutable because adaptive retry may grow it.
	captureHintNs int64
}

// NewRunner validates the configuration against the device and returns a
// ready campaign runner.
func NewRunner(dev *nvml.Device, cfg Config) (*Runner, error) {
	cfg, err := cfg.withDefaults(dev)
	if err != nil {
		return nil, err
	}
	ctx, err := cuda.NewContext(dev.Sim())
	if err != nil {
		return nil, err
	}
	return &Runner{
		dev:           dev,
		ctx:           ctx,
		cfg:           cfg,
		rng:           clock.NewRand(cfg.Seed, 0x72756e6e6572), // "runner"
		sink:          gpu.NewStreamStats(warmTailWindow),
		captureHintNs: cfg.MaxLatencyHintNs,
	}, nil
}

// pairTag folds a pair's identity into a seed. It depends only on the
// frequencies, so a pair's replica behaves identically no matter which
// other pairs the campaign sweeps or in what order.
func pairTag(seed uint64, pair Pair) uint64 {
	return clock.SplitMix64(clock.SplitMix64(seed^math.Float64bits(pair.InitMHz)) ^ math.Float64bits(pair.TargetMHz))
}

// replicaRunner builds the worker-local runner for one pair of the
// campaign sweep: a fresh device replica of the same hardware profile on
// its own virtual clock, seeded deterministically from the device seed
// and the pair, plus an independent host randomness stream. Replicas make
// the pair sweep embarrassingly parallel — no shared clock, no shared
// device state — while keeping every pair's campaign bit-for-bit
// reproducible regardless of worker count.
func (r *Runner) replicaRunner(pair Pair) (*Runner, error) {
	simCfg := r.dev.Sim().Config()
	simCfg.Seed = pairTag(simCfg.Seed, pair)
	sim, err := gpu.New(simCfg, clock.New())
	if err != nil {
		return nil, err
	}
	lib, err := nvml.New(sim)
	if err != nil {
		return nil, err
	}
	h, err := lib.DeviceHandleByIndex(0)
	if err != nil {
		return nil, err
	}
	ctx, err := cuda.NewContext(sim)
	if err != nil {
		return nil, err
	}
	return &Runner{
		dev:           h,
		ctx:           ctx,
		cfg:           r.cfg,
		rng:           clock.NewRand(r.cfg.Seed, pairTag(0x72756e6e6572, pair)),
		sink:          gpu.NewStreamStats(warmTailWindow),
		captureHintNs: r.captureHintNs,
	}, nil
}

// Config returns the runner's effective (default-filled) configuration.
func (r *Runner) Config() Config { return r.cfg }

// Device returns the device under test.
func (r *Runner) Device() *nvml.Device { return r.dev }

// cyclesFor returns the per-iteration cycle budget that makes an
// iteration last IterTargetNs at the slower clock of the pair.
func (r *Runner) cyclesFor(pair Pair) float64 {
	slow := math.Min(pair.InitMHz, pair.TargetMHz)
	return workload.CyclesForIterDuration(r.cfg.IterTargetNs, slow)
}

// iterNsAt returns the nominal iteration duration at clock f for the
// given cycle budget.
func iterNsAt(cycles, f float64) float64 { return workload.IterDurationNs(cycles, f) }

// FreqStats is the phase-1 characterisation of one clock: the iteration
// duration population of the last warm kernel, in milliseconds.
type FreqStats struct {
	FreqMHz float64
	Iter    stats.MeanStd // iteration duration, ms
	// Normalish reports whether the population passed the Jarque–Bera
	// diagnostic. The 2σ band and the pairwise tests assume approximate
	// normality (§V-A); a false here flags a clock whose iteration
	// distribution is skewed or heavy-tailed enough to distort them
	// (e.g. residual throttling or a contaminated warm-up).
	Normalish bool
}

// Phase1Result carries Algorithm 1's outputs.
type Phase1Result struct {
	// Stats maps each clock to its iteration statistics at the campaign's
	// reference cycle budget.
	Stats map[float64]FreqStats
	// ValidPairs are the statistically distinguishable ordered pairs.
	ValidPairs []Pair
	// Excluded are the pairs whose mean-difference interval contained
	// zero (measurement impossible: the transition end cannot be told
	// apart from noise) or whose population bands overlap.
	Excluded []Pair
	// Unstable lists clocks the device never demonstrably reached during
	// warm-up (e.g. power-capped); pairs touching them are excluded.
	Unstable []float64
}

// refCycles returns the campaign-wide phase-1 cycle budget: iterations
// sized at the slowest configured clock, so every clock's population uses
// the same workload (a prerequisite for comparing their means).
func (r *Runner) refCycles() float64 {
	slow := r.cfg.Frequencies[0]
	for _, f := range r.cfg.Frequencies[1:] {
		if f < slow {
			slow = f
		}
	}
	return workload.CyclesForIterDuration(r.cfg.IterTargetNs, slow)
}

// plausiblyNormal is the phase-1 shape diagnostic over the streamed
// skewness (g1) and excess kurtosis (g2). A full Jarque–Bera test
// over-rejects here: the device timer's quantisation turns the iteration
// population into a lattice whose tails are flatter than a normal's,
// which is harmless for the 2σ band. Moment thresholds keep the
// quantisation lattice while catching the departures that actually
// distort the band: skew (residual throttling/adaptation in the window)
// and heavy or strongly bimodal tails.
func plausiblyNormal(g1, g2 float64) bool {
	if math.IsNaN(g1) || math.IsNaN(g2) {
		return true // too small to judge
	}
	return math.Abs(g1) < 0.5 && g2 > -1.5 && g2 < 3
}

// settleSleep waits long enough for a just-requested clock change to
// complete: the capture hint (if known) plus slack, otherwise a
// conservative second.
func (r *Runner) settleSleep() {
	slack := 50 * time.Millisecond
	if r.captureHintNs > 0 {
		r.ctx.Sleep(time.Duration(float64(r.captureHintNs)*1.2) + slack)
		return
	}
	r.ctx.Sleep(time.Second + slack)
}

// Phase1 executes the warm-up and frequency-comparison phase.
func (r *Runner) Phase1() (*Phase1Result, error) {
	cycles := r.refCycles()
	res := &Phase1Result{Stats: make(map[float64]FreqStats, len(r.cfg.Frequencies))}

	unstable := map[float64]bool{}
	for _, f := range r.cfg.Frequencies {
		if err := r.dev.SetApplicationsClocks(0, f); err != nil {
			return nil, fmt.Errorf("core: phase 1 clock %v: %w", f, err)
		}
		r.settleSleep()
		// §V wake-up estimation: keep running warm kernels until the last
		// kernel's mean matches the nominal iteration duration at the
		// imposed clock. A fixed kernel count (or plateau detection
		// alone) is unsafe: a slow or driver-delayed transition executes
		// the early kernels at the previous clock, which also looks like
		// a stable plateau. The nominal duration is known here because
		// the runner authored the workload's cycle budget.
		nominalMs := cycles / f / 1000
		kernelNs := float64(r.cfg.ItersPerKernel) * workload.IterDurationNs(cycles, f)
		maxRounds := r.cfg.WarmKernels + int(3e9/kernelNs) + 1
		settled := false
		for k := 0; k < maxRounds; k++ {
			// Warm kernels only feed summary statistics, so they stream
			// through the runner's Welford sink instead of materialising
			// their iteration traces.
			r.sink.Reset()
			if _, err := r.ctx.LaunchKernelWithSink(gpu.KernelSpec{
				Iters:         r.cfg.ItersPerKernel,
				CyclesPerIter: cycles,
				Blocks:        r.cfg.Blocks,
			}, r.sink); err != nil {
				return nil, fmt.Errorf("core: phase 1 launch at %v MHz: %w", f, err)
			}
			r.ctx.DeviceSynchronize()
			if k+1 >= r.cfg.WarmKernels &&
				math.Abs(r.sink.MeanStd().Mean-nominalMs) < 0.02*nominalMs {
				settled = true
				break
			}
		}
		if !settled {
			unstable[f] = true
			res.Unstable = append(res.Unstable, f)
		}
		// The sink still holds the last warm kernel's moments.
		res.Stats[f] = FreqStats{
			FreqMHz:   f,
			Iter:      r.sink.MeanStd(),
			Normalish: plausiblyNormal(r.sink.Skewness(), r.sink.ExcessKurtosis()),
		}
	}

	for _, pair := range r.cfg.AllPairs() {
		if unstable[pair.InitMHz] || unstable[pair.TargetMHz] {
			res.Excluded = append(res.Excluded, pair)
			continue
		}
		a := res.Stats[pair.InitMHz].Iter
		b := res.Stats[pair.TargetMHz].Iter
		iv := stats.MeanDiffCI(a, b, r.cfg.Confidence)
		if iv.ContainsZero() || math.IsNaN(iv.Lo) {
			res.Excluded = append(res.Excluded, pair)
			continue
		}
		// The mean-difference interval alone degenerates at large n
		// (§V-A): it can admit pairs whose iteration *populations*
		// overlap, on which the phase-3 band detection would fire on
		// initial-clock iterations and report near-zero latencies. A
		// pair is measurable only when the means are separated beyond
		// the detection band plus a tail margin of the noisier
		// population, so initial-clock iterations essentially never
		// enter the target band.
		sep := math.Abs(a.Mean - b.Mean)
		guard := (r.cfg.SigmaK + 3) * math.Max(a.Std, b.Std)
		if sep <= guard {
			res.Excluded = append(res.Excluded, pair)
			continue
		}
		res.ValidPairs = append(res.ValidPairs, pair)
	}
	return res, nil
}

// Measurement is one accepted switching-latency observation.
type Measurement struct {
	Pair Pair
	// LatencyMs is t_e − t_s in milliseconds (device timebase).
	LatencyMs float64
	// TsDevNs and TeDevNs are the change-request and detection timestamps
	// on the device clock.
	TsDevNs, TeDevNs int64
	// SM is the block index that produced the maximal latency.
	SM int
	// TransitionIndex is the iteration index at which that block reached
	// the target band.
	TransitionIndex int
	// InjectedMs is the simulator's ground-truth switching latency for
	// this request. Real hardware cannot provide it; it exists to
	// validate the methodology (NaN when unavailable).
	InjectedMs float64
	// SyncSpreadNs echoes the PTP dispersion during this measurement.
	SyncSpreadNs int64
}

// measureErr classifies a failed measurement attempt.
type measureErr struct {
	reason string
}

func (e *measureErr) Error() string { return "core: measurement failed: " + e.reason }

// errNoDetection marks runs where no SM saw a target-band iteration —
// §V's "latency cannot be captured" case; the caller retries with a
// longer workload.
var errNoDetection = &measureErr{reason: "no iteration reached the target band (capture too short?)"}

// errConfirmFailed marks runs where detection fired but the confirmation
// population did not match the target clock (§IV's adaptation case).
var errConfirmFailed = &measureErr{reason: "confirmation mean did not match the target clock"}

// errInitUnstable marks runs where the device never stabilised at the
// initial clock during warm-up (§V's wake-up verification).
var errInitUnstable = &measureErr{reason: "device did not stabilise at the initial clock"}

// ensureInitialClock runs warm-up kernels until the trailing iterations
// match the initial clock's phase-1 characterisation, or gives up.
func (r *Runner) ensureInitialClock(initStat stats.MeanStd, cycles, iterInitNs float64) error {
	warmNs := 1.2*float64(r.effectiveCaptureNs()) + float64(50*time.Millisecond)
	warmIters := int(warmNs/iterInitNs) + 1
	const rounds = 5
	for attempt := 0; attempt < rounds; attempt++ {
		// Warm kernels stream into the reusable sink: the check below only
		// needs each block's tail-window statistics, so the full trace
		// (warmIters × blocks IterSamples per round) is never allocated.
		r.sink.Reset()
		if _, err := r.ctx.LaunchKernelWithSink(gpu.KernelSpec{
			Iters: warmIters, CyclesPerIter: cycles, Blocks: r.cfg.Blocks,
		}, r.sink); err != nil {
			return err
		}
		r.ctx.DeviceSynchronize()

		// Compare the tail of each block against the init population.
		stable := true
		for b := 0; b < r.sink.NumBlocks(); b++ {
			tail := r.sink.BlockTail(b)
			if math.Abs(tail.Mean-initStat.Mean) >= r.cfg.RelTolerance*initStat.Mean {
				stable = false
				break
			}
		}
		if stable {
			return nil
		}
		// Not settled: the clock transition outlived this round; loop for
		// another warm kernel (subsequent rounds run at clocks closer to
		// the target, so coverage improves geometrically).
	}
	return errInitUnstable
}

// MeasureOnce performs one phase-2 run and phase-3 evaluation for the
// pair. p1 must contain statistics for both clocks of the pair at the
// pair's cycle budget — campaigns use pairStats to re-characterise.
func (r *Runner) MeasureOnce(pair Pair, initStat, targetStat stats.MeanStd) (Measurement, error) {
	cycles := r.cyclesFor(pair)
	iterInitNs := iterNsAt(cycles, pair.InitMHz)

	// (1) Timer synchronisation.
	sync, err := ptp.Sync(r.ctx.Clock(), r.dev.Sim(), r.cfg.PTP, r.rng)
	if err != nil {
		return Measurement{}, err
	}

	// (2) Initial clock + warm-up workload: covers the clock transition
	// to the initial frequency and any wake-up from idle. Per §V, the
	// warm-up is verified, not assumed: the last iterations of each warm
	// kernel must match the initial clock's characterisation before the
	// benchmark proceeds. (Sizing alone is unsafe — a warm-up budgeted in
	// init-clock iterations executes faster while the device still runs
	// at a higher previous clock, so a driver-outlier transition can
	// outlive it.)
	if err := r.dev.SetApplicationsClocks(0, pair.InitMHz); err != nil {
		return Measurement{}, err
	}
	if err := r.ensureInitialClock(initStat, cycles, iterInitNs); err != nil {
		return Measurement{}, err
	}

	// (3) Benchmark kernel: delay + capture + confirmation regions.
	captureIters := int(float64(r.effectiveCaptureNs())/r.cfg.IterTargetNs) + 1
	spec := gpu.KernelSpec{
		Iters:         r.cfg.DelayIters + captureIters + r.cfg.ConfirmIters,
		CyclesPerIter: cycles,
		Blocks:        r.cfg.Blocks,
	}
	bench, err := r.ctx.LaunchKernel(spec)
	if err != nil {
		return Measurement{}, err
	}

	// (4) Sleep through the delay region, then issue the change and stamp
	// it (Algorithm 2 lines 5–7).
	r.ctx.Usleep(int64(float64(r.cfg.DelayIters) * iterInitNs / 1000))
	tsHost := r.ctx.HostTimestamp()
	if err := r.dev.SetApplicationsClocks(0, pair.TargetMHz); err != nil {
		return Measurement{}, err
	}
	injected := math.NaN()
	if inj, ok := r.dev.Sim().LastInjection(); ok && inj.TargetMHz == pair.TargetMHz {
		injected = float64(inj.SwitchingLatencyNs()) / 1e6
	}

	// (5) Wait for the kernel and evaluate per SM.
	r.ctx.DeviceSynchronize()
	tsDev := sync.HostToDevice(tsHost)

	m, err := r.evaluate(bench.Samples(), tsDev, targetStat)
	if err != nil {
		return Measurement{}, err
	}
	m.Pair = pair
	m.TsDevNs = tsDev
	m.InjectedMs = injected
	m.SyncSpreadNs = sync.SpreadNs
	return m, nil
}

// effectiveCaptureNs returns the current capture bound.
func (r *Runner) effectiveCaptureNs() int64 {
	if r.captureHintNs > 0 {
		return int64(float64(r.captureHintNs) * r.cfg.CaptureSafety)
	}
	return int64(time.Second) // conservative bootstrap
}

// Probe estimates the capture bound per §V: measure a few representative
// pairs (low, medium, high clocks) with a generous capture window and
// keep ten times the longest latency seen. The runner adopts the result.
func (r *Runner) Probe(p1 *Phase1Result) (int64, error) {
	freqs := append([]float64(nil), r.cfg.Frequencies...)
	sort.Float64s(freqs)
	lo, mid, hi := freqs[0], freqs[len(freqs)/2], freqs[len(freqs)-1]
	candidates := []Pair{{lo, hi}, {hi, lo}, {mid, lo}, {lo, mid}, {mid, hi}}

	saved := r.captureHintNs
	r.captureHintNs = 0 // bootstrap window
	defer func() {
		if r.captureHintNs == 0 {
			r.captureHintNs = saved
		}
	}()

	var probes []int64
	for _, pair := range candidates {
		if pair.InitMHz == pair.TargetMHz || !pairValid(p1, pair) {
			continue
		}
		is, ts, err := r.pairStats(pair, p1)
		if err != nil {
			return 0, err
		}
		m, err := r.MeasureOnce(pair, is, ts)
		if err != nil {
			continue // probe failures are tolerable; others will cover
		}
		probes = append(probes, int64(m.LatencyMs*1e6))
	}
	est := workload.EstimateCaptureNs(probes)
	if est == 0 {
		return 0, fmt.Errorf("core: probe captured no transitions; re-run with a larger MaxLatencyHintNs")
	}
	r.captureHintNs = est
	return est, nil
}

func pairValid(p1 *Phase1Result, pair Pair) bool {
	for _, v := range p1.ValidPairs {
		if v == pair {
			return true
		}
	}
	return false
}

// pairStats converts phase-1 reference statistics to the pair's cycle
// budget. Iteration durations scale linearly with the cycle budget, so
// the mean and standard deviation rescale by the same factor.
func (r *Runner) pairStats(pair Pair, p1 *Phase1Result) (initStat, targetStat stats.MeanStd, err error) {
	ratio := r.cyclesFor(pair) / r.refCycles()
	is, ok := p1.Stats[pair.InitMHz]
	if !ok {
		return initStat, targetStat, fmt.Errorf("core: no phase-1 stats for %v MHz", pair.InitMHz)
	}
	tsd, ok := p1.Stats[pair.TargetMHz]
	if !ok {
		return initStat, targetStat, fmt.Errorf("core: no phase-1 stats for %v MHz", pair.TargetMHz)
	}
	scale := func(m stats.MeanStd) stats.MeanStd {
		return stats.MeanStd{N: m.N, Mean: m.Mean * ratio, Std: m.Std * ratio}
	}
	return scale(is.Iter), scale(tsd.Iter), nil
}
