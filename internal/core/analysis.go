package core

import (
	"math"
	"sync"

	"golatest/internal/sim/gpu"
	"golatest/internal/stats"
)

// blockVerdict is one SM's phase-3 outcome.
type blockVerdict struct {
	detected  bool
	confirmed bool
	teDevNs   int64
	latencyMs float64
	iterIndex int
}

// evaluate runs the phase-3 per-SM analysis (Algorithm 2 lines 9–24) over
// all recorded blocks in parallel and reduces to the pair's switching
// latency: the maximum accepted t_e − t_s across SMs.
func (r *Runner) evaluate(blocks [][]gpu.IterSample, tsDevNs int64, target stats.MeanStd) (Measurement, error) {
	verdicts := make([]blockVerdict, len(blocks))
	var wg sync.WaitGroup
	for i := range blocks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			verdicts[i] = r.evaluateBlock(blocks[i], tsDevNs, target)
		}(i)
	}
	wg.Wait()

	best := Measurement{LatencyMs: math.Inf(-1)}
	anyDetected := false
	accepted := false
	for sm, v := range verdicts {
		if v.detected {
			anyDetected = true
		}
		if !v.confirmed {
			continue
		}
		accepted = true
		if v.latencyMs > best.LatencyMs {
			best.LatencyMs = v.latencyMs
			best.TeDevNs = v.teDevNs
			best.SM = sm
			best.TransitionIndex = v.iterIndex
		}
	}
	if !accepted {
		if anyDetected {
			return Measurement{}, errConfirmFailed
		}
		return Measurement{}, errNoDetection
	}
	return best, nil
}

// evaluateBlock scans one SM's iteration trace: starting from the change
// timestamp, it finds the first iteration whose duration falls inside the
// SigmaK·σ band of the target population, then confirms that the
// remaining iterations' mean matches the target mean (difference interval
// containing zero, or relative difference under tolerance).
func (r *Runner) evaluateBlock(iters []gpu.IterSample, tsDevNs int64, target stats.MeanStd) blockVerdict {
	v := blockVerdict{}
	band := r.cfg.SigmaK * target.Std
	if r.cfg.CIDetection {
		// FTaLaT-style detection: the confidence interval of the mean.
		// With phase-1 populations of thousands of iterations this band
		// collapses far below the iteration noise (§V-A).
		band = r.cfg.SigmaK * target.StdErr()
	}
	detectIdx := -1
	for i, it := range iters {
		if it.StartNs < tsDevNs {
			continue
		}
		durMs := float64(it.DurNs()) / 1e6
		if math.Abs(durMs-target.Mean) <= band {
			detectIdx = i
			break
		}
	}
	if detectIdx < 0 {
		return v
	}
	v.detected = true
	v.teDevNs = iters[detectIdx].EndNs
	v.iterIndex = detectIdx

	// Confirmation population: everything from the detected iteration on.
	var acc stats.Accumulator
	for _, it := range iters[detectIdx:] {
		acc.Add(float64(it.DurNs()) / 1e6)
	}
	tail := acc.MeanStd()
	if tail.N < 2 {
		return v
	}
	iv := stats.MeanDiffCI(tail, target, r.cfg.Confidence)
	relDiff := math.Abs(tail.Mean-target.Mean) / target.Mean
	if !iv.ContainsZero() && relDiff >= r.cfg.RelTolerance {
		// The device was still adapting: discard this run (§IV).
		return v
	}
	v.confirmed = true
	v.latencyMs = float64(v.teDevNs-tsDevNs) / 1e6
	return v
}
