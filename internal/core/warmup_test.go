package core

import (
	"testing"

	"golatest/internal/sim/clock"
	"golatest/internal/sim/gpu"
)

// slowDownModel makes downward transitions dramatically slower than
// upward ones — the shape that once produced false near-zero latencies:
// a warm-up budgeted in initial-clock iterations executes much faster
// while the device still runs at the higher previous clock, so a long
// transition to the initial clock could outlive it, leaving the target
// request a no-op (device already at the target).
type slowDownModel struct{ downNs, upNs int64 }

func (m slowDownModel) Sample(init, target float64, r *clock.Rand) gpu.Transition {
	d := m.upNs
	if target < init {
		d = m.downNs
	}
	return gpu.Transition{BusDelayNs: 50_000, DurationNs: d - 50_000}
}

// TestWarmupOutlivesSlowInitTransition is the regression test for the
// §V wake-up verification: with a 150 ms transition *down* to the
// initial clock and a capture hint sized for the 8 ms *up* transitions,
// naive warm-up sizing under-covers and the campaign would record
// near-zero latencies. The stabilisation check must instead retry the
// warm-up until the initial clock is confirmed.
func TestWarmupOutlivesSlowInitTransition(t *testing.T) {
	dev := testDevice(t, slowDownModel{downNs: 150_000_000, upNs: 8_000_000}, nil)
	cfg := quickConfig(600, 1200)
	cfg.MaxLatencyHintNs = 20_000_000 // sized for the up direction only
	r, err := NewRunner(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := r.Phase1()
	if err != nil {
		t.Fatal(err)
	}
	// Measuring 600→1200 requires first settling at 600 — the slow
	// direction the hint does not cover.
	pr, err := r.MeasurePair(Pair{InitMHz: 600, TargetMHz: 1200}, p1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Samples) == 0 {
		t.Fatalf("no samples (failures %d): stabilisation retries never converged", pr.Failures)
	}
	iterMs := r.Config().IterTargetNs / 1e6
	for i, lat := range pr.Samples {
		if lat < 1 {
			t.Fatalf("sample %d: near-zero latency %v ms — target request hit an unchanged clock", i, lat)
		}
		if diff := lat - pr.Injected[i]; diff < -0.2*iterMs || diff > 6*iterMs {
			t.Fatalf("sample %d: measured %v vs injected %v", i, lat, pr.Injected[i])
		}
	}
}
