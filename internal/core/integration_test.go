package core

import (
	"math"
	"testing"

	"golatest/internal/hwprofile"
	"golatest/internal/nvml"
	"golatest/internal/sim/clock"
)

// profileRunner builds a runner over a hwprofile device with a reduced
// frequency subset, as the full campaigns in internal/experiments do.
func profileRunner(t *testing.T, p hwprofile.Profile, freqs []float64, cfg Config) *Runner {
	t.Helper()
	dev, err := p.NewDevice(clock.New())
	if err != nil {
		t.Fatal(err)
	}
	lib, err := nvml.New(dev)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := lib.DeviceHandleByIndex(0)
	cfg.Frequencies = freqs
	r, err := NewRunner(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestA100CampaignTracksGroundTruth is the central end-to-end validation:
// on the calibrated A100 model, every accepted measurement must agree
// with the simulator's injected switching latency within the detection
// granularity (iteration time) plus synchronisation error.
func TestA100CampaignTracksGroundTruth(t *testing.T) {
	cfg := Config{
		Blocks:           4,
		MinMeasurements:  8,
		MaxMeasurements:  16,
		RSECheckEvery:    8,
		MaxLatencyHintNs: 120_000_000,
		Seed:             41,
	}
	r := profileRunner(t, hwprofile.A100(), []float64{705, 1065, 1410}, cfg)
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 6 {
		t.Fatalf("pairs = %d, want 6", len(res.Pairs))
	}
	iterMs := r.Config().IterTargetNs / 1e6
	total, checked := 0, 0
	for _, pr := range res.Pairs {
		for i, lat := range pr.Samples {
			total++
			inj := pr.Injected[i]
			if math.IsNaN(inj) {
				continue
			}
			checked++
			// Expected positive bias: up to one blended iteration plus
			// one full iteration per SM, maximised over SMs, plus the
			// occasional iteration that misses the 2σ band (≈5 % each).
			diff := lat - inj
			if diff < -0.2*iterMs || diff > 6*iterMs {
				t.Errorf("%v: measured %.3f vs injected %.3f (diff %.3f ms)",
					pr.Pair, lat, inj, diff)
			}
		}
	}
	if total == 0 || checked != total {
		t.Fatalf("validated %d/%d samples", checked, total)
	}
}

// TestGH200PathologicalPairMeasurable exercises the adaptive-capture
// retry on the slowest pair family (≈250–480 ms transitions).
func TestGH200PathologicalPairMeasurable(t *testing.T) {
	if testing.Short() {
		t.Skip("long campaign")
	}
	cfg := Config{
		Blocks:           3,
		MinMeasurements:  6,
		MaxMeasurements:  10,
		RSECheckEvery:    6,
		MaxLatencyHintNs: 500_000_000,
		Seed:             43,
	}
	r := profileRunner(t, hwprofile.GH200(), []float64{1770, 1260}, cfg)
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	pr, ok := res.PairByFreqs(1770, 1260)
	if !ok || len(pr.Samples) == 0 {
		t.Fatal("pathological pair produced no samples")
	}
	// The pair's mixture spans tens to hundreds of ms; the campaign max
	// must land in the pathological band.
	if pr.Summary.Max < 100 {
		t.Fatalf("pathological pair max = %v ms, want ≥ 100", pr.Summary.Max)
	}
	iterMs := r.Config().IterTargetNs / 1e6
	for i, lat := range pr.Samples {
		if diff := lat - pr.Injected[i]; diff < -0.2*iterMs || diff > 6*iterMs {
			t.Errorf("sample %d: measured %.3f vs injected %.3f", i, lat, pr.Injected[i])
		}
	}
}

// TestRTXBandStructureSurvivesMethodology checks that the banded RTX
// behaviour (fast band vs 135 ms wall) survives the full measurement
// pipeline, not just the raw model.
func TestRTXBandStructureSurvivesMethodology(t *testing.T) {
	if testing.Short() {
		t.Skip("long campaign")
	}
	cfg := Config{
		Blocks:           3,
		MinMeasurements:  6,
		MaxMeasurements:  10,
		RSECheckEvery:    6,
		MaxLatencyHintNs: 400_000_000,
		Seed:             47,
	}
	r := profileRunner(t, hwprofile.RTXQuadro6000(), []float64{750, 1110, 1650}, cfg)
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	fast, ok1 := res.PairByFreqs(1110, 750)
	wall, ok2 := res.PairByFreqs(750, 1110)
	if !ok1 || !ok2 {
		t.Fatal("expected pairs missing")
	}
	if fast.Summary.Median > 60 {
		t.Fatalf("fast-band pair median = %v, want ≲25", fast.Summary.Median)
	}
	if wall.Summary.Median < 60 {
		t.Fatalf("mid-band pair median = %v, want ≈135", wall.Summary.Median)
	}
}
