package core

import (
	"fmt"
	"time"

	"golatest/internal/sim/gpu"
	"golatest/internal/stats"
	"golatest/internal/workload"
)

// WakeupEstimate is the outcome of the §V wake-up measurement: how long a
// device coming from idle needs before a freshly launched workload runs
// at the programmed clock.
type WakeupEstimate struct {
	FreqMHz float64
	// WakeupNs is the device time from the first kernel's start until the
	// first iteration statistically consistent with the programmed clock.
	WakeupNs int64
	// Stabilized reports whether the programmed clock was reached within
	// the observation budget at all.
	Stabilized bool
	// FirstIterMs and SettledIterMs document the contrast the estimate is
	// built on: the first kernel's opening iteration versus the settled
	// iteration duration.
	FirstIterMs   float64
	SettledIterMs float64
}

// EstimateWakeup measures the wake-up latency at the given clock (§V):
// the device first sits idle long enough to drop to idle clocks, then a
// split workload launches and the per-iteration trace reveals when the
// imposed clock took hold. The workload is split into several kernels so
// the comparison "first kernel's iterations vs last kernel's average"
// from the paper is directly available.
func (r *Runner) EstimateWakeup(freqMHz float64, idle time.Duration) (WakeupEstimate, error) {
	simCfg := r.dev.Sim().Config()
	if !simCfg.SupportsFreq(freqMHz) {
		return WakeupEstimate{}, fmt.Errorf("core: clock %v MHz not supported by %s", freqMHz, r.dev.Name())
	}
	cycles := workload.CyclesForIterDuration(r.cfg.IterTargetNs, freqMHz)

	// Program the clock and let it settle under load first, so the idle
	// period starts from a known state.
	if err := r.dev.SetApplicationsClocks(0, freqMHz); err != nil {
		return WakeupEstimate{}, err
	}
	nominal := stats.MeanStd{N: r.cfg.ItersPerKernel, Mean: cycles / freqMHz / 1000,
		Std: 0.01 * cycles / freqMHz / 1000}
	if err := r.ensureInitialClock(nominal, cycles, r.cfg.IterTargetNs); err != nil {
		return WakeupEstimate{}, err
	}

	// Idle long enough for the driver to drop the clocks.
	if idle <= 0 {
		idle = 2 * time.Duration(simCfg.IdleTimeoutNs)
	}
	r.ctx.Sleep(idle)

	// Split workload: enough total iterations to cover several times the
	// platform's plausible wake delay.
	total := int(4*float64(simCfg.WakeDelayNs)/r.cfg.IterTargetNs) + 4*r.cfg.ConfirmIters
	parts, err := workload.SplitKernels(total, 4)
	if err != nil {
		return WakeupEstimate{}, err
	}
	kernels := make([]*gpu.Kernel, 0, len(parts))
	for _, n := range parts {
		k, err := r.ctx.LaunchKernel(gpu.KernelSpec{
			Iters: n, CyclesPerIter: cycles, Blocks: r.cfg.Blocks,
		})
		if err != nil {
			return WakeupEstimate{}, err
		}
		kernels = append(kernels, k)
	}
	r.ctx.DeviceSynchronize()

	// Settled reference: the last kernel's population, flattened through a
	// pooled buffer (the slice is only needed for this Describe).
	durs := kernels[len(kernels)-1].AppendDurationsMs(gpu.GetDurationsBuf())
	settled := stats.Describe(durs)
	gpu.PutDurationsBuf(durs)

	est := WakeupEstimate{
		FreqMHz:       freqMHz,
		SettledIterMs: settled.Mean,
	}
	first := kernels[0].Samples()
	if len(first) > 0 && len(first[0]) > 0 {
		est.FirstIterMs = float64(first[0][0].DurNs()) / 1e6
	}

	// Scan all kernels' block-0 traces in launch order for the first
	// iteration inside the settled band; its end marks stabilisation.
	startNs := int64(-1)
	for _, k := range kernels {
		block := k.Samples()[0]
		if len(block) == 0 {
			continue
		}
		if startNs < 0 {
			startNs = block[0].StartNs
		}
		for _, it := range block {
			durMs := float64(it.DurNs()) / 1e6
			if settled.Contains(durMs, r.cfg.SigmaK) {
				est.WakeupNs = it.EndNs - startNs
				est.Stabilized = true
				return est, nil
			}
		}
	}
	return est, nil
}
