package core

import (
	"math"
	"runtime"
	"testing"
)

// runCampaignAt executes the full reference campaign at the given sweep
// parallelism.
func runCampaignAt(t *testing.T, parallelism int) *Result {
	t.Helper()
	dev := testDevice(t, pairModel{upNs: 10_000_000, downNs: 5_000_000}, nil)
	cfg := quickConfig(600, 900, 1200)
	cfg.Parallelism = parallelism
	r, err := NewRunner(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// samePairResult compares everything the campaign derives per pair:
// identical samples in identical order, the same measurement metadata,
// and the same downstream statistics.
func samePairResult(t *testing.T, parallelism int, a, b *PairResult) {
	t.Helper()
	if a.Pair != b.Pair {
		t.Fatalf("parallelism %d: pair order diverged: %v vs %v", parallelism, a.Pair, b.Pair)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("parallelism %d: %v: %d vs %d samples", parallelism, a.Pair, len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("parallelism %d: %v sample %d: %v vs %v",
				parallelism, a.Pair, i, a.Samples[i], b.Samples[i])
		}
		ia, ib := a.Injected[i], b.Injected[i]
		if ia != ib && !(math.IsNaN(ia) && math.IsNaN(ib)) {
			t.Fatalf("parallelism %d: %v injected %d: %v vs %v", parallelism, a.Pair, i, ia, ib)
		}
	}
	for i := range a.Measurements {
		ma, mb := a.Measurements[i], b.Measurements[i]
		if ma.TsDevNs != mb.TsDevNs || ma.TeDevNs != mb.TeDevNs || ma.SM != mb.SM ||
			ma.TransitionIndex != mb.TransitionIndex {
			t.Fatalf("parallelism %d: %v measurement %d diverged: %+v vs %+v",
				parallelism, a.Pair, i, ma, mb)
		}
	}
	if a.Attempts != b.Attempts || a.Failures != b.Failures ||
		a.DiscardedByThrottle != b.DiscardedByThrottle || a.Skipped != b.Skipped {
		t.Fatalf("parallelism %d: %v bookkeeping diverged", parallelism, a.Pair)
	}
	if a.Summary != b.Summary {
		t.Fatalf("parallelism %d: %v summary diverged: %+v vs %+v",
			parallelism, a.Pair, a.Summary, b.Summary)
	}
}

// TestRunIdenticalAcrossParallelism is the determinism contract of the
// parallel campaign engine: because every pair runs on its own
// deterministically seeded device replica, the sweep's results are
// bit-for-bit identical no matter how many workers execute it. Running at
// NumCPU also exercises the worker pool under the race detector when the
// suite runs with -race.
func TestRunIdenticalAcrossParallelism(t *testing.T) {
	serial := runCampaignAt(t, 1)
	if len(serial.Pairs) != 6 {
		t.Fatalf("serial pairs = %d, want 6", len(serial.Pairs))
	}
	levels := []int{4, runtime.NumCPU()}
	for _, par := range levels {
		got := runCampaignAt(t, par)
		if len(got.Pairs) != len(serial.Pairs) {
			t.Fatalf("parallelism %d: %d pairs vs %d", par, len(got.Pairs), len(serial.Pairs))
		}
		if got.CaptureHintNs != serial.CaptureHintNs {
			t.Fatalf("parallelism %d: capture hint %d vs %d", par, got.CaptureHintNs, serial.CaptureHintNs)
		}
		for i := range got.Pairs {
			samePairResult(t, par, serial.Pairs[i], got.Pairs[i])
		}
	}
}

// TestRunParallelismDefault checks the zero value resolves to the number
// of available CPUs, and negatives are rejected.
func TestRunParallelismDefault(t *testing.T) {
	dev := testDevice(t, fixedModel{bus: 1000, dur: 5_000_000}, nil)
	r, err := NewRunner(dev, quickConfig(600, 900))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Config().Parallelism; got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default Parallelism = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	bad := quickConfig(600, 900)
	bad.Parallelism = -1
	dev2 := testDevice(t, fixedModel{bus: 1000, dur: 5_000_000}, nil)
	if _, err := NewRunner(dev2, bad); err == nil {
		t.Fatal("negative Parallelism accepted")
	}
}

// TestReplicaSeedingIsPairLocal pins the property the sweep's determinism
// rests on: a pair's replica seed depends only on the device seed and the
// pair itself, not on sweep composition or worker interleaving.
func TestReplicaSeedingIsPairLocal(t *testing.T) {
	a := pairTag(77, Pair{InitMHz: 600, TargetMHz: 1200})
	b := pairTag(77, Pair{InitMHz: 600, TargetMHz: 1200})
	if a != b {
		t.Fatal("pairTag not deterministic")
	}
	if pairTag(77, Pair{InitMHz: 1200, TargetMHz: 600}) == a {
		t.Fatal("pairTag direction-blind: init→target and target→init collide")
	}
	if pairTag(78, Pair{InitMHz: 600, TargetMHz: 1200}) == a {
		t.Fatal("pairTag ignores the device seed")
	}
}
