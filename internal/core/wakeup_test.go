package core

import (
	"testing"
	"time"

	"golatest/internal/sim/gpu"
)

func TestEstimateWakeupMatchesConfiguredDelay(t *testing.T) {
	const wakeNs = 25_000_000 // 25 ms at idle clocks before the set clock
	dev := testDevice(t, fixedModel{bus: 1000, dur: 2_000_000}, func(c *gpu.Config) {
		c.WakeDelayNs = wakeNs
		c.IdleTimeoutNs = 10_000_000
	})
	r, err := NewRunner(dev, quickConfig(600, 1200))
	if err != nil {
		t.Fatal(err)
	}
	est, err := r.EstimateWakeup(1200, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Stabilized {
		t.Fatalf("device never stabilised: %+v", est)
	}
	// The estimate covers the idle-clock window plus one detection
	// granule; allow generous slack for the iteration spanning the ramp.
	if est.WakeupNs < wakeNs/2 || est.WakeupNs > 2*wakeNs {
		t.Fatalf("WakeupNs = %d, want ≈%d", est.WakeupNs, wakeNs)
	}
	// The first iteration ran at idle clocks (600 MHz, the table floor,
	// vs 1200 MHz): about 2× the settled duration.
	if est.FirstIterMs < 1.5*est.SettledIterMs {
		t.Fatalf("first iteration %v not slowed vs settled %v",
			est.FirstIterMs, est.SettledIterMs)
	}
}

func TestEstimateWakeupWarmDeviceIsFast(t *testing.T) {
	dev := testDevice(t, fixedModel{bus: 1000, dur: 2_000_000}, func(c *gpu.Config) {
		c.WakeDelayNs = 25_000_000
		c.IdleTimeoutNs = int64(10 * time.Second) // effectively never idles
	})
	r, err := NewRunner(dev, quickConfig(600, 1200))
	if err != nil {
		t.Fatal(err)
	}
	est, err := r.EstimateWakeup(1200, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Stabilized {
		t.Fatal("warm device did not stabilise")
	}
	// No idle drop: the very first iterations are already at the clock.
	if est.WakeupNs > 2_000_000 {
		t.Fatalf("warm device wake-up = %d ns, want ≲ one iteration", est.WakeupNs)
	}
}

func TestEstimateWakeupUnsupportedClock(t *testing.T) {
	dev := testDevice(t, fixedModel{bus: 1000, dur: 2_000_000}, nil)
	r, err := NewRunner(dev, quickConfig(600, 1200))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.EstimateWakeup(777, 0); err == nil {
		t.Fatal("unsupported clock accepted")
	}
}
